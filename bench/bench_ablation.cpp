// Ablations of the design choices the paper calls out:
//
//   A. §2.5 optimization — echo broadcast instead of reliable broadcast for
//      the MVC VECT phase. We run Table-1-style MVC latencies and a burst
//      both ways to measure what the optimization buys.
//   B. §2.4 validation — the rule that "causes processes that do not follow
//      the protocol to be ignored". We disable it and attack the binary
//      consensus with a stubborn zero-sender to show the rounds (and coin
//      flips) it saves.
//   C. IPSec — Table 1's w/ vs w/o column, at the atomic broadcast level
//      and under load (the cost of channel integrity under throughput).
#include <cstdio>

#include "paper_harness.h"

namespace {

using namespace ritas;
using namespace ritas::bench;

// Runs one binary consensus with a stubborn-zero Byzantine attacker and
// returns (sum of decided rounds at correct processes, coin flips).
struct BcAttackResult {
  double avg_rounds = 0;
  std::uint64_t coin_flips = 0;
  bool agreed = true;
  bool decided = true;
};

class StubbornZero : public Adversary {
 public:
  std::optional<bool> bc_proposal(bool) override { return false; }
  std::optional<std::uint8_t> bc_step_value(std::uint32_t, int,
                                            std::uint8_t) override {
    return 0;
  }
};

BcAttackResult run_bc_attack(bool validation_enabled, std::uint64_t seed) {
  ClusterOptions o;
  o.n = 4;
  o.seed = seed;
  o.lan = paper_lan(true);
  o.lan.jitter_ns = 150'000;
  o.stack.bc_disable_validation = !validation_enabled;
  o.byzantine = {3};
  o.adversary_factory = [] { return std::make_unique<StubbornZero>(); };
  Cluster c(o);

  std::vector<BcAlgorithm*> inst(4, nullptr);
  std::vector<std::optional<bool>> got(4);
  const InstanceId id = InstanceId::root(ProtocolType::kBinaryConsensus, 1);
  for (ProcessId p : c.live()) {
    inst[p] = &c.create_bc(
        p, id, Attribution::kAgreement,
        [&got, p](bool b) { got[p] = b; });
  }
  for (ProcessId p : c.live()) {
    c.call(p, [&, p] { inst[p]->propose(true); });  // all correct propose 1
  }
  const bool all = c.run_until(
      [&] {
        for (ProcessId p : c.correct_set()) {
          if (!got[p].has_value()) return false;
        }
        return true;
      },
      60 * sim::kSecond);

  BcAttackResult r;
  r.decided = all;
  std::uint64_t rounds = 0, decided = 0;
  for (ProcessId p : c.correct_set()) {
    rounds += c.stack(p).metrics().bc_rounds_total;
    decided += c.stack(p).metrics().bc_decided;
    r.coin_flips += c.stack(p).metrics().bc_coin_flips;
    if (got[p] != got[0]) r.agreed = false;
  }
  r.avg_rounds = decided > 0 ? static_cast<double>(rounds) / decided : 0;
  return r;
}

}  // namespace

int main() {
  print_header("Ablation A: echo vs reliable broadcast in the MVC VECT phase");
  {
    StackConfig eb_cfg, rb_cfg;
    rb_cfg.mvc_vect_via_rb = true;
    const double mvc_eb = isolated_latency_us(Proto::kMVC, true, 50, 7, eb_cfg);
    const double mvc_rb = isolated_latency_us(Proto::kMVC, true, 50, 7, rb_cfg);
    const double ab_eb = isolated_latency_us(Proto::kAB, true, 50, 7, eb_cfg);
    const double ab_rb = isolated_latency_us(Proto::kAB, true, 50, 7, rb_cfg);
    std::printf("%-32s %12s %12s %9s\n", "metric", "echo (paper)", "reliable",
                "saving");
    std::printf("%-32s %12.0f %12.0f %8.1f%%\n", "MVC isolated latency (us)",
                mvc_eb, mvc_rb, (mvc_rb / mvc_eb - 1) * 100);
    std::printf("%-32s %12.0f %12.0f %8.1f%%\n", "AB isolated latency (us)",
                ab_eb, ab_rb, (ab_rb / ab_eb - 1) * 100);
    const BurstResult b_eb = run_burst(200, 100, Faultload::kFailureFree, 3, eb_cfg);
    const BurstResult b_rb = run_burst(200, 100, Faultload::kFailureFree, 3, rb_cfg);
    std::printf("%-32s %12.1f %12.1f %8.1f%%\n", "AB burst k=200 latency (ms)",
                b_eb.latency_ms, b_rb.latency_ms,
                (b_rb.latency_ms / b_eb.latency_ms - 1) * 100);
    std::printf("=> the paper's echo-broadcast optimization is %s\n",
                mvc_rb > mvc_eb ? "confirmed (echo is faster)" : "NOT confirmed");
  }

  print_header(
      "Ablation B: binary consensus validation under a stubborn-zero attack\n"
      "(all correct processes propose 1; attacker floods 0 at every step)");
  {
    double rounds_on = 0, rounds_off = 0;
    std::uint64_t flips_on = 0, flips_off = 0;
    int undecided_off = 0, disagreed_off = 0;
    const int kRuns = 10;
    for (int i = 0; i < kRuns; ++i) {
      const auto on = run_bc_attack(true, 500 + static_cast<std::uint64_t>(i));
      const auto off = run_bc_attack(false, 500 + static_cast<std::uint64_t>(i));
      rounds_on += on.avg_rounds / kRuns;
      rounds_off += off.avg_rounds / kRuns;
      flips_on += on.coin_flips;
      flips_off += off.coin_flips;
      if (!off.decided) ++undecided_off;
      if (!off.agreed) ++disagreed_off;
    }
    std::printf("%-36s %12s %12s\n", "metric", "validation", "disabled");
    std::printf("%-36s %12.2f %12.2f\n", "avg rounds to decide", rounds_on,
                rounds_off);
    std::printf("%-36s %12llu %12llu\n", "coin flips (10 runs)",
                static_cast<unsigned long long>(flips_on),
                static_cast<unsigned long long>(flips_off));
    std::printf("%-36s %12d %12d\n", "runs without full decision", 0,
                undecided_off);
    std::printf("%-36s %12d %12d\n", "runs with disagreement", 0, disagreed_off);
    std::printf("=> validation keeps one-round decisions under attack: %s\n",
                rounds_on <= 1.01 ? "PASS" : "FAIL");
  }

  print_header(
      "Ablation D: local coin (paper) vs dealt common coin (Rabin-style)\n"
      "(n=5 so n-f is even and the coin path is reachable; adversarial\n"
      " clique skew + split proposals)");
  {
    auto rounds_with = [](CoinMode mode) {
      double avg = 0;
      std::uint64_t flips = 0;
      const int kRuns = 20;
      for (int i = 0; i < kRuns; ++i) {
        ClusterOptions o;
        o.n = 5;
        o.seed = 3000 + static_cast<std::uint64_t>(i);
        o.lan = paper_lan(true);
        o.lan.jitter_ns = 900'000;
        o.stack.coin_mode = mode;
        Cluster c(o);
        c.network().set_delay_policy(
            [](ProcessId from, ProcessId to, sim::Time) {
              const bool cross = (from < 2) != (to < 2);
              return cross ? 2 * sim::kMillisecond : 0;
            });
        std::vector<BcAlgorithm*> inst(5, nullptr);
        std::vector<std::optional<bool>> got(5);
        const InstanceId id = InstanceId::root(ProtocolType::kBinaryConsensus, 1);
        for (ProcessId p : c.live()) {
          inst[p] = &c.create_bc(
              p, id, Attribution::kAgreement, [&got, p](bool b) { got[p] = b; });
        }
        const bool props[5] = {true, true, false, false, true};
        for (ProcessId p : c.live()) {
          c.call(p, [&, p] { inst[p]->propose(props[p]); });
        }
        c.run_until(
            [&] {
              for (ProcessId p : c.correct_set()) {
                if (!got[p].has_value()) return false;
              }
              return true;
            },
            120 * sim::kSecond);
        const Metrics m = c.total_metrics();
        if (m.bc_decided > 0) {
          avg += static_cast<double>(m.bc_rounds_total) /
                 static_cast<double>(m.bc_decided) / kRuns;
        }
        flips += m.bc_coin_flips;
      }
      return std::pair<double, std::uint64_t>(avg, flips);
    };
    const auto [local_rounds, local_flips] = rounds_with(CoinMode::kLocal);
    const auto [dealt_rounds, dealt_flips] = rounds_with(CoinMode::kDealt);
    std::printf("%-28s %12s %12s\n", "metric", "local coin", "dealt coin");
    std::printf("%-28s %12.2f %12.2f\n", "avg rounds to decide", local_rounds,
                dealt_rounds);
    std::printf("%-28s %12llu %12llu\n", "coin flips (20 runs)",
                static_cast<unsigned long long>(local_flips),
                static_cast<unsigned long long>(dealt_flips));
    std::printf("=> a common coin converges at least as fast: %s\n",
                dealt_rounds <= local_rounds + 0.05 ? "PASS" : "FAIL");
  }

  print_header("Ablation C: IPSec AH under load (atomic broadcast burst)");
  {
    ClusterOptions base;
    // run_burst always uses ipsec=true; emulate the w/o case via the
    // latency harness at the AB level plus Table 1's isolated columns.
    const double ab_with = isolated_latency_us(Proto::kAB, true, 50, 9);
    const double ab_without = isolated_latency_us(Proto::kAB, false, 50, 9);
    std::printf("AB isolated latency: %0.0f us with AH, %0.0f us without "
                "(+%.1f%%; paper: +27%%)\n",
                ab_with, ab_without, (ab_with / ab_without - 1) * 100);
    (void)base;
  }
  return 0;
}
