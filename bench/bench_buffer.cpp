// Zero-copy buffer layer: copies and frame encodes per atomic-broadcast
// delivery, before/after the mbuf refactor, at 10 B - 10 kB payloads.
//
// "Before" (the legacy Bytes-valued path) is computed analytically from the
// same run's traffic counters: it encoded one frame per transport send
// (frames = msgs_sent) and copied every delivered payload byte out of the
// arrival frame (copies = the bytes the mbuf path merely aliases). The
// measured "after" numbers come straight from the stack's metrics; the
// binary exits non-zero unless encode-once fan-out holds exactly
// (frames_encoded == broadcast count) and the receive path copied zero
// payload bytes — the machine-checkable form of the zero-copy claim, also
// asserted by the CI bench-smoke job against BENCH_buffer.json.
#include "paper_harness.h"

namespace ritas::bench {
namespace {

struct BufferResult {
  std::uint64_t deliveries = 0;        // AB deliveries across the cluster
  std::uint64_t frames_encoded = 0;    // Message::encode calls (send path)
  std::uint64_t transport_sends = 0;   // legacy path encoded one frame per send
  std::uint64_t msg_broadcasts = 0;    // protocol broadcast/send fan-outs
  std::uint64_t bytes_copied = 0;      // receive-path payload copies (mbuf: 0)
  std::uint64_t bytes_aliased = 0;     // receive-path payload bytes aliased
};

/// One failure-free AB burst; every metric summed over the whole cluster.
BufferResult run_buffer_burst(std::uint32_t burst, std::size_t msg_bytes,
                              bool batched, std::uint64_t seed) {
  ClusterOptions o;
  o.n = 4;
  o.seed = seed;
  o.lan = paper_lan(true);
  o.stack.ab_batch.enabled = batched;
  Cluster c(o);

  std::vector<AtomicBroadcast*> ab(4, nullptr);
  std::vector<std::uint64_t> delivered(4, 0);
  const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
  for (ProcessId p : c.live()) {
    ab[p] = &c.create_root<AtomicBroadcast>(
        p, id, [&delivered, p](ProcessId, std::uint64_t, Slice) { ++delivered[p]; });
  }
  const std::uint32_t per = burst / 4;
  const std::uint32_t total = per * 4;
  const Bytes payload(msg_bytes, 0x62);
  const Time t0 = c.now();
  for (ProcessId p : c.live()) {
    c.call(p, [&, p] {
      for (std::uint32_t i = 0; i < per; ++i) ab[p]->bcast(Bytes(payload));
    });
  }
  if (batched) {
    for (ProcessId p : c.live()) c.call(p, [&, p] { ab[p]->flush(); });
  }
  c.run_until([&] { return delivered[0] >= total; }, t0 + kDeadline);

  BufferResult r;
  const Metrics m = c.total_metrics();
  for (ProcessId p = 0; p < 4; ++p) r.deliveries += delivered[p];
  r.frames_encoded = m.frames_encoded;
  r.transport_sends = m.msgs_sent;
  r.bytes_copied = m.payload_bytes_copied;
  r.bytes_aliased = m.payload_bytes_aliased;
  return r;
}

/// Exact encode-once check on a pure-broadcast workload: k reliable
/// broadcasts are INIT/ECHO/READY fan-outs only, so every encoded frame is
/// sent to exactly n-1 peers — frames_encoded * (n-1) == msgs_sent, and
/// frames_encoded / broadcasts == 1.0 regardless of n.
bool rb_encode_once(std::uint32_t k, std::uint64_t seed) {
  ClusterOptions o;
  o.n = 4;
  o.seed = seed;
  o.lan = paper_lan(true);
  Cluster c(o);
  std::vector<std::uint64_t> got(4, 0);
  std::vector<RbAlgorithm*> rb(4, nullptr);
  for (std::uint32_t i = 0; i < k; ++i) {
    const InstanceId id =
        InstanceId::root(ProtocolType::kReliableBroadcast, i + 1);
    for (ProcessId p : c.live()) {
      rb[p] = &c.create_rb(
          p, id, 0, Attribution::kPayload, [&got, p](Slice) { ++got[p]; });
    }
    c.call(0, [&] { rb[0]->bcast(to_bytes("encode-once")); });
    c.run_until([&] { return got[0] >= i + 1; }, c.now() + kDeadline);
  }
  const Metrics m = c.total_metrics();
  return m.frames_encoded * 3 == m.msgs_sent;
}

int run() {
  const std::size_t sizes[4] = {10, 100, 1000, 10000};
  const std::uint32_t kBurst = 100;
  const std::uint64_t kSeed = 4242;

  print_header(
      "Buffer layer: copies / frame encodes per AB delivery (n=4, burst=100)");

  BenchReport report("buffer");
  report.meta("n", 4);
  report.meta("burst", kBurst);
  report.meta("seed", kSeed);

  bool encode_once = true;
  bool zero_copy_rx = true;

  std::printf("\n%-6s %-9s %10s %12s %12s %14s %14s %12s\n", "m", "mode",
              "deliveries", "frames", "legacy_frames", "rx_copied_B",
              "rx_aliased_B", "copies/dlv");
  for (int mode = 0; mode < 2; ++mode) {
    const bool batched = mode == 1;
    for (std::size_t sz : sizes) {
      const BufferResult r = run_buffer_burst(kBurst, sz, batched, kSeed);
      // Legacy baseline, same traffic: one encode per transport send, one
      // payload copy per decode (every byte the mbuf path aliases).
      const std::uint64_t legacy_frames = r.transport_sends;
      const std::uint64_t legacy_copied = r.bytes_aliased;
      const double copies_per_delivery =
          r.deliveries > 0
              ? static_cast<double>(r.bytes_copied) /
                    static_cast<double>(r.deliveries)
              : 0;
      std::printf("%-6zu %-9s %10llu %12llu %12llu %14llu %14llu %12.1f\n", sz,
                  batched ? "batched" : "unbatched",
                  static_cast<unsigned long long>(r.deliveries),
                  static_cast<unsigned long long>(r.frames_encoded),
                  static_cast<unsigned long long>(legacy_frames),
                  static_cast<unsigned long long>(r.bytes_copied),
                  static_cast<unsigned long long>(r.bytes_aliased),
                  copies_per_delivery);
      // The AB workload mixes broadcasts with EB's per-peer unicasts
      // (VECT/MAT), so the exact-ratio check lives in rb_encode_once();
      // here every mode/size must at least beat the one-encode-per-send
      // legacy baseline and keep the receive path copy-free.
      if (r.frames_encoded >= r.transport_sends) encode_once = false;
      if (r.bytes_copied != 0) zero_copy_rx = false;
      report.add_row([&](JsonWriter& w) {
        w.field("msg_bytes", static_cast<std::uint64_t>(sz));
        w.field("batched", batched);
        w.field("deliveries", r.deliveries);
        w.field("frames_encoded", r.frames_encoded);
        w.field("legacy_frames_encoded", legacy_frames);
        w.field("frames_saved", legacy_frames - r.frames_encoded);
        w.field("payload_bytes_copied", r.bytes_copied);
        w.field("payload_bytes_aliased", r.bytes_aliased);
        w.field("legacy_payload_bytes_copied", legacy_copied);
        w.field("copies_per_delivery", copies_per_delivery);
      });
    }
  }

  const bool rb_exact = rb_encode_once(20, kSeed);

  std::printf("\nchecks:\n");
  std::printf("  RB broadcasts: frames*(n-1) == sends exactly : %s\n",
              rb_exact ? "PASS" : "FAIL");
  std::printf("  AB frames_encoded < legacy one-per-send      : %s\n",
              encode_once ? "PASS" : "FAIL");
  std::printf("  zero payload copies on receive path         : %s\n",
              zero_copy_rx ? "PASS" : "FAIL");
  report.meta("encode_once", encode_once && rb_exact);
  report.meta("zero_copy_rx", zero_copy_rx);
  const bool wrote = report.write();
  std::printf("  wrote %s : %s\n", report.path().c_str(), wrote ? "PASS" : "FAIL");
  return (encode_once && rb_exact && zero_copy_rx && wrote) ? 0 : 1;
}

}  // namespace
}  // namespace ritas::bench

int main() { return ritas::bench::run(); }
