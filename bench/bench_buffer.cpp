// Zero-copy buffer layer: copies and frame encodes per atomic-broadcast
// delivery, before/after the mbuf refactor, at 10 B - 10 kB payloads.
//
// "Before" (the legacy Bytes-valued path) is computed analytically from the
// same run's traffic counters: it encoded one frame per transport send
// (frames = msgs_sent) and copied every delivered payload byte out of the
// arrival frame (copies = the bytes the mbuf path merely aliases). The
// measured "after" numbers come straight from the stack's metrics; the
// binary exits non-zero unless encode-once fan-out holds exactly
// (frames_encoded == broadcast count) and the receive path copied zero
// payload bytes — the machine-checkable form of the zero-copy claim, also
// asserted by the CI bench-smoke job against BENCH_buffer.json.
//
// A second, REAL-TIME section measures the transport fast path over actual
// loopback TCP: a 2-node pair pushes a burst of small frames through the
// batched sendmsg drain and reports syscalls per frame ("syscall_rows" in
// the artifact). Gated here and in CI bench-smoke: a bursty 10 B workload
// must pack >= 4 frames per sendmsg, and assembling batches must copy zero
// payload bytes (scatter-gather straight from the retained queue).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "crypto/keychain.h"
#include "net/tcp_transport.h"
#include "paper_harness.h"

namespace ritas::bench {
namespace {

struct BufferResult {
  std::uint64_t deliveries = 0;        // AB deliveries across the cluster
  std::uint64_t frames_encoded = 0;    // Message::encode calls (send path)
  std::uint64_t transport_sends = 0;   // legacy path encoded one frame per send
  std::uint64_t msg_broadcasts = 0;    // protocol broadcast/send fan-outs
  std::uint64_t bytes_copied = 0;      // receive-path payload copies (mbuf: 0)
  std::uint64_t bytes_aliased = 0;     // receive-path payload bytes aliased
};

/// One failure-free AB burst; every metric summed over the whole cluster.
BufferResult run_buffer_burst(std::uint32_t burst, std::size_t msg_bytes,
                              bool batched, std::uint64_t seed) {
  ClusterOptions o;
  o.n = 4;
  o.seed = seed;
  o.lan = paper_lan(true);
  o.stack.ab_batch.enabled = batched;
  Cluster c(o);

  std::vector<AtomicBroadcast*> ab(4, nullptr);
  std::vector<std::uint64_t> delivered(4, 0);
  const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
  for (ProcessId p : c.live()) {
    ab[p] = &c.create_root<AtomicBroadcast>(
        p, id, [&delivered, p](ProcessId, std::uint64_t, Slice) { ++delivered[p]; });
  }
  const std::uint32_t per = burst / 4;
  const std::uint32_t total = per * 4;
  const Bytes payload(msg_bytes, 0x62);
  const Time t0 = c.now();
  for (ProcessId p : c.live()) {
    c.call(p, [&, p] {
      for (std::uint32_t i = 0; i < per; ++i) ab[p]->bcast(Bytes(payload));
    });
  }
  if (batched) {
    for (ProcessId p : c.live()) c.call(p, [&, p] { ab[p]->flush(); });
  }
  c.run_until([&] { return delivered[0] >= total; }, t0 + kDeadline);

  BufferResult r;
  const Metrics m = c.total_metrics();
  for (ProcessId p = 0; p < 4; ++p) r.deliveries += delivered[p];
  r.frames_encoded = m.frames_encoded;
  r.transport_sends = m.msgs_sent;
  r.bytes_copied = m.payload_bytes_copied;
  r.bytes_aliased = m.payload_bytes_aliased;
  return r;
}

/// Exact encode-once check on a pure-broadcast workload: k reliable
/// broadcasts are INIT/ECHO/READY fan-outs only, so every encoded frame is
/// sent to exactly n-1 peers — frames_encoded * (n-1) == msgs_sent, and
/// frames_encoded / broadcasts == 1.0 regardless of n.
bool rb_encode_once(std::uint32_t k, std::uint64_t seed) {
  ClusterOptions o;
  o.n = 4;
  o.seed = seed;
  o.lan = paper_lan(true);
  Cluster c(o);
  std::vector<std::uint64_t> got(4, 0);
  std::vector<RbAlgorithm*> rb(4, nullptr);
  for (std::uint32_t i = 0; i < k; ++i) {
    const InstanceId id =
        InstanceId::root(ProtocolType::kReliableBroadcast, i + 1);
    for (ProcessId p : c.live()) {
      rb[p] = &c.create_rb(
          p, id, 0, Attribution::kPayload, [&got, p](Slice) { ++got[p]; });
    }
    c.call(0, [&] { rb[0]->bcast(to_bytes("encode-once")); });
    c.run_until([&] { return got[0] >= i + 1; }, c.now() + kDeadline);
  }
  const Metrics m = c.total_metrics();
  return m.frames_encoded * 3 == m.msgs_sent;
}

// --- real-TCP syscall batching section -------------------------------------

std::vector<net::PeerAddr> reserve_local_ports(std::uint32_t n) {
  std::vector<net::PeerAddr> peers;
  std::vector<int> fds;
  for (std::uint32_t i = 0; i < n; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    peers.push_back(net::PeerAddr{"127.0.0.1", ntohs(addr.sin_port)});
    fds.push_back(fd);
  }
  for (int fd : fds) ::close(fd);
  return peers;
}

struct SyscallResult {
  std::uint64_t frames = 0;
  std::uint64_t sendmsg_calls = 0;
  std::uint64_t bytes_to_kernel = 0;
  std::uint64_t batch_copy_bytes = 0;
  double frames_per_syscall = 0;
};

/// One bursty sender → receiver run over real loopback TCP: kFrames small
/// frames enqueued from the app thread while the transport's poll thread
/// flushes; the sender's counters tell how many frames each sendmsg
/// carried. batch_sends=false reproduces the one-drain-per-send legacy
/// behavior for the side-by-side table row.
SyscallResult run_syscall_burst(std::size_t msg_bytes, bool batch_sends) {
  constexpr std::uint32_t kFrames = 2000;
  const auto peers = reserve_local_ports(2);
  std::vector<std::unique_ptr<KeyChain>> keys;
  std::vector<std::unique_ptr<net::TcpTransport>> tp;
  std::atomic<std::uint64_t> received{0};
  for (std::uint32_t p = 0; p < 2; ++p) {
    keys.push_back(std::make_unique<KeyChain>(
        KeyChain::deal(to_bytes("bench-buffer-syscalls"), 2, p)));
    net::TcpTransport::Options o;
    o.n = 2;
    o.self = p;
    o.peers = peers;
    o.batch_sends = batch_sends;
    o.rng_seed = 77 + p;
    tp.push_back(std::make_unique<net::TcpTransport>(o, *keys[p]));
  }
  tp[0]->set_sink([&](ProcessId, Slice) { received.fetch_add(1); });
  tp[1]->set_sink([](ProcessId, Slice) {});

  std::atomic<bool> stop{false};
  std::vector<std::thread> runners;
  for (std::uint32_t p = 0; p < 2; ++p) {
    runners.emplace_back([&, p] {
      tp[p]->start();
      while (!stop.load()) tp[p]->poll_once(10);
    });
  }
  auto deadline_spin = [](const std::function<bool()>& cond) {
    for (int waited = 0; waited < 60'000; waited += 2) {
      if (cond()) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    return cond();
  };
  SyscallResult r;
  if (deadline_spin([&] { return tp[1]->links_up() == 1; })) {
    const Bytes payload(msg_bytes, 0x73);
    for (std::uint32_t i = 0; i < kFrames; ++i) {
      tp[1]->send(0, Bytes(payload));
    }
    deadline_spin([&] { return received.load() >= kFrames; });
  }
  const auto s = tp[1]->stats();
  r.frames = s.frames_sent;
  r.sendmsg_calls = s.sendmsg_calls;
  r.bytes_to_kernel = s.bytes_to_kernel;
  r.batch_copy_bytes = s.batch_copy_bytes;
  r.frames_per_syscall = s.frames_per_syscall();
  stop.store(true);
  for (auto& t : tp) t->wakeup();
  for (auto& t : runners) t.join();
  for (auto& t : tp) t->stop();
  return r;
}

int run() {
  const std::size_t sizes[4] = {10, 100, 1000, 10000};
  const std::uint32_t kBurst = 100;
  const std::uint64_t kSeed = 4242;

  print_header(
      "Buffer layer: copies / frame encodes per AB delivery (n=4, burst=100)");

  BenchReport report("buffer");
  report.meta("n", 4);
  report.meta("burst", kBurst);
  report.meta("seed", kSeed);

  bool encode_once = true;
  bool zero_copy_rx = true;

  std::printf("\n%-6s %-9s %10s %12s %12s %14s %14s %12s\n", "m", "mode",
              "deliveries", "frames", "legacy_frames", "rx_copied_B",
              "rx_aliased_B", "copies/dlv");
  for (int mode = 0; mode < 2; ++mode) {
    const bool batched = mode == 1;
    for (std::size_t sz : sizes) {
      const BufferResult r = run_buffer_burst(kBurst, sz, batched, kSeed);
      // Legacy baseline, same traffic: one encode per transport send, one
      // payload copy per decode (every byte the mbuf path aliases).
      const std::uint64_t legacy_frames = r.transport_sends;
      const std::uint64_t legacy_copied = r.bytes_aliased;
      const double copies_per_delivery =
          r.deliveries > 0
              ? static_cast<double>(r.bytes_copied) /
                    static_cast<double>(r.deliveries)
              : 0;
      std::printf("%-6zu %-9s %10llu %12llu %12llu %14llu %14llu %12.1f\n", sz,
                  batched ? "batched" : "unbatched",
                  static_cast<unsigned long long>(r.deliveries),
                  static_cast<unsigned long long>(r.frames_encoded),
                  static_cast<unsigned long long>(legacy_frames),
                  static_cast<unsigned long long>(r.bytes_copied),
                  static_cast<unsigned long long>(r.bytes_aliased),
                  copies_per_delivery);
      // The AB workload mixes broadcasts with EB's per-peer unicasts
      // (VECT/MAT), so the exact-ratio check lives in rb_encode_once();
      // here every mode/size must at least beat the one-encode-per-send
      // legacy baseline and keep the receive path copy-free.
      if (r.frames_encoded >= r.transport_sends) encode_once = false;
      if (r.bytes_copied != 0) zero_copy_rx = false;
      report.add_row([&](JsonWriter& w) {
        w.field("msg_bytes", static_cast<std::uint64_t>(sz));
        w.field("batched", batched);
        w.field("deliveries", r.deliveries);
        w.field("frames_encoded", r.frames_encoded);
        w.field("legacy_frames_encoded", legacy_frames);
        w.field("frames_saved", legacy_frames - r.frames_encoded);
        w.field("payload_bytes_copied", r.bytes_copied);
        w.field("payload_bytes_aliased", r.bytes_aliased);
        w.field("legacy_payload_bytes_copied", legacy_copied);
        w.field("copies_per_delivery", copies_per_delivery);
      });
    }
  }

  const bool rb_exact = rb_encode_once(20, kSeed);

  // Real-TCP transport fast path: syscalls per frame under a small-frame
  // burst, batched drain vs the legacy per-send drain. Real-time numbers
  // (loopback kernel in the loop), so the gates are shape-only: batching
  // must pack frames (>= 4 per sendmsg at 10 B; the legacy mode hovers
  // near 1) and batch assembly must copy zero payload bytes.
  constexpr double kMinFramesPerSyscall10B = 4.0;
  bool syscall_gate = true;
  bool batch_zero_copy = true;
  std::printf("\n%-6s %-9s %10s %12s %14s %14s %12s\n", "m", "drain",
              "frames", "sendmsg", "B_to_kernel", "copied_B", "frames/call");
  for (const bool batched : {false, true}) {
    for (const std::size_t sz : {std::size_t{10}, std::size_t{100},
                                 std::size_t{1000}}) {
      const SyscallResult r = run_syscall_burst(sz, batched);
      std::printf("%-6zu %-9s %10llu %12llu %14llu %14llu %12.1f\n", sz,
                  batched ? "batched" : "per-send",
                  static_cast<unsigned long long>(r.frames),
                  static_cast<unsigned long long>(r.sendmsg_calls),
                  static_cast<unsigned long long>(r.bytes_to_kernel),
                  static_cast<unsigned long long>(r.batch_copy_bytes),
                  r.frames_per_syscall);
      if (batched && sz == 10 &&
          r.frames_per_syscall < kMinFramesPerSyscall10B) {
        syscall_gate = false;
      }
      if (r.batch_copy_bytes != 0) batch_zero_copy = false;
      report.add_section_row("syscall_rows", [&](JsonWriter& w) {
        w.field("msg_bytes", static_cast<std::uint64_t>(sz));
        w.field("batched", batched);
        w.field("frames_sent", r.frames);
        w.field("sendmsg_calls", r.sendmsg_calls);
        w.field("bytes_to_kernel", r.bytes_to_kernel);
        w.field("batch_copy_bytes", r.batch_copy_bytes);
        w.field("frames_per_syscall", r.frames_per_syscall);
      });
    }
  }

  std::printf("\nchecks:\n");
  std::printf("  RB broadcasts: frames*(n-1) == sends exactly : %s\n",
              rb_exact ? "PASS" : "FAIL");
  std::printf("  AB frames_encoded < legacy one-per-send      : %s\n",
              encode_once ? "PASS" : "FAIL");
  std::printf("  zero payload copies on receive path         : %s\n",
              zero_copy_rx ? "PASS" : "FAIL");
  std::printf("  batched 10 B burst >= %.0f frames/sendmsg    : %s\n",
              kMinFramesPerSyscall10B, syscall_gate ? "PASS" : "FAIL");
  std::printf("  zero payload copies assembling batches      : %s\n",
              batch_zero_copy ? "PASS" : "FAIL");
  report.meta("encode_once", encode_once && rb_exact);
  report.meta("zero_copy_rx", zero_copy_rx);
  report.meta("syscall_gate_min_fps", kMinFramesPerSyscall10B);
  report.meta("gate_frames_per_syscall_ok", syscall_gate);
  report.meta("gate_batch_zero_copy_ok", batch_zero_copy);
  const bool wrote = report.write();
  std::printf("  wrote %s : %s\n", report.path().c_str(), wrote ? "PASS" : "FAIL");
  return (encode_once && rb_exact && zero_copy_rx && syscall_gate &&
          batch_zero_copy && wrote)
             ? 0
             : 1;
}

}  // namespace
}  // namespace ritas::bench

int main() { return ritas::bench::run(); }
