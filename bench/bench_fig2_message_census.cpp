// Figure 2 of the paper is the message-exchange diagram ("overview of the
// messages exchanged in each protocol"). This bench derives it from the
// running system: for one isolated execution of each protocol at n = 4 it
// reports the wire frames, wire bytes and broadcast instances actually
// exchanged, next to the analytic counts the diagram implies.
//
// Analytic counts (n = 4, remote frames only — self-deliveries never touch
// the wire):
//   reliable broadcast: INIT 3 + ECHO 4*3 + READY 4*3            = 27
//   echo broadcast:     INIT 3 + VECT 3 + MAT 3                  = 9
//   binary consensus:   (3 steps * 4 origins) RB per round; one
//                       deciding round + one courtesy round       = 2*12*27 = 648
//   multi-valued:       4 INIT RB + 4 VECT EB + BC                = 4*27+4*9+648 = 792
//   vector consensus:   4 proposal RB + MVC                       = 108+792 = 900
//   atomic broadcast:   1 AB_MSG RB + 4 AB_VECT RB + MVC          = 27+108+792 = 927
#include <cstdio>

#include "paper_harness.h"

namespace {

using namespace ritas;
using namespace ritas::bench;

struct Census {
  std::uint64_t frames;
  std::uint64_t wire_bytes;
  std::uint64_t broadcasts;  // RB/EB instances started
};

Census census_of(Proto proto) {
  ClusterOptions o;
  o.n = 4;
  o.seed = 3;
  o.lan = paper_lan(true);
  Cluster c(o);

  bool done = false;
  const InstanceId rb_id = InstanceId::root(ProtocolType::kReliableBroadcast, 1);
  const InstanceId eb_id = InstanceId::root(ProtocolType::kEchoBroadcast, 1);
  const InstanceId bc_id = InstanceId::root(ProtocolType::kBinaryConsensus, 1);
  const InstanceId mvc_id = InstanceId::root(ProtocolType::kMultiValuedConsensus, 1);
  const InstanceId vc_id = InstanceId::root(ProtocolType::kVectorConsensus, 1);
  const InstanceId ab_id = InstanceId::root(ProtocolType::kAtomicBroadcast, 1);
  const Bytes payload(10, 0x61);

  switch (proto) {
    case Proto::kRB: {
      std::vector<ReliableBroadcast*> inst(4, nullptr);
      for (ProcessId p : c.live()) {
        ReliableBroadcast::DeliverFn cb;
        if (p == 0) cb = [&done](Bytes) { done = true; };
        inst[p] = &c.create_root<ReliableBroadcast>(p, rb_id, 0,
                                                    Attribution::kPayload,
                                                    std::move(cb));
      }
      c.call(0, [&] { inst[0]->bcast(payload); });
      break;
    }
    case Proto::kEB: {
      std::vector<EchoBroadcast*> inst(4, nullptr);
      for (ProcessId p : c.live()) {
        EchoBroadcast::DeliverFn cb;
        if (p == 0) cb = [&done](Bytes) { done = true; };
        inst[p] = &c.create_root<EchoBroadcast>(p, eb_id, 0, Attribution::kPayload,
                                                std::move(cb));
      }
      c.call(0, [&] { inst[0]->bcast(payload); });
      break;
    }
    case Proto::kBC: {
      std::vector<BinaryConsensus*> inst(4, nullptr);
      for (ProcessId p : c.live()) {
        BinaryConsensus::DecideFn cb;
        if (p == 0) cb = [&done](bool) { done = true; };
        inst[p] = &c.create_root<BinaryConsensus>(p, bc_id, Attribution::kAgreement,
                                                  std::move(cb));
      }
      for (ProcessId p : c.live()) {
        c.call(p, [&, p] { inst[p]->propose(true); });
      }
      break;
    }
    case Proto::kMVC: {
      std::vector<MultiValuedConsensus*> inst(4, nullptr);
      for (ProcessId p : c.live()) {
        MultiValuedConsensus::DecideFn cb;
        if (p == 0) cb = [&done](std::optional<Bytes>) { done = true; };
        inst[p] = &c.create_root<MultiValuedConsensus>(
            p, mvc_id, Attribution::kAgreement, std::move(cb));
      }
      for (ProcessId p : c.live()) {
        c.call(p, [&, p] { inst[p]->propose(payload); });
      }
      break;
    }
    case Proto::kVC: {
      std::vector<VectorConsensus*> inst(4, nullptr);
      for (ProcessId p : c.live()) {
        VectorConsensus::DecideFn cb;
        if (p == 0) cb = [&done](VectorConsensus::Vector) { done = true; };
        inst[p] = &c.create_root<VectorConsensus>(p, vc_id, Attribution::kAgreement,
                                                  std::move(cb));
      }
      for (ProcessId p : c.live()) {
        c.call(p, [&, p] { inst[p]->propose(payload); });
      }
      break;
    }
    case Proto::kAB: {
      std::vector<AtomicBroadcast*> inst(4, nullptr);
      for (ProcessId p : c.live()) {
        AtomicBroadcast::DeliverFn cb;
        if (p == 0) cb = [&done](ProcessId, std::uint64_t, Bytes) { done = true; };
        inst[p] = &c.create_root<AtomicBroadcast>(p, ab_id, std::move(cb));
      }
      c.call(0, [&] { inst[0]->bcast(payload); });
      break;
    }
  }
  c.run_until([&] { return done; }, kDeadline);
  c.run_all();  // include courtesy rounds and stragglers

  Census out;
  const Metrics m = c.total_metrics();
  out.frames = m.msgs_sent;
  out.wire_bytes = c.network().wire_bytes_total();
  out.broadcasts = m.broadcasts_total();
  return out;
}

}  // namespace

int main() {
  using namespace ritas::bench;
  print_header(
      "Figure 2 (derived): messages actually exchanged per protocol\n"
      "(n=4, one isolated execution incl. consensus courtesy rounds)");

  struct Row {
    Proto proto;
    std::uint64_t analytic_frames;
  };
  const Row rows[] = {
      {Proto::kEB, 9},    {Proto::kRB, 27},  {Proto::kBC, 648},
      {Proto::kMVC, 792}, {Proto::kVC, 900}, {Proto::kAB, 927},
  };

  std::printf("%-24s %10s %10s %12s %12s\n", "protocol", "analytic", "frames",
              "wire bytes", "broadcasts");
  bool all_match = true;
  for (const Row& r : rows) {
    const Census cs = census_of(r.proto);
    const bool match = cs.frames == r.analytic_frames;
    all_match = all_match && match;
    std::printf("%-24s %10llu %10llu %12llu %12llu  %s\n", proto_name(r.proto),
                static_cast<unsigned long long>(r.analytic_frames),
                static_cast<unsigned long long>(cs.frames),
                static_cast<unsigned long long>(cs.wire_bytes),
                static_cast<unsigned long long>(cs.broadcasts),
                match ? "" : "<- differs");
  }
  std::printf("\nshape check:\n");
  std::printf("  measured frame counts match the Figure-2 analysis : %s\n",
              all_match ? "PASS" : "FAIL");
  return all_match ? 0 : 1;
}
