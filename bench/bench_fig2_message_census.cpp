// Figure 2 of the paper is the message-exchange diagram ("overview of the
// messages exchanged in each protocol"). This bench derives it from the
// running system: for one isolated execution of each protocol at n = 4 it
// reports the wire frames, wire bytes and broadcast instances actually
// exchanged, next to the analytic counts the diagram implies.
//
// Analytic counts (n = 4, remote frames only — self-deliveries never touch
// the wire):
//   reliable broadcast: INIT 3 + ECHO 4*3 + READY 4*3            = 27
//   echo broadcast:     INIT 3 + VECT 3 + MAT 3                  = 9
//   binary consensus:   (3 steps * 4 origins) RB per round; one
//                       deciding round + one courtesy round       = 2*12*27 = 648
//   multi-valued:       4 INIT RB + 4 VECT EB + BC                = 4*27+4*9+648 = 792
//   vector consensus:   4 proposal RB + MVC                       = 108+792 = 900
//   atomic broadcast:   1 AB_MSG RB + 4 AB_VECT RB + MVC          = 27+108+792 = 927
//
// Every run executes with tracing enabled; the frame counts are
// cross-checked against the trace-derived send count, the atomic-broadcast
// trace is written out as Chrome trace_event JSON (trace_fig2.json, load in
// chrome://tracing or Perfetto), and BENCH_fig2.json captures the table.
#include <cstdio>

#include "paper_harness.h"

namespace {

using namespace ritas;
using namespace ritas::bench;

struct Census {
  std::uint64_t frames;
  std::uint64_t wire_bytes;
  std::uint64_t broadcasts;    // RB/EB instances started
  std::uint64_t trace_events;  // total events across all 4 tracers
  std::uint64_t trace_sends;   // kSend events (should equal `frames`)
  std::string chrome_json;     // Chrome trace of the whole run
};

Census census_of(Proto proto) {
  ClusterOptions o;
  o.n = 4;
  o.seed = 3;
  o.lan = paper_lan(true);
  o.trace = true;
  Cluster c(o);

  bool done = false;
  const InstanceId rb_id = InstanceId::root(ProtocolType::kReliableBroadcast, 1);
  const InstanceId eb_id = InstanceId::root(ProtocolType::kEchoBroadcast, 1);
  const InstanceId bc_id = InstanceId::root(ProtocolType::kBinaryConsensus, 1);
  const InstanceId mvc_id = InstanceId::root(ProtocolType::kMultiValuedConsensus, 1);
  const InstanceId vc_id = InstanceId::root(ProtocolType::kVectorConsensus, 1);
  const InstanceId ab_id = InstanceId::root(ProtocolType::kAtomicBroadcast, 1);
  const Bytes payload(10, 0x61);

  switch (proto) {
    case Proto::kRB: {
      std::vector<RbAlgorithm*> inst(4, nullptr);
      for (ProcessId p : c.live()) {
        RbAlgorithm::DeliverFn cb;
        if (p == 0) cb = [&done](Slice) { done = true; };
        inst[p] = &c.create_rb(p, rb_id, 0,
                                                    Attribution::kPayload,
                                                    std::move(cb));
      }
      c.call(0, [&] { inst[0]->bcast(Bytes(payload)); });
      break;
    }
    case Proto::kEB: {
      std::vector<EchoBroadcast*> inst(4, nullptr);
      for (ProcessId p : c.live()) {
        EchoBroadcast::DeliverFn cb;
        if (p == 0) cb = [&done](Slice) { done = true; };
        inst[p] = &c.create_root<EchoBroadcast>(p, eb_id, 0, Attribution::kPayload,
                                                std::move(cb));
      }
      c.call(0, [&] { inst[0]->bcast(Bytes(payload)); });
      break;
    }
    case Proto::kBC: {
      std::vector<BcAlgorithm*> inst(4, nullptr);
      for (ProcessId p : c.live()) {
        BcAlgorithm::DecideFn cb;
        if (p == 0) cb = [&done](bool) { done = true; };
        inst[p] = &c.create_bc(p, bc_id, Attribution::kAgreement,
                                                  std::move(cb));
      }
      for (ProcessId p : c.live()) {
        c.call(p, [&, p] { inst[p]->propose(true); });
      }
      break;
    }
    case Proto::kMVC: {
      std::vector<MultiValuedConsensus*> inst(4, nullptr);
      for (ProcessId p : c.live()) {
        MultiValuedConsensus::DecideFn cb;
        if (p == 0) cb = [&done](std::optional<Bytes>) { done = true; };
        inst[p] = &c.create_root<MultiValuedConsensus>(
            p, mvc_id, Attribution::kAgreement, std::move(cb));
      }
      for (ProcessId p : c.live()) {
        c.call(p, [&, p] { inst[p]->propose(payload); });
      }
      break;
    }
    case Proto::kVC: {
      std::vector<VectorConsensus*> inst(4, nullptr);
      for (ProcessId p : c.live()) {
        VectorConsensus::DecideFn cb;
        if (p == 0) cb = [&done](VectorConsensus::Vector) { done = true; };
        inst[p] = &c.create_root<VectorConsensus>(p, vc_id, Attribution::kAgreement,
                                                  std::move(cb));
      }
      for (ProcessId p : c.live()) {
        c.call(p, [&, p] { inst[p]->propose(payload); });
      }
      break;
    }
    case Proto::kAB: {
      std::vector<AtomicBroadcast*> inst(4, nullptr);
      for (ProcessId p : c.live()) {
        AtomicBroadcast::DeliverFn cb;
        if (p == 0) cb = [&done](ProcessId, std::uint64_t, Slice) { done = true; };
        inst[p] = &c.create_root<AtomicBroadcast>(p, ab_id, std::move(cb));
      }
      c.call(0, [&] { inst[0]->bcast(Bytes(payload)); });
      break;
    }
  }
  c.run_until([&] { return done; }, kDeadline);
  c.run_all();  // include courtesy rounds and stragglers

  Census out;
  const Metrics m = c.total_metrics();
  out.frames = m.msgs_sent;
  out.wire_bytes = c.network().wire_bytes_total();
  out.broadcasts = m.broadcasts_total();
  const TraceSummary ts = summarize(c.tracers());
  out.trace_events = ts.events;
  out.trace_sends = ts.sends;
  out.chrome_json = c.chrome_trace_json();
  return out;
}

bool write_file(const char* path, const std::string& body) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  const bool ok = std::fwrite(body.data(), 1, body.size(), f) == body.size();
  return std::fclose(f) == 0 && ok;
}

}  // namespace

int main() {
  using namespace ritas::bench;
  print_header(
      "Figure 2 (derived): messages actually exchanged per protocol\n"
      "(n=4, one isolated execution incl. consensus courtesy rounds)");

  struct Row {
    Proto proto;
    const char* key;
    std::uint64_t analytic_frames;
  };
  const Row rows[] = {
      {Proto::kEB, "eb", 9},   {Proto::kRB, "rb", 27},
      {Proto::kBC, "bc", 648}, {Proto::kMVC, "mvc", 792},
      {Proto::kVC, "vc", 900}, {Proto::kAB, "ab", 927},
  };

  BenchReport report("fig2");
  report.meta("seed", std::uint64_t{3});
  report.meta("n", 4);

  std::printf("%-24s %10s %10s %12s %12s %12s\n", "protocol", "analytic",
              "frames", "wire bytes", "broadcasts", "trace evts");
  bool all_match = true;
  bool trace_sends_match = true;
  std::string ab_chrome;
  for (const Row& r : rows) {
    Census cs = census_of(r.proto);
    const bool match = cs.frames == r.analytic_frames;
    all_match = all_match && match;
    trace_sends_match = trace_sends_match && cs.trace_sends == cs.frames;
    if (r.proto == Proto::kAB) ab_chrome = std::move(cs.chrome_json);
    std::printf("%-24s %10llu %10llu %12llu %12llu %12llu  %s\n",
                proto_name(r.proto),
                static_cast<unsigned long long>(r.analytic_frames),
                static_cast<unsigned long long>(cs.frames),
                static_cast<unsigned long long>(cs.wire_bytes),
                static_cast<unsigned long long>(cs.broadcasts),
                static_cast<unsigned long long>(cs.trace_events),
                match ? "" : "<- differs");
    report.add_row([&](ritas::JsonWriter& w) {
      w.field("protocol", r.key);
      w.field("analytic_frames", r.analytic_frames);
      w.field("frames", cs.frames);
      w.field("wire_bytes", cs.wire_bytes);
      w.field("broadcasts", cs.broadcasts);
      w.field("trace_events", cs.trace_events);
      w.field("trace_sends", cs.trace_sends);
    });
  }
  std::printf("\nshape check:\n");
  std::printf("  measured frame counts match the Figure-2 analysis : %s\n",
              all_match ? "PASS" : "FAIL");
  std::printf("  trace-derived send counts match stack metrics     : %s\n",
              trace_sends_match ? "PASS" : "FAIL");

  report.meta("all_match", all_match);
  report.meta("trace_sends_match", trace_sends_match);
  const bool wrote = report.write();
  std::printf("  wrote %s : %s\n", report.path().c_str(),
              wrote ? "PASS" : "FAIL");
  const bool wrote_trace = write_file("trace_fig2.json", ab_chrome);
  std::printf("  wrote trace_fig2.json (atomic broadcast, Chrome trace) : %s\n",
              wrote_trace ? "PASS" : "FAIL");
  return all_match && trace_sends_match && wrote && wrote_trace ? 0 : 1;
}
