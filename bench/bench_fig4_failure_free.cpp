// Figure 4: atomic broadcast burst latency and throughput, failure-free
// faultload, message sizes 10 B / 100 B / 1 KB / 10 KB.
#include "burst_figure.h"

int main() {
  using namespace ritas::bench;
  // Paper values for burst = 1000: L_burst 1386/1539/2150/12340 ms and
  // T_max 721/650/465/81 msgs/s.
  const PaperReference ref{{1386, 1539, 2150, 12340}, {721, 650, 465, 81}};
  // Batching must at least double sustained 10-byte throughput at the
  // largest burst (see docs/PROTOCOLS.md, "Batched AB_MSG framing").
  return run_burst_figure(
      "Figure 4: atomic broadcast, failure-free faultload (n=4)",
      "fig4_failure_free", Faultload::kFailureFree, ref, 2.0);
}
