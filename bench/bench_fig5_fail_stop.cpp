// Figure 5: atomic broadcast under the fail-stop faultload (one process
// crashed before the run; remaining n-1 senders send burst/(n-1) each).
#include "burst_figure.h"

int main() {
  using namespace ritas::bench;
  // Paper values for burst = 1000: L_burst 988/1164/1607/8655 ms and
  // T_max 858/621/834/115 msgs/s.
  const PaperReference ref{{988, 1164, 1607, 8655}, {858, 621, 834, 115}};
  const int rc = run_burst_figure(
      "Figure 5: atomic broadcast, fail-stop faultload (n=4, one crashed)",
      "fig5_fail_stop", Faultload::kFailStop, ref);

  // Extra shape check: the paper found fail-stop *faster* than failure-free
  // (fewer processes -> less contention). Compare one representative point.
  const auto ff = run_burst_avg(500, 100, Faultload::kFailureFree, bench_runs(3));
  const auto fs = run_burst_avg(500, 100, Faultload::kFailStop, bench_runs(3));
  std::printf("  fail-stop faster than failure-free (k=500) : %s (%.1f vs %.1f ms)\n",
              fs.latency_ms < ff.latency_ms ? "PASS" : "FAIL", fs.latency_ms,
              ff.latency_ms);
  return rc + (fs.latency_ms < ff.latency_ms ? 0 : 1);
}
