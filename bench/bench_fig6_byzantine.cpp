// Figure 6: atomic broadcast under the Byzantine faultload — one process
// permanently attacks the binary consensus (proposes 0) and multi-valued
// consensus (sends the default value in INIT and VECT) while still sending
// its share of the burst.
#include "burst_figure.h"

int main() {
  using namespace ritas::bench;
  // Paper values for burst = 1000: L_burst 1404/1576/2175/12347 ms and
  // T_max 711/634/460/81 msgs/s.
  const PaperReference ref{{1404, 1576, 2175, 12347}, {711, 634, 460, 81}};
  const int rc = run_burst_figure(
      "Figure 6: atomic broadcast, Byzantine faultload (n=4, one attacker)",
      "fig6_byzantine", Faultload::kByzantine, ref);

  // The paper's headline: performance is basically immune to the attack.
  const auto ff = run_burst_avg(500, 100, Faultload::kFailureFree, bench_runs(3));
  const auto byz = run_burst_avg(500, 100, Faultload::kByzantine, bench_runs(3));
  const double delta = (byz.latency_ms - ff.latency_ms) / ff.latency_ms * 100.0;
  std::printf(
      "  Byzantine within 10%% of failure-free (k=500): %s (%.1f vs %.1f ms, "
      "%+.1f%%)\n",
      std::abs(delta) < 10.0 ? "PASS" : "FAIL", byz.latency_ms, ff.latency_ms,
      delta);
  return rc + (std::abs(delta) < 10.0 ? 0 : 1);
}
