// Figure 7: relative cost of agreement — the fraction of all (reliable and
// echo) broadcasts spent running the agreement machinery, as a function of
// burst size. The paper reports ~92% at burst 4, dropping to 2.4% at 1000,
// with only two agreements needed per burst.
#include <cstdio>

#include "paper_harness.h"

int main() {
  using namespace ritas::bench;
  print_header(
      "Figure 7: relative cost of agreement vs burst size\n"
      "(n=4, 10-byte messages, failure-free)");

  const std::vector<std::uint32_t> bursts = {4,  8,   16,  32,  64,
                                             128, 256, 512, 1000};
  const int kRuns = bench_runs(3);
  std::printf("%-8s %18s %14s %12s\n", "burst", "agreement ratio", "(paper)",
              "AB rounds");

  BenchReport report("fig7");
  report.meta("runs", kRuns);
  report.meta("n", 4);

  double first_ratio = 0, last_ratio = 0;
  std::uint64_t last_rounds = 0;
  for (std::uint32_t k : bursts) {
    const BurstResult r = run_burst_avg(k, 10, Faultload::kFailureFree, kRuns);
    const char* paper = k == 4 ? "~92%" : (k == 1000 ? "2.4%" : "");
    std::printf("%-8u %17.1f%% %14s %12llu\n", k, r.agreement_ratio * 100, paper,
                static_cast<unsigned long long>(r.ab_rounds));
    report.add_row([&](ritas::JsonWriter& w) {
      w.field("burst", k);
      w.field("agreement_ratio", r.agreement_ratio);
      w.field("ab_rounds", r.ab_rounds);
    });
    if (k == bursts.front()) first_ratio = r.agreement_ratio;
    if (k == bursts.back()) {
      last_ratio = r.agreement_ratio;
      last_rounds = r.ab_rounds;
    }
    std::fflush(stdout);
  }

  std::printf("\nshape checks:\n");
  const bool high_small = first_ratio > 0.8;
  const bool low_large = last_ratio < 0.15;
  const bool few_agreements = last_rounds <= 8;
  std::printf("  small bursts dominated by agreement (>80%%)  : %s (%.1f%%)\n",
              high_small ? "PASS" : "FAIL", first_ratio * 100);
  std::printf("  large bursts amortize agreement (<15%%)      : %s (%.1f%%)\n",
              low_large ? "PASS" : "FAIL", last_ratio * 100);
  std::printf("  burst of 1000 needs only a handful of rounds: %s (%llu)\n",
              few_agreements ? "PASS" : "FAIL",
              static_cast<unsigned long long>(last_rounds));

  report.meta("agreement_dominates_small", high_small);
  report.meta("agreement_amortized_large", low_large);
  const bool wrote = report.write();
  std::printf("  wrote %s : %s\n", report.path().c_str(),
              wrote ? "PASS" : "FAIL");
  return (high_small && low_large && few_agreements && wrote) ? 0 : 1;
}
