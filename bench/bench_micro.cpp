// Microbenchmarks (google-benchmark) for the primitives under the stack:
// hashing, MACs, serialization, message codec, and in-memory single-process
// protocol machinery. These are wall-clock benches of this host, not the
// simulated testbed.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "common/serialize.h"
#include "core/atomic_broadcast.h"
#include "core/message.h"
#include "crypto/hmac.h"
#include "crypto/keychain.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace {

using namespace ritas;

Bytes make_payload(std::size_t size) {
  Bytes b(size);
  std::uint64_t s = 42;
  for (auto& x : b) x = static_cast<std::uint8_t>(splitmix64(s));
  return b;
}

void BM_Sha1(benchmark::State& state) {
  const Bytes data = make_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha1::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha1)->Arg(64)->Arg(1024)->Arg(16384);

void BM_Sha256(benchmark::State& state) {
  const Bytes data = make_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(Sha256::hash(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_HmacSha256(benchmark::State& state) {
  const Bytes key = make_payload(32);
  const Bytes data = make_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(hmac_sha256(key, data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_HmacSha256)->Arg(64)->Arg(1024)->Arg(16384);

void BM_EchoBroadcastHashVector(benchmark::State& state) {
  // The per-INIT cost at an echo-broadcast receiver: n keyed hashes.
  const auto n = static_cast<std::uint32_t>(state.range(0));
  const auto keys = KeyChain::deal(make_payload(32), n, 0);
  const Bytes m = make_payload(1024);
  for (auto _ : state) {
    for (std::uint32_t j = 0; j < n; ++j) {
      Sha1 h;
      h.update(m);
      h.update(keys.key(j));
      benchmark::DoNotOptimize(h.finish());
    }
  }
}
BENCHMARK(BM_EchoBroadcastHashVector)->Arg(4)->Arg(10)->Arg(31);

void BM_MessageEncode(benchmark::State& state) {
  Message msg;
  msg.path = InstanceId::root(ProtocolType::kAtomicBroadcast, 0)
                 .child({ProtocolType::kMultiValuedConsensus, 3})
                 .child({ProtocolType::kBinaryConsensus, 0})
                 .child({ProtocolType::kReliableBroadcast, 17});
  msg.tag = 2;
  msg.payload = make_payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(msg.encode());
  }
}
BENCHMARK(BM_MessageEncode)->Arg(10)->Arg(1024)->Arg(10240);

void BM_MessageDecode(benchmark::State& state) {
  Message msg;
  msg.path = InstanceId::root(ProtocolType::kAtomicBroadcast, 0)
                 .child({ProtocolType::kReliableBroadcast, 17});
  msg.payload = make_payload(static_cast<std::size_t>(state.range(0)));
  const Buffer frame = msg.encode();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Message::decode(frame));
  }
}
BENCHMARK(BM_MessageDecode)->Arg(10)->Arg(1024)->Arg(10240);

void BM_IdVectorCodec(benchmark::State& state) {
  std::vector<AtomicBroadcast::MsgId> ids;
  for (std::uint32_t i = 0; i < state.range(0); ++i) {
    ids.push_back({i % 4, i});
  }
  for (auto _ : state) {
    const Bytes enc = AtomicBroadcast::encode_ids(ids);
    benchmark::DoNotOptimize(AtomicBroadcast::decode_ids(enc));
  }
}
BENCHMARK(BM_IdVectorCodec)->Arg(16)->Arg(256)->Arg(4096);

void BM_RngCoin(benchmark::State& state) {
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.coin());
  }
}
BENCHMARK(BM_RngCoin);

}  // namespace

BENCHMARK_MAIN();
