// Execution pipeline: aggregate sharded-SMR throughput and per-frame
// HMAC verify latency vs the reactor/crypto thread count T.
//
// Two workloads:
//   1. verify micro — per-frame HMAC-SHA256 verification of 1 KiB frames,
//      inline vs a CryptoPool of k ∈ {1,2,4} workers (the transport's rx
//      offload path without sockets).
//   2. real-TCP sharded SMR — four ShardedNode processes-in-threads over a
//      loopback mesh, G=4 groups, sweeping T ∈ {0,1,2,4} reactor threads
//      (0 = the inline single-thread path; T>0 also turns on 2 crypto
//      workers, the deployment shape the tentpole targets).
//
// Gate (in-binary, exit 1 on failure; re-derived by CI from
// BENCH_pipeline.json): T=2 must reach >= 1.3x the aggregate ops/s of
// T=1. The gate is HARDWARE-GUARDED: with fewer than 2n (= 8) hardware
// threads the four nodes' poll+reactor+crypto threads already oversubscribe
// the cores at T=1, so extra reactors cannot buy wall-clock speedup — the
// sweep still runs and reports, but the floor is only enforced when
// hardware_concurrency >= 8 (CI re-checks under the same condition;
// RITAS_PIPELINE_GATE=1/0 forces it on/off for calibration runs).
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "crypto/ct.h"
#include "crypto/hmac.h"
#include "net/crypto_pool.h"
#include "paper_harness.h"
#include "ritas/sharded_node.h"
#include "smr/kv_machine.h"

namespace ritas::bench {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::uint32_t kN = 4;
constexpr std::uint32_t kGroups = 4;
constexpr std::uint32_t kPerShardOps = 40;
constexpr double kMinSpeedupT2 = 1.3;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
}

// --- workload 1: per-frame verify latency ----------------------------------

struct VerifyResult {
  double ns_per_frame = 0;
  double frames_per_s = 0;
};

VerifyResult verify_micro(std::uint32_t workers, int frames) {
  const Bytes key(32, 0x4b);
  const Bytes header(24, 0x11);
  const Bytes body(1024, 0x22);
  const Sha256::Digest want = hmac_sha256_2(key, header, body);
  const auto digest_ok = [&](const Sha256::Digest& got) {
    return ct_equal(ByteView(got.data(), got.size()),
                    ByteView(want.data(), want.size()));
  };
  const auto t0 = Clock::now();
  if (workers == 0) {
    std::uint64_t ok = 0;
    for (int i = 0; i < frames; ++i) {
      ok += digest_ok(hmac_sha256_2(key, header, body)) ? 1 : 0;
    }
    if (ok != static_cast<std::uint64_t>(frames)) std::abort();
  } else {
    net::CryptoPool pool(workers);
    std::atomic<int> done{0};
    for (int i = 0; i < frames; ++i) {
      pool.submit([&] {
        if (digest_ok(hmac_sha256_2(key, header, body))) {
          done.fetch_add(1, std::memory_order_relaxed);
        }
      });
    }
    while (done.load(std::memory_order_relaxed) < frames) {
      std::this_thread::yield();
    }
  }
  const double ms = ms_since(t0);
  VerifyResult r;
  r.ns_per_frame = ms * 1e6 / frames;
  r.frames_per_s = frames / (ms / 1e3);
  return r;
}

// --- workload 2: real-TCP sharded SMR sweep --------------------------------

std::vector<net::PeerAddr> reserve_local_ports(std::uint32_t n) {
  std::vector<net::PeerAddr> peers;
  std::vector<int> fds;
  for (std::uint32_t i = 0; i < n; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    peers.push_back(net::PeerAddr{"127.0.0.1", ntohs(addr.sin_port)});
    fds.push_back(fd);
  }
  for (int fd : fds) ::close(fd);
  return peers;
}

Bytes set_cmd(const std::string& key, const std::string& value) {
  smr::KvCommand c;
  c.op = smr::KvCommand::Op::kSet;
  c.key = key;
  c.value = value;
  return c.encode();
}

/// kPerShardOps keys per shard, scanning "k<i>" (same partition-aware
/// load generator as bench_shard_scaling).
std::vector<std::vector<std::string>> keys_per_shard(std::uint32_t groups) {
  std::vector<std::vector<std::string>> keys(groups);
  std::uint32_t filled = 0;
  for (std::uint64_t i = 0; filled < groups; ++i) {
    const std::string k = "k" + std::to_string(i);
    const auto s = smr::shard_of_key(
        ByteView(reinterpret_cast<const std::uint8_t*>(k.data()), k.size()),
        groups);
    if (keys[s].size() >= kPerShardOps) continue;
    keys[s].push_back(k);
    if (keys[s].size() == kPerShardOps) ++filled;
  }
  return keys;
}

struct SmrResult {
  bool done = false;
  double elapsed_ms = 0;
  double agg_ops_s = 0;
  std::uint64_t handoff_enqueued = 0;
  std::uint64_t handoff_dropped = 0;
  std::uint64_t crypto_offloaded = 0;
  std::uint64_t crypto_mac_offloaded = 0;
};

SmrResult run_smr_once(std::uint32_t reactor_threads, std::uint64_t seed) {
  const auto peers = reserve_local_ports(kN);
  std::vector<std::unique_ptr<ShardedNode>> nodes(kN);
  std::vector<std::thread> starters;
  for (std::uint32_t p = 0; p < kN; ++p) {
    ShardedNode::Options o;
    o.n = kN;
    o.self = p;
    o.peers = peers;
    o.master_secret = to_bytes("bench-pipeline");
    o.groups = kGroups;
    o.reactor_threads = reactor_threads;
    o.crypto_threads = reactor_threads > 0 ? 2 : 0;
    o.rng_seed = seed;
    nodes[p] = std::make_unique<ShardedNode>(std::move(o));
    starters.emplace_back([&nodes, p] { nodes[p]->start(); });
  }
  for (auto& t : starters) t.join();

  const auto keys = keys_per_shard(kGroups);
  const std::uint64_t total =
      static_cast<std::uint64_t>(kGroups) * kPerShardOps;
  const auto t0 = Clock::now();
  std::uint64_t seq = 0;
  for (std::uint32_t i = 0; i < kPerShardOps; ++i) {
    for (std::uint32_t g = 0; g < kGroups; ++g) {
      nodes[seq % kN]->submit(/*client=*/1, seq, set_cmd(keys[g][i], "v"));
      ++seq;
    }
  }
  SmrResult r;
  r.done = true;
  for (std::uint32_t p = 0; p < kN; ++p) {
    r.done = r.done && nodes[p]->wait_applied_at_least(
                           total, std::chrono::seconds(120));
  }
  r.elapsed_ms = ms_since(t0);
  r.agg_ops_s = (r.done && r.elapsed_ms > 0)
                    ? static_cast<double>(total) / (r.elapsed_ms / 1e3)
                    : 0;
  for (std::uint32_t p = 0; p < kN; ++p) {
    const auto ps = nodes[p]->pipeline_stats();
    r.handoff_enqueued += ps.handoff_enqueued;
    r.handoff_dropped += ps.handoff_dropped;
    const auto ts = nodes[p]->transport_stats();
    r.crypto_offloaded += ts.crypto_offloaded;
    r.crypto_mac_offloaded += ts.crypto_mac_offloaded;
  }
  for (auto& n : nodes) n->stop();
  return r;
}

SmrResult run_smr_avg(std::uint32_t reactor_threads, int runs) {
  SmrResult acc;
  acc.done = true;
  for (int i = 0; i < runs; ++i) {
    const SmrResult r =
        run_smr_once(reactor_threads, 7000 + static_cast<std::uint64_t>(i));
    acc.done = acc.done && r.done;
    acc.elapsed_ms += r.elapsed_ms / runs;
    acc.agg_ops_s += r.agg_ops_s / runs;
    acc.handoff_enqueued += r.handoff_enqueued;
    acc.handoff_dropped += r.handoff_dropped;
    acc.crypto_offloaded += r.crypto_offloaded;
    acc.crypto_mac_offloaded += r.crypto_mac_offloaded;
  }
  return acc;
}

}  // namespace
}  // namespace ritas::bench

int main() {
  using namespace ritas::bench;
  const int kRuns = bench_runs(3);
  const unsigned hw = std::thread::hardware_concurrency();

  // Hardware guard: below 2n hardware threads the T=1 deployment already
  // saturates every core, so the speedup floor is physically out of reach
  // and only reported, not enforced.
  bool gate_enforced = hw >= 2 * kN;
  if (const char* env = std::getenv("RITAS_PIPELINE_GATE")) {
    gate_enforced = std::atoi(env) != 0;
  }

  print_header(
      "Execution pipeline: reactor + crypto threads vs aggregate "
      "sharded-SMR ops/s and per-frame verify latency");

  BenchReport report("pipeline");
  report.meta("n", kN);
  report.meta("groups", kGroups);
  report.meta("per_shard_ops", static_cast<std::uint64_t>(kPerShardOps));
  report.meta("runs", kRuns);
  report.meta("hw_threads", static_cast<std::uint64_t>(hw));
  report.meta("gate_enforced", gate_enforced);
  report.meta("min_speedup_t2", kMinSpeedupT2);

  // --- verify micro ---------------------------------------------------------
  const int kFrames = bench_runs(3) * 2000;
  std::printf("per-frame HMAC verify (1 KiB frames, %d frames):\n", kFrames);
  std::printf("%-10s %14s %14s\n", "workers", "ns/frame", "frames/s");
  for (std::uint32_t k : {0u, 1u, 2u, 4u}) {
    const VerifyResult v = verify_micro(k, kFrames);
    std::printf("%-10s %14.0f %14.0f\n",
                k == 0 ? "inline" : std::to_string(k).c_str(), v.ns_per_frame,
                v.frames_per_s);
    report.add_row([&](ritas::JsonWriter& w) {
      w.field("kind", "verify");
      w.field("workers", k);
      w.field("ns_per_frame", v.ns_per_frame);
      w.field("frames_per_s", v.frames_per_s);
    });
  }

  // --- real-TCP sharded sweep ----------------------------------------------
  std::printf("\nsharded SMR over real TCP (n=%u, G=%u, %llu ops):\n", kN,
              kGroups,
              static_cast<unsigned long long>(kGroups) * kPerShardOps);
  std::printf("%-10s %12s %14s %10s %12s\n", "reactors", "elapsed(ms)",
              "agg ops/s", "speedup", "handoff");
  double t1_ops = 0;
  double speedup_t2 = 0;
  bool all_done = true;
  bool no_drops = true;
  for (std::uint32_t t : {0u, 1u, 2u, 4u}) {
    const SmrResult r = run_smr_avg(t, kRuns);
    all_done = all_done && r.done;
    no_drops = no_drops && r.handoff_dropped == 0;
    if (t == 1) t1_ops = r.agg_ops_s;
    const double speedup = (t >= 1 && t1_ops > 0) ? r.agg_ops_s / t1_ops : 0;
    if (t == 2) speedup_t2 = speedup;
    std::printf("%-10s %12.1f %14.0f %9.2fx %12llu\n",
                t == 0 ? "inline" : std::to_string(t).c_str(), r.elapsed_ms,
                r.agg_ops_s, speedup,
                static_cast<unsigned long long>(r.handoff_enqueued));
    std::fflush(stdout);
    report.add_row([&](ritas::JsonWriter& w) {
      w.field("kind", "smr");
      w.field("reactor_threads", t);
      w.field("crypto_threads", t > 0 ? 2u : 0u);
      w.field("elapsed_ms", r.elapsed_ms);
      w.field("agg_ops_s", r.agg_ops_s);
      w.field("speedup_vs_t1", speedup);
      w.field("handoff_enqueued", r.handoff_enqueued);
      w.field("handoff_dropped", r.handoff_dropped);
      w.field("crypto_offloaded", r.crypto_offloaded);
      w.field("crypto_mac_offloaded", r.crypto_mac_offloaded);
      w.field("completed", r.done);
    });
  }

  const bool gate_ok = !gate_enforced || speedup_t2 >= kMinSpeedupT2;
  std::printf("\nshape checks:\n");
  std::printf("  all sweeps completed                       : %s\n",
              all_done ? "PASS" : "FAIL");
  std::printf("  no handoff drops (backpressure only)       : %s\n",
              no_drops ? "PASS" : "FAIL");
  std::printf("  T=2 >= %.1fx T=1 (hw=%u, %s)              : %s (%.2fx)\n",
              kMinSpeedupT2, hw, gate_enforced ? "enforced" : "report-only",
              gate_ok ? "PASS" : "FAIL", speedup_t2);

  report.meta("speedup_t2", speedup_t2);
  report.meta("gate_speedup_ok", gate_ok);
  report.meta("all_done", all_done);
  report.meta("no_drops", no_drops);
  const bool wrote = report.write();
  std::printf("  wrote %s : %s\n", report.path().c_str(),
              wrote ? "PASS" : "FAIL");
  return (gate_ok && all_done && no_drops && wrote) ? 0 : 1;
}
