// Group-size scaling (extension): the paper fixes n = 4; this bench
// measures how each protocol's isolated latency and the atomic broadcast
// throughput scale with the group size (and thus the fault budget
// f = (n-1)/3). The quadratic message complexity of Bracha's reliable
// broadcast is the expected driver: latency roughly doubles per +3
// processes while the tolerated faults grow linearly.
#include <cstdio>

#include "paper_harness.h"

namespace {

using namespace ritas;
using namespace ritas::bench;

double isolated_latency_n(Proto proto, std::uint32_t n, int iters) {
  ClusterOptions o;
  o.n = n;
  o.seed = 9;
  o.lan = paper_lan(true);
  Cluster c(o);
  Sample lat;
  const Bytes payload(10, 0x61);
  for (int it = 0; it < iters; ++it) {
    const std::uint64_t seq = static_cast<std::uint64_t>(it) + 1;
    bool done = false;
    switch (proto) {
      case Proto::kRB: {
        const InstanceId id = InstanceId::root(ProtocolType::kReliableBroadcast, seq);
        std::vector<RbAlgorithm*> inst(n, nullptr);
        for (ProcessId p : c.live()) {
          RbAlgorithm::DeliverFn cb;
          if (p == 0) cb = [&done](Slice) { done = true; };
          inst[p] = &c.create_rb(p, id, 0, Attribution::kPayload,
                                                      std::move(cb));
        }
        c.call(0, [&] { inst[0]->bcast(Bytes(payload)); });
        break;
      }
      case Proto::kBC: {
        const InstanceId id = InstanceId::root(ProtocolType::kBinaryConsensus, seq);
        std::vector<BcAlgorithm*> inst(n, nullptr);
        for (ProcessId p : c.live()) {
          BcAlgorithm::DecideFn cb;
          if (p == 0) cb = [&done](bool) { done = true; };
          inst[p] = &c.create_bc(p, id, Attribution::kAgreement,
                                                    std::move(cb));
        }
        for (ProcessId p : c.live()) {
          c.call(p, [&, p] { inst[p]->propose(true); });
        }
        break;
      }
      case Proto::kAB: {
        const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, seq);
        std::vector<AtomicBroadcast*> inst(n, nullptr);
        for (ProcessId p : c.live()) {
          AtomicBroadcast::DeliverFn cb;
          if (p == 0) cb = [&done](ProcessId, std::uint64_t, Slice) { done = true; };
          inst[p] = &c.create_root<AtomicBroadcast>(p, id, std::move(cb));
        }
        c.call(0, [&] { inst[0]->bcast(Bytes(payload)); });
        break;
      }
      default:
        return 0;
    }
    c.run_until([&] { return done; }, c.now() + kDeadline);
    lat.add(static_cast<double>(c.now()) / 1e3);
    c.run_all();
    for (ProcessId p : c.live()) c.destroy_roots(p);
    // destroy_roots leaves the sim clock running; measure per-iteration by
    // differencing: reset via fresh sample bookkeeping below.
    break;  // one isolated execution per fresh cluster keeps timing clean
  }
  return lat.mean();
}

double ab_throughput_n(std::uint32_t n, std::uint32_t burst) {
  ClusterOptions o;
  o.n = n;
  o.seed = 10;
  o.lan = paper_lan(true);
  Cluster c(o);
  std::vector<AtomicBroadcast*> ab(n, nullptr);
  std::uint64_t delivered = 0;
  const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
  for (ProcessId p : c.live()) {
    AtomicBroadcast::DeliverFn cb;
    if (p == 0) cb = [&delivered](ProcessId, std::uint64_t, Slice) { ++delivered; };
    ab[p] = &c.create_root<AtomicBroadcast>(p, id, std::move(cb));
  }
  const std::uint32_t per = burst / n;
  const Bytes payload(10, 0x62);
  for (ProcessId p : c.live()) {
    c.call(p, [&, p] {
      for (std::uint32_t i = 0; i < per; ++i) ab[p]->bcast(Bytes(payload));
    });
  }
  const std::uint32_t total = per * n;
  c.run_until([&] { return delivered >= total; }, kDeadline);
  const double secs = static_cast<double>(c.now()) / 1e9;
  return secs > 0 ? total / secs : 0;
}

}  // namespace

int main() {
  print_header(
      "Group-size scaling (extension; the paper fixes n = 4)\n"
      "isolated latency (us, 10-byte payloads) and AB throughput (msg/s)");

  std::printf("%-6s %4s %10s %10s %10s %14s\n", "n", "f", "RB (us)", "BC (us)",
              "AB (us)", "AB Tmax(msg/s)");
  double prev_rb = 0;
  bool monotone = true;
  for (std::uint32_t n : {4u, 7u, 10u, 13u}) {
    const double rb = isolated_latency_n(Proto::kRB, n, 1);
    const double bc = isolated_latency_n(Proto::kBC, n, 1);
    const double abl = isolated_latency_n(Proto::kAB, n, 1);
    const double thr = ab_throughput_n(n, 400);
    std::printf("%-6u %4u %10.0f %10.0f %10.0f %14.0f\n", n, max_faults(n), rb,
                bc, abl, thr);
    if (rb < prev_rb) monotone = false;
    prev_rb = rb;
    std::fflush(stdout);
  }
  std::printf("\nshape check:\n");
  std::printf("  latency grows with group size (O(n^2) messages): %s\n",
              monotone ? "PASS" : "FAIL");
  return monotone ? 0 : 1;
}
