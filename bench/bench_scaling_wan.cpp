// Beyond the testbed: the large-n / WAN scaling campaign (ROADMAP item 3).
//
// The paper stops at n = 4 on one switch and measures closed-loop bursts.
// This bench asks the production question instead: with an OPEN-loop
// Poisson client stream (arrivals never wait for the service), what
// delivery-latency tail does the stack show as the group grows to n = 16
// (n = 31 env-gated), as the network turns into an asymmetric WAN, and
// under the two headline faultloads — kill_link churn and the §4.2
// Byzantine attack?
//
// All numbers are virtual-time (machine-independent): same seed =>
// bit-identical rows, which is what lets CI diff the committed baseline.
//
// Env knobs:
//   RITAS_SCALING_SMOKE=1  trim to n in {4, 7} (CI scaling-smoke job)
//   RITAS_SCALING_N31=1    add the n = 31 column (slow)
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/rng.h"
#include "paper_harness.h"
#include "sim/campaign.h"

namespace {

using namespace ritas;
using namespace ritas::bench;
using sim::CampaignFault;
using sim::CampaignOptions;
using sim::CampaignResult;
using sim::NetProfile;

/// Per-cell seed derived from the cell key, NOT a loop index: a trimmed
/// smoke sweep reproduces the exact rows of the full sweep.
std::uint64_t cell_seed(std::uint32_t n, NetProfile net, CampaignFault fault) {
  std::uint64_t st = 0x5ca11a6000000000ull ^ (std::uint64_t{n} << 16) ^
                     (std::uint64_t(static_cast<std::uint8_t>(net)) << 8) ^
                     std::uint64_t(static_cast<std::uint8_t>(fault));
  return splitmix64(st);
}

CampaignOptions cell_options(std::uint32_t n, NetProfile net,
                             CampaignFault fault) {
  CampaignOptions o;
  o.n = n;
  o.net = net;
  o.fault = fault;
  o.seed = cell_seed(n, net, fault);
  // Offered load shrinks with n so the full matrix stays tractable: the
  // per-op protocol cost grows ~n^2 and every correct process is a
  // front-end, so this still exercises genuine queueing at every size.
  o.ops = n <= 7 ? 120 : n <= 16 ? 80 : 48;
  o.ops_per_sec = 200.0;
  o.clients = 1000;
  o.payload_bytes = 100;
  return o;
}

}  // namespace

int main() {
  print_header(
      "Scaling campaign (extension): open-loop Poisson load, n x {LAN,WAN}\n"
      "x {fault-free, kill_link churn, Byzantine}; delivery-latency tails\n"
      "(virtual time, machine-independent, bit-identical per seed)");

  std::vector<std::uint32_t> sizes = {4, 7, 10, 16};
  if (const char* env = std::getenv("RITAS_SCALING_SMOKE");
      env != nullptr && env[0] == '1') {
    sizes = {4, 7};
  }
  if (const char* env = std::getenv("RITAS_SCALING_N31");
      env != nullptr && env[0] == '1') {
    sizes.push_back(31);
  }

  BenchReport report("scaling_wan");
  report.meta("ops_per_sec", 200.0);
  report.meta("clients", std::uint64_t{1000});
  report.meta("payload_bytes", std::uint64_t{100});

  std::printf("%4s %5s %10s %6s %5s %9s %9s %9s %8s %5s %4s\n", "n", "net",
              "fault", "ops", "done", "p50(ms)", "p99(ms)", "p999(ms)",
              "elapsed", "bklg", "ord");

  bool all_ok = true;
  // p99 per (n, fault) under LAN, to gate WAN >= LAN on the same cell.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> lan_p99;  // key, ns

  for (std::uint32_t n : sizes) {
    for (NetProfile net : {NetProfile::kLan, NetProfile::kWan}) {
      for (CampaignFault fault :
           {CampaignFault::kNone, CampaignFault::kChurn,
            CampaignFault::kByzantine}) {
        const CampaignOptions o = cell_options(n, net, fault);
        const CampaignResult r = sim::run_campaign(o);

        const double p50_ms = static_cast<double>(r.latency.p50()) / 1e6;
        const double p99_ms = static_cast<double>(r.latency.p99()) / 1e6;
        const double p999_ms = static_cast<double>(r.latency.p999()) / 1e6;
        std::printf("%4u %5s %10s %6llu %5s %9.2f %9.2f %9.2f %7.2fs %5llu %4s\n",
                    n, sim::net_profile_name(net),
                    sim::campaign_fault_name(fault),
                    static_cast<unsigned long long>(r.ops_offered),
                    r.completed ? "yes" : "NO", p50_ms, p99_ms, p999_ms,
                    static_cast<double>(r.elapsed) / 1e9,
                    static_cast<unsigned long long>(r.backlog_peak),
                    r.ordered ? "yes" : "NO");

        report.add_row([&](JsonWriter& w) {
          w.field("n", static_cast<std::uint64_t>(n));
          w.field("net", sim::net_profile_name(net));
          w.field("fault", sim::campaign_fault_name(fault));
          w.field("seed", o.seed);
          w.field("ops", r.ops_offered);
          w.field("ops_completed", r.ops_completed);
          w.field("completed", r.completed);
          w.field("ordered", r.ordered);
          w.field("p50_ns", r.latency.p50());
          w.field("p99_ns", r.latency.p99());
          w.field("p999_ns", r.latency.p999());
          w.field("mean_ns", r.latency.mean());
          w.field("max_ns", r.latency.max());
          w.field("backlog_peak", r.backlog_peak);
          w.field("elapsed_ns", r.elapsed);
          w.field("retransmissions", r.retransmissions);
          w.field("fingerprint", r.fingerprint);
        });

        all_ok = all_ok && r.completed && r.ordered;
        const std::uint64_t key =
            (std::uint64_t{n} << 8) | static_cast<std::uint8_t>(fault);
        if (net == NetProfile::kLan) {
          lan_p99.emplace_back(key, r.latency.p99());
        } else {
          for (const auto& [k, lan_ns] : lan_p99) {
            if (k == key && r.latency.p99() < lan_ns) {
              std::printf("  GATE: WAN p99 below LAN p99 at n=%u fault=%s\n",
                          n, sim::campaign_fault_name(fault));
              all_ok = false;
            }
          }
        }
      }
    }
  }

  if (!report.write()) {
    std::fprintf(stderr, "failed to write %s\n", report.path().c_str());
    return 1;
  }
  std::printf("\nshape checks:\n");
  std::printf("  every cell completed with total order intact : %s\n",
              all_ok ? "PASS" : "FAIL");
  return all_ok ? 0 : 1;
}
