// Shard scaling: aggregate committed ops/s of the sharded SMR service as
// the number of consensus groups G grows over one shared mesh.
//
// Weak-scaling workload: every shard gets the SAME fixed load (keyed SET
// commands whose keys hash to that shard), submitted through rotating
// process fronts, and the run ends when every correct process has applied
// the full load of every shard. The paper's LAN is latency-bound at small
// payloads, so G groups pipeline their (independent) agreement rounds
// over the shared links and aggregate throughput grows with G until the
// per-host CPU/NIC timelines saturate — exactly the contention the shared
// SimNetwork models.
//
// Gate (enforced in-binary, exit 1 on failure, and re-checked by CI from
// BENCH_shard_scaling.json): G=4 must commit at least 2x the aggregate
// ops/s of G=1.
#include <cstdio>
#include <string>
#include <vector>

#include "paper_harness.h"
#include "sim/sharded.h"
#include "smr/kv_machine.h"

namespace ritas::bench {
namespace {

using sim::ShardedCluster;
using sim::ShardedClusterOptions;
using smr::KvCommand;
using smr::shard_of_key;

constexpr std::uint32_t kPerShardOps = 48;  // fixed per-shard load
constexpr double kMinSpeedupG4 = 2.0;       // the CI-gated floor

Bytes set_cmd(const std::string& key, const std::string& value) {
  KvCommand c;
  c.op = KvCommand::Op::kSet;
  c.key = key;
  c.value = value;
  return c.encode();
}

/// kPerShardOps keys per shard: scan "k<i>" until every shard is full.
std::vector<std::vector<std::string>> keys_per_shard(std::uint32_t groups) {
  std::vector<std::vector<std::string>> keys(groups);
  std::uint32_t filled = 0;
  for (std::uint64_t i = 0; filled < groups; ++i) {
    const std::string k = "k" + std::to_string(i);
    const auto s = shard_of_key(
        ByteView(reinterpret_cast<const std::uint8_t*>(k.data()), k.size()),
        groups);
    if (keys[s].size() >= kPerShardOps) continue;
    keys[s].push_back(k);
    if (keys[s].size() == kPerShardOps) ++filled;
  }
  return keys;
}

struct ScalingResult {
  double elapsed_ms = 0;
  double agg_ops_s = 0;
  std::uint64_t foreign_drops = 0;
  std::uint64_t forwarded = 0;
};

ScalingResult run_once(std::uint32_t groups, std::uint64_t seed) {
  ShardedClusterOptions o;
  o.n = 4;
  o.groups = groups;
  o.seed = seed;
  // Latency-bound profile, NOT paper_lan(true): sharding scales by
  // pipelining independent agreement rounds over the network round trip,
  // so the bench keeps the calibrated switch latency but prices protocol
  // CPU at modern-commodity cost (the calibrated 28us/msg is a 500 MHz
  // Pentium III with kernel IPsec — under it the shared hosts are
  // CPU-saturated at G=1 already and aggregate throughput is flat, a true
  // but different observation). Gigabit-class NIC for the same reason.
  o.lan.ipsec = false;
  o.lan.bytes_per_sec = 110e6;
  o.lan.cpu_send_ns = 2'000;
  o.lan.cpu_recv_ns = 2'000;
  o.lan.cpu_per_byte_ns = 1.0;
  o.lan.jitter_ns = 40'000;
  // Every group runs the tuned production batching config (identical per
  // group so the G sweep compares like with like; the per-group override
  // vector is the same plumbing a deployment uses to tune shards apart).
  AbBatchConfig batch;
  batch.enabled = true;
  batch.max_batch_msgs = 16;
  batch.max_batch_bytes = 8 * 1024;
  o.ab_batch_per_group.assign(groups, batch);
  ShardedCluster c(o);

  const auto keys = keys_per_shard(groups);
  const std::uint64_t total =
      static_cast<std::uint64_t>(groups) * kPerShardOps;

  const sim::Time t0 = c.now();
  std::uint64_t seq = 0;
  for (std::uint32_t i = 0; i < kPerShardOps; ++i) {
    for (std::uint32_t g = 0; g < groups; ++g) {
      // Rotate fronts so every process both originates and forwards load.
      c.submit(static_cast<ProcessId>(seq % 4), /*client=*/1, seq,
               set_cmd(keys[g][i], "v"));
      ++seq;
    }
  }
  c.flush_all();
  const bool done = c.run_until(
      [&] { return c.all_applied_at_least(total); }, t0 + kDeadline);

  ScalingResult r;
  r.elapsed_ms = static_cast<double>(c.now() - t0) / 1e6;
  r.agg_ops_s = (done && r.elapsed_ms > 0)
                    ? static_cast<double>(total) / (r.elapsed_ms / 1e3)
                    : 0;
  const Metrics m = c.total_metrics();
  r.foreign_drops = m.foreign_group_dropped;
  for (ProcessId p = 0; p < c.n(); ++p) {
    r.forwarded += c.service(p).forwarded();
  }
  return r;
}

ScalingResult run_avg(std::uint32_t groups, int runs) {
  ScalingResult acc;
  for (int i = 0; i < runs; ++i) {
    const ScalingResult r =
        run_once(groups, 1000 + static_cast<std::uint64_t>(i));
    acc.elapsed_ms += r.elapsed_ms / runs;
    acc.agg_ops_s += r.agg_ops_s / runs;
    acc.foreign_drops += r.foreign_drops;
    acc.forwarded += r.forwarded;
  }
  return acc;
}

}  // namespace
}  // namespace ritas::bench

int main() {
  using namespace ritas::bench;
  const std::vector<std::uint32_t> sweep = {1, 2, 4, 8};
  const int kRuns = bench_runs(3);

  print_header(
      "Shard scaling: G independent RITAS groups over one shared mesh "
      "(n=4, weak scaling)");

  BenchReport report("shard_scaling");
  report.meta("n", 4);
  report.meta("runs", kRuns);
  report.meta("per_shard_ops", static_cast<std::uint64_t>(kPerShardOps));
  report.meta("min_speedup_g4", kMinSpeedupG4);

  std::printf("%-8s %10s %12s %14s %10s\n", "groups", "total ops",
              "elapsed(ms)", "agg ops/s", "speedup");
  double base = 0;
  double g4_speedup = 0;
  bool clean_mesh = true;
  for (std::uint32_t g : sweep) {
    const ScalingResult r = run_avg(g, kRuns);
    if (g == 1) base = r.agg_ops_s;
    const double speedup = base > 0 ? r.agg_ops_s / base : 0;
    if (g == 4) g4_speedup = speedup;
    clean_mesh = clean_mesh && r.foreign_drops == 0 && r.forwarded == 0;
    std::printf("%-8u %10llu %12.1f %14.0f %9.2fx\n", g,
                static_cast<unsigned long long>(g * kPerShardOps),
                r.elapsed_ms, r.agg_ops_s, speedup);
    std::fflush(stdout);
    report.add_row([&](ritas::JsonWriter& w) {
      w.field("groups", g);
      w.field("total_ops", static_cast<std::uint64_t>(g) * kPerShardOps);
      w.field("elapsed_ms", r.elapsed_ms);
      w.field("agg_ops_s", r.agg_ops_s);
      w.field("speedup_vs_g1", speedup);
      w.field("foreign_drops", r.foreign_drops);
      w.field("forwarded", r.forwarded);
    });
  }

  const bool gate = g4_speedup >= kMinSpeedupG4;
  std::printf("\nshape checks:\n");
  std::printf("  G=4 aggregate >= %.1fx G=1                  : %s (%.2fx)\n",
              kMinSpeedupG4, gate ? "PASS" : "FAIL", g4_speedup);
  std::printf("  shared mesh clean (no foreign drops/fwds)  : %s\n",
              clean_mesh ? "PASS" : "FAIL");

  report.meta("speedup_g4", g4_speedup);
  report.meta("gate_speedup_ok", gate);
  report.meta("clean_mesh", clean_mesh);
  const bool wrote = report.write();
  std::printf("  wrote %s : %s\n", report.path().c_str(),
              wrote ? "PASS" : "FAIL");
  return (gate && clean_mesh && wrote) ? 0 : 1;
}
