// The paper's related-work claim, measured: "public-key operations still
// dominate the latency of reliable multicast" (Reiter, quoted in §5).
//
// Compares the RITAS matrix echo broadcast (vectors of keyed hashes,
// §2.3) against the baseline it replaced — Reiter's signed echo multicast
// with real RSA — on the same simulated testbed, plus wall-clock
// microbenchmarks of the primitive operations on this host.
#include <chrono>
#include <cstdio>
#include <memory>

#include "core/echo_broadcast.h"
#include "core/signed_echo_broadcast.h"
#include "paper_harness.h"

namespace {

using namespace ritas;
using namespace ritas::bench;

std::vector<std::shared_ptr<const RsaDirectory>> make_dirs(std::uint32_t n,
                                                           std::size_t bits) {
  Rng rng(2024);
  std::vector<RsaKeyPair> keys;
  std::vector<RsaPublicKey> pubs;
  for (std::uint32_t p = 0; p < n; ++p) {
    keys.push_back(RsaKeyPair::generate(rng, bits));
    pubs.push_back(keys.back().pub);
  }
  std::vector<std::shared_ptr<const RsaDirectory>> dirs;
  for (std::uint32_t p = 0; p < n; ++p) {
    auto d = std::make_shared<RsaDirectory>();
    d->pubs = pubs;
    d->self = keys[p];
    dirs.push_back(std::move(d));
  }
  return dirs;
}

double matrix_eb_latency_us(int iters) {
  ClusterOptions o;
  o.n = 4;
  o.seed = 1;
  o.lan = paper_lan(true);
  Cluster c(o);
  Sample lat;
  for (int it = 0; it < iters; ++it) {
    const InstanceId id =
        InstanceId::root(ProtocolType::kEchoBroadcast, static_cast<std::uint64_t>(it) + 1);
    bool done = false;
    std::vector<EchoBroadcast*> eb(4, nullptr);
    for (ProcessId p : c.live()) {
      EchoBroadcast::DeliverFn cb;
      if (p == 0) cb = [&done](Slice) { done = true; };
      eb[p] = &c.create_root<EchoBroadcast>(p, id, 0, Attribution::kPayload,
                                            std::move(cb));
    }
    const sim::Time t0 = c.now();
    c.call(0, [&] { eb[0]->bcast(Bytes(10, 0x61)); });
    c.run_until([&] { return done; }, c.now() + kDeadline);
    lat.add(static_cast<double>(c.now() - t0) / 1e3);
    c.run_all();
    for (ProcessId p : c.live()) c.destroy_roots(p);
  }
  return lat.mean();
}

double signed_eb_latency_us(int iters, const SignatureCosts& costs,
                            const std::vector<std::shared_ptr<const RsaDirectory>>& dirs) {
  ClusterOptions o;
  o.n = 4;
  o.seed = 1;
  o.lan = paper_lan(true);
  Cluster c(o);
  Sample lat;
  for (int it = 0; it < iters; ++it) {
    const InstanceId id =
        InstanceId::root(ProtocolType::kEchoBroadcast, static_cast<std::uint64_t>(it) + 1);
    bool done = false;
    std::vector<SignedEchoBroadcast*> eb(4, nullptr);
    for (ProcessId p : c.live()) {
      SignedEchoBroadcast::DeliverFn cb;
      if (p == 0) cb = [&done](Slice) { done = true; };
      eb[p] = &c.create_root<SignedEchoBroadcast>(
          p, id, 0, Attribution::kPayload, dirs[p], costs, std::move(cb));
    }
    const sim::Time t0 = c.now();
    c.call(0, [&] { eb[0]->bcast(Bytes(10, 0x61)); });
    c.run_until([&] { return done; }, c.now() + kDeadline);
    lat.add(static_cast<double>(c.now() - t0) / 1e3);
    c.run_all();
    for (ProcessId p : c.live()) c.destroy_roots(p);
  }
  return lat.mean();
}

}  // namespace

int main() {
  print_header(
      "Baseline comparison: matrix echo broadcast (RITAS, §2.3) vs Reiter's\n"
      "signed echo multicast (Rampart) on the simulated 500 MHz testbed");

  std::printf("generating 300-bit RSA keys for the baseline...\n");
  const auto dirs = make_dirs(4, 300);

  // Wall-clock microbenchmark of the primitives on THIS host.
  {
    const Bytes m(1024, 0x42);
    const auto t0 = std::chrono::steady_clock::now();
    constexpr int kSigns = 5;
    Bytes sig;
    for (int i = 0; i < kSigns; ++i) sig = rsa_sign(dirs[0]->self, m);
    const auto t1 = std::chrono::steady_clock::now();
    constexpr int kVerifies = 20;
    for (int i = 0; i < kVerifies; ++i) (void)rsa_verify(dirs[0]->pubs[0], m, sig);
    const auto t2 = std::chrono::steady_clock::now();
    constexpr int kHashVectors = 2000;
    const auto keys = KeyChain::deal(to_bytes("k"), 4, 0);
    for (int i = 0; i < kHashVectors; ++i) {
      for (ProcessId j = 0; j < 4; ++j) {
        Sha1 h;
        h.update(m);
        h.update(keys.key(j));
        (void)h.finish();
      }
    }
    const auto t3 = std::chrono::steady_clock::now();
    const double sign_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count() / kSigns;
    const double verify_us =
        std::chrono::duration<double, std::micro>(t2 - t1).count() / kVerifies;
    const double hashvec_us =
        std::chrono::duration<double, std::micro>(t3 - t2).count() / kHashVectors;
    std::printf("\nthis host, wall clock (1 KB message):\n");
    std::printf("  RSA-300 sign                : %10.1f us\n", sign_us);
    std::printf("  RSA-300 verify              : %10.1f us\n", verify_us);
    std::printf("  full n=4 keyed-hash vector  : %10.1f us  (%.0fx cheaper than one sign)\n",
                hashvec_us, sign_us / hashvec_us);
  }

  // Simulated-era latencies.
  constexpr int kIters = 20;
  const double matrix_us = matrix_eb_latency_us(kIters);
  const double signed_era_us = signed_eb_latency_us(kIters, SignatureCosts{}, dirs);
  const double signed_free_us =
      signed_eb_latency_us(kIters, SignatureCosts{0, 0}, dirs);

  std::printf("\nsimulated testbed, isolated broadcast latency (10-byte payload):\n");
  std::printf("  matrix echo broadcast (RITAS)       : %8.0f us\n", matrix_us);
  std::printf("  signed echo multicast, era RSA cost : %8.0f us\n", signed_era_us);
  std::printf("  signed echo multicast, free crypto  : %8.0f us\n", signed_free_us);
  std::printf("  => signatures account for %.0f%% of the baseline's latency\n",
              (signed_era_us - signed_free_us) / signed_era_us * 100);
  std::printf("  => RITAS's primitive is %.1fx faster than the baseline\n",
              signed_era_us / matrix_us);

  const bool claim_holds = signed_era_us > 2 * matrix_us &&
                           (signed_era_us - signed_free_us) > 0.5 * signed_era_us;
  std::printf("\nshape check:\n");
  std::printf("  \"public-key operations dominate the latency\" : %s\n",
              claim_holds ? "PASS" : "FAIL");
  return claim_holds ? 0 : 1;
}
