// Table 1 of the paper: average latency for isolated executions of each
// protocol, with and without IPSec, and the IPSec overhead.
//
// Paper reference (4x Pentium III 500 MHz, 100 Mbps switch):
//   protocol                w/ IPSec   w/o IPSec   overhead
//   Echo Broadcast            1724        1497        15%
//   Reliable Broadcast        2134        1641        30%
//   Binary Consensus          8922        6816        30%
//   Multi-valued Consensus   16359       11186        46%
//   Vector Consensus         20673       15382        34%
//   Atomic Broadcast         23744       18604        27%
//
// Besides the printed table this emits BENCH_table1.json with the same
// numbers for CI tracking (see docs/OBSERVABILITY.md).
#include <cstdio>

#include "paper_harness.h"

namespace {

struct Row {
  ritas::bench::Proto proto;
  const char* key;
  double paper_with;
  double paper_without;
};

constexpr Row kRows[] = {
    {ritas::bench::Proto::kEB, "eb", 1724, 1497},
    {ritas::bench::Proto::kRB, "rb", 2134, 1641},
    {ritas::bench::Proto::kBC, "bc", 8922, 6816},
    {ritas::bench::Proto::kMVC, "mvc", 16359, 11186},
    {ritas::bench::Proto::kVC, "vc", 20673, 15382},
    {ritas::bench::Proto::kAB, "ab", 23744, 18604},
};

}  // namespace

int main() {
  using namespace ritas::bench;
  const int kIterations = bench_runs(100);  // the paper's N = 100

  print_header(
      "Table 1: average latency for isolated executions of each protocol\n"
      "(n=4, 10-byte payloads, 100 runs; simulated 100 Mbps LAN; all times us)");
  std::printf("%-24s %11s %11s %11s %11s %9s %9s\n", "protocol", "paper w/",
              "sim w/", "paper w/o", "sim w/o", "paper ovh", "sim ovh");

  BenchReport report("table1");
  report.meta("seed", std::uint64_t{42});
  report.meta("iterations", kIterations);
  report.meta("n", 4);
  report.meta("payload_bytes", 10);

  double prev_sim = 0;
  bool ordering_ok = true;
  for (const Row& row : kRows) {
    const double with = isolated_latency_us(row.proto, true, kIterations, 42);
    const double without = isolated_latency_us(row.proto, false, kIterations, 42);
    const double paper_ovh = (row.paper_with / row.paper_without - 1) * 100;
    const double sim_ovh = (with / without - 1) * 100;
    std::printf("%-24s %11.0f %11.0f %11.0f %11.0f %8.0f%% %8.0f%%\n",
                proto_name(row.proto), row.paper_with, with, row.paper_without,
                without, paper_ovh, sim_ovh);
    report.add_row([&](ritas::JsonWriter& w) {
      w.field("protocol", row.key);
      w.field("paper_with_ipsec_us", row.paper_with);
      w.field("sim_with_ipsec_us", with);
      w.field("paper_without_ipsec_us", row.paper_without);
      w.field("sim_without_ipsec_us", without);
      w.field("paper_overhead_pct", paper_ovh);
      w.field("sim_overhead_pct", sim_ovh);
    });
    if (with < prev_sim) ordering_ok = false;
    prev_sim = with;
  }

  std::printf("\nshape checks:\n");
  std::printf("  stack ordering EB < RB < BC < MVC < VC < AB : %s\n",
              ordering_ok ? "PASS" : "FAIL");

  report.meta("ordering_ok", ordering_ok);
  const bool wrote = report.write();
  std::printf("  wrote %s : %s\n", report.path().c_str(),
              wrote ? "PASS" : "FAIL");
  return ordering_ok && wrote ? 0 : 1;
}
