// Protocol-variant matrix: the paper's Bracha stack head-to-head against
// the pluggable algorithm variants (core/variants.h), on the calibrated
// LAN, across group sizes and the three §4.2 faultloads.
//
//   RB: Bracha (INIT/ECHO/READY, 3 steps, n + 2n^2 msgs, t < n/3) vs
//       Imbs–Raynal (INIT/WITNESS, 2 steps, n + n^2 msgs, t < n/5).
//       Claim under test: one fewer communication step => lower
//       broadcast latency AND fewer messages per delivery.
//   BC: Bracha (3 RB-backed steps per round, local coin) vs Crain
//       (BV-broadcast + AUX direct messages per round, dealt common
//       coin). Claim under test: direct per-round messages => far fewer
//       messages per decision; the common coin keeps the expected round
//       count constant even on split proposals.
//
// Latency is measured to the LAST correct process (totality time), not
// just p0 — a 2-step broadcast that left stragglers behind would not get
// credit here. Imbs–Raynal needs n >= 6, so the n = 4 point of its sweep
// is explicitly reported as skipped rather than silently dropped.
//
// Gates (enforced in-binary, exit 1 on failure, re-checked by CI from
// BENCH_variants.json): on every failure-free point where both run,
// Imbs–Raynal must beat Bracha RB on latency and messages, and Crain must
// use fewer messages per decision than Bracha BC.
#include <cstdio>
#include <string>
#include <vector>

#include "paper_harness.h"
#include "core/imbs_raynal_broadcast.h"

namespace ritas::bench {
namespace {

struct Combo {
  VariantConfig variants;
  const char* label;
};

const Combo kCombos[] = {
    {{RbVariant::kBracha, BcVariant::kBracha}, "bracha/bracha"},
    {{RbVariant::kImbsRaynal, BcVariant::kBracha}, "imbs-raynal/bracha"},
    {{RbVariant::kBracha, BcVariant::kCrain}, "bracha/crain"},
};

constexpr std::uint32_t kSweep[] = {4, 6, 10};

std::uint32_t fault_budget(const VariantConfig& v, std::uint32_t n) {
  std::uint32_t f = max_faults(n);
  if (v.rb == RbVariant::kImbsRaynal) {
    f = std::min(f, ImbsRaynalBroadcast::max_faults_ir(n));
  }
  return f;
}

struct CellResult {
  double rb_latency_us = 0;     // one broadcast, signal -> last correct
  double rb_msgs = 0;           // transport msgs per broadcast
  double bc_latency_us = 0;     // unanimous proposals
  double bc_rounds = 0;         // mean decided round, unanimous
  double bc_msgs = 0;           // transport msgs per decision (all n)
  double bc_split_latency_us = 0;  // split proposals (adversarial input)
  double bc_split_rounds = 0;
  bool completed = true;
};

ClusterOptions cell_options(const Combo& cb, Faultload fl, std::uint32_t n,
                            std::uint64_t seed) {
  ClusterOptions o;
  o.n = n;
  o.seed = seed;
  o.lan = paper_lan(true);
  o.stack.variants = cb.variants;
  if (cb.variants.bc == BcVariant::kCrain) o.stack.coin_mode = CoinMode::kDealt;
  const std::uint32_t f = fault_budget(cb.variants, n);
  if (fl == Faultload::kFailStop) {
    for (std::uint32_t i = 0; i < f; ++i) o.crashed.push_back(n - 1 - i);
  }
  if (fl == Faultload::kByzantine) {
    for (std::uint32_t i = 0; i < f; ++i) o.byzantine.push_back(n - 1 - i);
  }
  return o;
}

/// One RB instance: p0 broadcasts 10 bytes, latency until every correct
/// process delivered, transport messages attributed to the instance.
bool rb_once(const Combo& cb, Faultload fl, std::uint32_t n,
             std::uint64_t seed, CellResult& acc, int runs) {
  Cluster c(cell_options(cb, fl, n, seed));
  std::vector<bool> got(n, false);
  const InstanceId id = InstanceId::root(ProtocolType::kReliableBroadcast, 1);
  std::vector<RbAlgorithm*> inst(n, nullptr);
  for (ProcessId p : c.live()) {
    inst[p] = &c.create_rb(p, id, 0, Attribution::kPayload,
                           [&got, p](Slice) { got[p] = true; });
  }
  const std::uint64_t msgs0 = c.total_metrics().msgs_sent;
  const sim::Time t0 = c.now();
  c.call(0, [&] { inst[0]->bcast(Bytes(10, 0x61)); });
  const bool done = c.run_until(
      [&] {
        for (ProcessId p : c.correct_set()) {
          if (!got[p]) return false;
        }
        return true;
      },
      t0 + kDeadline);
  const double lat = static_cast<double>(c.now() - t0) / 1e3;
  c.run_all();  // quiesce: count the instance's full message complement
  acc.rb_latency_us += lat / runs;
  acc.rb_msgs +=
      static_cast<double>(c.total_metrics().msgs_sent - msgs0) / runs;
  return done;
}

/// One BC instance across all live processes; proposals unanimous (the
/// paper's Table 1 workload) or split (the adversarial input).
bool bc_once(const Combo& cb, Faultload fl, std::uint32_t n,
             std::uint64_t seed, bool split, CellResult& acc, int runs) {
  Cluster c(cell_options(cb, fl, n, seed));
  std::vector<bool> decided(n, false);
  const InstanceId id = InstanceId::root(ProtocolType::kBinaryConsensus, 1);
  std::vector<BcAlgorithm*> inst(n, nullptr);
  for (ProcessId p : c.live()) {
    inst[p] = &c.create_bc(p, id, Attribution::kAgreement,
                           [&decided, p](bool) { decided[p] = true; });
  }
  const std::uint64_t msgs0 = c.total_metrics().msgs_sent;
  const sim::Time t0 = c.now();
  for (ProcessId p : c.live()) {
    c.call(p, [&, p] { inst[p]->propose(split ? (p & 1) != 0 : true); });
  }
  const bool done = c.run_until(
      [&] {
        for (ProcessId p : c.correct_set()) {
          if (!decided[p]) return false;
        }
        return true;
      },
      t0 + kDeadline);
  const double lat = static_cast<double>(c.now() - t0) / 1e3;
  c.run_all();
  std::uint64_t rounds = 0, count = 0;
  for (ProcessId p : c.correct_set()) {
    const Metrics& m = c.stack(p).metrics();
    rounds += m.bc_rounds_total;
    count += m.bc_decided;
  }
  const double mean_rounds =
      count > 0 ? static_cast<double>(rounds) / static_cast<double>(count) : 0;
  if (split) {
    acc.bc_split_latency_us += lat / runs;
    acc.bc_split_rounds += mean_rounds / runs;
  } else {
    acc.bc_latency_us += lat / runs;
    acc.bc_rounds += mean_rounds / runs;
    acc.bc_msgs +=
        static_cast<double>(c.total_metrics().msgs_sent - msgs0) / runs;
  }
  return done;
}

CellResult run_cell(const Combo& cb, Faultload fl, std::uint32_t n, int runs) {
  CellResult acc;
  for (int i = 0; i < runs; ++i) {
    const std::uint64_t seed = 1000 + static_cast<std::uint64_t>(i);
    acc.completed = rb_once(cb, fl, n, seed, acc, runs) && acc.completed;
    acc.completed =
        bc_once(cb, fl, n, seed, /*split=*/false, acc, runs) && acc.completed;
    acc.completed =
        bc_once(cb, fl, n, seed, /*split=*/true, acc, runs) && acc.completed;
  }
  return acc;
}

}  // namespace
}  // namespace ritas::bench

int main() {
  using namespace ritas::bench;
  using ritas::RbVariant;
  const int kRuns = bench_runs(5);
  const Faultload faultloads[] = {Faultload::kFailureFree, Faultload::kFailStop,
                                  Faultload::kByzantine};

  print_header(
      "Protocol variants head-to-head: RB latency/messages per broadcast, "
      "BC latency/rounds/messages per decision");

  BenchReport report("variants");
  report.meta("runs", kRuns);
  report.meta("payload_bytes", 10);

  // Gate accumulators, keyed per failure-free n where both variants ran.
  struct Baseline {
    double rb_lat = 0, rb_msgs = 0, bc_msgs = 0;
  };
  std::vector<std::pair<std::uint32_t, Baseline>> bracha_ff;
  bool gate_rb_latency = true, gate_rb_msgs = true, gate_bc_msgs = true;
  bool all_completed = true;

  for (const Combo& cb : kCombos) {
    std::printf("\n-- %s --\n", cb.label);
    std::printf("%-13s %3s %10s %8s %10s %8s %8s %12s %10s\n", "faultload",
                "n", "rb lat us", "rb msgs", "bc lat us", "bc rnds", "bc msgs",
                "split lat us", "split rnds");
    for (const Faultload fl : faultloads) {
      for (const std::uint32_t n : kSweep) {
        if (cb.variants.rb == RbVariant::kImbsRaynal && n < 6) {
          std::printf("%-13s %3u   skipped (imbs-raynal needs n >= 6)\n",
                      faultload_name(fl), n);
          report.add_row([&](ritas::JsonWriter& w) {
            w.field("rb_variant", rb_variant_name(cb.variants.rb));
            w.field("bc_variant", bc_variant_name(cb.variants.bc));
            w.field("faultload", faultload_name(fl));
            w.field("n", n);
            w.field("skipped", true);
          });
          continue;
        }
        const CellResult r = run_cell(cb, fl, n, kRuns);
        all_completed = all_completed && r.completed;
        std::printf("%-13s %3u %10.1f %8.1f %10.1f %8.2f %8.1f %12.1f %10.2f\n",
                    faultload_name(fl), n, r.rb_latency_us, r.rb_msgs,
                    r.bc_latency_us, r.bc_rounds, r.bc_msgs,
                    r.bc_split_latency_us, r.bc_split_rounds);
        std::fflush(stdout);
        report.add_row([&](ritas::JsonWriter& w) {
          w.field("rb_variant", rb_variant_name(cb.variants.rb));
          w.field("bc_variant", bc_variant_name(cb.variants.bc));
          w.field("faultload", faultload_name(fl));
          w.field("n", n);
          w.field("skipped", false);
          w.field("completed", r.completed);
          w.field("rb_latency_us", r.rb_latency_us);
          w.field("rb_msgs_per_bcast", r.rb_msgs);
          w.field("bc_latency_us", r.bc_latency_us);
          w.field("bc_rounds", r.bc_rounds);
          w.field("bc_msgs_per_decide", r.bc_msgs);
          w.field("bc_split_latency_us", r.bc_split_latency_us);
          w.field("bc_split_rounds", r.bc_split_rounds);
        });

        if (fl == Faultload::kFailureFree) {
          if (cb.variants == ritas::VariantConfig{}) {
            bracha_ff.push_back({n, {r.rb_latency_us, r.rb_msgs, r.bc_msgs}});
          } else {
            for (const auto& [bn, base] : bracha_ff) {
              if (bn != n) continue;
              if (cb.variants.rb == RbVariant::kImbsRaynal) {
                gate_rb_latency =
                    gate_rb_latency && r.rb_latency_us < base.rb_lat;
                gate_rb_msgs = gate_rb_msgs && r.rb_msgs < base.rb_msgs;
              }
              if (cb.variants.bc == ritas::BcVariant::kCrain) {
                gate_bc_msgs = gate_bc_msgs && r.bc_msgs < base.bc_msgs;
              }
            }
          }
        }
      }
    }
  }

  std::printf("\nshape checks (failure-free, every shared n):\n");
  std::printf("  imbs-raynal RB latency < bracha RB latency : %s\n",
              gate_rb_latency ? "PASS" : "FAIL");
  std::printf("  imbs-raynal RB msgs    < bracha RB msgs    : %s\n",
              gate_rb_msgs ? "PASS" : "FAIL");
  std::printf("  crain BC msgs/decide   < bracha BC msgs    : %s\n",
              gate_bc_msgs ? "PASS" : "FAIL");
  std::printf("  every cell completed before deadline       : %s\n",
              all_completed ? "PASS" : "FAIL");

  report.meta("gate_rb_latency_ok", gate_rb_latency);
  report.meta("gate_rb_msgs_ok", gate_rb_msgs);
  report.meta("gate_bc_msgs_ok", gate_bc_msgs);
  report.meta("all_completed", all_completed);
  const bool wrote = report.write();
  std::printf("  wrote %s : %s\n", report.path().c_str(),
              wrote ? "PASS" : "FAIL");
  const bool ok =
      gate_rb_latency && gate_rb_msgs && gate_bc_msgs && all_completed && wrote;
  return ok ? 0 : 1;
}
