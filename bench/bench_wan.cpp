// Beyond the paper's testbed: the WAN caveat of §4.2, measured.
//
// The paper explains its one-round consensus decisions by LAN symmetry —
// "correct processes maintained a fairly consistent view of the received
// AB_MSG messages" — and warns that "in a more asymmetrical environment,
// like a WAN, it is not guaranteed that this result can be reproduced".
// This bench puts the four processes in four sites with realistic
// inter-site delays and checks what actually breaks: MVC proposals
// diverge, some multi-valued consensus instances decide the default value,
// and atomic broadcast needs extra agreement rounds — while safety (total
// order) still holds.
#include <cstdio>

#include "core/atomic_broadcast.h"
#include "paper_harness.h"
#include "sim/wan_model.h"

namespace {

using namespace ritas;
using namespace ritas::bench;

struct Outcome {
  double latency_ms = 0;
  std::uint64_t ab_rounds = 0;
  std::uint64_t mvc_defaults = 0;
  std::uint64_t bc_rounds = 0;
  std::uint64_t bc_decided = 0;
  bool ordered = true;
};

Outcome run(bool wan, std::uint32_t burst, std::uint64_t seed) {
  ClusterOptions o;
  o.n = 4;
  o.seed = seed;
  o.lan = paper_lan(true);
  // One process per site, delays from the shared canonical WAN profile
  // (sim/wan_model.h): asymmetric one-way ms-scale extras, roughly an
  // intra-continent / inter-continent mix. Jitter and loss stay off so
  // this bench keeps measuring pure asymmetry, as it always did.
  sim::WanModel model(wan ? sim::wan_profile(4) : sim::WanModelConfig{},
                      seed);
  Cluster c(o);
  if (wan) c.network().set_delay_policy(model.policy());

  std::vector<AtomicBroadcast*> ab(4, nullptr);
  std::vector<std::vector<std::pair<ProcessId, std::uint64_t>>> order(4);
  const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
  for (ProcessId p : c.live()) {
    ab[p] = &c.create_root<AtomicBroadcast>(
        p, id, [&order, p](ProcessId origin, std::uint64_t rbid, Slice) {
          order[p].emplace_back(origin, rbid);
        });
  }
  const std::uint32_t per = burst / 4;
  const Bytes payload(100, 0x77);
  const sim::Time t0 = c.now();
  // Continuous traffic, not one synchronized burst: each sender emits a
  // message every 25 ms (comparable to the inter-site delays), so the
  // per-site views of "received but undelivered" genuinely diverge.
  for (ProcessId p : c.live()) {
    for (std::uint32_t i = 0; i < per; ++i) {
      c.scheduler().at(t0 + i * 25 * sim::kMillisecond + p * sim::kMillisecond,
                       [&c, &ab, p, payload] {
                         ab[p]->bcast(Bytes(payload));
                         c.stack(p).pump();
                       });
    }
  }
  c.run_until([&] { return order[0].size() >= per * 4; }, t0 + kDeadline);

  Outcome out;
  out.latency_ms = static_cast<double>(c.now() - t0) / 1e6;
  const Metrics m = c.total_metrics();
  out.ab_rounds = c.stack(0).metrics().ab_rounds;
  out.mvc_defaults = m.mvc_decided_default;
  out.bc_rounds = m.bc_rounds_total;
  out.bc_decided = m.bc_decided;
  for (ProcessId p = 1; p < 4; ++p) {
    const std::size_t k = std::min(order[p].size(), order[0].size());
    for (std::size_t i = 0; i < k; ++i) {
      if (order[p][i] != order[0][i]) out.ordered = false;
    }
  }
  return out;
}

}  // namespace

int main() {
  print_header(
      "WAN experiment (extension): the paper's symmetry caveat, measured\n"
      "(4 processes in 4 sites, 5-95 ms one-way inter-site delays,\n"
      " burst of 100 x 100-byte atomic broadcasts, 3 seeds)");

  std::printf("%-10s %12s %10s %14s %16s %8s\n", "setting", "latency(ms)",
              "AB rounds", "MVC defaults", "BC rounds/dec", "ordered");
  Outcome lan{}, wan{};
  const int kRuns = 3;
  for (int i = 0; i < kRuns; ++i) {
    const Outcome l = run(false, 100, 10 + static_cast<std::uint64_t>(i));
    const Outcome w = run(true, 100, 10 + static_cast<std::uint64_t>(i));
    lan.latency_ms += l.latency_ms / kRuns;
    lan.ab_rounds += l.ab_rounds;
    lan.mvc_defaults += l.mvc_defaults;
    lan.bc_rounds += l.bc_rounds;
    lan.bc_decided += l.bc_decided;
    lan.ordered = lan.ordered && l.ordered;
    wan.latency_ms += w.latency_ms / kRuns;
    wan.ab_rounds += w.ab_rounds;
    wan.mvc_defaults += w.mvc_defaults;
    wan.bc_rounds += w.bc_rounds;
    wan.bc_decided += w.bc_decided;
    wan.ordered = wan.ordered && w.ordered;
  }
  auto row = [](const char* name, const Outcome& o) {
    std::printf("%-10s %12.1f %10llu %14llu %10llu/%-5llu %8s\n", name,
                o.latency_ms, static_cast<unsigned long long>(o.ab_rounds),
                static_cast<unsigned long long>(o.mvc_defaults),
                static_cast<unsigned long long>(o.bc_rounds),
                static_cast<unsigned long long>(o.bc_decided),
                o.ordered ? "yes" : "NO");
  };
  row("LAN", lan);
  row("WAN", wan);

  std::printf("\nshape checks:\n");
  const bool safety = lan.ordered && wan.ordered;
  const bool lan_clean = lan.mvc_defaults == 0;
  const bool wan_slower = wan.latency_ms > 2 * lan.latency_ms;
  std::printf("  total order holds in both settings          : %s\n",
              safety ? "PASS" : "FAIL");
  std::printf("  LAN symmetry gives clean one-shot agreement : %s\n",
              lan_clean ? "PASS" : "FAIL");
  std::printf("  WAN pays heavily in latency                 : %s (%.1fx)\n",
              wan_slower ? "PASS" : "FAIL", wan.latency_ms / lan.latency_ms);
  const bool wan_rougher = wan.mvc_defaults > lan.mvc_defaults ||
                           wan.bc_rounds > wan.bc_decided;
  std::printf(
      "\nfinding: the paper worried one-round agreement might not survive\n"
      "WAN asymmetry; in this model it %s — the f+1-intersection of the\n"
      "AB_VECT vectors smooths per-site view differences even at 95 ms\n"
      "one-way skew (the paper's §4.2 'squandering' mechanism), and long\n"
      "rounds let in-flight messages stabilize before vectors snapshot.\n",
      wan_rougher ? "did degrade as feared" : "did NOT degrade (caveat was conservative)");
  return (safety && lan_clean && wan_slower) ? 0 : 1;
}
