// Shared driver for Figures 4, 5 and 6 (atomic broadcast burst latency and
// throughput under one faultload, for four message sizes).
#pragma once

#include <cstdio>
#include <vector>

#include "paper_harness.h"

namespace ritas::bench {

struct PaperReference {
  // Paper values at burst = 1000 for m = 10 / 100 / 1K / 10K.
  double latency_ms[4];
  double tmax_msgs_s[4];
};

inline int run_burst_figure(const char* title, Faultload fl,
                            const PaperReference& ref) {
  const std::size_t sizes[4] = {10, 100, 1000, 10000};
  const std::vector<std::uint32_t> bursts = {4, 10, 20, 50, 100, 200, 500, 1000};
  constexpr int kRuns = 3;  // paper used 10; deterministic sim needs fewer

  print_header(title);
  std::printf("%-8s", "burst");
  for (std::size_t m : sizes) {
    std::printf("  | m=%-5zu lat(ms) thr(msg/s)", m);
  }
  std::printf("\n");

  BurstResult last[4];
  bool one_round = true, no_default = true;
  for (std::uint32_t k : bursts) {
    std::printf("%-8u", k);
    for (int i = 0; i < 4; ++i) {
      const BurstResult r = run_burst_avg(k, sizes[i], fl, kRuns);
      std::printf("  | %8.1f %10.0f          ", r.latency_ms, r.throughput_msgs_s);
      last[i] = r;
      one_round = one_round && r.bc_always_one_round;
      no_default = no_default && r.mvc_never_default;
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  std::printf("\nburst=1000 vs paper:\n");
  std::printf("%-8s %14s %14s %16s %16s\n", "m", "paper lat(ms)", "sim lat(ms)",
              "paper Tmax", "sim Tmax");
  bool monotone_tmax = true;
  for (int i = 0; i < 4; ++i) {
    std::printf("%-8zu %14.0f %14.1f %16.0f %16.0f\n", sizes[i], ref.latency_ms[i],
                last[i].latency_ms, ref.tmax_msgs_s[i], last[i].throughput_msgs_s);
    if (i > 0 && last[i].latency_ms < last[i - 1].latency_ms) monotone_tmax = false;
  }

  std::printf("\nshape checks (%s faultload):\n", faultload_name(fl));
  std::printf("  latency grows with message size            : %s\n",
              monotone_tmax ? "PASS" : "FAIL");
  std::printf("  binary consensus always decided in 1 round : %s\n",
              one_round ? "PASS" : "FAIL");
  std::printf("  multi-valued consensus never decided bottom: %s\n",
              no_default ? "PASS" : "FAIL");
  return (monotone_tmax && one_round && no_default) ? 0 : 1;
}

}  // namespace ritas::bench
