// Shared driver for Figures 4, 5 and 6 (atomic broadcast burst latency and
// throughput under one faultload, for four message sizes).
#pragma once

#include <cstdio>
#include <vector>

#include "paper_harness.h"

namespace ritas::bench {

struct PaperReference {
  // Paper values at burst = 1000 for m = 10 / 100 / 1K / 10K.
  double latency_ms[4];
  double tmax_msgs_s[4];
};

inline int run_burst_figure(const char* title, const char* report_name,
                            Faultload fl, const PaperReference& ref) {
  const std::size_t sizes[4] = {10, 100, 1000, 10000};
  const std::vector<std::uint32_t> bursts = {4, 10, 20, 50, 100, 200, 500, 1000};
  // The paper used 10 runs; the deterministic sim needs fewer, and the CI
  // smoke job caps it to 1 via RITAS_BENCH_RUNS.
  const int kRuns = bench_runs(3);

  print_header(title);
  std::printf("%-8s", "burst");
  for (std::size_t m : sizes) {
    std::printf("  | m=%-5zu lat(ms) thr(msg/s)", m);
  }
  std::printf("\n");

  BenchReport report(report_name);
  report.meta("faultload", faultload_name(fl));
  report.meta("runs", kRuns);
  report.meta("n", 4);

  BurstResult last[4];
  bool one_round = true, no_default = true;
  for (std::uint32_t k : bursts) {
    std::printf("%-8u", k);
    for (int i = 0; i < 4; ++i) {
      const BurstResult r = run_burst_avg(k, sizes[i], fl, kRuns);
      std::printf("  | %8.1f %10.0f          ", r.latency_ms, r.throughput_msgs_s);
      last[i] = r;
      one_round = one_round && r.bc_always_one_round;
      no_default = no_default && r.mvc_never_default;
      report.add_row([&](JsonWriter& w) {
        w.field("burst", k);
        w.field("msg_bytes", static_cast<std::uint64_t>(sizes[i]));
        w.field("latency_ms", r.latency_ms);
        w.field("throughput_msgs_s", r.throughput_msgs_s);
        w.field("agreement_ratio", r.agreement_ratio);
        w.field("ab_rounds", r.ab_rounds);
      });
    }
    std::printf("\n");
    std::fflush(stdout);
  }

  std::printf("\nburst=1000 vs paper:\n");
  std::printf("%-8s %14s %14s %16s %16s\n", "m", "paper lat(ms)", "sim lat(ms)",
              "paper Tmax", "sim Tmax");
  bool monotone_tmax = true;
  for (int i = 0; i < 4; ++i) {
    std::printf("%-8zu %14.0f %14.1f %16.0f %16.0f\n", sizes[i], ref.latency_ms[i],
                last[i].latency_ms, ref.tmax_msgs_s[i], last[i].throughput_msgs_s);
    if (i > 0 && last[i].latency_ms < last[i - 1].latency_ms) monotone_tmax = false;
  }

  std::printf("\nshape checks (%s faultload):\n", faultload_name(fl));
  std::printf("  latency grows with message size            : %s\n",
              monotone_tmax ? "PASS" : "FAIL");
  std::printf("  binary consensus always decided in 1 round : %s\n",
              one_round ? "PASS" : "FAIL");
  std::printf("  multi-valued consensus never decided bottom: %s\n",
              no_default ? "PASS" : "FAIL");

  report.meta("monotone_latency", monotone_tmax);
  report.meta("bc_always_one_round", one_round);
  report.meta("mvc_never_default", no_default);
  const bool wrote = report.write();
  std::printf("  wrote %s : %s\n", report.path().c_str(),
              wrote ? "PASS" : "FAIL");
  return (monotone_tmax && one_round && no_default && wrote) ? 0 : 1;
}

}  // namespace ritas::bench
