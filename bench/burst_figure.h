// Shared driver for Figures 4, 5 and 6 (atomic broadcast burst latency and
// throughput under one faultload, for four message sizes).
#pragma once

#include <cstdio>
#include <vector>

#include "paper_harness.h"

namespace ritas::bench {

struct PaperReference {
  // Paper values at burst = 1000 for m = 10 / 100 / 1K / 10K.
  double latency_ms[4];
  double tmax_msgs_s[4];
};

/// Sweeps the burst grid twice — with atomic-broadcast payload batching
/// off (the paper's configuration) and on — and records both modes in one
/// BENCH_<name>.json (rows carry a "batched" flag). `min_speedup_10b` is
/// the required batched/unbatched throughput ratio at the largest burst
/// with 10-byte messages (1.0 = "no slower").
inline int run_burst_figure(const char* title, const char* report_name,
                            Faultload fl, const PaperReference& ref,
                            double min_speedup_10b = 1.0) {
  const std::size_t sizes[4] = {10, 100, 1000, 10000};
  const std::vector<std::uint32_t> bursts = {4, 10, 20, 50, 100, 200, 500, 1000};
  // The paper used 10 runs; the deterministic sim needs fewer, and the CI
  // smoke job caps it to 1 via RITAS_BENCH_RUNS.
  const int kRuns = bench_runs(3);

  StackConfig cfgs[2];  // [0] = unbatched (paper), [1] = batched
  cfgs[1].ab_batch.enabled = true;
  const char* mode_name[2] = {"unbatched", "batched"};

  print_header(title);

  BenchReport report(report_name);
  report.meta("faultload", faultload_name(fl));
  report.meta("runs", kRuns);
  report.meta("n", 4);

  BurstResult last[2][4];
  bool one_round[2] = {true, true}, no_default[2] = {true, true};
  for (int mode = 0; mode < 2; ++mode) {
    std::printf("\n[%s]\n%-8s", mode_name[mode], "burst");
    for (std::size_t m : sizes) {
      std::printf("  | m=%-5zu lat(ms) thr(msg/s)", m);
    }
    std::printf("\n");
    for (std::uint32_t k : bursts) {
      std::printf("%-8u", k);
      for (int i = 0; i < 4; ++i) {
        const BurstResult r = run_burst_avg(k, sizes[i], fl, kRuns, cfgs[mode]);
        std::printf("  | %8.1f %10.0f          ", r.latency_ms, r.throughput_msgs_s);
        last[mode][i] = r;
        one_round[mode] = one_round[mode] && r.bc_always_one_round;
        no_default[mode] = no_default[mode] && r.mvc_never_default;
        report.add_row([&](JsonWriter& w) {
          w.field("batched", mode == 1);
          w.field("burst", k);
          w.field("msg_bytes", static_cast<std::uint64_t>(sizes[i]));
          w.field("latency_ms", r.latency_ms);
          w.field("throughput_msgs_s", r.throughput_msgs_s);
          w.field("agreement_ratio", r.agreement_ratio);
          w.field("ab_rounds", r.ab_rounds);
        });
      }
      std::printf("\n");
      std::fflush(stdout);
    }
  }

  std::printf("\nburst=1000 vs paper (unbatched):\n");
  std::printf("%-8s %14s %14s %16s %16s\n", "m", "paper lat(ms)", "sim lat(ms)",
              "paper Tmax", "sim Tmax");
  bool monotone_tmax = true;
  for (int i = 0; i < 4; ++i) {
    std::printf("%-8zu %14.0f %14.1f %16.0f %16.0f\n", sizes[i],
                ref.latency_ms[i], last[0][i].latency_ms, ref.tmax_msgs_s[i],
                last[0][i].throughput_msgs_s);
    if (i > 0 && last[0][i].latency_ms < last[0][i - 1].latency_ms) {
      monotone_tmax = false;
    }
  }

  std::printf("\nburst=1000 batching speedup (Tmax batched / unbatched):\n");
  double speedup[4];
  for (int i = 0; i < 4; ++i) {
    speedup[i] = last[0][i].throughput_msgs_s > 0
                     ? last[1][i].throughput_msgs_s / last[0][i].throughput_msgs_s
                     : 0;
    std::printf("%-8zu %6.2fx (%.0f -> %.0f msgs/s)\n", sizes[i], speedup[i],
                last[0][i].throughput_msgs_s, last[1][i].throughput_msgs_s);
  }
  const bool batched_fast_enough = speedup[0] >= min_speedup_10b;

  std::printf("\nshape checks (%s faultload):\n", faultload_name(fl));
  std::printf("  latency grows with message size            : %s\n",
              monotone_tmax ? "PASS" : "FAIL");
  std::printf("  binary consensus always decided in 1 round : %s, batched %s\n",
              one_round[0] ? "PASS" : "FAIL", one_round[1] ? "PASS" : "FAIL");
  std::printf("  multi-valued consensus never decided bottom: %s, batched %s\n",
              no_default[0] ? "PASS" : "FAIL", no_default[1] ? "PASS" : "FAIL");
  std::printf("  batched Tmax >= %.1fx unbatched (m=10)      : %s\n",
              min_speedup_10b, batched_fast_enough ? "PASS" : "FAIL");

  report.meta("monotone_latency", monotone_tmax);
  report.meta("bc_always_one_round", one_round[0] && one_round[1]);
  report.meta("mvc_never_default", no_default[0] && no_default[1]);
  report.meta("batched_speedup_10b", speedup[0]);
  const bool wrote = report.write();
  std::printf("  wrote %s : %s\n", report.path().c_str(),
              wrote ? "PASS" : "FAIL");
  return (monotone_tmax && one_round[0] && one_round[1] && no_default[0] &&
          no_default[1] && batched_fast_enough && wrote)
             ? 0
             : 1;
}

}  // namespace ritas::bench
