// Shared harness for the paper-replication benchmarks (Table 1, Figures
// 4-7 of the DSN'06 RITAS paper). Each bench binary builds workloads out
// of these runners and prints the paper's numbers next to the measured
// ones. All experiments use n = 4 on the calibrated simulated LAN, exactly
// the paper's testbed shape.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <functional>
#include <string>
#include <vector>

#include "common/json.h"
#include "common/stats.h"
#include "core/atomic_broadcast.h"
#include "core/binary_consensus.h"
#include "core/echo_broadcast.h"
#include "core/multivalued_consensus.h"
#include "core/reliable_broadcast.h"
#include "core/vector_consensus.h"
#include "sim/cluster.h"

namespace ritas::bench {

using sim::Cluster;
using sim::ClusterOptions;
using sim::Time;

constexpr Time kDeadline = 600 * sim::kSecond;

/// The calibrated model of the paper's testbed (see EXPERIMENTS.md).
inline sim::LanModelConfig paper_lan(bool ipsec) {
  sim::LanModelConfig lan;  // defaults are the calibrated constants
  lan.ipsec = ipsec;
  return lan;
}

enum class Proto { kEB, kRB, kBC, kMVC, kVC, kAB };

inline const char* proto_name(Proto p) {
  switch (p) {
    case Proto::kEB: return "Echo Broadcast";
    case Proto::kRB: return "Reliable Broadcast";
    case Proto::kBC: return "Binary Consensus";
    case Proto::kMVC: return "Multi-valued Consensus";
    case Proto::kVC: return "Vector Consensus";
    case Proto::kAB: return "Atomic Broadcast";
  }
  return "?";
}

/// Table 1 workload: N isolated executions of one protocol; broadcast
/// sender = lowest id; consensus proposals identical; payload 10 bytes
/// (1 byte for binary consensus). Returns mean latency in microseconds
/// measured at process 0, signal -> deliver/decide.
inline double isolated_latency_us(Proto proto, bool ipsec, int iterations,
                                  std::uint64_t seed,
                                  StackConfig stack_cfg = {}) {
  ClusterOptions o;
  o.n = 4;
  o.seed = seed;
  o.lan = paper_lan(ipsec);
  o.stack = stack_cfg;
  Cluster c(o);
  Sample lat;
  const Bytes payload(10, 0x61);

  for (int it = 0; it < iterations; ++it) {
    const std::uint64_t seq = static_cast<std::uint64_t>(it) + 1;
    const Time t0 = c.now();
    bool done = false;

    switch (proto) {
      case Proto::kEB: {
        const InstanceId id = InstanceId::root(ProtocolType::kEchoBroadcast, seq);
        std::vector<EchoBroadcast*> inst(4, nullptr);
        for (ProcessId p : c.live()) {
          EchoBroadcast::DeliverFn cb;
          if (p == 0) cb = [&done](Slice) { done = true; };
          inst[p] = &c.create_root<EchoBroadcast>(p, id, 0, Attribution::kPayload,
                                                  std::move(cb));
        }
        c.call(0, [&] { inst[0]->bcast(Bytes(payload)); });
        break;
      }
      case Proto::kRB: {
        const InstanceId id = InstanceId::root(ProtocolType::kReliableBroadcast, seq);
        std::vector<RbAlgorithm*> inst(4, nullptr);
        for (ProcessId p : c.live()) {
          RbAlgorithm::DeliverFn cb;
          if (p == 0) cb = [&done](Slice) { done = true; };
          inst[p] = &c.create_rb(p, id, 0, Attribution::kPayload,
                                                      std::move(cb));
        }
        c.call(0, [&] { inst[0]->bcast(Bytes(payload)); });
        break;
      }
      case Proto::kBC: {
        const InstanceId id = InstanceId::root(ProtocolType::kBinaryConsensus, seq);
        std::vector<BcAlgorithm*> inst(4, nullptr);
        for (ProcessId p : c.live()) {
          BcAlgorithm::DecideFn cb;
          if (p == 0) cb = [&done](bool) { done = true; };
          inst[p] = &c.create_bc(p, id, Attribution::kAgreement,
                                                    std::move(cb));
        }
        for (ProcessId p : c.live()) {
          c.call(p, [&, p] { inst[p]->propose(true); });
        }
        break;
      }
      case Proto::kMVC: {
        const InstanceId id =
            InstanceId::root(ProtocolType::kMultiValuedConsensus, seq);
        std::vector<MultiValuedConsensus*> inst(4, nullptr);
        for (ProcessId p : c.live()) {
          MultiValuedConsensus::DecideFn cb;
          if (p == 0) cb = [&done](std::optional<Bytes>) { done = true; };
          inst[p] = &c.create_root<MultiValuedConsensus>(p, id, Attribution::kAgreement,
                                                         std::move(cb));
        }
        for (ProcessId p : c.live()) {
          c.call(p, [&, p] { inst[p]->propose(payload); });
        }
        break;
      }
      case Proto::kVC: {
        const InstanceId id = InstanceId::root(ProtocolType::kVectorConsensus, seq);
        std::vector<VectorConsensus*> inst(4, nullptr);
        for (ProcessId p : c.live()) {
          VectorConsensus::DecideFn cb;
          if (p == 0) cb = [&done](VectorConsensus::Vector) { done = true; };
          inst[p] = &c.create_root<VectorConsensus>(p, id, Attribution::kAgreement,
                                                    std::move(cb));
        }
        for (ProcessId p : c.live()) {
          c.call(p, [&, p] { inst[p]->propose(payload); });
        }
        break;
      }
      case Proto::kAB: {
        const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, seq);
        std::vector<AtomicBroadcast*> inst(4, nullptr);
        for (ProcessId p : c.live()) {
          AtomicBroadcast::DeliverFn cb;
          if (p == 0) cb = [&done](ProcessId, std::uint64_t, Slice) { done = true; };
          inst[p] = &c.create_root<AtomicBroadcast>(p, id, std::move(cb));
        }
        c.call(0, [&] { inst[0]->bcast(Bytes(payload)); });
        break;
      }
    }

    c.run_until([&] { return done; }, c.now() + kDeadline);
    lat.add(static_cast<double>(c.now() - t0) / 1e3);  // us
    c.run_all();  // quiesce before tearing the instances down
    for (ProcessId p : c.live()) c.destroy_roots(p);
  }
  return lat.mean();
}

enum class Faultload { kFailureFree, kFailStop, kByzantine };

inline const char* faultload_name(Faultload f) {
  switch (f) {
    case Faultload::kFailureFree: return "failure-free";
    case Faultload::kFailStop: return "fail-stop";
    case Faultload::kByzantine: return "Byzantine";
  }
  return "?";
}

struct BurstResult {
  std::uint32_t burst = 0;          // messages actually sent
  double latency_ms = 0;            // signal -> k-th delivery at p0
  double throughput_msgs_s = 0;     // burst / latency
  double agreement_ratio = 0;       // agreement bcasts / all bcasts (Fig 7)
  std::uint64_t ab_rounds = 0;      // agreement rounds at p0
  bool bc_always_one_round = true;  // §4.3 claim
  bool mvc_never_default = true;    // §4.3 claim
};

/// Figures 4-6 workload: every (live, counted) sender transmits burst/S
/// messages of msg_bytes; latency is measured at p0 from the signal to the
/// delivery of the last message.
inline BurstResult run_burst(std::uint32_t burst, std::size_t msg_bytes,
                             Faultload fl, std::uint64_t seed,
                             StackConfig stack_cfg = {}) {
  ClusterOptions o;
  o.n = 4;
  o.seed = seed;
  o.lan = paper_lan(true);
  o.stack = stack_cfg;
  if (fl == Faultload::kFailStop) o.crashed = {3};
  if (fl == Faultload::kByzantine) o.byzantine = {3};
  Cluster c(o);

  std::vector<AtomicBroadcast*> ab(4, nullptr);
  std::vector<std::uint64_t> delivered(4, 0);
  const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
  for (ProcessId p : c.live()) {
    ab[p] = &c.create_root<AtomicBroadcast>(
        p, id, [&delivered, p](ProcessId, std::uint64_t, Slice) { ++delivered[p]; });
  }

  const auto senders = c.live();  // Byzantine processes still send (paper)
  const std::uint32_t per = burst / static_cast<std::uint32_t>(senders.size());
  const std::uint32_t total = per * static_cast<std::uint32_t>(senders.size());
  const Bytes payload(msg_bytes, 0x62);

  const Time t0 = c.now();
  for (ProcessId p : senders) {
    c.call(p, [&, p] {
      for (std::uint32_t i = 0; i < per; ++i) ab[p]->bcast(Bytes(payload));
    });
  }
  c.run_until([&] { return delivered[0] >= total; }, t0 + kDeadline);

  BurstResult r;
  r.burst = total;
  r.latency_ms = static_cast<double>(c.now() - t0) / 1e6;
  r.throughput_msgs_s =
      r.latency_ms > 0 ? static_cast<double>(total) / (r.latency_ms / 1e3) : 0;
  const Metrics m = c.total_metrics();
  r.agreement_ratio = m.broadcasts_total() > 0
                          ? static_cast<double>(m.broadcasts_agreement()) /
                                static_cast<double>(m.broadcasts_total())
                          : 0;
  r.ab_rounds = c.stack(0).metrics().ab_rounds;
  // §4.3 claims, checked over the correct processes only.
  for (ProcessId p : c.correct_set()) {
    const Metrics& pm = c.stack(p).metrics();
    if (pm.bc_rounds_total != pm.bc_decided) r.bc_always_one_round = false;
    if (pm.mvc_decided_default != 0) r.mvc_never_default = false;
  }
  return r;
}

/// Averages `runs` seeded executions of run_burst.
inline BurstResult run_burst_avg(std::uint32_t burst, std::size_t msg_bytes,
                                 Faultload fl, int runs,
                                 StackConfig stack_cfg = {}) {
  BurstResult acc;
  for (int i = 0; i < runs; ++i) {
    BurstResult r = run_burst(burst, msg_bytes, fl,
                              1000 + static_cast<std::uint64_t>(i), stack_cfg);
    acc.burst = r.burst;
    acc.latency_ms += r.latency_ms / runs;
    acc.throughput_msgs_s += r.throughput_msgs_s / runs;
    acc.agreement_ratio += r.agreement_ratio / runs;
    acc.ab_rounds += r.ab_rounds;
    acc.bc_always_one_round = acc.bc_always_one_round && r.bc_always_one_round;
    acc.mvc_never_default = acc.mvc_never_default && r.mvc_never_default;
  }
  acc.ab_rounds /= static_cast<std::uint64_t>(runs);
  return acc;
}

inline void print_header(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

/// Run-count override for CI smoke runs: RITAS_BENCH_RUNS=N caps every
/// bench's iteration count so the whole suite finishes in seconds.
inline int bench_runs(int default_runs) {
  if (const char* env = std::getenv("RITAS_BENCH_RUNS")) {
    const int v = std::atoi(env);
    if (v > 0) return v < default_runs ? v : default_runs;
  }
  return default_runs;
}

/// Machine-readable artifact emitted next to each bench's printed table:
/// BENCH_<name>.json with top-level metadata plus one JSON object per
/// table row. The CI bench-smoke job uploads and validates these files.
class BenchReport {
 public:
  explicit BenchReport(std::string name) : name_(std::move(name)) {}

  /// Adds one top-level metadata field (seed, runs, ...).
  template <typename T>
  void meta(std::string_view key, T v) {
    meta_.field(key, v);
  }

  /// Adds one row; `fill` writes the row object's fields.
  void add_row(const std::function<void(JsonWriter&)>& fill) {
    JsonWriter w;
    w.begin_object();
    fill(w);
    w.end_object();
    rows_.push_back(w.take());
  }

  /// Adds one row to a named auxiliary array emitted next to "rows"
  /// (e.g. bench_buffer's "syscall_rows"): different experiments in one
  /// artifact without disturbing consumers that index the main rows.
  void add_section_row(std::string_view section,
                       const std::function<void(JsonWriter&)>& fill) {
    JsonWriter w;
    w.begin_object();
    fill(w);
    w.end_object();
    for (auto& [name, rows] : sections_) {
      if (name == section) {
        rows.push_back(w.take());
        return;
      }
    }
    sections_.emplace_back(std::string(section),
                           std::vector<std::string>{w.take()});
  }

  std::string path() const { return "BENCH_" + name_ + ".json"; }

  /// Writes the artifact into the current directory; true on success.
  /// Assembled by hand so the pre-rendered meta/row fragments splice
  /// verbatim (bench names are identifier-safe, no escaping needed).
  bool write() const {
    std::string out = "{\"bench\":\"" + name_ + "\",\"meta\":{" + meta_.str() +
                      "},\"rows\":[";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      if (i) out += ",";
      out += rows_[i];
    }
    out += "]";
    for (const auto& [name, rows] : sections_) {
      out += ",\"" + name + "\":[";
      for (std::size_t i = 0; i < rows.size(); ++i) {
        if (i) out += ",";
        out += rows[i];
      }
      out += "]";
    }
    out += "}\n";
    std::FILE* f = std::fopen(path().c_str(), "w");
    if (f == nullptr) return false;
    const bool ok = std::fwrite(out.data(), 1, out.size(), f) == out.size();
    return std::fclose(f) == 0 && ok;
  }

 private:
  std::string name_;
  JsonWriter meta_;
  std::vector<std::string> rows_;
  std::vector<std::pair<std::string, std::vector<std::string>>> sections_;
};

}  // namespace ritas::bench
