// Faultload explorer: runs the same atomic broadcast workload under the
// paper's three faultloads (§4.2) — failure-free, fail-stop, Byzantine —
// and prints latency, round counts and traffic side by side. A miniature,
// interactive version of the paper's evaluation story: crashes make the
// system *faster*, and the Byzantine attack buys the adversary nothing.
//
//   $ ./faultload_explorer [burst] [msg_bytes]
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "core/atomic_broadcast.h"
#include "sim/cluster.h"

using namespace ritas;

namespace {

struct Outcome {
  double latency_ms;
  std::uint64_t ab_rounds;
  std::uint64_t frames;
  double agreement_pct;
  bool one_round_bc;
  bool delivered_all;
};

Outcome run(const std::string& faultload, std::uint32_t burst,
            std::size_t msg_bytes) {
  sim::ClusterOptions o;
  o.n = 4;
  o.seed = 99;
  if (faultload == "fail-stop") o.crashed = {3};
  if (faultload == "Byzantine") o.byzantine = {3};
  sim::Cluster c(o);

  std::vector<AtomicBroadcast*> ab(o.n, nullptr);
  std::uint64_t delivered_at_0 = 0;
  const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
  for (ProcessId p : c.live()) {
    ab[p] = &c.create_root<AtomicBroadcast>(
        p, id, [&delivered_at_0, p](ProcessId, std::uint64_t, Slice) {
          if (p == 0) ++delivered_at_0;
        });
  }
  const auto senders = c.live();
  const std::uint32_t per = burst / static_cast<std::uint32_t>(senders.size());
  const std::uint32_t total = per * static_cast<std::uint32_t>(senders.size());
  const Bytes payload(msg_bytes, 'x');
  for (ProcessId p : senders) {
    c.call(p, [&, p] {
      for (std::uint32_t i = 0; i < per; ++i) ab[p]->bcast(Bytes(payload));
    });
  }
  const bool ok =
      c.run_until([&] { return delivered_at_0 >= total; }, 300 * sim::kSecond);

  Outcome out;
  out.delivered_all = ok;
  out.latency_ms = static_cast<double>(c.now()) / 1e6;
  out.ab_rounds = c.stack(0).metrics().ab_rounds;
  const Metrics m = c.total_metrics();
  out.frames = m.msgs_sent;
  out.agreement_pct = m.broadcasts_total() > 0
                          ? 100.0 * static_cast<double>(m.broadcasts_agreement()) /
                                static_cast<double>(m.broadcasts_total())
                          : 0.0;
  out.one_round_bc = true;
  for (ProcessId p : c.correct_set()) {
    const Metrics& pm = c.stack(p).metrics();
    if (pm.bc_rounds_total != pm.bc_decided) out.one_round_bc = false;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint32_t burst = argc > 1 ? static_cast<std::uint32_t>(std::atoi(argv[1])) : 200;
  const std::size_t msg_bytes = argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 100;

  std::printf("atomic broadcast, n=4, burst=%u, %zu-byte messages\n\n", burst,
              msg_bytes);
  std::printf("%-14s %12s %10s %10s %12s %10s %10s\n", "faultload", "latency(ms)",
              "rounds", "frames", "agreement%", "1-rnd BC", "complete");
  for (const std::string fl : {"failure-free", "fail-stop", "Byzantine"}) {
    const Outcome o = run(fl, burst, msg_bytes);
    std::printf("%-14s %12.1f %10llu %10llu %11.1f%% %10s %10s\n", fl.c_str(),
                o.latency_ms, static_cast<unsigned long long>(o.ab_rounds),
                static_cast<unsigned long long>(o.frames), o.agreement_pct,
                o.one_round_bc ? "yes" : "no", o.delivered_all ? "yes" : "NO");
  }
  std::printf(
      "\nthe paper's findings: fail-stop is *faster* (less contention), and\n"
      "the Byzantine attack leaves performance essentially unchanged.\n");
  return 0;
}
