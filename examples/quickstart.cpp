// Quickstart: four RITAS nodes over real TCP agree on a total order of
// messages with the atomic broadcast service, showing every receive mode
// of the ritas::Context API:
//
//   node 0  ab_subscribe  callback on the reactor thread
//   node 1  ab_try_recv   non-blocking poll
//   node 2  ab_recv_for   bounded wait
//   node 3  ab_recv       classic blocking receive (the paper's §3.1)
//
// Payload batching is enabled (Options::batch), so bursts of small
// messages ride in shared AB_MSG dissemination broadcasts. All four nodes
// run as threads of one process for a self-contained demo; the same code
// deploys one node per host by passing each host's id and the shared peer
// list.
//
//   $ ./quickstart
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ritas/context.h"

using namespace ritas;

namespace {

constexpr std::uint32_t kN = 4;
constexpr std::size_t kMsgsPerNode = 2;
constexpr std::size_t kTotal = kN * kMsgsPerNode;

std::vector<net::PeerAddr> reserve_local_ports(std::uint32_t n) {
  std::vector<net::PeerAddr> peers;
  std::vector<int> fds;
  for (std::uint32_t i = 0; i < n; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    peers.push_back(net::PeerAddr{"127.0.0.1", ntohs(addr.sin_port)});
    fds.push_back(fd);
  }
  for (int fd : fds) ::close(fd);
  return peers;
}

std::string render(const Context::AbDelivery& d) {
  return "p" + std::to_string(d.origin) + ":" + to_string(d.payload);
}

/// Publishes this node's burst, then receives kTotal deliveries with the
/// mode assigned to the node, appending to `order` under `mu`. Node 0's
/// subscription (installed before start()) fills `order` from the reactor
/// thread instead.
void node_main(Context& ctx, std::vector<std::string>& order, std::mutex& mu) {
  const ProcessId self = ctx.self();

  // Everyone publishes its burst; batching packs messages submitted
  // back-to-back into shared dissemination broadcasts.
  for (std::size_t i = 0; i < kMsgsPerNode; ++i) {
    ctx.ab_bcast(to_bytes("msg-" + std::to_string(self) + "." + std::to_string(i)));
  }
  ctx.ab_flush();  // seal the tail of the burst immediately

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::minutes(2);
  while (std::chrono::steady_clock::now() < deadline) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (order.size() >= kTotal) break;
    }
    switch (self) {
      case 0:  // subscriber fills `order`; just wait
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
        break;
      case 1:  // non-blocking poll
        if (auto d = ctx.ab_try_recv()) {
          std::lock_guard<std::mutex> lock(mu);
          order.push_back(render(*d));
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
        break;
      case 2:  // bounded wait
        if (auto d = ctx.ab_recv_for(std::chrono::milliseconds(50))) {
          std::lock_guard<std::mutex> lock(mu);
          order.push_back(render(*d));
        }
        break;
      default: {  // classic blocking receive
        auto d = ctx.ab_recv();
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(render(d));
        break;
      }
    }
  }
}

}  // namespace

int main() {
  const auto peers = reserve_local_ports(kN);

  std::vector<std::unique_ptr<Context>> nodes;
  for (std::uint32_t p = 0; p < kN; ++p) {
    Context::Options o;
    o.n = kN;
    o.self = p;
    o.peers = peers;
    o.master_secret = to_bytes("demo-shared-secret");  // dealer, out of band
    o.batch.enabled = true;  // wire-format switch: identical at every node
    nodes.push_back(std::make_unique<Context>(o));
  }

  std::vector<std::vector<std::string>> orders(kN);
  std::vector<std::mutex> mus(kN);

  // Node 0 demonstrates callback mode. Subscribing before start() means no
  // delivery can ever race into the queue instead of the callback.
  nodes[0]->ab_subscribe([&](Context::AbDelivery d) {
    std::lock_guard<std::mutex> lock(mus[0]);
    orders[0].push_back(render(d));
  });

  std::printf("establishing the TCP mesh (4 nodes, HMAC-authenticated, batching on)...\n");
  {
    std::vector<std::thread> starters;
    for (auto& node : nodes) {
      starters.emplace_back([&node] { node->start(); });
    }
    for (auto& t : starters) t.join();
  }

  {
    std::vector<std::thread> threads;
    for (std::uint32_t p = 0; p < kN; ++p) {
      threads.emplace_back([&, p] { node_main(*nodes[p], orders[p], mus[p]); });
    }
    for (auto& t : threads) t.join();
  }

  bool ok = orders[0].size() == kTotal;
  for (std::uint32_t p = 1; p < kN; ++p) ok = ok && orders[p] == orders[0];
  if (!ok) {
    std::fprintf(stderr, "orders diverged or deliveries are missing\n");
    return 1;
  }

  std::printf("total order agreed by all 4 nodes:\n");
  for (std::size_t i = 0; i < orders[0].size(); ++i) {
    std::printf("  %zu. %s\n", i + 1, orders[0][i].c_str());
  }
  const Metrics m = nodes[0]->metrics();
  std::printf("node 0 sealed %llu batches carrying %llu messages\n",
              static_cast<unsigned long long>(m.ab_batches_sealed),
              static_cast<unsigned long long>(m.ab_batch_msgs));
  return 0;
}
