// Quickstart: four processes on a simulated LAN agree on a total order of
// messages with the RITAS atomic broadcast.
//
//   $ ./quickstart
//
// This uses the deterministic simulation harness (ritas::sim::Cluster) so
// it runs anywhere with no sockets and finishes in milliseconds. See
// examples/tcp_cluster.cpp for the same stack over real TCP connections.
#include <cstdio>
#include <string>
#include <vector>

#include "core/atomic_broadcast.h"
#include "sim/cluster.h"

using namespace ritas;

int main() {
  // A 4-process group tolerates f = 1 Byzantine process (n >= 3f+1).
  sim::ClusterOptions options;
  options.n = 4;
  options.seed = 2026;
  sim::Cluster cluster(options);

  // Every process creates the same atomic broadcast instance and logs what
  // it delivers. Deliveries carry (origin, local id, payload).
  std::vector<std::vector<std::string>> delivered(options.n);
  std::vector<AtomicBroadcast*> ab(options.n);
  const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
  for (ProcessId p = 0; p < options.n; ++p) {
    ab[p] = &cluster.create_root<AtomicBroadcast>(
        p, id, [&delivered, p](ProcessId origin, std::uint64_t, Bytes payload) {
          delivered[p].push_back("p" + std::to_string(origin) + ":" +
                                 to_string(payload));
        });
  }

  // Each process broadcasts two messages, concurrently.
  for (ProcessId p = 0; p < options.n; ++p) {
    cluster.call(p, [&, p] {
      ab[p]->bcast(to_bytes("alpha-" + std::to_string(p)));
      ab[p]->bcast(to_bytes("beta-" + std::to_string(p)));
    });
  }

  // Run the simulation until every process delivered all 8 messages.
  const bool ok = cluster.run_until(
      [&] {
        for (ProcessId p = 0; p < options.n; ++p) {
          if (delivered[p].size() < 8) return false;
        }
        return true;
      },
      60 * sim::kSecond);
  if (!ok) {
    std::fprintf(stderr, "atomic broadcast did not complete\n");
    return 1;
  }

  std::printf("total order agreed by all 4 processes (%.2f ms simulated):\n",
              static_cast<double>(cluster.now()) / 1e6);
  for (std::size_t i = 0; i < delivered[0].size(); ++i) {
    std::printf("  %zu. %s\n", i + 1, delivered[0][i].c_str());
  }
  bool identical = true;
  for (ProcessId p = 1; p < options.n; ++p) {
    identical = identical && delivered[p] == delivered[0];
  }
  std::printf("orders identical at every process: %s\n", identical ? "yes" : "NO");
  return identical ? 0 : 1;
}
