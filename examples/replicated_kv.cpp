// Intrusion-tolerant replicated key-value store over real TCP.
//
// State machine replication (the canonical application the paper's
// introduction motivates) on the public ritas::Context API, served by the
// stack's own SMR layer: every node runs an smr::ShardedService with a
// single shard (G=1) over an smr::KvMachine, subscribes to the atomic
// broadcast (ab_subscribe), and feeds the decided command stream to the
// service, staying identical to its peers. Command framing, (client, seq)
// exactly-once dedup and the SET/DEL/CAS semantics all come from src/smr
// — the example only wires transport to service. Payload batching
// (Options::batch) packs bursts of small commands into shared
// dissemination broadcasts. For the same state machine surviving an
// actively Byzantine replica, see examples/faultload_explorer.cpp; for a
// multi-group deployment of the same service, see sim::ShardedCluster and
// bench_shard_scaling.
//
//   $ ./replicated_kv
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ritas/context.h"
#include "smr/kv_machine.h"
#include "smr/sharded_service.h"

using namespace ritas;

namespace {

constexpr std::uint32_t kN = 4;

std::vector<net::PeerAddr> reserve_local_ports(std::uint32_t n) {
  std::vector<net::PeerAddr> peers;
  std::vector<int> fds;
  for (std::uint32_t i = 0; i < n; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    peers.push_back(net::PeerAddr{"127.0.0.1", ntohs(addr.sin_port)});
    fds.push_back(fd);
  }
  for (int fd : fds) ::close(fd);
  return peers;
}

/// One node's service plus the lock that bridges the Context's reactor
/// thread (on_delivered runs in the ab_subscribe callback) and main-thread
/// readers. The service itself is single-threaded by design — the harness
/// owns the synchronization, exactly like the sim loop owns it in tests.
struct Node {
  Node()
      : service({.shards = 1, .key_of = smr::kv_key_of},
                [](smr::ShardId) { return std::make_unique<smr::KvMachine>(); }) {}

  std::string snapshot() {
    std::lock_guard<std::mutex> lock(mu);
    return to_string(service.snapshot(0));
  }
  std::uint64_t applied() {
    std::lock_guard<std::mutex> lock(mu);
    return service.applied_total();
  }
  std::uint64_t duplicates() {
    std::lock_guard<std::mutex> lock(mu);
    return service.duplicates_skipped(0);
  }

  std::mutex mu;
  smr::ShardedService service;
};

smr::KvCommand set(const std::string& key, const std::string& value) {
  smr::KvCommand c;
  c.op = smr::KvCommand::Op::kSet;
  c.key = key;
  c.value = value;
  return c;
}
smr::KvCommand del(const std::string& key) {
  smr::KvCommand c;
  c.op = smr::KvCommand::Op::kDel;
  c.key = key;
  return c;
}
smr::KvCommand cas(const std::string& key, const std::string& expected,
                   const std::string& value) {
  smr::KvCommand c;
  c.op = smr::KvCommand::Op::kCas;
  c.key = key;
  c.value = value;
  c.expected = expected;
  return c;
}

}  // namespace

int main() {
  const auto peers = reserve_local_ports(kN);

  std::vector<Node> replicas(kN);
  std::vector<std::unique_ptr<Context>> nodes;
  for (std::uint32_t p = 0; p < kN; ++p) {
    Context::Options o;
    o.n = kN;
    o.self = p;
    o.peers = peers;
    o.master_secret = to_bytes("kv-shared-secret");
    o.batch.enabled = true;  // wire-format switch: identical at every node
    nodes.push_back(std::make_unique<Context>(o));
    // Outbound: the service frames the command, the context orders it.
    replicas[p].service.bind_submitter(
        [&nodes, p](smr::ShardId, const Bytes& command) {
          nodes[p]->ab_bcast(command);
        });
    // Inbound: subscribe before start(); the decided stream drives the
    // service directly on the reactor thread, in total order.
    nodes[p]->ab_subscribe([&replicas, p](Context::AbDelivery d) {
      std::lock_guard<std::mutex> lock(replicas[p].mu);
      replicas[p].service.on_delivered(0, d.payload);
    });
  }

  std::printf("establishing the TCP mesh (4 replicas, batching on)...\n");
  {
    std::vector<std::thread> starters;
    for (auto& node : nodes) starters.emplace_back([&node] { node->start(); });
    for (auto& t : starters) t.join();
  }

  // Clients submit commands at different replicas concurrently. One
  // command is retried through a second replica to exercise exactly-once
  // application, and two CAS operations race: the total order decides the
  // winner, the same winner everywhere.
  const std::vector<smr::KvCommand> workload = {
      set("user:1", "alice"),         set("user:2", "bob"),
      set("balance:1", "100"),        cas("balance:1", "100", "90"),
      cas("balance:1", "100", "80"),  set("user:3", "carol"),
      del("user:2"),                  set("balance:3", "55"),
  };
  constexpr std::uint64_t kClient = 42;
  for (std::size_t i = 0; i < workload.size(); ++i) {
    const std::uint32_t via = static_cast<std::uint32_t>(i % kN);
    replicas[via].service.submit(kClient, i, workload[i].encode());
    if (i == 2) {  // impatient client retries through another front
      replicas[0].service.submit(kClient, i, workload[i].encode());
    }
  }
  for (auto& node : nodes) node->ab_flush();  // seal the submission tails

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::minutes(2);
  auto all_applied = [&] {
    for (Node& r : replicas) {
      if (r.applied() < workload.size()) return false;
    }
    return true;
  };
  while (!all_applied() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (!all_applied()) {
    std::fprintf(stderr, "replication did not complete\n");
    return 1;
  }

  std::printf("replicated KV store, n=4, smr::ShardedService (G=1)\n");
  std::printf("final state at replica 0: %s\n", replicas[0].snapshot().c_str());
  bool consistent = true;
  std::uint64_t duplicates = 0;
  for (std::uint32_t p = 0; p < kN; ++p) {
    const bool same = replicas[p].snapshot() == replicas[0].snapshot();
    std::printf("replica %u: %s, %llu applied, %llu duplicates skipped\n", p,
                same ? "state identical" : "STATE DIVERGED",
                static_cast<unsigned long long>(replicas[p].applied()),
                static_cast<unsigned long long>(replicas[p].duplicates()));
    consistent = consistent && same;
    duplicates += replicas[p].duplicates();
  }
  const std::string digest = replicas[0].snapshot();
  const bool won90 = digest.find("balance:1=90") != std::string::npos;
  const bool won80 = digest.find("balance:1=80") != std::string::npos;
  std::printf("exactly one racing CAS won (%s): %s\n", won90 ? "90" : "80",
              (won90 ^ won80) ? "yes" : "NO");
  std::printf("retried command deduplicated at every replica: %s\n",
              duplicates == kN ? "yes" : "NO");
  return (consistent && (won90 ^ won80) && duplicates == kN) ? 0 : 1;
}
