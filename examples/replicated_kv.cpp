// Intrusion-tolerant replicated key-value store over real TCP.
//
// State machine replication (the canonical application the paper's
// introduction motivates) on the public ritas::Context API: every node
// subscribes to the atomic broadcast (ab_subscribe), applies the decided
// command stream to a deterministic KvMachine, and stays identical to its
// peers. Client commands are deduplicated by (client, seq), so retrying a
// command through a second node applies once; payload batching
// (Options::batch) packs bursts of small commands into shared
// dissemination broadcasts. For the same state machine surviving an
// actively Byzantine replica, see examples/faultload_explorer.cpp (the
// deterministic sim applies the paper's §4.2 attack there).
//
//   $ ./replicated_kv
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/serialize.h"
#include "ritas/context.h"

using namespace ritas;

namespace {

constexpr std::uint32_t kN = 4;

std::vector<net::PeerAddr> reserve_local_ports(std::uint32_t n) {
  std::vector<net::PeerAddr> peers;
  std::vector<int> fds;
  for (std::uint32_t i = 0; i < n; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    peers.push_back(net::PeerAddr{"127.0.0.1", ntohs(addr.sin_port)});
    fds.push_back(fd);
  }
  for (int fd : fds) ::close(fd);
  return peers;
}

// Commands: SET key value | DEL key | CAS key expected value, tagged with
// (client, seq) for exactly-once application.
struct Command {
  enum class Op : std::uint8_t { kSet = 0, kDel = 1, kCas = 2 };
  Op op;
  std::string key, value, expected;

  Bytes encode(std::uint64_t client, std::uint64_t seq) const {
    Writer w;
    w.u64(client);
    w.u64(seq);
    w.u8(static_cast<std::uint8_t>(op));
    w.str(key);
    w.str(value);
    w.str(expected);
    return std::move(w).take();
  }
};

/// One replica: the deterministic KV map plus the (client, seq) dedup set.
/// apply() runs on the Context's reactor thread (the ab_subscribe
/// callback); readers take the mutex.
class KvReplica {
 public:
  void apply(ByteView command) {
    Reader r(command);
    const std::uint64_t client = r.u64();
    const std::uint64_t seq = r.u64();
    const std::uint8_t op = r.u8();
    const std::string key = r.str();
    const std::string value = r.str();
    const std::string expected = r.str();
    std::lock_guard<std::mutex> lock(mu_);
    if (!r.ok() || !r.done() || op > 2) return;  // byzantine payload: ignore
    if (!seen_.insert({client, seq}).second) {
      ++duplicates_;
      return;
    }
    switch (static_cast<Command::Op>(op)) {
      case Command::Op::kSet:
        map_[key] = value;
        break;
      case Command::Op::kDel:
        map_.erase(key);
        break;
      case Command::Op::kCas: {
        auto it = map_.find(key);
        if (it != map_.end() && it->second == expected) it->second = value;
        break;
      }
    }
    ++applied_;
  }

  std::string snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    std::string d;
    for (const auto& [k, v] : map_) d += k + "=" + v + ";";
    return d;
  }
  std::uint64_t applied() const {
    std::lock_guard<std::mutex> lock(mu_);
    return applied_;
  }
  std::uint64_t duplicates() const {
    std::lock_guard<std::mutex> lock(mu_);
    return duplicates_;
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, std::string> map_;
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen_;
  std::uint64_t applied_ = 0;
  std::uint64_t duplicates_ = 0;
};

}  // namespace

int main() {
  const auto peers = reserve_local_ports(kN);

  std::vector<KvReplica> replicas(kN);
  std::vector<std::unique_ptr<Context>> nodes;
  for (std::uint32_t p = 0; p < kN; ++p) {
    Context::Options o;
    o.n = kN;
    o.self = p;
    o.peers = peers;
    o.master_secret = to_bytes("kv-shared-secret");
    o.batch.enabled = true;  // wire-format switch: identical at every node
    nodes.push_back(std::make_unique<Context>(o));
    // Subscribe before start(): the decided command stream drives apply()
    // directly on the reactor thread, in total order.
    nodes[p]->ab_subscribe([&replicas, p](Context::AbDelivery d) {
      replicas[p].apply(d.payload);
    });
  }

  std::printf("establishing the TCP mesh (4 replicas, batching on)...\n");
  {
    std::vector<std::thread> starters;
    for (auto& node : nodes) starters.emplace_back([&node] { node->start(); });
    for (auto& t : starters) t.join();
  }

  // Clients submit commands at different replicas concurrently. One
  // command is retried through a second replica to exercise exactly-once
  // application, and two CAS operations race: the total order decides the
  // winner, the same winner everywhere.
  const std::vector<Command> workload = {
      {Command::Op::kSet, "user:1", "alice", ""},
      {Command::Op::kSet, "user:2", "bob", ""},
      {Command::Op::kSet, "balance:1", "100", ""},
      {Command::Op::kCas, "balance:1", "90", "100"},
      {Command::Op::kCas, "balance:1", "80", "100"},
      {Command::Op::kSet, "user:3", "carol", ""},
      {Command::Op::kDel, "user:2", "", ""},
      {Command::Op::kSet, "balance:3", "55", ""},
  };
  constexpr std::uint64_t kClient = 42;
  for (std::size_t i = 0; i < workload.size(); ++i) {
    const std::uint32_t via = static_cast<std::uint32_t>(i % kN);
    const Bytes cmd = workload[i].encode(kClient, i);
    nodes[via]->ab_bcast(cmd);
    if (i == 2) nodes[0]->ab_bcast(cmd);  // impatient client retries
  }
  for (auto& node : nodes) node->ab_flush();  // seal the submission tails

  const auto deadline = std::chrono::steady_clock::now() + std::chrono::minutes(2);
  auto all_applied = [&] {
    for (const KvReplica& r : replicas) {
      if (r.applied() < workload.size()) return false;
    }
    return true;
  };
  while (!all_applied() && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  if (!all_applied()) {
    std::fprintf(stderr, "replication did not complete\n");
    return 1;
  }

  std::printf("replicated KV store, n=4, subscribe-driven apply\n");
  std::printf("final state at replica 0: %s\n", replicas[0].snapshot().c_str());
  bool consistent = true;
  std::uint64_t duplicates = 0;
  for (std::uint32_t p = 0; p < kN; ++p) {
    const bool same = replicas[p].snapshot() == replicas[0].snapshot();
    std::printf("replica %u: %s, %llu applied, %llu duplicates skipped\n", p,
                same ? "state identical" : "STATE DIVERGED",
                static_cast<unsigned long long>(replicas[p].applied()),
                static_cast<unsigned long long>(replicas[p].duplicates()));
    consistent = consistent && same;
    duplicates += replicas[p].duplicates();
  }
  const std::string digest = replicas[0].snapshot();
  const bool won90 = digest.find("balance:1=90") != std::string::npos;
  const bool won80 = digest.find("balance:1=80") != std::string::npos;
  std::printf("exactly one racing CAS won (%s): %s\n", won90 ? "90" : "80",
              (won90 ^ won80) ? "yes" : "NO");
  std::printf("retried command deduplicated at every replica: %s\n",
              duplicates == kN ? "yes" : "NO");
  return (consistent && (won90 ^ won80) && duplicates == kN) ? 0 : 1;
}
