// Intrusion-tolerant replicated key-value store.
//
// State machine replication (the canonical application the paper's
// introduction motivates), built on the reusable SMR layer (src/smr):
// implement a deterministic StateMachine, hand it to a Replica per
// process, and the RITAS atomic broadcast keeps all correct replicas
// identical — even while one replica is Byzantine and actively attacks
// the consensus layers (the paper's §4.2 faultload). Client requests are
// deduplicated, so retrying a command through two replicas applies once.
//
//   $ ./replicated_kv
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "common/serialize.h"
#include "sim/cluster.h"
#include "smr/replica.h"

using namespace ritas;

namespace {

// Commands: SET key value | DEL key | CAS key expected value.
struct Command {
  enum class Op : std::uint8_t { kSet = 0, kDel = 1, kCas = 2 };
  Op op;
  std::string key, value, expected;

  Bytes encode() const {
    Writer w;
    w.u8(static_cast<std::uint8_t>(op));
    w.str(key);
    w.str(value);
    w.str(expected);
    return std::move(w).take();
  }
};

/// The deterministic state machine replicated across the group.
class KvMachine final : public smr::StateMachine {
 public:
  Bytes apply(ByteView command) override {
    Reader r(command);
    const std::uint8_t op = r.u8();
    const std::string key = r.str();
    const std::string value = r.str();
    const std::string expected = r.str();
    if (!r.done() || op > 2) return to_bytes("ERR");
    switch (static_cast<Command::Op>(op)) {
      case Command::Op::kSet:
        map_[key] = value;
        return to_bytes("OK");
      case Command::Op::kDel:
        return to_bytes(map_.erase(key) ? "OK" : "MISS");
      case Command::Op::kCas: {
        auto it = map_.find(key);
        if (it != map_.end() && it->second == expected) {
          it->second = value;
          return to_bytes("OK");
        }
        return to_bytes("FAIL");
      }
    }
    return to_bytes("ERR");
  }

  Bytes snapshot() const override {
    std::string d;
    for (const auto& [k, v] : map_) d += k + "=" + v + ";";
    return to_bytes(d);
  }
  std::size_t size() const { return map_.size(); }

 private:
  std::map<std::string, std::string> map_;
};

}  // namespace

int main() {
  sim::ClusterOptions options;
  options.n = 4;
  options.seed = 7;
  options.byzantine = {3};  // replica 3 runs the paper's §4.2 attack
  sim::Cluster cluster(options);

  const InstanceId root = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
  std::vector<KvMachine> machines(options.n);
  std::vector<std::unique_ptr<smr::Replica>> replicas(options.n);
  for (ProcessId p = 0; p < options.n; ++p) {
    replicas[p] = std::make_unique<smr::Replica>(cluster.stack(p), root, machines[p]);
    cluster.stack(p).pump();
  }

  // Clients submit commands at different replicas concurrently — including
  // the Byzantine one, whose *payloads* are fine (its consensus behaviour
  // is what attacks the system). One command is retried through a second
  // replica to exercise exactly-once application.
  const std::vector<Command> workload = {
      {Command::Op::kSet, "user:1", "alice", ""},
      {Command::Op::kSet, "user:2", "bob", ""},
      {Command::Op::kSet, "balance:1", "100", ""},
      // Two racing CAS operations through different replicas: the total
      // order decides the winner, and it is the same winner everywhere.
      {Command::Op::kCas, "balance:1", "90", "100"},
      {Command::Op::kCas, "balance:1", "80", "100"},
      {Command::Op::kSet, "user:3", "carol", ""},
      {Command::Op::kDel, "user:2", "", ""},
      {Command::Op::kSet, "balance:3", "55", ""},
  };
  constexpr std::uint64_t kClient = 42;
  for (std::size_t i = 0; i < workload.size(); ++i) {
    const ProcessId via = static_cast<ProcessId>(i % options.n);
    const Bytes cmd = workload[i].encode();
    cluster.call(via, [&, via] { replicas[via]->submit(kClient, i, cmd); });
    if (i == 2) {  // impatient client retries through another replica
      cluster.call(0, [&] { replicas[0]->submit(kClient, i, cmd); });
    }
  }

  const bool ok = cluster.run_until(
      [&] {
        for (ProcessId p = 0; p < options.n; ++p) {
          if (replicas[p]->applied_count() < workload.size()) return false;
        }
        return true;
      },
      60 * sim::kSecond);
  if (!ok) {
    std::fprintf(stderr, "replication did not complete\n");
    return 1;
  }
  cluster.run_all();

  std::printf("replicated KV store, n=4, replica 3 Byzantine (attacks BC+MVC)\n");
  std::printf("final state at replica 0 (%zu keys): %s\n", machines[0].size(),
              to_string(machines[0].snapshot()).c_str());
  bool consistent = true;
  for (ProcessId p = 0; p < options.n; ++p) {
    const bool same = machines[p].snapshot() == machines[0].snapshot();
    std::printf("replica %u%s: %s, %llu applied, %llu duplicates skipped\n", p,
                cluster.byzantine(p) ? " (byz)" : "",
                same ? "state identical" : "STATE DIVERGED",
                static_cast<unsigned long long>(replicas[p]->applied_count()),
                static_cast<unsigned long long>(replicas[p]->duplicates_skipped()));
    consistent = consistent && same;
  }
  const std::string digest = to_string(machines[0].snapshot());
  const bool won90 = digest.find("balance:1=90") != std::string::npos;
  const bool won80 = digest.find("balance:1=80") != std::string::npos;
  std::printf("exactly one racing CAS won (%s): %s\n", won90 ? "90" : "80",
              (won90 ^ won80) ? "yes" : "NO");
  return (consistent && (won90 ^ won80)) ? 0 : 1;
}
