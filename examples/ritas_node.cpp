// ritas_node — a standalone RITAS group member, one process per node.
//
// The deployment shape of the paper's evaluation: run n instances (on one
// machine or many), each with its own id, give all of them the same
// member list, and they form an intrusion-tolerant atomic broadcast group.
// Lines typed on stdin are atomically broadcast; deliveries print in the
// (identical) total order at every node.
//
//   # node 0 of a local 4-node group:
//   $ ./ritas_node --id 0 --members 127.0.0.1:7100,127.0.0.1:7101,\
//                  127.0.0.1:7102,127.0.0.1:7103 --secret demo
//
// Run the other three with --id 1/2/3 in separate terminals, then type.
#include <cstdio>
#include <optional>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ritas/context.h"

using namespace ritas;

namespace {

struct Args {
  std::uint32_t id = 0;
  std::vector<net::PeerAddr> members;
  std::string secret = "change-me";
  bool burst = false;
  std::uint32_t burst_count = 0;
};

bool parse_members(const std::string& list, std::vector<net::PeerAddr>& out) {
  std::stringstream ss(list);
  std::string item;
  while (std::getline(ss, item, ',')) {
    const auto colon = item.rfind(':');
    if (colon == std::string::npos) return false;
    net::PeerAddr a;
    a.host = item.substr(0, colon);
    a.port = static_cast<std::uint16_t>(std::stoi(item.substr(colon + 1)));
    out.push_back(a);
  }
  return out.size() >= 4;
}

void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s --id N --members host:port,host:port,... "
               "[--secret S] [--burst K]\n"
               "  --id       this node's index into the member list\n"
               "  --members  every group member, in id order (>= 4)\n"
               "  --secret   dealer-distributed group secret\n"
               "  --burst    broadcast K messages immediately, then report\n",
               argv0);
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  bool have_id = false, have_members = false;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : ""; };
    if (a == "--id") {
      args.id = static_cast<std::uint32_t>(std::atoi(next()));
      have_id = true;
    } else if (a == "--members") {
      if (!parse_members(next(), args.members)) {
        usage(argv[0]);
        return 2;
      }
      have_members = true;
    } else if (a == "--secret") {
      args.secret = next();
    } else if (a == "--burst") {
      args.burst = true;
      args.burst_count = static_cast<std::uint32_t>(std::atoi(next()));
    } else {
      usage(argv[0]);
      return 2;
    }
  }
  if (!have_id || !have_members || args.id >= args.members.size()) {
    usage(argv[0]);
    return 2;
  }

  Context::Options o;
  o.n = static_cast<std::uint32_t>(args.members.size());
  o.self = args.id;
  o.peers = args.members;
  o.master_secret = to_bytes(args.secret);
  std::optional<Context> ctx_holder;
  try {
    ctx_holder.emplace(std::move(o));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "[ritas] invalid configuration: %s\n", e.what());
    return 2;
  }
  Context& ctx = *ctx_holder;

  std::fprintf(stderr, "[ritas] node %u/%u connecting...\n", args.id,
               ctx.n());
  try {
    ctx.start();
  } catch (const std::exception& e) {
    // A mesh that never reaches n-f-1 links (peers down, port conflict, or
    // a wrong --secret: the authenticated handshake refuses an impostor).
    std::fprintf(stderr, "[ritas] failed to join the group: %s\n", e.what());
    return 1;
  }
  std::fprintf(stderr, "[ritas] mesh up; tolerating f=%u Byzantine members\n",
               max_faults(ctx.n()));

  // Delivery printer; ab_recv throws when the context stops, which is our
  // signal to exit.
  std::thread receiver([&ctx] {
    try {
      for (std::uint64_t i = 1;; ++i) {
        const auto d = ctx.ab_recv();
        std::printf("%6llu | p%u | %s\n", static_cast<unsigned long long>(i),
                    d.origin, to_string(d.payload).c_str());
        std::fflush(stdout);
      }
    } catch (const std::exception&) {
      // context stopped
    }
  });
  receiver.detach();

  if (args.burst) {
    for (std::uint32_t i = 0; i < args.burst_count; ++i) {
      ctx.ab_bcast(to_bytes("burst-" + std::to_string(args.id) + "-" +
                            std::to_string(i)));
    }
    std::fprintf(stderr, "[ritas] burst of %u sent\n", args.burst_count);
  }

  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "/quit") break;
    if (!line.empty()) ctx.ab_bcast(to_bytes(line));
  }
  std::fprintf(stderr, "[ritas] shutting down\n");
  ctx.stop();
  return 0;
}
