// The RITAS stack over real TCP sockets, using the public ritas::Context
// API that mirrors the paper's C interface (§3.1): init the context, add
// the group, call the services, destroy.
//
// This binary runs all four nodes as threads of one process for a
// self-contained demo; each node owns a full Context (its own sockets,
// reactor thread, keys and protocol stack), so the same code deploys one
// node per host by passing each host's id and the shared peer list.
//
//   $ ./tcp_cluster
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <thread>
#include <vector>

#include "ritas/context.h"

using namespace ritas;

namespace {

std::vector<net::PeerAddr> reserve_local_ports(std::uint32_t n) {
  std::vector<net::PeerAddr> peers;
  std::vector<int> fds;
  for (std::uint32_t i = 0; i < n; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    peers.push_back(net::PeerAddr{"127.0.0.1", ntohs(addr.sin_port)});
    fds.push_back(fd);
  }
  for (int fd : fds) ::close(fd);
  return peers;
}

void node_main(Context& ctx) {
  const ProcessId self = ctx.self();

  // 1. Reliable broadcast: node 0 announces the epoch.
  if (self == 0) ctx.rb_bcast(to_bytes("epoch-42"));
  const auto epoch = ctx.rb_recv();
  std::printf("[node %u] reliable broadcast from p%u: %s\n", self, epoch.origin,
              to_string(epoch.payload).c_str());

  // 2. Binary consensus: vote to accept the epoch.
  const bool accept = ctx.bc(true);
  std::printf("[node %u] binary consensus decided: %s\n", self,
              accept ? "accept" : "reject");

  // 3. Multi-valued consensus on a leader string (all propose the same).
  const auto leader = ctx.mvc(to_bytes("node-2"));
  std::printf("[node %u] multi-valued consensus: %s\n", self,
              leader ? to_string(*leader).c_str() : "(default)");

  // 4. Vector consensus over per-node status strings.
  const auto statuses = ctx.vc(to_bytes("ready-" + std::to_string(self)));
  std::string joined;
  for (const auto& s : statuses) joined += (s ? to_string(*s) : "_") + " ";
  std::printf("[node %u] vector consensus: %s\n", self, joined.c_str());

  // 5. Atomic broadcast: everyone publishes; everyone sees one order.
  ctx.ab_bcast(to_bytes("tx-from-" + std::to_string(self)));
  std::string order;
  for (int i = 0; i < 4; ++i) {
    order += to_string(ctx.ab_recv().payload) + " ";
  }
  std::printf("[node %u] atomic order: %s\n", self, order.c_str());
}

}  // namespace

int main() {
  constexpr std::uint32_t kN = 4;
  const auto peers = reserve_local_ports(kN);

  std::vector<std::unique_ptr<Context>> nodes;
  for (std::uint32_t p = 0; p < kN; ++p) {
    Context::Options o;
    o.n = kN;
    o.self = p;
    o.peers = peers;
    o.master_secret = to_bytes("demo-shared-secret");  // dealer, out of band
    nodes.push_back(std::make_unique<Context>(o));
  }

  std::printf("establishing the TCP mesh (4 nodes, HMAC-authenticated)...\n");
  {
    std::vector<std::thread> starters;
    for (auto& node : nodes) {
      starters.emplace_back([&node] { node->start(); });
    }
    for (auto& t : starters) t.join();
  }

  std::vector<std::thread> threads;
  for (auto& node : nodes) {
    threads.emplace_back([&node] { node_main(*node); });
  }
  for (auto& t : threads) t.join();

  const auto stats = nodes[0]->transport_stats();
  std::printf("node 0 transport: %llu frames sent, %llu received, %llu MAC failures\n",
              static_cast<unsigned long long>(stats.frames_sent),
              static_cast<unsigned long long>(stats.frames_received),
              static_cast<unsigned long long>(stats.mac_failures));
  return 0;
}
