// Refcounted immutable byte buffers — the stack's mbuf.
//
// `Buffer` owns one contiguous, immutable block of bytes with shared
// ownership: copying a Buffer bumps a refcount, never the bytes. `Slice`
// is a (Buffer, offset, length) view that keeps its parent Buffer alive,
// so a payload sliced out of an arrival frame stays valid after the
// transport has forgotten the frame. Together they carry every message
// through the stack without copying:
//
//   encode:    Message::encode() produces ONE Buffer; broadcast fan-out
//              hands the same Buffer to every Transport::send.
//   decode:    Message::decode() returns a payload Slice aliasing the
//              arrival frame — no copy on the receive path.
//   batching:  AB batch unpack slices sub-messages out of the sealed
//              frame; each delivered Slice pins the frame until the
//              application is done with it.
//
// Ownership rules: a Slice is as cheap to copy as a shared_ptr; holding
// one pins the WHOLE parent frame (mbuf semantics — fine for protocol
// lifetimes, copy out with to_bytes() for long-term storage). Buffers are
// immutable after construction, so sharing across the single-threaded
// stack is trivially safe. Copies must be explicit (Buffer::copy /
// Slice::to_bytes); the only implicit constructions are zero-copy:
// adopting an owned Bytes rvalue and viewing a whole Buffer.
#pragma once

#include <cassert>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/bytes.h"

namespace ritas {

/// Shared ownership of one immutable contiguous byte block.
class Buffer {
 public:
  Buffer() = default;

  /// Adopts an owned vector without copying (moves it into shared storage).
  static Buffer own(Bytes&& b) {
    return Buffer(std::make_shared<const Bytes>(std::move(b)));
  }
  /// Copies `b` into a fresh block — the only copying constructor, and
  /// deliberately spelled out at every call site.
  static Buffer copy(ByteView b) {
    return Buffer(std::make_shared<const Bytes>(b.begin(), b.end()));
  }

  const std::uint8_t* data() const { return impl_ ? impl_->data() : nullptr; }
  std::size_t size() const { return impl_ ? impl_->size() : 0; }
  bool empty() const { return size() == 0; }
  ByteView view() const { return ByteView(data(), size()); }

  /// Live references to the block (0 for a null buffer) — lets tests prove
  /// sharing (encode-once fan-out) and lifetime (slice pins frame).
  long use_count() const { return impl_.use_count(); }

 private:
  explicit Buffer(std::shared_ptr<const Bytes> impl) : impl_(std::move(impl)) {}

  std::shared_ptr<const Bytes> impl_;
};

/// A view into a Buffer that shares ownership of it. Never dangles: the
/// parent block lives at least as long as the Slice by construction.
class Slice {
 public:
  Slice() = default;
  /// Whole-buffer view (implicit: it is zero-copy and cannot dangle).
  Slice(Buffer b) : off_(0), len_(b.size()), buf_(std::move(b)) {}
  /// Sub-range view. Out-of-range requests clamp to the buffer (parse code
  /// validates lengths before slicing; clamping keeps Byzantine input from
  /// ever turning into out-of-bounds reads).
  Slice(Buffer b, std::size_t off, std::size_t len) : buf_(std::move(b)) {
    off_ = off > buf_.size() ? buf_.size() : off;
    len_ = len > buf_.size() - off_ ? buf_.size() - off_ : len;
  }
  /// Adopts an owned vector (implicit and zero-copy: protocols build
  /// payloads with Writer and hand the result straight to send/broadcast).
  Slice(Bytes&& owned) : Slice(Buffer::own(std::move(owned))) {}

  const std::uint8_t* data() const { return buf_.data() + off_; }
  std::size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  ByteView view() const { return ByteView(data(), len_); }
  operator ByteView() const { return view(); }

  const std::uint8_t* begin() const { return data(); }
  const std::uint8_t* end() const { return data() + len_; }
  std::uint8_t operator[](std::size_t i) const {
    assert(i < len_);
    return data()[i];
  }

  /// A narrower view of the same block (shares ownership; clamps).
  Slice subslice(std::size_t off, std::size_t len) const {
    return Slice(buf_, off_ + off, off > len_ ? 0 : (len < len_ - off ? len : len_ - off));
  }

  /// Explicit copy out — for app-boundary handoff or long-term storage.
  Bytes to_bytes() const { return Bytes(begin(), end()); }

  /// The parent block (for use_count introspection in tests).
  const Buffer& buffer() const { return buf_; }

  /// Byte-wise equality (content, not identity).
  friend bool operator==(const Slice& a, const Slice& b) {
    return equal(a.view(), b.view());
  }

 private:
  std::size_t off_ = 0;
  std::size_t len_ = 0;
  Buffer buf_;
};

}  // namespace ritas
