#include "common/bytes.h"

#include <algorithm>
#include <stdexcept>

namespace ritas {

Bytes to_bytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string to_string(ByteView b) {
  return std::string(b.begin(), b.end());
}

std::string to_hex(ByteView b) {
  static constexpr char kDigits[] = "0123456789abcdef";
  std::string out;
  out.reserve(b.size() * 2);
  for (std::uint8_t v : b) {
    out.push_back(kDigits[v >> 4]);
    out.push_back(kDigits[v & 0x0f]);
  }
  return out;
}

namespace {
int hex_nibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Bytes from_hex(std::string_view hex) {
  if (hex.size() % 2 != 0) {
    throw std::invalid_argument("from_hex: odd-length input");
  }
  Bytes out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i < hex.size(); i += 2) {
    const int hi = hex_nibble(hex[i]);
    const int lo = hex_nibble(hex[i + 1]);
    if (hi < 0 || lo < 0) {
      throw std::invalid_argument("from_hex: non-hex character");
    }
    out.push_back(static_cast<std::uint8_t>((hi << 4) | lo));
  }
  return out;
}

bool equal(ByteView a, ByteView b) {
  return a.size() == b.size() && std::equal(a.begin(), a.end(), b.begin());
}

void append(Bytes& dst, ByteView src) {
  dst.insert(dst.end(), src.begin(), src.end());
}

}  // namespace ritas
