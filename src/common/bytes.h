// Byte-buffer aliases and small helpers shared by every RITAS module.
//
// The whole stack passes message payloads around as `Bytes` (owned) or
// `ByteView` (non-owned). Conversions to/from strings and hex are provided
// for tests, logging and key-derivation code.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ritas {

using Bytes = std::vector<std::uint8_t>;
using ByteView = std::span<const std::uint8_t>;

/// Builds an owned byte buffer from a string (no terminator is stored).
Bytes to_bytes(std::string_view s);

/// Interprets a byte view as a string (copies).
std::string to_string(ByteView b);

/// Lower-case hex encoding ("deadbeef").
std::string to_hex(ByteView b);

/// Parses lower/upper-case hex; throws std::invalid_argument on bad input.
Bytes from_hex(std::string_view hex);

/// Constant-size comparison helper (not timing-safe; see crypto/ct.h for
/// the timing-safe variant used on MACs).
bool equal(ByteView a, ByteView b);

/// Appends `src` to `dst`.
void append(Bytes& dst, ByteView src);

}  // namespace ritas
