#include "common/json.h"

#include <cctype>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

namespace ritas {

void JsonWriter::comma() {
  if (need_comma_) out_.push_back(',');
  need_comma_ = true;
}

void JsonWriter::escaped(std::string_view s) {
  out_.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\t': out_ += "\\t"; break;
      case '\r': out_ += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ += buf;
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_.push_back('{');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_.push_back('}');
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_.push_back('[');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_.push_back(']');
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma();
  escaped(name);
  out_.push_back(':');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma();
  escaped(s);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

// --- parser ---------------------------------------------------------------

const JsonValue* JsonValue::get(std::string_view key) const {
  if (kind != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::optional<bool> JsonValue::as_bool() const {
  if (kind != Kind::kBool) return std::nullopt;
  return boolean;
}

std::optional<std::uint64_t> JsonValue::as_u64() const {
  if (kind != Kind::kNumber || !is_unsigned) return std::nullopt;
  return unsigned_num;
}

std::optional<double> JsonValue::as_double() const {
  if (kind != Kind::kNumber) return std::nullopt;
  return number;
}

std::optional<std::string_view> JsonValue::as_string() const {
  if (kind != Kind::kString) return std::nullopt;
  return std::string_view(string);
}

std::optional<bool> JsonValue::bool_at(std::string_view key) const {
  const JsonValue* v = get(key);
  return v ? v->as_bool() : std::nullopt;
}

std::optional<std::uint64_t> JsonValue::u64_at(std::string_view key) const {
  const JsonValue* v = get(key);
  return v ? v->as_u64() : std::nullopt;
}

std::optional<double> JsonValue::double_at(std::string_view key) const {
  const JsonValue* v = get(key);
  return v ? v->as_double() : std::nullopt;
}

std::optional<std::string_view> JsonValue::string_at(std::string_view key) const {
  const JsonValue* v = get(key);
  return v ? v->as_string() : std::nullopt;
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  bool parse(JsonValue& out) {
    skip_ws();
    if (!parse_value(out, 0)) return false;
    skip_ws();
    return pos_ == text_.size();  // no trailing garbage
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool parse_string(std::string& out) {
    if (!eat('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos_ >= text_.size()) return false;
        const char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > text_.size()) return false;
            unsigned cp = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              cp <<= 4;
              if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
              else return false;
            }
            // Our writer only emits \u00XX control escapes; encode the
            // general case as UTF-8 anyway.
            if (cp < 0x80) {
              out.push_back(static_cast<char>(cp));
            } else if (cp < 0x800) {
              out.push_back(static_cast<char>(0xc0 | (cp >> 6)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
            } else {
              out.push_back(static_cast<char>(0xe0 | (cp >> 12)));
              out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (cp & 0x3f)));
            }
            break;
          }
          default:
            return false;
        }
      } else {
        out.push_back(c);
      }
    }
    return false;  // unterminated
  }

  bool parse_number(JsonValue& out) {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '-' || c == '+') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    out.kind = JsonValue::Kind::kNumber;
    out.number = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size()) return false;
    if (integral && token[0] != '-') {
      errno = 0;
      const std::uint64_t u = std::strtoull(token.c_str(), &end, 10);
      if (errno == 0 && end == token.c_str() + token.size()) {
        out.unsigned_num = u;
        out.is_unsigned = true;
      }
    }
    return true;
  }

  bool parse_value(JsonValue& out, int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) return false;
    const char c = text_[pos_];
    if (c == '{') {
      ++pos_;
      out.kind = JsonValue::Kind::kObject;
      skip_ws();
      if (eat('}')) return true;
      for (;;) {
        skip_ws();
        std::string key;
        if (!parse_string(key)) return false;
        skip_ws();
        if (!eat(':')) return false;
        skip_ws();
        JsonValue v;
        if (!parse_value(v, depth + 1)) return false;
        out.object.emplace_back(std::move(key), std::move(v));
        skip_ws();
        if (eat('}')) return true;
        if (!eat(',')) return false;
      }
    }
    if (c == '[') {
      ++pos_;
      out.kind = JsonValue::Kind::kArray;
      skip_ws();
      if (eat(']')) return true;
      for (;;) {
        skip_ws();
        JsonValue v;
        if (!parse_value(v, depth + 1)) return false;
        out.array.push_back(std::move(v));
        skip_ws();
        if (eat(']')) return true;
        if (!eat(',')) return false;
      }
    }
    if (c == '"') {
      out.kind = JsonValue::Kind::kString;
      return parse_string(out.string);
    }
    if (c == 't') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = true;
      return literal("true");
    }
    if (c == 'f') {
      out.kind = JsonValue::Kind::kBool;
      out.boolean = false;
      return literal("false");
    }
    if (c == 'n') {
      out.kind = JsonValue::Kind::kNull;
      return literal("null");
    }
    return parse_number(out);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> json_parse(std::string_view text) {
  JsonValue v;
  if (!JsonParser(text).parse(v)) return std::nullopt;
  return v;
}

}  // namespace ritas
