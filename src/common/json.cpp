#include "common/json.h"

#include <cinttypes>
#include <cstdio>

namespace ritas {

void JsonWriter::comma() {
  if (need_comma_) out_.push_back(',');
  need_comma_ = true;
}

void JsonWriter::escaped(std::string_view s) {
  out_.push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\t': out_ += "\\t"; break;
      case '\r': out_ += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ += buf;
        } else {
          out_.push_back(c);
        }
    }
  }
  out_.push_back('"');
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_.push_back('{');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_.push_back('}');
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_.push_back('[');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_.push_back(']');
  need_comma_ = true;
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  comma();
  escaped(name);
  out_.push_back(':');
  need_comma_ = false;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  comma();
  escaped(s);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out_ += buf;
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

}  // namespace ritas
