// Minimal streaming JSON writer for bench/trace artifacts.
//
// Just enough for the machine-readable outputs this repo emits
// (BENCH_*.json summaries, trace exports): objects, arrays, strings,
// integers, doubles, booleans, with automatic comma placement. Doubles are
// rendered with "%.6g" via snprintf so output is locale-independent and
// stable across runs — the CI bench-smoke job diffs these files.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace ritas {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits `"name":` — must be followed by a value or begin_*.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma();
  void escaped(std::string_view s);

  std::string out_;
  bool need_comma_ = false;
};

}  // namespace ritas
