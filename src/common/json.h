// Minimal streaming JSON writer for bench/trace artifacts.
//
// Just enough for the machine-readable outputs this repo emits
// (BENCH_*.json summaries, trace exports): objects, arrays, strings,
// integers, doubles, booleans, with automatic comma placement. Doubles are
// rendered with "%.6g" via snprintf so output is locale-independent and
// stable across runs — the CI bench-smoke job diffs these files.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ritas {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emits `"name":` — must be followed by a value or begin_*.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view s);
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(unsigned v) { return value(static_cast<std::uint64_t>(v)); }
  JsonWriter& value(double v);
  JsonWriter& value(bool v);

  /// key() + value() in one call.
  template <typename T>
  JsonWriter& field(std::string_view name, T&& v) {
    key(name);
    return value(std::forward<T>(v));
  }

  const std::string& str() const { return out_; }
  std::string take() { return std::move(out_); }

 private:
  void comma();
  void escaped(std::string_view s);

  std::string out_;
  bool need_comma_ = false;
};

/// Parsed JSON value (the reader counterpart of JsonWriter).
///
/// Covers exactly the subset the stack's own artifacts use — null, bool,
/// number, string, array, object — which is all `json_parse` accepts.
/// Accessors never throw: lookups on the wrong kind or a missing key
/// return nullptr / nullopt, so callers validating a foreign artifact
/// (e.g. a schedule_<seed>.json handed to `ritas_explore --replay`) can
/// treat every failure as "malformed input, reject".
struct JsonValue {
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;          // every number, as parsed by strtod
  std::uint64_t unsigned_num = 0;  // exact value when the token was a u64
  bool is_unsigned = false;
  std::string string;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;  // insertion order

  /// Object member lookup; nullptr when not an object or key absent.
  const JsonValue* get(std::string_view key) const;

  std::optional<bool> as_bool() const;
  std::optional<std::uint64_t> as_u64() const;
  std::optional<double> as_double() const;
  std::optional<std::string_view> as_string() const;

  /// get(key) + typed accessor in one step.
  std::optional<bool> bool_at(std::string_view key) const;
  std::optional<std::uint64_t> u64_at(std::string_view key) const;
  std::optional<double> double_at(std::string_view key) const;
  std::optional<std::string_view> string_at(std::string_view key) const;
};

/// Recursive-descent parse of a complete JSON document. Returns nullopt on
/// any syntax error or trailing garbage. Depth-limited so hostile input
/// cannot blow the stack.
std::optional<JsonValue> json_parse(std::string_view text);

}  // namespace ritas
