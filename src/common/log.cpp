#include "common/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <mutex>

namespace ritas {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_mutex;

const char* level_name(LogLevel lvl) {
  switch (lvl) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_level() { return static_cast<LogLevel>(g_level.load(std::memory_order_relaxed)); }

void set_log_level(LogLevel lvl) { g_level.store(static_cast<int>(lvl), std::memory_order_relaxed); }

namespace detail {

void log_write(LogLevel lvl, const char* file, int line, const std::string& msg) {
  // Strip directories from the file name for compact output.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s] %s:%d %s\n", level_name(lvl), base, line, msg.c_str());
}

std::string log_format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<std::size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace detail
}  // namespace ritas
