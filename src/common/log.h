// Minimal leveled logger.
//
// The protocol stack never logs on its hot paths by default (level WARN);
// tests and examples raise the level to trace protocol decisions. The
// logger is process-global and intentionally tiny — a reproduction harness
// does not need sinks, rotation, or structured output.
#pragma once

#include <cstdio>
#include <string>
#include <utility>

namespace ritas {

enum class LogLevel : int { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global threshold; messages below it are discarded.
LogLevel log_level();
void set_log_level(LogLevel lvl);

namespace detail {
void log_write(LogLevel lvl, const char* file, int line, const std::string& msg);
std::string log_format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
}  // namespace detail

#define RITAS_LOG(lvl, ...)                                                 \
  do {                                                                      \
    if (static_cast<int>(lvl) >= static_cast<int>(::ritas::log_level())) {  \
      ::ritas::detail::log_write(lvl, __FILE__, __LINE__,                   \
                                 ::ritas::detail::log_format(__VA_ARGS__)); \
    }                                                                       \
  } while (0)

#define LOG_TRACE(...) RITAS_LOG(::ritas::LogLevel::kTrace, __VA_ARGS__)
#define LOG_DEBUG(...) RITAS_LOG(::ritas::LogLevel::kDebug, __VA_ARGS__)
#define LOG_INFO(...) RITAS_LOG(::ritas::LogLevel::kInfo, __VA_ARGS__)
#define LOG_WARN(...) RITAS_LOG(::ritas::LogLevel::kWarn, __VA_ARGS__)
#define LOG_ERROR(...) RITAS_LOG(::ritas::LogLevel::kError, __VA_ARGS__)

}  // namespace ritas
