#include "common/rng.h"

namespace ritas {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
inline std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::below(std::uint64_t bound) {
  // Lemire's nearly-divisionless method with rejection for exact uniformity.
  #ifdef __SIZEOF_INT128__
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
  #else
  // Portable fallback: masked rejection sampling.
  std::uint64_t mask = bound - 1;
  mask |= mask >> 1; mask |= mask >> 2; mask |= mask >> 4;
  mask |= mask >> 8; mask |= mask >> 16; mask |= mask >> 32;
  std::uint64_t v;
  do { v = next() & mask; } while (v >= bound);
  return v;
  #endif
}

double Rng::uniform() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

}  // namespace ritas
