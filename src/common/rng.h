// Deterministic pseudo-random number generation.
//
// Every process in the stack owns one `Rng` (the paper's "random bit
// generator ... observable only by the process"). Tests and the simulator
// seed them explicitly so that even executions that flip random coins are
// bit-for-bit reproducible; the TCP facade seeds from std::random_device.
//
// The generator is xoshiro256** (public domain, Blackman & Vigna), seeded
// through SplitMix64 so that closely-spaced seeds yield independent streams.
#pragma once

#include <cstdint>

namespace ritas {

/// SplitMix64 step; used for seeding and as a cheap hash mixer.
std::uint64_t splitmix64(std::uint64_t& state);

/// xoshiro256** engine with convenience distributions.
class Rng {
 public:
  /// Seeds deterministically from a single 64-bit value.
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Unbiased integer in [0, bound) via Lemire rejection. bound must be > 0.
  std::uint64_t below(std::uint64_t bound);

  /// Unbiased random bit — the consensus coin.
  bool coin() { return (next() >> 63) != 0; }

  /// Uniform double in [0, 1).
  double uniform();

  /// Satisfies std::uniform_random_bit_generator so the engine can be used
  /// with <algorithm> shuffles in tests.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~std::uint64_t{0}; }
  result_type operator()() { return next(); }

 private:
  std::uint64_t s_[4];
};

}  // namespace ritas
