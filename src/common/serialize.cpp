#include "common/serialize.h"

namespace ritas {

void Writer::u16(std::uint16_t v) {
  buf_.push_back(static_cast<std::uint8_t>(v));
  buf_.push_back(static_cast<std::uint8_t>(v >> 8));
}

void Writer::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

void Writer::bytes(ByteView b) {
  u32(static_cast<std::uint32_t>(b.size()));
  raw(b);
}

void Writer::str(std::string_view s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

bool Reader::take(std::size_t n) {
  if (!ok_ || buf_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  return true;
}

std::uint8_t Reader::u8() {
  if (!take(1)) return 0;
  return buf_[pos_++];
}

std::uint16_t Reader::u16() {
  if (!take(2)) return 0;
  std::uint16_t v = static_cast<std::uint16_t>(buf_[pos_]) |
                    static_cast<std::uint16_t>(buf_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

std::uint32_t Reader::u32() {
  if (!take(4)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(buf_[pos_ + i]) << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t Reader::u64() {
  if (!take(8)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(buf_[pos_ + i]) << (8 * i);
  }
  pos_ += 8;
  return v;
}

Bytes Reader::bytes() {
  const std::uint32_t n = u32();
  return raw(n);
}

std::string Reader::str() {
  const std::uint32_t n = u32();
  if (!take(n)) return {};
  std::string s(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
                buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return s;
}

Bytes Reader::raw(std::size_t n) {
  if (!take(n)) return {};
  Bytes b(buf_.begin() + static_cast<std::ptrdiff_t>(pos_),
          buf_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
  pos_ += n;
  return b;
}

}  // namespace ritas
