// Binary serialization used for every wire message in the stack.
//
// Encoding rules: fixed-width little-endian integers, varint-free (the
// stack's headers are tiny and predictability beats compactness here),
// length-prefixed byte strings (u32 length). `Reader` never throws on
// truncated input; every accessor reports failure through `ok()` so that a
// Byzantine peer feeding garbage can never take the process down — parsing
// failures surface as "drop this message".
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/bytes.h"

namespace ritas {

/// Append-only binary encoder.
class Writer {
 public:
  Writer() = default;
  explicit Writer(std::size_t reserve) { buf_.reserve(reserve); }

  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u16(std::uint16_t v);
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  /// Raw bytes, no length prefix.
  void raw(ByteView b) { append(buf_, b); }
  /// Length-prefixed (u32) byte string.
  void bytes(ByteView b);
  /// Length-prefixed (u32) UTF-8 string.
  void str(std::string_view s);

  const Bytes& data() const& { return buf_; }
  Bytes take() && { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  Bytes buf_;
};

/// Sticky-failure binary decoder over a non-owned view.
///
/// On any out-of-bounds read `ok()` becomes false and every subsequent
/// accessor returns a zero value. Callers check `ok()` once at the end of
/// parsing (or earlier when a length guides further reads).
class Reader {
 public:
  explicit Reader(ByteView b) : buf_(b) {}

  std::uint8_t u8();
  std::uint16_t u16();
  std::uint32_t u32();
  std::uint64_t u64();
  /// Reads a u32 length prefix then that many bytes. Fails (and returns an
  /// empty buffer) if the length exceeds the remaining input.
  Bytes bytes();
  std::string str();
  /// Reads exactly n raw bytes.
  Bytes raw(std::size_t n);

  bool ok() const { return ok_; }
  /// True when the whole input was consumed and no read failed.
  bool done() const { return ok_ && pos_ == buf_.size(); }
  std::size_t remaining() const { return ok_ ? buf_.size() - pos_ : 0; }
  /// Current read offset into the input — lets zero-copy callers slice the
  /// bytes a length prefix describes out of the backing frame instead of
  /// copying them (see Message::decode).
  std::size_t pos() const { return pos_; }
  /// Advances past n bytes without materializing them (sticky-fails like
  /// every other accessor when fewer than n remain).
  void skip(std::size_t n) {
    if (take(n)) pos_ += n;
  }
  /// Marks the parse failed (for callers that discover a semantic error).
  void fail() { ok_ = false; }

 private:
  bool take(std::size_t n);

  ByteView buf_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace ritas
