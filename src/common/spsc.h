// Bounded single-producer / single-consumer ring — the handoff queue
// between the transport poll thread and one reactor thread.
//
// Exactly one thread may call try_push and exactly one thread may call
// try_pop; under that contract the ring is lock-free and wait-free. The
// producer publishes a slot with a release store of tail_ after the value
// is written; the consumer acquires tail_ before reading, so the value
// write happens-before the read. Capacity is fixed at construction
// (rounded up to a power of two) — a full ring rejects the push and the
// caller decides whether to block, retry, or drop (ReactorPool counts the
// outcome either way).
//
// Slots are default-constructed T and assigned through; a popped slot is
// overwritten with T{} so refcounted payloads (Slice) release their
// buffer as soon as the consumer takes them, not when the slot is next
// reused.
#pragma once

#include <atomic>
#include <cstddef>
#include <utility>
#include <vector>

namespace ritas {

template <typename T>
class SpscQueue {
 public:
  explicit SpscQueue(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscQueue(const SpscQueue&) = delete;
  SpscQueue& operator=(const SpscQueue&) = delete;

  std::size_t capacity() const { return slots_.size(); }

  /// Producer side. Returns false when the ring is full.
  bool try_push(T&& v) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    const std::size_t head = head_.load(std::memory_order_acquire);
    if (tail - head >= slots_.size()) return false;
    slots_[tail & mask_] = std::move(v);
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    if (head == tail) return false;
    out = std::move(slots_[head & mask_]);
    slots_[head & mask_] = T{};
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy — exact from either endpoint thread, a
  /// snapshot from anywhere else (used for queue-depth gauges).
  std::size_t size() const {
    const std::size_t tail = tail_.load(std::memory_order_acquire);
    const std::size_t head = head_.load(std::memory_order_acquire);
    return tail - head;
  }

  bool empty() const { return size() == 0; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  // Head and tail live on separate cache lines so the producer's tail
  // stores do not bounce the consumer's head line (and vice versa).
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

}  // namespace ritas
