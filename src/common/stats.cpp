#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace ritas {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const {
  return std::sqrt(variance());
}

void Sample::add(double x) {
  xs_.push_back(x);
  dirty_ = true;
}

double Sample::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Sample::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : xs_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs_.size() - 1));
}

double Sample::min() const {
  if (xs_.empty()) return 0.0;
  return *std::min_element(xs_.begin(), xs_.end());
}

double Sample::max() const {
  if (xs_.empty()) return 0.0;
  return *std::max_element(xs_.begin(), xs_.end());
}

double Sample::percentile(double p) const {
  if (xs_.empty()) throw std::logic_error("percentile of empty sample");
  if (dirty_) {
    sorted_ = xs_;
    std::sort(sorted_.begin(), sorted_.end());
    dirty_ = false;
  }
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted_.size())));
  return sorted_[rank == 0 ? 0 : rank - 1];
}

}  // namespace ritas
