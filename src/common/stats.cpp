#include "common/stats.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>

namespace ritas {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const {
  return std::sqrt(variance());
}

void Sample::add(double x) {
  xs_.push_back(x);
  dirty_ = true;
}

double Sample::mean() const {
  if (xs_.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs_) s += x;
  return s / static_cast<double>(xs_.size());
}

double Sample::stddev() const {
  if (xs_.size() < 2) return 0.0;
  const double m = mean();
  double s = 0.0;
  for (double x : xs_) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs_.size() - 1));
}

double Sample::min() const {
  if (xs_.empty()) return 0.0;
  return *std::min_element(xs_.begin(), xs_.end());
}

double Sample::max() const {
  if (xs_.empty()) return 0.0;
  return *std::max_element(xs_.begin(), xs_.end());
}

double Sample::percentile(double p) const {
  if (xs_.empty()) throw std::logic_error("percentile of empty sample");
  if (dirty_) {
    sorted_ = xs_;
    std::sort(sorted_.begin(), sorted_.end());
    dirty_ = false;
  }
  p = std::clamp(p, 0.0, 100.0);
  const auto rank = static_cast<std::size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted_.size())));
  return sorted_[rank == 0 ? 0 : rank - 1];
}

void Histogram::add(std::uint64_t v) {
  const auto b = static_cast<std::size_t>(std::bit_width(v));
  ++buckets_[b];
  bucket_max_[b] = std::max(bucket_max_[b], v);
  ++count_;
  total_ += v;
  min_ = std::min(min_, v);
  max_ = std::max(max_, v);
}

std::uint64_t Histogram::bucket_floor(std::size_t i) {
  return i == 0 ? 0 : 1ull << (i - 1);
}

std::uint64_t Histogram::percentile_bound(double p) const {
  if (count_ == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  auto rank = static_cast<std::uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(count_)));
  if (rank == 0) rank = 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i];
    if (seen >= rank) {
      // Largest value observed in bucket i: exact when the bucket holds one
      // distinct value (the common case at sparse tails), otherwise an upper
      // bound that never drops below the true rank value.
      return bucket_max_[i];
    }
  }
  return max_;
}

Histogram& Histogram::operator+=(const Histogram& other) {
  for (std::size_t i = 0; i < kBuckets; ++i) {
    buckets_[i] += other.buckets_[i];
    bucket_max_[i] = std::max(bucket_max_[i], other.bucket_max_[i]);
  }
  count_ += other.count_;
  total_ += other.total_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  return *this;
}

}  // namespace ritas
