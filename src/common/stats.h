// Statistics helpers used by the benchmark harnesses.
//
// `OnlineStats` keeps running mean/variance (Welford); `Sample` stores the
// raw observations for percentile queries — the paper reports averages of
// 100 isolated runs (Table 1) and of 10 burst runs (Figures 4-6), so both
// forms are needed. `Histogram` is the cheap always-on form carried inside
// `Metrics`: power-of-two buckets, O(1) add, mergeable across processes.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ritas {

/// Welford running mean / variance. O(1) memory.
class OnlineStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Raw-observation container with percentile queries.
class Sample {
 public:
  void add(double x);
  std::size_t count() const { return xs_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Nearest-rank percentile, p in [0,100]. Requires at least one sample.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  const std::vector<double>& values() const { return xs_; }

 private:
  std::vector<double> xs_;
  mutable std::vector<double> sorted_;
  mutable bool dirty_ = false;
};

/// Power-of-two bucketed histogram of unsigned values (latencies in ns,
/// round counts, ...). Bucket i holds values whose bit width is i, i.e.
/// bucket 0 = {0}, bucket i = [2^(i-1), 2^i). Adding is branch-free and
/// allocation-free, so `Metrics` can carry these unconditionally; merging
/// with += matches the cluster-wide `Metrics::operator+=` aggregation.
/// Each bucket also tracks the largest value it absorbed, so percentile
/// extraction reports observed values (exact on sparse tails) rather than
/// raw power-of-two bucket bounds.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;

  void add(std::uint64_t v);

  std::uint64_t count() const { return count_; }
  std::uint64_t total() const { return total_; }
  double mean() const { return count_ ? static_cast<double>(total_) / static_cast<double>(count_) : 0.0; }
  std::uint64_t min() const { return count_ ? min_ : 0; }
  std::uint64_t max() const { return max_; }

  const std::array<std::uint64_t, kBuckets>& buckets() const { return buckets_; }
  /// Inclusive lower bound of bucket i (0, 1, 2, 4, 8, ...).
  static std::uint64_t bucket_floor(std::size_t i);

  /// Nearest-rank percentile over the bucketed distribution, p in [0,100].
  /// Returns the LARGEST OBSERVED value in the bucket holding the p-th
  /// rank: exact when that bucket is sparse (one distinct value — the
  /// common case at the p99.9 tail), otherwise conservatively rounded up
  /// within the bucket. Never exceeds max() and never falls below the true
  /// rank value. 0 on an empty histogram.
  std::uint64_t percentile_bound(double p) const;
  std::uint64_t p50() const { return percentile_bound(50.0); }
  std::uint64_t p99() const { return percentile_bound(99.0); }
  std::uint64_t p999() const { return percentile_bound(99.9); }

  Histogram& operator+=(const Histogram& other);

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::array<std::uint64_t, kBuckets> bucket_max_{};
  std::uint64_t count_ = 0;
  std::uint64_t total_ = 0;
  std::uint64_t min_ = ~0ull;
  std::uint64_t max_ = 0;
};

}  // namespace ritas
