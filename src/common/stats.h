// Statistics helpers used by the benchmark harnesses.
//
// `OnlineStats` keeps running mean/variance (Welford); `Sample` stores the
// raw observations for percentile queries — the paper reports averages of
// 100 isolated runs (Table 1) and of 10 burst runs (Figures 4-6), so both
// forms are needed.
#pragma once

#include <cstddef>
#include <vector>

namespace ritas {

/// Welford running mean / variance. O(1) memory.
class OnlineStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Raw-observation container with percentile queries.
class Sample {
 public:
  void add(double x);
  std::size_t count() const { return xs_.size(); }
  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;
  /// Nearest-rank percentile, p in [0,100]. Requires at least one sample.
  double percentile(double p) const;
  double median() const { return percentile(50.0); }
  const std::vector<double>& values() const { return xs_; }

 private:
  std::vector<double> xs_;
  mutable std::vector<double> sorted_;
  mutable bool dirty_ = false;
};

}  // namespace ritas
