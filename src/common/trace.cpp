#include "common/trace.h"

#include <cinttypes>
#include <cstdio>
#include <map>

#include "common/serialize.h"

namespace ritas {

std::string TracePath::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < depth; ++i) {
    if (i) out.push_back('/');
    out += trace_proto_name(type[i]);
    out.push_back('#');
    out += std::to_string(seq[i]);
  }
  return out.empty() ? "<stack>" : out;
}

const char* trace_proto_name(std::uint8_t type_code) {
  switch (type_code) {
    case 1: return "rb";
    case 2: return "eb";
    case 3: return "bc";
    case 4: return "mvc";
    case 5: return "vc";
    case 6: return "ab";
  }
  return "?";
}

const char* trace_phase_name(TracePhase ph) {
  switch (ph) {
    case TracePhase::kRbInit: return "rb.init";
    case TracePhase::kRbEcho: return "rb.echo";
    case TracePhase::kRbReady: return "rb.ready";
    case TracePhase::kRbDeliver: return "rb.deliver";
    case TracePhase::kEbInit: return "eb.init";
    case TracePhase::kEbVect: return "eb.vect";
    case TracePhase::kEbMat: return "eb.mat";
    case TracePhase::kEbDeliver: return "eb.deliver";
    case TracePhase::kBcPropose: return "bc.propose";
    case TracePhase::kBcRound: return "bc.round";
    case TracePhase::kBcStep: return "bc.step";
    case TracePhase::kBcCoin: return "bc.coin";
    case TracePhase::kBcDecide: return "bc.decide";
    case TracePhase::kMvcPropose: return "mvc.propose";
    case TracePhase::kMvcVect: return "mvc.vect";
    case TracePhase::kMvcBcPropose: return "mvc.bc_propose";
    case TracePhase::kMvcDecide: return "mvc.decide";
    case TracePhase::kVcPropose: return "vc.propose";
    case TracePhase::kVcRound: return "vc.round";
    case TracePhase::kVcDecide: return "vc.decide";
    case TracePhase::kAbBcast: return "ab.bcast";
    case TracePhase::kAbRound: return "ab.round";
    case TracePhase::kAbDeliver: return "ab.deliver";
    case TracePhase::kAbBatchSeal: return "ab.batch_seal";
    case TracePhase::kAbBatchUnpack: return "ab.batch_unpack";
    case TracePhase::kSebInit: return "seb.init";
    case TracePhase::kSebEcho: return "seb.echo";
    case TracePhase::kSebCommit: return "seb.commit";
    case TracePhase::kSebDeliver: return "seb.deliver";
  }
  return "phase?";
}

const char* trace_drop_name(TraceDrop d) {
  switch (d) {
    case TraceDrop::kMalformed: return "drop.malformed";
    case TraceDrop::kUnroutable: return "drop.unroutable";
    case TraceDrop::kInvalid: return "drop.invalid";
    case TraceDrop::kForeignGroup: return "drop.foreign_group";
  }
  return "drop?";
}

Bytes Tracer::encode() const {
  Writer w(32 + events_.size() * 32);
  w.u32(0x43525452u);  // "RTRC"
  w.u16(1);            // version
  w.u32(pid_);
  w.u64(events_.size());
  for (const TraceEvent& e : events_) {
    w.u64(e.ts_ns);
    w.u8(static_cast<std::uint8_t>(e.kind));
    w.u8(e.code);
    w.u8(e.sub);
    w.u32(e.peer);
    w.u64(e.arg);
    w.u8(e.path.depth);
    for (std::size_t i = 0; i < e.path.depth; ++i) {
      w.u8(e.path.type[i]);
      w.u64(e.path.seq[i]);
    }
  }
  return std::move(w).take();
}

namespace {

void append_ts_us(std::string& out, std::uint64_t ts_ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%" PRIu64 ".%03u", ts_ns / 1000,
                static_cast<unsigned>(ts_ns % 1000));
  out += buf;
}

/// Emits the shared fields of one trace_event record (caller opens/closes
/// the braces around it). All strings we emit are controlled ASCII, so no
/// JSON escaping is needed.
void append_common(std::string& out, const char* name, const char* ph,
                   std::uint32_t pid, std::uint64_t tid, std::uint64_t ts_ns) {
  out += "\"name\":\"";
  out += name;
  out += "\",\"ph\":\"";
  out += ph;
  out += "\",\"pid\":";
  out += std::to_string(pid);
  out += ",\"tid\":";
  out += std::to_string(tid);
  out += ",\"ts\":";
  append_ts_us(out, ts_ns);
}

void append_args(std::string& out, const TraceEvent& e) {
  out += ",\"args\":{\"path\":\"";
  out += e.path.to_string();
  out += "\",\"arg\":";
  out += std::to_string(e.arg);
  out += ",\"code\":";
  out += std::to_string(e.code);
  if (e.sub != 0) {
    out += ",\"sub\":";
    out += std::to_string(e.sub);
  }
  if (e.peer != 0xffffffffu) {
    out += ",\"peer\":";
    out += std::to_string(e.peer);
  }
  out += "}";
}

}  // namespace

std::string chrome_trace_json(const std::vector<const Tracer*>& tracers) {
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) out += ",\n";
    first = false;
    out += "{";
  };

  for (const Tracer* t : tracers) {
    if (t == nullptr) continue;
    const std::uint32_t pid = t->pid();

    sep();
    append_common(out, "process_name", "M", pid, 0, 0);
    out += ",\"args\":{\"name\":\"ritas p" + std::to_string(pid) + "\"}}";

    // Rows: tid 0 is the stack itself (sends/receives/drops with no or
    // foreign paths); each root instance gets its own row, named after it.
    std::map<std::pair<std::uint8_t, std::uint64_t>, std::uint64_t> tids;
    auto tid_of = [&](const TracePath& p) -> std::uint64_t {
      if (p.depth == 0) return 0;
      const auto key = std::make_pair(p.type[0], p.seq[0]);
      auto it = tids.find(key);
      if (it != tids.end()) return it->second;
      const std::uint64_t tid = tids.size() + 1;
      tids.emplace(key, tid);
      sep();
      append_common(out, "thread_name", "M", pid, tid, 0);
      std::string label = trace_proto_name(p.type[0]);
      label += "#" + std::to_string(p.seq[0]);
      out += ",\"args\":{\"name\":\"" + label + "\"}}";
      return tid;
    };

    // Spawn timestamps per live path, so kComplete can close an "X" slice.
    std::map<std::string, std::uint64_t> spawn_ts;

    for (const TraceEvent& e : t->events()) {
      const std::uint64_t tid = tid_of(e.path);
      switch (e.kind) {
        case TraceEventKind::kInstanceSpawn:
          spawn_ts[e.path.to_string()] = e.ts_ns;
          break;
        case TraceEventKind::kInstanceDestroy:
          spawn_ts.erase(e.path.to_string());
          break;
        case TraceEventKind::kComplete: {
          const std::string key = e.path.to_string();
          auto it = spawn_ts.find(key);
          if (it != spawn_ts.end()) {
            std::string label = trace_proto_name(e.path.leaf_type());
            label += "#" + std::to_string(
                               e.path.depth ? e.path.seq[e.path.depth - 1] : 0);
            sep();
            append_common(out, label.c_str(), "X", pid, tid, it->second);
            out += ",\"dur\":";
            append_ts_us(out, e.ts_ns - it->second);
            append_args(out, e);
            out += "}";
            spawn_ts.erase(it);
          }
          break;
        }
        case TraceEventKind::kPhase: {
          sep();
          append_common(out, trace_phase_name(static_cast<TracePhase>(e.code)),
                        "i", pid, tid, e.ts_ns);
          out += ",\"s\":\"t\"";
          append_args(out, e);
          out += "}";
          break;
        }
        case TraceEventKind::kDrop: {
          sep();
          append_common(out, trace_drop_name(static_cast<TraceDrop>(e.code)),
                        "i", pid, tid, e.ts_ns);
          out += ",\"s\":\"t\"";
          append_args(out, e);
          out += "}";
          break;
        }
        case TraceEventKind::kSend:
        case TraceEventKind::kRecv:
        case TraceEventKind::kOocStore:
        case TraceEventKind::kOocDrain:
        case TraceEventKind::kOocEvict:
        case TraceEventKind::kWire:
        case TraceEventKind::kLinkUp:
        case TraceEventKind::kLinkDown:
        case TraceEventKind::kLinkHandshake: {
          const char* name = "?";
          switch (e.kind) {
            case TraceEventKind::kSend: name = "send"; break;
            case TraceEventKind::kRecv: name = "recv"; break;
            case TraceEventKind::kOocStore: name = "ooc.store"; break;
            case TraceEventKind::kOocDrain: name = "ooc.drain"; break;
            case TraceEventKind::kOocEvict: name = "ooc.evict"; break;
            case TraceEventKind::kLinkUp: name = "link.up"; break;
            case TraceEventKind::kLinkDown: name = "link.down"; break;
            case TraceEventKind::kLinkHandshake: name = "link.handshake"; break;
            default: name = "wire"; break;
          }
          sep();
          append_common(out, name, "i", pid, tid, e.ts_ns);
          out += ",\"s\":\"t\"";
          append_args(out, e);
          out += "}";
          break;
        }
      }
    }
  }
  out += "]}";
  return out;
}

TraceSummary summarize(const Tracer& tracer) {
  return summarize(std::vector<const Tracer*>{&tracer});
}

TraceSummary summarize(const std::vector<const Tracer*>& tracers) {
  TraceSummary s;
  for (const Tracer* t : tracers) {
    if (t == nullptr) continue;
    s.events += t->size();
    for (const TraceEvent& e : t->events()) {
      const std::uint8_t leaf = e.path.leaf_type() % kTraceProtoSlots;
      switch (e.kind) {
        case TraceEventKind::kInstanceSpawn:
          ++s.spawns[leaf];
          break;
        case TraceEventKind::kComplete:
          ++s.completes[leaf];
          s.latency_total_ns[leaf] += e.arg;
          break;
        case TraceEventKind::kSend:
          ++s.sends;
          s.bytes_sent += e.arg;
          break;
        case TraceEventKind::kRecv:
          ++s.recvs;
          break;
        case TraceEventKind::kDrop:
          ++s.drops;
          break;
        case TraceEventKind::kPhase:
          switch (static_cast<TracePhase>(e.code)) {
            case TracePhase::kRbInit:
              (e.arg == 0 ? s.rb_started_payload : s.rb_started_agreement)++;
              break;
            case TracePhase::kEbInit:
              (e.arg == 0 ? s.eb_started_payload : s.eb_started_agreement)++;
              break;
            default:
              break;
          }
          break;
        default:
          break;
      }
    }
  }
  return s;
}

}  // namespace ritas
