// Structured per-instance event tracing for the protocol stack.
//
// The paper's whole evaluation (§4, Table 1, Figures 4-7) is built on
// counting and timing protocol events; this is the machinery that records
// them. A `Tracer` is a per-process append-only event log: instance
// spawn/destroy, phase transitions (INIT/ECHO/READY, VECT/MAT, consensus
// round/step/coin, ...), message send/receive with byte sizes, and
// defensive drops — every event tagged with the instance path it belongs
// to and a timestamp supplied by the *caller* (the stack takes timestamps
// from its Transport, so src/core never reads a clock and simulated runs
// stay deterministic: same seed => bit-identical trace bytes).
//
// This header is layering-clean: it knows nothing about src/core. The
// instance path is mirrored as `TracePath` (protocol-type code + sequence
// pairs); core converts InstanceId -> TracePath at the recording site.
//
// Exporters: `encode()` produces a compact deterministic binary form (the
// determinism tests compare these bytes), `chrome_trace_json()` renders
// one or more tracers as a Chrome trace_event JSON document loadable in
// chrome://tracing or https://ui.perfetto.dev, and `summarize()` derives
// the per-protocol counts/latency breakdowns the benches and tests check
// against `Metrics`.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace ritas {

/// Mirror of core's InstanceId without the dependency: a bounded path of
/// (protocol-type code, sequence) components. Type codes match
/// ritas::ProtocolType (1 = rb .. 6 = ab); 0 is "no protocol".
struct TracePath {
  static constexpr std::size_t kMaxDepth = 6;

  std::array<std::uint8_t, kMaxDepth> type{};
  std::array<std::uint64_t, kMaxDepth> seq{};
  std::uint8_t depth = 0;

  std::uint8_t leaf_type() const { return depth ? type[depth - 1] : 0; }
  std::uint8_t root_type() const { return depth ? type[0] : 0; }

  /// "rb#1/bc#3" — same rendering as InstanceId::to_string().
  std::string to_string() const;

  friend bool operator==(const TracePath&, const TracePath&) = default;
};

/// Highest protocol-type code + 1; sizes per-protocol breakdown arrays.
constexpr std::size_t kTraceProtoSlots = 7;

/// Short name for a protocol-type code ("rb", "eb", ..., "?").
const char* trace_proto_name(std::uint8_t type_code);

enum class TraceEventKind : std::uint8_t {
  kInstanceSpawn = 1,   // control block registered
  kInstanceDestroy = 2, // control block unregistered
  kPhase = 3,           // protocol phase transition; code = TracePhase
  kSend = 4,            // wire frame out; code = msg tag, peer = to, arg = bytes
  kRecv = 5,            // wire frame in; code = msg tag, peer = from, arg = bytes
  kDrop = 6,            // defensive drop; code = TraceDrop
  kComplete = 7,        // terminal deliver/decide; arg = spawn->now latency ns
  kOocStore = 8,        // parked in the out-of-context table; peer = sender
  kOocDrain = 9,        // re-dispatched from the out-of-context table
  kOocEvict = 10,       // evicted by the per-sender quota; peer = sender
  kWire = 11,           // sim transport: frame submitted; peer = to, arg = wire bytes
  kLinkUp = 12,         // channel handshake completed; peer, arg = session id
  kLinkDown = 13,       // channel lost (EOF/RST/write error); peer, arg = session id
  kLinkHandshake = 14,  // re-handshake resynced counters; peer, arg = frames retransmitted
};

/// Phase transitions, one namespace across all six protocols (plus the
/// signed-echo baseline). The `arg`/`code` conventions per phase are
/// documented in docs/OBSERVABILITY.md.
enum class TracePhase : std::uint8_t {
  // Reliable broadcast (Bracha): INIT -> ECHO -> READY -> deliver.
  kRbInit = 1,    // origin started the broadcast; arg = Attribution
  kRbEcho = 2,    // this process broadcast its ECHO
  kRbReady = 3,   // this process broadcast its READY
  kRbDeliver = 4, // 2f+1 READYs: delivered

  // Echo broadcast (hash matrix): INIT -> VECT -> MAT -> deliver.
  kEbInit = 10,    // origin started the broadcast; arg = Attribution
  kEbVect = 11,    // this process sent its hash vector to the origin
  kEbMat = 12,     // origin distributed the matrix columns
  kEbDeliver = 13, // f+1 column cells verified: delivered

  // Binary consensus: 3-step rounds with a coin.
  kBcPropose = 20, // activated; sub = proposed bit
  kBcRound = 21,   // entered a new round; arg = round
  kBcStep = 22,    // broadcast a step value; arg = round, sub = step*8 | value
  kBcCoin = 23,    // tossed the coin; arg = round, sub = outcome
  kBcDecide = 24,  // decided; arg = round, sub = decision

  // Multi-valued consensus: INIT -> VECT -> BC -> decide.
  kMvcPropose = 30,   // activated
  kMvcVect = 31,      // sent VECT; sub = 1 if it carries a value, 0 for ⊥
  kMvcBcPropose = 32, // proposed to the inner binary consensus; sub = bit
  kMvcDecide = 33,    // decided; sub = 1 value, 0 default ⊥

  // Vector consensus: rounds of MVC over proposal snapshots.
  kVcPropose = 40, // activated
  kVcRound = 41,   // started an MVC round; arg = round
  kVcDecide = 42,  // decided a vector

  // Atomic broadcast: dissemination + agreement rounds.
  kAbBcast = 50,   // application message submitted; arg = rbid
  kAbRound = 51,   // agreement round started; arg = round
  kAbDeliver = 52, // message delivered in total order; arg = rbid, sub = origin
  kAbBatchSeal = 53,   // open batch sealed into one AB_MSG; arg = rbid, sub = min(msgs, 255)
  kAbBatchUnpack = 54, // delivered batch unpacked; arg = rbid, sub = min(msgs, 255)

  // Signed echo broadcast (RSA baseline): INIT -> ECHO -> COMMIT -> deliver.
  kSebInit = 60,    // arg = Attribution
  kSebEcho = 61,    // echo signature sent to the origin
  kSebCommit = 62,  // origin distributed the signature certificate
  kSebDeliver = 63, // certificate verified: delivered
};

const char* trace_phase_name(TracePhase ph);

enum class TraceDrop : std::uint8_t {
  kMalformed = 1,    // undecodable frame
  kUnroutable = 2,   // spawn refused with tombstone
  kInvalid = 3,      // protocol-level validation failure
  kForeignGroup = 4, // frame addressed to a group this stack does not run
};

const char* trace_drop_name(TraceDrop d);

/// One recorded event. Fixed-size POD so a run's trace is cheap to hold
/// and deterministic to serialize.
struct TraceEvent {
  std::uint64_t ts_ns = 0;
  TraceEventKind kind{};
  std::uint8_t code = 0;        // phase / drop kind / message tag
  std::uint32_t peer = 0xffffffffu; // counterpart process for send/recv/ooc
  std::uint64_t arg = 0;        // bytes, round, rbid, latency, ...
  TracePath path;
  std::uint8_t sub = 0;         // phase-specific detail (see TracePhase docs)

  friend bool operator==(const TraceEvent&, const TraceEvent&) = default;
};

/// Per-process event log. Recording is append-only and allocation-amortized;
/// when disabled (or simply not attached to a stack) no events are stored
/// and the stack's fast paths only pay one pointer test.
class Tracer {
 public:
  explicit Tracer(std::uint32_t pid = 0) : pid_(pid) {}

  std::uint32_t pid() const { return pid_; }
  bool enabled() const { return enabled_; }
  void set_enabled(bool on) { enabled_ = on; }

  void record(const TraceEvent& e) {
    if (enabled_) events_.push_back(e);
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }
  void clear() { events_.clear(); }

  /// Compact deterministic binary serialization (magic "RTRC", version 1).
  /// Two runs with the same seed produce byte-identical encodings.
  Bytes encode() const;

 private:
  std::uint32_t pid_;
  bool enabled_ = true;
  std::vector<TraceEvent> events_;
};

/// Renders the tracers (one per process) as a Chrome trace_event JSON
/// document: {"traceEvents": [...]}. Instance lifetimes with a terminal
/// kComplete event become duration ("X") slices; everything else becomes
/// instant ("i") events. Rows (tids) group events by root instance.
std::string chrome_trace_json(const std::vector<const Tracer*>& tracers);

/// Counts and latency breakdowns derived purely from a trace; tests check
/// these against the stack's Metrics counters (Figure 7 attribution, §4.3
/// round accounting).
struct TraceSummary {
  std::uint64_t events = 0;
  std::uint64_t sends = 0;
  std::uint64_t recvs = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t drops = 0;

  // Indexed by protocol-type code (1..6; slot 0 unused).
  std::array<std::uint64_t, kTraceProtoSlots> spawns{};
  std::array<std::uint64_t, kTraceProtoSlots> completes{};
  std::array<std::uint64_t, kTraceProtoSlots> latency_total_ns{};

  // Broadcast starts by attribution, from the kRbInit/kEbInit phase args
  // (0 = payload, 1 = agreement) — the Figure-7 numerator/denominator.
  std::uint64_t rb_started_payload = 0;
  std::uint64_t rb_started_agreement = 0;
  std::uint64_t eb_started_payload = 0;
  std::uint64_t eb_started_agreement = 0;

  std::uint64_t broadcasts_total() const {
    return rb_started_payload + rb_started_agreement + eb_started_payload +
           eb_started_agreement;
  }
  std::uint64_t broadcasts_agreement() const {
    return rb_started_agreement + eb_started_agreement;
  }
};

TraceSummary summarize(const Tracer& tracer);
/// Aggregates over several processes' tracers.
TraceSummary summarize(const std::vector<const Tracer*>& tracers);

}  // namespace ritas
