// Byzantine behaviour hooks.
//
// A corrupt process in the experiments is an otherwise ordinary stack whose
// protocols consult an Adversary object at well-defined points. The default
// implementation is a no-op (correct behaviour); subclasses realize the
// paper's faultloads (§4.2) and additional attacks used by the tests.
//
// The paper's Byzantine faultload is exactly:
//   * binary consensus: "it always proposes zero trying to impose a zero
//     decision";
//   * multi-valued consensus: "it always proposes the default value in both
//     INIT and VECT messages".
// `PaperByzantineAdversary` implements that. The stronger strategies
// (stubborn step values, echo-broadcast garbage, reliable-broadcast
// equivocation, selective omission) exist to exercise the stack's defensive
// paths in tests and the ablation bench.
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "core/types.h"

namespace ritas {

class Adversary {
 public:
  virtual ~Adversary() = default;

  // --- binary consensus -------------------------------------------------
  /// Overrides the value proposed to a binary consensus instance.
  virtual std::optional<bool> bc_proposal(bool honest) { return honest; }
  /// Overrides the value broadcast at (round, step). `honest` is what the
  /// protocol would send: 0, 1, or 2 (the undefined value, step 3 only).
  /// Return nullopt to omit the broadcast entirely.
  virtual std::optional<std::uint8_t> bc_step_value(std::uint32_t round,
                                                    int step,
                                                    std::uint8_t honest) {
    (void)round; (void)step;
    return honest;
  }

  // --- multi-valued consensus -------------------------------------------
  /// Overrides the INIT value. nullopt = send the default value (⊥).
  virtual std::optional<Bytes> mvc_init_value(const Bytes& honest) { return honest; }
  /// If true, the VECT phase sends ⊥ regardless of the INIT outcome.
  virtual bool mvc_force_default_vect() { return false; }

  // --- broadcast primitives ----------------------------------------------
  /// If set, a reliable broadcast INIT equivocates: even-numbered peers get
  /// the real payload, odd-numbered peers get the returned one. `honest` is
  /// a view of the payload about to be sent (do not retain it).
  virtual std::optional<Bytes> rb_equivocate(ByteView honest) {
    (void)honest;
    return std::nullopt;
  }
  /// If true, the echo broadcast sender corrupts every MAT column it sends
  /// (garbage hashes), so no receiver should deliver.
  virtual bool eb_corrupt_matrix() { return false; }
  /// If true, this process omits message `to` entirely (selective silence).
  virtual bool omit_to(ProcessId to) {
    (void)to;
    return false;
  }
};

/// The faultload of §4.2: zero proposals at the BC layer, default values at
/// the MVC layer. Everything else follows the protocol.
class PaperByzantineAdversary : public Adversary {
 public:
  std::optional<bool> bc_proposal(bool) override { return false; }
  std::optional<Bytes> mvc_init_value(const Bytes&) override { return std::nullopt; }
  bool mvc_force_default_vect() override { return true; }
};

}  // namespace ritas
