// Byzantine behaviour hooks.
//
// A corrupt process in the experiments is an otherwise ordinary stack whose
// protocols consult an Adversary object at well-defined points. The default
// implementation is a no-op (correct behaviour); subclasses realize the
// paper's faultloads (§4.2) and additional attacks used by the tests.
//
// The paper's Byzantine faultload is exactly:
//   * binary consensus: "it always proposes zero trying to impose a zero
//     decision";
//   * multi-valued consensus: "it always proposes the default value in both
//     INIT and VECT messages".
// `PaperByzantineAdversary` implements that. The stronger strategies
// (stubborn step values, echo-broadcast garbage, reliable-broadcast
// equivocation, selective omission) exist to exercise the stack's defensive
// paths in tests and the ablation bench.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "core/types.h"

namespace ritas {

class Adversary {
 public:
  virtual ~Adversary() = default;

  // --- binary consensus -------------------------------------------------
  /// Overrides the value proposed to a binary consensus instance.
  virtual std::optional<bool> bc_proposal(bool honest) { return honest; }
  /// Overrides the value broadcast at (round, step). `honest` is what the
  /// protocol would send: 0, 1, or 2 (the undefined value, step 3 only).
  /// Return nullopt to omit the broadcast entirely.
  virtual std::optional<std::uint8_t> bc_step_value(std::uint32_t round,
                                                    int step,
                                                    std::uint8_t honest) {
    (void)round; (void)step;
    return honest;
  }

  // --- multi-valued consensus -------------------------------------------
  /// Overrides the INIT value. nullopt = send the default value (⊥).
  virtual std::optional<Bytes> mvc_init_value(const Bytes& honest) { return honest; }
  /// If true, the VECT phase sends ⊥ regardless of the INIT outcome.
  virtual bool mvc_force_default_vect() { return false; }

  // --- broadcast primitives ----------------------------------------------
  /// If set, a reliable broadcast INIT equivocates: even-numbered peers get
  /// the real payload, odd-numbered peers get the returned one. `honest` is
  /// a view of the payload about to be sent (do not retain it).
  virtual std::optional<Bytes> rb_equivocate(ByteView honest) {
    (void)honest;
    return std::nullopt;
  }
  /// If true, the echo broadcast sender corrupts every MAT column it sends
  /// (garbage hashes), so no receiver should deliver.
  virtual bool eb_corrupt_matrix() { return false; }
  /// If true, this process omits message `to` entirely (selective silence).
  virtual bool omit_to(ProcessId to) {
    (void)to;
    return false;
  }
};

/// The faultload of §4.2: zero proposals at the BC layer, default values at
/// the MVC layer. Everything else follows the protocol.
class PaperByzantineAdversary : public Adversary {
 public:
  std::optional<bool> bc_proposal(bool) override { return false; }
  std::optional<Bytes> mvc_init_value(const Bytes&) override { return std::nullopt; }
  bool mvc_force_default_vect() override { return true; }
};

// --- single-strategy building blocks --------------------------------------
// Each deviates at exactly one hook, so they compose cleanly (below). The
// schedule explorer (src/sim/explore.h) assembles its faultloads from these.

/// Pushes `value` (or silence) at every binary consensus step, and proposes
/// it too — the "stubborn step values" attack the validation rule filters.
class StubbornStepAdversary : public Adversary {
 public:
  explicit StubbornStepAdversary(std::uint8_t value, bool silent_instead = false)
      : value_(value), silent_(silent_instead) {}
  std::optional<bool> bc_proposal(bool) override { return value_ != 0; }
  std::optional<std::uint8_t> bc_step_value(std::uint32_t, int,
                                            std::uint8_t) override {
    if (silent_) return std::nullopt;
    return value_;
  }

 private:
  std::uint8_t value_;
  bool silent_;
};

/// Reliable-broadcast equivocation: odd-numbered peers receive `alt`
/// instead of the honest INIT payload.
class EquivocationAdversary : public Adversary {
 public:
  explicit EquivocationAdversary(Bytes alt) : alt_(std::move(alt)) {}
  std::optional<Bytes> rb_equivocate(ByteView) override { return alt_; }

 private:
  Bytes alt_;
};

/// Echo-broadcast matrix corruption: every MAT column carries garbage
/// hashes, so no receiver should deliver.
class MatrixCorruptionAdversary : public Adversary {
 public:
  bool eb_corrupt_matrix() override { return true; }
};

/// Selective omission: silently drops every message to the processes in
/// `victim_mask` (bit p = victim p). An all-ones mask is a full crash-like
/// omission fault.
class SelectiveOmissionAdversary : public Adversary {
 public:
  explicit SelectiveOmissionAdversary(std::uint64_t victim_mask)
      : mask_(victim_mask) {}
  bool omit_to(ProcessId to) override {
    return to < 64 && ((mask_ >> to) & 1) != 0;
  }

 private:
  std::uint64_t mask_;
};

// --- composition ----------------------------------------------------------

/// Runs several strategies side by side: for every hook, the first
/// component that deviates from honest behaviour wins. This turns the
/// single-strategy adversaries above into a toolbox — e.g. the paper's
/// faultload plus equivocation plus selective omission in one process.
class ComposedAdversary : public Adversary {
 public:
  ComposedAdversary() = default;
  explicit ComposedAdversary(std::vector<std::unique_ptr<Adversary>> parts)
      : parts_(std::move(parts)) {}

  ComposedAdversary& add(std::unique_ptr<Adversary> a) {
    parts_.push_back(std::move(a));
    return *this;
  }
  bool empty() const { return parts_.empty(); }

  std::optional<bool> bc_proposal(bool honest) override {
    for (auto& p : parts_) {
      const auto v = p->bc_proposal(honest);
      if (v != std::optional<bool>(honest)) return v;
    }
    return honest;
  }
  std::optional<std::uint8_t> bc_step_value(std::uint32_t round, int step,
                                            std::uint8_t honest) override {
    for (auto& p : parts_) {
      const auto v = p->bc_step_value(round, step, honest);
      if (v != std::optional<std::uint8_t>(honest)) return v;
    }
    return honest;
  }
  std::optional<Bytes> mvc_init_value(const Bytes& honest) override {
    for (auto& p : parts_) {
      auto v = p->mvc_init_value(honest);
      if (v != std::optional<Bytes>(honest)) return v;
    }
    return honest;
  }
  bool mvc_force_default_vect() override {
    for (auto& p : parts_) {
      if (p->mvc_force_default_vect()) return true;
    }
    return false;
  }
  std::optional<Bytes> rb_equivocate(ByteView honest) override {
    for (auto& p : parts_) {
      if (auto v = p->rb_equivocate(honest)) return v;
    }
    return std::nullopt;
  }
  bool eb_corrupt_matrix() override {
    for (auto& p : parts_) {
      if (p->eb_corrupt_matrix()) return true;
    }
    return false;
  }
  bool omit_to(ProcessId to) override {
    for (auto& p : parts_) {
      if (p->omit_to(to)) return true;
    }
    return false;
  }

 private:
  std::vector<std::unique_ptr<Adversary>> parts_;
};

/// Gates an inner adversary probabilistically: each hook consultation
/// deviates with probability `p`, drawn from a *seeded* generator so runs
/// stay deterministic (the sim's bit-replay guarantee extends to flaky
/// attackers). With p = 1 this is the inner adversary; with p = 0 it is
/// correct behaviour.
class ProbabilisticAdversary : public Adversary {
 public:
  ProbabilisticAdversary(std::unique_ptr<Adversary> inner, double p,
                         std::uint64_t seed)
      : inner_(std::move(inner)), p_(p), rng_(seed) {}

  std::optional<bool> bc_proposal(bool honest) override {
    return fire() ? inner_->bc_proposal(honest) : honest;
  }
  std::optional<std::uint8_t> bc_step_value(std::uint32_t round, int step,
                                            std::uint8_t honest) override {
    return fire() ? inner_->bc_step_value(round, step, honest) : honest;
  }
  std::optional<Bytes> mvc_init_value(const Bytes& honest) override {
    return fire() ? inner_->mvc_init_value(honest) : std::optional<Bytes>(honest);
  }
  bool mvc_force_default_vect() override {
    return fire() && inner_->mvc_force_default_vect();
  }
  std::optional<Bytes> rb_equivocate(ByteView honest) override {
    return fire() ? inner_->rb_equivocate(honest) : std::nullopt;
  }
  bool eb_corrupt_matrix() override {
    return fire() && inner_->eb_corrupt_matrix();
  }
  bool omit_to(ProcessId to) override { return fire() && inner_->omit_to(to); }

 private:
  bool fire() { return rng_.uniform() < p_; }

  std::unique_ptr<Adversary> inner_;
  double p_;
  Rng rng_;
};

}  // namespace ritas
