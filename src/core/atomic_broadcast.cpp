#include "core/atomic_broadcast.h"

#include <algorithm>
#include <cassert>

#include "common/log.h"

namespace ritas {

namespace {
// seq layout: bit 62 = subtype (0 = AB_MSG, 1 = AB_VECT).
//   AB_MSG:  [62]=0, [61:40]=origin, [39:0]=rbid
//   AB_VECT: [62]=1, [61:22]=round,  [21:0]=origin
constexpr std::uint64_t kVectBit = 1ULL << 62;
constexpr std::uint64_t kOriginMask = (1ULL << 22) - 1;
constexpr std::uint64_t kRbidMask = (1ULL << 40) - 1;
constexpr std::size_t kMaxIdsPerVector = 1u << 20;
}  // namespace

AtomicBroadcast::AtomicBroadcast(ProtocolStack& stack, Protocol* parent,
                                 InstanceId id, DeliverFn deliver)
    : Protocol(stack, parent, std::move(id)),
      deliver_(std::move(deliver)),
      enq_floor_(stack.n(), 0) {}

std::uint64_t AtomicBroadcast::msg_seq(ProcessId origin, std::uint64_t rbid) {
  return (static_cast<std::uint64_t>(origin) << 40) | (rbid & kRbidMask);
}

std::uint64_t AtomicBroadcast::vect_seq(std::uint32_t round, ProcessId origin) {
  return kVectBit | (static_cast<std::uint64_t>(round) << 22) |
         (origin & kOriginMask);
}

bool AtomicBroadcast::decode_rb_seq(std::uint64_t seq, RbKey& out) {
  if (seq >> 63) return false;
  out.is_vect = (seq & kVectBit) != 0;
  if (out.is_vect) {
    out.origin = static_cast<ProcessId>(seq & kOriginMask);
    const std::uint64_t r = (seq & ~kVectBit) >> 22;
    if (r > 0xffffffffULL) return false;
    out.round = static_cast<std::uint32_t>(r);
    out.rbid = 0;
  } else {
    out.rbid = seq & kRbidMask;
    out.origin = static_cast<ProcessId>(seq >> 40);
    out.round = 0;
  }
  return true;
}

Bytes AtomicBroadcast::encode_ids(const std::vector<MsgId>& ids) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(ids.size()));
  for (const MsgId& id : ids) {
    w.u32(id.origin);
    w.u64(id.rbid);
  }
  return std::move(w).take();
}

std::optional<std::vector<AtomicBroadcast::MsgId>> AtomicBroadcast::decode_ids(
    ByteView payload) {
  Reader r(payload);
  const std::uint32_t count = r.u32();
  if (!r.ok() || count > kMaxIdsPerVector) return std::nullopt;
  std::vector<MsgId> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    MsgId id;
    id.origin = r.u32();
    id.rbid = r.u64();
    out.push_back(id);
  }
  if (!r.done()) return std::nullopt;
  return out;
}

RbAlgorithm& AtomicBroadcast::ensure_msg_rb(ProcessId origin,
                                            std::uint64_t rbid) {
  const Component c{ProtocolType::kReliableBroadcast, msg_seq(origin, rbid)};
  if (auto* existing = find_child(c)) {
    return static_cast<RbAlgorithm&>(*existing);
  }
  auto rb = make_rb(
      stack_, this, id().child(c), origin, Attribution::kPayload,
      [this, origin, rbid](Slice payload) {
        on_msg_deliver(origin, rbid, std::move(payload));
      });
  auto& ref = *rb;
  add_child(std::move(rb));
  return ref;
}

RbAlgorithm& AtomicBroadcast::ensure_vect_rb(std::uint32_t round,
                                             ProcessId origin) {
  const Component c{ProtocolType::kReliableBroadcast, vect_seq(round, origin)};
  if (auto* existing = find_child(c)) {
    return static_cast<RbAlgorithm&>(*existing);
  }
  auto rb = make_rb(
      stack_, this, id().child(c), origin, Attribution::kAgreement,
      [this, round, origin](Slice payload) {
        on_vect_deliver(round, origin, payload);
      });
  auto& ref = *rb;
  add_child(std::move(rb));
  return ref;
}

MultiValuedConsensus& AtomicBroadcast::ensure_mvc(std::uint32_t round) {
  const Component c{ProtocolType::kMultiValuedConsensus, round};
  if (auto* existing = find_child(c)) {
    return static_cast<MultiValuedConsensus&>(*existing);
  }
  auto mvc = std::make_unique<MultiValuedConsensus>(
      stack_, this, id().child(c), Attribution::kAgreement,
      [this, round](std::optional<Bytes> v) { on_mvc_decide(round, std::move(v)); });
  auto& ref = *mvc;
  add_child(std::move(mvc));
  return ref;
}

AtomicBroadcast::VectState& AtomicBroadcast::vect_state(std::uint32_t round) {
  auto it = vects_.find(round);
  if (it == vects_.end()) {
    it = vects_.emplace(round, VectState{}).first;
    it->second.vectors.resize(stack_.n());
  }
  return it->second;
}

Bytes AtomicBroadcast::encode_batch(const std::vector<Slice>& msgs) {
  std::size_t total = 4;
  for (const Slice& m : msgs) total += 4 + m.size();
  Writer w(total);
  w.u32(static_cast<std::uint32_t>(msgs.size()));
  for (const Slice& m : msgs) w.bytes(m);
  return std::move(w).take();
}

std::optional<std::vector<Slice>> AtomicBroadcast::decode_batch(
    const Slice& payload) {
  Reader r(payload.view());
  const std::uint32_t count = r.u32();
  // Every message costs at least its u32 length prefix, so any count the
  // payload cannot physically hold is rejected before the reserve.
  if (!r.ok() || count == 0 ||
      static_cast<std::size_t>(count) > payload.size() / 4) {
    return std::nullopt;
  }
  std::vector<Slice> out;
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t len = r.u32();
    if (!r.ok() || r.remaining() < len) return std::nullopt;
    out.push_back(payload.subslice(r.pos(), len));
    r.skip(len);
  }
  if (!r.done()) return std::nullopt;
  return out;
}

std::uint64_t AtomicBroadcast::bcast(Slice payload) {
  if (!stack_.config().ab_batch.enabled) {
    const std::uint64_t rbid = next_rbid_++;
    trace(TracePhase::kAbBcast, rbid);
    ensure_msg_rb(stack_.self(), rbid).bcast(std::move(payload));
    return rbid;
  }
  const std::uint64_t rbid = next_rbid_;  // the batch this message rides in
  trace(TracePhase::kAbBcast, rbid);
  open_batch_bytes_ += 4 + payload.size();
  open_batch_.push_back(std::move(payload));
  maybe_seal();
  return rbid;
}

void AtomicBroadcast::flush() {
  if (!stack_.config().ab_batch.enabled || open_batch_.empty()) return;
  seal_batch();
}

void AtomicBroadcast::maybe_seal() {
  const AbBatchConfig& cfg = stack_.config().ab_batch;
  if (open_batch_.empty()) return;
  // Seal when a limit is hit, or when the dissemination pipeline is idle:
  // with no own batch in flight nothing else would ever trigger a seal, and
  // an idle pipeline means batching further buys nothing.
  if (own_inflight_ > 0 && open_batch_.size() < cfg.max_batch_msgs &&
      open_batch_bytes_ < cfg.max_batch_bytes) {
    return;
  }
  seal_batch();
}

void AtomicBroadcast::seal_batch() {
  const std::uint64_t rbid = next_rbid_++;
  ++own_inflight_;
  ++stack_.metrics().ab_batches_sealed;
  stack_.metrics().ab_batch_msgs += open_batch_.size();
  trace(TracePhase::kAbBatchSeal, rbid,
        static_cast<std::uint8_t>(std::min<std::size_t>(open_batch_.size(), 255)));
  Bytes framed = encode_batch(open_batch_);
  open_batch_.clear();
  open_batch_bytes_ = 0;
  ensure_msg_rb(stack_.self(), rbid).bcast(std::move(framed));
}

void AtomicBroadcast::on_message(ProcessId, std::uint8_t, const Slice&) {
  drop_invalid();  // traffic flows through children only
}

bool AtomicBroadcast::enqueued_contains(const MsgId& id) const {
  return id.rbid < enq_floor_[id.origin] || enq_extra_.contains(id);
}

void AtomicBroadcast::enqueued_insert(const MsgId& id) {
  if (id.rbid == enq_floor_[id.origin]) {
    std::uint64_t& floor = enq_floor_[id.origin];
    ++floor;
    // Compact any extras that are now contiguous with the floor.
    for (auto it = enq_extra_.find(MsgId{id.origin, floor});
         it != enq_extra_.end() && it->origin == id.origin && it->rbid == floor;
         it = enq_extra_.find(MsgId{id.origin, floor})) {
      enq_extra_.erase(it);
      ++floor;
    }
  } else {
    enq_extra_.insert(id);
  }
}

void AtomicBroadcast::on_msg_deliver(ProcessId origin, std::uint64_t rbid,
                                     Slice payload) {
  const bool batched = stack_.config().ab_batch.enabled;
  if (batched && origin == stack_.self()) {
    // Our own batch completed dissemination locally: the pipeline has room,
    // so the open batch (if any) may seal now.
    if (own_inflight_ > 0) --own_inflight_;
    maybe_seal();
  }
  const MsgId id{origin, rbid};
  if (done_.contains(id) || contents_.contains(id)) return;  // defensive
  std::vector<Slice> msgs;
  if (batched) {
    auto decoded = decode_batch(payload);
    if (!decoded) {
      // RB agreement: every correct process sees the same bytes, so all
      // drop this identifier alike — it can never gather the f+1 vector
      // votes needed to be decided, and nobody wedges on it.
      drop_invalid();
      ++stack_.metrics().ab_batch_malformed;
      return;
    }
    msgs = std::move(*decoded);
    // Zero-copy unpack: every sub-message aliases the sealed batch frame.
    for (const Slice& m : msgs) {
      stack_.metrics().payload_bytes_aliased += m.size();
    }
  } else {
    msgs.push_back(std::move(payload));
  }
  contents_.emplace(id, std::move(msgs));
  if (enqueued_contains(id)) {
    // Decided before the content arrived locally; it may now be at the
    // head of the delivery queue.
    flush_deliveries();
    return;
  }
  pending_.insert(id);
  try_start_round();
}

void AtomicBroadcast::try_start_round() {
  if (in_round_ || pending_.empty()) return;
  in_round_ = true;
  proposed_mvc_ = false;
  ++stack_.metrics().ab_rounds;
  trace(TracePhase::kAbRound, round_);

  // Eagerly create this round's agreement instances so peer traffic routes
  // without out-of-context detours.
  for (ProcessId j = 0; j < stack_.n(); ++j) ensure_vect_rb(round_, j);
  ensure_mvc(round_);

  std::vector<MsgId> v(pending_.begin(), pending_.end());  // already sorted
  ensure_vect_rb(round_, stack_.self()).bcast(encode_ids(v));
  maybe_propose_mvc();
}

void AtomicBroadcast::on_vect_deliver(std::uint32_t round, ProcessId origin,
                                      const Slice& payload) {
  if (round < round_) return;  // stale round; we already decided it
  auto ids = decode_ids(payload);
  if (!ids) {
    drop_invalid();
    return;
  }
  VectState& vs = vect_state(round);
  if (vs.vectors[origin].has_value()) return;  // defensive; RB delivers once
  vs.vectors[origin] = std::move(*ids);
  vs.order.push_back(origin);
  if (round == round_) maybe_propose_mvc();
}

void AtomicBroadcast::maybe_propose_mvc() {
  const Quorums& q = stack_.quorums();
  if (!in_round_ || proposed_mvc_) return;
  VectState& vs = vect_state(round_);
  if (vs.order.size() < q.n_minus_f()) return;
  proposed_mvc_ = true;

  // W := identifiers appearing in >= f+1 of the first n-f vectors.
  std::map<MsgId, std::uint32_t> counts;
  for (std::uint32_t i = 0; i < q.n_minus_f(); ++i) {
    const auto& vec = *vs.vectors[vs.order[i]];
    for (const MsgId& id : vec) ++counts[id];
  }
  std::vector<MsgId> w;
  for (const auto& [id, c] : counts) {
    if (c >= q.f + 1) w.push_back(id);
  }
  ensure_mvc(round_).propose(encode_ids(w));
}

void AtomicBroadcast::on_mvc_decide(std::uint32_t round,
                                    std::optional<Bytes> value) {
  if (round != round_ || !in_round_) return;  // defensive

  if (value) {
    auto ids = decode_ids(*value);
    if (ids) {
      std::sort(ids->begin(), ids->end());
      ids->erase(std::unique(ids->begin(), ids->end()), ids->end());
      for (const MsgId& id : *ids) {
        if (enqueued_contains(id)) continue;
        enqueued_insert(id);
        pending_.erase(id);
        delivery_queue_.push_back(id);
      }
      // Watermarks advanced: AB_MSG traffic parked beyond the window may
      // now be routable.
      stack_.retry_ooc(this->id());
    } else {
      // MVC validity means a correct process proposed the decided bytes;
      // undecodable means Byzantine collusion beyond f or a bug. Same bytes
      // at every correct process => every correct process skips this round.
      LOG_WARN("atomic broadcast %s: undecodable MVC decision round %u",
               this->id().to_string().c_str(), round);
    }
  }

  vects_.erase(round_);
  in_round_ = false;
  ++round_;
  flush_deliveries();
  stack_.defer_gc(this);
  try_start_round();
  // Round machinery ticked: re-check the seal conditions so an open batch
  // never outlives the agreement activity that would carry it.
  maybe_seal();
}

void AtomicBroadcast::flush_deliveries() {
  while (!delivery_queue_.empty()) {
    const MsgId id = delivery_queue_.front();
    auto it = contents_.find(id);
    if (it == contents_.end()) return;  // totality will bring the content
    std::vector<Slice> msgs = std::move(it->second);
    contents_.erase(it);
    delivery_queue_.pop_front();
    done_.insert(id);
    gc_candidates_.push_back(id);
    if (stack_.config().ab_batch.enabled) {
      trace(TracePhase::kAbBatchUnpack, id.rbid,
            static_cast<std::uint8_t>(std::min<std::size_t>(msgs.size(), 255)));
    }
    for (Slice& m : msgs) {
      ++delivered_count_;
      ++stack_.metrics().ab_delivered;
      trace(TracePhase::kAbDeliver, id.rbid,
            static_cast<std::uint8_t>(id.origin & 0xff));
      if (deliver_) deliver_(id.origin, id.rbid, std::move(m));
    }
  }
}

Protocol* AtomicBroadcast::spawn_child(const Component& c, bool& drop) {
  drop = false;
  if (c.type == ProtocolType::kMultiValuedConsensus) {
    if (c.seq < round_) {
      drop = true;  // completed agreement round
      return nullptr;
    }
    if (c.seq > round_ + stack_.config().round_window) return nullptr;  // OOC
    return &ensure_mvc(static_cast<std::uint32_t>(c.seq));
  }
  if (c.type != ProtocolType::kReliableBroadcast) {
    drop = true;
    return nullptr;
  }
  RbKey key;
  if (!decode_rb_seq(c.seq, key) || key.origin >= stack_.n()) {
    drop = true;
    return nullptr;
  }
  if (key.is_vect) {
    if (key.round < round_) {
      drop = true;  // completed round
      return nullptr;
    }
    if (key.round > round_ + stack_.config().round_window) return nullptr;
    return &ensure_vect_rb(key.round, key.origin);
  }
  const MsgId id{key.origin, key.rbid};
  if (done_.contains(id)) {
    drop = true;  // fully delivered; stragglers' echoes are useless to us
    return nullptr;
  }
  if (key.rbid >= enq_floor_[key.origin] + stack_.config().ab_msg_window) {
    return nullptr;  // flow-control window; park out-of-context
  }
  return &ensure_msg_rb(key.origin, key.rbid);
}

void AtomicBroadcast::collect_garbage() {
  // Safe to free: AB_MSG broadcasts whose payload was delivered (every
  // contribution we owe peers — ECHO/READY — was already broadcast), and
  // agreement instances a few rounds behind (grace so that our binary
  // consensus children can finish their courtesy round for laggards).
  constexpr std::uint32_t kRoundGrace = 4;
  std::vector<Component> dead;
  for (const MsgId& id : gc_candidates_) {
    const Component c{ProtocolType::kReliableBroadcast, msg_seq(id.origin, id.rbid)};
    if (find_child(c) != nullptr) dead.push_back(c);
  }
  gc_candidates_.clear();
  for (std::uint32_t r = gc_round_floor_; r + kRoundGrace < round_; ++r) {
    const Component mc{ProtocolType::kMultiValuedConsensus, r};
    if (find_child(mc) != nullptr) dead.push_back(mc);
    for (ProcessId j = 0; j < stack_.n(); ++j) {
      const Component vc{ProtocolType::kReliableBroadcast, vect_seq(r, j)};
      if (find_child(vc) != nullptr) dead.push_back(vc);
    }
    gc_round_floor_ = r + 1;
  }
  for (const Component& c : dead) destroy_child(c);
}

}  // namespace ritas
