// Atomic broadcast (paper §2.7, after Correia et al., adapted to use
// multi-valued consensus and message *identifiers* instead of hashes).
//
// Two tasks run concurrently:
//
//   dissemination: ab_bcast(m) reliably broadcasts m under the identifier
//     (origin, rbid) — the identifier is carried by the instance path, so
//     AB_MSG payloads are exactly the application bytes;
//
//   agreement (rounds): when undelivered identifiers exist, reliably
//     broadcast (AB_VECT, r, V) where V lists them; on n-f AB_VECT for
//     round r, W := identifiers present in >= f+1 of those vectors; run
//     MVC_r(W); if the decision W' != ⊥, deliver the messages identified
//     by W' in deterministic (origin, rbid) order.
//
// Identifiers decided before their content arrives wait in a FIFO delivery
// queue (reliable-broadcast totality guarantees the content shows up);
// total order follows from every correct process appending the same
// decided identifier sequence to that queue.
//
// Batching (StackConfig::ab_batch): when enabled, bcast() appends to a
// per-origin open batch instead of starting an RB per message. The batch
// is sealed into ONE AB_MSG dissemination RB — whose payload is the
// length-prefixed framing documented in docs/PROTOCOLS.md — when it
// reaches max_batch_bytes/max_batch_msgs, when a protocol event frees the
// dissemination pipeline (our previous batch RB-delivers locally, or an
// agreement round completes), or on an explicit flush(). No clocks are
// involved: sealing is driven purely by protocol events, so simulated
// runs stay deterministic. Delivery unpacks batches message by message,
// keeping per-message total order, delivered_count() and the Figure-7
// agreement-cost accounting unchanged; identifiers (origin, rbid) then
// name batches, and every message in a batch shares its batch's rbid.
// Malformed batch framing from a Byzantine origin is a counted drop
// (ab_batch_malformed + invalid_dropped), never a throw, and is dropped
// identically at every correct process (RB agreement on the bytes).
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/bytes.h"
#include "core/multivalued_consensus.h"
#include "core/protocol.h"
#include "core/stack.h"
#include "core/variants.h"

namespace ritas {

class AtomicBroadcast final : public Protocol {
 public:
  struct MsgId {
    ProcessId origin;
    std::uint64_t rbid;
    friend auto operator<=>(const MsgId&, const MsgId&) = default;
  };
  /// Called once per delivered message, in total order. The Slice aliases
  /// the sealed batch frame (or the AB_MSG frame when batching is off) —
  /// zero-copy from the wire; keeping it pins that frame.
  using DeliverFn = std::function<void(ProcessId origin, std::uint64_t rbid, Slice payload)>;

  AtomicBroadcast(ProtocolStack& stack, Protocol* parent, InstanceId id,
                  DeliverFn deliver);

  /// Atomically broadcasts `payload` to the group. Returns the local
  /// identifier (rbid) assigned to the message — with batching enabled,
  /// the identifier of the batch the message rides in (shared by every
  /// message of that batch).
  std::uint64_t bcast(Slice payload);

  /// Seals the open batch immediately. No-op when batching is disabled or
  /// the open batch is empty.
  void flush();

  /// Messages sitting in the open (unsealed) batch.
  std::size_t open_batch_msgs() const { return open_batch_.size(); }

  void on_message(ProcessId from, std::uint8_t tag,
                  const Slice& payload) override;
  Protocol* spawn_child(const Component& c, bool& drop) override;
  void collect_garbage() override;

  std::uint64_t delivered_count() const { return delivered_count_; }
  std::uint32_t round() const { return round_; }

  // Child path encodings (subtype packed into the high bits of seq).
  static std::uint64_t msg_seq(ProcessId origin, std::uint64_t rbid);
  static std::uint64_t vect_seq(std::uint32_t round, ProcessId origin);
  struct RbKey {
    bool is_vect;
    ProcessId origin;
    std::uint64_t rbid;   // valid when !is_vect
    std::uint32_t round;  // valid when is_vect
  };
  static bool decode_rb_seq(std::uint64_t seq, RbKey& out);

  static Bytes encode_ids(const std::vector<MsgId>& ids);
  static std::optional<std::vector<MsgId>> decode_ids(ByteView payload);

  // Batch framing (AB_MSG payloads when ab_batch.enabled):
  //   u32 count (>= 1) | count x (u32 len | len bytes)
  // decode_batch returns nullopt on any malformed framing: zero count,
  // count impossible for the payload size, truncated length prefix or
  // body, trailing bytes. Each returned Slice aliases `payload`'s backing
  // frame (zero-copy unpack); holding any of them pins the whole frame.
  static Bytes encode_batch(const std::vector<Slice>& msgs);
  static std::optional<std::vector<Slice>> decode_batch(const Slice& payload);

 private:
  struct VectState {
    std::vector<std::optional<std::vector<MsgId>>> vectors;
    std::vector<ProcessId> order;
  };

  void on_msg_deliver(ProcessId origin, std::uint64_t rbid, Slice payload);
  void on_vect_deliver(std::uint32_t round, ProcessId origin,
                       const Slice& payload);
  void on_mvc_decide(std::uint32_t round, std::optional<Bytes> value);
  /// Seals the open batch if a limit is hit or the dissemination pipeline
  /// is idle (no own batch in flight).
  void maybe_seal();
  void seal_batch();
  void try_start_round();
  void maybe_propose_mvc();
  void flush_deliveries();
  RbAlgorithm& ensure_msg_rb(ProcessId origin, std::uint64_t rbid);
  RbAlgorithm& ensure_vect_rb(std::uint32_t round, ProcessId origin);
  MultiValuedConsensus& ensure_mvc(std::uint32_t round);
  VectState& vect_state(std::uint32_t round);
  bool enqueued_contains(const MsgId& id) const;
  void enqueued_insert(const MsgId& id);

  DeliverFn deliver_;

  std::uint64_t next_rbid_ = 0;

  // Batching state (unused when ab_batch.enabled is false). Queued slices
  // pin their source buffers until the batch is sealed into one frame.
  std::vector<Slice> open_batch_;        // messages awaiting a seal
  std::size_t open_batch_bytes_ = 0;     // framed size of the open batch
  std::uint64_t own_inflight_ = 0;       // own sealed batches not yet RB-delivered

  // Dissemination state. Each entry holds the unpacked messages of one
  // RB-delivered identifier (a single message when batching is off); the
  // slices alias the sealed batch frame.
  std::map<MsgId, std::vector<Slice>> contents_;
  std::set<MsgId> pending_;          // RB-delivered, not yet decided

  // Identifiers that entered the delivery queue, compressed per origin as
  // floor (all rbids below are in) + sparse extras.
  std::vector<std::uint64_t> enq_floor_;
  std::set<MsgId> enq_extra_;
  std::set<MsgId> done_;  // delivered to the application
  std::vector<MsgId> gc_candidates_;  // delivered since the last GC pass

  // Agreement state.
  std::uint32_t round_ = 0;
  bool in_round_ = false;
  bool proposed_mvc_ = false;
  std::map<std::uint32_t, VectState> vects_;
  std::deque<MsgId> delivery_queue_;
  std::uint64_t delivered_count_ = 0;
  std::uint32_t gc_round_floor_ = 0;  // rounds below this are already freed
};

}  // namespace ritas
