#include "core/binary_consensus.h"

#include <cassert>
#include <stdexcept>

#include "common/log.h"

namespace ritas {

// Decide/adopt thresholds. For n = 3f+1 these are exactly the paper's
// 2f+1 and f+1. For group sizes with slack (n > 3f+1) the paper's literal
// constants would let two different values reach the adopt threshold in
// different (n-f)-snapshots of the same universe, so we use the safe
// generalization: decide at floor((n+f)/2)+1 (any two snapshots then agree
// on the adopted value) and adopt at max(f+1, n - decide + 1).
namespace {
std::uint32_t decide_quorum(const Quorums& q) { return (q.n + q.f) / 2 + 1; }
std::uint32_t adopt_quorum(const Quorums& q) {
  const std::uint32_t alt = q.n - decide_quorum(q) + 1;
  return std::max(q.f + 1, alt);
}
}  // namespace

BinaryConsensus::BinaryConsensus(ProtocolStack& stack, Protocol* parent,
                                 InstanceId id, Attribution attr,
                                 DecideFn decide)
    : BcAlgorithm(stack, parent, std::move(id)),
      attr_(attr),
      decide_(std::move(decide)) {}

std::uint64_t BinaryConsensus::child_seq(std::uint32_t round, int step,
                                         ProcessId origin, std::uint32_t n) {
  return (static_cast<std::uint64_t>(round) * 3 +
          static_cast<std::uint64_t>(step - 1)) * n + origin;
}

bool BinaryConsensus::decode_child_seq(std::uint64_t seq, std::uint32_t n,
                                       ChildKey& out) {
  out.origin = static_cast<ProcessId>(seq % n);
  const std::uint64_t t = seq / n;
  out.step = static_cast<int>(t % 3) + 1;
  const std::uint64_t r = t / 3;
  if (r == 0 || r > 0xffffffffULL) return false;
  out.round = static_cast<std::uint32_t>(r);
  return true;
}

BinaryConsensus::RoundState& BinaryConsensus::round_state(std::uint32_t r) {
  auto it = rounds_.find(r);
  if (it == rounds_.end()) {
    it = rounds_.emplace(r, RoundState(stack_.n())).first;
  }
  return it->second;
}

void BinaryConsensus::ensure_round_children(std::uint32_t r) {
  RoundState& rs = round_state(r);
  if (rs.children_created) return;
  rs.children_created = true;
  for (int step = 1; step <= 3; ++step) {
    for (ProcessId j = 0; j < stack_.n(); ++j) {
      const Component c{ProtocolType::kReliableBroadcast,
                        child_seq(r, step, j, stack_.n())};
      auto deliver = [this, r, step, j](Slice payload) {
        on_rb_deliver(r, step, j, payload);
      };
      // Through the factory: the step values ride whichever RB variant the
      // stack is configured with, so e.g. Bracha BC composes with the
      // Imbs–Raynal broadcast.
      add_child(make_rb(stack_, this, id().child(c), j, attr_,
                        std::move(deliver)));
    }
  }
}

void BinaryConsensus::propose(bool v) {
  if (active_) throw std::logic_error("BinaryConsensus::propose: already active");
  if (Adversary* adv = stack_.adversary()) {
    if (auto o = adv->bc_proposal(v)) v = *o;
  }
  active_ = true;
  value_ = v ? 1 : 0;
  round_ = 1;
  step_ = 1;
  trace(TracePhase::kBcPropose, 0, value_);
  trace(TracePhase::kBcRound, 1);
  ensure_round_children(1);
  broadcast_step(1, 1, value_);
  // Messages may have been tallied before activation; try to make progress.
  try_advance();
}

void BinaryConsensus::broadcast_step(std::uint32_t r, int step,
                                     std::uint8_t value) {
  std::optional<std::uint8_t> v = value;
  if (Adversary* adv = stack_.adversary()) {
    v = adv->bc_step_value(r, step, value);
  }
  if (!v) return;  // adversary chose to stay silent
  trace(TracePhase::kBcStep, r,
        static_cast<std::uint8_t>(step * 8 | std::min<int>(*v, 7)));
  ensure_round_children(r);
  const Component c{ProtocolType::kReliableBroadcast,
                    child_seq(r, step, stack_.self(), stack_.n())};
  auto* rb = static_cast<RbAlgorithm*>(find_child(c));
  assert(rb != nullptr);
  rb->bcast(Bytes{*v});
}

void BinaryConsensus::on_message(ProcessId, std::uint8_t, const Slice&) {
  // All BC traffic flows through reliable broadcast children; a direct
  // message addressed to the BC instance is Byzantine noise.
  drop_invalid();
}

Protocol* BinaryConsensus::spawn_child(const Component& c, bool& drop) {
  drop = false;
  ChildKey key;
  if (c.type != ProtocolType::kReliableBroadcast ||
      !decode_child_seq(c.seq, stack_.n(), key)) {
    drop = true;  // malformed path: never routable
    return nullptr;
  }
  if (halted_ && key.round > round_) {
    drop = true;  // we are done; later rounds will never be created
    return nullptr;
  }
  if (key.round > round_ + stack_.config().round_window) {
    return nullptr;  // too far ahead: park in the out-of-context table
  }
  ensure_round_children(key.round);
  return find_child(c);
}

void BinaryConsensus::on_rb_deliver(std::uint32_t r, int step, ProcessId origin,
                                    const Slice& payload) {
  if (payload.size() != 1) {
    drop_invalid();
    return;
  }
  const std::uint8_t v = payload[0];
  const bool ok_range = (step == 3) ? v <= kBot : v <= 1;
  if (!ok_range) {
    drop_invalid();
    return;
  }
  StepState& ss = round_state(r).steps[step - 1];
  if (ss.seen[origin]) return;  // RB delivers once; defensive
  ss.seen[origin] = true;
  ss.pending[origin] = v;
  revalidate(r, step);
  try_advance();
}

void BinaryConsensus::revalidate(std::uint32_t r, int step) {
  // Acceptance at (r, step) can only unlock later steps, so walk forward.
  for (;;) {
    auto it = rounds_.find(r);
    if (it == rounds_.end()) return;
    StepState& ss = it->second.steps[step - 1];
    bool any = false;
    for (ProcessId j = 0; j < stack_.n(); ++j) {
      const std::uint8_t v = ss.pending[j];
      if (v == 0xff) continue;
      if (!is_valid(r, step, v)) continue;
      ss.pending[j] = 0xff;
      ss.accepted.push_back(v);
      ++ss.counts[v];
      any = true;
    }
    if (!any) return;
    if (step < 3) {
      ++step;
    } else {
      ++r;
      step = 1;
    }
  }
}

bool BinaryConsensus::is_valid(std::uint32_t r, int step,
                               std::uint8_t v) const {
  if (stack_.config().bc_disable_validation) return true;  // ablation only
  const Quorums& q = stack_.quorums();
  const std::uint32_t nf = q.n_minus_f();

  const StepState* prev = nullptr;
  if (step == 1) {
    if (r == 1) return true;  // paper: step 1 of round 1 is always valid
    auto it = rounds_.find(r - 1);
    if (it == rounds_.end()) return false;
    prev = &it->second.steps[2];
  } else {
    auto it = rounds_.find(r);
    if (it == rounds_.end()) return false;
    prev = &it->second.steps[step - 2];
  }
  const std::uint32_t total = static_cast<std::uint32_t>(prev->accepted.size());
  if (total < nf) return false;
  const std::uint32_t c0 = prev->counts[0];
  const std::uint32_t c1 = prev->counts[1];

  switch (step) {
    case 1: {
      // v must be producible by the end-of-round rule on some (n-f)-subset
      // of accepted step-3 values: the subset must contain fewer than
      // adopt_quorum copies of the opposite value.
      const std::uint32_t opp = (v == 0) ? c1 : c0;
      const std::uint32_t non_opp = total - opp;
      const std::uint32_t forced = nf > non_opp ? nf - non_opp : 0;
      return forced < adopt_quorum(q);
    }
    case 2: {
      // v must be a possible majority of an (n-f)-subset of step-1 values.
      // ceil((n-f)/2) rather than strict majority admits the tie-keep case
      // when n-f is even (see DESIGN.md §5.3).
      const std::uint32_t need = (nf + 1) / 2;
      return (v == 0 ? c0 : c1) >= need;
    }
    case 3: {
      if (v != kBot) {
        // Strict majority of some (n-f)-subset of step-2 values.
        const std::uint32_t need = nf / 2 + 1;
        return (v == 0 ? c0 : c1) >= need;
      }
      // ⊥ requires a subset where neither value is a strict majority.
      const std::uint32_t half = nf / 2;
      return std::min(c0, half) + std::min(c1, half) >= nf;
    }
    default:
      return false;
  }
}

void BinaryConsensus::try_advance() {
  if (!active_ || halted_) return;
  const Quorums& q = stack_.quorums();
  const std::uint32_t nf = q.n_minus_f();

  for (;;) {
    auto it = rounds_.find(round_);
    if (it == rounds_.end()) return;
    StepState& ss = it->second.steps[step_ - 1];
    if (ss.accepted.size() < nf) return;

    // The step rules operate on the first n-f accepted values.
    std::uint32_t c[3] = {0, 0, 0};
    for (std::uint32_t i = 0; i < nf; ++i) ++c[ss.accepted[i]];

    if (step_ == 1) {
      if (c[1] > c[0]) {
        value_ = 1;
      } else if (c[0] > c[1]) {
        value_ = 0;
      }  // tie (n-f even): keep the current value
      // test_weak_bc_quorum: deliberately decide on the step-1 majority at
      // the adopt threshold, skipping the step-2/3 confirmation exchanges —
      // the decide-on-prepare-instead-of-commit bug the schedule explorer
      // must catch. Two processes whose (n-f)-snapshots of a split step-1
      // universe have opposite majorities then decide opposite values.
      if (stack_.config().test_weak_bc_quorum && c[0] != c[1] &&
          c[value_] >= adopt_quorum(q)) {
        decide(value_ == 1, round_);
      }
      step_ = 2;
      broadcast_step(round_, 2, value_);
    } else if (step_ == 2) {
      if (c[0] > nf / 2) {
        value_ = 0;
      } else if (c[1] > nf / 2) {
        value_ = 1;
      } else {
        value_ = kBot;
      }
      step_ = 3;
      broadcast_step(round_, 3, value_);
    } else {
      const std::uint32_t qd = decide_quorum(q);
      const std::uint32_t qa = adopt_quorum(q);
      if (c[0] >= qd || c[1] >= qd) {
        const bool w = c[1] >= qd;
        value_ = w ? 1 : 0;
        decide(w, round_);
      } else if (c[0] >= qa || c[1] >= qa) {
        // If any process decided w this round, qd - f >= qa guarantees w
        // reaches qa in EVERY (n-f)-snapshot and the opposite value cannot
        // (it has at most n - qd < qa copies in the universe), so we adopt
        // w. Both values can reach qa only in rounds where nobody decided
        // (possible when n ≡ 2 mod 3, e.g. a 2-2 tie at n=5); adopting
        // either value is then safe, and the deterministic preference for
        // 1 merely replaces a coin flip.
        value_ = c[1] >= qa ? 1 : 0;
      } else {
        value_ = toss_coin(round_) ? 1 : 0;
        ++stack_.metrics().bc_coin_flips;
        trace(TracePhase::kBcCoin, round_, value_);
      }
      if (decided_ && round_ >= halt_after_round_) {
        halted_ = true;
        return;
      }
      ++round_;
      step_ = 1;
      trace(TracePhase::kBcRound, round_);
      ensure_round_children(round_);
      // Round advanced: messages parked beyond the spawn window may now be
      // routable.
      stack_.retry_ooc(id());
      broadcast_step(round_, 1, value_);
    }
  }
}

bool BinaryConsensus::toss_coin(std::uint32_t r) {
  // Shared with the Crain variant so both derive identical coins.
  return toss_round_coin(stack_, id(), r);
}

void BinaryConsensus::decide(bool w, std::uint32_t r) {
  if (decided_) return;
  decided_ = true;
  decision_ = w;
  decided_round_ = r;
  // Keep participating for one more round so every correct process can
  // gather its quorums, then stop.
  halt_after_round_ = r + 1;
  ++stack_.metrics().bc_decided;
  stack_.metrics().bc_rounds_total += r;
  stack_.metrics().bc_round_hist.add(r);
  trace(TracePhase::kBcDecide, r, w ? 1 : 0);
  complete();
  if (decide_) decide_(w);
}

}  // namespace ritas
