// Bracha's randomized binary consensus (paper §2.4).
//
// Each process proposes a bit; all correct processes decide the same bit,
// and if all correct processes propose v the decision is v. The protocol
// proceeds in 3-step rounds; every step value is disseminated with a full
// reliable broadcast (one RB instance per (round, step, origin)), so a
// corrupt process cannot equivocate — it can only send *illegal* values,
// which the validation rule filters out:
//
//   step 1: broadcast v; wait n-f valid; v := majority of the first n-f
//   step 2: broadcast v; wait n-f valid; v := value with > half, else ⊥
//   step 3: broadcast v; wait n-f valid;
//           decide w  if >= 2f+1 carry w != ⊥   (keep running one round)
//           v := w    if >= f+1  carry w != ⊥
//           v := coin otherwise
//
// Validation (§2.4): a step-k message (k > 1, and step 1 of rounds > 1) is
// valid iff its value is producible by applying the step rule to SOME
// subset of n-f values accepted at the previous step. We compute this with
// exact counting over the accepted multiset instead of enumerating subsets
// (see DESIGN.md §5.3); invalid messages stay pending and are re-examined
// as more previous-step values are accepted — exactly the paper's "will
// eventually receive the necessary messages" behaviour.
//
// Values on the wire are one byte: 0, 1, or 2 (the undefined value ⊥,
// legal only in step 3).
#pragma once

#include <functional>
#include <map>
#include <vector>

#include "core/protocol.h"
#include "core/reliable_broadcast.h"
#include "core/stack.h"
#include "core/variants.h"

namespace ritas {

class BinaryConsensus final : public BcAlgorithm {
 public:
  static constexpr std::uint8_t kBot = 2;  // ⊥ on the wire

  void propose(bool v) override;

  void on_message(ProcessId from, std::uint8_t tag,
                  const Slice& payload) override;
  Protocol* spawn_child(const Component& c, bool& drop) override;

  bool active() const override { return active_; }
  bool decided() const override { return decided_; }
  bool decision() const override { return decision_; }
  std::uint32_t decided_round() const override { return decided_round_; }

  /// Child sequence encoding: (round, step, origin) -> u64 and back.
  static std::uint64_t child_seq(std::uint32_t round, int step,
                                 ProcessId origin, std::uint32_t n);
  struct ChildKey {
    std::uint32_t round;
    int step;
    ProcessId origin;
  };
  static bool decode_child_seq(std::uint64_t seq, std::uint32_t n, ChildKey& out);

 private:
  // Construction only through the factory (core/variants.h); see the note
  // on ReliableBroadcast.
  friend std::unique_ptr<BcAlgorithm> make_bc(ProtocolStack&, Protocol*,
                                              InstanceId, Attribution,
                                              BcAlgorithm::DecideFn);

  BinaryConsensus(ProtocolStack& stack, Protocol* parent, InstanceId id,
                  Attribution attr, DecideFn decide);

  struct StepState {
    // Accepted (validated) values in acceptance order; the "first n-f"
    // snapshot every step rule uses is the prefix of this vector.
    std::vector<std::uint8_t> accepted;
    std::uint32_t counts[3] = {0, 0, 0};
    // Delivered but not yet validated, per origin (0xff = none).
    std::vector<std::uint8_t> pending;
    std::vector<bool> seen;  // an RB from this origin already delivered
  };
  struct RoundState {
    StepState steps[3];
    bool children_created = false;
    explicit RoundState(std::uint32_t n) {
      for (auto& s : steps) {
        s.pending.assign(n, 0xff);
        s.seen.assign(n, false);
      }
    }
  };

  RoundState& round_state(std::uint32_t r);
  void ensure_round_children(std::uint32_t r);
  void on_rb_deliver(std::uint32_t r, int step, ProcessId origin,
                     const Slice& payload);
  /// Moves pending values to accepted wherever validation now passes;
  /// fixpoint across steps/rounds.
  void revalidate(std::uint32_t r, int step);
  bool is_valid(std::uint32_t r, int step, std::uint8_t value) const;
  void try_advance();
  void broadcast_step(std::uint32_t r, int step, std::uint8_t value);
  /// Local coin (the paper's) or the dealt common coin, per configuration.
  bool toss_coin(std::uint32_t r);
  void decide(bool w, std::uint32_t r);

  const Attribution attr_;
  DecideFn decide_;

  bool active_ = false;
  std::uint8_t value_ = 0;
  std::uint32_t round_ = 1;
  int step_ = 0;  // step whose quorum we are waiting on; 0 = before propose
  bool decided_ = false;
  bool decision_ = false;
  std::uint32_t decided_round_ = 0;
  std::uint32_t halt_after_round_ = 0;  // 0 = not deciding yet
  bool halted_ = false;

  std::map<std::uint32_t, RoundState> rounds_;
};

}  // namespace ritas
