#include "core/crain_consensus.h"

#include <stdexcept>

#include "common/serialize.h"

namespace ritas {

CrainConsensus::CrainConsensus(ProtocolStack& stack, Protocol* parent,
                               InstanceId id, Attribution attr,
                               DecideFn decide)
    : BcAlgorithm(stack, parent, std::move(id)),
      attr_(attr),
      decide_(std::move(decide)),
      done_seen_(stack.n(), false) {
  (void)attr_;  // kept for parity with the other BC variant (no child RBs)
}

CrainConsensus::RoundState& CrainConsensus::round_state(std::uint32_t r) {
  auto it = rounds_.find(r);
  if (it == rounds_.end()) {
    it = rounds_.emplace(r, RoundState(stack_.n())).first;
  }
  return it->second;
}

bool CrainConsensus::parse(const Slice& payload, std::uint32_t& round,
                           std::uint8_t& value) const {
  Reader rd(payload.view());
  round = rd.u32();
  value = rd.u8();
  return rd.done() && value <= 1;
}

bool CrainConsensus::round_in_window(std::uint32_t r) const {
  return r >= 1 && r <= round_ + stack_.config().round_window;
}

void CrainConsensus::propose(bool v) {
  if (active_) throw std::logic_error("CrainConsensus::propose: already active");
  if (Adversary* adv = stack_.adversary()) {
    if (auto o = adv->bc_proposal(v)) v = *o;
  }
  active_ = true;
  est_ = v ? 1 : 0;
  round_ = 1;
  trace(TracePhase::kBcPropose, 0, est_);
  trace(TracePhase::kBcRound, 1);
  send_bval(1, est_);
  // Messages may have been tallied before activation; try to make progress.
  try_advance();
}

void CrainConsensus::send_value(std::uint32_t r, int step, std::uint8_t tag,
                                std::uint8_t value) {
  std::optional<std::uint8_t> v = value;
  if (Adversary* adv = stack_.adversary()) {
    v = adv->bc_step_value(r, step, value);
  }
  if (!v) return;  // adversary chose to stay silent
  // Reuses Bracha's step trace encoding: BVAL/AUX/DONE as steps 1/2/3. An
  // adversary returning an illegal value (e.g. Bracha's ⊥) is broadcast
  // verbatim; every receiver — including our own loopback — counts it as a
  // parse drop.
  trace(TracePhase::kBcStep, r,
        static_cast<std::uint8_t>(step * 8 | std::min<int>(*v, 7)));
  Writer w(5);
  w.u32(r);
  w.u8(*v);
  broadcast(tag, std::move(w).take());
}

void CrainConsensus::send_bval(std::uint32_t r, std::uint8_t value) {
  RoundState& rs = round_state(r);
  if (rs.bval_sent[value]) return;
  rs.bval_sent[value] = true;  // even if the adversary omits: never retried
  send_value(r, 1, kBval, value);
}

void CrainConsensus::on_message(ProcessId from, std::uint8_t tag,
                                const Slice& payload) {
  if (halted_) return;  // late traffic from correct stragglers is expected
  std::uint32_t r = 0;
  std::uint8_t v = 0;
  if (!parse(payload, r, v)) {
    drop_invalid();
    return;
  }
  switch (tag) {
    case kBval:
      if (!round_in_window(r)) {
        drop_invalid();
        return;
      }
      on_bval(from, r, v);
      return;
    case kAux:
      if (!round_in_window(r)) {
        drop_invalid();
        return;
      }
      on_aux(from, r, v);
      return;
    case kDone:
      // The round field of a DONE is informative (the sender's deciding
      // round); correctness only needs the value.
      on_done(from, v);
      return;
    default:
      // Includes every other variant's tag space: a counted drop, never
      // confusion (docs/PROTOCOLS.md).
      drop_invalid();
  }
}

Protocol* CrainConsensus::spawn_child(const Component& c, bool& drop) {
  // Leaf protocol: all traffic is direct messages, so any child-addressed
  // frame is Byzantine noise.
  (void)c;
  drop = true;
  return nullptr;
}

void CrainConsensus::on_bval(ProcessId from, std::uint32_t r,
                             std::uint8_t v) {
  RoundState& rs = round_state(r);
  if (rs.bval_seen[v][from]) {
    drop_invalid();
    return;
  }
  rs.bval_seen[v][from] = true;
  ++rs.bval_count[v];
  const Quorums& q = stack_.quorums();
  // f+1 carriers include a correct one: safe to echo even if we did not
  // propose v.
  if (rs.bval_count[v] >= q.f + 1 && !rs.bval_sent[v]) {
    send_bval(r, v);
  }
  // 2f+1 carriers pin v into bin_values: a correct majority of any quorum
  // vouches for it.
  if (rs.bval_count[v] >= 2 * q.f + 1 && !rs.bin[v]) {
    rs.bin[v] = true;
    maybe_send_aux(r);
    try_advance();
  }
}

void CrainConsensus::maybe_send_aux(std::uint32_t r) {
  RoundState& rs = round_state(r);
  if (rs.aux_sent) return;
  std::uint8_t w = 0;
  if (!rs.bin[0]) {
    if (!rs.bin[1]) return;  // nothing in bin_values yet
    w = 1;
  }
  rs.aux_sent = true;
  send_value(r, 2, kAux, w);
}

void CrainConsensus::on_aux(ProcessId from, std::uint32_t r, std::uint8_t v) {
  RoundState& rs = round_state(r);
  if (rs.aux_seen[from]) {
    drop_invalid();
    return;
  }
  rs.aux_seen[from] = true;
  ++rs.aux_count[v];
  try_advance();
}

void CrainConsensus::on_done(ProcessId from, std::uint8_t v) {
  if (done_seen_[from]) {
    drop_invalid();
    return;
  }
  done_seen_[from] = true;
  ++done_count_[v];
  const Quorums& q = stack_.quorums();
  if (done_count_[v] >= q.f + 1 && !decided_) {
    // At least one correct process decided v through the round rule, so v
    // is the decision value; adopting it early is the gadget's shortcut.
    // decide() broadcasts our own DONE(v), feeding the relay.
    decide(v != 0, round_);
  }
  if (done_count_[v] >= 2 * q.f + 1) {
    // Enough deciders are relaying DONE(v) that every correct process will
    // cross f+1 without us; stop processing.
    halted_ = true;
  }
}

void CrainConsensus::try_advance() {
  if (!active_ || halted_) return;
  const Quorums& q = stack_.quorums();
  const std::uint32_t nf = q.n_minus_f();

  for (;;) {
    auto it = rounds_.find(round_);
    if (it == rounds_.end()) return;
    RoundState& rs = it->second;
    if (!rs.bin[0] && !rs.bin[1]) return;
    // "A set of n-f AUX whose values all lie in bin_values exists" — by
    // exact counting: AUX for a bin value is usable, others are not (yet;
    // their value may enter bin_values later and re-trigger us).
    const std::uint32_t usable = (rs.bin[0] ? rs.aux_count[0] : 0) +
                                 (rs.bin[1] ? rs.aux_count[1] : 0);
    if (usable < nf) return;

    const bool s = toss_round_coin(stack_, id(), round_);
    ++stack_.metrics().bc_coin_flips;
    trace(TracePhase::kBcCoin, round_, s ? 1 : 0);

    // vals = {v} exactly when an all-v quorum exists; both values reaching
    // n-f is impossible (2(n-f) > n and AUX is first-per-peer).
    int single = -1;
    if (rs.bin[0] && rs.aux_count[0] >= nf) {
      single = 0;
    } else if (rs.bin[1] && rs.aux_count[1] >= nf) {
      single = 1;
    }
    if (single >= 0) {
      est_ = static_cast<std::uint8_t>(single);
      if ((single != 0) == s && !decided_) decide(single != 0, round_);
    } else {
      est_ = s ? 1 : 0;  // vals = {0, 1}: adopt the common coin
    }
    ++round_;
    trace(TracePhase::kBcRound, round_);
    send_bval(round_, est_);
    // Loop: the next round may already be complete (tallies accumulate for
    // every round in the window, not just the current one).
  }
}

void CrainConsensus::decide(bool w, std::uint32_t r) {
  if (decided_) return;
  decided_ = true;
  decision_ = w;
  decided_round_ = r;
  ++stack_.metrics().bc_decided;
  stack_.metrics().bc_rounds_total += r;
  stack_.metrics().bc_round_hist.add(r);
  trace(TracePhase::kBcDecide, r, w ? 1 : 0);
  complete();
  // The DONE gadget: announce the decision and keep participating in
  // rounds until 2f+1 DONEs show everyone can finish without us.
  send_value(r, 3, kDone, w ? 1 : 0);
  if (decide_) decide_(w);
}

}  // namespace ritas
