// Crain's signature-free randomized binary consensus (BcVariant::kCrain,
// after Crain 2020 / Mostéfaoui–Moumen–Raynal 2014).
//
// Where Bracha's protocol (§2.4) runs three full reliable broadcasts per
// process per round, this family exchanges *direct* messages and replaces
// the RB machinery with a binary-value gadget, cutting a round to two
// message steps plus the coin:
//
//   round r, estimate est:
//     broadcast BVAL(r, est)
//     on f+1 BVAL(r, v) and BVAL(r, v) unsent: broadcast BVAL(r, v)
//     on 2f+1 BVAL(r, v): add v to bin_values_r
//     when bin_values_r gains its first value w: broadcast AUX(r, w)
//     wait for n-f AUX(r, *) whose values are all in bin_values_r;
//       vals := the value set of that quorum; s := common coin for r
//       vals = {v}:    est := v; decide v if v = s  (keep participating)
//       vals = {0, 1}: est := s
//
// The BVAL gadget guarantees every value in bin_values was proposed by a
// correct process (2f+1 > 2f carriers include a correct one, and the f+1
// relay keeps Byzantine-only values below every threshold), and that
// bin_values eventually agree across correct processes. Agreement hinges
// on the coin being COMMON: if two correct processes end round r with
// vals = {v} (deciding v) and vals = {0,1} (adopting the coin), the n-f
// AUX quorums intersect in >= n-2f >= f+1 processes, so v is in every
// vals and the {0,1} process adopts s — which equals v exactly when every
// process sees the same s. With private per-process coins the adopter can
// draw 1-v and later decide it: an agreement violation. The factory
// therefore rejects this variant unless coin_mode = kDealt
// (core/variants.h, validate_variants).
//
// Termination uses a DONE gadget instead of Bracha's courtesy round: a
// decider broadcasts DONE(v) and keeps participating in rounds; f+1
// distinct DONE(v) let a process decide v directly (some correct process
// decided v); 2f+1 distinct DONE(v) mean enough correct deciders are
// relaying DONE that everyone will cross f+1, so the instance halts and
// ignores further traffic.
//
// Wire format (docs/PROTOCOLS.md "Variant negotiation & tag encodings"):
// tags 16/17/18 (BVAL/AUX/DONE), payload u32 round LE + u8 value. The tag
// space is disjoint from Bracha BC's (which has no direct messages — its
// traffic rides RB children), so a frame from a peer running the wrong BC
// variant is a counted drop, never confusion. This protocol is a leaf: it
// spawns no children, and child-addressed frames are counted drops.
#pragma once

#include <map>
#include <vector>

#include "core/stack.h"
#include "core/variants.h"

namespace ritas {

class CrainConsensus final : public BcAlgorithm {
 public:
  static constexpr std::uint8_t kBval = 16;
  static constexpr std::uint8_t kAux = 17;
  static constexpr std::uint8_t kDone = 18;

  void propose(bool v) override;

  void on_message(ProcessId from, std::uint8_t tag,
                  const Slice& payload) override;
  Protocol* spawn_child(const Component& c, bool& drop) override;

  bool active() const override { return active_; }
  bool decided() const override { return decided_; }
  bool decision() const override { return decision_; }
  std::uint32_t decided_round() const override { return decided_round_; }

 private:
  friend std::unique_ptr<BcAlgorithm> make_bc(ProtocolStack&, Protocol*,
                                              InstanceId, Attribution,
                                              BcAlgorithm::DecideFn);

  CrainConsensus(ProtocolStack& stack, Protocol* parent, InstanceId id,
                 Attribution attr, DecideFn decide);

  struct RoundState {
    bool bval_sent[2] = {false, false};  // our BVAL(v) is out (or omitted)
    bool bin[2] = {false, false};        // bin_values
    bool aux_sent = false;
    std::uint32_t bval_count[2] = {0, 0};
    std::uint32_t aux_count[2] = {0, 0};
    std::vector<bool> bval_seen[2];  // per peer, per value (first only)
    std::vector<bool> aux_seen;      // per peer (first AUX only)
    explicit RoundState(std::uint32_t n) {
      bval_seen[0].assign(n, false);
      bval_seen[1].assign(n, false);
      aux_seen.assign(n, false);
    }
  };

  RoundState& round_state(std::uint32_t r);
  /// Parses `u32 round | u8 value`; false = malformed (caller drops).
  bool parse(const Slice& payload, std::uint32_t& round,
             std::uint8_t& value) const;
  /// True iff `r` is within the accept window (1 .. round_ + window).
  bool round_in_window(std::uint32_t r) const;

  void on_bval(ProcessId from, std::uint32_t r, std::uint8_t v);
  void on_aux(ProcessId from, std::uint32_t r, std::uint8_t v);
  void on_done(ProcessId from, std::uint8_t v);

  /// Broadcasts BVAL/AUX/DONE through the adversary's bc_step_value hook
  /// (steps 1/2/3 respectively); traces kBcStep like Bracha's steps.
  void send_value(std::uint32_t r, int step, std::uint8_t tag,
                  std::uint8_t value);
  void send_bval(std::uint32_t r, std::uint8_t value);
  void maybe_send_aux(std::uint32_t r);
  /// Runs the end-of-round rule on the *current* round as long as its AUX
  /// quorum is complete, advancing round_ (possibly through several
  /// already-complete rounds).
  void try_advance();
  void decide(bool w, std::uint32_t r);

  const Attribution attr_;
  DecideFn decide_;

  bool active_ = false;
  std::uint8_t est_ = 0;
  std::uint32_t round_ = 1;
  bool decided_ = false;
  bool decision_ = false;
  std::uint32_t decided_round_ = 0;
  bool halted_ = false;

  std::map<std::uint32_t, RoundState> rounds_;
  std::vector<bool> done_seen_;  // per peer (first DONE only)
  std::uint32_t done_count_[2] = {0, 0};
};

}  // namespace ritas
