#include "core/echo_broadcast.h"

#include <cassert>
#include <stdexcept>
#include <utility>

#include "crypto/ct.h"

namespace ritas {

namespace {
constexpr std::size_t kHash = Sha1::kDigestSize;
}

EchoBroadcast::EchoBroadcast(ProtocolStack& stack, Protocol* parent,
                             InstanceId id, ProcessId origin, Attribution attr,
                             DeliverFn deliver)
    : Protocol(stack, parent, std::move(id)),
      origin_(origin),
      attr_(attr),
      deliver_(std::move(deliver)),
      rows_(stack.n()) {
  assert(origin_ < stack.n());
}

void EchoBroadcast::bcast(Slice payload) {
  if (origin_ != stack_.self()) {
    throw std::logic_error("EchoBroadcast::bcast: not the origin");
  }
  if (sent_init_) {
    throw std::logic_error("EchoBroadcast::bcast: already broadcast");
  }
  sent_init_ = true;
  stack_.metrics().count_broadcast_start(ProtocolType::kEchoBroadcast, attr_);
  trace(TracePhase::kEbInit, static_cast<std::uint64_t>(attr_));
  broadcast(kInit, std::move(payload));
}

Sha1::Digest EchoBroadcast::cell(ByteView m, ProcessId peer) const {
  Sha1 h;
  h.update(m);
  h.update(stack_.keys().key(peer));
  return h.finish();
}

void EchoBroadcast::on_message(ProcessId from, std::uint8_t tag,
                               const Slice& payload) {
  switch (tag) {
    case kInit:
      on_init(from, payload);
      return;
    case kVect:
      on_vect(from, payload);
      return;
    case kMat:
      on_mat(from, payload);
      return;
    default:
      drop_invalid();
  }
}

void EchoBroadcast::on_init(ProcessId from, const Slice& payload) {
  if (from != origin_ || seen_init_) {
    drop_invalid();
    return;
  }
  seen_init_ = true;
  msg_ = payload;  // zero-copy: pins the INIT frame until delivery

  // Build V_self: one keyed hash per process, and echo it to the origin.
  Bytes vect;
  vect.reserve(stack_.n() * kHash);
  for (ProcessId j = 0; j < stack_.n(); ++j) {
    const auto d = cell(msg_, j);
    vect.insert(vect.end(), d.begin(), d.end());
  }
  trace(TracePhase::kEbVect);
  send(origin_, kVect, std::move(vect));

  if (!pending_column_.empty()) {
    verify_and_deliver();
  }
}

void EchoBroadcast::on_vect(ProcessId from, const Slice& payload) {
  if (stack_.self() != origin_) {
    drop_invalid();  // VECT addressed to a non-origin
    return;
  }
  if (rows_[from].has_value() || sent_mat_) {
    return;  // duplicate or post-quorum straggler: normal, not suspicious
  }
  if (payload.size() != stack_.n() * kHash) {
    drop_invalid();
    return;
  }
  rows_[from] = payload;  // aliases the VECT frame until MAT is emitted
  if (++rows_received_ < stack_.quorums().n_minus_f()) return;

  // Gathered n-f rows: emit column j of the matrix to each p_j. Missing
  // rows are all-zero cells, which can never verify.
  sent_mat_ = true;
  trace(TracePhase::kEbMat);
  Adversary* adv = stack_.adversary();
  const bool corrupt = adv != nullptr && adv->eb_corrupt_matrix();
  for (ProcessId j = 0; j < stack_.n(); ++j) {
    Bytes column(stack_.n() * kHash, 0);
    for (ProcessId i = 0; i < stack_.n(); ++i) {
      if (rows_[i]) {
        std::copy(rows_[i]->begin() + static_cast<std::ptrdiff_t>(j * kHash),
                  rows_[i]->begin() + static_cast<std::ptrdiff_t>((j + 1) * kHash),
                  column.begin() + static_cast<std::ptrdiff_t>(i * kHash));
      }
    }
    if (corrupt) {
      for (auto& b : column) b = static_cast<std::uint8_t>(stack_.rng().next());
    }
    send(j, kMat, std::move(column));
  }
}

void EchoBroadcast::on_mat(ProcessId from, const Slice& payload) {
  if (from != origin_ || seen_mat_) {
    drop_invalid();
    return;
  }
  if (payload.size() != stack_.n() * kHash) {
    drop_invalid();
    return;
  }
  seen_mat_ = true;
  pending_column_ = payload;  // aliases the MAT frame
  if (seen_init_) {
    verify_and_deliver();
  }
  // Otherwise: Byzantine origin sent MAT before INIT (channels are FIFO);
  // keep the column until the INIT arrives, if ever.
}

void EchoBroadcast::verify_and_deliver() {
  if (delivered_ || pending_column_.empty() || !seen_init_) return;
  std::uint32_t good = 0;
  for (ProcessId i = 0; i < stack_.n(); ++i) {
    const auto expected = cell(msg_, i);
    const ByteView got(pending_column_.data() + i * kHash, kHash);
    if (ct_equal(ByteView(expected.data(), expected.size()), got)) ++good;
  }
  if (good >= stack_.quorums().eb_deliver_threshold()) {
    delivered_ = true;
    trace(TracePhase::kEbDeliver);
    complete();
    if (deliver_) deliver_(msg_);
  } else {
    drop_invalid();
  }
}

}  // namespace ritas
