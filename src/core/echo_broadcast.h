// Matrix echo broadcast (paper §2.3).
//
// Reiter's echo multicast with digital signatures replaced by vectors of
// pairwise-keyed hashes. Weaker than reliable broadcast: if the origin is
// corrupt, some correct processes may deliver nothing — but the subset of
// correct processes that do deliver, deliver the same message.
//
//   origin:  broadcast (INIT, m)
//   p_i on INIT:  V_i[j] = H(m || s_ij) for all j; send (VECT, V_i) to origin
//   origin on n-f VECTs:  M[i] = V_i; send (MAT, column_j(M)) to each p_j
//   p_j on MAT:  deliver m if >= f+1 column entries verify against its keys
//
// The hash is SHA-1 over m concatenated with the pairwise secret — the
// paper's "simple and efficient form of Message Authentication Code".
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "core/protocol.h"
#include "core/stack.h"
#include "crypto/sha1.h"

namespace ritas {

class EchoBroadcast final : public Protocol {
 public:
  /// Delivered Slice aliases the INIT arrival frame (zero-copy).
  using DeliverFn = std::function<void(Slice payload)>;

  static constexpr std::uint8_t kInit = 0;
  static constexpr std::uint8_t kVect = 1;
  static constexpr std::uint8_t kMat = 2;

  EchoBroadcast(ProtocolStack& stack, Protocol* parent, InstanceId id,
                ProcessId origin, Attribution attr, DeliverFn deliver);

  /// Starts the broadcast. Precondition: this process is the origin.
  void bcast(Slice payload);

  void on_message(ProcessId from, std::uint8_t tag,
                  const Slice& payload) override;

  ProcessId origin() const { return origin_; }
  bool delivered() const { return delivered_; }

 private:
  /// H(m || s_self,peer) — one cell of the hash matrix.
  Sha1::Digest cell(ByteView m, ProcessId peer) const;
  void on_init(ProcessId from, const Slice& payload);
  void on_vect(ProcessId from, const Slice& payload);
  void on_mat(ProcessId from, const Slice& payload);
  void verify_and_deliver();

  const ProcessId origin_;
  const Attribution attr_;
  DeliverFn deliver_;

  bool sent_init_ = false;
  bool seen_init_ = false;
  bool seen_mat_ = false;
  bool sent_mat_ = false;
  bool delivered_ = false;
  Slice msg_;  // payload from INIT (receiver role); aliases the INIT frame
  // Origin role: rows of the matrix, row j = V_j from process j. Each row
  // aliases the VECT frame it arrived in.
  std::vector<std::optional<Slice>> rows_;
  std::uint32_t rows_received_ = 0;
  // Receiver role: MAT column buffered until INIT arrives (only possible
  // with a Byzantine origin; channels are FIFO). Aliases the MAT frame.
  Slice pending_column_;
};

}  // namespace ritas
