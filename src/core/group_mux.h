// GroupMux — inbound demultiplexer for several consensus groups sharing
// one transport mesh.
//
// Sharded SMR runs G independent RITAS groups per process over a single
// set of pairwise channels (one TCP stream / simulated link per process
// pair, NOT per group). Outbound needs no help: every stack stamps its
// GroupId into the frame header and all stacks send through the same
// Transport. Inbound, the mux reads the (version, group) frame prefix —
// Message::peek_group, a few bytes, no full header parse — and hands the
// frame to the owning stack's on_packet. Frames for a group with no local
// stack, and frames whose prefix is unreadable, are counted drops here,
// never throws: the mux is the first code Byzantine bytes meet.
//
// Threading: on_packet runs on the transport poll thread only; the drop
// counters are owned by that thread. attach/detach/bind_reactors only
// while no traffic is in flight. With a ReactorPool bound (multi-core
// pipeline), the mux is the GroupId → reactor routing seam: instead of
// invoking the stack inline it hands the frame to the reactor that owns
// the group; without one (or with an inline-mode pool) it dispatches on
// the caller, byte-identical to the pre-pipeline path.
#pragma once

#include <cstdint>
#include <unordered_map>

#include "core/reactor.h"
#include "core/stack.h"

namespace ritas {

class GroupMux {
 public:
  GroupMux() = default;
  GroupMux(const GroupMux&) = delete;
  GroupMux& operator=(const GroupMux&) = delete;

  /// Registers `stack` as the owner of group `g` (one stack per group;
  /// re-attaching a group replaces the route). The stack is borrowed and
  /// must outlive the mux or be detached first.
  void attach(GroupId g, ProtocolStack& stack) { routes_[g] = &stack; }
  void detach(GroupId g) { routes_.erase(g); }

  /// Binds the reactor pool frames are handed to (borrowed; nullptr or an
  /// inline-mode pool keeps the direct-dispatch path).
  void bind_reactors(ReactorPool* pool) { pool_ = pool; }

  std::size_t group_count() const { return routes_.size(); }
  bool serves(GroupId g) const { return routes_.contains(g); }

  /// Entry point for the shared transport: peeks the frame's group and
  /// routes it. Unreadable prefix => malformed drop; no stack attached for
  /// the group => foreign drop. Byzantine input never throws.
  void on_packet(ProcessId from, Slice frame) {
    const auto g = Message::peek_group(frame);
    if (!g) {
      ++malformed_dropped_;
      return;
    }
    auto it = routes_.find(*g);
    if (it == routes_.end()) {
      ++foreign_dropped_;
      return;
    }
    if (pool_ != nullptr && !pool_->inline_mode()) {
      pool_->route(*g, *it->second, from, std::move(frame));
      return;
    }
    it->second->on_packet(from, std::move(frame));
  }

  /// Frames whose (version, group) prefix did not parse.
  std::uint64_t malformed_dropped() const { return malformed_dropped_; }
  /// Frames addressed to a group with no stack attached here.
  std::uint64_t foreign_dropped() const { return foreign_dropped_; }

 private:
  ReactorPool* pool_ = nullptr;
  std::unordered_map<GroupId, ProtocolStack*> routes_;
  std::uint64_t malformed_dropped_ = 0;
  std::uint64_t foreign_dropped_ = 0;
};

}  // namespace ritas
