#include "core/imbs_raynal_broadcast.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace ritas {

ImbsRaynalBroadcast::ImbsRaynalBroadcast(ProtocolStack& stack,
                                         Protocol* parent, InstanceId id,
                                         ProcessId origin, Attribution attr,
                                         DeliverFn deliver)
    : RbAlgorithm(stack, parent, std::move(id)),
      origin_(origin),
      attr_(attr),
      deliver_(std::move(deliver)),
      witness_msgs_(stack.n(), 0) {
  assert(origin_ < stack.n());
}

std::uint32_t ImbsRaynalBroadcast::relay_threshold() const {
  return stack_.n() - 2 * max_faults_ir(stack_.n());
}

std::uint32_t ImbsRaynalBroadcast::deliver_threshold() const {
  return stack_.n() - max_faults_ir(stack_.n());
}

void ImbsRaynalBroadcast::bcast(Slice payload) {
  if (origin_ != stack_.self()) {
    throw std::logic_error("ImbsRaynalBroadcast::bcast: not the origin");
  }
  if (sent_init_) {
    throw std::logic_error("ImbsRaynalBroadcast::bcast: already broadcast");
  }
  sent_init_ = true;
  stack_.metrics().count_broadcast_start(ProtocolType::kReliableBroadcast, attr_);
  trace(TracePhase::kRbInit, static_cast<std::uint64_t>(attr_));

  Adversary* adv = stack_.adversary();
  std::optional<Bytes> equivocation =
      adv != nullptr ? adv->rb_equivocate(payload) : std::nullopt;
  if (equivocation) {
    // Byzantine origin: even peers get `payload`, odd peers the alternate.
    const Slice alt(std::move(*equivocation));
    for (ProcessId p = 0; p < stack_.n(); ++p) {
      send(p, kIrInit, p % 2 == 0 ? payload : alt);
    }
    return;
  }
  broadcast(kIrInit, std::move(payload));
}

void ImbsRaynalBroadcast::on_message(ProcessId from, std::uint8_t tag,
                                     const Slice& payload) {
  switch (tag) {
    case kIrInit:
      on_init(from, payload);
      return;
    case kIrWitness:
      on_witness(from, payload);
      return;
    default:
      // Includes Bracha's INIT/ECHO/READY tags (0/1/2) from a peer running
      // the wrong variant: a counted drop, never confusion.
      drop_invalid();
  }
}

void ImbsRaynalBroadcast::on_init(ProcessId from, const Slice& payload) {
  // Only the origin may INIT, and only its first INIT counts.
  if (from != origin_ || seen_init_) {
    drop_invalid();
    return;
  }
  seen_init_ = true;
  if (!sent_witness_) {
    sent_witness_ = true;
    Tally& t = tally_for(payload);
    t.we_witnessed = true;
    // Reuses the Bracha phase codes (the trace schema is per ProtocolType,
    // not per variant): kRbEcho = "first relay step sent".
    trace(TracePhase::kRbEcho);
    broadcast(kIrWitness, payload);
  }
}

void ImbsRaynalBroadcast::on_witness(ProcessId from, const Slice& payload) {
  // An honest peer sends at most two WITNESS messages (one INIT-triggered,
  // one quorum switch); anything beyond is flood, dropped before it can
  // open a tally.
  if (witness_msgs_[from] >= 2) {
    drop_invalid();
    return;
  }
  Tally& t = tally_for(payload);
  if (t.counted[from]) {
    drop_invalid();
    return;
  }
  t.counted[from] = true;
  ++witness_msgs_[from];
  ++t.witnesses;
  maybe_relay(t);
  maybe_deliver(t);
}

ImbsRaynalBroadcast::Tally& ImbsRaynalBroadcast::tally_for(
    const Slice& payload) {
  const Sha1::Digest digest = Sha1::hash(payload);
  auto [it, inserted] = tallies_.try_emplace(digest);
  if (inserted) {
    // Keep a zero-copy alias of the first frame carrying these bytes; it
    // pins that frame until the instance is garbage-collected.
    it->second.payload = payload;
    it->second.counted.assign(stack_.n(), false);
  }
  return it->second;
}

void ImbsRaynalBroadcast::maybe_relay(Tally& t) {
  // Note: gated per digest, not by sent_witness_ — a quorum for m must be
  // relayed even by a process that witnessed a different value first (the
  // totality-restoring switch; see the header).
  if (t.we_witnessed) return;
  if (t.witnesses >= relay_threshold()) {
    t.we_witnessed = true;
    sent_witness_ = true;
    trace(TracePhase::kRbEcho);
    broadcast(kIrWitness, t.payload);
  }
}

void ImbsRaynalBroadcast::maybe_deliver(Tally& t) {
  if (delivered_) return;
  if (t.witnesses >= deliver_threshold()) {
    delivered_ = true;
    trace(TracePhase::kRbDeliver);
    complete();
    if (deliver_) deliver_(t.payload);
  }
}

}  // namespace ritas
