// Imbs–Raynal two-step Byzantine reliable broadcast (RbVariant::kImbsRaynal).
//
// Trades resilience for one fewer communication step than Bracha: with
// n > 5t (we fix t = (n-1)/5, so n >= 6) two message steps suffice where
// Bracha needs three:
//
//   origin:    broadcast (INIT, m)
//   on INIT:   broadcast (WITNESS, m)             [if no WITNESS sent yet]
//   on n-2t WITNESS(m), none sent *for m*: broadcast (WITNESS, m)
//   on n-t  WITNESS(m): deliver m
//
// The relay rule deliberately lets a process witness a *second* value: a
// correct process that witnessed m' (because an equivocating origin sent
// it INIT(m') first) still relays m once m gathers an n-2t quorum. Without
// that switch, totality fails — the origin sends INIT(m') to a few correct
// processes, INIT(m) to the rest, and its own WITNESS(m) to a single
// victim: the victim reaches n-t and delivers while the m'-witnesses
// refuse to relay and everyone else is stuck one witness short. The switch
// is safe because at most ONE value ever assembles an n-2t relay quorum:
// a switched WITNESS requires a prior quorum for its value, so two quorum
// values would both need >= n-2t-b *pre-switch* (INIT-triggered, hence
// one-per-process) correct witnesses from disjoint sets, forcing
// 2(n-2t-b) <= n-b, i.e. n <= 4t+b <= 5t — contradicting n > 5t.
//
// Agreement: a delivered value has n-t >= n-2t witnesses, so two different
// delivered values would both hold relay quorums — impossible by the
// uniqueness argument. Totality: a delivery quorum contains >= n-2t
// correct witnesses of m, whose WITNESS(m) push every correct process over
// the relay threshold; each either witnessed m already or switches, so all
// n-b >= n-t correct processes witness m and everyone delivers. Message
// cost: n + n^2 sends versus Bracha's n + 2n^2 (n + 2n^2 worst case under
// equivocation, when every process switches once).
//
// WITNESS tallies are per payload digest with per-digest-per-peer
// first-only counting; each peer may contribute at most two WITNESS
// messages total (the honest maximum: one INIT-triggered plus one switch),
// which bounds a Byzantine flooder to 2n tallies. The message tags (8/9)
// are disjoint from every other variant's — a frame from a peer running a
// different RB variant is a counted drop, never confusion
// (docs/PROTOCOLS.md).
#pragma once

#include <map>

#include "common/bytes.h"
#include "core/stack.h"
#include "core/variants.h"
#include "crypto/sha1.h"

namespace ritas {

class ImbsRaynalBroadcast final : public RbAlgorithm {
 public:
  static constexpr std::uint8_t kIrInit = 8;
  static constexpr std::uint8_t kIrWitness = 9;

  /// The variant's own fault budget: t = (n-1)/5 (n > 5t). Stricter than
  /// the stack-wide f = (n-1)/3; a mixed stack tolerates the minimum of
  /// the layers' budgets.
  static std::uint32_t max_faults_ir(std::uint32_t n) { return (n - 1) / 5; }

  void bcast(Slice payload) override;

  void on_message(ProcessId from, std::uint8_t tag,
                  const Slice& payload) override;

  ProcessId origin() const override { return origin_; }
  bool delivered() const override { return delivered_; }

 private:
  friend std::unique_ptr<RbAlgorithm> make_rb(ProtocolStack&, Protocol*,
                                              InstanceId, ProcessId,
                                              Attribution,
                                              RbAlgorithm::DeliverFn);

  ImbsRaynalBroadcast(ProtocolStack& stack, Protocol* parent, InstanceId id,
                      ProcessId origin, Attribution attr, DeliverFn deliver);

  struct Tally {
    Slice payload;  // aliases the first frame that carried these bytes
    std::uint32_t witnesses = 0;
    bool we_witnessed = false;   // our WITNESS for this digest is out
    std::vector<bool> counted;   // peers counted for this digest
  };

  void on_init(ProcessId from, const Slice& payload);
  void on_witness(ProcessId from, const Slice& payload);
  Tally& tally_for(const Slice& payload);
  void maybe_relay(Tally& t);
  void maybe_deliver(Tally& t);

  std::uint32_t relay_threshold() const;    // n - 2t
  std::uint32_t deliver_threshold() const;  // n - t

  const ProcessId origin_;
  const Attribution attr_;
  DeliverFn deliver_;

  bool sent_init_ = false;
  bool seen_init_ = false;
  bool sent_witness_ = false;  // gates the INIT-triggered witness only
  bool delivered_ = false;
  // Per-peer count of WITNESS messages accepted (cap 2 = the honest
  // maximum); bounds tally growth under Byzantine flooding.
  std::vector<std::uint8_t> witness_msgs_;
  std::map<Sha1::Digest, Tally> tallies_;
};

}  // namespace ritas
