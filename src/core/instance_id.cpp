#include "core/instance_id.h"

#include <cassert>

#include "common/rng.h"

namespace ritas {

const char* protocol_type_name(ProtocolType t) {
  switch (t) {
    case ProtocolType::kReliableBroadcast: return "rb";
    case ProtocolType::kEchoBroadcast: return "eb";
    case ProtocolType::kBinaryConsensus: return "bc";
    case ProtocolType::kMultiValuedConsensus: return "mvc";
    case ProtocolType::kVectorConsensus: return "vc";
    case ProtocolType::kAtomicBroadcast: return "ab";
  }
  return "?";
}

namespace {
bool valid_type(std::uint8_t t) {
  return t >= static_cast<std::uint8_t>(ProtocolType::kReliableBroadcast) &&
         t <= static_cast<std::uint8_t>(ProtocolType::kAtomicBroadcast);
}
}  // namespace

InstanceId InstanceId::child(Component c) const {
  assert(depth_ < kMaxDepth);
  InstanceId out = *this;
  out.comps_[out.depth_++] = c;
  return out;
}

InstanceId InstanceId::parent() const {
  assert(depth_ > 0);
  InstanceId out = *this;
  --out.depth_;
  out.comps_[out.depth_] = Component{};
  return out;
}

InstanceId InstanceId::prefix(std::size_t d) const {
  assert(d <= depth_);
  InstanceId out;
  out.depth_ = static_cast<std::uint8_t>(d);
  for (std::size_t i = 0; i < d; ++i) out.comps_[i] = comps_[i];
  return out;
}

bool InstanceId::is_prefix_of(const InstanceId& other) const {
  if (depth_ > other.depth_) return false;
  for (std::size_t i = 0; i < depth_; ++i) {
    if (!(comps_[i] == other.comps_[i])) return false;
  }
  return true;
}

InstanceId InstanceId::root(ProtocolType type, std::uint64_t seq) {
  InstanceId id;
  return id.child(Component{type, seq});
}

void InstanceId::encode(Writer& w) const {
  w.u8(depth_);
  for (std::size_t i = 0; i < depth_; ++i) {
    w.u8(static_cast<std::uint8_t>(comps_[i].type));
    w.u64(comps_[i].seq);
  }
}

std::optional<InstanceId> InstanceId::decode(Reader& r) {
  const std::uint8_t depth = r.u8();
  if (!r.ok() || depth == 0 || depth > kMaxDepth) return std::nullopt;
  InstanceId id;
  id.depth_ = depth;
  for (std::size_t i = 0; i < depth; ++i) {
    const std::uint8_t t = r.u8();
    const std::uint64_t seq = r.u64();
    if (!r.ok() || !valid_type(t)) return std::nullopt;
    id.comps_[i] = Component{static_cast<ProtocolType>(t), seq};
  }
  return id;
}

std::string InstanceId::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < depth_; ++i) {
    if (i) out.push_back('/');
    out += protocol_type_name(comps_[i].type);
    out.push_back('#');
    out += std::to_string(comps_[i].seq);
  }
  return out.empty() ? "<root>" : out;
}

TracePath InstanceId::trace_path() const {
  TracePath p;
  p.depth = depth_;
  for (std::size_t i = 0; i < depth_; ++i) {
    p.type[i] = static_cast<std::uint8_t>(comps_[i].type);
    p.seq[i] = comps_[i].seq;
  }
  return p;
}

std::uint64_t InstanceId::hash() const {
  std::uint64_t h = 0x9e3779b97f4a7c15ULL ^ depth_;
  for (std::size_t i = 0; i < depth_; ++i) {
    std::uint64_t x = (static_cast<std::uint64_t>(comps_[i].type) << 56) ^ comps_[i].seq;
    h ^= x;
    h = splitmix64(h);
  }
  return h;
}

bool operator==(const InstanceId& a, const InstanceId& b) {
  if (a.depth_ != b.depth_) return false;
  for (std::size_t i = 0; i < a.depth_; ++i) {
    if (!(a.comps_[i] == b.comps_[i])) return false;
  }
  return true;
}

std::strong_ordering operator<=>(const InstanceId& a, const InstanceId& b) {
  const std::size_t d = a.depth_ < b.depth_ ? a.depth_ : b.depth_;
  for (std::size_t i = 0; i < d; ++i) {
    if (auto c = a.comps_[i] <=> b.comps_[i]; c != 0) return c;
  }
  return a.depth_ <=> b.depth_;
}

}  // namespace ritas
