// Hierarchical protocol-instance identifiers ("control block chaining").
//
// The paper (§3.3) identifies every message by chaining the instance IDs of
// the protocol control blocks it traverses, from the root protocol the
// application created down to the RITAS channel. We reproduce that scheme
// as a typed path: an InstanceId is a bounded sequence of components, each
// naming a protocol type plus a parent-chosen 64-bit sequence number (which
// parents use to encode origin process, round, step, ...). The path is
// carried on the wire in every message header and is the demultiplexing
// key; children derive their path from their parent's, and destroying a
// parent destroys the subtree — the three roles §3.3 assigns to chaining.
#pragma once

#include <array>
#include <compare>
#include <cstdint>
#include <optional>
#include <string>

#include "common/serialize.h"
#include "common/trace.h"

namespace ritas {

enum class ProtocolType : std::uint8_t {
  kReliableBroadcast = 1,
  kEchoBroadcast = 2,
  kBinaryConsensus = 3,
  kMultiValuedConsensus = 4,
  kVectorConsensus = 5,
  kAtomicBroadcast = 6,
};

const char* protocol_type_name(ProtocolType t);

/// One link of the chain: which protocol, and which instance of it within
/// the parent (the parent defines the encoding of `seq`).
struct Component {
  ProtocolType type{};
  std::uint64_t seq = 0;

  friend bool operator==(const Component&, const Component&) = default;
  friend auto operator<=>(const Component&, const Component&) = default;
};

/// Bounded path of components. Depth 6 covers the deepest chain in the
/// stack (AB -> VC -> MVC -> BC -> RB) with margin; a hard bound keeps a
/// Byzantine sender from making us allocate unbounded headers.
class InstanceId {
 public:
  static constexpr std::size_t kMaxDepth = 6;

  InstanceId() = default;

  std::size_t depth() const { return depth_; }
  bool empty() const { return depth_ == 0; }
  const Component& at(std::size_t i) const { return comps_[i]; }
  const Component& leaf() const { return comps_[depth_ - 1]; }

  /// Path extended by one component. Precondition: depth() < kMaxDepth.
  InstanceId child(Component c) const;
  /// Path with the leaf removed. Precondition: !empty().
  InstanceId parent() const;
  /// First d components. Precondition: d <= depth().
  InstanceId prefix(std::size_t d) const;
  /// True when `this` is a (non-strict) prefix of `other`.
  bool is_prefix_of(const InstanceId& other) const;

  /// Root path of one component — what the application-facing session
  /// assigns to the protocols it creates.
  static InstanceId root(ProtocolType type, std::uint64_t seq);

  void encode(Writer& w) const;
  /// Returns nullopt on malformed input (bad depth or protocol type).
  static std::optional<InstanceId> decode(Reader& r);

  std::string to_string() const;
  std::uint64_t hash() const;

  /// Layering-clean mirror for the tracer (common cannot see core).
  TracePath trace_path() const;

  friend bool operator==(const InstanceId& a, const InstanceId& b);
  friend std::strong_ordering operator<=>(const InstanceId& a, const InstanceId& b);

 private:
  std::array<Component, kMaxDepth> comps_{};
  std::uint8_t depth_ = 0;
};

struct InstanceIdHash {
  std::size_t operator()(const InstanceId& id) const {
    return static_cast<std::size_t>(id.hash());
  }
};

}  // namespace ritas
