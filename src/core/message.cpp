#include "core/message.h"

namespace ritas {

namespace {
constexpr std::uint8_t kWireVersion = 1;
}

Bytes Message::encode() const {
  Writer w(payload.size() + 32);
  w.u8(kWireVersion);
  path.encode(w);
  w.u8(tag);
  w.bytes(payload);
  return std::move(w).take();
}

std::optional<Message> Message::decode(ByteView frame) {
  Reader r(frame);
  if (r.u8() != kWireVersion) return std::nullopt;
  auto path = InstanceId::decode(r);
  if (!path) return std::nullopt;
  Message m;
  m.path = *path;
  m.tag = r.u8();
  m.payload = r.bytes();
  if (!r.done()) return std::nullopt;  // trailing garbage => reject
  return m;
}

std::size_t Message::header_size() const {
  // version + depth byte + 9 bytes per component + tag + u32 length.
  return 1 + 1 + path.depth() * 9 + 1 + 4;
}

}  // namespace ritas
