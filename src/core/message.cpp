#include "core/message.h"

#include "common/serialize.h"

namespace ritas {

namespace {
constexpr std::uint8_t kWireVersion = 1;
}

Buffer Message::encode() const {
  Writer w(payload.size() + 32);
  w.u8(kWireVersion);
  path.encode(w);
  w.u8(tag);
  w.bytes(payload);
  return Buffer::own(std::move(w).take());
}

std::optional<Message> Message::decode(const Slice& frame) {
  Reader r(frame.view());
  if (r.u8() != kWireVersion) return std::nullopt;
  auto path = InstanceId::decode(r);
  if (!path) return std::nullopt;
  Message m;
  m.path = *path;
  m.tag = r.u8();
  const std::uint32_t len = r.u32();
  // The payload must account for every remaining byte (trailing garbage =>
  // reject), and it is sliced out of the frame rather than copied.
  if (!r.ok() || r.remaining() != len) return std::nullopt;
  m.payload = frame.subslice(r.pos(), len);
  return m;
}

std::size_t Message::header_size() const {
  // version + depth byte + 9 bytes per component + tag + u32 length.
  return 1 + 1 + path.depth() * 9 + 1 + 4;
}

}  // namespace ritas
