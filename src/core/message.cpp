#include "core/message.h"

#include "common/serialize.h"

namespace ritas {

namespace {
// Version 1: the original single-group frame (no group field, group = 0).
// Version 2: `u8 2 | u32 group` prefix, group != 0 — the sharded-SMR demux
// key extension (docs/PROTOCOLS.md "Group multiplexing"). Everything after
// the version/group prefix is byte-identical between the two versions.
constexpr std::uint8_t kWireVersion = 1;
constexpr std::uint8_t kWireVersionGrouped = 2;
}  // namespace

Buffer Message::encode() const {
  Writer w(payload.size() + 40);
  if (group == 0) {
    w.u8(kWireVersion);
  } else {
    w.u8(kWireVersionGrouped);
    w.u32(group);
  }
  path.encode(w);
  w.u8(tag);
  w.bytes(payload);
  return Buffer::own(std::move(w).take());
}

std::optional<Message> Message::decode(const Slice& frame) {
  Reader r(frame.view());
  const std::uint8_t version = r.u8();
  Message m;
  if (version == kWireVersionGrouped) {
    m.group = r.u32();
    // Group 0 must encode as version 1; rejecting the alias keeps every
    // logical frame's byte representation canonical.
    if (!r.ok() || m.group == 0) return std::nullopt;
  } else if (version != kWireVersion) {
    return std::nullopt;
  }
  auto path = InstanceId::decode(r);
  if (!path) return std::nullopt;
  m.path = *path;
  m.tag = r.u8();
  const std::uint32_t len = r.u32();
  // The payload must account for every remaining byte (trailing garbage =>
  // reject), and it is sliced out of the frame rather than copied.
  if (!r.ok() || r.remaining() != len) return std::nullopt;
  m.payload = frame.subslice(r.pos(), len);
  return m;
}

std::optional<GroupId> Message::peek_group(const Slice& frame) {
  Reader r(frame.view());
  const std::uint8_t version = r.u8();
  if (!r.ok()) return std::nullopt;
  if (version == kWireVersion) return GroupId{0};
  if (version != kWireVersionGrouped) return std::nullopt;
  const GroupId g = r.u32();
  if (!r.ok() || g == 0) return std::nullopt;
  return g;
}

std::size_t Message::header_size() const {
  // version [+ u32 group] + depth byte + 9 bytes per component + tag +
  // u32 length.
  return 1 + (group != 0 ? 4 : 0) + 1 + path.depth() * 9 + 1 + 4;
}

}  // namespace ritas
