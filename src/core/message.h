// Wire message — the C implementation's `mbuf`.
//
// Every unit of information that crosses a RITAS channel is one Message:
// the destination instance path (see instance_id.h), a protocol-specific
// tag (INIT/ECHO/READY/VECT/MAT/...), and an opaque payload. The sender's
// process id is NOT part of the message body — it is a property of the
// authenticated point-to-point channel the message arrived on, exactly as
// with TCP+IPSec AH in the paper (a peer cannot spoof its channel).
//
// The payload is a refcounted Slice (common/buffer.h): encode() writes the
// whole frame into ONE shared Buffer that broadcast fan-out hands to every
// peer, and decode() returns a payload Slice aliasing the arrival frame —
// neither direction copies payload bytes beyond the single frame write.
#pragma once

#include <cstdint>
#include <optional>

#include "common/buffer.h"
#include "common/bytes.h"
#include "core/instance_id.h"
#include "core/types.h"

namespace ritas {

struct Message {
  /// Consensus group this frame belongs to. The (group, path) pair is the
  /// demultiplexing key when several groups share one transport mesh.
  /// Group 0 encodes as the original version-1 frame (bit-identical wire
  /// format for single-group deployments); any other group encodes as a
  /// version-2 frame carrying the group id. Stamped by the sending stack —
  /// protocols never set it.
  GroupId group = 0;
  InstanceId path;
  std::uint8_t tag = 0;
  Slice payload;

  /// Serializes header + payload into one shared frame ready for a
  /// transport (the payload's only copy on the send path).
  Buffer encode() const;
  /// Parses a frame; the returned payload is a Slice aliasing `frame` (it
  /// keeps the frame's Buffer alive, no bytes are copied). nullopt on any
  /// malformation — never throws; Byzantine bytes on the wire must not
  /// take the process down. A version-2 frame claiming group 0 is
  /// malformed (group 0 has exactly one canonical encoding: version 1).
  static std::optional<Message> decode(const Slice& frame);

  /// Reads only the destination group of a frame (version byte plus, on a
  /// version-2 frame, the group id) — the cheap prefix read the shared-mesh
  /// demultiplexer uses to route a frame without parsing the whole header.
  /// nullopt on an unknown version or a truncated/non-canonical prefix.
  static std::optional<GroupId> peek_group(const Slice& frame);

  /// Header bytes added on top of the payload (for traffic accounting).
  std::size_t header_size() const;
};

}  // namespace ritas
