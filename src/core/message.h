// Wire message — the C implementation's `mbuf`.
//
// Every unit of information that crosses a RITAS channel is one Message:
// the destination instance path (see instance_id.h), a protocol-specific
// tag (INIT/ECHO/READY/VECT/MAT/...), and an opaque payload. The sender's
// process id is NOT part of the message body — it is a property of the
// authenticated point-to-point channel the message arrived on, exactly as
// with TCP+IPSec AH in the paper (a peer cannot spoof its channel).
#pragma once

#include <cstdint>
#include <optional>

#include "common/bytes.h"
#include "core/instance_id.h"

namespace ritas {

struct Message {
  InstanceId path;
  std::uint8_t tag = 0;
  Bytes payload;

  /// Serializes header + payload into a frame ready for a transport.
  Bytes encode() const;
  /// Parses a frame; nullopt on any malformation (never throws — Byzantine
  /// bytes on the wire must not take the process down).
  static std::optional<Message> decode(ByteView frame);

  /// Header bytes added on top of the payload (for traffic accounting).
  std::size_t header_size() const;
};

}  // namespace ritas
