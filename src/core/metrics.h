// Per-process counters for traffic accounting and the paper's evaluation.
//
// Figure 7 of the paper divides "broadcasts needed for agreement" by "all
// (reliable and echo) broadcasts"; Table 1 and §4.3 report round counts.
// The stack increments these counters as it runs; harnesses aggregate them
// across processes.
#pragma once

#include <array>
#include <cstdint>

#include "common/stats.h"
#include "common/trace.h"
#include "core/instance_id.h"
#include "core/types.h"

namespace ritas {

struct Metrics {
  // Transport-level traffic (excludes local self-deliveries).
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t msgs_received = 0;

  // Defensive drops.
  std::uint64_t malformed_dropped = 0;   // undecodable frames
  std::uint64_t unroutable_dropped = 0;  // spawn refused with tombstone
  std::uint64_t invalid_dropped = 0;     // protocol-level validation failures
  // Frames addressed to a group this stack does not run (Byzantine or
  // misconfigured peer; with a shared mesh the GroupMux normally routes
  // these away before they reach a stack).
  std::uint64_t foreign_group_dropped = 0;

  // Out-of-context table (§3.4).
  std::uint64_t ooc_stored = 0;
  std::uint64_t ooc_drained = 0;
  std::uint64_t ooc_evicted = 0;

  // Broadcast instances *initiated by this process as sender*, by
  // attribution (payload dissemination vs agreement machinery).
  std::uint64_t rb_started_payload = 0;
  std::uint64_t rb_started_agreement = 0;
  std::uint64_t eb_started_payload = 0;
  std::uint64_t eb_started_agreement = 0;

  // Consensus behaviour (§4.3: "binary consensus always terminated within
  // one round", "multi-valued consensus always decided a non-default
  // value").
  std::uint64_t bc_decided = 0;
  std::uint64_t bc_rounds_total = 0;  // sum over decided instances
  std::uint64_t bc_coin_flips = 0;
  std::uint64_t mvc_decided_value = 0;
  std::uint64_t mvc_decided_default = 0;

  // Atomic broadcast agreement activity.
  std::uint64_t ab_rounds = 0;
  std::uint64_t ab_delivered = 0;

  // Atomic broadcast batching (StackConfig::ab_batch). Sealed batches and
  // the messages they carried (sender side), plus undecodable batch frames
  // from Byzantine origins (also counted in invalid_dropped).
  std::uint64_t ab_batches_sealed = 0;
  std::uint64_t ab_batch_msgs = 0;
  std::uint64_t ab_batch_malformed = 0;

  // Zero-copy buffer layer (common/buffer.h). frames_encoded counts
  // Message::encode calls on the send path — a broadcast encodes ONCE and
  // shares the frame across all n-1 transport sends, so for broadcast-only
  // traffic frames_encoded == broadcasts regardless of n. On the receive
  // path, payload bytes handed to protocols as Slices aliasing the arrival
  // frame count as aliased (decode, plus each sub-message sliced out of a
  // sealed AB batch); payload bytes materialized by copying on the
  // dissemination path count as copied. After the mbuf refactor the copied
  // counter stays 0 — it exists so copy elimination is machine-checkable
  // (bench_buffer and CI assert it).
  std::uint64_t frames_encoded = 0;
  std::uint64_t payload_bytes_copied = 0;
  std::uint64_t payload_bytes_aliased = 0;

  // Schedule-exploration harness (src/sim/explore.h). Kept by the
  // Explorer, not by stacks: trials executed, trials whose property
  // oracles flagged a safety violation, and trials that exhausted the
  // liveness budget (no completion within the trial's max_events).
  std::uint64_t explore_trials = 0;
  std::uint64_t explore_violations = 0;
  std::uint64_t explore_stalls = 0;

  // Per-protocol spawn->terminal latency, indexed by ProtocolType code
  // (1..6; slot 0 unused). Timestamps come from Transport::now_ns(), so in
  // the sim these are virtual nanoseconds and on clock-less test loopbacks
  // every observation is 0 — the counts still track completions.
  std::array<Histogram, kTraceProtoSlots> proto_latency_ns{};
  // Rounds needed per decided binary consensus (paper §4.3 reports the
  // distribution is concentrated at 1).
  Histogram bc_round_hist;

  void count_broadcast_start(ProtocolType type, Attribution attr) {
    if (type == ProtocolType::kReliableBroadcast) {
      (attr == Attribution::kPayload ? rb_started_payload : rb_started_agreement)++;
    } else if (type == ProtocolType::kEchoBroadcast) {
      (attr == Attribution::kPayload ? eb_started_payload : eb_started_agreement)++;
    }
  }

  std::uint64_t broadcasts_total() const {
    return rb_started_payload + rb_started_agreement + eb_started_payload +
           eb_started_agreement;
  }
  std::uint64_t broadcasts_agreement() const {
    return rb_started_agreement + eb_started_agreement;
  }

  Metrics& operator+=(const Metrics& o) {
    msgs_sent += o.msgs_sent;
    bytes_sent += o.bytes_sent;
    msgs_received += o.msgs_received;
    malformed_dropped += o.malformed_dropped;
    unroutable_dropped += o.unroutable_dropped;
    invalid_dropped += o.invalid_dropped;
    foreign_group_dropped += o.foreign_group_dropped;
    ooc_stored += o.ooc_stored;
    ooc_drained += o.ooc_drained;
    ooc_evicted += o.ooc_evicted;
    rb_started_payload += o.rb_started_payload;
    rb_started_agreement += o.rb_started_agreement;
    eb_started_payload += o.eb_started_payload;
    eb_started_agreement += o.eb_started_agreement;
    bc_decided += o.bc_decided;
    bc_rounds_total += o.bc_rounds_total;
    bc_coin_flips += o.bc_coin_flips;
    mvc_decided_value += o.mvc_decided_value;
    mvc_decided_default += o.mvc_decided_default;
    ab_rounds += o.ab_rounds;
    ab_delivered += o.ab_delivered;
    ab_batches_sealed += o.ab_batches_sealed;
    ab_batch_msgs += o.ab_batch_msgs;
    ab_batch_malformed += o.ab_batch_malformed;
    frames_encoded += o.frames_encoded;
    payload_bytes_copied += o.payload_bytes_copied;
    payload_bytes_aliased += o.payload_bytes_aliased;
    explore_trials += o.explore_trials;
    explore_violations += o.explore_violations;
    explore_stalls += o.explore_stalls;
    for (std::size_t i = 0; i < proto_latency_ns.size(); ++i) {
      proto_latency_ns[i] += o.proto_latency_ns[i];
    }
    bc_round_hist += o.bc_round_hist;
    return *this;
  }
};

}  // namespace ritas
