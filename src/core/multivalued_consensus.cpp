#include "core/multivalued_consensus.h"

#include <cassert>
#include <stdexcept>

namespace ritas {

MultiValuedConsensus::MultiValuedConsensus(ProtocolStack& stack,
                                           Protocol* parent, InstanceId id,
                                           Attribution attr, DecideFn decide)
    : Protocol(stack, parent, std::move(id)),
      attr_(attr),
      decide_(std::move(decide)),
      init_(stack.n()),
      vects_(stack.n()) {
  // Fixed child set, created eagerly: INIT broadcasts, VECT echo
  // broadcasts, and the single binary consensus.
  // RB and BC children go through the variant factories (core/variants.h),
  // so the MVC composes with whatever algorithms the stack is configured
  // with. Echo broadcast has no variant seam (the paper's §2.5 VECT
  // optimization is itself toggled by mvc_vect_via_rb).
  for (ProcessId j = 0; j < stack_.n(); ++j) {
    add_child(make_rb(stack_, this, this->id().child(init_component(j)), j,
                      attr_,
                      [this, j](Slice payload) { on_init_deliver(j, payload); }));
    if (stack_.config().mvc_vect_via_rb) {
      add_child(make_rb(stack_, this, this->id().child(vect_rb_component(j)),
                        j, attr_,
                        [this, j](Slice payload) { on_vect_deliver(j, payload); }));
    } else {
      add_child(std::make_unique<EchoBroadcast>(
          stack_, this, this->id().child(vect_component(j)), j, attr_,
          [this, j](Slice payload) { on_vect_deliver(j, payload); }));
    }
  }
  auto bc = make_bc(stack_, this, this->id().child(bc_component()), attr_,
                    [this](bool b) { on_bc_decide(b); });
  bc_ = bc.get();
  add_child(std::move(bc));
}

void MultiValuedConsensus::propose(Bytes v) {
  if (active_) throw std::logic_error("MultiValuedConsensus::propose: already active");
  active_ = true;
  trace(TracePhase::kMvcPropose);

  std::optional<Bytes> value = std::move(v);
  if (Adversary* adv = stack_.adversary()) {
    value = adv->mvc_init_value(value ? *value : Bytes{});
  }
  Writer w;
  w.u8(value ? 1 : 0);
  if (value) w.raw(*value);

  auto* rb = static_cast<RbAlgorithm*>(find_child(init_component(stack_.self())));
  assert(rb != nullptr);
  rb->bcast(std::move(w).take());

  // Peer traffic may already have crossed the thresholds while passive.
  maybe_send_vect();
  maybe_propose_bc();
  maybe_decide_value();
}

void MultiValuedConsensus::on_message(ProcessId, std::uint8_t, const Slice&) {
  drop_invalid();  // traffic flows through children only
}

void MultiValuedConsensus::on_init_deliver(ProcessId origin,
                                           const Slice& payload) {
  if (init_[origin].has_value()) return;  // RB delivers once; defensive
  Reader r(payload.view());
  const bool has_value = r.u8() != 0;
  std::optional<Bytes> value;
  if (has_value) value = r.raw(r.remaining());
  if (!r.ok()) {
    drop_invalid();
    return;
  }
  init_[origin] = std::move(value);
  init_order_.push_back(origin);

  revalidate_vects();
  maybe_send_vect();
  maybe_propose_bc();
  maybe_decide_value();
}

Bytes MultiValuedConsensus::encode_vect(
    const std::optional<Bytes>& value,
    const std::vector<std::optional<Bytes>>& vec) const {
  Writer w;
  w.u8(value ? 1 : 0);
  if (value) w.bytes(*value);
  w.u32(static_cast<std::uint32_t>(vec.size()));
  for (const auto& e : vec) {
    w.u8(e ? 1 : 0);
    if (e) w.bytes(*e);
  }
  return std::move(w).take();
}

bool MultiValuedConsensus::decode_vect(ByteView payload, Vect& out) const {
  Reader r(payload);
  if (r.u8() != 0) out.value = r.bytes();
  const std::uint32_t count = r.u32();
  if (!r.ok() || (count != 0 && count != stack_.n())) return false;
  out.vector.resize(count);
  for (std::uint32_t k = 0; k < count; ++k) {
    if (r.u8() != 0) out.vector[k] = r.bytes();
  }
  return r.done();
}

void MultiValuedConsensus::on_vect_deliver(ProcessId origin,
                                           const Slice& payload) {
  if (vects_[origin].has_value()) return;  // EB delivers once; defensive
  Vect v;
  if (!decode_vect(payload, v)) {
    drop_invalid();
    return;
  }
  vects_[origin] = std::move(v);
  Vect& stored = *vects_[origin];
  if (vect_is_valid(stored)) {
    stored.valid = true;
    valid_order_.push_back(origin);
    maybe_propose_bc();
    maybe_decide_value();
  }
}

bool MultiValuedConsensus::vect_is_valid(const Vect& v) const {
  if (!v.value) return true;  // (a) the default value needs no justification
  if (v.vector.size() != stack_.n()) return false;
  // (b) n-2f positions where the sender's justification matches both the
  // INIT value we received from that process and the proposed value.
  std::uint32_t matches = 0;
  for (ProcessId k = 0; k < stack_.n(); ++k) {
    if (!v.vector[k] || !init_[k].has_value() || !init_[k]->has_value()) continue;
    if (*v.vector[k] == **init_[k] && *v.vector[k] == *v.value) ++matches;
  }
  return matches >= stack_.quorums().n_minus_2f();
}

void MultiValuedConsensus::revalidate_vects() {
  bool any = false;
  for (ProcessId j = 0; j < stack_.n(); ++j) {
    if (!vects_[j] || vects_[j]->valid) continue;
    if (vect_is_valid(*vects_[j])) {
      vects_[j]->valid = true;
      valid_order_.push_back(j);
      any = true;
    }
  }
  if (any) {
    maybe_propose_bc();
    maybe_decide_value();
  }
}

void MultiValuedConsensus::maybe_send_vect() {
  const Quorums& q = stack_.quorums();
  if (!active_ || sent_vect_ || init_order_.size() < q.n_minus_f()) return;
  sent_vect_ = true;

  // Snapshot: the first n-f INITs that arrived.
  std::optional<Bytes> w;
  for (std::uint32_t i = 0; i < q.n_minus_f() && !w; ++i) {
    const auto& cand = *init_[init_order_[i]];
    if (!cand) continue;
    std::uint32_t count = 0;
    for (std::uint32_t k = 0; k < q.n_minus_f(); ++k) {
      const auto& other = *init_[init_order_[k]];
      if (other && *other == *cand) ++count;
    }
    if (count >= q.n_minus_2f()) w = cand;
  }

  std::vector<std::optional<Bytes>> justification;
  if (w) {
    justification.resize(stack_.n());
    for (std::uint32_t i = 0; i < q.n_minus_f(); ++i) {
      const ProcessId k = init_order_[i];
      justification[k] = *init_[k];  // may be nullopt for a ⊥ INIT
    }
  }
  if (Adversary* adv = stack_.adversary()) {
    if (adv->mvc_force_default_vect()) {
      w.reset();
      justification.clear();
    }
  }
  Bytes body = encode_vect(w, justification);
  trace(TracePhase::kMvcVect, 0, w ? 1 : 0);
  if (stack_.config().mvc_vect_via_rb) {
    auto* rb = static_cast<RbAlgorithm*>(
        find_child(vect_rb_component(stack_.self())));
    assert(rb != nullptr);
    rb->bcast(std::move(body));
  } else {
    auto* eb = static_cast<EchoBroadcast*>(find_child(vect_component(stack_.self())));
    assert(eb != nullptr);
    eb->bcast(std::move(body));
  }
}

void MultiValuedConsensus::maybe_propose_bc() {
  const Quorums& q = stack_.quorums();
  if (!active_ || proposed_bc_ || valid_order_.size() < q.n_minus_f()) return;
  proposed_bc_ = true;

  // Evaluate over every VECT validated so far: any two different non-⊥
  // values? some value with >= n-2f occurrences?
  bool conflict = false;
  bool have_value = false;
  for (std::size_t i = 0; i < valid_order_.size() && !conflict; ++i) {
    const Vect& a = *vects_[valid_order_[i]];
    if (!a.value) continue;
    std::uint32_t count = 0;
    for (ProcessId j : valid_order_) {
      const Vect& b = *vects_[j];
      if (!b.value) continue;
      if (*b.value == *a.value) {
        ++count;
      } else {
        conflict = true;
        break;
      }
    }
    if (count >= q.n_minus_2f()) have_value = true;
  }
  const bool proposal = !conflict && have_value;
  trace(TracePhase::kMvcBcPropose, 0, proposal ? 1 : 0);
  bc_->propose(proposal);
}

void MultiValuedConsensus::on_bc_decide(bool b) {
  if (!b) {
    ++stack_.metrics().mvc_decided_default;
    decide(std::nullopt);
    return;
  }
  awaiting_value_ = true;
  maybe_decide_value();
}

void MultiValuedConsensus::maybe_decide_value() {
  const Quorums& q = stack_.quorums();
  if (!awaiting_value_ || decided_) return;
  for (ProcessId i : valid_order_) {
    const Vect& a = *vects_[i];
    if (!a.value) continue;
    std::uint32_t count = 0;
    for (ProcessId j : valid_order_) {
      const Vect& b = *vects_[j];
      if (b.value && *b.value == *a.value) ++count;
    }
    if (count >= q.n_minus_2f()) {
      ++stack_.metrics().mvc_decided_value;
      decide(*a.value);
      return;
    }
  }
}

void MultiValuedConsensus::decide(std::optional<Bytes> v) {
  if (decided_) return;
  decided_ = true;
  decision_ = std::move(v);
  trace(TracePhase::kMvcDecide, 0, decision_ ? 1 : 0);
  complete();
  if (decide_) decide_(decision_);
}

Protocol* MultiValuedConsensus::spawn_child(const Component&, bool& drop) {
  // Every legitimate child exists from construction; anything else is a
  // permanently unroutable path.
  drop = true;
  return nullptr;
}

}  // namespace ritas
