// Multi-valued consensus (paper §2.5, after Correia et al.).
//
// Processes propose arbitrary byte strings; the decision is one of the
// proposed values or the default value ⊥. Uses reliable broadcast for the
// INIT phase, *echo* broadcast for the VECT phase (the paper's optimization
// over the original protocol), and one binary consensus:
//
//   propose v:  RB-broadcast (INIT, v)
//   on n-f INITs: if >= n-2f carry the same w, EB-broadcast (VECT, w, V)
//                 where V justifies w; else EB-broadcast (VECT, ⊥)
//   on n-f *valid* VECTs: propose 1 to binary consensus iff no two valid
//                 VECTs carry different non-⊥ values and >= n-2f carry the
//                 same value; else propose 0
//   BC decides 0: decide ⊥
//   BC decides 1: wait for n-2f valid VECTs with the same value w
//                 (if not already seen) and decide w
//
// A VECT (w, V_j) from p_j is valid iff w = ⊥, or at least n-2f positions k
// satisfy V_j[k] == (the INIT value this process received from p_k) == w.
// Invalid VECTs stay pending and are re-examined as INITs arrive.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "core/echo_broadcast.h"
#include "core/protocol.h"
#include "core/stack.h"
#include "core/variants.h"

namespace ritas {

class MultiValuedConsensus final : public Protocol {
 public:
  /// nullopt = the default value ⊥.
  using DecideFn = std::function<void(std::optional<Bytes>)>;

  MultiValuedConsensus(ProtocolStack& stack, Protocol* parent, InstanceId id,
                       Attribution attr, DecideFn decide);

  /// Proposes a value and activates the state machine. A passive instance
  /// (created on demand by a parent) accumulates peer traffic before this.
  void propose(Bytes v);

  void on_message(ProcessId from, std::uint8_t tag,
                  const Slice& payload) override;
  Protocol* spawn_child(const Component& c, bool& drop) override;

  bool active() const { return active_; }
  bool decided() const { return decided_; }
  /// Valid only after decided(); nullopt = ⊥.
  const std::optional<Bytes>& decision() const { return decision_; }

  /// Child components: INIT reliable broadcasts are (kRB, origin), VECT
  /// echo broadcasts are (kEB, origin), the binary consensus is (kBC, 0).
  static Component init_component(ProcessId origin) {
    return Component{ProtocolType::kReliableBroadcast, origin};
  }
  static Component vect_component(ProcessId origin) {
    return Component{ProtocolType::kEchoBroadcast, origin};
  }
  /// Ablation variant (stack.config().mvc_vect_via_rb): VECT phase carried
  /// by reliable broadcast, undoing the paper's optimization.
  static Component vect_rb_component(ProcessId origin) {
    return Component{ProtocolType::kReliableBroadcast,
                     0x8000000000000000ULL | origin};
  }
  static Component bc_component() {
    return Component{ProtocolType::kBinaryConsensus, 0};
  }

 private:
  struct Vect {
    std::optional<Bytes> value;               // nullopt = ⊥
    std::vector<std::optional<Bytes>> vector; // justification, size n (empty for ⊥)
    bool valid = false;
  };

  // Handlers take the child's zero-copy Slice; MVC stores parsed values as
  // owned Bytes (small agreement values, deliberately not counted as
  // payload copies — see docs/OBSERVABILITY.md).
  void on_init_deliver(ProcessId origin, const Slice& payload);
  void on_vect_deliver(ProcessId origin, const Slice& payload);
  void on_bc_decide(bool b);
  bool vect_is_valid(const Vect& v) const;
  void revalidate_vects();
  void maybe_send_vect();
  void maybe_propose_bc();
  void maybe_decide_value();
  void decide(std::optional<Bytes> v);

  Bytes encode_vect(const std::optional<Bytes>& value,
                    const std::vector<std::optional<Bytes>>& vec) const;
  bool decode_vect(ByteView payload, Vect& out) const;

  const Attribution attr_;
  DecideFn decide_;

  bool active_ = false;
  bool sent_vect_ = false;
  bool proposed_bc_ = false;
  bool decided_ = false;
  std::optional<Bytes> decision_;
  bool awaiting_value_ = false;  // BC said 1, waiting for n-2f same VECTs

  // INIT bookkeeping: per-origin value (inner nullopt = attacker's ⊥ INIT)
  // plus arrival order for the n-f snapshot.
  std::vector<std::optional<std::optional<Bytes>>> init_;
  std::vector<ProcessId> init_order_;

  // VECT bookkeeping: per-origin message and the order validation passed.
  std::vector<std::optional<Vect>> vects_;
  std::vector<ProcessId> valid_order_;

  BcAlgorithm* bc_ = nullptr;
};

}  // namespace ritas
