#include "core/protocol.h"

#include <cassert>
#include <stdexcept>

#include "core/stack.h"

namespace ritas {

Protocol::Protocol(ProtocolStack& stack, Protocol* parent, InstanceId id)
    : stack_(stack), parent_(parent), id_(std::move(id)) {
  assert(!id_.empty());
  spawn_ns_ = stack_.now_ns();
  stack_.register_instance(this);
}

Protocol::~Protocol() {
  // Children (members) are destroyed after this body runs; unregister self
  // first so no OOC drain can route to a half-dead object.
  stack_.unregister_instance(this);
}

Protocol* Protocol::spawn_child(const Component& c, bool& drop) {
  (void)c;
  drop = false;
  return nullptr;
}

Protocol* Protocol::find_child(const Component& c) const {
  auto it = children_.find(c);
  return it == children_.end() ? nullptr : it->second.get();
}

Protocol& Protocol::add_child(std::unique_ptr<Protocol> child) {
  assert(child);
  assert(child->id().depth() == id_.depth() + 1);
  assert(id_.is_prefix_of(child->id()));
  const Component key = child->id().leaf();
  auto [it, inserted] = children_.emplace(key, std::move(child));
  if (!inserted) throw std::logic_error("Protocol::add_child: duplicate child component");
  return *it->second;
}

void Protocol::destroy_child(const Component& c) {
  children_.erase(c);
}

void Protocol::send(ProcessId to, std::uint8_t tag, Slice payload) const {
  Message m;
  m.path = id_;
  m.tag = tag;
  m.payload = std::move(payload);
  stack_.send_message(to, m);
}

void Protocol::broadcast(std::uint8_t tag, Slice payload) const {
  Message m;
  m.path = id_;
  m.tag = tag;
  m.payload = std::move(payload);
  stack_.broadcast_message(m);
}

void Protocol::trace(TracePhase ph, std::uint64_t arg, std::uint8_t sub) const {
  stack_.trace_phase(id_, ph, arg, sub);
}

void Protocol::drop_invalid() const { stack_.note_invalid(id_); }

void Protocol::complete() const { stack_.note_complete(id_, spawn_ns_); }

}  // namespace ritas
