// Base class for every protocol instance — the paper's "control block".
//
// A Protocol owns its child protocol instances (control block chaining,
// §3.3): creating a parent creates children as needed, destroying a parent
// destroys the whole subtree, and the stack's registry maps instance paths
// to live control blocks for demultiplexing. Protocols are passive state
// machines: they only run inside `on_message` / child-delivery callbacks
// and the explicit API calls (`propose`, `bcast`) of their concrete types.
// No protocol ever blocks, sleeps, or reads a clock — the stack is
// asynchronous by construction.
#pragma once

#include <map>
#include <memory>

#include "common/buffer.h"
#include "common/bytes.h"
#include "common/trace.h"
#include "core/instance_id.h"
#include "core/types.h"

namespace ritas {

class ProtocolStack;

class Protocol {
 public:
  Protocol(ProtocolStack& stack, Protocol* parent, InstanceId id);
  virtual ~Protocol();

  Protocol(const Protocol&) = delete;
  Protocol& operator=(const Protocol&) = delete;

  const InstanceId& id() const { return id_; }
  Protocol* parent() const { return parent_; }

  /// Handles a message addressed to this instance. `from` is the
  /// authenticated sender; tag/payload come from the decoded Message. The
  /// payload Slice aliases the arrival frame (zero-copy) and may be
  /// retained past this call — it pins the frame's Buffer for as long as
  /// the protocol keeps it.
  virtual void on_message(ProcessId from, std::uint8_t tag,
                          const Slice& payload) = 0;

  /// Creates the child for `c` on demand when a message addressed below
  /// this instance arrives before the child exists. Returning nullptr with
  /// drop=false sends the message to the out-of-context table; drop=true
  /// discards it permanently (path known dead, e.g. already-delivered
  /// broadcast). Default: everything is out-of-context.
  virtual Protocol* spawn_child(const Component& c, bool& drop);

  /// Invoked from the stack's safe point after defer_gc(); concrete types
  /// free completed children here (never from inside delivery callbacks,
  /// where a child may still be on the call stack).
  virtual void collect_garbage() {}

  Protocol* find_child(const Component& c) const;
  std::size_t child_count() const { return children_.size(); }

  /// Transport timestamp at construction; with note_complete() this yields
  /// the instance's spawn->terminal latency.
  std::uint64_t spawn_ns() const { return spawn_ns_; }

 protected:
  /// Takes ownership; the child must have been constructed with
  /// id() == this->id().child(c).
  Protocol& add_child(std::unique_ptr<Protocol> child);
  /// Destroys one child subtree. Only call from API entry points or
  /// collect_garbage(), never from a delivery callback.
  void destroy_child(const Component& c);

  /// Sends to one peer (or loops back locally when to == self). The Slice
  /// may alias an arrival frame (relaying received bytes never copies) or
  /// adopt a freshly built Bytes rvalue.
  void send(ProcessId to, std::uint8_t tag, Slice payload) const;
  /// Sends to every process in the group, self included (local loopback).
  /// Encodes the frame exactly once regardless of n.
  void broadcast(std::uint8_t tag, Slice payload) const;

  /// Records a phase-transition trace event for this instance.
  void trace(TracePhase ph, std::uint64_t arg = 0, std::uint8_t sub = 0) const;
  /// Counts + traces a protocol-level validation drop (replaces direct
  /// `++stack_.metrics().invalid_dropped`).
  void drop_invalid() const;
  /// Marks the instance's terminal event (deliver/decide): bills the
  /// per-protocol latency histogram and emits a kComplete trace event.
  void complete() const;

  ProtocolStack& stack_;

 private:
  Protocol* const parent_;
  const InstanceId id_;
  std::uint64_t spawn_ns_ = 0;
  std::map<Component, std::unique_ptr<Protocol>> children_;
};

}  // namespace ritas
