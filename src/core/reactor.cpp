#include "core/reactor.h"

#include <cassert>
#include <chrono>

#include "core/stack.h"

namespace ritas {

ReactorPool::ReactorPool() : ReactorPool(Options{}) {}

ReactorPool::ReactorPool(Options o) : opts_(o) {
  reactors_.reserve(opts_.threads);
  for (std::uint32_t i = 0; i < opts_.threads; ++i) {
    reactors_.push_back(std::make_unique<Reactor>(opts_.queue_capacity));
  }
}

ReactorPool::~ReactorPool() { stop(); }

void ReactorPool::pin(GroupId g, std::uint32_t reactor) {
  assert(!running_.load());
  assert(inline_mode() || reactor < opts_.threads);
  pins_[g] = reactor;
}

std::uint32_t ReactorPool::reactor_of(GroupId g) const {
  auto it = pins_.find(g);
  if (it != pins_.end()) return it->second;
  return opts_.threads == 0 ? 0 : g % opts_.threads;
}

void ReactorPool::set_idle_hook(std::uint32_t reactor, std::function<void()> hook) {
  assert(!running_.load());
  if (reactor < reactors_.size()) reactors_[reactor]->idle = std::move(hook);
}

void ReactorPool::start() {
  if (inline_mode() || running_.load()) return;
  stopping_.store(false);
  running_.store(true);
  for (auto& r : reactors_) {
    r->thread = std::thread([this, rp = r.get()] { run(*rp); });
  }
}

void ReactorPool::stop() {
  if (!running_.load()) return;
  stopping_.store(true);
  for (auto& r : reactors_) {
    {
      std::lock_guard<std::mutex> lk(r->m);
    }
    r->cv.notify_one();
  }
  for (auto& r : reactors_) {
    if (r->thread.joinable()) r->thread.join();
  }
  running_.store(false);
}

void ReactorPool::ring_doorbell(Reactor& r) {
  // The empty critical section orders the ring push before the
  // consumer's predicate re-check: the reactor is either not yet waiting
  // (its locked predicate check will see the frame) or waiting (the
  // notify wakes it).
  {
    std::lock_guard<std::mutex> lk(r.m);
  }
  r.cv.notify_one();
}

bool ReactorPool::route(GroupId g, ProtocolStack& stack, ProcessId from, Slice frame) {
  if (inline_mode()) {
    stack.on_packet(from, std::move(frame));
    return true;
  }
  Reactor& r = *reactors_[reactor_of(g)];
  FrameJob job{&stack, from, std::move(frame)};
  while (!r.ring.try_push(std::move(job))) {
    if (!opts_.block_on_full || stopping_.load(std::memory_order_relaxed)) {
      handoff_dropped_.fetch_add(1, std::memory_order_relaxed);
      return false;
    }
    // Backpressure: the transport thread stalls until the reactor makes
    // room. Ring the doorbell in case the reactor is parked, then yield.
    ring_doorbell(r);
    std::this_thread::yield();
  }
  handoff_enqueued_.fetch_add(1, std::memory_order_relaxed);
  ring_doorbell(r);
  return true;
}

void ReactorPool::post(GroupId g, std::function<void()> task) {
  post_to(reactor_of(g), std::move(task));
}

void ReactorPool::post_to(std::uint32_t reactor, std::function<void()> task) {
  if (inline_mode()) {
    task();
    return;
  }
  Reactor& r = *reactors_[reactor];
  {
    std::lock_guard<std::mutex> lk(r.m);
    r.tasks.push_back(std::move(task));
  }
  r.cv.notify_one();
}

void ReactorPool::run(Reactor& r) {
  for (;;) {
    {
      std::unique_lock<std::mutex> lk(r.m);
      r.cv.wait(lk, [&] {
        return stopping_.load(std::memory_order_relaxed) || !r.tasks.empty() ||
               !r.ring.empty();
      });
    }
    // Drain frames FIFO, then tasks, then run the idle hook once. Frames
    // first keeps protocol work ahead of housekeeping under load.
    bool progressed = true;
    while (progressed) {
      progressed = false;
      FrameJob job;
      while (r.ring.try_pop(job)) {
        progressed = true;
        job.stack->on_packet(job.from, std::move(job.frame));
        job = FrameJob{};
      }
      for (;;) {
        std::function<void()> task;
        {
          std::lock_guard<std::mutex> lk(r.m);
          if (r.tasks.empty()) break;
          task = std::move(r.tasks.front());
          r.tasks.pop_front();
        }
        progressed = true;
        task();
        tasks_run_.fetch_add(1, std::memory_order_relaxed);
      }
    }
    if (r.idle) r.idle();
    if (stopping_.load(std::memory_order_relaxed)) {
      // Final sweep so frames and tasks enqueued before stop() still run.
      FrameJob job;
      while (r.ring.try_pop(job)) {
        job.stack->on_packet(job.from, std::move(job.frame));
        job = FrameJob{};
      }
      std::deque<std::function<void()>> rest;
      {
        std::lock_guard<std::mutex> lk(r.m);
        rest.swap(r.tasks);
      }
      for (auto& t : rest) {
        t();
        tasks_run_.fetch_add(1, std::memory_order_relaxed);
      }
      if (r.idle) r.idle();
      return;
    }
  }
}

ReactorPool::Stats ReactorPool::stats() const {
  Stats s;
  s.handoff_enqueued = handoff_enqueued_.load(std::memory_order_relaxed);
  s.handoff_dropped = handoff_dropped_.load(std::memory_order_relaxed);
  s.tasks_run = tasks_run_.load(std::memory_order_relaxed);
  s.queue_depth.reserve(reactors_.size());
  for (const auto& r : reactors_) s.queue_depth.push_back(r->ring.size());
  return s;
}

}  // namespace ritas
