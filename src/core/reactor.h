// ReactorPool — T reactor threads, each owning a disjoint static set of
// consensus groups, fed by per-reactor bounded SPSC handoff rings from
// the single transport poll thread.
//
// The execution model keeps every protocol a single-threaded passive
// reactor: a group is pinned to exactly one reactor (pin(), default
// g % T), so one thread ever touches a stack's state. The transport
// thread is the only producer into every ring (SPSC holds per ring), and
// each reactor drains its ring FIFO — so the frame order a stack
// observes is exactly the arrival order the transport chose, independent
// of T. That is why per-group traces stay bit-identical for a fixed seed
// and pinning: the pool moves work across cores but never reorders it
// within a group, and never lets another group's interleaving leak into
// a stack.
//
// threads == 0 is the inline mode: route() and post() execute on the
// caller's thread, byte-for-byte the pre-pipeline single-thread path (no
// rings, no handoff counters, no extra threads).
//
// Besides frames, a reactor runs posted tasks (post(), any thread →
// mutex-guarded queue, kept separate from the ring so the ring's single-
// producer contract survives) and an optional per-reactor idle hook that
// fires after every drain batch (owners hang stack->pump() and GC off
// it). A full ring applies backpressure by default — the producer spins
// until space, which on the TCP path simply stops reading sockets, the
// same flow control TCP itself provides. With block_on_full=false the
// frame is dropped and counted (handoff_dropped) instead.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/buffer.h"
#include "common/spsc.h"
#include "core/types.h"

namespace ritas {

class ProtocolStack;

class ReactorPool {
 public:
  struct Options {
    /// Reactor thread count; 0 = inline single-thread mode.
    std::uint32_t threads = 0;
    /// Frames buffered per reactor ring (rounded up to a power of two).
    std::size_t queue_capacity = 4096;
    /// Full ring: true = producer spins (backpressure), false = counted drop.
    bool block_on_full = true;
  };

  struct Stats {
    std::uint64_t handoff_enqueued = 0;  ///< frames handed to a ring
    std::uint64_t handoff_dropped = 0;   ///< frames dropped on a full ring
    std::uint64_t tasks_run = 0;         ///< posted tasks executed
    std::vector<std::size_t> queue_depth;  ///< per-reactor ring occupancy
  };

  ReactorPool();  // inline mode (threads = 0)
  explicit ReactorPool(Options o);
  ~ReactorPool();
  ReactorPool(const ReactorPool&) = delete;
  ReactorPool& operator=(const ReactorPool&) = delete;

  std::uint32_t threads() const { return opts_.threads; }
  bool inline_mode() const { return opts_.threads == 0; }

  /// Pins group `g` to reactor `r` (call before start(); r < threads).
  /// Unpinned groups default to g % threads.
  void pin(GroupId g, std::uint32_t reactor);
  std::uint32_t reactor_of(GroupId g) const;

  /// Registers a hook run by reactor `r` after each drain batch (and once
  /// per wakeup). Call before start(). Inline mode ignores hooks — the
  /// caller drives pump() itself, exactly as before the pipeline.
  void set_idle_hook(std::uint32_t reactor, std::function<void()> hook);

  void start();
  void stop();

  /// Hands one inbound frame to the reactor owning `g`. TRANSPORT THREAD
  /// ONLY — the rings are single-producer. Inline mode dispatches on the
  /// caller. Returns false only for a counted drop (full ring with
  /// block_on_full=false, or pool stopped).
  bool route(GroupId g, ProtocolStack& stack, ProcessId from, Slice frame);

  /// Runs `task` on the reactor owning `g`; callable from any thread.
  /// Inline mode executes immediately on the caller.
  void post(GroupId g, std::function<void()> task);
  void post_to(std::uint32_t reactor, std::function<void()> task);

  Stats stats() const;

 private:
  struct FrameJob {
    ProtocolStack* stack = nullptr;
    ProcessId from = 0;
    Slice frame;
  };

  struct Reactor {
    explicit Reactor(std::size_t cap) : ring(cap) {}
    SpscQueue<FrameJob> ring;
    std::mutex m;
    std::condition_variable cv;
    std::deque<std::function<void()>> tasks;
    std::function<void()> idle;
    std::thread thread;
  };

  void run(Reactor& r);
  void ring_doorbell(Reactor& r);

  Options opts_;
  std::vector<std::unique_ptr<Reactor>> reactors_;
  std::unordered_map<GroupId, std::uint32_t> pins_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<std::uint64_t> handoff_enqueued_{0};
  std::atomic<std::uint64_t> handoff_dropped_{0};
  std::atomic<std::uint64_t> tasks_run_{0};
};

}  // namespace ritas
