#include "core/reliable_broadcast.h"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace ritas {

ReliableBroadcast::ReliableBroadcast(ProtocolStack& stack, Protocol* parent,
                                     InstanceId id, ProcessId origin,
                                     Attribution attr, DeliverFn deliver)
    : RbAlgorithm(stack, parent, std::move(id)),
      origin_(origin),
      attr_(attr),
      deliver_(std::move(deliver)),
      echoed_(stack.n(), false),
      readied_(stack.n(), false) {
  assert(origin_ < stack.n());
}

void ReliableBroadcast::bcast(Slice payload) {
  if (origin_ != stack_.self()) {
    throw std::logic_error("ReliableBroadcast::bcast: not the origin");
  }
  if (sent_init_) {
    throw std::logic_error("ReliableBroadcast::bcast: already broadcast");
  }
  sent_init_ = true;
  stack_.metrics().count_broadcast_start(ProtocolType::kReliableBroadcast, attr_);
  trace(TracePhase::kRbInit, static_cast<std::uint64_t>(attr_));

  Adversary* adv = stack_.adversary();
  std::optional<Bytes> equivocation =
      adv != nullptr ? adv->rb_equivocate(payload) : std::nullopt;
  if (equivocation) {
    // Byzantine origin: even peers get `payload`, odd peers the alternate.
    const Slice alt(std::move(*equivocation));
    for (ProcessId p = 0; p < stack_.n(); ++p) {
      send(p, kInit, p % 2 == 0 ? payload : alt);
    }
    return;
  }
  broadcast(kInit, std::move(payload));
}

void ReliableBroadcast::on_message(ProcessId from, std::uint8_t tag,
                                   const Slice& payload) {
  switch (tag) {
    case kInit:
      on_init(from, payload);
      return;
    case kEcho:
      on_echo(from, payload);
      return;
    case kReady:
      on_ready(from, payload);
      return;
    default:
      drop_invalid();
  }
}

void ReliableBroadcast::on_init(ProcessId from, const Slice& payload) {
  // Only the origin may INIT, and only its first INIT counts.
  if (from != origin_ || seen_init_) {
    drop_invalid();
    return;
  }
  seen_init_ = true;
  if (!sent_echo_) {
    sent_echo_ = true;
    trace(TracePhase::kRbEcho);
    // Relay the received bytes without copying: the ECHO shares the INIT
    // frame's buffer until its own frame is encoded.
    broadcast(kEcho, payload);
  }
}

void ReliableBroadcast::on_echo(ProcessId from, const Slice& payload) {
  if (echoed_[from]) {
    drop_invalid();
    return;
  }
  echoed_[from] = true;
  Tally& t = tally_for(payload);
  ++t.echoes;
  maybe_send_ready(t);
}

void ReliableBroadcast::on_ready(ProcessId from, const Slice& payload) {
  if (readied_[from]) {
    drop_invalid();
    return;
  }
  readied_[from] = true;
  Tally& t = tally_for(payload);
  ++t.readies;
  maybe_send_ready(t);
  maybe_deliver(t);
}

ReliableBroadcast::Tally& ReliableBroadcast::tally_for(const Slice& payload) {
  const Sha1::Digest digest = Sha1::hash(payload);
  auto [it, inserted] = tallies_.try_emplace(digest);
  if (inserted) {
    // Keep a zero-copy alias of the first frame carrying these bytes; it
    // pins that frame until the instance is garbage-collected.
    it->second.payload = payload;
  }
  return it->second;
}

void ReliableBroadcast::maybe_send_ready(Tally& t) {
  const Quorums& q = stack_.quorums();
  if (sent_ready_) return;
  if (t.echoes >= q.rb_echo_threshold() || t.readies >= q.rb_ready_relay()) {
    sent_ready_ = true;
    trace(TracePhase::kRbReady);
    broadcast(kReady, t.payload);
  }
}

void ReliableBroadcast::maybe_deliver(Tally& t) {
  if (delivered_) return;
  if (t.readies >= stack_.quorums().rb_deliver_threshold()) {
    delivered_ = true;
    trace(TracePhase::kRbDeliver);
    complete();
    if (deliver_) deliver_(t.payload);
  }
}

}  // namespace ritas
