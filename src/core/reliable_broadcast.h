// Bracha's reliable broadcast (paper §2.2).
//
// One instance = one broadcast by `origin`, identified across all processes
// by the same instance path. Properties: all correct processes deliver the
// same message (agreement/totality), and if the origin is correct its
// message is delivered (validity). Three communication steps:
//
//   origin:   broadcast (INIT, m)
//   on INIT:  broadcast (ECHO, m)
//   on floor((n+f)/2)+1 ECHO(m)  or f+1 READY(m):  broadcast (READY, m)
//   on 2f+1 READY(m): deliver m
//
// ECHO/READY tallies are tracked per payload digest so a Byzantine origin
// that equivocates merely splits the quorums; each peer's first ECHO and
// first READY are the only ones counted.
#pragma once

#include <functional>
#include <map>

#include "common/bytes.h"
#include "core/protocol.h"
#include "core/stack.h"
#include "core/variants.h"
#include "crypto/sha1.h"

namespace ritas {

class ReliableBroadcast final : public RbAlgorithm {
 public:
  static constexpr std::uint8_t kInit = 0;
  static constexpr std::uint8_t kEcho = 1;
  static constexpr std::uint8_t kReady = 2;

  void bcast(Slice payload) override;

  void on_message(ProcessId from, std::uint8_t tag,
                  const Slice& payload) override;

  ProcessId origin() const override { return origin_; }
  bool delivered() const override { return delivered_; }

 private:
  // Construction only through the factory (core/variants.h): the variant
  // selected by StackConfig::variants must be uniform across every
  // construction site, so no caller may hard-code this class.
  friend std::unique_ptr<RbAlgorithm> make_rb(ProtocolStack&, Protocol*,
                                              InstanceId, ProcessId,
                                              Attribution,
                                              RbAlgorithm::DeliverFn);

  ReliableBroadcast(ProtocolStack& stack, Protocol* parent, InstanceId id,
                    ProcessId origin, Attribution attr, DeliverFn deliver);

  struct Tally {
    Slice payload;  // aliases the first frame that carried these bytes
    std::uint32_t echoes = 0;
    std::uint32_t readies = 0;
  };

  void on_init(ProcessId from, const Slice& payload);
  void on_echo(ProcessId from, const Slice& payload);
  void on_ready(ProcessId from, const Slice& payload);
  Tally& tally_for(const Slice& payload);
  void maybe_send_ready(Tally& t);
  void maybe_deliver(Tally& t);

  const ProcessId origin_;
  const Attribution attr_;
  DeliverFn deliver_;

  bool sent_init_ = false;
  bool seen_init_ = false;
  bool sent_echo_ = false;
  bool sent_ready_ = false;
  bool delivered_ = false;
  std::vector<bool> echoed_;   // peers whose ECHO we already counted
  std::vector<bool> readied_;  // peers whose READY we already counted
  std::map<Sha1::Digest, Tally> tallies_;
};

}  // namespace ritas
