#include "core/signed_echo_broadcast.h"

#include <cassert>
#include <stdexcept>

#include "common/serialize.h"
#include "crypto/sha256.h"

namespace ritas {

SignedEchoBroadcast::SignedEchoBroadcast(
    ProtocolStack& stack, Protocol* parent, InstanceId id, ProcessId origin,
    Attribution attr, std::shared_ptr<const RsaDirectory> dir,
    SignatureCosts costs, DeliverFn deliver)
    : Protocol(stack, parent, std::move(id)),
      origin_(origin),
      attr_(attr),
      dir_(std::move(dir)),
      costs_(costs),
      deliver_(std::move(deliver)),
      echo_sigs_(stack.n()) {
  assert(origin_ < stack.n());
  assert(dir_ && dir_->pubs.size() == stack.n());
}

Bytes SignedEchoBroadcast::echo_statement(ByteView m) const {
  Writer w;
  w.str("echo");
  const auto h = Sha256::hash(m);
  w.raw(ByteView(h.data(), h.size()));
  return std::move(w).take();
}

void SignedEchoBroadcast::bcast(Slice payload) {
  if (origin_ != stack_.self()) {
    throw std::logic_error("SignedEchoBroadcast::bcast: not the origin");
  }
  if (sent_init_) {
    throw std::logic_error("SignedEchoBroadcast::bcast: already broadcast");
  }
  sent_init_ = true;
  stack_.metrics().count_broadcast_start(ProtocolType::kEchoBroadcast, attr_);
  trace(TracePhase::kSebInit, static_cast<std::uint64_t>(attr_));

  stack_.charge_cpu(costs_.sign_ns);
  const Bytes sig = rsa_sign(dir_->self, payload);
  Writer w;
  w.bytes(payload);
  w.bytes(sig);
  broadcast(kInit, std::move(w).take());
}

void SignedEchoBroadcast::on_message(ProcessId from, std::uint8_t tag,
                                     const Slice& payload) {
  switch (tag) {
    case kInit:
      on_init(from, payload);
      return;
    case kEcho:
      on_echo(from, payload);
      return;
    case kCommit:
      on_commit(from, payload);
      return;
    default:
      drop_invalid();
  }
}

void SignedEchoBroadcast::on_init(ProcessId from, const Slice& payload) {
  if (from != origin_ || seen_init_) {
    drop_invalid();
    return;
  }
  // Slice the embedded message out of the frame instead of copying it.
  Reader r(payload.view());
  const std::uint32_t mlen = r.u32();
  if (!r.ok() || r.remaining() < mlen) {
    drop_invalid();
    return;
  }
  const Slice m = payload.subslice(r.pos(), mlen);
  r.skip(mlen);
  const Bytes sig = r.bytes();
  if (!r.done()) {
    drop_invalid();
    return;
  }
  stack_.charge_cpu(costs_.verify_ns);
  if (!rsa_verify(dir_->pubs[origin_], m, sig)) {
    drop_invalid();
    return;
  }
  seen_init_ = true;
  msg_ = m;
  stack_.charge_cpu(costs_.sign_ns);
  trace(TracePhase::kSebEcho);
  send(origin_, kEcho, rsa_sign(dir_->self, echo_statement(m)));
}

void SignedEchoBroadcast::on_echo(ProcessId from, const Slice& payload) {
  if (stack_.self() != origin_ || sent_commit_ || echo_sigs_[from].has_value()) {
    drop_invalid();
    return;
  }
  if (!seen_init_) return;  // our own INIT has not looped back yet
  stack_.charge_cpu(costs_.verify_ns);
  if (!rsa_verify(dir_->pubs[from], echo_statement(msg_), payload)) {
    drop_invalid();
    return;
  }
  echo_sigs_[from] = payload;  // aliases the ECHO frame until COMMIT
  if (++echo_count_ < stack_.quorums().rb_echo_threshold()) return;

  sent_commit_ = true;
  trace(TracePhase::kSebCommit);
  Writer w;
  w.bytes(msg_);
  w.u32(echo_count_);
  for (ProcessId i = 0; i < stack_.n(); ++i) {
    if (echo_sigs_[i]) {
      w.u32(i);
      w.bytes(*echo_sigs_[i]);
    }
  }
  broadcast(kCommit, std::move(w).take());
}

void SignedEchoBroadcast::on_commit(ProcessId from, const Slice& payload) {
  if (from != origin_ || seen_commit_) {
    drop_invalid();
    return;
  }
  Reader r(payload.view());
  const std::uint32_t mlen = r.u32();
  if (!r.ok() || r.remaining() < mlen) {
    drop_invalid();
    return;
  }
  const Slice m = payload.subslice(r.pos(), mlen);
  r.skip(mlen);
  const std::uint32_t count = r.u32();
  if (!r.ok() || count > stack_.n()) {
    drop_invalid();
    return;
  }
  const Bytes statement = echo_statement(m);
  std::vector<bool> seen(stack_.n(), false);
  std::uint32_t valid = 0;
  for (std::uint32_t k = 0; k < count; ++k) {
    const std::uint32_t i = r.u32();
    const Bytes sig = r.bytes();
    if (!r.ok() || i >= stack_.n() || seen[i]) break;
    seen[i] = true;
    stack_.charge_cpu(costs_.verify_ns);
    if (rsa_verify(dir_->pubs[i], statement, sig)) ++valid;
  }
  if (!r.done() || valid < stack_.quorums().rb_echo_threshold()) {
    drop_invalid();
    return;
  }
  seen_commit_ = true;
  if (!delivered_) {
    delivered_ = true;
    trace(TracePhase::kSebDeliver);
    complete();
    if (deliver_) deliver_(m);
  }
}

}  // namespace ritas
