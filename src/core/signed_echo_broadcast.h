// Reiter's echo multicast with digital signatures — the BASELINE.
//
// This is the protocol RITAS's matrix echo broadcast replaces (§2.3): the
// original Rampart primitive in which the origin signs the message, each
// receiver echoes a signature over it back to the origin, and the origin
// distributes a certificate of floor((n+f)/2)+1 echo signatures. The paper
// quotes Reiter: "public-key operations still dominate the latency of
// reliable multicast" — this implementation exists so `bench_signatures`
// can measure exactly that claim against the hash-vector variant.
//
//   origin:  broadcast (INIT, m, sig_origin(m))
//   p_i:     verify; send (ECHO, sig_i("echo" ‖ H(m))) to origin
//   origin:  on floor((n+f)/2)+1 valid echo signatures:
//            broadcast (COMMIT, m, {(i, sig_i)})
//   p_j:     verify >= threshold echo signatures; deliver m
//
// Every sign/verify performs REAL RSA (crypto/rsa.h) and additionally
// bills the configured modeled CPU cost to the simulated host, so the
// simulated latencies reflect era hardware while correctness is enforced
// by actual cryptography.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "core/protocol.h"
#include "core/stack.h"
#include "crypto/rsa.h"

namespace ritas {

/// Every process's public key plus this process's keypair, dealt out of
/// band like the symmetric keys.
struct RsaDirectory {
  std::vector<RsaPublicKey> pubs;
  RsaKeyPair self;
};

/// Modeled per-operation CPU on the target hardware (defaults approximate
/// 512-bit RSA on a 500 MHz Pentium III).
struct SignatureCosts {
  std::uint64_t sign_ns = 4'000'000;   // 4 ms
  std::uint64_t verify_ns = 400'000;   // 0.4 ms (e = 65537)
};

class SignedEchoBroadcast final : public Protocol {
 public:
  /// Delivered Slice aliases the COMMIT arrival frame (zero-copy).
  using DeliverFn = std::function<void(Slice payload)>;

  static constexpr std::uint8_t kInit = 0;
  static constexpr std::uint8_t kEcho = 1;
  static constexpr std::uint8_t kCommit = 2;

  SignedEchoBroadcast(ProtocolStack& stack, Protocol* parent, InstanceId id,
                      ProcessId origin, Attribution attr,
                      std::shared_ptr<const RsaDirectory> dir,
                      SignatureCosts costs, DeliverFn deliver);

  void bcast(Slice payload);
  void on_message(ProcessId from, std::uint8_t tag,
                  const Slice& payload) override;

  ProcessId origin() const { return origin_; }
  bool delivered() const { return delivered_; }

 private:
  Bytes echo_statement(ByteView m) const;
  void on_init(ProcessId from, const Slice& payload);
  void on_echo(ProcessId from, const Slice& payload);
  void on_commit(ProcessId from, const Slice& payload);

  const ProcessId origin_;
  const Attribution attr_;
  std::shared_ptr<const RsaDirectory> dir_;
  SignatureCosts costs_;
  DeliverFn deliver_;

  bool sent_init_ = false;
  bool seen_init_ = false;
  bool seen_commit_ = false;
  bool sent_commit_ = false;
  bool delivered_ = false;
  Slice msg_;  // embedded message, sliced out of the INIT frame
  std::vector<std::optional<Slice>> echo_sigs_;  // origin role, per peer
  std::uint32_t echo_count_ = 0;
};

}  // namespace ritas
