#include "core/stack.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "common/log.h"

namespace ritas {

ProtocolStack::ProtocolStack(StackConfig cfg, Transport& transport,
                             const KeyChain& keys, std::uint64_t rng_seed,
                             Adversary* adversary)
    : cfg_(cfg),
      quorums_(cfg.n),
      transport_(transport),
      keys_(keys),
      rng_(rng_seed),
      adversary_(adversary),
      ooc_fifo_(cfg.n),
      ooc_count_(cfg.n, 0) {
  if (cfg_.n < 4) throw std::invalid_argument("ProtocolStack: need n >= 4 (n >= 3f+1, f >= 1)");
  if (cfg_.self >= cfg_.n) throw std::invalid_argument("ProtocolStack: self out of range");
  if (cfg_.reactor_threads > 64 || cfg_.crypto_threads > 64) {
    throw std::invalid_argument(
        "ProtocolStack: reactor_threads/crypto_threads must be <= 64");
  }
  validate_variants(cfg_.variants, cfg_.n, cfg_.coin_mode);
}

ProtocolStack::~ProtocolStack() = default;

void ProtocolStack::on_packet(ProcessId from, Slice frame) {
  if (from >= cfg_.n || from == cfg_.self) {
    ++metrics_.malformed_dropped;
    trace_drop(TraceDrop::kMalformed, from, {});
    return;
  }
  auto msg = Message::decode(frame);
  if (!msg) {
    ++metrics_.malformed_dropped;
    trace_drop(TraceDrop::kMalformed, from, {});
    return;
  }
  if (msg->group != cfg_.group) {
    // A frame for another consensus group. On a shared mesh the GroupMux
    // routes by group before stacks see frames, so reaching here means a
    // Byzantine or misconfigured peer — a counted drop, never a throw.
    ++metrics_.foreign_group_dropped;
    trace_drop(TraceDrop::kForeignGroup, from, msg->path.trace_path());
    return;
  }
  ++metrics_.msgs_received;
  metrics_.payload_bytes_aliased += msg->payload.size();
  if (tracer_ != nullptr) {
    tracer_->record({now_ns(), TraceEventKind::kRecv, msg->tag, from,
                     frame.size(), msg->path.trace_path()});
  }
  dispatch(from, std::move(*msg));
  pump();
}

void ProtocolStack::charge_cpu(std::uint64_t ns) { transport_.charge_cpu(ns); }

void ProtocolStack::note_complete(const InstanceId& id, std::uint64_t spawn_ns) {
  const std::uint64_t now = now_ns();
  const std::uint64_t latency = now >= spawn_ns ? now - spawn_ns : 0;
  metrics_.proto_latency_ns[static_cast<std::size_t>(id.leaf().type) %
                            kTraceProtoSlots]
      .add(latency);
  if (tracer_ != nullptr) {
    tracer_->record({now, TraceEventKind::kComplete, 0, 0xffffffffu, latency,
                     id.trace_path()});
  }
}

void ProtocolStack::note_invalid(const InstanceId& id) {
  ++metrics_.invalid_dropped;
  trace_drop(TraceDrop::kInvalid, 0xffffffffu, id.trace_path());
}

void ProtocolStack::send_message(ProcessId to, const Message& m0) {
  if (to >= cfg_.n) throw std::invalid_argument("send_message: bad destination");
  // Protocols never set the group; the stack stamps every outbound frame
  // with its own (the demux key on a shared mesh).
  Message m = m0;
  m.group = cfg_.group;
  if (to == cfg_.self) {
    self_queue_.push_back(std::move(m));
    return;
  }
  if (adversary_ != nullptr && adversary_->omit_to(to)) return;
  Buffer frame = m.encode();
  ++metrics_.frames_encoded;
  ++metrics_.msgs_sent;
  metrics_.bytes_sent += frame.size();
  if (tracer_ != nullptr) {
    tracer_->record({now_ns(), TraceEventKind::kSend, m.tag, to, frame.size(),
                     m.path.trace_path()});
  }
  transport_.send(to, std::move(frame));
}

void ProtocolStack::broadcast_message(const Message& m0) {
  // Encode exactly once and share the refcounted frame across every peer
  // (the self copy loops back as a Message and never needs a frame at
  // all). Encoding is lazy so a fully-omitting adversary encodes nothing.
  Message m = m0;
  m.group = cfg_.group;
  Buffer frame;
  for (ProcessId p = 0; p < cfg_.n; ++p) {
    if (p == cfg_.self) {
      self_queue_.push_back(m);
      continue;
    }
    if (adversary_ != nullptr && adversary_->omit_to(p)) continue;
    if (frame.empty()) {
      frame = m.encode();
      ++metrics_.frames_encoded;
    }
    ++metrics_.msgs_sent;
    metrics_.bytes_sent += frame.size();
    if (tracer_ != nullptr) {
      tracer_->record({now_ns(), TraceEventKind::kSend, m.tag, p, frame.size(),
                       m.path.trace_path()});
    }
    transport_.send(p, frame);
  }
}

void ProtocolStack::register_instance(Protocol* p) {
  assert(p != nullptr);
  auto [it, inserted] = registry_.emplace(p->id(), p);
  if (!inserted) {
    throw std::logic_error("duplicate protocol instance: " + p->id().to_string());
  }
  if (tracer_ != nullptr) {
    tracer_->record({now_ns(), TraceEventKind::kInstanceSpawn, 0, 0xffffffffu,
                     0, p->id().trace_path()});
  }
  // Drain parked messages for this instance AND for paths below it — the
  // new instance may spawn the children on demand during redispatch.
  if (ooc_total_ > 0) {
    for (const auto& [path, entries] : ooc_) {
      (void)entries;
      if (p->id().is_prefix_of(path)) drain_queue_.push_back(path);
    }
  }
}

void ProtocolStack::unregister_instance(Protocol* p) {
  registry_.erase(p->id());
  if (tracer_ != nullptr) {
    tracer_->record({now_ns(), TraceEventKind::kInstanceDestroy, 0,
                     0xffffffffu, 0, p->id().trace_path()});
  }
  // Paper §3.4: purge out-of-context messages for destroyed instances so
  // they are not kept indefinitely.
  ooc_purge_prefix(p->id());
  std::erase(gc_queue_, p);
}

void ProtocolStack::retry_ooc(const InstanceId& prefix) {
  for (const auto& [path, entries] : ooc_) {
    (void)entries;
    if (prefix.is_prefix_of(path)) drain_queue_.push_back(path);
  }
}

void ProtocolStack::defer_gc(Protocol* p) {
  if (std::find(gc_queue_.begin(), gc_queue_.end(), p) == gc_queue_.end()) {
    gc_queue_.push_back(p);
  }
}

void ProtocolStack::pump() {
  if (pumping_) return;
  pumping_ = true;
  while (!self_queue_.empty() || !drain_queue_.empty() || !gc_queue_.empty()) {
    if (!self_queue_.empty()) {
      Message m = std::move(self_queue_.front());
      self_queue_.pop_front();
      dispatch(cfg_.self, std::move(m));
      continue;
    }
    if (!drain_queue_.empty()) {
      InstanceId path = std::move(drain_queue_.front());
      drain_queue_.pop_front();
      auto it = ooc_.find(path);
      if (it == ooc_.end()) continue;
      std::vector<OocEntry> entries = std::move(it->second);
      ooc_.erase(it);
      for (auto& e : entries) {
        assert(ooc_count_[e.from] > 0);
        --ooc_count_[e.from];
        --ooc_total_;
        ++metrics_.ooc_drained;
        if (tracer_ != nullptr) {
          tracer_->record({now_ns(), TraceEventKind::kOocDrain, 0, e.from, 0,
                           e.msg.path.trace_path()});
        }
        dispatch(e.from, std::move(e.msg));
      }
      continue;
    }
    Protocol* p = gc_queue_.front();
    gc_queue_.pop_front();
    p->collect_garbage();
  }
  pumping_ = false;
}

void ProtocolStack::dispatch(ProcessId from, Message m) {
  bool drop = false;
  Protocol* target = resolve(m.path, drop);
  if (target != nullptr) {
    target->on_message(from, m.tag, m.payload);
    return;
  }
  if (drop) {
    ++metrics_.unroutable_dropped;
    trace_drop(TraceDrop::kUnroutable, from, m.path.trace_path());
    return;
  }
  if (from == cfg_.self) {
    // Local loopback to an instance we have not created is a logic error in
    // a correct process (we never send before creating); drop loudly.
    LOG_WARN("self message to unknown instance %s", m.path.to_string().c_str());
    ++metrics_.unroutable_dropped;
    trace_drop(TraceDrop::kUnroutable, from, m.path.trace_path());
    return;
  }
  ooc_store(from, std::move(m));
}

Protocol* ProtocolStack::resolve(const InstanceId& path, bool& drop) {
  drop = false;
  if (auto it = registry_.find(path); it != registry_.end()) return it->second;

  // Longest registered proper prefix, then spawn-on-demand down the chain.
  Protocol* cur = nullptr;
  for (std::size_t d = path.depth() - 1; d >= 1; --d) {
    if (auto it = registry_.find(path.prefix(d)); it != registry_.end()) {
      cur = it->second;
      break;
    }
    if (d == 1) break;
  }
  if (cur == nullptr) return nullptr;  // root missing: out of context

  while (cur->id().depth() < path.depth()) {
    const Component next = path.at(cur->id().depth());
    Protocol* child = cur->find_child(next);
    if (child == nullptr) {
      child = cur->spawn_child(next, drop);
    }
    if (child == nullptr) return nullptr;  // OOC or drop per `drop`
    cur = child;
  }
  return cur;
}

void ProtocolStack::ooc_store(ProcessId from, Message m) {
  auto& fifo = ooc_fifo_[from];
  while (ooc_count_[from] >= cfg_.ooc_per_sender && !fifo.empty()) {
    auto [seq, path] = fifo.front();
    fifo.pop_front();
    auto it = ooc_.find(path);
    if (it == ooc_.end()) continue;  // stale fifo entry (drained or purged)
    auto& vec = it->second;
    auto ve = std::find_if(vec.begin(), vec.end(),
                           [&](const OocEntry& e) { return e.seq == seq; });
    if (ve == vec.end()) continue;  // stale
    vec.erase(ve);
    if (vec.empty()) ooc_.erase(it);
    --ooc_count_[from];
    --ooc_total_;
    ++metrics_.ooc_evicted;
    if (tracer_ != nullptr) {
      tracer_->record({now_ns(), TraceEventKind::kOocEvict, 0, from, 0,
                       path.trace_path()});
    }
    LOG_WARN("ooc quota: evicted message from p%u", from);
  }
  if (ooc_count_[from] >= cfg_.ooc_per_sender) return;  // quota 0 corner

  const std::uint64_t seq = ++ooc_seq_;
  if (tracer_ != nullptr) {
    tracer_->record({now_ns(), TraceEventKind::kOocStore, 0, from, 0,
                     m.path.trace_path()});
  }
  fifo.emplace_back(seq, m.path);
  ooc_[m.path].push_back(OocEntry{from, std::move(m), seq});
  ++ooc_count_[from];
  ++ooc_total_;
  ++metrics_.ooc_stored;

  // Drains leave stale pairs behind in the FIFO; compact when they
  // dominate so store/drain churn cannot grow the deque without bound.
  if (fifo.size() > 2 * ooc_count_[from] + 64) {
    std::deque<std::pair<std::uint64_t, InstanceId>> live;
    for (const auto& [s, path] : fifo) {
      auto it = ooc_.find(path);
      if (it == ooc_.end()) continue;
      for (const auto& e : it->second) {
        if (e.seq == s) {
          live.emplace_back(s, path);
          break;
        }
      }
    }
    fifo = std::move(live);
  }
}

void ProtocolStack::ooc_purge_prefix(const InstanceId& prefix) {
  for (auto it = ooc_.begin(); it != ooc_.end();) {
    if (prefix.is_prefix_of(it->first)) {
      for (const auto& e : it->second) {
        assert(ooc_count_[e.from] > 0);
        --ooc_count_[e.from];
        --ooc_total_;
      }
      it = ooc_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace ritas
