// ProtocolStack — the per-process RITAS context (the paper's `ritas_t`).
//
// Owns everything one process needs to run the stack: configuration,
// deterministic randomness, metrics, the instance registry used for
// demultiplexing, the out-of-context message table (§3.4), and the local
// delivery pump. Application-facing sessions create root protocol
// instances against a stack; the transport feeds inbound frames through
// `on_packet`.
//
// Threading: a stack is single-threaded by design (the paper's stack runs
// in one thread). All calls — on_packet, protocol API calls — must come
// from the same thread; the TCP facade funnels everything through its
// reactor thread, and the simulator is single-threaded anyway.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "common/trace.h"
#include "core/adversary.h"
#include "crypto/keychain.h"
#include "core/message.h"
#include "core/metrics.h"
#include "core/protocol.h"
#include "core/transport.h"
#include "core/types.h"
#include "core/variants.h"

namespace ritas {


/// Payload batching for the atomic broadcast: many application messages
/// ride one AB_MSG dissemination RB (length-prefixed framing, see
/// docs/PROTOCOLS.md "Batched AB_MSG framing"), amortizing the per-message
/// dissemination and agreement cost. The flag changes the AB_MSG wire
/// format, so all correct processes in a group must configure it
/// identically (like every other StackConfig protocol switch).
struct AbBatchConfig {
  /// Off by default: AB_MSG payloads are the raw application bytes,
  /// exactly the paper's wire format.
  bool enabled = false;
  /// Seal the open batch once it holds this many messages...
  std::uint32_t max_batch_msgs = 64;
  /// ...or once its framed payload reaches this many bytes.
  std::uint32_t max_batch_bytes = 16 * 1024;
};

struct StackConfig {
  std::uint32_t n = 4;
  ProcessId self = 0;

  /// Consensus group this stack runs. Several stacks (one per group) can
  /// share one transport mesh; every outbound frame is stamped with the
  /// group, inbound frames for other groups are counted drops
  /// (`foreign_group_dropped`), and a GroupMux routes shared-mesh traffic
  /// to the owning stack. Group 0 (the default) keeps the original
  /// single-group wire format bit-for-bit.
  GroupId group = 0;

  CoinMode coin_mode = CoinMode::kLocal;

  /// Which algorithm runs each swappable layer (core/variants.h). The
  /// default is the paper's Bracha pair, bit-identical to the pre-variant
  /// stack; like every wire-format switch, all correct processes of a
  /// group must select the same variants. Validated (with n and
  /// coin_mode) in the ProtocolStack constructor — invalid combinations
  /// throw std::invalid_argument at config time, never on the packet path.
  VariantConfig variants;

  /// Atomic broadcast payload batching (see AbBatchConfig).
  AbBatchConfig ab_batch;

  /// Out-of-context quota per *sender*: a Byzantine flooder can only evict
  /// its own buffered messages, never another process's (extension beyond
  /// the paper; see DESIGN.md §5.4).
  std::size_t ooc_per_sender = 2048;

  /// How many rounds ahead of the local round consensus protocols accept
  /// spawn-on-demand children (further-ahead traffic goes out-of-context).
  std::uint32_t round_window = 8;

  /// How far beyond the last delivered rbid per origin the atomic
  /// broadcast accepts new AB_MSG broadcast instances.
  std::uint64_t ab_msg_window = 8192;

  // --- execution-pipeline knobs (carried, not consumed) -------------------
  // The stack itself is a single-threaded passive reactor and ignores
  // these; they ride on the config so service harnesses (ritas::Context,
  // smr sharded deployments) agree on how many reactor threads run the
  // groups and how many crypto workers the transport uses. 0 = inline
  // single-thread execution, bit-identical to the pre-pipeline stack.
  // Validated (<= 64) in the ProtocolStack constructor and again by the
  // harness that consumes them.
  std::uint32_t reactor_threads = 0;
  std::uint32_t crypto_threads = 0;

  // --- ablation switches (benchmarks only; defaults = the paper's design) --
  /// Use reliable broadcast instead of echo broadcast for the MVC VECT
  /// phase — undoes the paper's §2.5 optimization to measure its value.
  bool mvc_vect_via_rb = false;
  /// Disable the binary consensus validation rule (§2.4) — shows what the
  /// "causing processes that do not follow the protocol to be ignored"
  /// mechanism buys under attack.
  bool bc_disable_validation = false;

  // --- test-only fault injection (never set in production paths) ----------
  /// Weakens the binary consensus decide rule: decide as soon as a step-1
  /// majority reaches the adopt threshold, skipping the step-2/3
  /// confirmation exchanges and their floor((n+f)/2)+1 decide quorum — the
  /// decide-on-prepare-instead-of-commit bug.
  /// A deliberately broken implementation that decides before agreement is
  /// locked in: under a split proposal vector, two processes whose first
  /// n-f step-1 values have opposite majorities decide opposite ways.
  /// Exists solely as a known-bug target for the schedule-exploration
  /// harness (src/sim/explore.h): the explorer's oracles must find an
  /// agreement violation under this flag (asserted in tests/test_explore.cpp).
  bool test_weak_bc_quorum = false;

  Quorums quorums() const { return Quorums(n); }
};

class ProtocolStack {
 public:
  /// `keys` must hold this process's row of pairwise secrets (s_self,j for
  /// all j) and outlive the stack. `adversary` may be null (correct
  /// process); it is borrowed, not owned.
  ProtocolStack(StackConfig cfg, Transport& transport, const KeyChain& keys,
                std::uint64_t rng_seed, Adversary* adversary = nullptr);
  ~ProtocolStack();

  ProtocolStack(const ProtocolStack&) = delete;
  ProtocolStack& operator=(const ProtocolStack&) = delete;

  const StackConfig& config() const { return cfg_; }
  const Quorums& quorums() const { return quorums_; }
  ProcessId self() const { return cfg_.self; }
  GroupId group() const { return cfg_.group; }
  std::uint32_t n() const { return cfg_.n; }
  const KeyChain& keys() const { return keys_; }
  Rng& rng() { return rng_; }
  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }
  Adversary* adversary() const { return adversary_; }

  /// Entry point for the transport: a frame arrived from peer `from`.
  /// Decodes (the payload stays a zero-copy Slice into `frame`),
  /// dispatches, then drains all internally queued work. The frame's
  /// Buffer is pinned for as long as any protocol holds the payload.
  void on_packet(ProcessId from, Slice frame);

  /// Bills modeled CPU time for expensive local work (see
  /// Transport::charge_cpu).
  void charge_cpu(std::uint64_t ns);

  // --- observability -----------------------------------------------------
  /// Attaches a per-process event tracer (nullptr detaches). Not owned;
  /// must outlive the stack or be detached first. With no tracer attached
  /// every trace site is a single pointer test.
  void set_tracer(Tracer* t) { tracer_ = t; }
  Tracer* tracer() const { return tracer_; }
  bool tracing() const { return tracer_ != nullptr && tracer_->enabled(); }

  /// Timestamp source for traces and latency histograms: virtual time in
  /// the sim, monotonic clock on the TCP transport, constant 0 on
  /// clock-less test loopbacks. Only differences are meaningful.
  std::uint64_t now_ns() const { return transport_.now_ns(); }

  /// Records a protocol phase transition (no-op without a tracer). `sub`
  /// carries the phase-specific detail byte documented on TracePhase.
  void trace_phase(const InstanceId& id, TracePhase ph, std::uint64_t arg = 0,
                   std::uint8_t sub = 0) {
    if (tracer_ != nullptr) {
      tracer_->record(
          {now_ns(), TraceEventKind::kPhase, static_cast<std::uint8_t>(ph),
           0xffffffffu, arg, id.trace_path(), sub});
    }
  }
  /// Terminal deliver/decide: bills the per-protocol latency histogram and
  /// records a kComplete event carrying the spawn->now latency.
  void note_complete(const InstanceId& id, std::uint64_t spawn_ns);
  /// Protocol-level validation failure: counts the drop and traces it.
  void note_invalid(const InstanceId& id);

  /// Outbound path used by protocols. `to == self` loops back locally
  /// without touching the transport.
  void send_message(ProcessId to, const Message& m);
  /// Sends to all n processes (self via local loopback).
  void broadcast_message(const Message& m);

  // --- registry (called by Protocol's ctor/dtor) -------------------------
  void register_instance(Protocol* p);
  void unregister_instance(Protocol* p);

  /// Re-attempts dispatch of out-of-context messages whose path has the
  /// given prefix — call after a spawn window advances.
  void retry_ooc(const InstanceId& prefix);
  /// Schedules `p->collect_garbage()` at the next safe point.
  void defer_gc(Protocol* p);

  /// Drains queued local work (self-deliveries, OOC drains, GC). Invoked
  /// automatically from on_packet and from protocol sends issued outside a
  /// dispatch; harnesses may also call it directly after API calls.
  void pump();

  // --- introspection (tests) ---------------------------------------------
  std::size_t instance_count() const { return registry_.size(); }
  bool has_instance(const InstanceId& id) const { return registry_.contains(id); }
  std::size_t ooc_size() const { return ooc_total_; }

 private:
  struct OocEntry {
    ProcessId from;
    Message msg;
    std::uint64_t seq;
  };

  void trace_drop(TraceDrop d, std::uint32_t peer, TracePath path) {
    if (tracer_ != nullptr) {
      tracer_->record({now_ns(), TraceEventKind::kDrop,
                       static_cast<std::uint8_t>(d), peer, 0, path});
    }
  }

  void dispatch(ProcessId from, Message m);
  /// Finds or spawns the instance for `path`. nullptr with drop=false means
  /// "out of context"; drop=true means discard.
  Protocol* resolve(const InstanceId& path, bool& drop);
  void ooc_store(ProcessId from, Message m);
  void ooc_purge_prefix(const InstanceId& prefix);

  StackConfig cfg_;
  Quorums quorums_;
  Transport& transport_;
  const KeyChain& keys_;
  Rng rng_;
  Metrics metrics_;
  Adversary* adversary_;
  Tracer* tracer_ = nullptr;

  std::unordered_map<InstanceId, Protocol*, InstanceIdHash> registry_;

  // Out-of-context table: exact-path index plus per-sender FIFO for quota
  // eviction.
  std::unordered_map<InstanceId, std::vector<OocEntry>, InstanceIdHash> ooc_;
  std::vector<std::deque<std::pair<std::uint64_t, InstanceId>>> ooc_fifo_;
  std::vector<std::size_t> ooc_count_;
  std::size_t ooc_total_ = 0;
  std::uint64_t ooc_seq_ = 0;

  std::deque<Message> self_queue_;
  std::deque<InstanceId> drain_queue_;
  std::deque<Protocol*> gc_queue_;
  bool pumping_ = false;

  friend class Protocol;
};

}  // namespace ritas
