// The reliable-channel abstraction under the protocol stack (paper §2.1).
//
// A Transport is the stack's view of "TCP + IPSec AH": point-to-point
// channels to every peer that are reliable (no loss between correct
// processes), FIFO per pair, and integrity-protected with authenticated
// sender identity. Implementations: the discrete-event LAN simulator
// (sim/), the real TCP transport (net/), and an in-memory loopback used by
// unit tests.
#pragma once

#include <vector>

#include "common/buffer.h"
#include "common/bytes.h"
#include "core/types.h"

namespace ritas {

/// Health of one pairwise channel, as reported by transports that manage
/// real links (net/). The reliable-channel abstraction says links between
/// correct processes are *eventually* up; self-healing transports cycle
/// kUp -> kBackoff -> kConnecting -> kUp on failures instead of dying.
enum class LinkState : std::uint8_t {
  kDown = 0,        // no connection and no retry scheduled (acceptor side)
  kConnecting = 1,  // TCP connect or session handshake in progress
  kUp = 2,          // handshake complete; frames flow
  kBackoff = 3,     // dialer waiting out a jittered backoff before retrying
};

class Transport {
 public:
  virtual ~Transport() = default;

  /// Queues `frame` for delivery to process `to`. The Slice shares the
  /// frame's refcounted Buffer — broadcast fan-out passes the SAME encoded
  /// frame to every peer, so implementations must not mutate it. Must not
  /// call back into the stack synchronously. `to` != self.
  virtual void send(ProcessId to, Slice frame) = 0;

  /// Bills `ns` of *modeled* CPU time to this process. No-op on real
  /// transports (real CPU time is simply spent); the simulator advances
  /// the host's CPU timeline so expensive operations (the signature
  /// baseline's RSA, notably) delay subsequent sends and receives the way
  /// they would on the paper's 500 MHz testbed.
  virtual void charge_cpu(std::uint64_t ns) { (void)ns; }

  /// Per-peer channel health (index = process id; the self entry reads
  /// kUp). Transports without managed links — the simulator, test
  /// loopbacks — report an empty vector, meaning "links are an
  /// abstraction here, assume up".
  virtual std::vector<LinkState> link_states() const { return {}; }

  /// Current time in nanoseconds for trace timestamps and latency
  /// histograms. The sim reports virtual time (keeping traces
  /// deterministic), real transports report a monotonic clock, and the
  /// default keeps clock-less test loopbacks working — core code must only
  /// ever *difference* these values, never interpret them as wall time.
  virtual std::uint64_t now_ns() const { return 0; }
};

}  // namespace ritas
