// Shared identifiers and quorum arithmetic for the RITAS protocol stack.
#pragma once

#include <cstdint>

namespace ritas {

/// Index of a process within the group P = {p_0 .. p_{n-1}}.
using ProcessId = std::uint32_t;

constexpr ProcessId kNoProcess = 0xffffffffu;

/// Identifier of one RITAS consensus group when several groups multiplex
/// one shared transport mesh (sharded SMR: every group runs the full stack
/// independently; the pair (GroupId, InstanceId) is the demux key). Group
/// 0 is the default single-group deployment and keeps the original wire
/// format bit-for-bit (see docs/PROTOCOLS.md "Group multiplexing").
using GroupId = std::uint32_t;

/// Optimal resilience: the stack tolerates f = floor((n-1)/3) corrupt
/// processes (paper §2).
constexpr std::uint32_t max_faults(std::uint32_t n) { return (n - 1) / 3; }

/// Thresholds used across the protocols, all in terms of n and f.
struct Quorums {
  std::uint32_t n;
  std::uint32_t f;

  explicit constexpr Quorums(std::uint32_t n_) : n(n_), f(max_faults(n_)) {}
  constexpr Quorums(std::uint32_t n_, std::uint32_t f_) : n(n_), f(f_) {}

  /// n - f: the count of messages a process may safely wait for.
  constexpr std::uint32_t n_minus_f() const { return n - f; }
  /// n - 2f: guaranteed overlap of any two (n-f)-subsets.
  constexpr std::uint32_t n_minus_2f() const { return n - 2 * f; }
  /// Bracha reliable broadcast: ECHOs needed before READY.
  constexpr std::uint32_t rb_echo_threshold() const { return (n + f) / 2 + 1; }
  /// Bracha reliable broadcast: READYs needed to relay READY.
  constexpr std::uint32_t rb_ready_relay() const { return f + 1; }
  /// Bracha reliable broadcast: READYs needed to deliver.
  constexpr std::uint32_t rb_deliver_threshold() const { return 2 * f + 1; }
  /// Echo broadcast: correct hashes needed to deliver a MAT column.
  constexpr std::uint32_t eb_deliver_threshold() const { return f + 1; }
  /// Binary consensus: same-value step-3 messages needed to decide.
  constexpr std::uint32_t bc_decide_threshold() const { return 2 * f + 1; }
  /// Binary consensus: same-value step-3 messages needed to adopt.
  constexpr std::uint32_t bc_adopt_threshold() const { return f + 1; }
};

/// Whether a broadcast instance exists to move application payload or to
/// run the agreement machinery. Figure 7 of the paper reports the ratio of
/// agreement broadcasts to all broadcasts, so every reliable/echo broadcast
/// instance carries this attribution tag.
enum class Attribution : std::uint8_t { kPayload = 0, kAgreement = 1 };

}  // namespace ritas
