#include "core/variants.h"

#include <stdexcept>
#include <string>

#include "core/binary_consensus.h"
#include "core/crain_consensus.h"
#include "core/imbs_raynal_broadcast.h"
#include "core/reliable_broadcast.h"
#include "core/stack.h"
#include "crypto/hmac.h"

namespace ritas {

const char* rb_variant_name(RbVariant v) {
  switch (v) {
    case RbVariant::kBracha: return "bracha";
    case RbVariant::kImbsRaynal: return "imbs-raynal";
  }
  return "?";
}

const char* bc_variant_name(BcVariant v) {
  switch (v) {
    case BcVariant::kBracha: return "bracha";
    case BcVariant::kCrain: return "crain";
  }
  return "?";
}

std::optional<RbVariant> rb_variant_from_name(std::string_view name) {
  if (name == "bracha") return RbVariant::kBracha;
  if (name == "imbs-raynal") return RbVariant::kImbsRaynal;
  return std::nullopt;
}

std::optional<BcVariant> bc_variant_from_name(std::string_view name) {
  if (name == "bracha") return BcVariant::kBracha;
  if (name == "crain") return BcVariant::kCrain;
  return std::nullopt;
}

void validate_variants(const VariantConfig& v, std::uint32_t n,
                       CoinMode coin_mode) {
  if (v.rb == RbVariant::kImbsRaynal && n < 6) {
    throw std::invalid_argument(
        "variants.rb = imbs-raynal requires n >= 6: the 2-step broadcast "
        "tolerates only t = (n-1)/5 Byzantine faults and its witness "
        "quorums are unsound with n <= 5t (got n = " + std::to_string(n) +
        "); use the bracha variant for smaller groups");
  }
  if (v.bc == BcVariant::kCrain && coin_mode != CoinMode::kDealt) {
    throw std::invalid_argument(
        "variants.bc = crain requires coin_mode = dealt: the round rule "
        "adopts the coin value, so agreement holds only if every process "
        "sees the SAME coin — a private (local) coin can split the "
        "estimates for good");
  }
}

std::unique_ptr<RbAlgorithm> make_rb(ProtocolStack& stack, Protocol* parent,
                                     InstanceId id, ProcessId origin,
                                     Attribution attr,
                                     RbAlgorithm::DeliverFn deliver) {
  switch (stack.config().variants.rb) {
    case RbVariant::kImbsRaynal:
      return std::unique_ptr<RbAlgorithm>(new ImbsRaynalBroadcast(
          stack, parent, std::move(id), origin, attr, std::move(deliver)));
    case RbVariant::kBracha:
      break;
  }
  return std::unique_ptr<RbAlgorithm>(new ReliableBroadcast(
      stack, parent, std::move(id), origin, attr, std::move(deliver)));
}

std::unique_ptr<BcAlgorithm> make_bc(ProtocolStack& stack, Protocol* parent,
                                     InstanceId id, Attribution attr,
                                     BcAlgorithm::DecideFn decide) {
  switch (stack.config().variants.bc) {
    case BcVariant::kCrain:
      return std::unique_ptr<BcAlgorithm>(new CrainConsensus(
          stack, parent, std::move(id), attr, std::move(decide)));
    case BcVariant::kBracha:
      break;
  }
  return std::unique_ptr<BcAlgorithm>(new BinaryConsensus(
      stack, parent, std::move(id), attr, std::move(decide)));
}

bool toss_round_coin(ProtocolStack& stack, const InstanceId& id,
                     std::uint32_t round) {
  if (stack.config().coin_mode == CoinMode::kDealt &&
      !stack.keys().group_key().empty()) {
    // Rabin-style dealt coin: every process derives the same bit for
    // (instance, round) from the dealer's group key.
    Writer w;
    id.encode(w);
    w.u32(round);
    const auto d = hmac_sha256(stack.keys().group_key(), w.data());
    return (d[0] & 1) != 0;
  }
  return stack.rng().coin();  // Ben-Or-style private coin (the paper's)
}

}  // namespace ritas
