// Pluggable protocol variants — the factory seam between the stack and the
// concrete broadcast/consensus algorithms.
//
// The paper fixes one algorithm per layer (Bracha reliable broadcast §2.2,
// Bracha randomized binary consensus §2.4). The stack's value as a
// scenario engine comes from swapping algorithms under identical safety
// oracles and faultloads, so each swappable layer is selected through a
// small abstract interface instead of a hard-coded concrete class:
//
//   * `RbAlgorithm` — one broadcast instance by one origin (bcast /
//     deliver-once semantics). Variants: Bracha (default, 3 steps,
//     t < n/3) and Imbs–Raynal (2 steps, t < n/5).
//   * `BcAlgorithm` — one binary consensus instance (propose / decide-once
//     semantics). Variants: Bracha (default, RB-backed 3-step rounds) and
//     Crain (MMR-style BV-broadcast rounds, direct messages, common coin).
//
// Selection is per-stack configuration (`StackConfig::variants`): every
// correct process of a group must configure the same variants, exactly
// like the other wire-format switches. Variants keep the paper's
// InstanceId path encodings but use DISJOINT message-tag spaces (see
// docs/PROTOCOLS.md "Variant negotiation & tag encodings"), so a frame
// from a mis-configured or Byzantine peer running the wrong variant is a
// counted drop, never protocol confusion.
//
// Construction goes through `make_rb` / `make_bc` only — the concrete
// constructors are private. Adding variant n+1 is: implement the
// interface, add an enum value + name, extend the factory switch and
// `validate_variants`, and add the per-variant oracle battery + explorer
// smoke (recipe in DESIGN.md).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string_view>

#include "common/buffer.h"
#include "core/instance_id.h"
#include "core/protocol.h"
#include "core/types.h"

namespace ritas {

class ProtocolStack;

/// How the binary consensus obtains its round coins (§2.4 / related work).
/// kLocal is the paper's Ben-Or-style private coin; kDealt derives one
/// common coin per (instance, round) from the dealer's group key — the
/// engineering equivalent of Rabin's predistributed coin shares, giving
/// expected-constant-round termination on split proposals.
enum class CoinMode : std::uint8_t { kLocal = 0, kDealt = 1 };

enum class RbVariant : std::uint8_t {
  kBracha = 0,      // paper §2.2: INIT/ECHO/READY, 3 steps, t < n/3
  kImbsRaynal = 1,  // Imbs–Raynal: INIT/WITNESS, 2 steps, t < n/5
};

enum class BcVariant : std::uint8_t {
  kBracha = 0,  // paper §2.4: RB-backed 3-step rounds, t < n/3
  kCrain = 1,   // MMR-style BV-broadcast rounds; requires the dealt coin
};

/// Per-stack algorithm selection. The default value is the paper's stack;
/// a default-constructed config is bit-identical to the pre-variant wire
/// format and traces.
struct VariantConfig {
  RbVariant rb = RbVariant::kBracha;
  BcVariant bc = BcVariant::kBracha;

  friend bool operator==(const VariantConfig&, const VariantConfig&) = default;
};

/// Stable lowercase names used by the C API docs, the schedule explorer's
/// JSON artifacts and the bench matrix ("bracha", "imbs-raynal", "crain").
const char* rb_variant_name(RbVariant v);
const char* bc_variant_name(BcVariant v);
std::optional<RbVariant> rb_variant_from_name(std::string_view name);
std::optional<BcVariant> bc_variant_from_name(std::string_view name);

/// Rejects incompatible variant selections with std::invalid_argument
/// carrying an actionable message:
///   * Imbs–Raynal RB needs n >= 6 — its witness quorums assume n > 5t
///     with t = (n-1)/5 >= 1; below that the variant is unsound.
///   * Crain BC needs CoinMode::kDealt — its round rule adopts the coin
///     value, so agreement relies on the coin being COMMON; private coins
///     break the argument.
/// Called from the ProtocolStack constructor (config time, never on the
/// packet path) and mirrored as RITAS_EINVAL through the C API.
void validate_variants(const VariantConfig& v, std::uint32_t n,
                       CoinMode coin_mode);

/// One reliable-broadcast instance: one broadcast by `origin`, delivered
/// at most once. All variants provide agreement + integrity + totality for
/// t below the variant's resilience bound.
class RbAlgorithm : public Protocol {
 public:
  /// The delivered Slice aliases the arrival frame that first carried the
  /// winning payload — zero-copy from the wire to the consumer, which may
  /// keep the Slice (pinning that frame) as long as it needs.
  using DeliverFn = std::function<void(Slice payload)>;

  /// Starts the broadcast. Precondition: this process is the origin and
  /// bcast was not called before.
  virtual void bcast(Slice payload) = 0;

  virtual ProcessId origin() const = 0;
  virtual bool delivered() const = 0;

 protected:
  using Protocol::Protocol;
};

/// One binary consensus instance: every process proposes a bit, all
/// correct processes decide the same bit (agreement), unanimous proposals
/// decide that value (validity).
class BcAlgorithm : public Protocol {
 public:
  using DecideFn = std::function<void(bool)>;

  /// Proposes a bit and activates the state machine. Messages that arrived
  /// before activation were already tallied; progress resumes immediately.
  virtual void propose(bool v) = 0;

  virtual bool active() const = 0;
  virtual bool decided() const = 0;
  virtual bool decision() const = 0;
  /// Round in which the decision was reached (1 = one round, the common
  /// case the paper reports). Valid only after decided().
  virtual std::uint32_t decided_round() const = 0;

 protected:
  using Protocol::Protocol;
};

/// Factory seam: constructs the RB / BC variant selected by
/// `stack.config().variants`. The ONLY way to construct the concrete
/// algorithm classes — their constructors are private.
std::unique_ptr<RbAlgorithm> make_rb(ProtocolStack& stack, Protocol* parent,
                                     InstanceId id, ProcessId origin,
                                     Attribution attr,
                                     RbAlgorithm::DeliverFn deliver);
std::unique_ptr<BcAlgorithm> make_bc(ProtocolStack& stack, Protocol* parent,
                                     InstanceId id, Attribution attr,
                                     BcAlgorithm::DecideFn decide);

/// The per-(instance, round) coin both BC variants share. kDealt derives a
/// common bit from the dealer's group key via HMAC over (id, round);
/// kLocal (or a missing group key) falls back to the stack's seeded
/// private coin. One helper so the variants' coins are computed
/// identically — the default Bracha path stays bit-identical.
bool toss_round_coin(ProtocolStack& stack, const InstanceId& id,
                     std::uint32_t round);

}  // namespace ritas
