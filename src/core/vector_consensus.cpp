#include "core/vector_consensus.h"

#include <cassert>
#include <stdexcept>

#include "common/log.h"

namespace ritas {

VectorConsensus::VectorConsensus(ProtocolStack& stack, Protocol* parent,
                                 InstanceId id, Attribution attr,
                                 DecideFn decide)
    : Protocol(stack, parent, std::move(id)),
      attr_(attr),
      decide_(std::move(decide)),
      proposals_(stack.n()) {
  for (ProcessId j = 0; j < stack_.n(); ++j) {
    add_child(make_rb(stack_, this, this->id().child(proposal_component(j)),
                      j, attr_,
                      [this, j](Slice payload) { on_proposal_deliver(j, payload); }));
  }
}

Bytes VectorConsensus::encode_vector(const Vector& v) {
  Writer w;
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& e : v) {
    w.u8(e ? 1 : 0);
    if (e) w.bytes(*e);
  }
  return std::move(w).take();
}

std::optional<VectorConsensus::Vector> VectorConsensus::decode_vector(
    ByteView payload, std::uint32_t n) {
  Reader r(payload);
  const std::uint32_t count = r.u32();
  if (!r.ok() || count != n) return std::nullopt;
  Vector out(count);
  for (std::uint32_t k = 0; k < count; ++k) {
    if (r.u8() != 0) out[k] = r.bytes();
  }
  if (!r.done()) return std::nullopt;
  return out;
}

void VectorConsensus::propose(Bytes v) {
  if (active_) throw std::logic_error("VectorConsensus::propose: already active");
  active_ = true;
  trace(TracePhase::kVcPropose);
  auto* rb = static_cast<RbAlgorithm*>(
      find_child(proposal_component(stack_.self())));
  assert(rb != nullptr);
  rb->bcast(std::move(v));
  try_start_round();
}

void VectorConsensus::on_message(ProcessId, std::uint8_t, const Slice&) {
  drop_invalid();
}

void VectorConsensus::on_proposal_deliver(ProcessId origin,
                                          const Slice& payload) {
  if (proposals_[origin].has_value()) return;  // defensive; RB delivers once
  proposals_[origin] = payload;
  ++proposals_received_;
  try_start_round();
}

MultiValuedConsensus& VectorConsensus::ensure_mvc(std::uint32_t round) {
  const Component c = mvc_component(round);
  if (auto* existing = find_child(c)) {
    return static_cast<MultiValuedConsensus&>(*existing);
  }
  auto mvc = std::make_unique<MultiValuedConsensus>(
      stack_, this, id().child(c), attr_,
      [this, round](std::optional<Bytes> v) { on_mvc_decide(round, std::move(v)); });
  auto& ref = *mvc;
  add_child(std::move(mvc));
  return ref;
}

void VectorConsensus::try_start_round() {
  const Quorums& q = stack_.quorums();
  if (!active_ || decided_ || mvc_running_) return;
  const std::uint32_t need = q.n_minus_f() + round_;
  if (proposals_received_ < need || need > stack_.n()) return;

  // Snapshot the proposals received so far as this round's W vector. The
  // snapshot owns its bytes (agreement values feed MVC's encoder anyway).
  Vector w(stack_.n());
  for (ProcessId j = 0; j < stack_.n(); ++j) {
    if (proposals_[j]) w[j] = proposals_[j]->to_bytes();
  }
  mvc_running_ = true;
  trace(TracePhase::kVcRound, round_);
  MultiValuedConsensus& mvc = ensure_mvc(round_);
  mvc.propose(encode_vector(w));
}

void VectorConsensus::on_mvc_decide(std::uint32_t round,
                                    std::optional<Bytes> value) {
  if (decided_ || round != round_) return;
  mvc_running_ = false;
  if (value) {
    auto vec = decode_vector(*value, stack_.n());
    if (vec) {
      decided_ = true;
      decision_ = std::move(*vec);
      trace(TracePhase::kVcDecide, round);
      complete();
      if (decide_) decide_(decision_);
      return;
    }
    // MVC validity means the decided value came from a correct process, so
    // it decodes; reaching here indicates Byzantine collusion beyond f or a
    // bug. All correct processes see the same bytes, so all take the same
    // branch: treat as ⊥ and advance.
    LOG_WARN("vector consensus %s: undecodable MVC decision", id().to_string().c_str());
  }
  ++round_;
  if (round_ > stack_.quorums().f) {
    LOG_ERROR("vector consensus %s: exceeded f+1 rounds without decision",
              id().to_string().c_str());
    return;
  }
  try_start_round();
}

Protocol* VectorConsensus::spawn_child(const Component& c, bool& drop) {
  drop = false;
  if (c.type == ProtocolType::kMultiValuedConsensus) {
    if (c.seq > stack_.quorums().f) {
      drop = true;  // rounds beyond f+1 can never exist
      return nullptr;
    }
    // Passive MVC instances accumulate traffic from processes ahead of us.
    return &ensure_mvc(static_cast<std::uint32_t>(c.seq));
  }
  drop = true;  // proposal RBs all exist from construction
  return nullptr;
}

}  // namespace ritas
