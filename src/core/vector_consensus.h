// Vector consensus (paper §2.6, after Correia et al.).
//
// Correct processes agree on one vector V of size n such that V[i] is
// p_i's proposal or ⊥ for every correct p_i, and at least f+1 entries were
// proposed by correct processes. Built from reliable broadcast (proposal
// dissemination) and one multi-valued consensus per round:
//
//   propose v:  RB-broadcast v; round r := 0
//   round r:    wait until n-f+r proposals received; W := vector of them;
//               run MVC_r(W); decide W' if W' != ⊥, else r := r+1
//
// Terminates in at most f+1 rounds: with c <= f actual silent processes,
// by round f-c every correct process waits for all n-c live proposals, so
// all correct processes propose identical vectors and MVC validity forces
// a non-⊥ decision.
#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "core/multivalued_consensus.h"
#include "core/protocol.h"
#include "core/stack.h"
#include "core/variants.h"

namespace ritas {

class VectorConsensus final : public Protocol {
 public:
  using Vector = std::vector<std::optional<Bytes>>;
  using DecideFn = std::function<void(Vector)>;

  VectorConsensus(ProtocolStack& stack, Protocol* parent, InstanceId id,
                  Attribution attr, DecideFn decide);

  void propose(Bytes v);

  void on_message(ProcessId from, std::uint8_t tag,
                  const Slice& payload) override;
  Protocol* spawn_child(const Component& c, bool& drop) override;

  bool decided() const { return decided_; }
  const Vector& decision() const { return decision_; }
  std::uint32_t rounds_used() const { return round_; }

  static Component proposal_component(ProcessId origin) {
    return Component{ProtocolType::kReliableBroadcast, origin};
  }
  static Component mvc_component(std::uint32_t round) {
    return Component{ProtocolType::kMultiValuedConsensus, round};
  }

  /// Wire format helpers for the per-round W vectors (shared with tests).
  static Bytes encode_vector(const Vector& v);
  static std::optional<Vector> decode_vector(ByteView payload, std::uint32_t n);

 private:
  void on_proposal_deliver(ProcessId origin, const Slice& payload);
  void on_mvc_decide(std::uint32_t round, std::optional<Bytes> value);
  MultiValuedConsensus& ensure_mvc(std::uint32_t round);
  void try_start_round();

  const Attribution attr_;
  DecideFn decide_;

  bool active_ = false;
  bool decided_ = false;
  bool mvc_running_ = false;
  std::uint32_t round_ = 0;
  Vector decision_;

  // Zero-copy: each proposal aliases the RB arrival frame that carried it.
  std::vector<std::optional<Slice>> proposals_;
  std::uint32_t proposals_received_ = 0;
};

}  // namespace ritas
