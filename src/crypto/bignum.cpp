#include "crypto/bignum.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace ritas {

BigNum::BigNum(std::uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<std::uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<std::uint32_t>(v >> 32));
}

void BigNum::trim() {
  while (!limbs_.empty() && limbs_.back() == 0) limbs_.pop_back();
}

BigNum BigNum::from_bytes(ByteView b) {
  BigNum out;
  for (std::size_t i = 0; i < b.size(); ++i) {
    // b is big-endian; byte i contributes to bit position 8*(size-1-i).
    const std::size_t bit = 8 * (b.size() - 1 - i);
    const std::size_t limb = bit / 32;
    const std::size_t off = bit % 32;
    if (out.limbs_.size() <= limb) out.limbs_.resize(limb + 1, 0);
    out.limbs_[limb] |= static_cast<std::uint32_t>(b[i]) << off;
  }
  out.trim();
  return out;
}

Bytes BigNum::to_bytes() const {
  if (limbs_.empty()) return Bytes{0};
  Bytes out;
  const std::size_t bytes = (bit_length() + 7) / 8;
  out.resize(bytes);
  for (std::size_t i = 0; i < bytes; ++i) {
    const std::size_t bit = 8 * (bytes - 1 - i);
    const std::size_t limb = bit / 32;
    const std::size_t off = bit % 32;
    out[i] = static_cast<std::uint8_t>(limbs_[limb] >> off);
  }
  return out;
}

BigNum BigNum::from_hex(std::string_view hex) {
  std::string padded(hex);
  if (padded.size() % 2) padded.insert(padded.begin(), '0');
  return from_bytes(ritas::from_hex(padded));
}

std::string BigNum::to_hex() const {
  const Bytes b = to_bytes();
  std::string h = ritas::to_hex(b);
  // Strip leading zeros but keep at least one digit.
  std::size_t i = 0;
  while (i + 1 < h.size() && h[i] == '0') ++i;
  return h.substr(i);
}

std::size_t BigNum::bit_length() const {
  if (limbs_.empty()) return 0;
  std::size_t bits = (limbs_.size() - 1) * 32;
  std::uint32_t top = limbs_.back();
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigNum::bit(std::size_t i) const {
  const std::size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1;
}

int BigNum::compare(const BigNum& a, const BigNum& b) {
  if (a.limbs_.size() != b.limbs_.size()) {
    return a.limbs_.size() < b.limbs_.size() ? -1 : 1;
  }
  for (std::size_t i = a.limbs_.size(); i-- > 0;) {
    if (a.limbs_[i] != b.limbs_[i]) return a.limbs_[i] < b.limbs_[i] ? -1 : 1;
  }
  return 0;
}

BigNum BigNum::add(const BigNum& a, const BigNum& b) {
  BigNum out;
  const std::size_t n = std::max(a.limbs_.size(), b.limbs_.size());
  out.limbs_.resize(n + 1, 0);
  std::uint64_t carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint64_t s = carry;
    if (i < a.limbs_.size()) s += a.limbs_[i];
    if (i < b.limbs_.size()) s += b.limbs_[i];
    out.limbs_[i] = static_cast<std::uint32_t>(s);
    carry = s >> 32;
  }
  out.limbs_[n] = static_cast<std::uint32_t>(carry);
  out.trim();
  return out;
}

BigNum BigNum::sub(const BigNum& a, const BigNum& b) {
  assert(compare(a, b) >= 0);
  BigNum out;
  out.limbs_.resize(a.limbs_.size(), 0);
  std::int64_t borrow = 0;
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::int64_t d = static_cast<std::int64_t>(a.limbs_[i]) - borrow;
    if (i < b.limbs_.size()) d -= b.limbs_[i];
    if (d < 0) {
      d += 1LL << 32;
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.limbs_[i] = static_cast<std::uint32_t>(d);
  }
  out.trim();
  return out;
}

BigNum BigNum::mul(const BigNum& a, const BigNum& b) {
  if (a.is_zero() || b.is_zero()) return BigNum{};
  BigNum out;
  out.limbs_.assign(a.limbs_.size() + b.limbs_.size(), 0);
  for (std::size_t i = 0; i < a.limbs_.size(); ++i) {
    std::uint64_t carry = 0;
    for (std::size_t j = 0; j < b.limbs_.size(); ++j) {
      std::uint64_t cur = out.limbs_[i + j] + carry +
                          static_cast<std::uint64_t>(a.limbs_[i]) * b.limbs_[j];
      out.limbs_[i + j] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
    }
    std::size_t k = i + b.limbs_.size();
    while (carry != 0) {
      std::uint64_t cur = out.limbs_[k] + carry;
      out.limbs_[k] = static_cast<std::uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  out.trim();
  return out;
}

BigNum BigNum::shift_limbs(const BigNum& a, std::size_t k) {
  if (a.is_zero()) return a;
  BigNum out;
  out.limbs_.assign(k, 0);
  out.limbs_.insert(out.limbs_.end(), a.limbs_.begin(), a.limbs_.end());
  return out;
}

void BigNum::divmod(const BigNum& a, const BigNum& b, BigNum& q, BigNum& r) {
  if (b.is_zero()) throw std::domain_error("BigNum: division by zero");
  if (compare(a, b) < 0) {
    q = BigNum{};
    r = a;
    return;
  }
  // Binary long division on bits: simple and adequate for <= 2048 bits.
  q = BigNum{};
  r = BigNum{};
  q.limbs_.assign(a.limbs_.size(), 0);
  for (std::size_t i = a.bit_length(); i-- > 0;) {
    // r = (r << 1) | bit_i(a)
    std::uint32_t carry = a.bit(i) ? 1u : 0u;
    for (std::size_t j = 0; j < r.limbs_.size(); ++j) {
      const std::uint32_t next = r.limbs_[j] >> 31;
      r.limbs_[j] = (r.limbs_[j] << 1) | carry;
      carry = next;
    }
    if (carry) r.limbs_.push_back(carry);
    if (compare(r, b) >= 0) {
      r = sub(r, b);
      q.limbs_[i / 32] |= 1u << (i % 32);
    }
  }
  q.trim();
  r.trim();
}

BigNum BigNum::mod(const BigNum& a, const BigNum& m) {
  BigNum q, r;
  divmod(a, m, q, r);
  return r;
}

BigNum BigNum::mulmod(const BigNum& a, const BigNum& b, const BigNum& m) {
  return mod(mul(a, b), m);
}

BigNum BigNum::powmod(const BigNum& a, const BigNum& e, const BigNum& m) {
  if (m.is_zero()) throw std::domain_error("BigNum: powmod modulus zero");
  BigNum base = mod(a, m);
  BigNum result(1);
  for (std::size_t i = e.bit_length(); i-- > 0;) {
    result = mulmod(result, result, m);
    if (e.bit(i)) result = mulmod(result, base, m);
  }
  return result;
}

bool BigNum::invmod(const BigNum& a, const BigNum& m, BigNum& out) {
  // Extended Euclid tracking only the coefficient of a, with signs managed
  // via (value, negative) pairs over non-negative BigNums.
  BigNum r0 = m, r1 = mod(a, m);
  BigNum t0, t1(1);
  bool t0_neg = false, t1_neg = false;
  while (!r1.is_zero()) {
    BigNum q, rem;
    divmod(r0, r1, q, rem);
    // t2 = t0 - q*t1
    const BigNum qt1 = mul(q, t1);
    BigNum t2;
    bool t2_neg;
    if (t0_neg == t1_neg) {
      if (compare(t0, qt1) >= 0) {
        t2 = sub(t0, qt1);
        t2_neg = t0_neg;
      } else {
        t2 = sub(qt1, t0);
        t2_neg = !t0_neg;
      }
    } else {
      t2 = add(t0, qt1);
      t2_neg = t0_neg;
    }
    t0 = t1;
    t0_neg = t1_neg;
    t1 = t2;
    t1_neg = t2_neg;
    r0 = r1;
    r1 = rem;
  }
  if (!(r0 == BigNum(1))) return false;
  if (t0_neg) {
    out = sub(m, mod(t0, m));
    if (out == m) out = BigNum{};
  } else {
    out = mod(t0, m);
  }
  return true;
}

BigNum BigNum::random_bits(Rng& rng, std::size_t bits) {
  assert(bits > 0);
  BigNum out;
  out.limbs_.resize((bits + 31) / 32);
  for (auto& l : out.limbs_) l = static_cast<std::uint32_t>(rng.next());
  const std::size_t top = (bits - 1) % 32;
  out.limbs_.back() &= (top == 31) ? 0xffffffffu : ((1u << (top + 1)) - 1);
  out.limbs_.back() |= 1u << top;  // exact bit length
  out.trim();
  return out;
}

bool BigNum::probably_prime(const BigNum& n, Rng& rng, int rounds) {
  if (n.bit_length() <= 1) return false;      // 0, 1
  if (!n.is_odd()) return n == BigNum(2);
  // Small-prime sieve first.
  static constexpr std::uint32_t kSmall[] = {3,  5,  7,  11, 13, 17, 19, 23,
                                             29, 31, 37, 41, 43, 47, 53, 59};
  for (std::uint32_t p : kSmall) {
    const BigNum bp(p);
    if (n == bp) return true;
    if (mod(n, bp).is_zero()) return false;
  }
  // n-1 = d * 2^s
  const BigNum n_minus_1 = sub(n, BigNum(1));
  BigNum d = n_minus_1;
  std::size_t s = 0;
  while (!d.is_odd()) {
    BigNum q, r;
    divmod(d, BigNum(2), q, r);
    d = q;
    ++s;
  }
  for (int round = 0; round < rounds; ++round) {
    // Random base in [2, n-2].
    BigNum a = mod(random_bits(rng, n.bit_length()), n);
    if (compare(a, BigNum(2)) < 0 || compare(a, n_minus_1) >= 0) {
      a = BigNum(2 + static_cast<std::uint64_t>(round));
    }
    BigNum x = powmod(a, d, n);
    if (x == BigNum(1) || x == n_minus_1) continue;
    bool witness = true;
    for (std::size_t i = 1; i < s; ++i) {
      x = mulmod(x, x, n);
      if (x == n_minus_1) {
        witness = false;
        break;
      }
    }
    if (witness) return false;
  }
  return true;
}

BigNum BigNum::random_prime(Rng& rng, std::size_t bits) {
  for (;;) {
    BigNum cand = random_bits(rng, bits);
    if (!cand.is_odd()) cand = add(cand, BigNum(1));
    if (probably_prime(cand, rng)) return cand;
  }
}

}  // namespace ritas
