// Minimal arbitrary-precision unsigned integers — just enough for RSA.
//
// Exists to build the *baseline* the paper argues against: Rampart-style
// signed multicast (Reiter '94 used 300-bit RSA). Schoolbook algorithms
// throughout; this is a reference implementation for benchmarking and
// tests, not a hardened crypto library (and RSA at these sizes is for the
// historical comparison only).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"

namespace ritas {

class BigNum {
 public:
  BigNum() = default;
  explicit BigNum(std::uint64_t v);
  /// Big-endian byte import/export.
  static BigNum from_bytes(ByteView b);
  Bytes to_bytes() const;
  static BigNum from_hex(std::string_view hex);
  std::string to_hex() const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1); }
  std::size_t bit_length() const;
  bool bit(std::size_t i) const;

  static int compare(const BigNum& a, const BigNum& b);
  friend bool operator==(const BigNum& a, const BigNum& b) {
    return compare(a, b) == 0;
  }
  friend bool operator<(const BigNum& a, const BigNum& b) {
    return compare(a, b) < 0;
  }

  static BigNum add(const BigNum& a, const BigNum& b);
  /// Precondition: a >= b.
  static BigNum sub(const BigNum& a, const BigNum& b);
  static BigNum mul(const BigNum& a, const BigNum& b);
  /// Quotient and remainder; divisor must be nonzero.
  static void divmod(const BigNum& a, const BigNum& b, BigNum& q, BigNum& r);
  static BigNum mod(const BigNum& a, const BigNum& m);
  static BigNum mulmod(const BigNum& a, const BigNum& b, const BigNum& m);
  /// a^e mod m via square-and-multiply. m must be nonzero.
  static BigNum powmod(const BigNum& a, const BigNum& e, const BigNum& m);
  /// Modular inverse via extended Euclid; returns false if gcd != 1.
  static bool invmod(const BigNum& a, const BigNum& m, BigNum& out);

  /// Uniform random value with exactly `bits` bits (top bit set).
  static BigNum random_bits(Rng& rng, std::size_t bits);
  /// Miller-Rabin with `rounds` random bases.
  static bool probably_prime(const BigNum& n, Rng& rng, int rounds = 24);
  /// Random prime with exactly `bits` bits.
  static BigNum random_prime(Rng& rng, std::size_t bits);

 private:
  void trim();
  static BigNum shift_limbs(const BigNum& a, std::size_t k);  // a * 2^(32k)

  // Little-endian 32-bit limbs; empty = zero.
  std::vector<std::uint32_t> limbs_;
};

}  // namespace ritas
