// Constant-time byte comparison.
//
// Every MAC/hash-vector verification in the stack goes through this to
// avoid leaking the position of the first mismatching byte to a timing
// adversary.
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace ritas {

/// Returns true iff a == b, in time dependent only on the lengths.
inline bool ct_equal(ByteView a, ByteView b) {
  if (a.size() != b.size()) return false;
  std::uint8_t acc = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc = static_cast<std::uint8_t>(acc | (a[i] ^ b[i]));
  }
  return acc == 0;
}

}  // namespace ritas
