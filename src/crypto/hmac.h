// HMAC (RFC 2104) over any of the project's hash functions.
//
// The TCP transport authenticates every frame with HMAC-SHA-256; tests also
// validate HMAC-SHA-1 against RFC 2202 vectors. The matrix echo broadcast
// deliberately does NOT use HMAC — it uses the paper's plain H(m || s_ij)
// construction (§2.3), which the paper describes as "a simple and efficient
// form of Message Authentication Code".
#pragma once

#include <cstring>

#include "common/bytes.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace ritas {

/// Computes HMAC_Hash(key, msg1 ‖ msg2 ‖ ...). Hash must expose kBlockSize,
/// kDigestSize, Digest, update(), finish() like Sha1 / Sha256. Accepting
/// multiple views lets callers MAC a small header plus a shared frame body
/// without materializing the concatenation (see TcpTransport::send).
template <typename Hash, typename... Views>
typename Hash::Digest hmac(ByteView key, Views... msg) {
  std::uint8_t key_block[Hash::kBlockSize] = {0};
  if (key.size() > Hash::kBlockSize) {
    const auto digest = Hash::hash(key);
    std::memcpy(key_block, digest.data(), digest.size());
  } else if (!key.empty()) {
    std::memcpy(key_block, key.data(), key.size());
  }

  std::uint8_t ipad[Hash::kBlockSize];
  std::uint8_t opad[Hash::kBlockSize];
  for (std::size_t i = 0; i < Hash::kBlockSize; ++i) {
    ipad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x36);
    opad[i] = static_cast<std::uint8_t>(key_block[i] ^ 0x5c);
  }

  Hash inner;
  inner.update(ByteView(ipad, Hash::kBlockSize));
  (inner.update(msg), ...);
  const auto inner_digest = inner.finish();

  Hash outer;
  outer.update(ByteView(opad, Hash::kBlockSize));
  outer.update(ByteView(inner_digest.data(), inner_digest.size()));
  return outer.finish();
}

using HmacSha1 = Sha1::Digest;
using HmacSha256 = Sha256::Digest;

inline Sha1::Digest hmac_sha1(ByteView key, ByteView msg) {
  return hmac<Sha1>(key, msg);
}
inline Sha256::Digest hmac_sha256(ByteView key, ByteView msg) {
  return hmac<Sha256>(key, msg);
}
/// HMAC over header ‖ body without concatenating them.
inline Sha256::Digest hmac_sha256_2(ByteView key, ByteView header,
                                    ByteView body) {
  return hmac<Sha256>(key, header, body);
}

}  // namespace ritas
