#include "crypto/keychain.h"

#include <stdexcept>

#include "common/serialize.h"
#include "crypto/hmac.h"

namespace ritas {

KeyChain KeyChain::deal(ByteView master, std::uint32_t n, std::uint32_t self) {
  if (self >= n) throw std::invalid_argument("KeyChain::deal: self out of range");
  std::vector<Bytes> keys;
  keys.reserve(n);
  for (std::uint32_t j = 0; j < n; ++j) {
    // Key for the unordered pair {self, j}: derive from the sorted pair so
    // both endpoints compute the same key.
    const std::uint32_t lo = self < j ? self : j;
    const std::uint32_t hi = self < j ? j : self;
    Writer w;
    w.str("ritas-pairwise-key");
    w.u32(lo);
    w.u32(hi);
    const auto digest = hmac_sha256(master, w.data());
    keys.emplace_back(digest.begin(), digest.end());
  }
  KeyChain chain(self, std::move(keys));
  Writer gw;
  gw.str("ritas-group-coin-key");
  const auto group = hmac_sha256(master, gw.data());
  chain.set_group_key(Bytes(group.begin(), group.end()));
  return chain;
}

KeyChain::KeyChain(std::uint32_t self, std::vector<Bytes> keys)
    : self_(self), keys_(std::move(keys)) {
  if (self_ >= keys_.size()) {
    throw std::invalid_argument("KeyChain: self out of range");
  }
}

ByteView KeyChain::key(std::uint32_t j) const {
  if (j >= keys_.size()) throw std::out_of_range("KeyChain::key: bad index");
  return keys_[j];
}

}  // namespace ritas
