// Pairwise shared secret keys.
//
// The paper assumes "each pair of processes (p_i, p_j) shares a secret key
// s_ij", distributed out-of-band by a trusted dealer before the protocols
// run (§2). `KeyChain` reproduces that setup: a dealer derives the full
// triangle of pairwise keys from one master secret, and each process is
// given only its own row. Key distribution is explicitly outside the
// performance path, exactly as in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace ritas {

class KeyChain {
 public:
  static constexpr std::size_t kKeySize = 32;

  /// Dealer-side derivation: returns p_self's row of pairwise keys for a
  /// group of n processes, derived deterministically from `master`.
  /// Symmetry s_ij == s_ji holds across rows derived from the same master.
  static KeyChain deal(ByteView master, std::uint32_t n, std::uint32_t self);

  /// Builds a keychain from externally supplied keys (keys[j] = s_{self,j};
  /// keys[self] is unused but must be present).
  KeyChain(std::uint32_t self, std::vector<Bytes> keys);

  std::uint32_t self() const { return self_; }
  std::uint32_t size() const { return static_cast<std::uint32_t>(keys_.size()); }

  /// The secret shared with process j. Precondition: j < size(), j != self
  /// is allowed but the self key is also defined (useful for loopback MACs).
  ByteView key(std::uint32_t j) const;

  /// Group-wide secret shared by ALL processes, dealt alongside the
  /// pairwise keys. Used by the Rabin-style dealt common coin (every
  /// process derives the same unpredictable-to-outsiders coin per round —
  /// the engineering stand-in for predistributed coin shares). Empty when
  /// the chain was built from externally supplied pairwise keys only.
  ByteView group_key() const { return group_key_; }
  void set_group_key(Bytes k) { group_key_ = std::move(k); }

 private:
  std::uint32_t self_;
  std::vector<Bytes> keys_;
  Bytes group_key_;
};

}  // namespace ritas
