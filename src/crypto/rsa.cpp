#include "crypto/rsa.h"

#include "crypto/sha256.h"

namespace ritas {

RsaKeyPair RsaKeyPair::generate(Rng& rng, std::size_t modulus_bits) {
  const std::size_t half = modulus_bits / 2;
  const BigNum e(65537);
  for (;;) {
    const BigNum p = BigNum::random_prime(rng, half);
    const BigNum q = BigNum::random_prime(rng, modulus_bits - half);
    if (p == q) continue;
    const BigNum n = BigNum::mul(p, q);
    const BigNum phi = BigNum::mul(BigNum::sub(p, BigNum(1)),
                                   BigNum::sub(q, BigNum(1)));
    BigNum d;
    if (!BigNum::invmod(e, phi, d)) continue;  // gcd(e, phi) != 1: retry
    RsaKeyPair kp;
    kp.pub.n = n;
    kp.pub.e = e;
    kp.d = d;
    return kp;
  }
}

namespace {
BigNum digest_of(ByteView message) {
  const auto d = Sha256::hash(message);
  return BigNum::from_bytes(ByteView(d.data(), d.size()));
}
}  // namespace

Bytes rsa_sign(const RsaKeyPair& key, ByteView message) {
  return BigNum::powmod(digest_of(message), key.d, key.pub.n).to_bytes();
}

bool rsa_verify(const RsaPublicKey& key, ByteView message, ByteView signature) {
  if (signature.empty() || signature.size() > key.n.to_bytes().size() + 1) {
    return false;
  }
  const BigNum sig = BigNum::from_bytes(signature);
  if (!(sig < key.n)) return false;
  const BigNum recovered = BigNum::powmod(sig, key.e, key.n);
  return recovered == BigNum::mod(digest_of(message), key.n);
}

}  // namespace ritas
