// Textbook RSA signatures over SHA-256 digests.
//
// This is the *baseline* machinery, not part of RITAS: the paper's related
// work (Rampart, SecureRing, SINTRA) leans on digital signatures, and its
// core performance claim is that RITAS wins by avoiding them. We implement
// the signatures so the comparison benchmark (`bench_signatures`) can
// measure exactly that claim. Key sizes mirror the era: Reiter reported
// Rampart with 300-bit RSA moduli; we default to 512 bits.
//
// Textbook (no OAEP/PSS padding): sig = H(m)^d mod N. Sufficient for a
// performance baseline and for tests; do not use for anything real.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/rng.h"
#include "crypto/bignum.h"

namespace ritas {

struct RsaPublicKey {
  BigNum n;
  BigNum e;
};

struct RsaKeyPair {
  RsaPublicKey pub;
  BigNum d;

  /// Generates a keypair with a modulus of ~`modulus_bits` bits, e = 65537.
  static RsaKeyPair generate(Rng& rng, std::size_t modulus_bits = 512);
};

/// sig = SHA-256(m)^d mod n.
Bytes rsa_sign(const RsaKeyPair& key, ByteView message);

/// Verifies sig^e mod n == SHA-256(m).
bool rsa_verify(const RsaPublicKey& key, ByteView message, ByteView signature);

}  // namespace ritas
