#include "crypto/sha1.h"

#include <cstring>

namespace ritas {

namespace {
inline std::uint32_t rotl32(std::uint32_t x, int k) {
  return (x << k) | (x >> (32 - k));
}
}  // namespace

void Sha1::reset() {
  h_[0] = 0x67452301u;
  h_[1] = 0xefcdab89u;
  h_[2] = 0x98badcfeu;
  h_[3] = 0x10325476u;
  h_[4] = 0xc3d2e1f0u;
  buffered_ = 0;
  total_ = 0;
}

void Sha1::update(ByteView data) {
  total_ += data.size();
  std::size_t off = 0;
  if (buffered_ > 0) {
    const std::size_t need = kBlockSize - buffered_;
    const std::size_t take = data.size() < need ? data.size() : need;
    std::memcpy(buffer_ + buffered_, data.data(), take);
    buffered_ += take;
    off = take;
    if (buffered_ == kBlockSize) {
      process_block(buffer_);
      buffered_ = 0;
    }
  }
  while (data.size() - off >= kBlockSize) {
    process_block(data.data() + off);
    off += kBlockSize;
  }
  if (off < data.size()) {
    std::memcpy(buffer_, data.data() + off, data.size() - off);
    buffered_ = data.size() - off;
  }
}

Sha1::Digest Sha1::finish() {
  const std::uint64_t bit_len = total_ * 8;
  const std::uint8_t pad = 0x80;
  update(ByteView(&pad, 1));
  const std::uint8_t zero = 0x00;
  while (buffered_ != 56) {
    update(ByteView(&zero, 1));
  }
  std::uint8_t len_be[8];
  for (int i = 0; i < 8; ++i) {
    len_be[i] = static_cast<std::uint8_t>(bit_len >> (56 - 8 * i));
  }
  update(ByteView(len_be, 8));
  Digest out;
  for (int i = 0; i < 5; ++i) {
    out[4 * i + 0] = static_cast<std::uint8_t>(h_[i] >> 24);
    out[4 * i + 1] = static_cast<std::uint8_t>(h_[i] >> 16);
    out[4 * i + 2] = static_cast<std::uint8_t>(h_[i] >> 8);
    out[4 * i + 3] = static_cast<std::uint8_t>(h_[i]);
  }
  return out;
}

Sha1::Digest Sha1::hash(ByteView data) {
  Sha1 ctx;
  ctx.update(data);
  return ctx.finish();
}

void Sha1::process_block(const std::uint8_t* block) {
  std::uint32_t w[80];
  for (int i = 0; i < 16; ++i) {
    w[i] = static_cast<std::uint32_t>(block[4 * i]) << 24 |
           static_cast<std::uint32_t>(block[4 * i + 1]) << 16 |
           static_cast<std::uint32_t>(block[4 * i + 2]) << 8 |
           static_cast<std::uint32_t>(block[4 * i + 3]);
  }
  for (int i = 16; i < 80; ++i) {
    w[i] = rotl32(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1);
  }
  std::uint32_t a = h_[0], b = h_[1], c = h_[2], d = h_[3], e = h_[4];
  for (int i = 0; i < 80; ++i) {
    std::uint32_t f, k;
    if (i < 20) {
      f = (b & c) | (~b & d);
      k = 0x5a827999u;
    } else if (i < 40) {
      f = b ^ c ^ d;
      k = 0x6ed9eba1u;
    } else if (i < 60) {
      f = (b & c) | (b & d) | (c & d);
      k = 0x8f1bbcdcu;
    } else {
      f = b ^ c ^ d;
      k = 0xca62c1d6u;
    }
    const std::uint32_t tmp = rotl32(a, 5) + f + e + k + w[i];
    e = d;
    d = c;
    c = rotl32(b, 30);
    b = a;
    a = tmp;
  }
  h_[0] += a;
  h_[1] += b;
  h_[2] += c;
  h_[3] += d;
  h_[4] += e;
}

}  // namespace ritas
