// SHA-1 (FIPS 180-4), implemented from scratch.
//
// RITAS uses SHA-1 in two places, exactly as the paper does: (1) the matrix
// echo broadcast's hash vectors H(m || s_ij) (§2.3), and (2) the IPSec AH
// integrity stand-in on the reliable channel. SHA-1 is cryptographically
// broken for collision resistance today; it is kept because the point of
// this codebase is to reproduce the 2006 system (SHA-256 is available in
// crypto/sha256.h and the channel layer can be configured to use it).
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace ritas {

class Sha1 {
 public:
  static constexpr std::size_t kDigestSize = 20;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha1() { reset(); }

  void reset();
  void update(ByteView data);
  /// Finalizes and returns the digest. The object must be reset() before
  /// further use.
  Digest finish();

  /// One-shot convenience.
  static Digest hash(ByteView data);

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t h_[5];
  std::uint8_t buffer_[kBlockSize];
  std::size_t buffered_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace ritas
