// SHA-256 (FIPS 180-4), implemented from scratch.
//
// Used by the real-socket transport's HMAC integrity layer (the modern
// stand-in for IPSec AH) and available as an alternative hash for the
// matrix echo broadcast.
#pragma once

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace ritas {

class Sha256 {
 public:
  static constexpr std::size_t kDigestSize = 32;
  static constexpr std::size_t kBlockSize = 64;
  using Digest = std::array<std::uint8_t, kDigestSize>;

  Sha256() { reset(); }

  void reset();
  void update(ByteView data);
  Digest finish();

  static Digest hash(ByteView data);

 private:
  void process_block(const std::uint8_t* block);

  std::uint32_t h_[8];
  std::uint8_t buffer_[kBlockSize];
  std::size_t buffered_ = 0;
  std::uint64_t total_ = 0;
};

}  // namespace ritas
