#include "net/batch_writer.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>

namespace ritas::net {

std::size_t build_batch_iov(const FrameImage* frames, std::size_t count,
                            std::size_t first_off, iovec* iov,
                            std::size_t max_iov) {
  std::size_t used = 0;
  std::size_t skip = first_off;
  for (std::size_t f = 0; f < count && used < max_iov; ++f) {
    for (const ByteView& part : frames[f].parts) {
      if (used >= max_iov) break;
      if (skip >= part.size()) {
        // The short write consumed this whole segment (or it is empty).
        skip -= part.size();
        continue;
      }
      iov[used].iov_base =
          const_cast<std::uint8_t*>(part.data() + skip);  // NOLINT
      iov[used].iov_len = part.size() - skip;
      skip = 0;
      ++used;
    }
  }
  return used;
}

BatchWriteResult sendmsg_batch(int fd, const FrameImage* frames,
                               std::size_t count, std::size_t first_off,
                               std::size_t max_iov) {
  const std::size_t budget = max_iov < 1 ? 1 : max_iov;
  // 3 segments per frame bounds the stack array; build_batch_iov stops at
  // the budget anyway, so a short array only shortens the batch.
  iovec iov[3 * 128];
  const std::size_t cap =
      budget < sizeof(iov) / sizeof(iov[0]) ? budget : sizeof(iov) / sizeof(iov[0]);
  const std::size_t used = build_batch_iov(frames, count, first_off, iov, cap);
  BatchWriteResult r;
  if (used == 0) {
    r.status = BatchWriteResult::Status::kProgress;
    return r;  // nothing left to write (all-empty tail)
  }
  for (;;) {
    msghdr mh{};
    mh.msg_iov = iov;
    mh.msg_iovlen = used;
    const ssize_t k = ::sendmsg(fd, &mh, MSG_NOSIGNAL);
    if (k >= 0) {
      r.status = BatchWriteResult::Status::kProgress;
      r.bytes = static_cast<std::size_t>(k);
      return r;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      r.status = BatchWriteResult::Status::kAgain;
      return r;
    }
    r.status = BatchWriteResult::Status::kError;
    return r;
  }
}

std::size_t batch_iov_budget() {
  static const std::size_t budget = [] {
    long iov_max = ::sysconf(_SC_IOV_MAX);
    if (iov_max < 16) iov_max = 16;  // failed sysconf or absurd platform
    // 3*128 matches the stack array in sendmsg_batch: 128 frames per
    // syscall is already ~30x past the CI frames-per-syscall gate.
    const long cap = 3 * 128;
    return static_cast<std::size_t>(iov_max < cap ? iov_max : cap);
  }();
  return budget;
}

}  // namespace ritas::net
