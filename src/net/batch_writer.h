// Multi-frame scatter-gather writer for the transport fast path.
//
// A wire frame is three non-owning segments — {20 B header, shared
// refcounted body, 32 B MAC trailer} — and a batch is many such frames
// drained from one link's pending queue into ONE sendmsg(). The iovec
// array points straight at the retained headers/bodies/MACs: assembling a
// batch copies zero payload bytes (TcpTransport::Stats::batch_copy_bytes
// counts any future coalescing fallback and is CI-gated at 0).
//
// Short writes are the whole game: the kernel may accept any prefix of the
// offered bytes, landing mid-header, mid-body or mid-MAC. The caller
// tracks a byte offset into the first unfinished frame and re-enters with
// it; build_batch_iov() skips that many bytes across segment boundaries so
// the resumed sendmsg continues byte-exactly. tests/test_transport_batch.cpp
// drives every offset of multi-frame batches through a socketpair with a
// tiny SO_SNDBUF.
#pragma once

#include <sys/uio.h>

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"

namespace ritas::net {

/// One frame as up to three non-owning segments; empty segments are legal
/// (unauthenticated frames have no MAC, bodies may be zero-length).
struct FrameImage {
  ByteView parts[3];
  std::size_t size() const {
    return parts[0].size() + parts[1].size() + parts[2].size();
  }
};

/// Fills `iov` (capacity `max_iov`) from `frames[0..count)`, skipping the
/// first `first_off` bytes of frames[0] (resumption after a short write;
/// may land inside any segment). Stops when the iovec budget is exhausted —
/// a batch may end mid-frame, the cursor arithmetic makes that safe.
/// Returns the number of iovec slots used.
std::size_t build_batch_iov(const FrameImage* frames, std::size_t count,
                            std::size_t first_off, iovec* iov,
                            std::size_t max_iov);

struct BatchWriteResult {
  enum class Status {
    kProgress,  // the kernel accepted `bytes` (possibly a short write)
    kAgain,     // socket buffer full, nothing accepted: wait for writability
    kError,     // fatal socket error (errno preserved)
  };
  Status status = Status::kAgain;
  std::size_t bytes = 0;
};

/// Exactly one sendmsg() over the batch (EINTR retried), non-blocking.
/// `first_off` resumes mid-frame as in build_batch_iov. `max_iov` is
/// clamped to the system IOV_MAX by the caller (see batch_iov_budget()).
BatchWriteResult sendmsg_batch(int fd, const FrameImage* frames,
                               std::size_t count, std::size_t first_off,
                               std::size_t max_iov);

/// min(IOV_MAX, a sane static cap): the per-sendmsg iovec budget.
std::size_t batch_iov_budget();

}  // namespace ritas::net
