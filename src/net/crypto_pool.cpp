#include "net/crypto_pool.h"

namespace ritas::net {

CryptoPool::CryptoPool(std::uint32_t threads) {
  if (threads == 0) threads = 1;
  workers_.reserve(threads);
  for (std::uint32_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { run(); });
  }
}

CryptoPool::~CryptoPool() {
  {
    std::lock_guard<std::mutex> lk(m_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void CryptoPool::submit(Job job) {
  {
    std::lock_guard<std::mutex> lk(m_);
    jobs_.push_back(std::move(job));
  }
  cv_.notify_one();
}

void CryptoPool::run() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lk(m_);
      cv_.wait(lk, [&] { return stopping_ || !jobs_.empty(); });
      // Drain before exiting so a stop never strands a queued verify —
      // the poll thread may be parked waiting for its verdict.
      if (jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop_front();
      ++jobs_run_;
    }
    job();
  }
}

std::uint64_t CryptoPool::jobs_run() const {
  std::lock_guard<std::mutex> lk(m_);
  return jobs_run_;
}

std::size_t CryptoPool::queue_depth() const {
  std::lock_guard<std::mutex> lk(m_);
  return jobs_.size();
}

}  // namespace ritas::net
