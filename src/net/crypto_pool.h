// CryptoPool — worker threads for per-frame HMAC work.
//
// HMAC-SHA-256 over a frame is stateless over ByteView, so verify and
// compute jobs are embarrassingly parallel: the transport hands each one
// a self-contained closure (key view, ids, counter, refcounted body) and
// the ordering that matters — per-link arrival order on receive, counter
// order on send — is re-imposed by the poll thread when it harvests the
// results, never by the workers. Workers therefore share nothing and
// take no transport locks; they write their result into a dedicated slot
// (an atomic publish) and ring the transport's wakeup.
//
// A plain mutex+condvar MPMC queue is deliberate: one HMAC over a
// protocol frame costs microseconds, so queue overhead is noise, and the
// simple queue is trivially correct under TSan.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ritas::net {

class CryptoPool {
 public:
  using Job = std::function<void()>;

  /// Spawns `threads` workers (must be >= 1; callers gate the 0 =
  /// inline-crypto case before constructing a pool).
  explicit CryptoPool(std::uint32_t threads);
  /// Drains outstanding jobs, then joins the workers.
  ~CryptoPool();
  CryptoPool(const CryptoPool&) = delete;
  CryptoPool& operator=(const CryptoPool&) = delete;

  std::uint32_t threads() const { return static_cast<std::uint32_t>(workers_.size()); }

  void submit(Job job);

  std::uint64_t jobs_run() const;
  std::size_t queue_depth() const;

 private:
  void run();

  mutable std::mutex m_;
  std::condition_variable cv_;
  std::deque<Job> jobs_;
  std::uint64_t jobs_run_ = 0;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ritas::net
