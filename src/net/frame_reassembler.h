// Incremental splitter for the reliable-channel byte stream.
//
// The data-frame format (docs/PROTOCOLS.md "Reliable channel") is
// self-delimiting: u32 body_len | u64 sid | u64 counter | body | [32 B mac].
// TCP delivers that stream at arbitrary byte boundaries, so the transport
// accumulates bytes here and pulls whole frames out. The class is pure and
// position-agnostic by construction: feeding a stream one byte at a time,
// at random split points, or whole produces the identical frame sequence
// and the identical oversize verdict (tests/test_transport_batch.cpp
// replays the malformed-frame corpus through it at every granularity).
//
// MAC verification, session/replay filtering and delivery stay in
// TcpTransport — this layer only finds frame boundaries, so it can be
// driven deterministically without sockets or keys.
#pragma once

#include <cstddef>
#include <cstdint>

#include "common/bytes.h"
#include "common/serialize.h"

namespace ritas::net {

class FrameReassembler {
 public:
  static constexpr std::size_t kHeaderSize = 4 + 8 + 8;  // len | sid | counter
  static constexpr std::size_t kMacSize = 32;

  struct Frame {
    std::uint64_t sid = 0;
    std::uint64_t counter = 0;
    // Views into the internal window; valid until consume()/feed()/clear().
    ByteView body;
    ByteView mac;  // empty when the stream carries no MAC trailer
  };

  enum class Status {
    kNeedMore,  // not enough buffered bytes for the next frame
    kFrame,     // `out` holds the next frame; call consume() to advance
    kOversize,  // declared body_len exceeds max_frame: poison the stream
  };

  FrameReassembler(std::size_t max_frame, bool with_mac)
      : max_frame_(max_frame), with_mac_(with_mac) {}

  void feed(const std::uint8_t* data, std::size_t len) {
    buf_.insert(buf_.end(), data, data + len);
  }
  void feed(ByteView data) { feed(data.data(), data.size()); }

  /// Parses the frame at the cursor without consuming it. The oversize
  /// check runs as soon as the header is complete — a Byzantine peer
  /// declaring a huge body is rejected before it can make us buffer it.
  Status next(Frame& out) {
    const std::size_t avail = buf_.size() - off_;
    if (avail < kHeaderSize) return Status::kNeedMore;
    Reader hdr(ByteView(buf_.data() + off_, kHeaderSize));
    const std::uint32_t body_len = hdr.u32();
    const std::uint64_t sid = hdr.u64();
    const std::uint64_t counter = hdr.u64();
    if (body_len > max_frame_) return Status::kOversize;
    const std::size_t trailer = with_mac_ ? kMacSize : 0;
    const std::size_t total = kHeaderSize + body_len + trailer;
    if (avail < total) return Status::kNeedMore;
    out.sid = sid;
    out.counter = counter;
    out.body = ByteView(buf_.data() + off_ + kHeaderSize, body_len);
    out.mac = with_mac_
                  ? ByteView(buf_.data() + off_ + kHeaderSize + body_len, kMacSize)
                  : ByteView{};
    pending_ = total;
    return Status::kFrame;
  }

  /// Advances past the frame last returned by next().
  void consume() {
    off_ += pending_;
    pending_ = 0;
  }

  /// Drops the consumed prefix; call once per drain loop, not per frame,
  /// so a burst of small frames pays one memmove.
  void compact() {
    if (off_ == 0) return;
    buf_.erase(buf_.begin(), buf_.begin() + static_cast<std::ptrdiff_t>(off_));
    off_ = 0;
  }

  void clear() {
    buf_.clear();
    off_ = 0;
    pending_ = 0;
  }

  /// Unconsumed bytes currently buffered.
  std::size_t buffered() const { return buf_.size() - off_; }

 private:
  Bytes buf_;
  std::size_t off_ = 0;      // consumed prefix
  std::size_t pending_ = 0;  // size of the frame last returned by next()
  std::size_t max_frame_;
  bool with_mac_;
};

}  // namespace ritas::net
