// Per-link reconnection policy: the pure, clock-free half of the
// self-healing channel layer.
//
// `LinkBackoff` produces the jittered exponential retry schedule and
// `LinkRetry` is the per-link lifecycle state machine
// (down / connecting / up / backoff). Neither reads a clock or any global
// randomness: time arrives as explicit millisecond values from the caller
// (TcpTransport feeds its monotonic clock; unit tests feed a counter) and
// jitter comes from a seeded Rng, so the same seed yields the same
// reconnect timeline bit-for-bit (tests/test_link.cpp relies on it).
//
// State machine (dialer side; the acceptor side only ever uses
// kDown <-> kConnecting <-> kUp since it never schedules retries):
//
//   kDown ──should_dial──▶ kConnecting ──on_up──▶ kUp
//     ▲                        │ on_down             │ on_down
//     │                        ▼                     ▼
//     └───(never; terminal states retry)──── kBackoff ──deadline──▶ dial again
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "core/transport.h"

namespace ritas::net {

struct BackoffOptions {
  std::uint64_t base_ms = 20;     // delay before the first retry
  std::uint64_t cap_ms = 2'000;   // exponential growth ceiling
  std::uint32_t jitter_pct = 50;  // delay drawn from [d - d*j/100, d]
};

/// Jittered truncated exponential backoff. Attempt k (0-based) waits
/// `min(base << k, cap)` milliseconds minus a uniformly random jitter of up
/// to jitter_pct percent — full delays synchronize reconnect storms after a
/// common outage; the jitter de-correlates them.
class LinkBackoff {
 public:
  LinkBackoff(const BackoffOptions& opts, std::uint64_t rng_seed)
      : opts_(opts), rng_(rng_seed) {}

  /// Delay before the next attempt; advances the attempt counter.
  std::uint64_t next_delay_ms() {
    std::uint64_t d = opts_.cap_ms;
    if (attempts_ < 63) {
      const std::uint64_t raw = opts_.base_ms << attempts_;
      // Shift overflow check: raw wraps only past 63 doublings (guarded
      // above), but base << k can still exceed the cap long before that.
      d = raw < opts_.base_ms || raw > opts_.cap_ms ? opts_.cap_ms : raw;
    }
    ++attempts_;
    if (opts_.jitter_pct > 0 && d > 0) {
      const std::uint64_t span = d * opts_.jitter_pct / 100;
      if (span > 0) d -= rng_.below(span + 1);
    }
    return d;
  }

  void reset() { attempts_ = 0; }
  std::uint32_t attempts() const { return attempts_; }

 private:
  BackoffOptions opts_;
  Rng rng_;
  std::uint32_t attempts_ = 0;
};

/// Lifecycle of one dialed link. All transitions are explicit and
/// time-injected; the class never blocks, sleeps, or reads a clock.
class LinkRetry {
 public:
  LinkRetry(const BackoffOptions& opts, std::uint64_t rng_seed)
      : backoff_(opts, rng_seed) {}

  LinkState state() const { return state_; }

  /// True when a (re)connect attempt should start at `now_ms`: immediately
  /// while down, or once the backoff deadline has passed.
  bool should_dial(std::uint64_t now_ms) const {
    return state_ == LinkState::kDown ||
           (state_ == LinkState::kBackoff && now_ms >= retry_at_ms_);
  }

  /// A connect/handshake attempt started.
  void on_dialing() { state_ = LinkState::kConnecting; }

  /// Handshake completed; the schedule restarts from the base delay on the
  /// next failure.
  void on_up() {
    if (ever_up_) ++reconnects_;
    ever_up_ = true;
    state_ = LinkState::kUp;
    backoff_.reset();
  }

  /// Connect failed or an established link dropped: schedule the next dial.
  void on_down(std::uint64_t now_ms) {
    state_ = LinkState::kBackoff;
    retry_at_ms_ = now_ms + backoff_.next_delay_ms();
  }

  /// Next dial deadline; meaningful only in kBackoff.
  std::uint64_t retry_at_ms() const { return retry_at_ms_; }

  /// Times on_up() re-established a link that had been up before.
  std::uint64_t reconnects() const { return reconnects_; }

  std::uint32_t attempts() const { return backoff_.attempts(); }

 private:
  LinkBackoff backoff_;
  LinkState state_ = LinkState::kDown;
  std::uint64_t retry_at_ms_ = 0;
  std::uint64_t reconnects_ = 0;
  bool ever_up_ = false;
};

}  // namespace ritas::net
