#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>
#if RITAS_HAS_EPOLL
#include <sys/epoll.h>
#endif

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <random>
#include <stdexcept>
#include <thread>
#include <utility>

#include "common/log.h"
#include "common/serialize.h"
#include "crypto/ct.h"
#include "crypto/hmac.h"
#include "net/batch_writer.h"

namespace ritas::net {

namespace {

// Session handshake wire constants (docs/PROTOCOLS.md "Reliable channel").
constexpr std::uint32_t kHandshakeMagic = 0x52495441;  // "RITA"
constexpr std::uint8_t kWireVersion = 2;               // v1 had no sessions
constexpr std::uint8_t kFlagAuthenticate = 0x01;
constexpr std::size_t kMacSize = Sha256::kDigestSize;
constexpr std::size_t kHelloSize = 4 + 1 + 1 + 4 + 8;
constexpr std::size_t kReplyBase = 4 + 1 + 1 + 4 + 8 + 8;
constexpr std::size_t kConfirmBase = 8;
constexpr std::size_t kFrameHeader = FrameReassembler::kHeaderSize;
// A pending accept that has not produced a well-formed HELLO within this
// many buffered bytes is garbage, whatever its timing.
constexpr std::size_t kMaxHandshakeRx = 4096;
// Frames gathered per sendmsg(); matches the iovec stack array in
// net/batch_writer.cpp (3 segments per frame).
constexpr std::size_t kMaxBatchFrames = 128;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

/// Handshake transcript MACs. `label` domain-separates REPLY ("a"),
/// CONFIRM ("d") and the session-id derivation ("s").
Sha256::Digest hs_mac(ByteView key, char label, std::uint32_t dialer,
                      std::uint32_t acceptor, std::uint64_t nonce_d,
                      std::uint64_t nonce_a, std::uint64_t counter_field) {
  Writer w(40);
  w.raw(to_bytes("RITAS-hs-"));
  w.u8(static_cast<std::uint8_t>(label));
  w.u32(dialer);
  w.u32(acceptor);
  w.u64(nonce_d);
  w.u64(nonce_a);
  w.u64(counter_field);
  return hmac_sha256(key, w.data());
}

/// Session id bound to both nonces (and, when authenticating, the pairwise
/// key): frames from any previous session carry a different sid and are
/// rejected before their counters can confuse the anti-replay floor.
std::uint64_t derive_sid(ByteView key, std::uint32_t dialer,
                         std::uint32_t acceptor, std::uint64_t nonce_d,
                         std::uint64_t nonce_a) {
  const auto mac = hs_mac(key, 's', dialer, acceptor, nonce_d, nonce_a, 0);
  Reader r(ByteView(mac.data(), mac.size()));
  const std::uint64_t sid = r.u64();
  return sid == 0 ? 1 : sid;  // 0 is reserved for "no session"
}

}  // namespace

struct TcpTransport::Counters {
  std::atomic<std::uint64_t> frames_sent{0};
  std::atomic<std::uint64_t> frames_received{0};
  std::atomic<std::uint64_t> frames_retransmitted{0};
  std::atomic<std::uint64_t> bytes_sent{0};
  std::atomic<std::uint64_t> mac_failures{0};
  std::atomic<std::uint64_t> replay_drops{0};
  std::atomic<std::uint64_t> session_rejects{0};
  std::atomic<std::uint64_t> counter_gaps{0};
  std::atomic<std::uint64_t> oversize_drops{0};
  std::atomic<std::uint64_t> queue_drops{0};
  std::atomic<std::uint64_t> link_reconnects{0};
  std::atomic<std::uint64_t> handshake_failures{0};
  std::atomic<std::uint64_t> crypto_offloaded{0};
  std::atomic<std::uint64_t> crypto_mac_offloaded{0};
  std::atomic<std::uint64_t> sendmsg_calls{0};
  std::atomic<std::uint64_t> bytes_to_kernel{0};
  std::atomic<std::uint64_t> batch_copy_bytes{0};
};

Fd& Fd::operator=(Fd&& o) noexcept {
  if (this != &o) {
    reset();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpTransport::TcpTransport(Options opts, const KeyChain& keys)
    : opts_(std::move(opts)), keys_(keys), counters_(std::make_unique<Counters>()) {
  if (opts_.peers.size() != opts_.n) {
    throw std::invalid_argument("TcpTransport: need one address per process");
  }
  std::uint64_t seed = opts_.rng_seed;
  if (seed == 0) {
    std::random_device rd;
    seed = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  }
  rng_ = std::make_unique<Rng>(seed);
  // Crypto offload only exists when there is MAC work to move; with
  // authentication off the option is inert and the wire path untouched.
  if (opts_.authenticate && opts_.crypto_threads > 0) {
    crypto_ = std::make_unique<CryptoPool>(opts_.crypto_threads);
  }
  conns_.reserve(opts_.n);
  for (ProcessId p = 0; p < opts_.n; ++p) {
    conns_.push_back(std::make_unique<Conn>(opts_.max_frame, opts_.authenticate));
    if (p < opts_.self) {
      // We dial every lower id; each link's jitter stream is independent.
      conns_[p]->retry =
          std::make_unique<LinkRetry>(opts_.backoff, seed ^ (0x9e3779b97f4a7c15ULL * (p + 1)));
    }
  }
  epoch_ns_ = now_ns();
}

TcpTransport::~TcpTransport() { stop(); }

std::uint64_t TcpTransport::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::uint64_t TcpTransport::now_ms() const { return (now_ns() - epoch_ns_) / 1'000'000; }

std::uint32_t TcpTransport::start_threshold() const {
  const std::uint32_t want = opts_.n - 1;
  if (opts_.min_start_links != 0) {
    return opts_.min_start_links < want ? opts_.min_start_links : want;
  }
  const std::uint32_t f = (opts_.n - 1) / 3;
  return want - f;  // n - f - 1
}

void TcpTransport::start() {
  // Wakeup pipe so other threads can interrupt poll_once().
  int pipefd[2];
  if (::pipe(pipefd) != 0) throw std::runtime_error("pipe() failed");
  wake_rx_ = Fd(pipefd[0]);
  wake_tx_ = Fd(pipefd[1]);
  set_nonblocking(wake_rx_.get());

  // Listen socket.
  Fd lfd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!lfd.valid()) throw std::runtime_error("socket() failed");
  int one = 1;
  ::setsockopt(lfd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.peers[opts_.self].port);
  addr.sin_addr.s_addr = INADDR_ANY;
  if (::bind(lfd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw std::runtime_error("bind() failed on port " +
                             std::to_string(opts_.peers[opts_.self].port));
  }
  if (::listen(lfd.get(), 64) != 0) throw std::runtime_error("listen() failed");
  set_nonblocking(lfd.get());
  listen_fd_ = std::move(lfd);

  // Partial-mesh startup: pump the reactor until enough links are up; the
  // stragglers keep dialing from poll_once() for the session's lifetime.
  const std::uint64_t deadline =
      now_ms() + static_cast<std::uint64_t>(opts_.connect_timeout_ms);
  const std::uint32_t want = start_threshold();
  while (links_up() < want) {
    if (stopped_.load()) throw std::runtime_error("TcpTransport: stopped during start");
    if (now_ms() > deadline) {
      throw std::runtime_error(
          "TcpTransport: mesh setup timed out (" + std::to_string(links_up()) +
          "/" + std::to_string(want) + " links up)");
    }
    poll_once(20);
  }
}

void TcpTransport::stop() {
  stopped_.store(true);
  wakeup();
  // Join the crypto workers first: their jobs touch counters_ and the
  // wakeup pipe, both of which stay alive below; after the join no
  // off-thread code runs against this object.
  crypto_.reset();
  for (auto& c : conns_) {
    std::lock_guard<std::mutex> lock(c->mutex);
    c->fd.reset();
    c->state = LinkState::kDown;
    c->sid = 0;
    c->phase = HsPhase::kIdle;
  }
  pending_accepts_.clear();
  listen_fd_.reset();
#if RITAS_HAS_EPOLL
  // The kernel dropped every registration when the sockets closed; the
  // mirror map must follow so a restart-free reuse cannot see stale owners.
  epoll_regs_.clear();
  epoll_fd_.reset();
#endif
}

void TcpTransport::wakeup() {
  if (wake_tx_.valid()) {
    const std::uint8_t b = 1;
    [[maybe_unused]] ssize_t k = ::write(wake_tx_.get(), &b, 1);
  }
}

bool TcpTransport::is_poll_thread() const {
  return poll_tid_.load(std::memory_order_relaxed) ==
         std::hash<std::thread::id>{}(std::this_thread::get_id());
}

void TcpTransport::trace_link(TraceEventKind kind, ProcessId peer,
                              std::uint64_t arg) {
  if (tracer_ == nullptr) return;
  TraceEvent e;
  e.ts_ns = now_ns();
  e.kind = kind;
  e.peer = peer;
  e.arg = arg;
  tracer_->record(e);
}

bool TcpTransport::write_all(int fd, ByteView data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t k = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (k > 0) {
      off += static_cast<std::size_t>(k);
      continue;
    }
    if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      ::poll(&pfd, 1, 1000);
      continue;
    }
    if (k < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool TcpTransport::prep_entry(Conn& c, Retained& e, ProcessId to) {
  if (e.prep_sid == c.sid) return true;  // header + MAC already current
  bool have_mac = false;
  if (e.mac) {
    if (e.mac->sid == c.sid) {
      if (!e.mac->ready.load(std::memory_order_acquire)) {
        return false;  // still computing: the drain must stop here (order)
      }
      e.mac_trailer = e.mac->mac;
      have_mac = true;
    }
    // Ready and adopted, or staged under a dead session: either way the
    // slot is spent. A stale-sid slot falls through to the inline re-MAC.
    e.mac.reset();
  }
  if (!have_mac && opts_.authenticate) {
    Writer macin(24);
    macin.u32(opts_.self);
    macin.u32(to);
    macin.u64(c.sid);
    macin.u64(e.counter);
    e.mac_trailer = hmac_sha256_2(keys_.key(to), macin.data(), e.frame);
  }
  Writer hdr(kFrameHeader);
  hdr.u32(static_cast<std::uint32_t>(e.frame.size()));
  hdr.u64(c.sid);
  hdr.u64(e.counter);
  const ByteView hb = hdr.data();
  std::memcpy(e.hdr.data(), hb.data(), e.hdr.size());
  e.prep_sid = c.sid;
  return true;
}

void TcpTransport::drain_locked(Conn& c, ProcessId to) {
  if (c.state != LinkState::kUp || c.broken || !c.fd.valid()) return;
  c.tx_blocked = false;
  for (;;) {
    if (c.retained.empty()) return;
    const std::uint64_t base = c.retained.front().counter;
    if (c.tx_write_next < base) {
      // Eviction outran the cursor: those frames are gone (queue_drops);
      // restart at the queue head. The partial-head eviction guard in
      // send() guarantees this never tears a half-written frame.
      c.tx_write_next = base;
      c.tx_partial = 0;
    }
    const std::uint64_t idx0 = c.tx_write_next - base;
    if (idx0 >= c.retained.size()) return;  // backlog fully written

    // Gather consecutive ready frames into iovec triplets pointing straight
    // at the retained header/body/MAC storage — zero payload copies.
    FrameImage imgs[kMaxBatchFrames];
    std::size_t nimg = 0;
    std::size_t batch_bytes = 0;
    for (std::size_t i = static_cast<std::size_t>(idx0);
         i < c.retained.size() && nimg < kMaxBatchFrames; ++i) {
      Retained& e = c.retained[i];
      if (!prep_entry(c, e, to)) break;  // staged MAC still computing
      FrameImage& img = imgs[nimg];
      img.parts[0] = ByteView(e.hdr.data(), e.hdr.size());
      img.parts[1] = e.frame;
      img.parts[2] = opts_.authenticate
                         ? ByteView(e.mac_trailer.data(), e.mac_trailer.size())
                         : ByteView{};
      batch_bytes += img.size();
      ++nimg;
      // Soft cap: at least one frame is always offered.
      if (batch_bytes >= opts_.max_batch_bytes) break;
    }
    if (nimg == 0) return;  // head is waiting on the crypto pool

    const BatchWriteResult r = sendmsg_batch(c.fd.get(), imgs, nimg,
                                             c.tx_partial, batch_iov_budget());
    counters_->sendmsg_calls.fetch_add(1, std::memory_order_relaxed);
    if (r.status == BatchWriteResult::Status::kAgain) {
      c.tx_blocked = true;  // EPOLLOUT resumes byte-exactly from tx_partial
      return;
    }
    if (r.status == BatchWriteResult::Status::kError) {
      LOG_WARN("tcp batched send to p%u failed: %s", to, std::strerror(errno));
      c.broken = true;  // the poll thread reaps the stream and redials
      wakeup();
      return;
    }
    counters_->bytes_to_kernel.fetch_add(r.bytes, std::memory_order_relaxed);

    // Advance the cursor over fully-written frames; whatever is left is the
    // byte offset into the first unfinished frame (possibly mid-header or
    // mid-MAC — build_batch_iov resumes across segment boundaries).
    std::size_t acc = c.tx_partial + r.bytes;
    std::size_t fi = 0;
    while (fi < nimg && acc >= imgs[fi].size()) {
      acc -= imgs[fi].size();
      Retained& e = c.retained[static_cast<std::size_t>(idx0) + fi];
      e.written = true;
      e.mac.reset();
      counters_->frames_sent.fetch_add(1, std::memory_order_relaxed);
      counters_->bytes_sent.fetch_add(imgs[fi].size(), std::memory_order_relaxed);
      if (e.retx) {
        e.retx = false;
        counters_->frames_retransmitted.fetch_add(1, std::memory_order_relaxed);
      }
      ++c.tx_write_next;
      ++fi;
    }
    c.tx_partial = acc;
    if (r.bytes == 0) {
      c.tx_blocked = true;  // defensive: zero-byte progress, wait for POLLOUT
      return;
    }
    // Loop: more backlog past the frame/byte caps, or a partial head that
    // keeps pushing until the socket blocks (kAgain) or the queue drains.
  }
}

void TcpTransport::drain_pending() {
  for (ProcessId p = 0; p < opts_.n; ++p) {
    if (p == opts_.self) continue;
    Conn& c = *conns_[p];
    {
      std::lock_guard<std::mutex> lock(c.mutex);
      drain_locked(c, p);
    }
    if (crypto_) harvest_verified(p);
  }
}

void TcpTransport::stage_mac(Conn& c, ProcessId to, std::uint64_t counter,
                             const Slice& frame) {
  auto slot = std::make_shared<MacSlot>();
  slot->sid = c.sid;
  c.retained.back().mac = slot;
  // The job is self-contained: key view (keys_ outlives the joined pool),
  // ids, counter, refcounted frame. No transport locks are taken.
  const ProcessId self = opts_.self;
  const std::uint64_t sid = c.sid;
  const ByteView key = keys_.key(to);
  crypto_->submit([this, slot, key, self, to, sid, counter, frame] {
    Writer macin(24);
    macin.u32(self);
    macin.u32(to);
    macin.u64(sid);
    macin.u64(counter);
    slot->mac = hmac_sha256_2(key, macin.data(), frame);
    slot->ready.store(true, std::memory_order_release);
    counters_->crypto_mac_offloaded.fetch_add(1, std::memory_order_relaxed);
    wakeup();  // poll thread drains the staged frames in counter order
  });
}

void TcpTransport::send(ProcessId to, Slice frame) {
  if (stopped_.load() || to >= opts_.n || to == opts_.self) return;
  Conn& c = *conns_[to];
  bool need_wake = false;
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    const std::uint64_t counter = c.tx_next++;

    // Retain the frame for counter resync before (or instead of) writing
    // it. Drop-oldest keeps the budget bounded; evicting a frame that never
    // reached a socket is real backpressure loss and is counted. The one
    // frame eviction must never touch is a half-written head — popping it
    // would tear the byte stream mid-frame.
    c.retained.push_back(Retained{counter, frame, false, false, nullptr});
    c.retained_bytes += frame.size();
    while (c.retained_bytes > opts_.send_queue_max_bytes && c.retained.size() > 1) {
      const Retained& victim = c.retained.front();
      if (c.tx_partial != 0 && victim.counter == c.tx_write_next) break;
      if (!victim.written) counters_->queue_drops.fetch_add(1, std::memory_order_relaxed);
      c.retained_bytes -= victim.frame.size();
      c.retained.pop_front();
    }

    if (c.state != LinkState::kUp || c.broken || !c.fd.valid()) {
      return;  // queued; the next session's resync flushes it
    }
    if (crypto_) {
      // Offload: the MAC computes on the pool and the poll thread drains
      // once the digest is ready — the sender never blocks on crypto or
      // I/O here, it only assigned a counter and queued.
      stage_mac(c, to, counter, frame);
      return;  // the worker's wakeup() triggers the poll-thread drain
    }
    // Inline MAC on the sender thread (keeps multi-sender parallelism even
    // without a pool); the write either happens here (batching off) or on
    // the poll thread's next batched drain.
    prep_entry(c, c.retained.back(), to);
    if (opts_.batch_sends) {
      need_wake = !is_poll_thread();
    } else {
      const bool was_blocked = c.tx_blocked;
      drain_locked(c, to);
      // A newly-blocked link needs the poll thread to register EPOLLOUT.
      need_wake = c.tx_blocked && !was_blocked && !is_poll_thread();
    }
  }
  if (need_wake) wakeup();
}

void TcpTransport::begin_dial(ProcessId peer) {
  Conn& c = *conns_[peer];
  c.retry->on_dialing();
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  bool failed = !fd.valid();
  sockaddr_in peer_addr{};
  if (!failed) {
    peer_addr.sin_family = AF_INET;
    peer_addr.sin_port = htons(opts_.peers[peer].port);
    failed = ::inet_pton(AF_INET, opts_.peers[peer].host.c_str(),
                         &peer_addr.sin_addr) != 1;
  }
  if (!failed) {
    set_nonblocking(fd.get());
    const int rc = ::connect(fd.get(), reinterpret_cast<sockaddr*>(&peer_addr),
                             sizeof(peer_addr));
    if (rc == 0 || errno == EINPROGRESS) {
      {
        std::lock_guard<std::mutex> lock(c.mutex);
        c.fd = std::move(fd);
        c.state = LinkState::kConnecting;
      }
      c.phase = HsPhase::kDialWait;
      c.hs_rx.clear();
      c.hs_deadline_ms = now_ms() + static_cast<std::uint64_t>(opts_.handshake_timeout_ms);
      if (rc == 0) on_dial_writable(peer);
      return;
    }
    failed = true;
  }
  if (failed) c.retry->on_down(now_ms());
}

void TcpTransport::on_dial_writable(ProcessId peer) {
  Conn& c = *conns_[peer];
  int err = 0;
  socklen_t len = sizeof(err);
  ::getsockopt(c.fd.get(), SOL_SOCKET, SO_ERROR, &err, &len);
  if (err != 0) {
    link_down(peer);
    return;
  }
  set_nodelay(c.fd.get());
  c.nonce_local = rng_->next();
  Writer hello(kHelloSize);
  hello.u32(kHandshakeMagic);
  hello.u8(kWireVersion);
  hello.u8(opts_.authenticate ? kFlagAuthenticate : 0);
  hello.u32(opts_.self);
  hello.u64(c.nonce_local);
  if (!write_all(c.fd.get(), hello.data())) {
    link_down(peer);
    return;
  }
  c.phase = HsPhase::kHelloSent;
}

void TcpTransport::handshake_readable(ProcessId peer) {
  // Dialer side only: accumulate the REPLY, verify it, CONFIRM, resync.
  Conn& c = *conns_[peer];
  std::uint8_t buf[4096];
  for (;;) {
    const ssize_t k = ::recv(c.fd.get(), buf, sizeof(buf), 0);
    if (k > 0) {
      c.hs_rx.insert(c.hs_rx.end(), buf, buf + k);
      continue;
    }
    if (k == 0 || (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)) {
      link_down(peer);
      return;
    }
    if (errno == EINTR) continue;
    break;  // EAGAIN: no more bytes for now
  }
  const std::size_t reply_size = kReplyBase + (opts_.authenticate ? kMacSize : 0);
  if (c.hs_rx.size() < reply_size) {
    if (c.hs_rx.size() > kMaxHandshakeRx) {
      counters_->handshake_failures.fetch_add(1, std::memory_order_relaxed);
      link_down(peer);
    }
    return;
  }
  Reader r(ByteView(c.hs_rx.data(), kReplyBase));
  const std::uint32_t magic = r.u32();
  const std::uint8_t version = r.u8();
  const std::uint8_t flags = r.u8();
  const std::uint32_t id = r.u32();
  const std::uint64_t nonce_a = r.u64();
  const std::uint64_t peer_rx_expected = r.u64();
  const std::uint8_t want_flags = opts_.authenticate ? kFlagAuthenticate : 0;
  bool ok = magic == kHandshakeMagic && version == kWireVersion &&
            flags == want_flags && id == peer;
  if (ok && opts_.authenticate) {
    const auto mac = hs_mac(keys_.key(peer), 'a', opts_.self, peer,
                            c.nonce_local, nonce_a, peer_rx_expected);
    ok = ct_equal(ByteView(mac.data(), mac.size()),
                  ByteView(c.hs_rx.data() + kReplyBase, kMacSize));
  }
  if (!ok) {
    counters_->handshake_failures.fetch_add(1, std::memory_order_relaxed);
    link_down(peer);
    return;
  }
  Writer confirm(kConfirmBase + kMacSize);
  confirm.u64(c.rx_expected);
  if (opts_.authenticate) {
    const auto mac = hs_mac(keys_.key(peer), 'd', opts_.self, peer,
                            c.nonce_local, nonce_a, c.rx_expected);
    confirm.raw(ByteView(mac.data(), mac.size()));
  }
  if (!write_all(c.fd.get(), confirm.data())) {
    link_down(peer);
    return;
  }
  // Bytes past the REPLY are already data frames of the new session.
  Bytes leftover(c.hs_rx.begin() + static_cast<std::ptrdiff_t>(reply_size),
                 c.hs_rx.end());
  c.hs_rx.clear();
  complete_handshake(peer, c.nonce_local, nonce_a, peer_rx_expected);
  if (!leftover.empty()) {
    c.rx.feed(leftover.data(), leftover.size());
    process_rx(peer);
  }
}

void TcpTransport::pending_accept_readable(PendingAccept& pa) {
  std::uint8_t buf[4096];
  for (;;) {
    const ssize_t k = ::recv(pa.fd.get(), buf, sizeof(buf), 0);
    if (k > 0) {
      pa.rx.insert(pa.rx.end(), buf, buf + k);
      continue;
    }
    if (k == 0 || (errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR)) {
      reset_fd(pa.fd);  // dialer went away mid-handshake
      return;
    }
    if (errno == EINTR) continue;
    break;
  }
  if (pa.rx.size() > kMaxHandshakeRx) {
    counters_->handshake_failures.fetch_add(1, std::memory_order_relaxed);
    reset_fd(pa.fd);
    return;
  }
  if (!pa.got_hello) {
    if (pa.rx.size() < kHelloSize) return;
    Reader r(ByteView(pa.rx.data(), kHelloSize));
    const std::uint32_t magic = r.u32();
    const std::uint8_t version = r.u8();
    const std::uint8_t flags = r.u8();
    const std::uint32_t id = r.u32();
    const std::uint64_t nonce_d = r.u64();
    const std::uint8_t want_flags = opts_.authenticate ? kFlagAuthenticate : 0;
    // Only higher ids dial us; anything else is a malformed or forged hello.
    if (magic != kHandshakeMagic || version != kWireVersion ||
        flags != want_flags || id <= opts_.self || id >= opts_.n) {
      counters_->handshake_failures.fetch_add(1, std::memory_order_relaxed);
      reset_fd(pa.fd);
      return;
    }
    pa.got_hello = true;
    pa.claimed = id;
    pa.nonce_d = nonce_d;
    pa.nonce_a = rng_->next();
    pa.rx.erase(pa.rx.begin(), pa.rx.begin() + kHelloSize);
    set_nodelay(pa.fd.get());
    // REPLY with our receive floor so the peer can resync its counters.
    // The established session (if any) stays untouched until the dialer
    // proves key knowledge with its CONFIRM — an unauthenticated hello
    // must not be able to take down a healthy link.
    const std::uint64_t rx_expected = conns_[pa.claimed]->rx_expected;
    Writer reply(kReplyBase + kMacSize);
    reply.u32(kHandshakeMagic);
    reply.u8(kWireVersion);
    reply.u8(want_flags);
    reply.u32(opts_.self);
    reply.u64(pa.nonce_a);
    reply.u64(rx_expected);
    if (opts_.authenticate) {
      const auto mac = hs_mac(keys_.key(pa.claimed), 'a', pa.claimed, opts_.self,
                              pa.nonce_d, pa.nonce_a, rx_expected);
      reply.raw(ByteView(mac.data(), mac.size()));
    }
    if (!write_all(pa.fd.get(), reply.data())) {
      reset_fd(pa.fd);
      return;
    }
  }
  const std::size_t confirm_size = kConfirmBase + (opts_.authenticate ? kMacSize : 0);
  if (pa.rx.size() < confirm_size) return;
  Reader r(ByteView(pa.rx.data(), kConfirmBase));
  const std::uint64_t peer_rx_expected = r.u64();
  if (opts_.authenticate) {
    const auto mac = hs_mac(keys_.key(pa.claimed), 'd', pa.claimed, opts_.self,
                            pa.nonce_d, pa.nonce_a, peer_rx_expected);
    if (!ct_equal(ByteView(mac.data(), mac.size()),
                  ByteView(pa.rx.data() + kConfirmBase, kMacSize))) {
      counters_->handshake_failures.fetch_add(1, std::memory_order_relaxed);
      reset_fd(pa.fd);
      return;
    }
  }
  // Authenticated: adopt the socket, replacing whatever the slot held (the
  // dialer redials only when its side of the old stream is dead).
  const ProcessId peer = pa.claimed;
  Conn& c = *conns_[peer];
  if (c.phase == HsPhase::kEstablished) link_down(peer);
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    forget_fd(c.fd.get());  // a crossed dial may still be registered
    c.fd = std::move(pa.fd);
    c.state = LinkState::kConnecting;
  }
  c.phase = HsPhase::kWaitConfirm;
  c.rx.clear();
  Bytes leftover(pa.rx.begin() + static_cast<std::ptrdiff_t>(confirm_size),
                 pa.rx.end());
  complete_handshake(peer, pa.nonce_d, pa.nonce_a, peer_rx_expected);
  if (!leftover.empty()) {
    c.rx.feed(leftover.data(), leftover.size());
    process_rx(peer);
  }
}

void TcpTransport::complete_handshake(ProcessId peer, std::uint64_t nonce_d,
                                      std::uint64_t nonce_a,
                                      std::uint64_t peer_rx_expected) {
  Conn& c = *conns_[peer];
  const std::uint32_t dialer = peer < opts_.self ? opts_.self : peer;
  const std::uint32_t acceptor = peer < opts_.self ? peer : opts_.self;
  const ByteView sid_key = opts_.authenticate ? keys_.key(peer) : ByteView{};
  const std::uint64_t sid = derive_sid(sid_key, dialer, acceptor, nonce_d, nonce_a);

  std::uint64_t flushed = 0;
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    c.sid = sid;
    c.broken = false;
    c.tx_partial = 0;
    c.tx_blocked = false;
    // Counter resync: everything below the peer's receive floor was
    // delivered in a previous session; everything at or above it is
    // retransmitted under the new session id, oldest first, ahead of any
    // new sends (which queue behind this mutex). The sid change invalidates
    // every entry's prep (prep_sid mismatch), so the drain re-MACs each
    // frame inline under the new session.
    while (!c.retained.empty() && c.retained.front().counter < peer_rx_expected) {
      c.retained_bytes -= c.retained.front().frame.size();
      c.retained.pop_front();
    }
    for (Retained& e : c.retained) {
      if (e.written) {
        e.written = false;
        e.retx = true;  // rewrite under this session is a retransmission
      }
    }
    const std::uint64_t resync_base =
        c.retained.empty() ? c.tx_next : c.retained.front().counter;
    c.tx_write_next = resync_base;
    c.state = LinkState::kUp;
    drain_locked(c, peer);
    flushed = c.tx_write_next - resync_base;
  }
  c.phase = HsPhase::kEstablished;
  if (c.retry) c.retry->on_up();
  if (c.ever_up) counters_->link_reconnects.fetch_add(1, std::memory_order_relaxed);
  c.ever_up = true;
  trace_link(TraceEventKind::kLinkHandshake, peer, flushed);
  trace_link(TraceEventKind::kLinkUp, peer, sid);
}

void TcpTransport::link_down(ProcessId peer) {
  Conn& c = *conns_[peer];
  const bool was_up = c.phase == HsPhase::kEstablished;
  std::uint64_t old_sid = 0;
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    old_sid = c.sid;
    reset_fd(c.fd);
    c.sid = 0;
    c.broken = false;
    c.kill_request = 0;
    c.tx_partial = 0;
    c.tx_blocked = false;
    c.state = c.retry ? LinkState::kBackoff : LinkState::kDown;
  }
  c.phase = HsPhase::kIdle;
  c.hs_rx.clear();
  c.rx.clear();
  if (c.retry) c.retry->on_down(now_ms());
  if (was_up) trace_link(TraceEventKind::kLinkDown, peer, old_sid);
}

void TcpTransport::execute_kill(ProcessId peer) {
  Conn& c = *conns_[peer];
  std::uint8_t req;
  int fd;
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    req = c.kill_request;
    c.kill_request = 0;
    fd = c.fd.get();
  }
  if (req == 0 || fd < 0) return;
  const KillMode mode = static_cast<KillMode>(req - 1);
  if (mode == KillMode::kRst) {
    // Abortive close: the peer sees ECONNRESET, we tear down immediately.
    linger lg{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    link_down(peer);
  } else {
    // Half-close: our FIN reaches the peer as EOF; it tears down its end
    // and the teardown propagates back to us as EOF too.
    ::shutdown(fd, SHUT_WR);
  }
}

void TcpTransport::kill_link(ProcessId peer, KillMode mode) {
  if (peer >= opts_.n || peer == opts_.self) return;
  Conn& c = *conns_[peer];
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    c.kill_request = static_cast<std::uint8_t>(1 + static_cast<std::uint8_t>(mode));
  }
  wakeup();
}

void TcpTransport::service_timers() {
  const std::uint64_t now = now_ms();
  for (ProcessId p = 0; p < opts_.n; ++p) {
    if (p == opts_.self) continue;
    Conn& c = *conns_[p];
    bool broken, killed;
    {
      std::lock_guard<std::mutex> lock(c.mutex);
      broken = c.broken;
      killed = c.kill_request != 0;
    }
    if (killed) execute_kill(p);
    if (broken) link_down(p);
    if (c.phase != HsPhase::kIdle && c.phase != HsPhase::kEstablished &&
        now > c.hs_deadline_ms) {
      link_down(p);  // handshake stalled; dialer retries after backoff
    }
    if (c.retry && c.phase == HsPhase::kIdle && c.retry->should_dial(now)) {
      begin_dial(p);
    }
  }
  for (auto& pa : pending_accepts_) {
    if (pa.fd.valid() && now > pa.deadline_ms) {
      counters_->handshake_failures.fetch_add(1, std::memory_order_relaxed);
      reset_fd(pa.fd);
    }
  }
  pending_accepts_.erase(
      std::remove_if(pending_accepts_.begin(), pending_accepts_.end(),
                     [](const PendingAccept& pa) { return !pa.fd.valid(); }),
      pending_accepts_.end());
}

int TcpTransport::fold_timer_deadlines(int timeout_ms) {
  std::uint64_t nearest = ~0ULL;
  for (ProcessId p = 0; p < opts_.n; ++p) {
    if (p == opts_.self) continue;
    Conn& c = *conns_[p];
    if (c.phase != HsPhase::kIdle && c.phase != HsPhase::kEstablished &&
        c.hs_deadline_ms < nearest) {
      nearest = c.hs_deadline_ms;
    }
    if (c.retry && c.phase == HsPhase::kIdle &&
        c.retry->state() == LinkState::kBackoff && c.retry->retry_at_ms() < nearest) {
      nearest = c.retry->retry_at_ms();
    }
  }
  for (const auto& pa : pending_accepts_) {
    if (pa.deadline_ms < nearest) nearest = pa.deadline_ms;
  }
  // Never oversleep a redial or handshake deadline.
  int tmo = timeout_ms;
  if (nearest != ~0ULL) {
    const std::uint64_t now = now_ms();
    const std::uint64_t until = nearest > now ? nearest - now : 0;
    if (tmo < 0 || static_cast<std::uint64_t>(tmo) > until) {
      tmo = static_cast<int>(until);
    }
  }
  return tmo;
}

void TcpTransport::dispatch_event(std::int64_t owner, bool rin, bool rout,
                                  bool rerr) {
  if (owner == -1) {
    if (rin || rerr) {
      std::uint8_t buf[256];
      while (::read(wake_rx_.get(), buf, sizeof(buf)) > 0) {
      }
    }
    return;
  }
  if (owner == -2) {
    for (;;) {
      Fd fd(::accept(listen_fd_.get(), nullptr, nullptr));
      if (!fd.valid()) break;
      set_nonblocking(fd.get());
      pending_accepts_.push_back(PendingAccept{
          std::move(fd), {},
          now_ms() + static_cast<std::uint64_t>(opts_.handshake_timeout_ms)});
    }
    return;
  }
  if (owner <= -3) {
    const std::size_t k = static_cast<std::size_t>(-3 - owner);
    if (k < pending_accepts_.size() && pending_accepts_[k].fd.valid() &&
        (rin || rerr)) {
      pending_accept_readable(pending_accepts_[k]);
    }
    return;
  }
  const ProcessId peer = static_cast<ProcessId>(owner);
  if (peer >= opts_.n || peer == opts_.self) return;
  Conn& c = *conns_[peer];
  switch (c.phase) {
    case HsPhase::kDialWait:
      if (rout || rerr) on_dial_writable(peer);
      break;
    case HsPhase::kHelloSent:
      if (rin || rerr) handshake_readable(peer);
      break;
    case HsPhase::kEstablished:
      if (rin || rerr) handle_readable(peer);
      // handle_readable may have torn the link down: re-check before the
      // write-side resume so a stale EPOLLOUT can't touch a dead stream.
      if (rout && c.phase == HsPhase::kEstablished) {
        std::lock_guard<std::mutex> lock(c.mutex);
        drain_locked(c, peer);
      }
      break;
    default:
      break;
  }
}

void TcpTransport::wait_with_poll(int timeout_ms) {
  // Owner encoding: -1 wake pipe, -2 listen socket, -(3+k) pending accept
  // k, otherwise the peer id.
  std::vector<pollfd> pfds;
  std::vector<std::int64_t> owners;
  pfds.push_back(pollfd{wake_rx_.get(), POLLIN, 0});
  owners.push_back(-1);
  if (listen_fd_.valid()) {
    pfds.push_back(pollfd{listen_fd_.get(), POLLIN, 0});
    owners.push_back(-2);
  }
  for (std::size_t k = 0; k < pending_accepts_.size(); ++k) {
    pfds.push_back(pollfd{pending_accepts_[k].fd.get(), POLLIN, 0});
    owners.push_back(-3 - static_cast<std::int64_t>(k));
  }
  for (ProcessId p = 0; p < opts_.n; ++p) {
    if (p == opts_.self) continue;
    Conn& c = *conns_[p];
    int fd;
    bool blocked;
    {
      std::lock_guard<std::mutex> lock(c.mutex);
      fd = c.fd.get();
      blocked = c.tx_blocked;
    }
    if (fd < 0 || c.phase == HsPhase::kIdle) continue;
    short events;
    if (c.phase == HsPhase::kDialWait) {
      events = POLLOUT;
    } else if (c.phase == HsPhase::kEstablished) {
      events = static_cast<short>(POLLIN | (blocked ? POLLOUT : 0));
    } else {
      events = POLLIN;
    }
    pfds.push_back(pollfd{fd, events, 0});
    owners.push_back(p);
  }

  const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (rc <= 0) return;
  for (std::size_t i = 0; i < pfds.size(); ++i) {
    const short rev = pfds[i].revents;
    if (rev == 0) continue;
    dispatch_event(owners[i], (rev & POLLIN) != 0, (rev & POLLOUT) != 0,
                   (rev & (POLLERR | POLLHUP | POLLNVAL)) != 0);
  }
}

#if RITAS_HAS_EPOLL

void TcpTransport::forget_fd(int fd) {
  if (fd >= 0) epoll_regs_.erase(fd);
}

void TcpTransport::reset_fd(Fd& fd) {
  forget_fd(fd.get());
  fd.reset();
}

void TcpTransport::wait_with_epoll(int timeout_ms) {
  if (!epoll_fd_.valid()) {
    Fd efd(::epoll_create1(EPOLL_CLOEXEC));
    if (!efd.valid()) {
      // No epoll (container seccomp, exotic kernel): permanently fall back.
      opts_.use_epoll = false;
      wait_with_poll(timeout_ms);
      return;
    }
    epoll_fd_ = std::move(efd);
  }

  // Desired interest set for this cycle, same owner encoding as the poll
  // backend. Level-triggered; EPOLLOUT only while a link has blocked output.
  std::vector<std::pair<int, EpollReg>> desired;
  desired.reserve(2 + pending_accepts_.size() + opts_.n);
  desired.emplace_back(wake_rx_.get(), EpollReg{EPOLLIN, -1});
  if (listen_fd_.valid()) {
    desired.emplace_back(listen_fd_.get(), EpollReg{EPOLLIN, -2});
  }
  for (std::size_t k = 0; k < pending_accepts_.size(); ++k) {
    if (!pending_accepts_[k].fd.valid()) continue;
    desired.emplace_back(pending_accepts_[k].fd.get(),
                         EpollReg{EPOLLIN, -3 - static_cast<std::int64_t>(k)});
  }
  for (ProcessId p = 0; p < opts_.n; ++p) {
    if (p == opts_.self) continue;
    Conn& c = *conns_[p];
    int fd;
    bool blocked;
    {
      std::lock_guard<std::mutex> lock(c.mutex);
      fd = c.fd.get();
      blocked = c.tx_blocked;
    }
    if (fd < 0 || c.phase == HsPhase::kIdle) continue;
    std::uint32_t events;
    if (c.phase == HsPhase::kDialWait) {
      events = EPOLLOUT;
    } else if (c.phase == HsPhase::kEstablished) {
      events = EPOLLIN | (blocked ? EPOLLOUT : 0);
    } else {
      events = EPOLLIN;
    }
    desired.emplace_back(fd, EpollReg{events, static_cast<std::int64_t>(p)});
  }

  // Mark-and-sweep reconcile against the registration mirror. The mirror is
  // kept honest by reset_fd(): every close of a possibly-registered fd
  // drops its record first, so a reused fd number is re-ADDed, never
  // mistaken for the old registration.
  for (auto it = epoll_regs_.begin(); it != epoll_regs_.end();) {
    bool still_wanted = false;
    for (const auto& d : desired) {
      if (d.first == it->first) {
        still_wanted = true;
        break;
      }
    }
    if (still_wanted) {
      ++it;
      continue;
    }
    ::epoll_ctl(epoll_fd_.get(), EPOLL_CTL_DEL, it->first, nullptr);
    it = epoll_regs_.erase(it);
  }
  for (const auto& [fd, reg] : desired) {
    const auto it = epoll_regs_.find(fd);
    if (it != epoll_regs_.end() && it->second.events == reg.events &&
        it->second.owner == reg.owner) {
      continue;  // cached: no syscall
    }
    epoll_event ev{};
    ev.events = reg.events;
    ev.data.u64 = static_cast<std::uint64_t>(reg.owner);
    int op = it == epoll_regs_.end() ? EPOLL_CTL_ADD : EPOLL_CTL_MOD;
    if (::epoll_ctl(epoll_fd_.get(), op, fd, &ev) != 0) {
      // EEXIST/ENOENT: the mirror drifted (e.g. dup'd fd corner); the
      // opposite op recovers.
      op = op == EPOLL_CTL_ADD ? EPOLL_CTL_MOD : EPOLL_CTL_ADD;
      if (::epoll_ctl(epoll_fd_.get(), op, fd, &ev) != 0) {
        epoll_regs_.erase(fd);
        continue;
      }
    }
    epoll_regs_[fd] = reg;
  }

  epoll_event evs[64];
  const int rc = ::epoll_wait(epoll_fd_.get(), evs, 64, timeout_ms);
  if (rc <= 0) return;
  for (int i = 0; i < rc; ++i) {
    const std::int64_t owner = static_cast<std::int64_t>(evs[i].data.u64);
    const std::uint32_t rev = evs[i].events;
    dispatch_event(owner, (rev & EPOLLIN) != 0, (rev & EPOLLOUT) != 0,
                   (rev & (EPOLLERR | EPOLLHUP)) != 0);
  }
}

#endif  // RITAS_HAS_EPOLL

void TcpTransport::poll_once(int timeout_ms) {
  if (stopped_.load()) return;
  poll_tid_.store(std::hash<std::thread::id>{}(std::this_thread::get_id()),
                  std::memory_order_relaxed);
  service_timers();
  // Top-of-cycle drain: flush frames enqueued (or MAC-completed) since the
  // last wait — the wakeup pipe got us here for exactly this.
  drain_pending();
  const int tmo = fold_timer_deadlines(timeout_ms);
#if RITAS_HAS_EPOLL
  if (opts_.use_epoll) {
    wait_with_epoll(tmo);
  } else {
    wait_with_poll(tmo);
  }
#else
  wait_with_poll(tmo);
#endif
  // Flush-before-return: deliveries above may have triggered sends from
  // this thread (sink → protocol → send), which only enqueue when batching.
  drain_pending();
  // Bound handshakes may have completed or died; reap dead pending fds.
  pending_accepts_.erase(
      std::remove_if(pending_accepts_.begin(), pending_accepts_.end(),
                     [](const PendingAccept& pa) { return !pa.fd.valid(); }),
      pending_accepts_.end());
}

void TcpTransport::handle_readable(ProcessId peer) {
  Conn& c = *conns_[peer];
  std::uint8_t buf[64 * 1024];
  bool dead = false;
  for (;;) {
    const ssize_t k = ::recv(c.fd.get(), buf, sizeof(buf), 0);
    if (k > 0) {
      c.rx.feed(buf, static_cast<std::size_t>(k));
      continue;
    }
    if (k == 0) {
      dead = true;  // peer closed (EOF; also the far end of a half-close)
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    dead = true;  // ECONNRESET and friends
    break;
  }
  process_rx(peer);
  if (dead) link_down(peer);
}

void TcpTransport::process_rx(ProcessId peer) {
  Conn& c = *conns_[peer];
  FrameReassembler::Frame f;
  for (;;) {
    const FrameReassembler::Status st = c.rx.next(f);
    if (st == FrameReassembler::Status::kNeedMore) break;
    if (st == FrameReassembler::Status::kOversize) {
      counters_->oversize_drops.fetch_add(1, std::memory_order_relaxed);
      LOG_WARN("oversize frame from p%u; dropping connection", peer);
      c.rx.clear();
      link_down(peer);
      return;
    }
    bool ok = true;
    if (f.sid != c.sid) {
      // Replayed bytes from an earlier session (or a raced teardown): the
      // frame is structurally fine but cryptographically stale. Never let
      // it touch the counter floor.
      counters_->session_rejects.fetch_add(1, std::memory_order_relaxed);
      ok = false;
    }
    if (ok && opts_.authenticate && crypto_) {
      // Offload: park the frame in arrival order and let a worker verify
      // the MAC. The counter-floor decision and delivery both wait for
      // the harvest so nothing outruns an unverified predecessor.
      auto pv = std::make_shared<PendingVerify>();
      pv->counter = f.counter;
      pv->body = Slice(Bytes(f.body.begin(), f.body.end()));
      Sha256::Digest want{};
      std::memcpy(want.data(), f.mac.data(), kMacSize);
      c.verify_q.push_back(pv);
      counters_->crypto_offloaded.fetch_add(1, std::memory_order_relaxed);
      const ProcessId self = opts_.self;
      const std::uint64_t sid = f.sid;
      const ByteView key = keys_.key(peer);
      crypto_->submit([this, pv, key, peer, self, sid, want] {
        Writer macin(24);
        macin.u32(peer);
        macin.u32(self);
        macin.u64(sid);
        macin.u64(pv->counter);
        const auto mac = hmac_sha256_2(key, macin.data(), pv->body);
        const bool good = ct_equal(ByteView(mac.data(), mac.size()),
                                   ByteView(want.data(), want.size()));
        pv->verdict.store(good ? 1 : 0, std::memory_order_release);
        wakeup();  // poll thread harvests in arrival order
      });
      c.rx.consume();
      continue;
    }
    if (ok && opts_.authenticate) {
      Writer macin(24);
      macin.u32(peer);
      macin.u32(opts_.self);
      macin.u64(f.sid);
      macin.u64(f.counter);
      const auto mac = hmac_sha256_2(keys_.key(peer), macin.data(), f.body);
      if (!ct_equal(ByteView(mac.data(), mac.size()), f.mac)) {
        counters_->mac_failures.fetch_add(1, std::memory_order_relaxed);
        ok = false;
      }
    }
    if (ok) {
      if (f.counter < c.rx_expected) {
        // Stale counter under the current session id: a replay (the MAC
        // already proved sender and session, so this exact frame was
        // accepted before). Dropping it is what makes retransmit overlap
        // and replay floods idempotent — never a duplicate delivery.
        counters_->replay_drops.fetch_add(1, std::memory_order_relaxed);
        ok = false;
      } else if (f.counter > c.rx_expected) {
        // Forward jump: the sender's retained queue overflowed and frames
        // are gone for good. Account the loss and move the floor.
        counters_->counter_gaps.fetch_add(f.counter - c.rx_expected,
                                          std::memory_order_relaxed);
        c.rx_expected = f.counter;
      }
    }
    if (ok) {
      ++c.rx_expected;
      counters_->frames_received.fetch_add(1, std::memory_order_relaxed);
      // One boundary copy out of the reassembly window into a fresh Buffer;
      // everything downstream (decode, batch unpack, delivery) aliases it.
      if (sink_) sink_(peer, Slice(Bytes(f.body.begin(), f.body.end())));
    }
    c.rx.consume();
  }
  c.rx.compact();
  if (crypto_) harvest_verified(peer);
}

void TcpTransport::harvest_verified(ProcessId peer) {
  Conn& c = *conns_[peer];
  while (!c.verify_q.empty()) {
    PendingVerify& pv = *c.verify_q.front();
    const int verdict = pv.verdict.load(std::memory_order_acquire);
    if (verdict < 0) break;  // FIFO: never deliver past an unresolved frame
    if (verdict == 0) {
      // Same accounting as the inline path: a forged frame is a counted
      // drop that consumes no counter and delays nothing behind it.
      counters_->mac_failures.fetch_add(1, std::memory_order_relaxed);
    } else {
      bool ok = true;
      if (pv.counter < c.rx_expected) {
        counters_->replay_drops.fetch_add(1, std::memory_order_relaxed);
        ok = false;
      } else if (pv.counter > c.rx_expected) {
        counters_->counter_gaps.fetch_add(pv.counter - c.rx_expected,
                                          std::memory_order_relaxed);
        c.rx_expected = pv.counter;
      }
      if (ok) {
        ++c.rx_expected;
        counters_->frames_received.fetch_add(1, std::memory_order_relaxed);
        if (sink_) sink_(peer, std::move(pv.body));
      }
    }
    c.verify_q.pop_front();
  }
}

std::vector<LinkState> TcpTransport::link_states() const {
  std::vector<LinkState> out(opts_.n, LinkState::kUp);
  for (ProcessId p = 0; p < opts_.n; ++p) {
    if (p == opts_.self) continue;
    Conn& c = *conns_[p];
    std::lock_guard<std::mutex> lock(c.mutex);
    out[p] = c.state;
  }
  return out;
}

std::uint32_t TcpTransport::links_up() const {
  std::uint32_t up = 0;
  for (ProcessId p = 0; p < opts_.n; ++p) {
    if (p == opts_.self) continue;
    Conn& c = *conns_[p];
    std::lock_guard<std::mutex> lock(c.mutex);
    if (c.state == LinkState::kUp) ++up;
  }
  return up;
}

TcpTransport::Stats TcpTransport::stats() const {
  Stats s;
  s.frames_sent = counters_->frames_sent.load(std::memory_order_relaxed);
  s.frames_received = counters_->frames_received.load(std::memory_order_relaxed);
  s.frames_retransmitted =
      counters_->frames_retransmitted.load(std::memory_order_relaxed);
  s.bytes_sent = counters_->bytes_sent.load(std::memory_order_relaxed);
  s.mac_failures = counters_->mac_failures.load(std::memory_order_relaxed);
  s.replay_drops = counters_->replay_drops.load(std::memory_order_relaxed);
  s.session_rejects = counters_->session_rejects.load(std::memory_order_relaxed);
  s.counter_gaps = counters_->counter_gaps.load(std::memory_order_relaxed);
  s.oversize_drops = counters_->oversize_drops.load(std::memory_order_relaxed);
  s.queue_drops = counters_->queue_drops.load(std::memory_order_relaxed);
  s.link_reconnects = counters_->link_reconnects.load(std::memory_order_relaxed);
  s.handshake_failures =
      counters_->handshake_failures.load(std::memory_order_relaxed);
  s.crypto_offloaded = counters_->crypto_offloaded.load(std::memory_order_relaxed);
  s.crypto_mac_offloaded =
      counters_->crypto_mac_offloaded.load(std::memory_order_relaxed);
  s.sendmsg_calls = counters_->sendmsg_calls.load(std::memory_order_relaxed);
  s.bytes_to_kernel = counters_->bytes_to_kernel.load(std::memory_order_relaxed);
  s.batch_copy_bytes = counters_->batch_copy_bytes.load(std::memory_order_relaxed);
  return s;
}

}  // namespace ritas::net
