#include "net/tcp_transport.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cassert>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "common/log.h"
#include "common/serialize.h"
#include "crypto/ct.h"
#include "crypto/hmac.h"

namespace ritas::net {

namespace {
constexpr std::uint32_t kHandshakeMagic = 0x52495441;  // "RITA"
constexpr std::size_t kMacSize = Sha256::kDigestSize;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}
}  // namespace

Fd& Fd::operator=(Fd&& o) noexcept {
  if (this != &o) {
    reset();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void Fd::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpTransport::TcpTransport(Options opts, const KeyChain& keys)
    : opts_(std::move(opts)), keys_(keys), conns_(opts_.n) {
  if (opts_.peers.size() != opts_.n) {
    throw std::invalid_argument("TcpTransport: need one address per process");
  }
}

TcpTransport::~TcpTransport() { stop(); }

void TcpTransport::start() {
  // Wakeup pipe so other threads can interrupt poll_once().
  int pipefd[2];
  if (::pipe(pipefd) != 0) throw std::runtime_error("pipe() failed");
  wake_rx_ = Fd(pipefd[0]);
  wake_tx_ = Fd(pipefd[1]);
  set_nonblocking(wake_rx_.get());

  // Listen socket.
  Fd lfd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!lfd.valid()) throw std::runtime_error("socket() failed");
  int one = 1;
  ::setsockopt(lfd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.peers[opts_.self].port);
  addr.sin_addr.s_addr = INADDR_ANY;
  if (::bind(lfd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    throw std::runtime_error("bind() failed on port " +
                             std::to_string(opts_.peers[opts_.self].port));
  }
  if (::listen(lfd.get(), 64) != 0) throw std::runtime_error("listen() failed");
  listen_fd_ = std::move(lfd);

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opts_.connect_timeout_ms);
  std::uint32_t connected = 0;
  const std::uint32_t want = opts_.n - 1;

  // Lower id dials, higher id accepts; handshake carries the dialer's id.
  auto try_dial = [&](ProcessId peer) -> bool {
    Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
    if (!fd.valid()) return false;
    sockaddr_in peer_addr{};
    peer_addr.sin_family = AF_INET;
    peer_addr.sin_port = htons(opts_.peers[peer].port);
    if (::inet_pton(AF_INET, opts_.peers[peer].host.c_str(), &peer_addr.sin_addr) != 1) {
      return false;
    }
    if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&peer_addr),
                  sizeof(peer_addr)) != 0) {
      return false;
    }
    Writer w;
    w.u32(kHandshakeMagic);
    w.u32(opts_.self);
    if (!write_all(fd.get(), w.data())) return false;
    set_nodelay(fd.get());
    set_nonblocking(fd.get());
    conns_[peer].fd = std::move(fd);
    return true;
  };

  std::vector<bool> dialed(opts_.n, false);
  while (connected < want) {
    if (std::chrono::steady_clock::now() > deadline) {
      throw std::runtime_error("TcpTransport: mesh setup timed out");
    }
    // Dial every lower-id... higher-id peer we have not connected yet.
    for (ProcessId peer = 0; peer < opts_.self; ++peer) {
      if (!dialed[peer] && try_dial(peer)) {
        dialed[peer] = true;
        ++connected;
      }
    }
    // Accept from higher-id peers.
    pollfd pfd{listen_fd_.get(), POLLIN, 0};
    if (::poll(&pfd, 1, 50) > 0 && (pfd.revents & POLLIN)) {
      Fd fd(::accept(listen_fd_.get(), nullptr, nullptr));
      if (fd.valid()) {
        std::uint8_t hs[8];
        std::size_t got = 0;
        while (got < sizeof(hs)) {
          const ssize_t k = ::read(fd.get(), hs + got, sizeof(hs) - got);
          if (k <= 0) break;
          got += static_cast<std::size_t>(k);
        }
        if (got == sizeof(hs)) {
          Reader r(ByteView(hs, sizeof(hs)));
          const std::uint32_t magic = r.u32();
          const std::uint32_t peer = r.u32();
          if (magic == kHandshakeMagic && peer > opts_.self && peer < opts_.n &&
              !conns_[peer].fd.valid()) {
            set_nodelay(fd.get());
            set_nonblocking(fd.get());
            conns_[peer].fd = std::move(fd);
            ++connected;
          }
        }
      }
    }
  }
}

void TcpTransport::stop() {
  stopped_.store(true);
  wakeup();
  for (auto& c : conns_) c.fd.reset();
  listen_fd_.reset();
}

void TcpTransport::wakeup() {
  if (wake_tx_.valid()) {
    const std::uint8_t b = 1;
    [[maybe_unused]] ssize_t k = ::write(wake_tx_.get(), &b, 1);
  }
}

bool TcpTransport::write_all(int fd, ByteView data) {
  std::size_t off = 0;
  while (off < data.size()) {
    const ssize_t k = ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (k > 0) {
      off += static_cast<std::size_t>(k);
      continue;
    }
    if (k < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      pollfd pfd{fd, POLLOUT, 0};
      ::poll(&pfd, 1, 1000);
      continue;
    }
    if (k < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

std::uint64_t TcpTransport::now_ns() const {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

bool TcpTransport::writev_all(int fd, ByteView* parts, std::size_t count) {
  iovec iov[4];
  assert(count <= 4);
  std::size_t cnt = 0;
  for (std::size_t i = 0; i < count; ++i) {
    if (parts[i].empty()) continue;
    iov[cnt].iov_base = const_cast<std::uint8_t*>(parts[i].data());
    iov[cnt].iov_len = parts[i].size();
    ++cnt;
  }
  iovec* cur = iov;
  while (cnt > 0) {
    msghdr mh{};
    mh.msg_iov = cur;
    mh.msg_iovlen = cnt;
    const ssize_t k = ::sendmsg(fd, &mh, MSG_NOSIGNAL);
    if (k < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd pfd{fd, POLLOUT, 0};
        ::poll(&pfd, 1, 1000);
        continue;
      }
      if (errno == EINTR) continue;
      return false;
    }
    std::size_t rem = static_cast<std::size_t>(k);
    while (cnt > 0 && rem >= cur->iov_len) {
      rem -= cur->iov_len;
      ++cur;
      --cnt;
    }
    if (cnt > 0) {
      cur->iov_base = static_cast<std::uint8_t*>(cur->iov_base) + rem;
      cur->iov_len -= rem;
    }
  }
  return true;
}

void TcpTransport::send(ProcessId to, Slice frame) {
  if (stopped_.load() || to >= opts_.n || to == opts_.self) return;
  Conn& c = conns_[to];
  std::lock_guard<std::mutex> lock(c.tx_mutex);
  if (!c.fd.valid()) return;

  // Wire: u32 body_len | body | [mac]; mac covers (from, to, counter, body).
  // The body Slice is typically shared with the other n-2 peer sends — it
  // is written straight from the refcounted buffer, never re-copied here.
  Writer hdr(4);
  hdr.u32(static_cast<std::uint32_t>(frame.size()));
  Sha256::Digest mac{};
  std::size_t parts_count = 2;
  ByteView parts[3] = {hdr.data(), frame, {}};
  if (opts_.authenticate) {
    Writer macin(16);
    macin.u32(opts_.self);
    macin.u32(to);
    macin.u64(c.tx_counter);
    mac = hmac_sha256_2(keys_.key(to), macin.data(), frame);
    parts[2] = ByteView(mac.data(), mac.size());
    parts_count = 3;
  }
  std::size_t wire_size = 0;
  for (std::size_t i = 0; i < parts_count; ++i) wire_size += parts[i].size();
  if (writev_all(c.fd.get(), parts, parts_count)) {
    ++c.tx_counter;  // advance only on success to keep anti-replay in sync
    ++stats_.frames_sent;
    stats_.bytes_sent += wire_size;
  } else {
    LOG_WARN("tcp send to p%u failed: %s", to, std::strerror(errno));
    c.fd.reset();  // the stream is unusable after a partial write
  }
}

void TcpTransport::poll_once(int timeout_ms) {
  std::vector<pollfd> pfds;
  std::vector<ProcessId> owners;
  pfds.push_back(pollfd{wake_rx_.get(), POLLIN, 0});
  owners.push_back(kNoProcess);
  for (ProcessId p = 0; p < opts_.n; ++p) {
    if (conns_[p].fd.valid()) {
      pfds.push_back(pollfd{conns_[p].fd.get(), POLLIN, 0});
      owners.push_back(p);
    }
  }
  const int rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
  if (rc <= 0) return;
  for (std::size_t i = 0; i < pfds.size(); ++i) {
    if (!(pfds[i].revents & (POLLIN | POLLHUP | POLLERR))) continue;
    if (owners[i] == kNoProcess) {
      std::uint8_t buf[256];
      while (::read(wake_rx_.get(), buf, sizeof(buf)) > 0) {
      }
      continue;
    }
    handle_readable(owners[i]);
  }
}

void TcpTransport::handle_readable(ProcessId peer) {
  Conn& c = conns_[peer];
  std::uint8_t buf[64 * 1024];
  for (;;) {
    const ssize_t k = ::recv(c.fd.get(), buf, sizeof(buf), 0);
    if (k > 0) {
      c.rx.insert(c.rx.end(), buf, buf + k);
      continue;
    }
    if (k == 0) {
      c.fd.reset();  // peer closed
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    c.fd.reset();
    break;
  }
  process_rx(peer);
}

void TcpTransport::process_rx(ProcessId peer) {
  Conn& c = conns_[peer];
  std::size_t off = 0;
  const std::size_t trailer = opts_.authenticate ? kMacSize : 0;
  while (c.rx.size() - off >= 4) {
    Reader hdr(ByteView(c.rx.data() + off, 4));
    const std::uint32_t body_len = hdr.u32();
    if (body_len > opts_.max_frame) {
      ++stats_.oversize_drops;
      LOG_WARN("oversize frame (%u bytes) from p%u; dropping connection",
               body_len, peer);
      c.fd.reset();
      c.rx.clear();
      return;
    }
    const std::size_t total = 4 + body_len + trailer;
    if (c.rx.size() - off < total) break;
    const ByteView body(c.rx.data() + off + 4, body_len);
    bool ok = true;
    if (opts_.authenticate) {
      Writer macin(body_len + 24);
      macin.u32(peer);
      macin.u32(opts_.self);
      macin.u64(c.rx_counter);
      macin.raw(body);
      const auto mac = hmac_sha256(keys_.key(peer), macin.data());
      const ByteView got(c.rx.data() + off + 4 + body_len, kMacSize);
      if (!ct_equal(ByteView(mac.data(), mac.size()), got)) {
        // Either tampering or counter desync; with TCP FIFO the counters
        // can only desync through tampering, so treat it as such.
        ++stats_.mac_failures;
        ok = false;
      }
    }
    if (ok) {
      ++c.rx_counter;
      ++stats_.frames_received;
      // One boundary copy out of the reassembly window into a fresh Buffer;
      // everything downstream (decode, batch unpack, delivery) aliases it.
      if (sink_) sink_(peer, Slice(Bytes(body.begin(), body.end())));
    }
    off += total;
  }
  if (off > 0) c.rx.erase(c.rx.begin(), c.rx.begin() + static_cast<std::ptrdiff_t>(off));
}

}  // namespace ritas::net
