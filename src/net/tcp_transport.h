// Real-socket transport: the paper's "TCP + IPSec AH" reliable channel.
//
// Every pair of processes is connected by one TCP stream (full mesh over
// localhost or a real network). TCP supplies reliability and FIFO; frame
// integrity and sender authentication come from an HMAC-SHA-256 trailer
// keyed with the pairwise secret, with a strictly increasing per-direction
// counter bound into the MAC (anti-replay) — the modern stand-in for the
// AH protocol the paper used. MAC verification failures and counter
// mismatches drop the frame (and count in the stats), never the process.
//
// Threading: send() may be called from any thread; receiving happens in
// poll_once(), which the owner (one thread — see ritas::Context) calls in
// its loop. Frames are handed to the sink inline from poll_once.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "core/transport.h"
#include "crypto/keychain.h"

namespace ritas::net {

struct PeerAddr {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset();

 private:
  int fd_ = -1;
};

class TcpTransport final : public Transport {
 public:
  struct Options {
    std::uint32_t n = 4;
    ProcessId self = 0;
    std::vector<PeerAddr> peers;  // size n; peers[self] = own listen address
    bool authenticate = true;     // HMAC frames (the "IPSec" switch)
    std::size_t max_frame = 16u << 20;
    int connect_timeout_ms = 15'000;
  };

  struct Stats {
    std::uint64_t frames_sent = 0;
    std::uint64_t frames_received = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t mac_failures = 0;
    std::uint64_t replay_drops = 0;
    std::uint64_t oversize_drops = 0;
  };

  TcpTransport(Options opts, const KeyChain& keys);
  ~TcpTransport() override;

  /// Binds + listens, then establishes the full mesh (lower id connects,
  /// higher id accepts; a handshake identifies the peer). Blocks until all
  /// n-1 links are up or the timeout expires (throws std::runtime_error).
  void start();
  /// Closes every socket; subsequent sends are dropped silently.
  void stop();

  /// Sink for inbound frames, invoked from poll_once(). Each frame is one
  /// freshly-owned Buffer copied out of the stream-reassembly window (the
  /// single boundary copy of the receive path); the Slice covers it whole.
  void set_sink(std::function<void(ProcessId from, Slice frame)> sink) {
    sink_ = std::move(sink);
  }

  /// Processes pending socket I/O; waits up to timeout_ms for activity.
  void poll_once(int timeout_ms);

  /// Wakes a blocked poll_once() from another thread.
  void wakeup();

  /// Scatter-writes {u32 header, shared frame body, per-peer MAC trailer}
  /// in one sendmsg(); the refcounted body is never copied per peer.
  void send(ProcessId to, Slice frame) override;

  /// Monotonic wall clock for trace timestamps (real transports are
  /// outside the deterministic core, so reading a clock here is fine).
  std::uint64_t now_ns() const override;

  const Stats& stats() const { return stats_; }

 private:
  struct Conn {
    Fd fd;
    Bytes rx;                      // accumulated unparsed bytes
    std::uint64_t rx_counter = 0;  // next expected anti-replay counter
    std::uint64_t tx_counter = 0;
    std::mutex tx_mutex;
  };

  bool write_all(int fd, ByteView data);
  bool writev_all(int fd, ByteView* parts, std::size_t count);
  void handle_readable(ProcessId peer);
  void process_rx(ProcessId peer);

  Options opts_;
  const KeyChain& keys_;
  std::function<void(ProcessId, Slice)> sink_;
  Fd listen_fd_;
  Fd wake_rx_, wake_tx_;
  std::vector<Conn> conns_;  // index = peer id; conns_[self] unused
  Stats stats_;
  std::atomic<bool> stopped_{false};
};

}  // namespace ritas::net
