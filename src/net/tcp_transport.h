// Real-socket transport: the paper's "TCP + IPSec AH" reliable channel,
// made self-healing.
//
// Every pair of processes is connected by one TCP stream (the higher id
// dials, the lower id accepts). TCP supplies reliability and FIFO while a
// connection lives; frame integrity and sender authentication come from an
// HMAC-SHA-256 trailer keyed with the pairwise secret, with the session id
// and a strictly increasing per-direction counter bound into the MAC
// (anti-replay) — the modern stand-in for the AH protocol the paper used.
//
// Unlike the paper's idealized channel, real links fail. Each link runs a
// small state machine (down / connecting / up / backoff, `net/link.h`):
// a lost connection moves the dialer into jittered exponential backoff and
// automatic redial, and every (re)connection performs an authenticated
// nonce handshake that derives a fresh session id and exchanges receive
// counters so the sender can retransmit exactly the frames the peer never
// got (counter resync). Frames from an old session are replay-dropped by
// session id, never accepted. While a link is down, sends land in a
// bounded per-link retained-frame queue (drop-oldest; drops of frames that
// never reached a socket are counted). `start()` needs only a partial mesh
// (>= n-f-1 links) to return; the rest keep dialing in the background.
// Wire formats: docs/PROTOCOLS.md "Reliable channel".
//
// Event loop: one epoll_wait (level-triggered) drives readiness for every
// link, the listen socket, pending accepts and the wakeup pipe; write
// interest (EPOLLOUT) is registered only while a link actually has queued
// output, and the reconnect/backoff + handshake deadlines fold into the
// wait timeout via the deterministic `Link` timeline. Platforms without
// epoll (and Options::use_epoll = false) run the same cycle over a flat
// ::poll — identical semantics, tests exercise both.
//
// Send fast path: frames enqueue onto the link's retained queue and a
// drain gathers consecutive ready frames into ONE sendmsg() of
// {header, shared body, MAC trailer} iovec triplets (net/batch_writer.h),
// bounded by IOV_MAX and Options::max_batch_bytes, resuming byte-exactly
// after short writes that land mid-header/mid-body/mid-MAC. Batching
// changes syscall counts only — the wire bytes are identical to the
// one-write-per-frame path (the framing is self-delimiting), and zero
// payload bytes are copied to assemble a batch (Stats::batch_copy_bytes,
// CI-gated at 0).
//
// Threading contract:
//   * send() may be called from ANY number of threads concurrently (the
//     multi-core pipeline has every reactor call it). Each link's counter
//     assignment, retained-queue update, and (with batch_sends off) socket
//     write happen under that link's Conn mutex, so concurrent senders
//     serialize per link: frames from one sender thread keep their
//     relative order, and the per-link counter sequence is gap-free.
//     tests/test_tcp_transport.cpp (ConcurrentSenders*) enforces this
//     under ASan/TSan.
//   * Receiving and all link management happen in poll_once(), which the
//     owner (one thread — see ritas::Context) calls in its loop. Frames
//     are handed to the sink inline from poll_once. With batch_sends on,
//     the poll thread also performs the batched drains (senders only
//     enqueue + wake it).
//   * With crypto_threads > 0, per-frame HMAC work runs on a CryptoPool:
//     receive-side MACs verify in parallel and the poll thread re-imposes
//     per-link arrival order before the sink sees anything (a MAC failure
//     stays a counted drop and never reorders delivery past a verified
//     frame); send-side MACs are staged into the retained queue and the
//     batched drain picks them up strictly in counter order, stopping at
//     the first frame whose MAC is still computing. 0 keeps every MAC on
//     the calling thread.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/bytes.h"
#include "common/trace.h"
#include "core/transport.h"
#include "crypto/keychain.h"
#include "crypto/sha256.h"
#include "net/crypto_pool.h"
#include "net/frame_reassembler.h"
#include "net/link.h"

#if defined(__linux__)
#define RITAS_HAS_EPOLL 1
#else
#define RITAS_HAS_EPOLL 0
#endif

namespace ritas::net {

struct PeerAddr {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// RAII file descriptor.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { reset(); }
  Fd(Fd&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  Fd& operator=(Fd&& o) noexcept;
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  int get() const { return fd_; }
  bool valid() const { return fd_ >= 0; }
  void reset();

 private:
  int fd_ = -1;
};

class TcpTransport final : public Transport {
 public:
  struct Options {
    std::uint32_t n = 4;
    ProcessId self = 0;
    std::vector<PeerAddr> peers;  // size n; peers[self] = own listen address
    bool authenticate = true;     // HMAC frames + handshake (the "IPSec" switch)
    std::size_t max_frame = 16u << 20;
    int connect_timeout_ms = 15'000;
    /// start() returns once this many links are up; 0 = auto (n - f - 1,
    /// f = (n-1)/3): enough links that the local stack can make protocol
    /// progress while stragglers keep dialing in the background.
    std::uint32_t min_start_links = 0;
    /// Per-link retained-frame budget: recent frames kept for counter
    /// resync and frames queued while the link is down. Overflow drops the
    /// oldest; drops of frames that never reached a socket count in
    /// Stats::queue_drops.
    std::size_t send_queue_max_bytes = 8u << 20;
    /// Reconnect schedule (jittered exponential, see net/link.h).
    BackoffOptions backoff;
    /// Session handshakes must finish within this budget or the attempt is
    /// abandoned (and, on the dialer side, retried after backoff).
    int handshake_timeout_ms = 5'000;
    /// Seeds handshake nonces and backoff jitter; 0 = std::random_device.
    /// Tests pin it to make reconnect timelines reproducible.
    std::uint64_t rng_seed = 0;
    /// Crypto worker threads for per-frame HMAC verify/compute. 0 = all
    /// MAC work inline on the calling thread (the pre-pipeline path,
    /// bit-identical on the wire). Ignored when authenticate == false.
    std::uint32_t crypto_threads = 0;
    /// Batch sends per syscall: send() only enqueues (and MACs, when
    /// inline) and the poll thread drains each link's backlog into
    /// multi-frame sendmsg() calls. Off = send() drains inline from the
    /// calling thread, one frame per syscall when the link is idle. The
    /// wire bytes are identical either way.
    bool batch_sends = true;
    /// Soft byte cap per batched sendmsg(); at least one frame is always
    /// offered (so 0 degenerates to one frame per syscall). IOV_MAX caps
    /// the iovec count independently.
    std::size_t max_batch_bytes = 256u << 10;
    /// Drive readiness with epoll where the platform has it; false forces
    /// the portable ::poll fallback (same semantics, tests cover both).
    bool use_epoll = true;
  };

  struct Stats {
    std::uint64_t frames_sent = 0;         // frames written to a socket
    std::uint64_t frames_received = 0;     // frames accepted and delivered
    std::uint64_t frames_retransmitted = 0;  // re-writes after counter resync
    std::uint64_t bytes_sent = 0;
    std::uint64_t mac_failures = 0;     // frame MAC mismatch (current session)
    std::uint64_t replay_drops = 0;     // counter below the expected floor
    std::uint64_t session_rejects = 0;  // frame tagged with a stale session id
    std::uint64_t counter_gaps = 0;     // frames skipped by a forward jump
    std::uint64_t oversize_drops = 0;
    std::uint64_t queue_drops = 0;        // never-sent frames evicted by the cap
    std::uint64_t link_reconnects = 0;    // handshakes that revived a dead link
    std::uint64_t handshake_failures = 0; // malformed/unauthentic handshakes
    std::uint64_t crypto_offloaded = 0;     // rx MAC verifies run on the pool
    std::uint64_t crypto_mac_offloaded = 0; // tx MAC computes run on the pool
    std::uint64_t sendmsg_calls = 0;   // batched data-frame sendmsg() syscalls
    std::uint64_t bytes_to_kernel = 0; // bytes those syscalls moved (partial
                                       // frames included as they progress)
    std::uint64_t batch_copy_bytes = 0;  // payload bytes memcpy'd to assemble
                                         // a batch; the scatter-gather path
                                         // keeps this 0 (CI-gated)
    /// Frames per data sendmsg(): > 1 means batching is amortizing
    /// syscalls; 1.0 is the one-write-per-frame floor.
    double frames_per_syscall() const {
      return sendmsg_calls == 0
                 ? 0.0
                 : static_cast<double>(frames_sent) /
                       static_cast<double>(sendmsg_calls);
    }
  };

  /// Fault-injection hook for the churn tests: forcibly breaks the live
  /// connection to `peer`.
  enum class KillMode {
    kRst,        // SO_LINGER(0) + close: peer sees ECONNRESET
    kHalfClose,  // shutdown(SHUT_WR): peer sees EOF, teardown propagates back
  };

  TcpTransport(Options opts, const KeyChain& keys);
  ~TcpTransport() override;

  /// Binds + listens, then dials the mesh (higher id connects, lower id
  /// accepts; an authenticated handshake identifies the peer and opens a
  /// session). Blocks until at least min_start_links links are up (throws
  /// std::runtime_error on timeout); remaining links keep connecting in
  /// the background as long as poll_once keeps being called.
  void start();
  /// Closes every socket; subsequent sends are dropped silently.
  void stop();

  /// Sink for inbound frames, invoked from poll_once(). Each frame is one
  /// freshly-owned Buffer copied out of the stream-reassembly window (the
  /// single boundary copy of the receive path); the Slice covers it whole.
  void set_sink(std::function<void(ProcessId from, Slice frame)> sink) {
    sink_ = std::move(sink);
  }

  /// Optional link-event tracing (kLinkUp/kLinkDown/kLinkHandshake). The
  /// tracer is not thread-safe: events are recorded only from the polling
  /// thread, so share a tracer with the stack only when the stack runs on
  /// that same thread (as ritas::Context does).
  void set_tracer(Tracer* tracer) { tracer_ = tracer; }

  /// Processes pending socket I/O and link-state timers (redials, expired
  /// handshakes); waits up to timeout_ms for activity.
  void poll_once(int timeout_ms);

  /// Wakes a blocked poll_once() from another thread.
  void wakeup();

  /// Enqueues one frame for `to`: assigns the link counter, retains the
  /// refcounted body for counter resync, and either drains inline
  /// (batch_sends off, no crypto pool) or leaves the write to the poll
  /// thread's batched drain. The body is never copied per peer — the
  /// batched sendmsg() points straight at the shared buffer. If the link
  /// is not up the frame stays queued for the next session's resync.
  void send(ProcessId to, Slice frame) override;

  /// Monotonic wall clock for trace timestamps (real transports are
  /// outside the deterministic core, so reading a clock here is fine).
  std::uint64_t now_ns() const override;

  /// Snapshot of every link's state; the self entry reads kUp.
  std::vector<LinkState> link_states() const override;

  /// Number of links currently in LinkState::kUp.
  std::uint32_t links_up() const;

  /// Counter snapshot (fields are updated concurrently; the snapshot is
  /// per-field atomic, not globally consistent).
  Stats stats() const;

  /// Breaks the connection to `peer` (see KillMode). The actual teardown
  /// runs on the polling thread; the link then heals through the normal
  /// backoff/reconnect path. Test-only chaos hook.
  void kill_link(ProcessId peer, KillMode mode);

 private:
  /// Handshake progress for one connection attempt.
  enum class HsPhase : std::uint8_t {
    kIdle,         // no socket
    kDialWait,     // dialer: non-blocking connect() in flight
    kHelloSent,    // dialer: HELLO written, waiting for REPLY
    kWaitConfirm,  // acceptor: REPLY written, waiting for CONFIRM
    kEstablished,  // session open, frames flow
  };

  /// Crypto-offload result slot for one send-side MAC: a worker fills
  /// `mac` then publishes with a release store of `ready`; the poll
  /// thread acquires `ready` before reading. `sid` pins the session the
  /// MAC was computed under — if the link re-handshakes first, the stale
  /// MAC is discarded and the drain re-MACs inline under the new sid.
  struct MacSlot {
    std::uint64_t sid = 0;
    Sha256::Digest mac{};
    std::atomic<bool> ready{false};
  };

  /// A receive-side frame parked in per-link arrival order while a crypto
  /// worker verifies its MAC off-thread. verdict: -1 pending, 0 bad MAC,
  /// 1 verified (release-published by the worker).
  struct PendingVerify {
    std::uint64_t counter = 0;
    Slice body;
    std::atomic<int> verdict{-1};
  };

  /// A frame retained for retransmission: queued while the link is down,
  /// or recently written and kept until the next resync confirms receipt.
  /// The header/MAC prep is the stable storage the batched iovec triplet
  /// points at across short-write resumption; prep_sid pins the session it
  /// was built for (a re-handshake invalidates it by changing sid).
  struct Retained {
    std::uint64_t counter;
    Slice frame;
    bool written;      // fully handed to the kernel under the current session
    bool retx;         // rewrite under this session counts as a retransmission
    std::shared_ptr<MacSlot> mac;  // staged MAC (crypto offload); null = inline
    std::uint64_t prep_sid = 0;    // session the prep below was built for
    std::array<std::uint8_t, FrameReassembler::kHeaderSize> hdr{};
    Sha256::Digest mac_trailer{};
  };

  struct Conn {
    Conn(std::size_t max_frame, bool with_mac) : rx(max_frame, with_mac) {}
    // --- poll-thread-only unless noted ---
    Fd fd;
    HsPhase phase = HsPhase::kIdle;
    Bytes hs_rx;                     // accumulated handshake bytes
    std::uint64_t nonce_local = 0;
    std::uint64_t hs_deadline_ms = 0;
    FrameReassembler rx;             // stream reassembly window
    std::uint64_t rx_expected = 0;   // next counter expected (survives sessions)
    std::unique_ptr<LinkRetry> retry;  // dialed links only (peer < self)
    bool ever_up = false;
    /// Frames awaiting an off-thread MAC verdict, in arrival order; the
    /// poll thread harvests from the front and never past an unresolved
    /// entry, so offload cannot reorder a link's deliveries. Survives
    /// link_down: a verified frame that arrived before the failure is
    /// still delivered (its retransmit then replay-drops).
    std::deque<std::shared_ptr<PendingVerify>> verify_q;
    // --- shared with sender threads; guarded by mutex ---
    std::mutex mutex;
    LinkState state = LinkState::kDown;
    std::uint64_t sid = 0;           // current session id (0 = none)
    std::uint64_t tx_next = 0;       // next counter to assign (survives sessions)
    std::deque<Retained> retained;
    std::size_t retained_bytes = 0;
    std::uint64_t tx_write_next = 0; // next counter the drain hands to the kernel
    std::size_t tx_partial = 0;      // bytes of frame tx_write_next already written
    bool tx_blocked = false;         // drain hit a short write: wants EPOLLOUT
    bool broken = false;             // send() hit a write error; poll thread reaps
    std::uint8_t kill_request = 0;   // 1 + KillMode; poll thread executes
  };

  /// An accepted socket working through the session handshake. It does not
  /// touch the peer's Conn slot until the CONFIRM authenticates — an
  /// unauthenticated hello must not be able to displace a healthy link.
  struct PendingAccept {
    Fd fd;
    Bytes rx;
    std::uint64_t deadline_ms = 0;
    bool got_hello = false;
    ProcessId claimed = 0;    // dialer id from the HELLO
    std::uint64_t nonce_d = 0;
    std::uint64_t nonce_a = 0;
  };

  struct Counters;  // atomic mirror of Stats

  std::uint64_t now_ms() const;
  std::uint32_t start_threshold() const;
  bool write_all(int fd, ByteView data);
  /// Builds (or refreshes) the entry's header/MAC prep for the current
  /// session: adopts a ready pool-computed MAC, or computes inline (the
  /// no-pool path and the resync re-MAC path). Returns false when the
  /// entry must wait for a staged MAC still computing — the drain stops
  /// there so the batched queue stays in counter order. Caller holds
  /// c.mutex.
  bool prep_entry(Conn& c, Retained& e, ProcessId to);
  /// Drains consecutive ready frames from tx_write_next into batched
  /// sendmsg() calls until the backlog is empty, the socket stops taking
  /// bytes (tx_blocked; EPOLLOUT resumes), or the head is waiting on the
  /// crypto pool. Caller holds c.mutex.
  void drain_locked(Conn& c, ProcessId to);
  /// Poll thread: drains every up link with pending output and harvests
  /// crypto-verified receives.
  void drain_pending();
  /// Send-side offload: attaches a MacSlot to the just-retained frame and
  /// submits the HMAC job; caller holds c.mutex.
  void stage_mac(Conn& c, ProcessId to, std::uint64_t counter, const Slice& frame);
  /// Poll thread: delivers verified frames from the front of verify_q in
  /// arrival order, stopping at the first unresolved verdict.
  void harvest_verified(ProcessId peer);
  void begin_dial(ProcessId peer);
  void on_dial_writable(ProcessId peer);
  void handshake_readable(ProcessId peer);
  void pending_accept_readable(PendingAccept& pa);
  /// Session established: derive sid, resync counters, flush the queue.
  void complete_handshake(ProcessId peer, std::uint64_t nonce_d,
                          std::uint64_t nonce_a, std::uint64_t peer_rx_expected);
  void link_down(ProcessId peer);
  void service_timers();
  void execute_kill(ProcessId peer);
  void handle_readable(ProcessId peer);
  void process_rx(ProcessId peer);
  void trace_link(TraceEventKind kind, ProcessId peer, std::uint64_t arg);
  /// Folds the nearest handshake/backoff/pending-accept deadline into the
  /// caller's timeout so neither wait backend can oversleep a timer.
  int fold_timer_deadlines(int timeout_ms);
  /// Shared readiness dispatch for both wait backends. Owner encoding:
  /// -1 wake pipe, -2 listen socket, -(3+k) pending accept k, else peer id.
  void dispatch_event(std::int64_t owner, bool rin, bool rout, bool rerr);
  void wait_with_poll(int timeout_ms);
  bool is_poll_thread() const;
#if RITAS_HAS_EPOLL
  /// Drops a registration record before closing its fd (the kernel
  /// auto-deregisters on close; forgetting our record keeps a reused fd
  /// number from being mistaken for a still-registered socket).
  void forget_fd(int fd);
  void reset_fd(Fd& fd);
  void wait_with_epoll(int timeout_ms);
#else
  void forget_fd(int) {}
  void reset_fd(Fd& fd) { fd.reset(); }
#endif

  Options opts_;
  const KeyChain& keys_;
  std::function<void(ProcessId, Slice)> sink_;
  Tracer* tracer_ = nullptr;
  std::unique_ptr<Rng> rng_;  // poll-thread-only (nonces)
  Fd listen_fd_;
  Fd wake_rx_, wake_tx_;
  std::vector<std::unique_ptr<Conn>> conns_;  // index = peer id; self unused
  std::vector<PendingAccept> pending_accepts_;
  std::unique_ptr<CryptoPool> crypto_;  // null = inline crypto path
  std::unique_ptr<Counters> counters_;
  std::atomic<bool> stopped_{false};
  std::atomic<std::uint64_t> poll_tid_{0};  // hashed id of the polling thread
  std::uint64_t epoch_ns_ = 0;  // steady_clock origin for now_ms()
#if RITAS_HAS_EPOLL
  struct EpollReg {
    std::uint32_t events = 0;
    std::int64_t owner = 0;
  };
  Fd epoll_fd_;  // lazily created on the poll thread; poll-thread-only
  std::unordered_map<int, EpollReg> epoll_regs_;  // poll-thread-only
#endif
};

}  // namespace ritas::net
