#include "ritas/context.h"

#include <random>
#include <stdexcept>

#include "core/binary_consensus.h"
#include "core/echo_broadcast.h"
#include "core/multivalued_consensus.h"
#include "core/reliable_broadcast.h"
#include "core/vector_consensus.h"

namespace ritas {

namespace {

/// Rejects inconsistent Options before any member (keychain, transport,
/// stack) is built from them — a wrong membership must never reach the
/// mesh layer.
Context::Options validate(Context::Options o) {
  if (o.n < 4) {
    throw std::invalid_argument("ritas::Context: n must be >= 4 (n >= 3f+1, f >= 1)");
  }
  if (o.self >= o.n) {
    throw std::invalid_argument("ritas::Context: self must be < n");
  }
  if (o.peers.size() != o.n) {
    throw std::invalid_argument("ritas::Context: peers.size() must equal n");
  }
  if (o.recv_window == 0) {
    throw std::invalid_argument("ritas::Context: recv_window must be > 0");
  }
  if (o.batch.enabled && (o.batch.max_msgs == 0 || o.batch.max_bytes == 0)) {
    throw std::invalid_argument("ritas::Context: batch limits must be > 0");
  }
  if (o.reactor_threads > 64 || o.crypto_threads > 64) {
    throw std::invalid_argument(
        "ritas::Context: reactor_threads/crypto_threads must be <= 64");
  }
  // Unknown or incompatible protocol-variant selections fail here, before
  // any networking exists (the ProtocolStack constructor re-checks, but
  // this path owns the user-facing error).
  validate_variants(o.stack.variants, o.n, o.stack.coin_mode);
  return o;
}

}  // namespace

Context::Context(Options opts)
    : opts_(validate(std::move(opts))),
      keys_(KeyChain::deal(opts_.master_secret, opts_.n, opts_.self)),
      rb_created_(opts_.n, 0),
      eb_created_(opts_.n, 0),
      rb_delivered_(opts_.n, 0),
      eb_delivered_(opts_.n, 0) {
  net::TcpTransport::Options topts;
  topts.n = opts_.n;
  topts.self = opts_.self;
  topts.peers = opts_.peers;
  topts.authenticate = opts_.authenticate;
  topts.min_start_links = opts_.min_start_links;
  topts.crypto_threads = opts_.crypto_threads;
  topts.batch_sends = opts_.transport_batch;
  // Decorrelate per-process transport randomness (handshake nonces,
  // backoff jitter) even when every node is configured with the same seed.
  topts.rng_seed = opts_.rng_seed == 0
                       ? 0
                       : opts_.rng_seed ^ (0x9e3779b97f4a7c15ULL * (opts_.self + 1));
  transport_ = std::make_unique<net::TcpTransport>(topts, keys_);

  StackConfig cfg = opts_.stack;
  cfg.n = opts_.n;
  cfg.self = opts_.self;
  cfg.group = opts_.group;
  cfg.ab_batch.enabled = opts_.batch.enabled;
  cfg.ab_batch.max_batch_msgs = opts_.batch.max_msgs;
  cfg.ab_batch.max_batch_bytes = opts_.batch.max_bytes;
  cfg.reactor_threads = opts_.reactor_threads;
  cfg.crypto_threads = opts_.crypto_threads;
  if (opts_.reactor_threads > 0) {
    ReactorPool::Options popts;
    popts.threads = opts_.reactor_threads;
    pool_ = std::make_unique<ReactorPool>(popts);
    pool_->pin(opts_.group, 0);  // single-group session: reactor 0 owns it
  }
  std::uint64_t seed = opts_.rng_seed;
  if (seed == 0) {
    std::random_device rd;
    seed = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  }
  stack_ = std::make_unique<ProtocolStack>(cfg, *transport_, keys_, seed);
}

Context::~Context() { stop(); }

void Context::start() {
  if (running_.load()) return;
  if (pool_) {
    // Pipeline mode: the poll thread only moves frames into the reactor
    // ring; all protocol work (and the roots_ bookkeeping) happens on
    // reactor 0, which also pumps the stack after every drain batch.
    pool_->set_idle_hook(0, [this] {
      stack_->pump();
      for (const InstanceId& id : dead_roots_) roots_.erase(id);
      dead_roots_.clear();
    });
    pool_->start();
    transport_->set_sink([this](ProcessId from, Slice frame) {
      pool_->route(opts_.group, *stack_, from, std::move(frame));
    });
  } else {
    transport_->set_sink([this](ProcessId from, Slice frame) {
      stack_->on_packet(from, std::move(frame));
    });
  }
  transport_->start();
  running_.store(true);
  reactor_ = std::thread([this] { reactor_loop(); });

  // Create the session-wide atomic broadcast root and the initial
  // receive-side broadcast windows on the reactor.
  run_on_reactor([this] {
    auto ab = std::make_unique<AtomicBroadcast>(
        *stack_, nullptr, InstanceId::root(ProtocolType::kAtomicBroadcast, 0),
        [this](ProcessId origin, std::uint64_t rbid, Slice payload) {
          // App-boundary copy: queued deliveries must not pin whole batch
          // frames for as long as the application keeps the payload.
          AbDelivery d{origin, rbid, payload.to_bytes()};
          if (ab_sub_) {
            ab_sub_(std::move(d));  // reactor thread; subscriber must not block
          } else {
            ab_rx_.push(std::move(d));
          }
        });
    ab_ = ab.get();
    roots_.emplace(ab_->id(), std::move(ab));
    ensure_bcast_windows();
  });
}

void Context::stop() {
  if (!running_.exchange(false)) return;
  transport_->wakeup();
  if (reactor_.joinable()) reactor_.join();
  // Poll thread is gone, so no new frames enter the rings; drain the
  // reactors before touching reactor-owned state (roots_).
  if (pool_) pool_->stop();
  // Wake any threads blocked in the recv calls.
  rb_rx_.close();
  eb_rx_.close();
  ab_rx_.close();
  // Tear down the control-block trees before the transport goes away.
  roots_.clear();
  dead_roots_.clear();
  ab_ = nullptr;
  transport_->stop();
}

void Context::reactor_loop() {
  if (pool_) {
    // Pipeline mode: this thread owns only the transport; frames hand
    // off through the ring and tasks go straight to the pool.
    while (running_.load()) transport_->poll_once(20);
    return;
  }
  while (running_.load()) {
    transport_->poll_once(20);
    std::deque<std::function<void()>> tasks;
    {
      std::lock_guard<std::mutex> lock(tasks_mutex_);
      tasks.swap(tasks_);
    }
    for (auto& t : tasks) {
      t();  // exceptions captured inside the task wrapper
      stack_->pump();
    }
    // Safe point: nothing is on a protocol call stack here.
    for (const InstanceId& id : dead_roots_) roots_.erase(id);
    dead_roots_.clear();
  }
}

void Context::run_on_reactor(std::function<void()> fn) {
  if (!running_.load()) throw std::logic_error("Context not started");
  std::promise<void> done;
  auto fut = done.get_future();
  // Exceptions must not unwind the reactor thread: capture and rethrow
  // in the calling thread instead.
  auto wrapped = [&done, f = std::move(fn)] {
    try {
      f();
      done.set_value();
    } catch (...) {
      done.set_exception(std::current_exception());
    }
  };
  if (pool_) {
    pool_->post(opts_.group, std::move(wrapped));
  } else {
    {
      std::lock_guard<std::mutex> lock(tasks_mutex_);
      tasks_.push_back(std::move(wrapped));
    }
    transport_->wakeup();
  }
  fut.get();
}

void Context::ensure_bcast_windows() {
  for (ProcessId o = 0; o < opts_.n; ++o) {
    while (rb_created_[o] < rb_delivered_[o] + opts_.recv_window) {
      const std::uint64_t k = rb_created_[o]++;
      const InstanceId id =
          InstanceId::root(ProtocolType::kReliableBroadcast, bcast_seq(o, k));
      roots_.emplace(id, make_rb(*stack_, nullptr, id, o, Attribution::kPayload,
                                 [this, o, k](Slice payload) {
                                   on_bcast_deliver(
                                       ProtocolType::kReliableBroadcast, o, k,
                                       payload.to_bytes());
                                 }));
    }
    while (eb_created_[o] < eb_delivered_[o] + opts_.recv_window) {
      const std::uint64_t k = eb_created_[o]++;
      const InstanceId id =
          InstanceId::root(ProtocolType::kEchoBroadcast, bcast_seq(o, k));
      roots_.emplace(id, std::make_unique<EchoBroadcast>(
                             *stack_, nullptr, id, o, Attribution::kPayload,
                             [this, o, k](Slice payload) {
                               on_bcast_deliver(ProtocolType::kEchoBroadcast, o,
                                                k, payload.to_bytes());
                             }));
    }
  }
}

void Context::on_bcast_deliver(ProtocolType type, ProcessId origin,
                               std::uint64_t k, Bytes payload) {
  auto& delivered = type == ProtocolType::kReliableBroadcast ? rb_delivered_
                                                             : eb_delivered_;
  if (k + 1 > delivered[origin]) delivered[origin] = k + 1;
  // This instance finished its job; free it at the next safe point (we are
  // currently inside its delivery callback).
  dead_roots_.push_back(InstanceId::root(type, bcast_seq(origin, k)));
  ensure_bcast_windows();
  if (type == ProtocolType::kReliableBroadcast) {
    rb_rx_.push(Delivery{origin, std::move(payload)});
  } else {
    eb_rx_.push(Delivery{origin, std::move(payload)});
  }
}

void Context::rb_bcast(Bytes payload) {
  run_on_reactor([this, &payload] {
    const std::uint64_t k = rb_sent_++;
    const InstanceId id = InstanceId::root(ProtocolType::kReliableBroadcast,
                                           bcast_seq(opts_.self, k));
    // The instance exists in our own receive window unless the sender has
    // outrun it.
    auto it = roots_.find(id);
    if (it == roots_.end()) {
      throw std::logic_error("rb_bcast: sender outran the receive window");
    }
    static_cast<RbAlgorithm&>(*it->second).bcast(std::move(payload));
  });
}

void Context::eb_bcast(Bytes payload) {
  run_on_reactor([this, &payload] {
    const std::uint64_t k = eb_sent_++;
    const InstanceId id = InstanceId::root(ProtocolType::kEchoBroadcast,
                                           bcast_seq(opts_.self, k));
    auto it = roots_.find(id);
    if (it == roots_.end()) {
      throw std::logic_error("eb_bcast: sender outran the receive window");
    }
    static_cast<EchoBroadcast&>(*it->second).bcast(std::move(payload));
  });
}

Context::Delivery Context::rb_recv() { return rb_rx_.pop(); }
std::optional<Context::Delivery> Context::rb_try_recv() { return rb_rx_.try_pop(); }
std::optional<Context::Delivery> Context::rb_recv_for(
    std::chrono::milliseconds timeout) {
  return rb_rx_.pop_for(timeout);
}
Context::Delivery Context::eb_recv() { return eb_rx_.pop(); }
std::optional<Context::Delivery> Context::eb_try_recv() { return eb_rx_.try_pop(); }
std::optional<Context::Delivery> Context::eb_recv_for(
    std::chrono::milliseconds timeout) {
  return eb_rx_.pop_for(timeout);
}

std::uint64_t Context::ab_bcast(Bytes payload) {
  std::uint64_t rbid = 0;
  run_on_reactor([this, &payload, &rbid] { rbid = ab_->bcast(std::move(payload)); });
  return rbid;
}

Context::AbDelivery Context::ab_recv() { return ab_rx_.pop(); }
std::optional<Context::AbDelivery> Context::ab_try_recv() {
  return ab_rx_.try_pop();
}
std::optional<Context::AbDelivery> Context::ab_recv_for(
    std::chrono::milliseconds timeout) {
  return ab_rx_.pop_for(timeout);
}

void Context::ab_flush() {
  run_on_reactor([this] { ab_->flush(); });
}

void Context::ab_subscribe(AbSubscriber fn) {
  if (!running_.load()) {
    ab_sub_ = std::move(fn);  // reactor not running yet; plain write is safe
    return;
  }
  run_on_reactor([this, f = std::move(fn)]() mutable { ab_sub_ = std::move(f); });
}

bool Context::bc(bool proposal) {
  std::promise<bool> decided;
  auto fut = decided.get_future();
  run_on_reactor([this, proposal, &decided] {
    const std::uint64_t k = bc_calls_++;
    auto inst = make_bc(
        *stack_, nullptr, InstanceId::root(ProtocolType::kBinaryConsensus, k),
        Attribution::kAgreement,
        [&decided](bool b) { decided.set_value(b); });
    inst->propose(proposal);
    roots_.emplace(inst->id(), std::move(inst));
  });
  return fut.get();
}

std::optional<Bytes> Context::mvc(Bytes proposal) {
  std::promise<std::optional<Bytes>> decided;
  auto fut = decided.get_future();
  run_on_reactor([this, &proposal, &decided] {
    const std::uint64_t k = mvc_calls_++;
    auto inst = std::make_unique<MultiValuedConsensus>(
        *stack_, nullptr,
        InstanceId::root(ProtocolType::kMultiValuedConsensus, k),
        Attribution::kAgreement,
        [&decided](std::optional<Bytes> v) { decided.set_value(std::move(v)); });
    inst->propose(std::move(proposal));
    roots_.emplace(inst->id(), std::move(inst));
  });
  return fut.get();
}

std::vector<std::optional<Bytes>> Context::vc(Bytes proposal) {
  std::promise<std::vector<std::optional<Bytes>>> decided;
  auto fut = decided.get_future();
  run_on_reactor([this, &proposal, &decided] {
    const std::uint64_t k = vc_calls_++;
    auto inst = std::make_unique<VectorConsensus>(
        *stack_, nullptr, InstanceId::root(ProtocolType::kVectorConsensus, k),
        Attribution::kAgreement,
        [&decided](VectorConsensus::Vector v) { decided.set_value(std::move(v)); });
    inst->propose(std::move(proposal));
    roots_.emplace(inst->id(), std::move(inst));
  });
  return fut.get();
}

Metrics Context::metrics() {
  Metrics m;
  run_on_reactor([this, &m] { m = stack_->metrics(); });
  return m;
}

}  // namespace ritas
