// ritas::Context — the application-facing session (the paper's `ritas_t`).
//
// Mirrors the C API of §3.1 in RAII C++: construct with the group
// membership (ritas_init + ritas_proc_add_ipv4), call the service
// functions as often as desired, destroy to tear everything down. Service
// calls follow the paper's blocking semantics:
//
//   rb_bcast / rb_recv     reliable broadcast        (ritas_rb_*)
//   eb_bcast / eb_recv     echo broadcast            (ritas_eb_*)
//   ab_bcast / ab_recv     atomic broadcast          (ritas_ab_*)
//   bc / mvc / vc          propose, block, decide    (ritas_bc/mvc/vc)
//
// The protocol stack runs in a single reactor thread, independent of the
// application thread (§3: "the protocol stack runs in a single thread,
// independent of the application thread"). Application calls post work to
// the reactor and block on futures/queues.
//
// Instance naming convention (implicit agreement across processes): the
// k-th rb/eb broadcast by origin o is root (kRB/kEB, o<<32|k); consensus
// calls are numbered by call order (all processes must invoke them in the
// same order, as with any consensus API); one atomic broadcast instance
// (kAB, 0) serves the whole session.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/atomic_broadcast.h"
#include "core/reactor.h"
#include "core/stack.h"
#include "crypto/keychain.h"
#include "net/tcp_transport.h"

namespace ritas {

/// Thrown by the blocking receive calls when the session stops underneath
/// them (stop() or destruction). Derives from std::runtime_error so code
/// written against the v1 API keeps catching it.
class ShutdownError : public std::runtime_error {
 public:
  ShutdownError() : std::runtime_error("ritas::Context stopped") {}
};

class Context {
 public:
  struct Options {
    std::uint32_t n = 4;
    ProcessId self = 0;
    std::vector<net::PeerAddr> peers;  // one per process, index = id
    /// Shared secret all processes derive pairwise keys from (the trusted
    /// dealer of §2; distribute out of band).
    Bytes master_secret;
    bool authenticate = true;  // HMAC frames (the "IPSec" switch)
    /// Consensus group this session runs when several groups share one
    /// mesh (sharded SMR). Authoritative: overwrites stack.group. Group 0
    /// (default) keeps the original wire format; non-zero groups prefix
    /// frames with the group id (docs/PROTOCOLS.md "Group multiplexing"),
    /// so all correct processes of a group must configure it identically.
    GroupId group = 0;
    StackConfig stack;         // n/self/group overwritten
    std::uint64_t rng_seed = 0;  // 0 = seed from std::random_device
    /// Receive-side broadcast instances pre-created per origin.
    std::uint32_t recv_window = 64;
    /// start() returns once this many links are up (0 = auto: n - f - 1);
    /// the remaining links keep dialing in the background and heal through
    /// the transport's backoff/reconnect machinery.
    std::uint32_t min_start_links = 0;
    /// Atomic-broadcast payload batching (StackConfig::ab_batch). This is
    /// the authoritative knob: it overwrites stack.ab_batch, and — being a
    /// wire-format switch — must be configured identically at every
    /// correct process.
    struct Batch {
      bool enabled = false;
      std::uint32_t max_msgs = 64;
      std::uint32_t max_bytes = 16 * 1024;
    };
    Batch batch;
    /// Multi-core execution pipeline knobs (authoritative: overwrite
    /// stack.reactor_threads / stack.crypto_threads). 0 = today's inline
    /// single-thread path, bit-identical on wire, trace and bench output.
    /// reactor_threads > 0 moves protocol work off the transport poll
    /// thread onto a ReactorPool (this single-group session pins its
    /// group to reactor 0; smr::ShardedService spreads G groups across
    /// reactors); crypto_threads > 0 moves per-frame HMAC work onto the
    /// transport's crypto workers. Validated: both <= 64.
    std::uint32_t reactor_threads = 0;
    std::uint32_t crypto_threads = 0;
    /// Transport send batching (TcpTransport::Options::batch_sends): when
    /// on, send() stages frames and the poll thread flushes a whole queue
    /// per sendmsg; when off, every send drains inline (one syscall per
    /// frame, the pre-fast-path behavior). Local-only — changes no wire
    /// bytes, so processes may disagree on it.
    bool transport_batch = true;
  };

  struct Delivery {
    ProcessId origin;
    Bytes payload;
  };
  struct AbDelivery {
    ProcessId origin;
    std::uint64_t rbid;
    Bytes payload;
  };

  /// Validates `opts` up front — throws std::invalid_argument on an
  /// inconsistent membership (peers.size() != n, self >= n, n < 3f+1 for
  /// f >= 1, i.e. n < 4) or nonsensical knobs (zero recv_window, zero
  /// batch limits) instead of letting them reach the mesh layer.
  explicit Context(Options opts);
  ~Context();

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  /// Establishes the TCP mesh and starts the reactor. Blocks until at
  /// least Options::min_start_links links are up (default: n - f - 1, the
  /// quorum the stack needs to make progress); stragglers keep connecting
  /// in the background. Call once before any service function.
  void start();
  void stop();

  // --- broadcast services -------------------------------------------------
  // Each service offers three receive modes: blocking recv() (the paper's
  // §3.1 semantics), non-blocking try_recv() (nullopt when nothing is
  // queued), and deadline recv_for() (nullopt on timeout). All of them
  // throw ShutdownError once the session has stopped and the queue has
  // drained.
  void rb_bcast(Bytes payload);
  Delivery rb_recv();
  std::optional<Delivery> rb_try_recv();
  std::optional<Delivery> rb_recv_for(std::chrono::milliseconds timeout);
  void eb_bcast(Bytes payload);
  Delivery eb_recv();
  std::optional<Delivery> eb_try_recv();
  std::optional<Delivery> eb_recv_for(std::chrono::milliseconds timeout);
  std::uint64_t ab_bcast(Bytes payload);
  AbDelivery ab_recv();
  std::optional<AbDelivery> ab_try_recv();
  std::optional<AbDelivery> ab_recv_for(std::chrono::milliseconds timeout);

  /// Seals the open atomic-broadcast batch immediately (no-op when
  /// batching is off or nothing is buffered).
  void ab_flush();

  /// Callback mode for atomic broadcast: once subscribed, deliveries are
  /// handed to `fn` on the reactor thread (so it must not block or call
  /// back into the Context) instead of being queued for ab_recv().
  /// Deliveries queued before the subscription stay in the queue —
  /// drain them with ab_try_recv(). Subscribe before start() or after;
  /// pass nullptr to return to queue mode.
  using AbSubscriber = std::function<void(AbDelivery)>;
  void ab_subscribe(AbSubscriber fn);

  // --- consensus services -------------------------------------------------
  bool bc(bool proposal);
  std::optional<Bytes> mvc(Bytes proposal);
  std::vector<std::optional<Bytes>> vc(Bytes proposal);

  /// Snapshot of the stack's counters (taken on the reactor).
  Metrics metrics();
  net::TcpTransport::Stats transport_stats() const {
    return transport_->stats();
  }
  /// Execution-pipeline counters: frame handoffs into the reactor rings
  /// and per-reactor queue depths. All-zero (empty depths) in inline mode.
  ReactorPool::Stats pipeline_stats() const {
    return pool_ ? pool_->stats() : ReactorPool::Stats{};
  }
  /// Per-peer channel health (self entry reads kUp).
  std::vector<LinkState> link_states() const {
    return transport_->link_states();
  }
  /// The underlying transport — fault injection (kill_link) and
  /// link-level probes for tests and operational tooling.
  net::TcpTransport& transport() { return *transport_; }
  ProcessId self() const { return opts_.self; }
  std::uint32_t n() const { return opts_.n; }

 private:
  template <typename T>
  class BlockingQueue {
   public:
    void push(T v) {
      {
        std::lock_guard<std::mutex> lock(m_);
        q_.push_back(std::move(v));
      }
      cv_.notify_one();
    }
    /// Blocks until an element arrives; throws ShutdownError if the queue
    /// is closed and drained (the session stopped).
    T pop() {
      std::unique_lock<std::mutex> lock(m_);
      cv_.wait(lock, [this] { return !q_.empty() || closed_; });
      if (q_.empty()) throw ShutdownError();
      T v = std::move(q_.front());
      q_.pop_front();
      return v;
    }
    /// Non-blocking: nullopt when nothing is queued. Throws ShutdownError
    /// only once the queue is closed *and* drained.
    std::optional<T> try_pop() {
      std::lock_guard<std::mutex> lock(m_);
      if (q_.empty()) {
        if (closed_) throw ShutdownError();
        return std::nullopt;
      }
      T v = std::move(q_.front());
      q_.pop_front();
      return v;
    }
    /// Blocks up to `timeout`; nullopt on timeout, ShutdownError when
    /// closed and drained.
    std::optional<T> pop_for(std::chrono::milliseconds timeout) {
      std::unique_lock<std::mutex> lock(m_);
      cv_.wait_for(lock, timeout, [this] { return !q_.empty() || closed_; });
      if (q_.empty()) {
        if (closed_) throw ShutdownError();
        return std::nullopt;
      }
      T v = std::move(q_.front());
      q_.pop_front();
      return v;
    }
    void close() {
      {
        std::lock_guard<std::mutex> lock(m_);
        closed_ = true;
      }
      cv_.notify_all();
    }

   private:
    std::mutex m_;
    std::condition_variable cv_;
    std::deque<T> q_;
    bool closed_ = false;
  };

  void reactor_loop();
  /// Runs fn on the reactor thread and waits for it (fn must not block).
  void run_on_reactor(std::function<void()> fn);
  static std::uint64_t bcast_seq(ProcessId origin, std::uint64_t k) {
    return (static_cast<std::uint64_t>(origin) << 32) | k;
  }
  /// Maintains the pre-created receive window for rb/eb roots. Reactor only.
  void ensure_bcast_windows();
  void on_bcast_deliver(ProtocolType type, ProcessId origin, std::uint64_t k,
                        Bytes payload);

  Options opts_;
  KeyChain keys_;
  std::unique_ptr<net::TcpTransport> transport_;
  std::unique_ptr<ProtocolStack> stack_;
  /// Non-null iff reactor_threads > 0: protocol work runs on the pool
  /// (group pinned to reactor 0) and reactor_loop() is poll-only. Null =
  /// the original single-thread path, untouched.
  std::unique_ptr<ReactorPool> pool_;

  std::thread reactor_;
  std::atomic<bool> running_{false};
  std::mutex tasks_mutex_;
  std::deque<std::function<void()>> tasks_;

  // Reactor-owned protocol state. Broadcast-window roots are destroyed
  // once delivered (deferred to a safe point — never inside their own
  // delivery callback); consensus roots stay for the session (peers may
  // still need our courtesy-round participation).
  std::map<InstanceId, std::unique_ptr<Protocol>> roots_;
  std::vector<InstanceId> dead_roots_;
  AtomicBroadcast* ab_ = nullptr;
  std::vector<std::uint64_t> rb_created_, eb_created_;   // per origin
  std::vector<std::uint64_t> rb_delivered_, eb_delivered_;
  std::uint64_t rb_sent_ = 0, eb_sent_ = 0;
  std::uint64_t bc_calls_ = 0, mvc_calls_ = 0, vc_calls_ = 0;

  BlockingQueue<Delivery> rb_rx_, eb_rx_;
  BlockingQueue<AbDelivery> ab_rx_;
  /// Reactor-owned after start() (ab_subscribe posts the swap there);
  /// when set, AB deliveries bypass ab_rx_.
  AbSubscriber ab_sub_;
};

}  // namespace ritas
