#include "ritas/ritas_c.h"

#include <cstring>
#include <mutex>
#include <optional>

#include "ritas/context.h"

/* The opaque context: accumulates configuration until ritas_start, then
 * owns the C++ Context. recv stashes hold a popped-but-undersized delivery
 * so RITAS_ETOOBIG does not lose the message. */
struct ritas_t {
  ritas::Context::Options opts;
  std::vector<bool> added;
  std::unique_ptr<ritas::Context> ctx;
  // One mutex per service: a blocked rb_recv must not stall eb/ab_recv.
  std::mutex rb_mutex, eb_mutex, ab_mutex;
  std::optional<ritas::Context::Delivery> rb_stash, eb_stash;
  std::optional<ritas::Context::AbDelivery> ab_stash;
};

namespace {

bool started(const ritas_t* r) { return r != nullptr && r->ctx != nullptr; }

long copy_out(const ritas::Bytes& payload, uint8_t* buf, size_t cap) {
  if (payload.size() > cap) return RITAS_ETOOBIG;
  if (!payload.empty()) std::memcpy(buf, payload.data(), payload.size());
  return static_cast<long>(payload.size());
}

}  // namespace

extern "C" {

ritas_t* ritas_init(uint32_t n, uint32_t self, const uint8_t* secret,
                    size_t secret_len) {
  if (n < 4 || self >= n || (secret == nullptr && secret_len > 0)) return nullptr;
  try {
    auto* r = new ritas_t;
    r->opts.n = n;
    r->opts.self = self;
    r->opts.peers.resize(n);
    r->opts.master_secret.assign(secret, secret + secret_len);
    r->added.assign(n, false);
    return r;
  } catch (...) {
    return nullptr;
  }
}

int ritas_proc_add_ipv4(ritas_t* r, uint32_t id, const char* host,
                        uint16_t port) {
  if (r == nullptr || host == nullptr || id >= r->opts.n) return RITAS_EINVAL;
  if (started(r)) return RITAS_ESTATE;
  r->opts.peers[id] = ritas::net::PeerAddr{host, port};
  r->added[id] = true;
  return RITAS_OK;
}

int ritas_set_opt(ritas_t* r, int opt, long value) {
  if (r == nullptr) return RITAS_EINVAL;
  if (started(r)) return RITAS_ESTATE;
  switch (opt) {
    case RITAS_OPT_BATCH_ENABLED:
      if (value != 0 && value != 1) return RITAS_EINVAL;
      r->opts.batch.enabled = value != 0;
      return RITAS_OK;
    case RITAS_OPT_BATCH_MAX_MSGS:
      if (value <= 0 || value > 0xffffffffL) return RITAS_EINVAL;
      r->opts.batch.max_msgs = static_cast<uint32_t>(value);
      return RITAS_OK;
    case RITAS_OPT_BATCH_MAX_BYTES:
      if (value <= 0 || value > 0xffffffffL) return RITAS_EINVAL;
      r->opts.batch.max_bytes = static_cast<uint32_t>(value);
      return RITAS_OK;
    case RITAS_OPT_RECV_WINDOW:
      if (value <= 0 || value > 0xffffffffL) return RITAS_EINVAL;
      r->opts.recv_window = static_cast<uint32_t>(value);
      return RITAS_OK;
    case RITAS_OPT_MIN_START_LINKS:
      if (value < 0 || value >= r->opts.n) return RITAS_EINVAL;
      r->opts.min_start_links = static_cast<uint32_t>(value);
      return RITAS_OK;
    case RITAS_OPT_GROUP_ID:
      if (value < 0 || value > 0xffffffffL) return RITAS_EINVAL;
      r->opts.group = static_cast<uint32_t>(value);
      return RITAS_OK;
    case RITAS_OPT_RB_VARIANT:
      if (value != 0 && value != 1) return RITAS_EINVAL;
      r->opts.stack.variants.rb = static_cast<ritas::RbVariant>(value);
      return RITAS_OK;
    case RITAS_OPT_BC_VARIANT:
      if (value != 0 && value != 1) return RITAS_EINVAL;
      r->opts.stack.variants.bc = static_cast<ritas::BcVariant>(value);
      /* Crain's agreement argument needs a COMMON coin; selecting it
       * implies the dealt coin so the pair can't be misconfigured. */
      if (r->opts.stack.variants.bc == ritas::BcVariant::kCrain) {
        r->opts.stack.coin_mode = ritas::CoinMode::kDealt;
      }
      return RITAS_OK;
    case RITAS_OPT_REACTOR_THREADS:
      if (value < 0 || value > 64) return RITAS_EINVAL;
      r->opts.reactor_threads = static_cast<uint32_t>(value);
      return RITAS_OK;
    case RITAS_OPT_CRYPTO_THREADS:
      if (value < 0 || value > 64) return RITAS_EINVAL;
      r->opts.crypto_threads = static_cast<uint32_t>(value);
      return RITAS_OK;
    case RITAS_OPT_TRANSPORT_BATCH:
      if (value != 0 && value != 1) return RITAS_EINVAL;
      r->opts.transport_batch = value == 1;
      return RITAS_OK;
  }
  return RITAS_EINVAL;
}

long ritas_link_states(ritas_t* r, uint8_t* states, size_t cap) {
  if (r == nullptr || (states == nullptr && cap > 0)) return RITAS_EINVAL;
  if (!started(r)) return RITAS_ESTATE;
  if (cap < r->opts.n) return RITAS_ETOOBIG;
  try {
    const auto ls = r->ctx->link_states();
    for (size_t i = 0; i < ls.size(); ++i) {
      states[i] = static_cast<uint8_t>(ls[i]);
    }
    return static_cast<long>(ls.size());
  } catch (...) {
    return RITAS_EINTERNAL;
  }
}

long long ritas_stat(ritas_t* r, int stat) {
  if (r == nullptr) return RITAS_EINVAL;
  if (!started(r)) return RITAS_ESTATE;
  try {
    const auto s = r->ctx->transport_stats();
    switch (stat) {
      case RITAS_STAT_FRAMES_SENT: return static_cast<long long>(s.frames_sent);
      case RITAS_STAT_FRAMES_RECEIVED:
        return static_cast<long long>(s.frames_received);
      case RITAS_STAT_FRAMES_RETRANSMITTED:
        return static_cast<long long>(s.frames_retransmitted);
      case RITAS_STAT_BYTES_SENT: return static_cast<long long>(s.bytes_sent);
      case RITAS_STAT_MAC_FAILURES:
        return static_cast<long long>(s.mac_failures);
      case RITAS_STAT_REPLAY_DROPS:
        return static_cast<long long>(s.replay_drops);
      case RITAS_STAT_SESSION_REJECTS:
        return static_cast<long long>(s.session_rejects);
      case RITAS_STAT_COUNTER_GAPS:
        return static_cast<long long>(s.counter_gaps);
      case RITAS_STAT_OVERSIZE_DROPS:
        return static_cast<long long>(s.oversize_drops);
      case RITAS_STAT_QUEUE_DROPS: return static_cast<long long>(s.queue_drops);
      case RITAS_STAT_LINK_RECONNECTS:
        return static_cast<long long>(s.link_reconnects);
      case RITAS_STAT_HANDSHAKE_FAILURES:
        return static_cast<long long>(s.handshake_failures);
      case RITAS_STAT_CRYPTO_OFFLOADED:
        return static_cast<long long>(s.crypto_offloaded);
      case RITAS_STAT_CRYPTO_MAC_OFFLOADED:
        return static_cast<long long>(s.crypto_mac_offloaded);
      case RITAS_STAT_SENDMSG_CALLS:
        return static_cast<long long>(s.sendmsg_calls);
      case RITAS_STAT_BYTES_TO_KERNEL:
        return static_cast<long long>(s.bytes_to_kernel);
      case RITAS_STAT_HANDOFF_ENQUEUED:
      case RITAS_STAT_HANDOFF_DROPPED:
      case RITAS_STAT_REACTOR_QUEUE_DEPTH: {
        const auto p = r->ctx->pipeline_stats();
        if (stat == RITAS_STAT_HANDOFF_ENQUEUED) {
          return static_cast<long long>(p.handoff_enqueued);
        }
        if (stat == RITAS_STAT_HANDOFF_DROPPED) {
          return static_cast<long long>(p.handoff_dropped);
        }
        size_t depth = 0;
        for (size_t d : p.queue_depth) depth = d > depth ? d : depth;
        return static_cast<long long>(depth);
      }
    }
    return RITAS_EINVAL;
  } catch (...) {
    return RITAS_EINTERNAL;
  }
}

int ritas_start(ritas_t* r) {
  if (r == nullptr) return RITAS_EINVAL;
  if (started(r)) return RITAS_ESTATE;
  for (bool a : r->added) {
    if (!a) return RITAS_ESTATE;  // every process must be registered
  }
  try {
    r->ctx = std::make_unique<ritas::Context>(r->opts);
    r->ctx->start();
    return RITAS_OK;
  } catch (const std::invalid_argument&) {
    r->ctx.reset();
    return RITAS_EINVAL;
  } catch (...) {
    r->ctx.reset();
    return RITAS_ENET;
  }
}

int ritas_stop(ritas_t* r) {
  if (r == nullptr) return RITAS_EINVAL;
  if (!started(r)) return RITAS_ESTATE;
  try {
    r->ctx->stop();  // wakes blocked recvs; ctx stays alive until destroy
    return RITAS_OK;
  } catch (...) {
    return RITAS_EINTERNAL;
  }
}

void ritas_destroy(ritas_t* r) {
  if (r == nullptr) return;
  try {
    if (r->ctx) r->ctx->stop();
  } catch (...) {
  }
  delete r;
}

int ritas_rb_bcast(ritas_t* r, const uint8_t* msg, size_t len) {
  if (!started(r) || (msg == nullptr && len > 0)) return RITAS_EINVAL;
  try {
    r->ctx->rb_bcast(ritas::Bytes(msg, msg + len));
    return RITAS_OK;
  } catch (const std::logic_error&) {
    return RITAS_ESTATE;  // session stopped
  } catch (...) {
    return RITAS_EINTERNAL;
  }
}

int ritas_eb_bcast(ritas_t* r, const uint8_t* msg, size_t len) {
  if (!started(r) || (msg == nullptr && len > 0)) return RITAS_EINVAL;
  try {
    r->ctx->eb_bcast(ritas::Bytes(msg, msg + len));
    return RITAS_OK;
  } catch (const std::logic_error&) {
    return RITAS_ESTATE;  // session stopped
  } catch (...) {
    return RITAS_EINTERNAL;
  }
}

int ritas_ab_bcast(ritas_t* r, const uint8_t* msg, size_t len) {
  if (!started(r) || (msg == nullptr && len > 0)) return RITAS_EINVAL;
  try {
    r->ctx->ab_bcast(ritas::Bytes(msg, msg + len));
    return RITAS_OK;
  } catch (const std::logic_error&) {
    return RITAS_ESTATE;  // session stopped
  } catch (...) {
    return RITAS_EINTERNAL;
  }
}

long ritas_rb_recv(ritas_t* r, uint32_t* origin, uint8_t* buf, size_t cap) {
  if (!started(r) || (buf == nullptr && cap > 0)) return RITAS_EINVAL;
  try {
    std::lock_guard<std::mutex> lock(r->rb_mutex);
    if (!r->rb_stash) r->rb_stash = r->ctx->rb_recv();
    const long rc = copy_out(r->rb_stash->payload, buf, cap);
    if (rc < 0) return rc;  // stays stashed
    if (origin != nullptr) *origin = r->rb_stash->origin;
    r->rb_stash.reset();
    return rc;
  } catch (const ritas::ShutdownError&) {
    return RITAS_ESHUTDOWN;
  } catch (...) {
    return RITAS_EINTERNAL;
  }
}

long ritas_eb_recv(ritas_t* r, uint32_t* origin, uint8_t* buf, size_t cap) {
  if (!started(r) || (buf == nullptr && cap > 0)) return RITAS_EINVAL;
  try {
    std::lock_guard<std::mutex> lock(r->eb_mutex);
    if (!r->eb_stash) r->eb_stash = r->ctx->eb_recv();
    const long rc = copy_out(r->eb_stash->payload, buf, cap);
    if (rc < 0) return rc;
    if (origin != nullptr) *origin = r->eb_stash->origin;
    r->eb_stash.reset();
    return rc;
  } catch (const ritas::ShutdownError&) {
    return RITAS_ESHUTDOWN;
  } catch (...) {
    return RITAS_EINTERNAL;
  }
}

long ritas_ab_recv(ritas_t* r, uint32_t* origin, uint8_t* buf, size_t cap) {
  return ritas_ab_recv_timeout(r, origin, buf, cap, -1);
}

long ritas_ab_recv_timeout(ritas_t* r, uint32_t* origin, uint8_t* buf,
                           size_t cap, long timeout_ms) {
  if (!started(r) || (buf == nullptr && cap > 0)) return RITAS_EINVAL;
  try {
    std::lock_guard<std::mutex> lock(r->ab_mutex);
    if (!r->ab_stash) {
      std::optional<ritas::Context::AbDelivery> d;
      if (timeout_ms < 0) {
        d = r->ctx->ab_recv();
      } else if (timeout_ms == 0) {
        d = r->ctx->ab_try_recv();
      } else {
        d = r->ctx->ab_recv_for(std::chrono::milliseconds(timeout_ms));
      }
      if (!d) return RITAS_EAGAIN;
      r->ab_stash = std::move(d);
    }
    const long rc = copy_out(r->ab_stash->payload, buf, cap);
    if (rc < 0) return rc;
    if (origin != nullptr) *origin = r->ab_stash->origin;
    r->ab_stash.reset();
    return rc;
  } catch (const ritas::ShutdownError&) {
    return RITAS_ESHUTDOWN;
  } catch (...) {
    return RITAS_EINTERNAL;
  }
}

int ritas_ab_flush(ritas_t* r) {
  if (!started(r)) return RITAS_EINVAL;
  try {
    r->ctx->ab_flush();
    return RITAS_OK;
  } catch (const std::logic_error&) {
    return RITAS_ESTATE;  // session stopped
  } catch (...) {
    return RITAS_EINTERNAL;
  }
}

int ritas_bc(ritas_t* r, int proposal) {
  if (!started(r)) return RITAS_EINVAL;
  try {
    return r->ctx->bc(proposal != 0) ? 1 : 0;
  } catch (...) {
    return RITAS_EINTERNAL;
  }
}

long ritas_mvc(ritas_t* r, const uint8_t* msg, size_t len, uint8_t* buf,
               size_t cap, int* decided_default) {
  if (!started(r) || (msg == nullptr && len > 0) ||
      (buf == nullptr && cap > 0)) {
    return RITAS_EINVAL;
  }
  try {
    const auto decision = r->ctx->mvc(ritas::Bytes(msg, msg + len));
    if (!decision) {
      if (decided_default != nullptr) *decided_default = 1;
      return 0;
    }
    if (decided_default != nullptr) *decided_default = 0;
    return copy_out(*decision, buf, cap);
  } catch (...) {
    return RITAS_EINTERNAL;
  }
}

int ritas_vc(ritas_t* r, const uint8_t* msg, size_t len, uint8_t* buf,
             size_t entry_cap, long* lens) {
  if (!started(r) || (msg == nullptr && len > 0) || buf == nullptr ||
      lens == nullptr) {
    return RITAS_EINVAL;
  }
  try {
    const auto vec = r->ctx->vc(ritas::Bytes(msg, msg + len));
    for (size_t i = 0; i < vec.size(); ++i) {
      if (!vec[i]) {
        lens[i] = -1;
        continue;
      }
      if (vec[i]->size() > entry_cap) return RITAS_ETOOBIG;
      if (!vec[i]->empty()) {
        std::memcpy(buf + i * entry_cap, vec[i]->data(), vec[i]->size());
      }
      lens[i] = static_cast<long>(vec[i]->size());
    }
    return RITAS_OK;
  } catch (...) {
    return RITAS_EINTERNAL;
  }
}

}  // extern "C"
