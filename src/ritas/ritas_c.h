/* ritas_c.h — C API for the RITAS stack, faithful to the paper's §3.1.
 *
 * The original implementation is a C shared library whose interface
 * revolves around an opaque `ritas_t` context: initialize it, add the
 * participating processes, call the service requests, destroy it. This
 * header reproduces that interface over the C++ core:
 *
 *   ritas_t* r = ritas_init(n, self_id, "shared-secret", secret_len);
 *   ritas_proc_add_ipv4(r, id, "10.0.0.2", 7000);   // once per process
 *   ritas_start(r);                                  // connect the mesh
 *   ritas_rb_bcast(r, buf, len);                     // or eb/ab
 *   ritas_rb_recv(r, &origin, out, cap);             // blocking
 *   int b = ritas_bc(r, 1);                          // consensus services
 *   ritas_destroy(r);
 *
 * All functions return 0 (or a non-negative count) on success and a
 * negative RITAS_E* code on failure. Buffers are caller-owned; *_recv
 * copies into the caller's buffer and fails with RITAS_ETOOBIG if it does
 * not fit. The library never throws across this boundary.
 */
#ifndef RITAS_C_H
#define RITAS_C_H

#include <stddef.h>
#include <stdint.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef struct ritas_t ritas_t;

enum {
  RITAS_OK = 0,
  RITAS_EINVAL = -1,    /* bad argument */
  RITAS_ESTATE = -2,    /* wrong state (e.g. service call before start) */
  RITAS_ENET = -3,      /* mesh setup / network failure */
  RITAS_ETOOBIG = -4,   /* caller buffer too small (value preserved) */
  RITAS_EINTERNAL = -5, /* unexpected internal failure */
  RITAS_ESHUTDOWN = -6, /* session stopped while (or before) blocking */
  RITAS_EAGAIN = -7     /* nothing available within the timeout */
};

/* Tunables for ritas_set_opt (pre-start only). The batch options switch
 * atomic-broadcast payload batching on and size its limits; they change
 * the AB_MSG wire format, so every correct process must configure them
 * identically. */
enum {
  RITAS_OPT_BATCH_ENABLED = 1,   /* 0 or 1 (default 0) */
  RITAS_OPT_BATCH_MAX_MSGS = 2,  /* messages per batch, > 0 (default 64) */
  RITAS_OPT_BATCH_MAX_BYTES = 3, /* framed bytes per batch, > 0 (default 16384) */
  RITAS_OPT_RECV_WINDOW = 4,     /* pre-created rb/eb receive roots, > 0 */
  RITAS_OPT_MIN_START_LINKS = 5, /* links ritas_start waits for; 0 = n-f-1 */
  RITAS_OPT_GROUP_ID = 6,        /* consensus group on a shared mesh;
                                  * 0 (default) keeps the original wire
                                  * format — all correct processes of one
                                  * group must agree on it */
  RITAS_OPT_RB_VARIANT = 7,      /* reliable-broadcast algorithm: 0 = Bracha
                                  * (default), 1 = Imbs-Raynal 2-step
                                  * (needs n >= 6; enforced at ritas_start,
                                  * which fails with RITAS_EINVAL below
                                  * that). Variants use disjoint message
                                  * tags; all correct processes of a group
                                  * must pick the same one. */
  RITAS_OPT_BC_VARIANT = 8,      /* binary-consensus algorithm: 0 = Bracha
                                  * (default), 1 = Crain. Selecting Crain
                                  * also switches the stack to the dealt
                                  * common coin (derived from the group
                                  * key), which its agreement argument
                                  * requires. */
  RITAS_OPT_REACTOR_THREADS = 9, /* execution-pipeline reactor threads,
                                  * 0..64; 0 (default) = inline
                                  * single-thread path, bit-identical on
                                  * wire/trace/bench. Local knob: it never
                                  * touches the wire, so processes may
                                  * differ. */
  RITAS_OPT_CRYPTO_THREADS = 10, /* HMAC worker threads, 0..64; 0 = MACs
                                  * inline on the calling thread. Local
                                  * knob like REACTOR_THREADS. */
  RITAS_OPT_TRANSPORT_BATCH = 11 /* transport send batching: 1 (default)
                                  * = sends stage frames and the poll
                                  * thread flushes many per sendmsg; 0 =
                                  * drain inline per send. Local knob —
                                  * wire bytes are identical either way. */
};

/* Per-link channel health, as reported by ritas_link_states. Values match
 * the C++ ritas::LinkState enum. */
enum {
  RITAS_LINK_DOWN = 0,       /* no connection, no retry scheduled */
  RITAS_LINK_CONNECTING = 1, /* TCP connect or session handshake in flight */
  RITAS_LINK_UP = 2,         /* session established; frames flow */
  RITAS_LINK_BACKOFF = 3     /* waiting out a jittered backoff before redial */
};

/* Transport counters for ritas_stat. */
enum {
  RITAS_STAT_FRAMES_SENT = 1,
  RITAS_STAT_FRAMES_RECEIVED = 2,
  RITAS_STAT_FRAMES_RETRANSMITTED = 3, /* re-writes after counter resync */
  RITAS_STAT_BYTES_SENT = 4,
  RITAS_STAT_MAC_FAILURES = 5,
  RITAS_STAT_REPLAY_DROPS = 6,     /* stale counter, current session */
  RITAS_STAT_SESSION_REJECTS = 7,  /* frame tagged with an old session id */
  RITAS_STAT_COUNTER_GAPS = 8,     /* frames lost to send-queue overflow */
  RITAS_STAT_OVERSIZE_DROPS = 9,
  RITAS_STAT_QUEUE_DROPS = 10,     /* never-sent frames evicted by the cap */
  RITAS_STAT_LINK_RECONNECTS = 11, /* handshakes that revived a dead link */
  RITAS_STAT_HANDSHAKE_FAILURES = 12,
  /* Execution-pipeline counters (all 0 with the default inline knobs). */
  RITAS_STAT_CRYPTO_OFFLOADED = 13,     /* rx MAC verifies run on workers */
  RITAS_STAT_CRYPTO_MAC_OFFLOADED = 14, /* tx MAC computes run on workers */
  RITAS_STAT_HANDOFF_ENQUEUED = 15,     /* frames handed to reactor rings */
  RITAS_STAT_HANDOFF_DROPPED = 16,      /* frames dropped on a full ring */
  RITAS_STAT_REACTOR_QUEUE_DEPTH = 17,  /* max current ring occupancy */
  /* Transport fast-path counters (multi-frame sendmsg batching). */
  RITAS_STAT_SENDMSG_CALLS = 18,        /* data-frame sendmsg syscalls */
  RITAS_STAT_BYTES_TO_KERNEL = 19       /* bytes the kernel accepted */
};

/* Context management ----------------------------------------------------- */

/* Allocates a context for a group of n processes in which this process has
 * identifier self (0 <= self < n). `secret` is the dealer-distributed
 * master secret all group members share (pairwise keys derive from it). */
ritas_t* ritas_init(uint32_t n, uint32_t self, const uint8_t* secret,
                    size_t secret_len);

/* Registers the address of process `id`. Every id in [0, n) must be added
 * (including self: its port is the local listen port) before ritas_start. */
int ritas_proc_add_ipv4(ritas_t* r, uint32_t id, const char* host, uint16_t port);

/* Sets a tunable (see RITAS_OPT_*). Only valid before ritas_start
 * (RITAS_ESTATE afterwards); RITAS_EINVAL for an unknown option or an
 * out-of-range value. */
int ritas_set_opt(ritas_t* r, int opt, long value);

/* Establishes the authenticated TCP mesh and starts the protocol stack's
 * thread. Blocks until enough links are up for the stack to make progress
 * (RITAS_OPT_MIN_START_LINKS, default n-f-1); the remaining links keep
 * connecting — and broken links keep reconnecting — in the background. */
int ritas_start(ritas_t* r);

/* Stops the session: shuts the protocol stack down and wakes every thread
 * blocked in a *_recv call with RITAS_ESHUTDOWN. The context stays valid
 * (so those threads can return safely) until ritas_destroy. Idempotent;
 * RITAS_ESTATE before ritas_start. */
int ritas_stop(ritas_t* r);

/* Tears everything down. Safe on NULL. */
void ritas_destroy(ritas_t* r);

/* Link probes ------------------------------------------------------------- */

/* Writes the health of every pairwise channel into states[0..n) (one
 * RITAS_LINK_* byte per process id; the self entry reads RITAS_LINK_UP)
 * and returns n. RITAS_ETOOBIG if cap < n, RITAS_ESTATE before start.
 * Links self-heal in the background: a RITAS_LINK_BACKOFF link redials on
 * its own, so a one-shot snapshot of a down link is not a failure. */
long ritas_link_states(ritas_t* r, uint8_t* states, size_t cap);

/* Returns the current value of one RITAS_STAT_* transport counter, or a
 * negative error (RITAS_EINVAL for an unknown stat, RITAS_ESTATE before
 * start). Counters only grow while the session runs. */
long long ritas_stat(ritas_t* r, int stat);

/* Broadcast services ------------------------------------------------------ */

int ritas_rb_bcast(ritas_t* r, const uint8_t* msg, size_t len);
int ritas_eb_bcast(ritas_t* r, const uint8_t* msg, size_t len);
int ritas_ab_bcast(ritas_t* r, const uint8_t* msg, size_t len);

/* Block until the next delivery of the respective broadcast service; the
 * sender's id is stored in *origin (may be NULL). Returns the message
 * length, or RITAS_ETOOBIG if it exceeds `cap` (the message stays queued). */
long ritas_rb_recv(ritas_t* r, uint32_t* origin, uint8_t* buf, size_t cap);
long ritas_eb_recv(ritas_t* r, uint32_t* origin, uint8_t* buf, size_t cap);
long ritas_ab_recv(ritas_t* r, uint32_t* origin, uint8_t* buf, size_t cap);

/* ritas_ab_recv with a deadline: timeout_ms < 0 blocks forever, 0 polls,
 * > 0 waits at most that long. RITAS_EAGAIN when nothing was delivered in
 * time; otherwise identical to ritas_ab_recv (including RITAS_ETOOBIG
 * preserving the message). */
long ritas_ab_recv_timeout(ritas_t* r, uint32_t* origin, uint8_t* buf,
                           size_t cap, long timeout_ms);

/* Seals the open atomic-broadcast batch immediately. No-op (still
 * RITAS_OK) when batching is off or nothing is buffered. */
int ritas_ab_flush(ritas_t* r);

/* Consensus services ------------------------------------------------------ */

/* Binary consensus: proposes `proposal` (0/1), blocks, returns the decision
 * (0/1) or a negative error. All processes must call the consensus
 * services in the same order. */
int ritas_bc(ritas_t* r, int proposal);

/* Multi-valued consensus: proposes msg, blocks, writes the decision into
 * buf and returns its length; returns 0 with *decided_default = 1 when the
 * decision is the default value ⊥. */
long ritas_mvc(ritas_t* r, const uint8_t* msg, size_t len, uint8_t* buf,
               size_t cap, int* decided_default);

/* Vector consensus: proposes msg, blocks, fills per-process entries.
 * lens[i] receives the length of entry i or -1 for ⊥; entry i is written
 * at buf + i*entry_cap. Returns 0 on success. */
int ritas_vc(ritas_t* r, const uint8_t* msg, size_t len, uint8_t* buf,
             size_t entry_cap, long* lens);

#ifdef __cplusplus
} /* extern "C" */
#endif

#endif /* RITAS_C_H */
