#include "ritas/sharded_node.h"

#include <random>
#include <stdexcept>

#include "common/rng.h"
#include "smr/kv_machine.h"

namespace ritas {

namespace {

ShardedNode::Options validate(ShardedNode::Options o) {
  if (o.n < 4) {
    throw std::invalid_argument("ShardedNode: n must be >= 4 (n >= 3f+1)");
  }
  if (o.self >= o.n) throw std::invalid_argument("ShardedNode: self must be < n");
  if (o.peers.size() != o.n) {
    throw std::invalid_argument("ShardedNode: peers.size() must equal n");
  }
  if (o.groups == 0) throw std::invalid_argument("ShardedNode: groups == 0");
  if (o.reactor_threads > 64 || o.crypto_threads > 64) {
    throw std::invalid_argument(
        "ShardedNode: reactor_threads/crypto_threads must be <= 64");
  }
  if (!o.pinning.empty()) {
    if (o.reactor_threads == 0) {
      throw std::invalid_argument("ShardedNode: pinning needs reactor_threads > 0");
    }
    if (o.pinning.size() != o.groups) {
      throw std::invalid_argument("ShardedNode: pinning.size() must equal groups");
    }
    for (std::uint32_t r : o.pinning) {
      if (r >= o.reactor_threads) {
        throw std::invalid_argument("ShardedNode: pin target out of range");
      }
    }
  }
  return o;
}

}  // namespace

ShardedNode::ShardedNode(Options opts)
    : opts_(validate(std::move(opts))),
      keys_(KeyChain::deal(opts_.master_secret, opts_.n, opts_.self)) {
  net::TcpTransport::Options topts;
  topts.n = opts_.n;
  topts.self = opts_.self;
  topts.peers = opts_.peers;
  topts.authenticate = opts_.authenticate;
  topts.min_start_links = opts_.min_start_links;
  topts.crypto_threads = opts_.crypto_threads;
  topts.batch_sends = opts_.transport_batch;
  topts.rng_seed =
      opts_.rng_seed == 0
          ? 0
          : opts_.rng_seed ^ (0x9e3779b97f4a7c15ULL * (opts_.self + 1));
  transport_ = std::make_unique<net::TcpTransport>(topts, keys_);

  if (opts_.reactor_threads > 0) {
    ReactorPool::Options popts;
    popts.threads = opts_.reactor_threads;
    pool_ = std::make_unique<ReactorPool>(popts);
    for (GroupId g = 0; g < opts_.groups; ++g) {
      if (!opts_.pinning.empty()) pool_->pin(g, opts_.pinning[g]);
    }
  }

  std::uint64_t seed = opts_.rng_seed;
  if (seed == 0) {
    std::random_device rd;
    seed = (static_cast<std::uint64_t>(rd()) << 32) ^ rd();
  }
  // Same per-(process, group) derivation as sim::ShardedCluster, so a
  // fixed-seed TCP run draws the same per-stack randomness streams.
  std::uint64_t s = seed;
  const std::uint64_t base = splitmix64(s);

  stacks_.reserve(opts_.groups);
  if (opts_.trace) tracers_.reserve(opts_.groups);
  for (GroupId g = 0; g < opts_.groups; ++g) {
    StackConfig cfg = opts_.stack;
    cfg.n = opts_.n;
    cfg.self = opts_.self;
    cfg.group = g;
    cfg.reactor_threads = opts_.reactor_threads;
    cfg.crypto_threads = opts_.crypto_threads;
    const std::uint64_t proc_seed =
        base ^ (0x1000 + opts_.self) ^
        (static_cast<std::uint64_t>(g) * 0x9e3779b97f4a7c15ULL);
    stacks_.push_back(
        std::make_unique<ProtocolStack>(cfg, *transport_, keys_, proc_seed));
    mux_.attach(g, *stacks_[g]);
    if (opts_.trace) {
      tracers_.push_back(std::make_unique<Tracer>(opts_.self));
      stacks_[g]->set_tracer(tracers_[g].get());
    }
  }

  smr::ShardedService::Config sc;
  sc.shards = opts_.groups;
  sc.key_of = opts_.key_of ? opts_.key_of
                           : [](ByteView op) { return smr::kv_key_of(op); };
  const auto factory =
      opts_.machine_factory
          ? opts_.machine_factory
          : [](smr::ShardId) -> std::unique_ptr<smr::StateMachine> {
              return std::make_unique<smr::KvMachine>();
            };
  service_ = std::make_unique<smr::ShardedService>(sc, factory);

  // AB roots: the SAME root id at every process and every group — the
  // GroupId prefix is the wire-level separator (see sim::ShardedCluster).
  const InstanceId ab_root = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
  abs_.reserve(opts_.groups);
  for (GroupId g = 0; g < opts_.groups; ++g) {
    abs_.push_back(std::make_unique<AtomicBroadcast>(
        *stacks_[g], nullptr, ab_root,
        [this, g](ProcessId /*origin*/, std::uint64_t /*rbid*/, Slice payload) {
          service_->on_delivered(g, payload.view());
        }));
  }
  service_->set_on_applied([this](smr::ShardId, std::uint64_t, std::uint64_t,
                                  const Bytes&) {
    {
      std::lock_guard<std::mutex> lock(applied_mutex_);
      ++applied_;
    }
    applied_cv_.notify_all();
  });
  service_->bind_submitter([this](smr::ShardId shard, const Bytes& command) {
    // Any thread → the reactor (or poll thread) that owns the shard's
    // stack; the broadcast and the follow-up pump both run there.
    post_to_group(shard, [this, shard, command] {
      abs_[shard]->bcast(Bytes(command));
      stacks_[shard]->pump();
    });
  });
}

ShardedNode::~ShardedNode() { stop(); }

void ShardedNode::start() {
  if (running_.load()) return;
  if (pool_) {
    // One idle hook per reactor: pump exactly the stacks it owns, after
    // every drain batch. Ownership never changes after start.
    for (std::uint32_t r = 0; r < opts_.reactor_threads; ++r) {
      std::vector<GroupId> owned;
      for (GroupId g = 0; g < opts_.groups; ++g) {
        if (pool_->reactor_of(g) == r) owned.push_back(g);
      }
      pool_->set_idle_hook(r, [this, owned = std::move(owned)] {
        for (GroupId g : owned) stacks_[g]->pump();
      });
    }
    pool_->start();
    mux_.bind_reactors(pool_.get());
  }
  transport_->set_sink([this](ProcessId from, Slice frame) {
    mux_.on_packet(from, std::move(frame));
  });
  transport_->start();
  running_.store(true);
  poll_thread_ = std::thread([this] { poll_loop(); });
}

void ShardedNode::stop() {
  if (!running_.exchange(false)) return;
  transport_->wakeup();
  if (poll_thread_.joinable()) poll_thread_.join();
  // Poll thread gone ⇒ no new frames enter the rings; drain the reactors
  // before anything they own (stacks, service) can be torn down.
  if (pool_) pool_->stop();
  transport_->stop();
}

void ShardedNode::poll_loop() {
  if (pool_) {
    // Pipeline mode: this thread owns only the sockets and the handoff.
    while (running_.load()) transport_->poll_once(20);
    return;
  }
  // Single-thread path: poll, run posted tasks, pump — one loop does it
  // all, exactly like the pre-pipeline Context reactor.
  while (running_.load()) {
    transport_->poll_once(20);
    std::deque<std::function<void()>> tasks;
    {
      std::lock_guard<std::mutex> lock(tasks_mutex_);
      tasks.swap(tasks_);
    }
    for (auto& t : tasks) t();
    for (GroupId g = 0; g < opts_.groups; ++g) stacks_[g]->pump();
  }
  // Final drain so a submit racing stop() is not silently dropped.
  std::deque<std::function<void()>> tasks;
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    tasks.swap(tasks_);
  }
  for (auto& t : tasks) t();
}

void ShardedNode::post_to_group(GroupId g, std::function<void()> fn) {
  if (pool_) {
    pool_->post(g, std::move(fn));
    return;
  }
  {
    std::lock_guard<std::mutex> lock(tasks_mutex_);
    tasks_.push_back(std::move(fn));
  }
  transport_->wakeup();
}

smr::ShardId ShardedNode::submit(std::uint64_t client, std::uint64_t seq,
                                 ByteView op) {
  if (!running_.load()) throw std::logic_error("ShardedNode: not started");
  return service_->submit(client, seq, op);
}

std::uint64_t ShardedNode::applied_total() const {
  std::lock_guard<std::mutex> lock(applied_mutex_);
  return applied_;
}

bool ShardedNode::wait_applied_at_least(std::uint64_t count,
                                        std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(applied_mutex_);
  return applied_cv_.wait_for(lock, timeout,
                              [&] { return applied_ >= count; });
}

Bytes ShardedNode::group_trace_bytes(GroupId g) const {
  if (g >= tracers_.size()) return {};
  return tracers_[g]->encode();
}

}  // namespace ritas
