// ShardedNode — one process of a real-TCP sharded SMR deployment, run
// through the multi-core execution pipeline.
//
// The TCP twin of sim::ShardedCluster's per-process wiring, plus the
// pipeline: one TcpTransport (shared mesh), G ProtocolStacks (one per
// group = shard) demultiplexed by a GroupMux, one AtomicBroadcast root
// per group feeding one smr::ShardedService. With reactor_threads > 0
// the mux hands each frame to the ReactorPool and the service's G groups
// are pinned across the T reactors (Options::pinning, default g % T);
// with crypto_threads > 0 the transport's per-frame HMAC work runs on
// crypto workers. Both 0 (default) reproduces the single-thread path: a
// poll thread that does everything, byte-identical to PR 6's wiring.
//
// Thread ownership map:
//   poll thread    — sockets, link state machines, mux routing, handoff
//   reactor r      — every stack/AB/applier of the groups pinned to r
//   crypto workers — per-frame HMAC verify/compute only, no state
//   app threads    — submit() (posts to the owning reactor), stats, waits
//
// Per-group tracers (Options::trace) are recorded only by the owning
// reactor, so for a fixed seed and pinning each group's trace is
// bit-identical whatever T is — the determinism battery in
// tests/test_pipeline.cpp holds this.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/trace.h"
#include "core/atomic_broadcast.h"
#include "core/group_mux.h"
#include "core/reactor.h"
#include "core/stack.h"
#include "crypto/keychain.h"
#include "net/tcp_transport.h"
#include "smr/sharded_service.h"

namespace ritas {

class ShardedNode {
 public:
  struct Options {
    std::uint32_t n = 4;
    ProcessId self = 0;
    std::vector<net::PeerAddr> peers;  // one per process, index = id
    Bytes master_secret;
    bool authenticate = true;
    /// Shard count: one consensus group (and one ProtocolStack) each.
    std::uint32_t groups = 1;
    /// Execution pipeline (0/0 = single-thread path, see header).
    std::uint32_t reactor_threads = 0;
    std::uint32_t crypto_threads = 0;
    /// Transport send batching (multi-frame sendmsg flush; local-only, no
    /// wire change). Mirrors Context::Options::transport_batch.
    bool transport_batch = true;
    /// Explicit group → reactor pinning (size = groups, entries <
    /// reactor_threads). Empty = g % reactor_threads. Pinning is part of
    /// the determinism contract: same seed + same pinning ⇒ bit-identical
    /// per-group traces.
    std::vector<std::uint32_t> pinning;
    StackConfig stack;  // template; n/self/group/pipeline knobs overwritten
    std::uint64_t rng_seed = 0;  // 0 = std::random_device
    std::uint32_t min_start_links = 0;
    /// Attach one Tracer per group (read back with group_trace_bytes).
    bool trace = false;
    smr::ShardedService::MachineFactory machine_factory;  // null => KvMachine
    smr::ShardedService::KeyOfFn key_of;                  // null => kv_key_of
  };

  explicit ShardedNode(Options opts);
  ~ShardedNode();
  ShardedNode(const ShardedNode&) = delete;
  ShardedNode& operator=(const ShardedNode&) = delete;

  /// Establishes the mesh (blocks like TcpTransport::start) and starts
  /// the poll thread + reactors.
  void start();
  void stop();

  smr::ShardedService& service() { return *service_; }
  /// Routes `op` to its owning shard and broadcasts it there (any thread).
  smr::ShardId submit(std::uint64_t client, std::uint64_t seq, ByteView op);
  /// Commands applied on this process across all local shards.
  std::uint64_t applied_total() const;
  /// Blocks until applied_total() >= count; false on timeout.
  bool wait_applied_at_least(std::uint64_t count,
                             std::chrono::milliseconds timeout);

  net::TcpTransport& transport() { return *transport_; }
  net::TcpTransport::Stats transport_stats() const { return transport_->stats(); }
  ReactorPool::Stats pipeline_stats() const {
    return pool_ ? pool_->stats() : ReactorPool::Stats{};
  }
  std::uint32_t reactor_of(GroupId g) const {
    return pool_ ? pool_->reactor_of(g) : 0;
  }
  /// Deterministic binary encoding of group g's trace (Options::trace
  /// only; call after stop() — the owning reactor must be quiesced).
  Bytes group_trace_bytes(GroupId g) const;

 private:
  void poll_loop();
  /// Runs fn on the thread that owns group g's stack: the pool reactor in
  /// pipeline mode, the poll thread (via the task queue) otherwise.
  void post_to_group(GroupId g, std::function<void()> fn);

  Options opts_;
  KeyChain keys_;
  std::unique_ptr<net::TcpTransport> transport_;
  std::unique_ptr<ReactorPool> pool_;  // null = single-thread path
  GroupMux mux_;
  std::vector<std::unique_ptr<ProtocolStack>> stacks_;     // [group]
  std::vector<std::unique_ptr<Tracer>> tracers_;           // [group], opt-in
  std::vector<std::unique_ptr<AtomicBroadcast>> abs_;      // [group]
  std::unique_ptr<smr::ShardedService> service_;

  std::thread poll_thread_;
  std::atomic<bool> running_{false};
  std::mutex tasks_mutex_;  // single-thread path only
  std::deque<std::function<void()>> tasks_;

  mutable std::mutex applied_mutex_;
  std::condition_variable applied_cv_;
  std::uint64_t applied_ = 0;
};

}  // namespace ritas
