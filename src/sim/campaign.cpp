#include "sim/campaign.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/atomic_broadcast.h"
#include "sim/cluster.h"
#include "sim/load_gen.h"
#include "sim/oracles.h"

namespace ritas::sim {

namespace {

// Seed-domain separators (distinct from the explorer's 0x5c4ed01e tags):
// cluster, load generator and WAN model draw from independent streams.
constexpr std::uint64_t kTagCluster = 0xca3b619000000001ull;
constexpr std::uint64_t kTagLoad = 0xca3b619000000002ull;
constexpr std::uint64_t kTagWan = 0xca3b619000000003ull;

std::uint64_t derive(std::uint64_t seed, std::uint64_t tag) {
  std::uint64_t st = seed ^ tag;
  return splitmix64(st);
}

/// Streaming hash over the observation stream (same shape as the
/// explorer's trial fingerprint).
struct Fingerprint {
  std::uint64_t h = 0x243f6a8885a308d3ull;
  void u64(std::uint64_t v) {
    std::uint64_t st = h ^ (v + 0x9e3779b97f4a7c15ull);
    h = splitmix64(st);
  }
  void bytes(ByteView b) {
    u64(b.size());
    std::uint64_t acc = 0;
    int k = 0;
    for (std::uint8_t c : b) {
      acc = (acc << 8) | c;
      if (++k == 8) {
        u64(acc);
        acc = 0;
        k = 0;
      }
    }
    if (k != 0) u64(acc);
  }
};

}  // namespace

const char* net_profile_name(NetProfile n) {
  switch (n) {
    case NetProfile::kLan: return "lan";
    case NetProfile::kWan: return "wan";
  }
  return "?";
}

const char* campaign_fault_name(CampaignFault f) {
  switch (f) {
    case CampaignFault::kNone: return "none";
    case CampaignFault::kChurn: return "churn";
    case CampaignFault::kByzantine: return "byzantine";
  }
  return "?";
}

CampaignResult run_campaign(const CampaignOptions& opts) {
  const std::uint32_t n = opts.n;
  CampaignResult out;

  std::vector<ProcessId> byz;
  if (opts.fault == CampaignFault::kByzantine) {
    for (std::uint32_t i = 0; i < max_faults(n); ++i) {
      byz.push_back(static_cast<ProcessId>(n - 1 - i));
    }
    std::sort(byz.begin(), byz.end());
  }

  // The WAN overlay also carries the churn kill windows, so the LAN cells
  // reuse the same delay-policy seam with an empty site map.
  WanModelConfig wcfg;
  if (opts.net == NetProfile::kWan) {
    WanProfileOptions wo;
    wo.sites = opts.wan_sites;
    wo.jitter_permille = opts.wan_jitter_permille;
    wo.loss_ppm = opts.wan_loss_ppm;
    wo.rto_ns = opts.wan_rto_ns;
    wcfg = wan_profile(n, wo);
  }
  if (opts.fault == CampaignFault::kChurn) {
    // Rotating single-link kills across the load window: never a partition
    // (the mesh routes around one dead link), but held frames stretch the
    // tail exactly like PR 5's kill_link does on real TCP.
    const Time load_ns = static_cast<Time>(
        static_cast<double>(opts.ops) / opts.ops_per_sec * 1e9);
    const Time len = load_ns / 5;
    wcfg.kills.push_back({0, 1, load_ns / 4, load_ns / 4 + len});
    wcfg.kills.push_back({1, 2, load_ns / 2, load_ns / 2 + len});
    wcfg.kills.push_back({2, 3, (3 * load_ns) / 4, (3 * load_ns) / 4 + len});
  }
  WanModel wan(std::move(wcfg), derive(opts.seed, kTagWan));

  // Observation state — declared before the Cluster so protocol callbacks
  // referencing it can never dangle.
  Fingerprint fp;
  std::vector<oracle::AbLog> ab_logs(n);
  std::vector<std::uint64_t> got(n, 0);  // loadgen ops delivered at p
  std::vector<bool> is_origin(n, false);
  LoadGen* lg = nullptr;

  ClusterOptions o;
  o.n = n;
  o.seed = derive(opts.seed, kTagCluster);
  o.byzantine = byz;
  Cluster c(o);
  c.network().set_delay_policy(wan.policy());

  const std::vector<ProcessId> origins = c.correct_set();
  const ProcessId observer = origins.front();
  for (ProcessId p : origins) is_origin[p] = true;

  std::vector<AtomicBroadcast*> ab(n, nullptr);
  const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, 1);
  for (ProcessId p : c.live()) {
    AtomicBroadcast::DeliverFn cb;
    if (c.correct(p)) {
      cb = [&, p](ProcessId origin, std::uint64_t rbid, Slice payload) {
        ab_logs[p].push_back({origin, rbid, payload.to_bytes()});
        if (is_origin[origin]) ++got[p];
        fp.u64((std::uint64_t{p} << 40) | ab_logs[p].size());
        fp.u64(origin);
        fp.bytes(ab_logs[p].back().payload);
        fp.u64(c.now());
        if (p == observer && lg != nullptr) lg->on_completed(origin);
      };
    }
    ab[p] = &c.create_root<AtomicBroadcast>(p, id, std::move(cb));
  }

  LoadGen::Options lo;
  lo.clients = opts.clients;
  lo.ops_per_sec = opts.ops_per_sec;
  lo.payload_bytes = opts.payload_bytes;
  lo.max_ops = opts.ops;
  lo.seed = derive(opts.seed, kTagLoad);
  lo.origins = origins;
  LoadGen gen(c.scheduler(), lo,
              [&c, &ab](ProcessId origin, Bytes payload) {
                c.call(origin, [&] { ab[origin]->bcast(std::move(payload)); });
              });
  lg = &gen;
  const Time t0 = c.now();
  gen.start();

  const std::uint64_t target = opts.ops;
  out.completed = c.run_until(
      [&] {
        if (gen.offered() < target) return false;
        for (ProcessId p : origins) {
          if (got[p] < target) return false;
        }
        return true;
      },
      t0 + opts.deadline);
  lg = nullptr;

  oracle::Report report;
  oracle::ab_total_order(report, origins, ab_logs);
  out.ordered = report.ok();
  out.ops_offered = gen.offered();
  out.ops_completed = gen.completed();
  out.latency = gen.latency();
  out.backlog_peak = gen.backlog_peak();
  out.elapsed = c.now() - t0;
  out.retransmissions = wan.retransmissions();
  fp.u64(out.ops_offered);
  fp.u64(out.ops_completed);
  fp.u64(out.backlog_peak);
  fp.u64(out.elapsed);
  out.fingerprint = fp.h;
  return out;
}

}  // namespace ritas::sim
