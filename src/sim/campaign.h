// One cell of the large-n / WAN scaling campaign (ROADMAP item 3).
//
// A campaign cell is (n, network profile, faultload): it builds a Cluster,
// layers a WanModel over the calibrated LAN via the delay-policy seam,
// drives atomic broadcast open-loop with a Poisson LoadGen, and judges the
// run with the shared AB total-order oracle. Factored out of the bench so
// tests can rerun a single cell and pin its fingerprint bit-identical —
// BENCH_scaling_wan.json is just these results serialized.
#pragma once

#include <cstdint>

#include "common/stats.h"
#include "sim/scheduler.h"
#include "sim/wan_model.h"

namespace ritas::sim {

enum class NetProfile : std::uint8_t { kLan = 0, kWan = 1 };
enum class CampaignFault : std::uint8_t {
  kNone = 0,
  /// PR 5 kill_link churn, simulated: rotating single-link kill windows
  /// mid-load; held frames retransmit when the link heals.
  kChurn = 1,
  /// The §4.2 faultload: f = (n-1)/3 processes run the paper's Byzantine
  /// adversary.
  kByzantine = 2,
};

const char* net_profile_name(NetProfile n);
const char* campaign_fault_name(CampaignFault f);

struct CampaignOptions {
  std::uint32_t n = 4;
  NetProfile net = NetProfile::kLan;
  CampaignFault fault = CampaignFault::kNone;
  std::uint64_t seed = 1;

  /// Offered load: `ops` arrivals at `ops_per_sec` from `clients`
  /// simulated clients, payload_bytes each.
  std::uint32_t ops = 120;
  double ops_per_sec = 200.0;
  std::uint32_t clients = 1000;
  std::uint32_t payload_bytes = 100;

  /// WAN shape (kWan only).
  std::uint32_t wan_sites = 4;
  std::uint32_t wan_jitter_permille = 100;  ///< +-0..10% of one-way delay
  std::uint32_t wan_loss_ppm = 1000;        ///< 0.1% modeled frame loss
  Time wan_rto_ns = 200 * kMillisecond;

  /// Liveness budget in simulated time.
  Time deadline = 600 * kSecond;
};

struct CampaignResult {
  /// Every offered op delivered at every correct process within deadline.
  bool completed = false;
  /// AB total order held across all correct processes.
  bool ordered = true;
  std::uint64_t ops_offered = 0;
  /// Ops whose delivery was observed at the observer (lowest correct id).
  std::uint64_t ops_completed = 0;
  /// Per-op submit->deliver latency at the observer, simulated ns.
  Histogram latency;
  std::uint64_t backlog_peak = 0;
  /// Simulated time from first arrival scheduling to run end.
  Time elapsed = 0;
  /// Frames that paid a modeled WAN retransmission penalty.
  std::uint64_t retransmissions = 0;
  /// Streaming hash over every delivery at every correct process (payload,
  /// position, virtual time) — two runs of the same options must match.
  std::uint64_t fingerprint = 0;
};

CampaignResult run_campaign(const CampaignOptions& opts);

}  // namespace ritas::sim
