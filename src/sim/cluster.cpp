#include "sim/cluster.h"

#include <stdexcept>

#include "common/serialize.h"

namespace ritas::sim {

Cluster::Cluster(ClusterOptions opts) : opts_(std::move(opts)) {
  const std::uint32_t n = opts_.n;
  net_ = std::make_unique<SimNetwork>(sched_, opts_.lan, n,
                                      opts_.seed ^ 0xabcdef12345678ULL);

  // Trusted-dealer key distribution (out of band, as in the paper).
  Writer master;
  master.str("ritas-sim-master");
  master.u64(opts_.seed);
  keys_.reserve(n);
  for (ProcessId p = 0; p < n; ++p) {
    keys_.push_back(KeyChain::deal(master.data(), n, p));
  }

  adversaries_.resize(n);
  for (ProcessId p : opts_.byzantine) {
    if (p >= n) throw std::invalid_argument("byzantine process out of range");
    adversaries_[p] = opts_.adversary_factory();
  }

  stacks_.reserve(n);
  roots_.resize(n);
  for (ProcessId p = 0; p < n; ++p) {
    StackConfig cfg = opts_.stack;
    cfg.n = n;
    cfg.self = p;
    std::uint64_t s = opts_.seed;
    const std::uint64_t proc_seed = splitmix64(s) ^ (0x1000 + p);
    stacks_.push_back(std::make_unique<ProtocolStack>(
        cfg, net_->transport(p), keys_[p], proc_seed, adversaries_[p].get()));
  }

  if (opts_.trace) {
    tracers_.reserve(n);
    for (ProcessId p = 0; p < n; ++p) {
      tracers_.push_back(std::make_unique<Tracer>(p));
      stacks_[p]->set_tracer(tracers_[p].get());
      net_->set_tracer(p, tracers_[p].get());
    }
  }

  net_->set_deliver([this](ProcessId from, ProcessId to, Slice frame) {
    stacks_[to]->on_packet(from, std::move(frame));
  });

  for (ProcessId p : opts_.crashed) {
    if (p >= n) throw std::invalid_argument("crashed process out of range");
    net_->crash(p);
  }
  for (const auto& [p, t] : opts_.timed_crashes) {
    if (p >= n) throw std::invalid_argument("timed crash process out of range");
    sched_.at(t, [this, p = p] { net_->crash(p); });
  }
}

Cluster::~Cluster() = default;

std::vector<ProcessId> Cluster::live() const {
  std::vector<ProcessId> out;
  for (ProcessId p = 0; p < opts_.n; ++p) {
    if (!crashed(p)) out.push_back(p);
  }
  return out;
}

std::vector<ProcessId> Cluster::correct_set() const {
  std::vector<ProcessId> out;
  for (ProcessId p = 0; p < opts_.n; ++p) {
    if (correct(p)) out.push_back(p);
  }
  return out;
}

bool Cluster::run_until(const std::function<bool()>& done, Time deadline) {
  return sched_.run_until(done, deadline);
}

std::vector<const Tracer*> Cluster::tracers() const {
  std::vector<const Tracer*> out;
  out.reserve(tracers_.size());
  for (const auto& t : tracers_) out.push_back(t.get());
  return out;
}

Bytes Cluster::trace_bytes() const {
  Bytes out;
  for (const auto& t : tracers_) append(out, t->encode());
  return out;
}

std::string Cluster::chrome_trace_json() const {
  return ritas::chrome_trace_json(tracers());
}

Metrics Cluster::total_metrics() const {
  Metrics total;
  for (ProcessId p = 0; p < opts_.n; ++p) {
    if (!crashed(p)) total += stacks_[p]->metrics();
  }
  return total;
}

}  // namespace ritas::sim
