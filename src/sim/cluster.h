// Simulated RITAS cluster: n protocol stacks on one simulated LAN.
//
// This is the harness every integration test and paper-replication bench
// drives. It owns the scheduler, the network, per-process keychains,
// stacks and root protocol instances, and applies the experiment
// faultloads of §4.2: failure-free, fail-stop (crashed processes), and
// Byzantine (processes running an Adversary).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/stack.h"
#include "crypto/keychain.h"
#include "sim/network.h"
#include "sim/scheduler.h"

namespace ritas::sim {

struct ClusterOptions {
  std::uint32_t n = 4;
  std::uint64_t seed = 1;
  LanModelConfig lan;
  /// Template for every process's stack config (n/self overwritten).
  StackConfig stack;
  /// Crashed from t=0: no roots created, all frames dropped.
  std::vector<ProcessId> crashed;
  /// Crash faults injected mid-run: process p stops sending/receiving at
  /// simulated time t (it still counts as live() for setup purposes —
  /// create its roots and let the crash cut it off).
  std::vector<std::pair<ProcessId, Time>> timed_crashes;
  /// Byzantine processes: each gets an Adversary from the factory.
  std::vector<ProcessId> byzantine;
  std::function<std::unique_ptr<Adversary>()> adversary_factory =
      [] { return std::make_unique<PaperByzantineAdversary>(); };
  /// Attach a Tracer to every stack (and the network's wire events).
  /// Timestamps are virtual time, so same seed => bit-identical traces.
  bool trace = false;
};

class Cluster {
 public:
  explicit Cluster(ClusterOptions opts);
  ~Cluster();

  std::uint32_t n() const { return opts_.n; }
  Scheduler& scheduler() { return sched_; }
  SimNetwork& network() { return *net_; }
  Time now() const { return sched_.now(); }

  ProtocolStack& stack(ProcessId p) { return *stacks_[p]; }
  bool crashed(ProcessId p) const { return net_->crashed(p); }
  bool byzantine(ProcessId p) const { return adversaries_[p] != nullptr; }
  /// Correct = neither crashed nor Byzantine.
  bool correct(ProcessId p) const { return !crashed(p) && !byzantine(p); }
  std::vector<ProcessId> live() const;      // not crashed
  std::vector<ProcessId> correct_set() const;

  /// Creates a root protocol instance of type T at process p and returns a
  /// reference. The same root id must be created at every live process.
  template <typename T, typename... Args>
  T& create_root(ProcessId p, const InstanceId& id, Args&&... args) {
    auto inst = std::make_unique<T>(*stacks_[p], nullptr, id,
                                    std::forward<Args>(args)...);
    T& ref = *inst;
    roots_[p].push_back(std::move(inst));
    stacks_[p]->pump();
    return ref;
  }

  /// Root RB/BC instances go through the variant factories (core/variants.h)
  /// — create_root<T> can't, since the concrete constructors are private —
  /// so a harness automatically drives whichever algorithm the stack's
  /// StackConfig::variants selects.
  RbAlgorithm& create_rb(ProcessId p, const InstanceId& id, ProcessId origin,
                         Attribution attr, RbAlgorithm::DeliverFn deliver) {
    auto inst = make_rb(*stacks_[p], nullptr, id, origin, attr,
                        std::move(deliver));
    RbAlgorithm& ref = *inst;
    roots_[p].push_back(std::move(inst));
    stacks_[p]->pump();
    return ref;
  }
  BcAlgorithm& create_bc(ProcessId p, const InstanceId& id, Attribution attr,
                         BcAlgorithm::DecideFn decide) {
    auto inst = make_bc(*stacks_[p], nullptr, id, attr, std::move(decide));
    BcAlgorithm& ref = *inst;
    roots_[p].push_back(std::move(inst));
    stacks_[p]->pump();
    return ref;
  }

  /// Destroys every root created at process p (recursively tears down the
  /// control-block tree).
  void destroy_roots(ProcessId p) { roots_[p].clear(); }

  /// Runs `fn` as an API call against process p's stack (pumps after).
  void call(ProcessId p, const std::function<void()>& fn) {
    fn();
    stacks_[p]->pump();
  }

  /// Runs the simulation until `done` or `deadline`; true iff done.
  bool run_until(const std::function<bool()>& done, Time deadline);
  /// Runs until the event queue drains; returns events executed.
  std::size_t run_all() { return sched_.run(); }

  /// Sum of per-process metrics over non-crashed processes.
  Metrics total_metrics() const;

  // --- tracing (opts.trace) ----------------------------------------------
  /// Process p's tracer, or nullptr when tracing is off.
  Tracer* tracer(ProcessId p) { return p < tracers_.size() ? tracers_[p].get() : nullptr; }
  /// All per-process tracers (empty when tracing is off).
  std::vector<const Tracer*> tracers() const;
  /// Deterministic binary form of the whole cluster's trace, processes
  /// concatenated in pid order — what the determinism tests compare.
  Bytes trace_bytes() const;
  /// Chrome trace_event JSON over all processes.
  std::string chrome_trace_json() const;

 private:
  ClusterOptions opts_;
  Scheduler sched_;
  std::unique_ptr<SimNetwork> net_;
  std::vector<KeyChain> keys_;
  std::vector<std::unique_ptr<Adversary>> adversaries_;
  std::vector<std::unique_ptr<ProtocolStack>> stacks_;
  std::vector<std::unique_ptr<Tracer>> tracers_;
  std::vector<std::vector<std::unique_ptr<Protocol>>> roots_;
};

}  // namespace ritas::sim
