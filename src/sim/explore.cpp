#include "sim/explore.h"

#include <algorithm>
#include <bit>
#include <functional>
#include <map>
#include <memory>
#include <numeric>
#include <set>
#include <tuple>
#include <utility>

#include "common/json.h"
#include "common/rng.h"
#include "core/atomic_broadcast.h"
#include "core/binary_consensus.h"
#include "core/echo_broadcast.h"
#include "core/imbs_raynal_broadcast.h"
#include "core/multivalued_consensus.h"
#include "core/reliable_broadcast.h"
#include "core/vector_consensus.h"
#include "sim/cluster.h"
#include "sim/oracles.h"
#include "sim/wan_model.h"

namespace ritas::sim {

namespace {

// Seed-domain separators: every derived stream hashes the schedule seed
// with a distinct tag so streams never collide.
constexpr std::uint64_t kTagSchedule = 0x5c4ed01e00000001ull;
constexpr std::uint64_t kTagProposals = 0x5c4ed01e00000002ull;
constexpr std::uint64_t kTagPayloads = 0x5c4ed01e00000003ull;
constexpr std::uint64_t kTagEquivocate = 0x5c4ed01e00000004ull;
constexpr std::uint64_t kTagProbability = 0x5c4ed01e00000005ull;
constexpr std::uint64_t kTagWan = 0x5c4ed01e00000006ull;

// Workload payload size. Fixed (not configurable) so a Schedule is fully
// self-describing: payload bytes derive from the seed alone.
constexpr std::uint32_t kPayloadLen = 8;

std::uint64_t derive(std::uint64_t seed, std::uint64_t tag) {
  std::uint64_t st = seed ^ tag;
  return splitmix64(st);
}

/// Trial LAN: the tests' fast profile (shrunk constants, jitter kept for
/// schedule diversity). Exploration wants many trials per second, not
/// calibrated Table-1 timing.
LanModelConfig trial_lan() {
  LanModelConfig lan;
  lan.cpu_send_ns = 5'000;
  lan.cpu_recv_ns = 5'000;
  lan.switch_latency_ns = 10'000;
  lan.jitter_ns = 1'000'000;
  return lan;
}

/// Order-independent-per-call streaming hash over the observation stream.
struct Fingerprint {
  std::uint64_t h = 0x243f6a8885a308d3ull;
  void u64(std::uint64_t v) {
    std::uint64_t st = h ^ (v + 0x9e3779b97f4a7c15ull);
    h = splitmix64(st);
  }
  void bytes(ByteView b) {
    u64(b.size());
    std::uint64_t acc = 0;
    int k = 0;
    for (std::uint8_t c : b) {
      acc = (acc << 8) | c;
      if (++k == 8) {
        u64(acc);
        acc = 0;
        k = 0;
      }
    }
    if (k != 0) u64(acc);
  }
};

Bytes random_payload(Rng& rng, std::uint32_t len) {
  Bytes b(len);
  for (auto& c : b) c = static_cast<std::uint8_t>(rng.next());
  return b;
}

/// Builds one Byzantine process's adversary from the schedule's hook bits.
/// `index` is the process's position in the byzantine list, so per-process
/// streams (equivocation payloads, probabilistic gates) differ.
std::unique_ptr<Adversary> make_adversary(const Schedule& s, std::uint32_t index) {
  auto composed = std::make_unique<ComposedAdversary>();
  const std::uint32_t hooks = s.adversary_hooks;
  if ((hooks & hook::kPaper) != 0) {
    composed->add(std::make_unique<PaperByzantineAdversary>());
  }
  if ((hooks & hook::kStubbornZero) != 0) {
    composed->add(std::make_unique<StubbornStepAdversary>(0));
  }
  if ((hooks & hook::kStubbornOne) != 0) {
    composed->add(std::make_unique<StubbornStepAdversary>(1));
  }
  if ((hooks & hook::kSilentSteps) != 0) {
    composed->add(std::make_unique<StubbornStepAdversary>(0, /*silent_instead=*/true));
  }
  if ((hooks & hook::kEquivocate) != 0) {
    Rng rng(derive(s.seed, kTagEquivocate + index));
    composed->add(std::make_unique<EquivocationAdversary>(random_payload(rng, 8)));
  }
  if ((hooks & hook::kCorruptMatrix) != 0) {
    composed->add(std::make_unique<MatrixCorruptionAdversary>());
  }
  if ((hooks & hook::kOmission) != 0) {
    composed->add(std::make_unique<SelectiveOmissionAdversary>(s.omit_victims));
  }
  std::unique_ptr<Adversary> result = std::move(composed);
  if ((hooks & hook::kProbabilistic) != 0) {
    result = std::make_unique<ProbabilisticAdversary>(
        std::move(result), 0.5, derive(s.seed, kTagProbability + index));
  }
  return result;
}

const char* perturbation_kind_name(Perturbation::Kind k) {
  switch (k) {
    case Perturbation::Kind::kLinkDelay: return "link_delay";
    case Perturbation::Kind::kPartition: return "partition";
    case Perturbation::Kind::kCrash: return "crash";
  }
  return "?";
}

std::optional<Perturbation::Kind> perturbation_kind_from_name(std::string_view s) {
  if (s == "link_delay") return Perturbation::Kind::kLinkDelay;
  if (s == "partition") return Perturbation::Kind::kPartition;
  if (s == "crash") return Perturbation::Kind::kCrash;
  return std::nullopt;
}

auto perturbation_key(const Perturbation& p) {
  return std::tuple(static_cast<std::uint8_t>(p.kind), p.start, p.end, p.a, p.b,
                    p.group_mask, p.delay_ns);
}

}  // namespace

const char* workload_name(Workload w) {
  switch (w) {
    case Workload::kReliableBroadcast: return "rb";
    case Workload::kEchoBroadcast: return "eb";
    case Workload::kBinaryConsensus: return "bc";
    case Workload::kMultiValuedConsensus: return "mvc";
    case Workload::kVectorConsensus: return "vc";
    case Workload::kAtomicBroadcast: return "ab";
  }
  return "?";
}

std::optional<Workload> workload_from_name(std::string_view name) {
  if (name == "rb") return Workload::kReliableBroadcast;
  if (name == "eb") return Workload::kEchoBroadcast;
  if (name == "bc") return Workload::kBinaryConsensus;
  if (name == "mvc") return Workload::kMultiValuedConsensus;
  if (name == "vc") return Workload::kVectorConsensus;
  if (name == "ab") return Workload::kAtomicBroadcast;
  return std::nullopt;
}

std::string schedule_filename(std::uint64_t seed) {
  return "schedule_" + std::to_string(seed) + ".json";
}

std::size_t Schedule::size() const {
  return perturbations.size() +
         static_cast<std::size_t>(std::popcount(adversary_hooks)) +
         byzantine.size() + (messages > 1 ? messages - 1 : 0) +
         (wan.enabled ? 1 : 0);
}

std::string Schedule::to_json() const {
  JsonWriter w;
  w.begin_object();
  w.field("version", std::uint64_t{1});
  w.field("seed", seed);
  w.field("n", static_cast<std::uint64_t>(n));
  w.field("workload", workload_name(workload));
  w.field("messages", static_cast<std::uint64_t>(messages));
  w.field("max_events", max_events);
  w.field("coin_mode", coin_mode == CoinMode::kDealt ? "dealt" : "local");
  w.field("weak_bc_quorum", weak_bc_quorum);
  w.field("bc_disable_validation", bc_disable_validation);
  w.field("mvc_vect_via_rb", mvc_vect_via_rb);
  w.field("ab_batching", ab_batching);
  w.field("rb_variant", rb_variant_name(variants.rb));
  w.field("bc_variant", bc_variant_name(variants.bc));
  w.key("byzantine").begin_array();
  for (ProcessId p : byzantine) w.value(static_cast<std::uint64_t>(p));
  w.end_array();
  w.field("adversary_hooks", static_cast<std::uint64_t>(adversary_hooks));
  w.field("omit_victims", omit_victims);
  w.key("perturbations").begin_array();
  for (const Perturbation& p : perturbations) {
    w.begin_object();
    w.field("kind", perturbation_kind_name(p.kind));
    w.field("a", static_cast<std::uint64_t>(p.a));
    w.field("b", static_cast<std::uint64_t>(p.b));
    w.field("group_mask", static_cast<std::uint64_t>(p.group_mask));
    w.field("start", p.start);
    w.field("end", p.end);
    w.field("delay_ns", p.delay_ns);
    w.end_object();
  }
  w.end_array();
  // Legacy default: a LAN-only schedule serializes without a "wan" member,
  // so artifacts written before the WAN dimension replay unchanged.
  if (wan.enabled) {
    w.key("wan").begin_object();
    w.field("sites", static_cast<std::uint64_t>(wan.sites));
    w.field("jitter_permille", static_cast<std::uint64_t>(wan.jitter_permille));
    w.field("loss_ppm", static_cast<std::uint64_t>(wan.loss_ppm));
    w.field("rto_ns", wan.rto_ns);
    w.end_object();
  }
  w.end_object();
  return w.take();
}

std::optional<Schedule> Schedule::from_json(std::string_view text) {
  const auto doc = json_parse(text);
  if (!doc) return std::nullopt;
  const JsonValue* v = &*doc;
  // The CLI wraps the schedule in a report object; accept both forms.
  if (const JsonValue* inner = v->get("schedule")) v = inner;

  Schedule s;
  const auto version = v->u64_at("version");
  if (!version || *version != 1) return std::nullopt;
  const auto seed = v->u64_at("seed");
  if (!seed) return std::nullopt;
  s.seed = *seed;
  const auto n = v->u64_at("n");
  if (!n || *n == 0 || *n > 32) return std::nullopt;
  s.n = static_cast<std::uint32_t>(*n);
  const auto wl = v->string_at("workload");
  if (!wl) return std::nullopt;
  const auto workload = workload_from_name(*wl);
  if (!workload) return std::nullopt;
  s.workload = *workload;
  const auto messages = v->u64_at("messages");
  if (!messages || *messages == 0 || *messages > 65536) return std::nullopt;
  s.messages = static_cast<std::uint32_t>(*messages);
  const auto max_events = v->u64_at("max_events");
  if (!max_events || *max_events == 0) return std::nullopt;
  s.max_events = *max_events;
  const auto coin = v->string_at("coin_mode");
  if (!coin) return std::nullopt;
  if (*coin == "local") {
    s.coin_mode = CoinMode::kLocal;
  } else if (*coin == "dealt") {
    s.coin_mode = CoinMode::kDealt;
  } else {
    return std::nullopt;
  }
  s.weak_bc_quorum = v->bool_at("weak_bc_quorum").value_or(false);
  s.bc_disable_validation = v->bool_at("bc_disable_validation").value_or(false);
  s.mvc_vect_via_rb = v->bool_at("mvc_vect_via_rb").value_or(false);
  s.ab_batching = v->bool_at("ab_batching").value_or(false);
  {
    const auto rb = rb_variant_from_name(
        v->string_at("rb_variant").value_or("bracha"));
    const auto bc = bc_variant_from_name(
        v->string_at("bc_variant").value_or("bracha"));
    if (!rb || !bc) return std::nullopt;  // unknown variant name
    s.variants = {*rb, *bc};
    // A schedule a stack would refuse to construct is not replayable.
    try {
      validate_variants(s.variants, s.n,
                        s.variants.bc == BcVariant::kCrain ? CoinMode::kDealt
                                                           : s.coin_mode);
    } catch (const std::invalid_argument&) {
      return std::nullopt;
    }
  }

  if (const JsonValue* byz = v->get("byzantine")) {
    if (byz->kind != JsonValue::Kind::kArray) return std::nullopt;
    for (const JsonValue& e : byz->array) {
      const auto p = e.as_u64();
      if (!p || *p >= s.n) return std::nullopt;
      s.byzantine.push_back(static_cast<ProcessId>(*p));
    }
    std::sort(s.byzantine.begin(), s.byzantine.end());
    s.byzantine.erase(std::unique(s.byzantine.begin(), s.byzantine.end()),
                      s.byzantine.end());
  }
  const auto hooks = v->u64_at("adversary_hooks");
  if (hooks) {
    if (*hooks > hook::kAll) return std::nullopt;
    s.adversary_hooks = static_cast<std::uint32_t>(*hooks);
  }
  s.omit_victims = v->u64_at("omit_victims").value_or(0);

  if (const JsonValue* perts = v->get("perturbations")) {
    if (perts->kind != JsonValue::Kind::kArray) return std::nullopt;
    if (perts->array.size() > 4096) return std::nullopt;
    for (const JsonValue& e : perts->array) {
      Perturbation p;
      const auto kind = e.string_at("kind");
      if (!kind) return std::nullopt;
      const auto k = perturbation_kind_from_name(*kind);
      if (!k) return std::nullopt;
      p.kind = *k;
      const auto a = e.u64_at("a").value_or(0);
      const auto b = e.u64_at("b").value_or(0);
      if (a >= s.n || b >= s.n) return std::nullopt;
      p.a = static_cast<ProcessId>(a);
      p.b = static_cast<ProcessId>(b);
      const auto mask = e.u64_at("group_mask").value_or(0);
      if (mask > 0xffffffffull) return std::nullopt;
      p.group_mask = static_cast<std::uint32_t>(mask);
      p.start = e.u64_at("start").value_or(0);
      p.end = e.u64_at("end").value_or(0);
      if (p.end < p.start) return std::nullopt;
      p.delay_ns = e.u64_at("delay_ns").value_or(0);
      s.perturbations.push_back(p);
    }
  }

  if (const JsonValue* wan = v->get("wan")) {
    if (wan->kind != JsonValue::Kind::kObject) return std::nullopt;
    s.wan.enabled = true;
    const auto sites = wan->u64_at("sites").value_or(4);
    if (sites == 0 || sites > kCanonicalSites) return std::nullopt;
    s.wan.sites = static_cast<std::uint32_t>(sites);
    const auto jitter = wan->u64_at("jitter_permille").value_or(100);
    if (jitter > 1000) return std::nullopt;
    s.wan.jitter_permille = static_cast<std::uint32_t>(jitter);
    const auto loss = wan->u64_at("loss_ppm").value_or(0);
    if (loss >= 1'000'000) return std::nullopt;
    s.wan.loss_ppm = static_cast<std::uint32_t>(loss);
    s.wan.rto_ns = wan->u64_at("rto_ns").value_or(200 * kMillisecond);
  }
  return s;
}

Schedule Explorer::make_schedule(std::uint64_t trial_seed) const {
  Schedule s;
  s.seed = trial_seed;
  s.n = cfg_.n;
  s.workload = cfg_.workload;
  s.messages = std::max(1u, cfg_.messages);
  s.max_events = cfg_.max_events;
  s.coin_mode = cfg_.coin_mode;
  s.weak_bc_quorum = cfg_.weak_bc_quorum;
  s.bc_disable_validation = cfg_.bc_disable_validation;
  s.mvc_vect_via_rb = cfg_.mvc_vect_via_rb;
  s.ab_batching = cfg_.ab_batching;
  s.variants = cfg_.variants;
  s.wan = cfg_.wan;
  // Crain's agreement argument needs the common coin; record it in the
  // schedule so a replay reconstructs the identical stack.
  if (s.variants.bc == BcVariant::kCrain) s.coin_mode = CoinMode::kDealt;

  Rng rng(derive(trial_seed, kTagSchedule));
  std::uint32_t f = max_faults(cfg_.n);
  // The fault budget respects the weakest configured layer: Imbs–Raynal
  // only tolerates t = (n-1)/5.
  if (s.variants.rb == RbVariant::kImbsRaynal) {
    f = std::min(f, ImbsRaynalBroadcast::max_faults_ir(cfg_.n));
  }
  const std::uint32_t fault_budget = std::min(cfg_.max_faults, f);

  // Partition the fault budget between Byzantine processes and crashes.
  std::vector<ProcessId> perm(cfg_.n);
  std::iota(perm.begin(), perm.end(), 0u);
  std::shuffle(perm.begin(), perm.end(), rng);
  // Bias toward the full Byzantine budget: clean runs almost never violate
  // safety, so most of the trial budget should go to faulty configurations
  // (one in four trials still draws a uniform fault count for coverage).
  std::uint32_t n_byz = fault_budget;
  if (fault_budget > 0 && rng.below(4) == 0) {
    n_byz = static_cast<std::uint32_t>(rng.below(fault_budget + 1));
  }
  const std::uint32_t n_crash =
      fault_budget == n_byz
          ? 0
          : static_cast<std::uint32_t>(rng.below(fault_budget - n_byz + 1));
  for (std::uint32_t i = 0; i < n_byz; ++i) s.byzantine.push_back(perm[i]);
  std::sort(s.byzantine.begin(), s.byzantine.end());
  for (std::uint32_t i = 0; i < n_crash; ++i) {
    Perturbation p;
    p.kind = Perturbation::Kind::kCrash;
    p.a = perm[n_byz + i];
    p.start = rng.below(cfg_.horizon);
    p.end = p.start;
    s.perturbations.push_back(p);
  }

  if (n_byz > 0 && (cfg_.allowed_hooks & hook::kAll) != 0) {
    do {
      s.adversary_hooks =
          static_cast<std::uint32_t>(rng.next()) & cfg_.allowed_hooks & hook::kAll;
    } while (s.adversary_hooks == 0);
    // Selective omission is the strongest schedule-splitter: an otherwise
    // protocol-following Byzantine process contributes values every
    // correct process will accept, but hands them to only part of the
    // group — different quorum snapshots at different processes. (Loud
    // attacks like stubborn step values are weaker here: the validation
    // rule filters them, turning the attacker into a silent crash.) Three
    // quarters of faulty trials get omission on top of whatever they drew.
    if (rng.below(4) != 0) {
      s.adversary_hooks |= cfg_.allowed_hooks & hook::kOmission;
    }
    if ((s.adversary_hooks & hook::kOmission) != 0) {
      const std::uint64_t all =
          cfg_.n >= 64 ? ~0ull : ((1ull << cfg_.n) - 1);
      do {
        s.omit_victims = rng.next() & all;
      } while (s.omit_victims == 0);
    }
  }

  const std::uint32_t n_pert =
      static_cast<std::uint32_t>(rng.below(cfg_.max_perturbations + 1));
  for (std::uint32_t i = 0; i < n_pert; ++i) {
    Perturbation p;
    p.start = rng.below(cfg_.horizon);
    p.end = p.start + 1 + rng.below(cfg_.horizon / 2 + 1);
    if (cfg_.n < 3 || rng.coin()) {
      p.kind = Perturbation::Kind::kLinkDelay;
      p.a = static_cast<ProcessId>(rng.below(cfg_.n));
      p.b = static_cast<ProcessId>(rng.below(cfg_.n));
      if (p.b == p.a) p.b = static_cast<ProcessId>((p.a + 1) % cfg_.n);
      p.delay_ns = 1 + rng.below(cfg_.max_delay);
    } else {
      p.kind = Perturbation::Kind::kPartition;
      // Non-empty proper subset cut.
      const std::uint32_t all =
          cfg_.n >= 32 ? 0xffffffffu : (1u << cfg_.n) - 1;
      p.group_mask = 1 + static_cast<std::uint32_t>(rng.below(all - 1));
    }
    s.perturbations.push_back(p);
  }
  return s;
}

TrialResult Explorer::run_trial(const Schedule& s) {
  TrialResult out;
  const std::uint32_t n = s.n;
  const std::uint32_t f = max_faults(n);
  const std::uint32_t messages = std::max(1u, s.messages);

  // Statically faulty processes: Byzantine from t=0, plus scheduled
  // crashes. Workload goals and "sent by a correct process" accounting
  // exclude them (a process that crashes mid-run is not correct).
  std::vector<bool> faulty(n, false);
  for (ProcessId p : s.byzantine) {
    if (p < n) faulty[p] = true;
  }
  for (const Perturbation& p : s.perturbations) {
    if (p.kind == Perturbation::Kind::kCrash && p.a < n) faulty[p.a] = true;
  }

  ClusterOptions o;
  o.n = n;
  o.seed = s.seed;
  o.lan = trial_lan();
  o.stack.coin_mode = s.coin_mode;
  o.stack.variants = s.variants;
  // Defensive normalization for hand-written schedules: a Crain stack
  // refuses to construct with private coins.
  if (s.variants.bc == BcVariant::kCrain) o.stack.coin_mode = CoinMode::kDealt;
  o.stack.test_weak_bc_quorum = s.weak_bc_quorum;
  o.stack.bc_disable_validation = s.bc_disable_validation;
  o.stack.mvc_vect_via_rb = s.mvc_vect_via_rb;
  o.stack.ab_batch.enabled = s.ab_batching;
  o.byzantine = s.byzantine;
  auto byz_index = std::make_shared<std::uint32_t>(0);
  o.adversary_factory = [&s, byz_index] { return make_adversary(s, (*byz_index)++); };
  for (const Perturbation& p : s.perturbations) {
    if (p.kind == Perturbation::Kind::kCrash) {
      o.timed_crashes.emplace_back(p.a, p.start);
    }
  }

  // Observation state — declared before the Cluster so protocol callbacks
  // referencing it can never dangle. The WAN model lives here too: the
  // network's delay policy captures it.
  std::optional<WanModel> wan_model;
  if (s.wan.enabled) {
    WanProfileOptions wo;
    wo.sites = s.wan.sites;
    wo.jitter_permille = s.wan.jitter_permille;
    wo.loss_ppm = s.wan.loss_ppm;
    wo.rto_ns = s.wan.rto_ns;
    wan_model.emplace(wan_profile(n, wo), derive(s.seed, kTagWan));
  }
  Fingerprint fp;
  std::vector<std::vector<bool>> bc_proposals;
  std::vector<std::vector<std::optional<bool>>> bc_decisions;
  std::vector<std::vector<Bytes>> proposals;  // mvc/vc/rb/eb payloads
  std::vector<std::vector<std::optional<oracle::MvcDecision>>> mvc_decisions;
  std::vector<std::vector<std::optional<oracle::VcVector>>> vc_decisions;
  std::vector<std::vector<std::optional<Bytes>>> delivered;  // [m][p]
  std::vector<oracle::AbLog> ab_logs;
  std::vector<std::map<ProcessId, std::uint64_t>> ab_got;  // per p: origin -> count
  oracle::AbSent ab_sent;
  std::map<ProcessId, std::uint64_t> ab_sent_per_origin;

  Cluster c(o);
  c.network().set_delay_policy([&s, &wan_model](ProcessId from, ProcessId to,
                                                Time now) -> Time {
    // WAN extra first, scheduled perturbations layered on top.
    Time extra = wan_model ? wan_model->extra_delay(from, to, now) : 0;
    for (const Perturbation& p : s.perturbations) {
      if (now < p.start || now >= p.end) continue;
      if (p.kind == Perturbation::Kind::kLinkDelay) {
        if (p.a == from && p.b == to) extra += p.delay_ns;
      } else if (p.kind == Perturbation::Kind::kPartition) {
        const bool from_a = ((p.group_mask >> from) & 1u) != 0;
        const bool to_a = ((p.group_mask >> to) & 1u) != 0;
        // Frames crossing the cut are held until the partition heals.
        if (from_a != to_a) extra = std::max(extra, p.end - now);
      }
    }
    return extra;
  });

  Rng prop_rng(derive(s.seed, kTagProposals));
  Rng payload_rng(derive(s.seed, kTagPayloads));

  std::function<bool()> goal;
  std::function<void(oracle::Report&, bool)> check;

  switch (s.workload) {
    case Workload::kBinaryConsensus: {
      bc_proposals.assign(messages, std::vector<bool>(n));
      bc_decisions.assign(messages,
                          std::vector<std::optional<bool>>(n));
      for (auto& row : bc_proposals) {
        if (prop_rng.coin()) {
          // Balanced split: the adversarially hardest input for binary
          // consensus (unanimity converges in one step regardless of
          // schedule, a split is where ordering decides the outcome).
          for (std::uint32_t p = 0; p < n; ++p) row[p] = (p & 1) != 0;
          std::shuffle(row.begin(), row.end(), prop_rng);
        } else {
          for (std::uint32_t p = 0; p < n; ++p) row[p] = prop_rng.coin();
        }
      }
      std::vector<std::vector<BcAlgorithm*>> insts(
          messages, std::vector<BcAlgorithm*>(n, nullptr));
      for (std::uint32_t m = 0; m < messages; ++m) {
        const InstanceId id =
            InstanceId::root(ProtocolType::kBinaryConsensus, m + 1);
        for (ProcessId p : c.live()) {
          insts[m][p] = &c.create_bc(
              p, id, Attribution::kAgreement, [&, m, p](bool v) {
                bc_decisions[m][p] = v;
                fp.u64((std::uint64_t{1} << 56) | (std::uint64_t{m} << 32) | p);
                fp.u64(v ? 1 : 0);
                fp.u64(c.now());
              });
        }
      }
      for (std::uint32_t m = 0; m < messages; ++m) {
        for (ProcessId p : c.live()) {
          c.call(p, [&, m, p] { insts[m][p]->propose(bc_proposals[m][p]); });
        }
      }
      goal = [&, messages] {
        for (ProcessId p : c.correct_set()) {
          for (std::uint32_t m = 0; m < messages; ++m) {
            if (!bc_decisions[m][p].has_value()) return false;
          }
        }
        return true;
      };
      check = [&, messages](oracle::Report& r, bool complete) {
        const auto correct = c.correct_set();
        for (std::uint32_t m = 0; m < messages; ++m) {
          oracle::check_bc(r, correct, bc_proposals[m], bc_decisions[m], complete);
        }
      };
      break;
    }

    case Workload::kMultiValuedConsensus: {
      proposals.assign(messages, std::vector<Bytes>(n));
      mvc_decisions.assign(
          messages, std::vector<std::optional<oracle::MvcDecision>>(n));
      for (auto& row : proposals) {
        for (std::uint32_t p = 0; p < n; ++p) {
          row[p] = random_payload(prop_rng, 8);
        }
      }
      std::vector<std::vector<MultiValuedConsensus*>> insts(
          messages, std::vector<MultiValuedConsensus*>(n, nullptr));
      for (std::uint32_t m = 0; m < messages; ++m) {
        const InstanceId id =
            InstanceId::root(ProtocolType::kMultiValuedConsensus, m + 1);
        for (ProcessId p : c.live()) {
          insts[m][p] = &c.create_root<MultiValuedConsensus>(
              p, id, Attribution::kAgreement,
              [&, m, p](std::optional<Bytes> v) {
                fp.u64((std::uint64_t{2} << 56) | (std::uint64_t{m} << 32) | p);
                if (v) fp.bytes(*v); else fp.u64(0xbaadull);
                fp.u64(c.now());
                mvc_decisions[m][p] = std::move(v);
              });
        }
      }
      for (std::uint32_t m = 0; m < messages; ++m) {
        for (ProcessId p : c.live()) {
          c.call(p, [&, m, p] { insts[m][p]->propose(proposals[m][p]); });
        }
      }
      goal = [&, messages] {
        for (ProcessId p : c.correct_set()) {
          for (std::uint32_t m = 0; m < messages; ++m) {
            if (!mvc_decisions[m][p].has_value()) return false;
          }
        }
        return true;
      };
      check = [&, messages](oracle::Report& r, bool complete) {
        const auto correct = c.correct_set();
        for (std::uint32_t m = 0; m < messages; ++m) {
          oracle::mvc_agreement(r, correct, mvc_decisions[m]);
          // No-creation only holds against known proposals; with Byzantine
          // processes the oracle cannot know what they "proposed".
          if (s.byzantine.empty()) {
            oracle::mvc_no_creation(r, correct, proposals[m], mvc_decisions[m]);
          }
          if (complete) oracle::mvc_termination(r, correct, mvc_decisions[m]);
        }
      };
      break;
    }

    case Workload::kVectorConsensus: {
      proposals.assign(messages, std::vector<Bytes>(n));
      vc_decisions.assign(messages,
                          std::vector<std::optional<oracle::VcVector>>(n));
      for (auto& row : proposals) {
        for (std::uint32_t p = 0; p < n; ++p) {
          row[p] = random_payload(prop_rng, 8);
        }
      }
      std::vector<std::vector<VectorConsensus*>> insts(
          messages, std::vector<VectorConsensus*>(n, nullptr));
      for (std::uint32_t m = 0; m < messages; ++m) {
        const InstanceId id =
            InstanceId::root(ProtocolType::kVectorConsensus, m + 1);
        for (ProcessId p : c.live()) {
          insts[m][p] = &c.create_root<VectorConsensus>(
              p, id, Attribution::kAgreement,
              [&, m, p](VectorConsensus::Vector v) {
                fp.u64((std::uint64_t{3} << 56) | (std::uint64_t{m} << 32) | p);
                for (const auto& e : v) {
                  if (e) fp.bytes(*e); else fp.u64(0xbaadull);
                }
                fp.u64(c.now());
                vc_decisions[m][p] = std::move(v);
              });
        }
      }
      for (std::uint32_t m = 0; m < messages; ++m) {
        for (ProcessId p : c.live()) {
          c.call(p, [&, m, p] { insts[m][p]->propose(proposals[m][p]); });
        }
      }
      goal = [&, messages] {
        for (ProcessId p : c.correct_set()) {
          for (std::uint32_t m = 0; m < messages; ++m) {
            if (!vc_decisions[m][p].has_value()) return false;
          }
        }
        return true;
      };
      check = [&, messages, f](oracle::Report& r, bool complete) {
        const auto correct = c.correct_set();
        for (std::uint32_t m = 0; m < messages; ++m) {
          oracle::check_vc(r, correct, proposals[m], vc_decisions[m], f, complete);
        }
      };
      break;
    }

    case Workload::kReliableBroadcast:
    case Workload::kEchoBroadcast: {
      const bool rb = s.workload == Workload::kReliableBroadcast;
      proposals.assign(messages, std::vector<Bytes>(1));
      delivered.assign(messages, std::vector<std::optional<Bytes>>(n));
      std::vector<ProcessId> origins(messages);
      for (std::uint32_t m = 0; m < messages; ++m) {
        origins[m] = static_cast<ProcessId>(m % n);
        proposals[m][0] = random_payload(payload_rng, kPayloadLen);
      }
      for (std::uint32_t m = 0; m < messages; ++m) {
        const auto type = rb ? ProtocolType::kReliableBroadcast
                             : ProtocolType::kEchoBroadcast;
        const InstanceId id = InstanceId::root(type, m + 1);
        for (ProcessId p : c.live()) {
          auto sink = [&, m, p](Slice payload) {
            delivered[m][p] = payload.to_bytes();
            fp.u64((std::uint64_t{4} << 56) | (std::uint64_t{m} << 32) | p);
            fp.bytes(*delivered[m][p]);
            fp.u64(c.now());
          };
          if (rb) {
            auto& inst = c.create_rb(
                p, id, origins[m], Attribution::kPayload, sink);
            if (p == origins[m]) {
              c.call(p, [&, m] { inst.bcast(Bytes(proposals[m][0])); });
            }
          } else {
            auto& inst = c.create_root<EchoBroadcast>(
                p, id, origins[m], Attribution::kPayload, sink);
            if (p == origins[m]) {
              c.call(p, [&, m] { inst.bcast(Bytes(proposals[m][0])); });
            }
          }
        }
      }
      goal = [&, messages, origins] {
        for (ProcessId p : c.correct_set()) {
          for (std::uint32_t m = 0; m < messages; ++m) {
            if (!faulty[origins[m]] && !delivered[m][p].has_value()) return false;
          }
        }
        return true;
      };
      check = [&, messages, origins, rb](oracle::Report& r, bool complete) {
        const auto correct = c.correct_set();
        const char* layer = rb ? "rb" : "eb";
        for (std::uint32_t m = 0; m < messages; ++m) {
          oracle::broadcast_agreement(r, correct, delivered[m], layer);
          const bool origin_correct =
              std::find(correct.begin(), correct.end(), origins[m]) !=
              correct.end();
          if (origin_correct) {
            oracle::broadcast_correct_origin(r, correct, proposals[m][0],
                                             delivered[m], layer, complete);
          }
          if (rb && complete) {
            oracle::rb_totality(r, correct, delivered[m]);
          }
        }
      };
      break;
    }

    case Workload::kAtomicBroadcast: {
      ab_logs.assign(n, {});
      ab_got.assign(n, {});
      std::vector<AtomicBroadcast*> insts(n, nullptr);
      const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, 1);
      for (ProcessId p : c.live()) {
        insts[p] = &c.create_root<AtomicBroadcast>(
            p, id,
            [&, p](ProcessId origin, std::uint64_t rbid, Slice payload) {
              ab_logs[p].push_back({origin, rbid, payload.to_bytes()});
              if (!faulty[origin]) ++ab_got[p][origin];
              fp.u64((std::uint64_t{5} << 56) | (std::uint64_t{origin} << 32) | p);
              fp.u64(rbid);
              fp.bytes(ab_logs[p].back().payload);
              fp.u64(c.now());
            });
      }
      for (std::uint32_t m = 0; m < messages; ++m) {
        for (ProcessId p : c.live()) {
          Bytes payload = random_payload(payload_rng, kPayloadLen);
          c.call(p, [&] {
            const std::uint64_t rbid = insts[p]->bcast(Bytes(payload));
            if (!faulty[p]) {
              ab_sent[{p, rbid}] = payload;  // batching: rbid names the batch
              ++ab_sent_per_origin[p];
            }
          });
        }
      }
      if (s.ab_batching) {
        for (ProcessId p : c.live()) {
          c.call(p, [&, p] { insts[p]->flush(); });
        }
      }
      goal = [&] {
        for (ProcessId p : c.correct_set()) {
          for (const auto& [origin, sent] : ab_sent_per_origin) {
            auto it = ab_got[p].find(origin);
            if (it == ab_got[p].end() || it->second < sent) return false;
          }
        }
        return true;
      };
      check = [&](oracle::Report& r, bool complete) {
        const auto correct = c.correct_set();
        oracle::ab_total_order(r, correct, ab_logs);
        if (!s.ab_batching) {
          // (origin, rbid) identifies one message — the full safety set.
          oracle::ab_no_duplicates(r, correct, ab_logs);
          oracle::ab_no_creation(r, correct, ab_logs, ab_sent);
          if (complete) oracle::ab_validity(r, correct, ab_logs, ab_sent);
        } else if (complete) {
          // Batching shares one rbid across a batch, so per-message
          // identity checks don't apply; total order (payload-exact) plus
          // per-origin delivered-count completeness still do.
          for (ProcessId p : correct) {
            for (const auto& [origin, sent] : ab_sent_per_origin) {
              auto it = ab_got[p].find(origin);
              const std::uint64_t got = it == ab_got[p].end() ? 0 : it->second;
              if (got != sent) {
                r.fail("ab.validity: p" + std::to_string(p) + " delivered " +
                       std::to_string(got) + "/" + std::to_string(sent) +
                       " messages from correct origin p" + std::to_string(origin));
              }
            }
          }
        }
      };
      break;
    }
  }

  // --- drive under the liveness budget ------------------------------------
  std::uint64_t events = 0;
  bool done = goal();
  while (!done && !c.scheduler().empty() && events < s.max_events) {
    c.scheduler().step();
    ++events;
    if ((events & 0xf) == 0 || c.scheduler().empty()) done = goal();
  }
  if (!done) done = goal();
  out.completed = done;
  if (done) {
    // Quiesce so totality/validity-style properties can be judged.
    events += c.scheduler().run(s.max_events);
  } else {
    out.stalled = true;
  }

  oracle::Report report;
  check(report, out.completed && c.scheduler().empty());
  out.violations = std::move(report.violations);
  out.events = events;
  out.end_time = c.now();
  fp.u64(out.events);
  fp.u64(out.end_time);
  out.fingerprint = fp.h;
  return out;
}

std::optional<Finding> Explorer::explore(std::uint64_t first_seed,
                                         std::uint64_t count) {
  for (std::uint64_t i = 0; i < count; ++i) {
    const std::uint64_t seed = first_seed + i;
    Schedule sch = make_schedule(seed);
    const TrialResult r = run_trial(sch);
    ++metrics_.explore_trials;
    if (r.stalled) ++metrics_.explore_stalls;
    const bool safety_bug = !r.violations.empty();
    if (!safety_bug && !(r.stalled && cfg_.stall_is_violation)) continue;
    ++metrics_.explore_violations;
    Finding finding;
    finding.trial_seed = seed;
    finding.schedule = sch;
    finding.from_stall = !safety_bug;
    finding.minimized = shrink(sch, /*want_stall=*/!safety_bug,
                               &finding.shrink_trials);
    finding.result = run_trial(finding.minimized);
    return finding;
  }
  return std::nullopt;
}

Schedule Explorer::shrink(const Schedule& failing, bool want_stall,
                          std::uint32_t* trials_out) {
  std::uint32_t trials = 0;
  const auto still_fails = [&](const Schedule& sch) {
    const TrialResult r = run_trial(sch);
    ++trials;
    ++metrics_.explore_trials;
    if (r.stalled) ++metrics_.explore_stalls;
    return want_stall ? r.stalled : !r.violations.empty();
  };

  Schedule best = failing;
  bool changed = true;
  while (changed) {
    changed = false;

    // 1. Drop perturbations, ddmin-style: big chunks first, then singles.
    std::size_t chunk = std::max<std::size_t>(best.perturbations.size() / 2, 1);
    while (!best.perturbations.empty()) {
      bool dropped = false;
      for (std::size_t i = 0; i < best.perturbations.size(); i += chunk) {
        Schedule t = best;
        const auto from = t.perturbations.begin() + static_cast<std::ptrdiff_t>(i);
        const auto to = t.perturbations.begin() +
                        static_cast<std::ptrdiff_t>(
                            std::min(i + chunk, t.perturbations.size()));
        t.perturbations.erase(from, to);
        if (still_fails(t)) {
          best = std::move(t);
          dropped = changed = true;
          break;
        }
      }
      if (dropped) {
        chunk = std::min(chunk,
                         std::max<std::size_t>(best.perturbations.size(), 1));
        continue;
      }
      if (chunk == 1) break;
      chunk = std::max<std::size_t>(chunk / 2, 1);
    }

    // 2. Clear individual adversary hook bits.
    for (std::uint32_t b = 0; b < 8; ++b) {
      const std::uint32_t bit = 1u << b;
      if ((best.adversary_hooks & bit) == 0) continue;
      Schedule t = best;
      t.adversary_hooks &= ~bit;
      if ((t.adversary_hooks & hook::kOmission) == 0) t.omit_victims = 0;
      if (t.adversary_hooks == 0) {
        t.byzantine.clear();  // hookless adversary is honest — drop it whole
        t.omit_victims = 0;
      }
      if (still_fails(t)) {
        best = std::move(t);
        changed = true;
      }
    }

    // 3. Remove Byzantine processes one by one.
    for (std::size_t i = 0; i < best.byzantine.size();) {
      Schedule t = best;
      t.byzantine.erase(t.byzantine.begin() + static_cast<std::ptrdiff_t>(i));
      if (t.byzantine.empty()) {
        t.adversary_hooks = 0;
        t.omit_victims = 0;
      }
      if (still_fails(t)) {
        best = std::move(t);
        changed = true;
      } else {
        ++i;
      }
    }

    // 4. Reduce the workload (fewer parallel instances / messages).
    for (std::uint32_t m = 1; m < best.messages; m *= 2) {
      Schedule t = best;
      t.messages = m;
      if (still_fails(t)) {
        best = std::move(t);
        changed = true;
        break;
      }
    }

    // 5. Drop the WAN overlay: a failure that reproduces on the plain LAN
    // is a simpler artifact.
    if (best.wan.enabled) {
      Schedule t = best;
      t.wan = WanSpec{};
      if (still_fails(t)) {
        best = std::move(t);
        changed = true;
      }
    }
  }

  // Canonical order: the delay policy sums/maxes over all perturbations,
  // so sorting preserves semantics while making artifacts stable.
  std::sort(best.perturbations.begin(), best.perturbations.end(),
            [](const Perturbation& a, const Perturbation& b) {
              return perturbation_key(a) < perturbation_key(b);
            });
  if (trials_out != nullptr) *trials_out = trials;
  return best;
}

}  // namespace ritas::sim
