// Deterministic schedule-exploration harness with failing-schedule
// shrinking.
//
// The simulator already guarantees "same seed => bit-identical run"; this
// layer turns that guarantee into a bug-hunting tool. A `Schedule` is a
// fully self-describing trial: seed, cluster shape, workload, fault set
// (Byzantine hook composition, timed crashes), and a list of network
// perturbations (windowed link delays, partition windows realized as
// delay-until-heal). `Explorer` generates schedules from a seed range,
// executes each under a liveness budget, and checks the per-layer property
// oracles (sim/oracles.h) after every trial. When a trial fails, a
// delta-debugging pass shrinks the schedule — dropping perturbations,
// clearing adversary hooks, removing Byzantine processes, reducing the
// workload — to a minimal still-failing schedule, serialized as JSON that
// `ritas_explore --replay` re-executes bit-identically (the trial
// fingerprint, a hash over the observation stream, proves it).
//
// Everything here is deterministic: all randomness flows from the schedule
// seed through the stack's Rng, and no wall clock is ever read.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/metrics.h"
#include "core/stack.h"
#include "core/types.h"
#include "sim/scheduler.h"

namespace ritas::sim {

/// Which protocol layer a trial drives (and which oracles judge it).
enum class Workload : std::uint8_t {
  kReliableBroadcast = 0,
  kEchoBroadcast = 1,
  kBinaryConsensus = 2,
  kMultiValuedConsensus = 3,
  kVectorConsensus = 4,
  kAtomicBroadcast = 5,
};

const char* workload_name(Workload w);
std::optional<Workload> workload_from_name(std::string_view name);

/// One scheduled network disturbance. All windows are half-open
/// [start, end) in simulated nanoseconds.
struct Perturbation {
  enum class Kind : std::uint8_t {
    /// Adds `delay_ns` to every frame from `a` to `b` inside the window.
    kLinkDelay = 0,
    /// Frames crossing the `group_mask` cut inside the window are held
    /// until the window closes (a healing partition — also how the
    /// explorer models crash/recover without losing frames).
    kPartition = 1,
    /// Process `a` crashes at `start` (permanent; frames to/from vanish).
    kCrash = 2,
  };

  Kind kind = Kind::kLinkDelay;
  ProcessId a = 0;
  ProcessId b = 0;
  std::uint32_t group_mask = 0;  // kPartition: bit p set = side A
  Time start = 0;
  Time end = 0;
  Time delay_ns = 0;  // kLinkDelay only

  friend bool operator==(const Perturbation&, const Perturbation&) = default;
};

/// Optional WAN overlay for a trial (sim/wan_model.h): processes spread
/// round-robin over `sites` canonical sites, with per-link jitter and a
/// modeled retransmission loss penalty, all seeded from the schedule seed.
/// Disabled = the legacy LAN-only trial — and the spec is then absent from
/// the schedule JSON, so pre-WAN artifacts replay bit-identically.
struct WanSpec {
  bool enabled = false;
  std::uint32_t sites = 4;
  std::uint32_t jitter_permille = 100;  ///< +-0..10% of the one-way delay
  std::uint32_t loss_ppm = 0;
  Time rto_ns = 200 * kMillisecond;

  friend bool operator==(const WanSpec&, const WanSpec&) = default;
};

/// Adversary hook bits: which single-strategy adversaries (core/adversary.h)
/// the Byzantine processes compose. kProbabilistic gates the whole
/// composition at p = 1/2 through a schedule-seeded Rng.
namespace hook {
inline constexpr std::uint32_t kPaper = 1u << 0;          // §4.2 faultload
inline constexpr std::uint32_t kStubbornZero = 1u << 1;   // BC steps push 0
inline constexpr std::uint32_t kStubbornOne = 1u << 2;    // BC steps push 1
inline constexpr std::uint32_t kSilentSteps = 1u << 3;    // BC steps omitted
inline constexpr std::uint32_t kEquivocate = 1u << 4;     // RB INIT split
inline constexpr std::uint32_t kCorruptMatrix = 1u << 5;  // EB MAT garbage
inline constexpr std::uint32_t kOmission = 1u << 6;       // omit_victims mask
inline constexpr std::uint32_t kProbabilistic = 1u << 7;  // p=1/2 gate
inline constexpr std::uint32_t kAll = (1u << 8) - 1;
}  // namespace hook

/// A complete, replayable trial description. Serializes to/from JSON
/// (schedule_<seed>.json); `from_json` also accepts the wrapper object the
/// explorer CLI writes (it descends into a "schedule" member).
struct Schedule {
  std::uint64_t seed = 1;
  std::uint32_t n = 4;
  Workload workload = Workload::kBinaryConsensus;
  /// Parallel protocol instances (broadcasts per sender for AB).
  std::uint32_t messages = 1;
  /// Liveness budget: a trial that has not reached its goal within this
  /// many scheduler events (nor drained the queue) is flagged as stalled.
  std::uint64_t max_events = 200'000;

  std::vector<ProcessId> byzantine;
  std::uint32_t adversary_hooks = 0;  // hook:: bits
  std::uint64_t omit_victims = 0;     // hook::kOmission target mask

  std::vector<Perturbation> perturbations;

  /// WAN overlay the trial's network runs under (off = plain LAN).
  WanSpec wan;

  // Stack switches that change protocol behaviour (must replay with the
  // trial for bit-identical re-execution).
  CoinMode coin_mode = CoinMode::kLocal;
  bool weak_bc_quorum = false;  // StackConfig::test_weak_bc_quorum
  bool bc_disable_validation = false;
  bool mvc_vect_via_rb = false;
  bool ab_batching = false;
  /// Which RB/BC algorithms the trial's stacks run (JSON fields
  /// "rb_variant" / "bc_variant", names from core/variants.h; absent =
  /// "bracha"). from_json rejects combos validate_variants would refuse.
  VariantConfig variants;

  /// Shrink metric: scheduled disturbances + active hook bits + Byzantine
  /// processes + extra workload beyond one message.
  std::size_t size() const;

  std::string to_json() const;
  static std::optional<Schedule> from_json(std::string_view text);

  friend bool operator==(const Schedule&, const Schedule&) = default;
};

/// Canonical artifact name for a failing schedule.
std::string schedule_filename(std::uint64_t seed);

/// Outcome of executing one schedule.
struct TrialResult {
  bool completed = false;  // goal reached within budget
  bool stalled = false;    // budget exhausted or queue drained short of goal
  std::vector<std::string> violations;  // oracle failures (safety)
  std::uint64_t events = 0;             // scheduler events executed
  Time end_time = 0;                    // simulated ns at trial end
  /// Hash over the observation stream (every decision/delivery with its
  /// virtual timestamp, plus events and end_time). Two runs of the same
  /// schedule must produce the same fingerprint — this is the replay
  /// bit-identity check.
  std::uint64_t fingerprint = 0;

  bool ok() const { return violations.empty(); }
};

/// A failing schedule plus its shrunk form.
struct Finding {
  std::uint64_t trial_seed = 0;
  Schedule schedule;        // as generated
  Schedule minimized;       // after delta debugging
  TrialResult result;       // result of re-running `minimized`
  std::uint32_t shrink_trials = 0;  // executions spent shrinking
  bool from_stall = false;  // finding is a liveness flag, not a safety one
};

class Explorer {
 public:
  struct Config {
    std::uint32_t n = 4;
    Workload workload = Workload::kBinaryConsensus;
    std::uint32_t messages = 2;
    std::uint64_t max_events = 200'000;

    /// Fault budget per trial (Byzantine + crashes); clamped to f = (n-1)/3.
    std::uint32_t max_faults = 0xffffffffu;
    /// Which adversary hooks generation may draw from.
    std::uint32_t allowed_hooks = hook::kAll;
    std::uint32_t max_perturbations = 6;
    /// Perturbation windows are placed inside [0, horizon).
    Time horizon = 20 * kMillisecond;
    Time max_delay = 5 * kMillisecond;

    // Stack switches applied to every generated schedule.
    CoinMode coin_mode = CoinMode::kLocal;
    bool weak_bc_quorum = false;
    bool bc_disable_validation = false;
    bool mvc_vect_via_rb = false;
    bool ab_batching = false;
    /// RB/BC algorithm selection for every generated schedule. Imbs–Raynal
    /// shrinks the per-trial fault budget to its own t = (n-1)/5 bound;
    /// Crain forces the dealt coin (recorded in the schedule so replays
    /// stay bit-identical).
    VariantConfig variants;

    /// WAN overlay applied to every generated schedule (off = legacy LAN).
    WanSpec wan;

    /// Treat a stalled trial as a finding to shrink (off by default: the
    /// randomized consensus only terminates with probability 1, so a
    /// budget overrun is a flag, not proof of a bug).
    bool stall_is_violation = false;
  };

  explicit Explorer(Config cfg) : cfg_(std::move(cfg)) {}

  const Config& config() const { return cfg_; }

  /// Deterministically derives trial `trial_seed`'s schedule (pure:
  /// depends only on cfg_ and the seed).
  Schedule make_schedule(std::uint64_t trial_seed) const;

  /// Executes one schedule from scratch and judges it with the oracles.
  /// Static and pure: replaying the same schedule anywhere reproduces the
  /// same TrialResult, fingerprint included.
  static TrialResult run_trial(const Schedule& s);

  /// Runs `count` trials starting at `first_seed`; stops at the first
  /// failing schedule, shrinks it, and returns the finding. nullopt when
  /// every trial passes. Updates metrics() as it goes.
  std::optional<Finding> explore(std::uint64_t first_seed, std::uint64_t count);

  /// Delta-debugging minimization: greedily drops perturbations, clears
  /// hook bits, removes Byzantine processes and shrinks the workload while
  /// the schedule keeps failing (`want_stall` selects which failure kind
  /// must be preserved). Returns the minimal still-failing schedule.
  Schedule shrink(const Schedule& failing, bool want_stall,
                  std::uint32_t* trials_out = nullptr);

  /// explore_trials / explore_violations / explore_stalls live here (the
  /// explorer owns trial accounting; per-stack metrics stay per-stack).
  const Metrics& metrics() const { return metrics_; }

 private:
  Config cfg_;
  Metrics metrics_;
};

}  // namespace ritas::sim
