// Timing model for the paper's testbed: four hosts on a 100 Mbps switched
// Ethernet, Linux 2.6 TCP, optional IPSec AH (SHA-1) between every pair.
//
// The model has three serialized resources per host — CPU, NIC egress, NIC
// ingress — plus a constant switch latency. A message of B payload bytes
// becomes a wire frame of B + TCP/IP/Ethernet overhead (+ AH overhead when
// IPSec is on); it costs per-message + per-byte CPU on both ends (hashing
// cost added when AH is on), serializes through the sender's egress and the
// receiver's ingress at the measured effective bandwidth, and crosses the
// switch at a fixed latency (plus optional seeded jitter, used by tests to
// shake schedules apart).
//
// Default constants are calibrated so that Table 1's six protocol
// latencies land near the paper's measurements on 500 MHz Pentium IIIs;
// see EXPERIMENTS.md for the calibration and the measured deltas.
#pragma once

#include <cstdint>

#include "sim/scheduler.h"

namespace ritas::sim {

struct LanModelConfig {
  /// Effective per-NIC throughput. The paper measured 9.1 MB/s with iperf
  /// on its 100 Mbps switch.
  double bytes_per_sec = 9.1e6;

  /// Fixed one-way latency: switch store-and-forward plus the fixed part
  /// of the era's kernel TCP path (scheduling/wakeup), which dominates the
  /// isolated-latency measurements.
  Time switch_latency_ns = 520'000;

  /// Ethernet + IP + TCP header bytes per message (the paper reports an
  /// 80-byte total frame for a 10-byte reliable-broadcast payload).
  std::uint32_t frame_overhead_bytes = 70;

  /// IPSec AH header bytes (paper: 24), applied when `ipsec` is true.
  std::uint32_t ah_overhead_bytes = 24;
  bool ipsec = true;

  /// Per-message CPU on the send and receive paths (syscall + TCP/IP stack
  /// on a 500 MHz Pentium III).
  Time cpu_send_ns = 28'000;
  Time cpu_recv_ns = 28'000;

  /// Per-byte CPU (copies + checksums).
  double cpu_per_byte_ns = 10.0;

  /// Extra per-message CPU when AH is on (kernel IPSec processing), each
  /// direction, plus per-byte SHA-1 over the wire frame.
  Time ah_per_msg_ns = 32'000;
  double ah_per_byte_ns = 20.0;

  /// Uniform random extra latency in [0, jitter_ns) per message. Zero in
  /// the paper-replication benches (symmetric LAN); nonzero in property
  /// tests to explore asymmetric schedules.
  Time jitter_ns = 0;

  std::uint32_t wire_bytes(std::size_t payload) const {
    return static_cast<std::uint32_t>(payload) + frame_overhead_bytes +
           (ipsec ? ah_overhead_bytes : 0);
  }
  Time tx_time(std::uint32_t wire) const {
    return static_cast<Time>(static_cast<double>(wire) / bytes_per_sec * 1e9);
  }
  Time send_cpu(std::size_t payload, std::uint32_t wire) const {
    double ns = static_cast<double>(cpu_send_ns) +
                static_cast<double>(payload) * cpu_per_byte_ns;
    if (ipsec) {
      ns += static_cast<double>(ah_per_msg_ns) +
            static_cast<double>(wire) * ah_per_byte_ns;
    }
    return static_cast<Time>(ns);
  }
  Time recv_cpu(std::size_t payload, std::uint32_t wire) const {
    double ns = static_cast<double>(cpu_recv_ns) +
                static_cast<double>(payload) * cpu_per_byte_ns;
    if (ipsec) {
      ns += static_cast<double>(ah_per_msg_ns) +
            static_cast<double>(wire) * ah_per_byte_ns;
    }
    return static_cast<Time>(ns);
  }
};

}  // namespace ritas::sim
