#include "sim/load_gen.h"

#include <algorithm>
#include <cmath>

namespace ritas::sim {

LoadGen::LoadGen(Scheduler& sched, Options opts, SubmitFn submit)
    : sched_(sched),
      opts_(std::move(opts)),
      submit_(std::move(submit)),
      rng_(opts_.seed),
      origins_(opts_.origins) {
  if (origins_.empty()) origins_.push_back(0);
  ProcessId max_origin = 0;
  for (ProcessId o : origins_) max_origin = std::max(max_origin, o);
  pending_.resize(static_cast<std::size_t>(max_origin) + 1);
}

Time LoadGen::next_gap() {
  // Exponential inter-arrival with rate ops_per_sec: the merged arrival
  // process of many independent clients is Poisson. log1p(-u) with
  // u in [0,1) never hits log(0).
  const double u = rng_.uniform();
  const double secs = -std::log1p(-u) / opts_.ops_per_sec;
  return static_cast<Time>(secs * static_cast<double>(kSecond));
}

void LoadGen::start() {
  if (started_) return;
  started_ = true;
  sched_.after(next_gap(), [this] { arrive(); });
}

void LoadGen::arrive() {
  if (stopped_) return;
  ++offered_;
  const ProcessId origin =
      origins_.size() == 1
          ? origins_[0]
          : origins_[rng_.below(origins_.size())];
  pending_[origin].push_back(sched_.now());
  backlog_peak_ = std::max(backlog_peak_, backlog());

  // Payload carries (client, op-sequence) so every op is distinct and the
  // AB total-order oracle compares real identities, not blank bytes.
  Bytes payload(std::max<std::uint32_t>(opts_.payload_bytes, 8), 0);
  const std::uint64_t client = opts_.clients ? rng_.below(opts_.clients) : 0;
  const std::uint64_t tag = (client << 32) | (offered_ & 0xffffffffull);
  for (int i = 0; i < 8; ++i) {
    payload[static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(tag >> (8 * i));
  }
  submit_(origin, std::move(payload));

  if (opts_.max_ops != 0 && offered_ >= opts_.max_ops) {
    stopped_ = true;
    if (on_drained_) on_drained_();
    return;
  }
  sched_.after(next_gap(), [this] { arrive(); });
}

void LoadGen::on_completed(ProcessId origin) {
  if (origin >= pending_.size() || pending_[origin].empty()) return;
  const Time sent = pending_[origin].front();
  pending_[origin].pop_front();
  ++completed_;
  latency_.add(sched_.now() - sent);
}

}  // namespace ritas::sim
