// Open-loop load generator for the simulated cluster.
//
// Models thousands of independent clients whose merged arrival process is
// Poisson: inter-arrival gaps are exponential with rate ops_per_sec, drawn
// from a seeded Rng (same seed => the identical arrival schedule). Open
// loop means arrivals never wait for completions — when the service lags,
// the backlog grows and the tail latency shows it, which is exactly the
// number a production deployment is judged on (closed-loop burst drivers
// hide queueing delay by throttling the offered load).
//
// Each op is submitted to one front-end origin process; completion is
// reported back by the caller when the op is delivered at the observer.
// Latency is matched per-origin FIFO (valid because atomic broadcast
// preserves per-origin submission order, batching included) and recorded
// into a Histogram for p50/p99/p999 extraction.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/bytes.h"
#include "common/rng.h"
#include "common/stats.h"
#include "core/types.h"
#include "sim/scheduler.h"

namespace ritas::sim {

class LoadGen {
 public:
  struct Options {
    /// Simulated client population (tags payloads; the merged Poisson
    /// stream is what actually drives arrivals).
    std::uint32_t clients = 1000;
    /// Aggregate offered rate over all clients, ops per simulated second.
    double ops_per_sec = 1000.0;
    std::uint32_t payload_bytes = 100;
    /// Stop offering after this many arrivals (0 = until stop()).
    std::uint64_t max_ops = 0;
    std::uint64_t seed = 1;
    /// Front-end processes arrivals are assigned to (uniformly, seeded).
    std::vector<ProcessId> origins = {0};
  };

  /// Submits one op to an origin's service endpoint.
  using SubmitFn = std::function<void(ProcessId origin, Bytes payload)>;
  /// Invoked once when the offered stream is exhausted (max_ops reached).
  using DrainedFn = std::function<void()>;

  LoadGen(Scheduler& sched, Options opts, SubmitFn submit);

  /// Schedules the first arrival. Call at most once.
  void start();
  /// Stops offering new load. In-flight ops stay pending and still
  /// complete/count — a clean drain loses nothing.
  void stop() { stopped_ = true; }
  /// Fires after the last scheduled arrival has been submitted.
  void set_on_drained(DrainedFn fn) { on_drained_ = std::move(fn); }

  /// Reports one delivered op from `origin` at the current simulated time;
  /// matched FIFO against that origin's oldest in-flight op. Deliveries
  /// with no matching in-flight op (e.g. Byzantine senders injecting
  /// traffic) are ignored.
  void on_completed(ProcessId origin);

  /// Arrivals generated (== ops submitted: the loop is open).
  std::uint64_t offered() const { return offered_; }
  std::uint64_t completed() const { return completed_; }
  std::uint64_t backlog() const { return offered_ - completed_; }
  std::uint64_t backlog_peak() const { return backlog_peak_; }
  /// True once every offered op has completed and no more will arrive.
  bool drained() const {
    return stopped_ && offered_ == completed_;
  }

  /// Per-op submit->deliver latency in simulated nanoseconds.
  const Histogram& latency() const { return latency_; }

 private:
  void arrive();
  Time next_gap();

  Scheduler& sched_;
  Options opts_;
  SubmitFn submit_;
  DrainedFn on_drained_;
  Rng rng_;
  bool started_ = false;
  bool stopped_ = false;
  std::uint64_t offered_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t backlog_peak_ = 0;
  Histogram latency_;
  /// Per-origin submit timestamps of in-flight ops, FIFO.
  std::vector<std::deque<Time>> pending_;
  std::vector<ProcessId> origins_;
};

}  // namespace ritas::sim
