#include "sim/network.h"

#include <cassert>

namespace ritas::sim {

SimNetwork::SimNetwork(Scheduler& sched, LanModelConfig lan, std::uint32_t n,
                       std::uint64_t jitter_seed)
    : sched_(sched),
      lan_(lan),
      jitter_rng_(jitter_seed),
      cpu_tx_free_(n, 0),
      cpu_rx_free_(n, 0),
      egress_free_(n, 0),
      ingress_free_(n, 0),
      crashed_(n, false) {
  transports_.reserve(n);
  for (ProcessId p = 0; p < n; ++p) {
    transports_.push_back(std::make_unique<HostTransport>(*this, p));
  }
}

void SimNetwork::charge(ProcessId p, Time ns) {
  const Time now = sched_.now();
  cpu_tx_free_[p] = std::max(cpu_tx_free_[p], now) + ns;
  cpu_rx_free_[p] = std::max(cpu_rx_free_[p], now) + ns;
}

void SimNetwork::submit(ProcessId from, ProcessId to, Slice frame) {
  assert(deliver_);
  if (crashed_[from] || crashed_[to]) return;

  const Time now = sched_.now();
  const std::size_t payload = frame.size();
  const std::uint32_t wire = lan_.wire_bytes(payload);
  const Time tx = lan_.tx_time(wire);

  // Sender TX-path CPU (serialized per host), then NIC egress.
  Time t = std::max(now, cpu_tx_free_[from]) + lan_.send_cpu(payload, wire);
  cpu_tx_free_[from] = t;
  const Time egress_start = std::max(t, egress_free_[from]);
  const Time egress_end = egress_start + tx;
  egress_free_[from] = egress_end;

  // Switch latency (+ optional jitter), then receiver NIC ingress.
  Time arrival = egress_end + lan_.switch_latency_ns;
  if (lan_.jitter_ns > 0) arrival += jitter_rng_.below(lan_.jitter_ns);
  if (delay_policy_) arrival += delay_policy_(from, to, now);
  const Time ingress_start = std::max(arrival, ingress_free_[to]);
  const Time ingress_end = ingress_start + tx;
  ingress_free_[to] = ingress_end;

  // Receiver RX-path CPU, then hand to the stack.
  const Time done = std::max(ingress_end, cpu_rx_free_[to]) +
                    lan_.recv_cpu(payload, wire);
  cpu_rx_free_[to] = done;

  ++frames_delivered_;
  wire_bytes_total_ += wire;
  if (!tracers_.empty() && tracers_[from] != nullptr) {
    tracers_[from]->record({now, TraceEventKind::kWire, 0, to, wire, {}});
  }

  sched_.at(done, [this, from, to, f = std::move(frame)]() mutable {
    if (crashed_[to]) return;
    deliver_(from, to, std::move(f));
  });
}

}  // namespace ritas::sim
