// Simulated switched-Ethernet network connecting n RITAS processes.
//
// Owns per-host resource timelines (CPU, NIC egress, NIC ingress) and turns
// every Transport::send into a delivery event on the scheduler, honoring
// the LanModel timing. Per-pair FIFO (the TCP property the stack relies
// on) holds by construction: delivery times to a given receiver are
// monotone in submission order.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/trace.h"
#include "core/transport.h"
#include "sim/lan_model.h"
#include "sim/scheduler.h"

namespace ritas::sim {

class SimNetwork {
 public:
  /// The frame Slice shares the sender's refcounted buffer — delivery to
  /// multiple receivers never duplicates the bytes.
  using DeliverFn = std::function<void(ProcessId from, ProcessId to, Slice frame)>;

  SimNetwork(Scheduler& sched, LanModelConfig lan, std::uint32_t n,
             std::uint64_t jitter_seed);

  /// Sets the sink invoked when a frame reaches a host's stack (after
  /// receive-path CPU). Must be set before any traffic flows.
  void set_deliver(DeliverFn fn) { deliver_ = std::move(fn); }

  /// Submits a frame for transmission at the current simulated time.
  void submit(ProcessId from, ProcessId to, Slice frame);

  /// Bills modeled CPU to host p: both its TX and RX pipelines stall (a
  /// single physical CPU runs everything on the paper's testbed).
  void charge(ProcessId p, Time ns);

  /// Marks a host as crashed: frames from and to it vanish.
  void crash(ProcessId p) { crashed_[p] = true; }
  bool crashed(ProcessId p) const { return crashed_[p]; }

  /// Adversarial network scheduling: extra one-way delay per frame, chosen
  /// by the test/bench (e.g. slow one victim, skew cliques apart). Returns
  /// nanoseconds added on top of the model's latency.
  using DelayPolicy = std::function<Time(ProcessId from, ProcessId to, Time now)>;
  void set_delay_policy(DelayPolicy p) { delay_policy_ = std::move(p); }

  /// Per-host Transport facade bound to this network.
  Transport& transport(ProcessId p) { return *transports_[p]; }

  /// Attaches per-host tracers (nullptr entries allowed): submit() records
  /// a kWire event on the sender's tracer with the modeled wire size.
  void set_tracer(ProcessId p, Tracer* t) {
    if (tracers_.empty()) tracers_.resize(crashed_.size(), nullptr);
    tracers_[p] = t;
  }

  std::uint64_t frames_delivered() const { return frames_delivered_; }
  std::uint64_t wire_bytes_total() const { return wire_bytes_total_; }

  const LanModelConfig& lan() const { return lan_; }

 private:
  class HostTransport final : public Transport {
   public:
    HostTransport(SimNetwork& net, ProcessId self) : net_(net), self_(self) {}
    void send(ProcessId to, Slice frame) override {
      net_.submit(self_, to, std::move(frame));
    }
    void charge_cpu(std::uint64_t ns) override { net_.charge(self_, ns); }
    /// Virtual time: deterministic, so traces are seed-reproducible.
    std::uint64_t now_ns() const override { return net_.sched_.now(); }

   private:
    SimNetwork& net_;
    ProcessId self_;
  };

  Scheduler& sched_;
  LanModelConfig lan_;
  DeliverFn deliver_;
  DelayPolicy delay_policy_;
  Rng jitter_rng_;

  // Separate send-path and receive-path processing queues per host (the
  // syscall/TX path and the softirq/RX path overlap on real kernels).
  std::vector<Time> cpu_tx_free_;
  std::vector<Time> cpu_rx_free_;
  std::vector<Time> egress_free_;
  std::vector<Time> ingress_free_;
  std::vector<bool> crashed_;
  std::vector<std::unique_ptr<HostTransport>> transports_;
  std::vector<Tracer*> tracers_;

  std::uint64_t frames_delivered_ = 0;
  std::uint64_t wire_bytes_total_ = 0;
};

}  // namespace ritas::sim
