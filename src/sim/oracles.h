// Per-layer property oracles: the paper's §2 safety definitions as
// executable checks over captured per-process observations.
//
// Every oracle appends human-readable violation strings to a Report
// instead of asserting, so the same checks serve three masters:
//
//   * the schedule-exploration engine (sim/explore.h) runs the full set
//     after every trial and treats a non-empty report as "shrink this
//     schedule and emit an artifact";
//   * GoogleTest suites (test_adversarial, test_properties, ...) wrap a
//     report in EXPECT_TRUE(r.ok()) << r.text() — one line checks the
//     whole safety set, not just the property the test was written for;
//   * the ritas_explore CLI prints the report verbatim.
//
// Inputs are plain per-process vectors (index = ProcessId); `correct`
// selects which entries the properties quantify over. Oracles never look
// at protocol internals — only at what the application-facing callbacks
// observed — so they hold for any transport and any adversary.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"
#include "core/types.h"

namespace ritas::sim::oracle {

struct Report {
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
  void fail(std::string what) { violations.push_back(std::move(what)); }
  std::string text() const {
    std::string out;
    for (const auto& v : violations) {
      if (!out.empty()) out += "\n";
      out += v;
    }
    return out;
  }
};

namespace detail {
inline std::string pid(ProcessId p) { return "p" + std::to_string(p); }
inline std::string show(const Bytes& b) {
  std::string s = "\"";
  for (std::uint8_t c : b) {
    if (c >= 0x20 && c < 0x7f) {
      s.push_back(static_cast<char>(c));
    } else {
      static const char* hex = "0123456789abcdef";
      s += "\\x";
      s.push_back(hex[c >> 4]);
      s.push_back(hex[c & 0xf]);
    }
  }
  return s + "\"";
}
}  // namespace detail

// --- binary consensus (§2.4: agreement, validity, termination) ------------

/// Agreement: all correct processes that decided, decided the same bit.
inline void bc_agreement(Report& r, const std::vector<ProcessId>& correct,
                         const std::vector<std::optional<bool>>& decisions) {
  std::optional<std::pair<ProcessId, bool>> first;
  for (ProcessId p : correct) {
    if (!decisions[p].has_value()) continue;
    if (!first) {
      first = {p, *decisions[p]};
    } else if (*decisions[p] != first->second) {
      r.fail("bc.agreement: " + detail::pid(first->first) + " decided " +
             std::to_string(first->second) + " but " + detail::pid(p) +
             " decided " + std::to_string(*decisions[p]));
    }
  }
}

/// Validity: if every correct process proposed v, any correct decision is v.
inline void bc_validity(Report& r, const std::vector<ProcessId>& correct,
                        const std::vector<bool>& proposals,
                        const std::vector<std::optional<bool>>& decisions) {
  if (correct.empty()) return;
  bool unanimous = true;
  for (ProcessId p : correct) {
    unanimous = unanimous && proposals[p] == proposals[correct.front()];
  }
  if (!unanimous) return;
  const bool v = proposals[correct.front()];
  for (ProcessId p : correct) {
    if (decisions[p].has_value() && *decisions[p] != v) {
      r.fail("bc.validity: unanimous proposal " + std::to_string(v) + " but " +
             detail::pid(p) + " decided " + std::to_string(*decisions[p]));
    }
  }
}

/// Termination: every correct process decided (call only once the run was
/// given a fair chance to finish — a liveness budget or deadline).
inline void bc_termination(Report& r, const std::vector<ProcessId>& correct,
                           const std::vector<std::optional<bool>>& decisions) {
  for (ProcessId p : correct) {
    if (!decisions[p].has_value()) {
      r.fail("bc.termination: " + detail::pid(p) + " never decided");
    }
  }
}

/// The full binary consensus safety set; termination only when
/// `expect_termination`.
inline void check_bc(Report& r, const std::vector<ProcessId>& correct,
                     const std::vector<bool>& proposals,
                     const std::vector<std::optional<bool>>& decisions,
                     bool expect_termination = true) {
  bc_agreement(r, correct, decisions);
  bc_validity(r, correct, proposals, decisions);
  if (expect_termination) bc_termination(r, correct, decisions);
}

// --- multi-valued consensus (§2.5) ----------------------------------------
// Decisions are optional<Bytes>: nullopt = the default value ⊥. The outer
// optional is "did p decide at all".

using MvcDecision = std::optional<Bytes>;

inline std::string mvc_show(const MvcDecision& d) {
  return d.has_value() ? detail::show(*d) : std::string("⊥");
}

/// Agreement: all correct deciders decided the same value (⊥ included).
inline void mvc_agreement(
    Report& r, const std::vector<ProcessId>& correct,
    const std::vector<std::optional<MvcDecision>>& decisions) {
  std::optional<std::pair<ProcessId, MvcDecision>> first;
  for (ProcessId p : correct) {
    if (!decisions[p].has_value()) continue;
    if (!first) {
      first = {p, *decisions[p]};
    } else if (*decisions[p] != first->second) {
      r.fail("mvc.agreement: " + detail::pid(first->first) + " decided " +
             mvc_show(first->second) + " but " + detail::pid(p) + " decided " +
             mvc_show(*decisions[p]));
    }
  }
}

/// No creation: a non-⊥ decision must be some process's proposal. When
/// `correct_proposals_only` the decided value must come from a CORRECT
/// process (the §2.5 validity strengthening the stack actually provides:
/// INIT values ride reliable broadcast, so a Byzantine value must still
/// have been proposed by its sender — pass the full proposal set then).
inline void mvc_no_creation(
    Report& r, const std::vector<ProcessId>& correct,
    const std::vector<Bytes>& proposals,
    const std::vector<std::optional<MvcDecision>>& decisions) {
  for (ProcessId p : correct) {
    if (!decisions[p].has_value() || !(*decisions[p]).has_value()) continue;
    const Bytes& v = **decisions[p];
    bool proposed = false;
    for (const Bytes& prop : proposals) proposed = proposed || prop == v;
    if (!proposed) {
      r.fail("mvc.no-creation: " + detail::pid(p) + " decided invented value " +
             detail::show(v));
    }
  }
}

inline void mvc_termination(
    Report& r, const std::vector<ProcessId>& correct,
    const std::vector<std::optional<MvcDecision>>& decisions) {
  for (ProcessId p : correct) {
    if (!decisions[p].has_value()) {
      r.fail("mvc.termination: " + detail::pid(p) + " never decided");
    }
  }
}

inline void check_mvc(Report& r, const std::vector<ProcessId>& correct,
                      const std::vector<Bytes>& proposals,
                      const std::vector<std::optional<MvcDecision>>& decisions,
                      bool expect_termination = true) {
  mvc_agreement(r, correct, decisions);
  mvc_no_creation(r, correct, proposals, decisions);
  if (expect_termination) mvc_termination(r, correct, decisions);
}

// --- vector consensus (§2.6) ----------------------------------------------

using VcVector = std::vector<std::optional<Bytes>>;

/// Agreement on one vector.
inline void vc_agreement(Report& r, const std::vector<ProcessId>& correct,
                         const std::vector<std::optional<VcVector>>& decisions) {
  std::optional<ProcessId> first;
  for (ProcessId p : correct) {
    if (!decisions[p].has_value()) continue;
    if (!first) {
      first = p;
    } else if (*decisions[p] != *decisions[*first]) {
      r.fail("vc.agreement: " + detail::pid(*first) + " and " + detail::pid(p) +
             " decided different vectors");
    }
  }
}

/// Entry validity: V[i] is p_i's proposal or ⊥ for every CORRECT p_i, and
/// at least f+1 entries came from correct processes.
inline void vc_entries(Report& r, const std::vector<ProcessId>& correct,
                       const std::vector<Bytes>& proposals,
                       const std::vector<std::optional<VcVector>>& decisions,
                       std::uint32_t f) {
  for (ProcessId p : correct) {
    if (!decisions[p].has_value()) continue;
    const VcVector& v = *decisions[p];
    if (v.size() != proposals.size()) {
      r.fail("vc.entries: " + detail::pid(p) + " decided a vector of size " +
             std::to_string(v.size()) + ", expected " +
             std::to_string(proposals.size()));
      continue;
    }
    std::uint32_t correct_entries = 0;
    for (ProcessId i = 0; i < v.size(); ++i) {
      const bool is_correct =
          std::find(correct.begin(), correct.end(), i) != correct.end();
      if (!v[i].has_value()) continue;
      if (is_correct) {
        if (*v[i] != proposals[i]) {
          r.fail("vc.entries: " + detail::pid(p) + " vector entry " +
                 std::to_string(i) + " is " + detail::show(*v[i]) +
                 ", not p" + std::to_string(i) + "'s proposal " +
                 detail::show(proposals[i]));
        } else {
          ++correct_entries;
        }
      }
    }
    if (correct_entries < f + 1) {
      r.fail("vc.entries: " + detail::pid(p) + " vector holds only " +
             std::to_string(correct_entries) + " correct entries, need f+1 = " +
             std::to_string(f + 1));
    }
  }
}

inline void vc_termination(Report& r, const std::vector<ProcessId>& correct,
                           const std::vector<std::optional<VcVector>>& decisions) {
  for (ProcessId p : correct) {
    if (!decisions[p].has_value()) {
      r.fail("vc.termination: " + detail::pid(p) + " never decided");
    }
  }
}

inline void check_vc(Report& r, const std::vector<ProcessId>& correct,
                     const std::vector<Bytes>& proposals,
                     const std::vector<std::optional<VcVector>>& decisions,
                     std::uint32_t f, bool expect_termination = true) {
  vc_agreement(r, correct, decisions);
  vc_entries(r, correct, proposals, decisions, f);
  if (expect_termination) vc_termination(r, correct, decisions);
}

// --- reliable / echo broadcast (§2.2 / §2.3) ------------------------------
// One oracle call covers ONE broadcast instance: `delivered[p]` is what
// process p delivered from it (nullopt = nothing yet).

/// RB/EB agreement: every correct process that delivered, delivered the
/// same bytes (holds for both protocols, Byzantine origin included).
inline void broadcast_agreement(Report& r, const std::vector<ProcessId>& correct,
                                const std::vector<std::optional<Bytes>>& delivered,
                                const char* layer) {
  std::optional<std::pair<ProcessId, Bytes>> first;
  for (ProcessId p : correct) {
    if (!delivered[p].has_value()) continue;
    if (!first) {
      first = {p, *delivered[p]};
    } else if (*delivered[p] != first->second) {
      r.fail(std::string(layer) + ".agreement: " + detail::pid(first->first) +
             " delivered " + detail::show(first->second) + " but " +
             detail::pid(p) + " delivered " + detail::show(*delivered[p]));
    }
  }
}

/// Integrity + validity for a CORRECT origin: every correct process
/// delivered exactly `sent` (validity requires the run to have quiesced;
/// pass expect_totality = false to check payload integrity only).
inline void broadcast_correct_origin(
    Report& r, const std::vector<ProcessId>& correct, const Bytes& sent,
    const std::vector<std::optional<Bytes>>& delivered, const char* layer,
    bool expect_totality = true) {
  for (ProcessId p : correct) {
    if (!delivered[p].has_value()) {
      if (expect_totality) {
        r.fail(std::string(layer) + ".validity: correct origin's broadcast never "
               "delivered at " + detail::pid(p));
      }
      continue;
    }
    if (*delivered[p] != sent) {
      r.fail(std::string(layer) + ".integrity: " + detail::pid(p) +
             " delivered " + detail::show(*delivered[p]) + ", origin sent " +
             detail::show(sent));
    }
  }
}

/// RB totality: if ANY correct process delivered, ALL of them must (call
/// after quiesce). Echo broadcast deliberately does not have this.
inline void rb_totality(Report& r, const std::vector<ProcessId>& correct,
                        const std::vector<std::optional<Bytes>>& delivered) {
  bool any = false;
  for (ProcessId p : correct) any = any || delivered[p].has_value();
  if (!any) return;
  for (ProcessId p : correct) {
    if (!delivered[p].has_value()) {
      r.fail("rb.totality: some correct process delivered but " +
             detail::pid(p) + " did not");
    }
  }
}

// --- atomic broadcast (§2.7) ----------------------------------------------

/// One delivery observed at one process, in local delivery order.
struct AbEvent {
  ProcessId origin;
  std::uint64_t rbid;
  Bytes payload;
  friend bool operator==(const AbEvent&, const AbEvent&) = default;
};
using AbLog = std::vector<AbEvent>;

/// What the correct senders actually broadcast: (origin, rbid) -> payload.
using AbSent = std::map<std::pair<ProcessId, std::uint64_t>, Bytes>;

/// Total order: delivery sequences of correct processes are
/// prefix-identical (the always-checkable form of AB agreement).
inline void ab_total_order(Report& r, const std::vector<ProcessId>& correct,
                           const std::vector<AbLog>& logs) {
  if (correct.empty()) return;
  const ProcessId ref = correct.front();
  for (ProcessId p : correct) {
    const std::size_t k = std::min(logs[p].size(), logs[ref].size());
    for (std::size_t i = 0; i < k; ++i) {
      if (!(logs[p][i] == logs[ref][i])) {
        r.fail("ab.total-order: " + detail::pid(p) + " and " + detail::pid(ref) +
               " diverge at position " + std::to_string(i) + ": (" +
               std::to_string(logs[p][i].origin) + "," +
               std::to_string(logs[p][i].rbid) + ") vs (" +
               std::to_string(logs[ref][i].origin) + "," +
               std::to_string(logs[ref][i].rbid) + ")");
        break;  // one divergence per pair is enough noise
      }
    }
  }
}

/// No duplication: no (origin, rbid) delivered twice at any correct process.
inline void ab_no_duplicates(Report& r, const std::vector<ProcessId>& correct,
                             const std::vector<AbLog>& logs) {
  for (ProcessId p : correct) {
    std::set<std::pair<ProcessId, std::uint64_t>> seen;
    for (const AbEvent& e : logs[p]) {
      if (!seen.emplace(e.origin, e.rbid).second) {
        r.fail("ab.no-dup: " + detail::pid(p) + " delivered (" +
               std::to_string(e.origin) + "," + std::to_string(e.rbid) +
               ") twice");
      }
    }
  }
}

/// No creation: a delivery attributed to a correct origin carries exactly
/// the payload that origin broadcast under that rbid.
inline void ab_no_creation(Report& r, const std::vector<ProcessId>& correct,
                           const std::vector<AbLog>& logs, const AbSent& sent) {
  for (ProcessId p : correct) {
    for (const AbEvent& e : logs[p]) {
      const bool origin_correct =
          std::find(correct.begin(), correct.end(), e.origin) != correct.end();
      if (!origin_correct) continue;
      auto it = sent.find({e.origin, e.rbid});
      if (it == sent.end()) {
        r.fail("ab.no-creation: " + detail::pid(p) + " delivered (" +
               std::to_string(e.origin) + "," + std::to_string(e.rbid) +
               ") which the correct origin never broadcast");
      } else if (it->second != e.payload) {
        r.fail("ab.no-creation: " + detail::pid(p) + " delivered forged payload " +
               detail::show(e.payload) + " for (" + std::to_string(e.origin) +
               "," + std::to_string(e.rbid) + "), origin sent " +
               detail::show(it->second));
      }
    }
  }
}

/// Validity: every message a correct process broadcast is delivered at
/// every correct process (call after quiesce).
inline void ab_validity(Report& r, const std::vector<ProcessId>& correct,
                        const std::vector<AbLog>& logs, const AbSent& sent) {
  for (ProcessId p : correct) {
    std::set<std::pair<ProcessId, std::uint64_t>> got;
    for (const AbEvent& e : logs[p]) got.emplace(e.origin, e.rbid);
    for (const auto& [id, payload] : sent) {
      if (!got.contains(id)) {
        r.fail("ab.validity: (" + std::to_string(id.first) + "," +
               std::to_string(id.second) + ") broadcast by a correct process "
               "but never delivered at " + detail::pid(p));
      }
    }
  }
}

/// The full AB safety set. `complete` gates validity (it only holds once
/// the run has quiesced); the other three are always required.
inline void check_ab(Report& r, const std::vector<ProcessId>& correct,
                     const std::vector<AbLog>& logs, const AbSent& sent,
                     bool complete = true) {
  ab_total_order(r, correct, logs);
  ab_no_duplicates(r, correct, logs);
  ab_no_creation(r, correct, logs, sent);
  if (complete) ab_validity(r, correct, logs, sent);
}

}  // namespace ritas::sim::oracle
