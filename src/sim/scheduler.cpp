#include "sim/scheduler.h"

namespace ritas::sim {

void Scheduler::at(Time t, Fn fn) {
  if (t < now_) t = now_;
  heap_.push(Ev{t, seq_++, std::move(fn)});
}

bool Scheduler::step() {
  if (heap_.empty()) return false;
  // priority_queue::top is const; move via const_cast is safe because we
  // pop immediately after.
  Ev ev = std::move(const_cast<Ev&>(heap_.top()));
  heap_.pop();
  now_ = ev.t;
  ev.fn();
  return true;
}

std::size_t Scheduler::run(std::size_t max_events) {
  std::size_t n = 0;
  while (n < max_events && step()) ++n;
  return n;
}

bool Scheduler::run_until(const std::function<bool()>& done, Time deadline) {
  while (!done()) {
    if (heap_.empty() || heap_.top().t > deadline) return false;
    step();
  }
  return true;
}

}  // namespace ritas::sim
