// Discrete-event scheduler for the simulated LAN.
//
// Deterministic: events fire in (time, insertion-sequence) order, so two
// runs with the same seeds produce identical executions — including runs
// of the *randomized* binary consensus, whose coins come from seeded
// per-process generators.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace ritas::sim {

/// Simulated time in nanoseconds.
using Time = std::uint64_t;

constexpr Time kMicrosecond = 1'000;
constexpr Time kMillisecond = 1'000'000;
constexpr Time kSecond = 1'000'000'000;

class Scheduler {
 public:
  using Fn = std::function<void()>;

  Time now() const { return now_; }

  /// Schedules `fn` at absolute time t (clamped to now).
  void at(Time t, Fn fn);
  void after(Time delay, Fn fn) { at(now_ + delay, std::move(fn)); }

  bool empty() const { return heap_.empty(); }
  std::size_t pending() const { return heap_.size(); }

  /// Runs the next event. Returns false when the queue is empty.
  bool step();

  /// Runs until the queue drains (or max_events fire); returns events run.
  std::size_t run(std::size_t max_events = static_cast<std::size_t>(-1));

  /// Runs until `done()` returns true, the queue drains, or `deadline`
  /// passes. Returns true iff `done()` was satisfied.
  bool run_until(const std::function<bool()>& done, Time deadline);

 private:
  struct Ev {
    Time t;
    std::uint64_t seq;
    Fn fn;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  std::priority_queue<Ev, std::vector<Ev>, Later> heap_;
  Time now_ = 0;
  std::uint64_t seq_ = 0;
};

}  // namespace ritas::sim
