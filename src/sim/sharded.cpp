#include "sim/sharded.h"

#include <stdexcept>

#include "common/serialize.h"
#include "smr/kv_machine.h"

namespace ritas::sim {

ShardedCluster::ShardedCluster(ShardedClusterOptions opts)
    : opts_(std::move(opts)) {
  const std::uint32_t n = opts_.n;
  const std::uint32_t groups = opts_.groups;
  if (groups == 0) throw std::invalid_argument("ShardedCluster: groups == 0");
  net_ = std::make_unique<SimNetwork>(sched_, opts_.lan, n,
                                      opts_.seed ^ 0xabcdef12345678ULL);

  // Trusted-dealer key distribution, one keychain per PROCESS: all G
  // stacks of a process share the host's pairwise channel secrets, like
  // they share its TCP channels (see header).
  Writer master;
  master.str("ritas-sim-master");
  master.u64(opts_.seed);
  keys_.reserve(n);
  for (ProcessId p = 0; p < n; ++p) {
    keys_.push_back(KeyChain::deal(master.data(), n, p));
  }

  adversaries_.resize(n);
  for (ProcessId p : opts_.byzantine) {
    if (p >= n) throw std::invalid_argument("byzantine process out of range");
    adversaries_[p] = opts_.adversary_factory();
  }
  for (ProcessId p : opts_.crashed) {
    if (p >= n) throw std::invalid_argument("crashed process out of range");
  }

  std::uint64_t s = opts_.seed;
  const std::uint64_t base = splitmix64(s);

  muxes_.resize(n);
  stacks_.resize(n);
  abs_.resize(n);
  if (opts_.trace) tracers_.resize(n);
  services_.reserve(n);
  ab_logs_.assign(groups, std::vector<oracle::AbLog>(n));
  ab_sent_.assign(groups, {});

  const auto factory = opts_.machine_factory
                           ? opts_.machine_factory
                           : [](smr::ShardId) -> std::unique_ptr<smr::StateMachine> {
                               return std::make_unique<smr::KvMachine>();
                             };
  const auto key_of =
      opts_.key_of ? opts_.key_of
                   : [](ByteView op) { return smr::kv_key_of(op); };

  for (ProcessId p = 0; p < n; ++p) {
    muxes_[p] = std::make_unique<GroupMux>();
    stacks_[p].reserve(groups);
    if (opts_.trace) tracers_[p].reserve(groups);
    for (GroupId g = 0; g < groups; ++g) {
      StackConfig cfg = opts_.stack;
      cfg.n = n;
      cfg.self = p;
      cfg.group = g;
      if (g < opts_.ab_batch_per_group.size()) {
        cfg.ab_batch = opts_.ab_batch_per_group[g];
      }
      // Group 0's derivation matches Cluster's, so a G=1 sharded run and a
      // plain Cluster run with the same seed draw identical randomness.
      const std::uint64_t proc_seed =
          base ^ (0x1000 + p) ^
          (static_cast<std::uint64_t>(g) * 0x9e3779b97f4a7c15ULL);
      stacks_[p].push_back(std::make_unique<ProtocolStack>(
          cfg, net_->transport(p), keys_[p], proc_seed, adversaries_[p].get()));
      muxes_[p]->attach(g, *stacks_[p][g]);
      if (opts_.trace) {
        tracers_[p].push_back(std::make_unique<Tracer>(p));
        stacks_[p][g]->set_tracer(tracers_[p][g].get());
      }
    }

    smr::ShardedService::Config sc;
    sc.shards = groups;
    sc.key_of = key_of;
    services_.push_back(std::make_unique<smr::ShardedService>(sc, factory));
  }

  // Inbound demux: the shared mesh delivers host-to-host; the mux peeks
  // the GroupId prefix and routes to the owning stack.
  net_->set_deliver([this](ProcessId from, ProcessId to, Slice frame) {
    muxes_[to]->on_packet(from, std::move(frame));
  });

  const auto is_crashed0 = [&](ProcessId p) {
    for (ProcessId c : opts_.crashed) {
      if (c == p) return true;
    }
    return false;
  };

  // AB roots: the SAME root id at every process and every group — the
  // GroupId is the wire-level separator, so identical child-seq encodings
  // across groups never collide.
  const InstanceId ab_root = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
  for (ProcessId p = 0; p < n; ++p) {
    if (is_crashed0(p)) continue;  // crashed from t=0: no roots, no service
    abs_[p].reserve(groups);
    for (GroupId g = 0; g < groups; ++g) {
      abs_[p].push_back(std::make_unique<AtomicBroadcast>(
          *stacks_[p][g], nullptr, ab_root,
          [this, p, g](ProcessId origin, std::uint64_t rbid, Slice payload) {
            const ByteView bytes = payload.view();
            ab_logs_[g][p].push_back(
                {origin, rbid, Bytes(bytes.begin(), bytes.end())});
            services_[p]->on_delivered(g, bytes);
          }));
      stacks_[p][g]->pump();
    }
    services_[p]->bind_submitter([this, p](smr::ShardId shard,
                                           const Bytes& command) {
      const std::uint64_t rbid = abs_[p][shard]->bcast(Bytes(command));
      // Oracle bookkeeping: correct senders only, and only while the
      // group's batching is off — with batching every message of a batch
      // shares the batch's rbid, so (origin, rbid) no longer names one
      // payload and check_ab's no-creation/validity do not apply.
      if (adversaries_[p] == nullptr &&
          !stacks_[p][shard]->config().ab_batch.enabled) {
        ab_sent_[shard][{p, rbid}] = command;
      }
      stacks_[p][shard]->pump();
    });
  }

  for (ProcessId p : opts_.crashed) net_->crash(p);
}

ShardedCluster::~ShardedCluster() = default;

std::vector<ProcessId> ShardedCluster::correct_set() const {
  std::vector<ProcessId> out;
  for (ProcessId p = 0; p < opts_.n; ++p) {
    if (correct(p)) out.push_back(p);
  }
  return out;
}

smr::ShardId ShardedCluster::submit(ProcessId via, std::uint64_t client,
                                    std::uint64_t seq, ByteView op) {
  if (via >= opts_.n || crashed(via)) {
    throw std::invalid_argument("submit: bad via process");
  }
  return services_[via]->submit(client, seq, op);
}

smr::ShardId ShardedCluster::submit_via(ProcessId via, smr::ShardId guess,
                                        std::uint64_t client, std::uint64_t seq,
                                        ByteView op) {
  if (via >= opts_.n || crashed(via)) {
    throw std::invalid_argument("submit_via: bad via process");
  }
  return services_[via]->submit_via(guess, client, seq, op);
}

void ShardedCluster::flush_all() {
  for (ProcessId p = 0; p < opts_.n; ++p) {
    if (abs_[p].empty()) continue;
    for (GroupId g = 0; g < opts_.groups; ++g) {
      abs_[p][g]->flush();
      stacks_[p][g]->pump();
    }
  }
}

bool ShardedCluster::run_until(const std::function<bool()>& done,
                               Time deadline) {
  return sched_.run_until(done, deadline);
}

bool ShardedCluster::all_applied_at_least(std::uint64_t count) const {
  for (ProcessId p = 0; p < opts_.n; ++p) {
    if (!correct(p)) continue;
    if (services_[p]->applied_total() < count) return false;
  }
  return true;
}

Metrics ShardedCluster::group_metrics(GroupId g) const {
  Metrics total;
  for (ProcessId p = 0; p < opts_.n; ++p) {
    if (!crashed(p)) total += stacks_[p][g]->metrics();
  }
  return total;
}

Metrics ShardedCluster::total_metrics() const {
  Metrics total;
  for (ProcessId p = 0; p < opts_.n; ++p) {
    if (crashed(p)) continue;
    for (GroupId g = 0; g < opts_.groups; ++g) {
      total += stacks_[p][g]->metrics();
    }
  }
  return total;
}

Bytes ShardedCluster::group_trace_bytes(GroupId g) const {
  Bytes out;
  for (ProcessId p = 0; p < opts_.n; ++p) {
    if (p < tracers_.size() && g < tracers_[p].size()) {
      append(out, tracers_[p][g]->encode());
    }
  }
  return out;
}

}  // namespace ritas::sim
