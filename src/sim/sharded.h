// Simulated sharded SMR deployment: G independent RITAS groups on one
// shared simulated LAN (the sim twin of the "many groups, one mesh"
// production layout).
//
// Topology per process p:
//
//   SimNetwork host p  ──►  GroupMux p  ──►  ProtocolStack (p, g)   [G of]
//                                             └─ AtomicBroadcast root
//   ShardedService p  ◄── per-group AB deliver callbacks
//
// Every (process, group) pair runs a full stack of its own — own Rng
// (derived deterministic seed), own metrics, own AB root under the same
// InstanceId (the GroupId separates groups on the wire, so identical
// child-seq encodings across groups are fine and intended). All G stacks
// of one process share the host's Transport, so the sim's per-host
// CPU/NIC timelines model the real contention of a shared mesh: groups
// compete for the same NIC, which is exactly what bench_shard_scaling
// measures.
//
// Keys: one KeyChain per process, shared by its G stacks — groups share
// pairwise channels in production, so they share the channel MAC secrets
// too (the GroupId in the authenticated frame keeps cross-group replay
// inert: a frame replayed into another group is a foreign_group drop).
//
// Determinism: same options => bit-identical run. Per-(process, group)
// tracers expose per-GROUP trace bytes, so the oracle/explorer machinery
// and the determinism tests apply to each shard independently (wire-level
// events are host-scoped, not group-scoped, and are deliberately not
// traced here).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "core/atomic_broadcast.h"
#include "core/group_mux.h"
#include "core/stack.h"
#include "crypto/keychain.h"
#include "sim/network.h"
#include "sim/oracles.h"
#include "sim/scheduler.h"
#include "smr/sharded_service.h"

namespace ritas::sim {

struct ShardedClusterOptions {
  std::uint32_t n = 4;
  /// Number of consensus groups == shards. Group g serves shard g.
  std::uint32_t groups = 1;
  std::uint64_t seed = 1;
  LanModelConfig lan;
  /// Template for every stack (n/self/group overwritten per instance).
  StackConfig stack;
  /// Per-group AB batching override, indexed by group; groups beyond the
  /// vector (or an empty vector) use `stack.ab_batch`. Independent tuning
  /// per shard is the point: a hot shard batches aggressively, a cold one
  /// stays at the paper's unbatched wire format.
  std::vector<AbBatchConfig> ab_batch_per_group;
  /// Crashed from t=0 (whole host: all G stacks of the process).
  std::vector<ProcessId> crashed;
  /// Byzantine processes: every stack of the process gets an Adversary.
  std::vector<ProcessId> byzantine;
  std::function<std::unique_ptr<Adversary>()> adversary_factory =
      [] { return std::make_unique<PaperByzantineAdversary>(); };
  /// Attach per-(process, group) tracers (virtual-time, deterministic).
  bool trace = false;
  /// Service plumbing; defaults to the KV machine and its key extractor.
  smr::ShardedService::MachineFactory machine_factory;  // null => KvMachine
  smr::ShardedService::KeyOfFn key_of;                  // null => kv_key_of
};

class ShardedCluster {
 public:
  explicit ShardedCluster(ShardedClusterOptions opts);
  ~ShardedCluster();

  std::uint32_t n() const { return opts_.n; }
  std::uint32_t groups() const { return opts_.groups; }
  Scheduler& scheduler() { return sched_; }
  SimNetwork& network() { return *net_; }
  Time now() const { return sched_.now(); }

  ProtocolStack& stack(ProcessId p, GroupId g) { return *stacks_[p][g]; }
  GroupMux& mux(ProcessId p) { return *muxes_[p]; }
  smr::ShardedService& service(ProcessId p) { return *services_[p]; }

  bool crashed(ProcessId p) const { return net_->crashed(p); }
  bool correct(ProcessId p) const {
    return !crashed(p) && adversaries_[p] == nullptr;
  }
  std::vector<ProcessId> correct_set() const;

  /// Submits a client op through process `via`'s service front (routes to
  /// the owning shard's atomic broadcast at that process). Returns the
  /// owning shard.
  smr::ShardId submit(ProcessId via, std::uint64_t client, std::uint64_t seq,
                      ByteView op);
  /// Same, for a client that guessed shard `guess` — a wrong guess is
  /// forwarded (service.forwarded() counts it), never dropped.
  smr::ShardId submit_via(ProcessId via, smr::ShardId guess,
                          std::uint64_t client, std::uint64_t seq, ByteView op);

  /// Seals every open AB batch at every live stack (no-op unbatched).
  void flush_all();

  /// Runs the simulation until `done` or `deadline`; true iff done.
  bool run_until(const std::function<bool()>& done, Time deadline);

  /// True when every correct process applied >= `count` commands in total
  /// across its shards (the usual run_until predicate).
  bool all_applied_at_least(std::uint64_t count) const;

  // --- per-group observations (oracle inputs) ----------------------------
  /// Process-indexed AB delivery logs of group g (index = ProcessId).
  const std::vector<oracle::AbLog>& ab_log(GroupId g) const {
    return ab_logs_[g];
  }
  /// What correct processes broadcast on group g ((origin, rbid) ->
  /// framed command), maintained by submit(); feed to oracle::check_ab.
  const oracle::AbSent& ab_sent(GroupId g) const { return ab_sent_[g]; }

  /// Sum of stack metrics over group g's live stacks.
  Metrics group_metrics(GroupId g) const;
  /// Sum over all groups and live processes.
  Metrics total_metrics() const;

  /// Deterministic binary trace of group g only (processes concatenated in
  /// pid order) — per-shard bit-identical across same-seed runs.
  Bytes group_trace_bytes(GroupId g) const;

 private:
  ShardedClusterOptions opts_;
  Scheduler sched_;
  std::unique_ptr<SimNetwork> net_;
  std::vector<KeyChain> keys_;
  std::vector<std::unique_ptr<Adversary>> adversaries_;
  std::vector<std::unique_ptr<GroupMux>> muxes_;
  // stacks_[p][g], abs_[p][g], tracers_[p][g] (tracers empty when !trace).
  // Tracers are declared BEFORE the stacks that point at them: teardown
  // runs in reverse, and a dying stack still records teardown events.
  std::vector<std::vector<std::unique_ptr<Tracer>>> tracers_;
  std::vector<std::vector<std::unique_ptr<ProtocolStack>>> stacks_;
  std::vector<std::vector<std::unique_ptr<AtomicBroadcast>>> abs_;
  std::vector<std::unique_ptr<smr::ShardedService>> services_;
  // ab_logs_[g][p]; ab_sent_[g].
  std::vector<std::vector<oracle::AbLog>> ab_logs_;
  std::vector<oracle::AbSent> ab_sent_;
};

}  // namespace ritas::sim
