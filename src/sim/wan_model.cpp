#include "sim/wan_model.h"

#include <algorithm>

namespace ritas::sim {

namespace {

// One-way inter-site delays in milliseconds, asymmetric. The top-left 4x4
// block is the table bench_wan shipped with (kept bit-for-bit so the ported
// bench reproduces its original numbers); the remaining sites extend the
// same intra-continent / inter-continent mix out to 8 sites.
constexpr Time kSiteDelayMs[kCanonicalSites][kCanonicalSites] = {
    //  s0   s1   s2   s3   s4   s5   s6   s7
    {0, 5, 40, 90, 35, 62, 105, 78},        // s0
    {5, 0, 35, 85, 28, 68, 98, 72},         // s1
    {45, 38, 0, 60, 75, 98, 145, 112},      // s2
    {95, 88, 65, 0, 82, 168, 50, 38},       // s3
    {38, 30, 72, 85, 0, 92, 70, 52},        // s4
    {60, 65, 95, 170, 95, 0, 158, 132},     // s5
    {102, 95, 140, 48, 72, 162, 0, 55},     // s6
    {75, 70, 115, 35, 50, 135, 58, 0},      // s7
};

// Cap on modeled back-to-back retransmissions of one frame: keeps a
// pathological loss_ppm from spinning the Rng unboundedly while staying
// far above anything a realistic loss rate draws.
constexpr int kMaxRetransmissions = 16;

}  // namespace

Time canonical_site_delay(std::uint32_t from_site, std::uint32_t to_site) {
  if (from_site >= kCanonicalSites || to_site >= kCanonicalSites) return 0;
  return kSiteDelayMs[from_site][to_site] * kMillisecond;
}

WanModelConfig wan_profile(std::uint32_t n, const WanProfileOptions& opt) {
  const std::uint32_t sites =
      std::clamp<std::uint32_t>(opt.sites, 1, kCanonicalSites);
  WanModelConfig cfg;
  cfg.site_of.resize(n);
  for (std::uint32_t p = 0; p < n; ++p) cfg.site_of[p] = p % sites;
  cfg.links.assign(sites, std::vector<WanLink>(sites));
  for (std::uint32_t a = 0; a < sites; ++a) {
    for (std::uint32_t b = 0; b < sites; ++b) {
      if (a == b) continue;
      WanLink& l = cfg.links[a][b];
      l.base_delay_ns = canonical_site_delay(a, b);
      l.jitter_ns = l.base_delay_ns / 1000 * opt.jitter_permille;
      l.loss_ppm = opt.loss_ppm;
      l.rto_ns = opt.rto_ns;
    }
  }
  return cfg;
}

WanModel::WanModel(WanModelConfig cfg, std::uint64_t seed)
    : cfg_(std::move(cfg)), rng_(seed) {}

Time WanModel::extra_delay(ProcessId from, ProcessId to, Time now) {
  Time extra = 0;
  const std::uint32_t sf = site_of(from);
  const std::uint32_t st = site_of(to);
  if (sf != st && sf < cfg_.links.size() && st < cfg_.links[sf].size()) {
    const WanLink& l = cfg_.links[sf][st];
    extra += l.base_delay_ns;
    if (l.jitter_ns > 0) extra += rng_.below(l.jitter_ns);
    if (l.loss_ppm > 0) {
      int lost = 0;
      while (lost < kMaxRetransmissions && rng_.below(1'000'000) < l.loss_ppm) {
        extra += l.rto_ns;
        ++lost;
      }
      if (lost > 0) ++retransmissions_;
    }
  }
  for (const LinkKill& k : cfg_.kills) {
    if (now < k.start || now >= k.end) continue;
    if ((k.a == from && k.b == to) || (k.a == to && k.b == from)) {
      // Held until the link heals: the real channel layer reconnects and
      // retransmits exactly, so the frame arrives late, never lost.
      extra = std::max(extra, k.end - now);
    }
  }
  return extra;
}

}  // namespace ritas::sim
