// Wide-area overlay for the simulated network.
//
// The calibrated LAN model (sim/lan_model.h, frozen against Table 1) stays
// untouched: a WanModel produces only the EXTRA one-way delay a frame pays
// for crossing between sites, and plugs into SimNetwork::set_delay_policy
// on top of the LAN timing. Per-link delays are asymmetric (A->B != B->A,
// the §4.2 "more asymmetrical environment" the paper could not test),
// jitter and loss draw from an Rng seeded like everything else in the
// stack — same seed => bit-identical run.
//
// Loss never drops a frame: the stack assumes reliable FIFO channels (TCP
// in the real deployment), so a "lost" frame is modeled as the
// retransmission penalty TCP would pay — a seeded geometric number of RTOs
// added to the delay. Link kills model PR 5's kill_link churn hook the
// same way the explorer's partitions do: frames crossing a killed link are
// held until the window heals, exactly the reconnect-and-retransmit
// semantics of the real TCP channel layer.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/rng.h"
#include "core/types.h"
#include "sim/scheduler.h"

namespace ritas::sim {

/// One directed inter-site link. All randomness is integer-parameterized
/// (permille / ppm) so configurations serialize exactly.
struct WanLink {
  Time base_delay_ns = 0;  ///< one-way propagation delay
  Time jitter_ns = 0;      ///< uniform extra in [0, jitter_ns)
  std::uint32_t loss_ppm = 0;  ///< per-frame loss probability, parts/million
  Time rto_ns = 200 * kMillisecond;  ///< retransmission penalty per loss

  friend bool operator==(const WanLink&, const WanLink&) = default;
};

/// A killed link: frames between a and b (either direction) inside
/// [start, end) are held until the window heals. This is the simulated
/// analog of the real-TCP kill_link chaos hook — the channel layer
/// reconnects and retransmits exactly, so nothing is lost.
struct LinkKill {
  ProcessId a = 0;
  ProcessId b = 0;
  Time start = 0;
  Time end = 0;

  friend bool operator==(const LinkKill&, const LinkKill&) = default;
};

struct WanModelConfig {
  /// site_of[p] = site hosting process p. Intra-site traffic pays only the
  /// LAN model; inter-site traffic adds links[site_of[from]][site_of[to]].
  std::vector<std::uint32_t> site_of;
  /// Directed site-to-site link matrix (diagonal entries are ignored).
  std::vector<std::vector<WanLink>> links;
  std::vector<LinkKill> kills;
};

/// The canonical site topology: up to kCanonicalSites sites with measured
/// asymmetric one-way delays (ms scale, intra-continent to inter-continent
/// mix). The top-left 4x4 block is the original bench_wan table.
inline constexpr std::uint32_t kCanonicalSites = 8;
Time canonical_site_delay(std::uint32_t from_site, std::uint32_t to_site);

struct WanProfileOptions {
  std::uint32_t sites = 4;  ///< clamped to [1, kCanonicalSites]
  /// Per-link jitter as a fraction of the base delay, in permille
  /// (100 = +-0..10% of the one-way delay per frame).
  std::uint32_t jitter_permille = 0;
  std::uint32_t loss_ppm = 0;  ///< inter-site per-frame loss
  Time rto_ns = 200 * kMillisecond;
};

/// Builds the canonical WAN profile for n processes spread round-robin
/// over `sites` sites (process p lives at site p % sites).
WanModelConfig wan_profile(std::uint32_t n, const WanProfileOptions& opt = {});

/// Deterministic per-frame extra-delay source; drop-in for
/// SimNetwork::DelayPolicy via `policy()`. The model must outlive the
/// network it is attached to.
class WanModel {
 public:
  WanModel(WanModelConfig cfg, std::uint64_t seed);

  /// Extra one-way delay for a frame submitted now. Draws jitter/loss from
  /// the seeded Rng — calls must happen in a deterministic order (they do:
  /// the simulator is single-threaded and the scheduler is deterministic).
  Time extra_delay(ProcessId from, ProcessId to, Time now);

  /// Adapter matching SimNetwork::DelayPolicy (captures `this`).
  std::function<Time(ProcessId, ProcessId, Time)> policy() {
    return [this](ProcessId from, ProcessId to, Time now) {
      return extra_delay(from, to, now);
    };
  }

  const WanModelConfig& config() const { return cfg_; }
  std::uint32_t site_of(ProcessId p) const {
    return p < cfg_.site_of.size() ? cfg_.site_of[p] : 0;
  }
  /// Frames that drew at least one modeled retransmission.
  std::uint64_t retransmissions() const { return retransmissions_; }

 private:
  WanModelConfig cfg_;
  Rng rng_;
  std::uint64_t retransmissions_ = 0;
};

}  // namespace ritas::sim
