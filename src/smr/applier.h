// ExactlyOnceApplier — the replication-side half every SMR front shares.
//
// Commands arrive in total order from an atomic broadcast (one per group).
// Each carries a (client id, client sequence) pair; at-least-once clients
// retry and multi-submit, so the applier filters duplicates with a
// per-client floor+set window and applies survivors to the deterministic
// StateMachine. Replica (single group) and ShardedService (one applier per
// shard) both delegate here, so exactly-once semantics cannot drift
// between the two fronts.
//
// Wire format of a command: u64 client | u64 seq | bytes op.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>

#include "common/bytes.h"
#include "common/serialize.h"
#include "smr/state_machine.h"

namespace ritas::smr {

/// Per-client dedup window: a floor below which every sequence is known
/// applied, plus the sparse applied set above it.
struct ClientWindow {
  std::uint64_t floor = 0;        // all seqs below are applied
  std::set<std::uint64_t> above;  // applied seqs >= floor
  bool contains(std::uint64_t seq) const {
    return seq < floor || above.contains(seq);
  }
  void insert(std::uint64_t seq) {
    if (seq < floor) return;
    above.insert(seq);
    while (above.contains(floor)) {
      above.erase(floor);
      ++floor;
    }
  }
};

class ExactlyOnceApplier {
 public:
  /// `machine` must outlive the applier.
  explicit ExactlyOnceApplier(StateMachine& machine) : machine_(machine) {}

  ExactlyOnceApplier(const ExactlyOnceApplier&) = delete;
  ExactlyOnceApplier& operator=(const ExactlyOnceApplier&) = delete;

  /// The command framing submit paths put on the atomic broadcast.
  static Bytes encode_command(std::uint64_t client, std::uint64_t seq,
                              ByteView op) {
    Writer w(op.size() + 16);
    w.u64(client);
    w.u64(seq);
    w.raw(op);
    return std::move(w).take();
  }

  struct Applied {
    std::uint64_t client = 0;
    std::uint64_t seq = 0;
    Bytes result;
  };

  /// Feeds one totally-ordered command. Returns the application result, or
  /// nullopt when the command was skipped: a duplicate (counted) or an
  /// unparsable header (counted — a Byzantine submitter's bytes are
  /// skipped identically at every correct replica, so state stays equal).
  std::optional<Applied> on_command(ByteView payload) {
    Reader r(payload);
    const std::uint64_t client = r.u64();
    const std::uint64_t seq = r.u64();
    const Bytes op = r.raw(r.remaining());
    if (!r.ok()) {
      ++malformed_skipped_;
      return std::nullopt;
    }
    ClientWindow& win = applied_[client];
    if (win.contains(seq)) {
      ++duplicates_skipped_;
      return std::nullopt;
    }
    win.insert(seq);
    Applied out{client, seq, machine_.apply(op)};
    ++applied_count_;
    return out;
  }

  const StateMachine& machine() const { return machine_; }
  std::uint64_t applied_count() const { return applied_count_; }
  std::uint64_t duplicates_skipped() const { return duplicates_skipped_; }
  std::uint64_t malformed_skipped() const { return malformed_skipped_; }

 private:
  StateMachine& machine_;
  std::map<std::uint64_t, ClientWindow> applied_;
  std::uint64_t applied_count_ = 0;
  std::uint64_t duplicates_skipped_ = 0;
  std::uint64_t malformed_skipped_ = 0;
};

}  // namespace ritas::smr
