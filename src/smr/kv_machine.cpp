#include "smr/kv_machine.h"

#include "common/serialize.h"

namespace ritas::smr {

Bytes KvCommand::encode() const {
  Writer w(key.size() + value.size() + expected.size() + 16);
  w.u8(static_cast<std::uint8_t>(op));
  w.str(key);
  w.str(value);
  w.str(expected);
  return std::move(w).take();
}

std::optional<KvCommand> KvCommand::decode(ByteView bytes) {
  Reader r(bytes);
  KvCommand c;
  const std::uint8_t op = r.u8();
  c.key = r.str();
  c.value = r.str();
  c.expected = r.str();
  if (!r.ok() || !r.done() || op > static_cast<std::uint8_t>(Op::kGet)) {
    return std::nullopt;
  }
  c.op = static_cast<Op>(op);
  return c;
}

std::optional<std::string> kv_key_of(ByteView command) {
  auto c = KvCommand::decode(command);
  if (!c) return std::nullopt;
  return std::move(c->key);
}

Bytes KvMachine::apply(ByteView command) {
  const auto c = KvCommand::decode(command);
  if (!c) return to_bytes("err");  // Byzantine payload: deterministic no-op
  switch (c->op) {
    case KvCommand::Op::kSet:
      map_[c->key] = c->value;
      return to_bytes("ok");
    case KvCommand::Op::kDel:
      map_.erase(c->key);
      return to_bytes("ok");
    case KvCommand::Op::kCas: {
      auto it = map_.find(c->key);
      if (it != map_.end() && it->second == c->expected) {
        it->second = c->value;
        return to_bytes("ok");
      }
      return to_bytes("fail");
    }
    case KvCommand::Op::kGet: {
      auto it = map_.find(c->key);
      return it != map_.end() ? to_bytes(it->second) : to_bytes("nil");
    }
  }
  return to_bytes("err");
}

Bytes KvMachine::snapshot() const {
  std::string d;
  for (const auto& [k, v] : map_) d += k + "=" + v + ";";
  return to_bytes(d);
}

}  // namespace ritas::smr
