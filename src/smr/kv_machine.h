// KvMachine — the canonical key-value StateMachine the examples, tests
// and benches replicate.
//
// Commands are SET / DEL / CAS / GET over string keys and values, encoded
// `u8 op | str key | str value | str expected` (Writer::str framing).
// Apply is deterministic and total: malformed or unknown-op commands are
// deterministic no-ops returning "err", so a Byzantine client's bytes
// leave every correct replica in the same state. `kv_key_of` exposes the
// routing key of an encoded command without applying it — that is what
// the sharded service hashes to pick the owning group.
#pragma once

#include <map>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "smr/state_machine.h"

namespace ritas::smr {

struct KvCommand {
  enum class Op : std::uint8_t { kSet = 0, kDel = 1, kCas = 2, kGet = 3 };
  Op op = Op::kSet;
  std::string key, value, expected;

  Bytes encode() const;
  /// nullopt on malformed bytes (never throws).
  static std::optional<KvCommand> decode(ByteView bytes);
};

/// Routing key of an encoded KvCommand: the command's `key` field, or
/// nullopt when the bytes do not parse (the caller then falls back to
/// hashing the raw command so routing stays deterministic).
std::optional<std::string> kv_key_of(ByteView command);

class KvMachine final : public StateMachine {
 public:
  /// SET -> "ok"; DEL -> "ok"; CAS -> "ok" if the swap happened else
  /// "fail"; GET -> the value or "nil"; malformed -> "err" no-op.
  Bytes apply(ByteView command) override;

  /// Canonical "k=v;" concatenation in key order.
  Bytes snapshot() const override;

  const std::map<std::string, std::string>& state() const { return map_; }

 private:
  std::map<std::string, std::string> map_;
};

}  // namespace ritas::smr
