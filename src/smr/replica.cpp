#include "smr/replica.h"

#include "common/log.h"
#include "common/serialize.h"

namespace ritas::smr {

Replica::Replica(ProtocolStack& stack, const InstanceId& root_id,
                 StateMachine& machine)
    : machine_(machine) {
  root_ = std::make_unique<AtomicBroadcast>(
      stack, nullptr, root_id,
      [this](ProcessId, std::uint64_t, Slice payload) {
        on_deliver(payload);
      });
  ab_ = root_.get();
}

void Replica::submit(std::uint64_t client, std::uint64_t seq, ByteView op) {
  Writer w(op.size() + 16);
  w.u64(client);
  w.u64(seq);
  w.raw(op);
  ab_->bcast(std::move(w).take());
}

void Replica::on_deliver(const Slice& payload) {
  Reader r(payload.view());
  const std::uint64_t client = r.u64();
  const std::uint64_t seq = r.u64();
  const Bytes op = r.raw(r.remaining());
  if (!r.ok()) {
    // A Byzantine replica submitted an unparsable command. Every correct
    // replica sees the same bytes in the same slot and skips it
    // identically, so consistency is unaffected.
    LOG_WARN("smr: skipping malformed command");
    return;
  }
  ClientWindow& win = applied_[client];
  if (win.contains(seq)) {
    ++duplicates_skipped_;
    return;  // retry or multi-replica submission: already applied
  }
  win.insert(seq);
  const Bytes result = machine_.apply(op);
  ++applied_count_;
  if (on_applied_) on_applied_(client, seq, result);
}

}  // namespace ritas::smr
