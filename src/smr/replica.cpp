#include "smr/replica.h"

#include "common/log.h"

namespace ritas::smr {

Replica::Replica(ProtocolStack& stack, const InstanceId& root_id,
                 StateMachine& machine)
    : applier_(machine) {
  root_ = std::make_unique<AtomicBroadcast>(
      stack, nullptr, root_id,
      [this](ProcessId, std::uint64_t, Slice payload) {
        on_deliver(payload);
      });
  ab_ = root_.get();
}

void Replica::submit(std::uint64_t client, std::uint64_t seq, ByteView op) {
  ab_->bcast(ExactlyOnceApplier::encode_command(client, seq, op));
}

void Replica::on_deliver(const Slice& payload) {
  const std::uint64_t malformed_before = applier_.malformed_skipped();
  const auto applied = applier_.on_command(payload.view());
  if (!applied) {
    if (applier_.malformed_skipped() > malformed_before) {
      // A Byzantine replica submitted an unparsable command. Every correct
      // replica sees the same bytes in the same slot and skips it
      // identically, so consistency is unaffected.
      LOG_WARN("smr: skipping malformed command");
    }
    return;
  }
  if (on_applied_) on_applied_(applied->client, applied->seq, applied->result);
}

}  // namespace ritas::smr
