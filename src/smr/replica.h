// Replica — state machine replication over the RITAS atomic broadcast.
//
// Each replica owns one AtomicBroadcast instance (the same root id across
// the group) and applies delivered commands to its StateMachine in total
// order. Client requests are identified by (client id, client sequence)
// and applied exactly once even when submitted through several replicas
// at once or retried (at-least-once clients, exactly-once application).
// Dedup and command framing live in ExactlyOnceApplier, shared with the
// sharded multi-group service (smr/sharded_service.h) — this class is the
// single-group (G=1) front.
//
// Wire format of a command: u64 client | u64 seq | bytes op.
#pragma once

#include <functional>
#include <memory>

#include "core/atomic_broadcast.h"
#include "core/stack.h"
#include "smr/applier.h"
#include "smr/state_machine.h"

namespace ritas::smr {

class Replica {
 public:
  /// Result callback: fires on THIS replica for every applied command
  /// (clients watch the replica they submitted through; all replicas
  /// compute the same results).
  using AppliedFn = std::function<void(std::uint64_t client, std::uint64_t seq,
                                       const Bytes& result)>;

  /// Creates the replica's atomic broadcast under `root_id` (must be the
  /// same at every replica) on the given stack. `machine` must outlive the
  /// replica.
  Replica(ProtocolStack& stack, const InstanceId& root_id, StateMachine& machine);

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Submits a client command through this replica. Duplicate (client,
  /// seq) pairs — retries, or the same request pushed through several
  /// replicas — are applied exactly once group-wide.
  void submit(std::uint64_t client, std::uint64_t seq, ByteView op);

  void set_on_applied(AppliedFn fn) { on_applied_ = std::move(fn); }

  std::uint64_t applied_count() const { return applier_.applied_count(); }
  std::uint64_t duplicates_skipped() const {
    return applier_.duplicates_skipped();
  }
  const StateMachine& machine() const { return applier_.machine(); }

 private:
  void on_deliver(const Slice& payload);

  ExactlyOnceApplier applier_;
  AtomicBroadcast* ab_ = nullptr;  // owned via root_ below
  std::unique_ptr<AtomicBroadcast> root_;
  AppliedFn on_applied_;
};

}  // namespace ritas::smr
