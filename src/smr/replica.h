// Replica — state machine replication over the RITAS atomic broadcast.
//
// Each replica owns one AtomicBroadcast instance (the same root id across
// the group) and applies delivered commands to its StateMachine in total
// order. Client requests are identified by (client id, client sequence)
// and applied exactly once even when submitted through several replicas
// at once or retried (at-least-once clients, exactly-once application).
//
// Wire format of a command: u64 client | u64 seq | bytes op.
#pragma once

#include <functional>
#include <map>
#include <set>

#include "core/atomic_broadcast.h"
#include "core/stack.h"
#include "smr/state_machine.h"

namespace ritas::smr {

class Replica {
 public:
  /// Result callback: fires on THIS replica for every applied command
  /// (clients watch the replica they submitted through; all replicas
  /// compute the same results).
  using AppliedFn = std::function<void(std::uint64_t client, std::uint64_t seq,
                                       const Bytes& result)>;

  /// Creates the replica's atomic broadcast under `root_id` (must be the
  /// same at every replica) on the given stack. `machine` must outlive the
  /// replica.
  Replica(ProtocolStack& stack, const InstanceId& root_id, StateMachine& machine);

  Replica(const Replica&) = delete;
  Replica& operator=(const Replica&) = delete;

  /// Submits a client command through this replica. Duplicate (client,
  /// seq) pairs — retries, or the same request pushed through several
  /// replicas — are applied exactly once group-wide.
  void submit(std::uint64_t client, std::uint64_t seq, ByteView op);

  void set_on_applied(AppliedFn fn) { on_applied_ = std::move(fn); }

  std::uint64_t applied_count() const { return applied_count_; }
  std::uint64_t duplicates_skipped() const { return duplicates_skipped_; }
  const StateMachine& machine() const { return machine_; }

 private:
  struct ClientWindow {
    std::uint64_t floor = 0;        // all seqs below are applied
    std::set<std::uint64_t> above;  // applied seqs >= floor
    bool contains(std::uint64_t seq) const {
      return seq < floor || above.contains(seq);
    }
    void insert(std::uint64_t seq) {
      if (seq < floor) return;
      above.insert(seq);
      while (above.contains(floor)) {
        above.erase(floor);
        ++floor;
      }
    }
  };

  void on_deliver(const Slice& payload);

  StateMachine& machine_;
  AtomicBroadcast* ab_ = nullptr;  // owned via roots_ below
  std::unique_ptr<AtomicBroadcast> root_;
  std::map<std::uint64_t, ClientWindow> applied_;
  AppliedFn on_applied_;
  std::uint64_t applied_count_ = 0;
  std::uint64_t duplicates_skipped_ = 0;
};

}  // namespace ritas::smr
