#include "smr/sharded_service.h"

#include <stdexcept>

namespace ritas::smr {

namespace {

// FNV-1a 64-bit then a splitmix64 finalizer. Chosen over std::hash because
// shard placement is part of the replicated protocol: every process (any
// platform, any standard library) must map a key to the same shard.
std::uint64_t stable_hash(ByteView bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::uint8_t b : bytes) {
    h ^= b;
    h *= 0x100000001b3ull;
  }
  h += 0x9e3779b97f4a7c15ull;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ull;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebull;
  return h ^ (h >> 31);
}

}  // namespace

ShardId shard_of_key(ByteView key, std::uint32_t shards) {
  if (shards == 0) throw std::invalid_argument("shard_of_key: zero shards");
  return static_cast<ShardId>(stable_hash(key) % shards);
}

ShardedService::ShardedService(Config cfg, const MachineFactory& factory)
    : cfg_(cfg) {
  if (cfg_.shards == 0) {
    throw std::invalid_argument("ShardedService: need at least one shard");
  }
  if (!factory) {
    throw std::invalid_argument("ShardedService: null machine factory");
  }
  machines_.reserve(cfg_.shards);
  appliers_.reserve(cfg_.shards);
  for (ShardId s = 0; s < cfg_.shards; ++s) {
    machines_.push_back(factory(s));
    appliers_.push_back(std::make_unique<ExactlyOnceApplier>(*machines_[s]));
  }
}

ShardId ShardedService::shard_of(ByteView op) const {
  if (cfg_.key_of) {
    if (auto key = cfg_.key_of(op)) {
      return shard_of_key(
          ByteView(reinterpret_cast<const std::uint8_t*>(key->data()),
                   key->size()),
          cfg_.shards);
    }
  }
  return shard_of_key(op, cfg_.shards);
}

ShardId ShardedService::submit(std::uint64_t client, std::uint64_t seq,
                               ByteView op) {
  const ShardId owner = shard_of(op);
  if (!submit_) throw std::logic_error("ShardedService: no submitter bound");
  submit_(owner, ExactlyOnceApplier::encode_command(client, seq, op));
  return owner;
}

ShardId ShardedService::submit_via(ShardId via, std::uint64_t client,
                                   std::uint64_t seq, ByteView op) {
  const ShardId owner = shard_of(op);
  if (owner != via) {
    forwarded_.fetch_add(1, std::memory_order_relaxed);  // wrong front: reroute
  }
  if (!submit_) throw std::logic_error("ShardedService: no submitter bound");
  submit_(owner, ExactlyOnceApplier::encode_command(client, seq, op));
  return owner;
}

void ShardedService::on_delivered(ShardId shard, ByteView command) {
  if (shard >= cfg_.shards) return;  // harness bug, not reachable from wire
  // Partition audit: a correct process only broadcasts a command on its
  // owning shard's group, so a delivered command whose key hashes
  // elsewhere came from a Byzantine replica. Every correct replica of the
  // shard sees the same slot and skips identically — a counted drop.
  if (command.size() >= 16) {
    const ByteView op = command.subspan(16);
    if (shard_of(op) != shard) {
      misrouted_dropped_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  const auto applied = appliers_[shard]->on_command(command);
  if (applied && on_applied_) {
    on_applied_(shard, applied->client, applied->seq, applied->result);
  }
}

std::uint64_t ShardedService::applied_total() const {
  std::uint64_t total = 0;
  for (const auto& a : appliers_) total += a->applied_count();
  return total;
}

}  // namespace ritas::smr
