// ShardedService — a partitioned keyspace served by G independent RITAS
// groups multiplexed over one shared transport mesh.
//
// Each shard is a full SMR group of its own: its own atomic broadcast
// (one ProtocolStack per (process, group), demultiplexed by GroupMux),
// its own deterministic StateMachine replica, its own exactly-once
// applier. The service is the glue every process runs on top:
//
//   * routing — `shard_of` hash-partitions client operations by routing
//     key (a stable FNV-1a/splitmix hash, identical across processes and
//     platforms; never std::hash). Requests submitted at the wrong shard
//     front are FORWARDED to the owner, never dropped — the `forwarded`
//     counter audits how often clients guessed wrong.
//   * framing — commands carry (client, seq) for exactly-once semantics,
//     shared with the single-group Replica via ExactlyOnceApplier.
//   * applying — `on_delivered(shard, bytes)` feeds shard s's decided
//     command stream to shard s's applier. A command whose routing key
//     does NOT belong to the delivering shard (a Byzantine replica
//     broadcast it on the wrong group) is a counted drop
//     (`misrouted_dropped`): every correct replica skips it identically,
//     so per-shard state stays consistent AND the partition invariant
//     (each key lives in exactly one shard) holds.
//
// The service is transport-agnostic: it never touches a stack directly.
// Harnesses (sim::ShardedCluster, the TCP Context, examples) bind a
// submitter that places a framed command on shard s's atomic broadcast
// and call on_delivered from the per-shard AB deliver callback.
//
// Threading follows the stacks it serves. In the single-thread and sim
// harnesses everything runs on one loop. Under the multi-core pipeline
// (ReactorPool) each shard's on_delivered runs on the reactor that owns
// that shard's group — per-shard state (machine, applier) is still
// touched by exactly one thread, the partition doubling as the ownership
// map. Only the service-wide tallies (forwarded, misrouted_dropped,
// applied_total) cross shards, so they are atomics; submit/submit_via
// are safe from any thread once bind_submitter's target is (reactors
// post through the pool). No clocks, no unseeded randomness.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "smr/applier.h"
#include "smr/state_machine.h"

namespace ritas::smr {

/// Index of one shard == one consensus group of the sharded deployment.
using ShardId = std::uint32_t;

/// Stable cross-process hash partition: FNV-1a over the key bytes, then a
/// splitmix64 finalizer so low-entropy keys still spread, mod `shards`.
ShardId shard_of_key(ByteView key, std::uint32_t shards);

class ShardedService {
 public:
  /// Places a framed command (u64 client | u64 seq | op) on shard
  /// `shard`'s atomic broadcast.
  using SubmitFn = std::function<void(ShardId shard, const Bytes& command)>;
  /// Extracts the routing key from an encoded operation; nullopt when the
  /// bytes don't parse (the service then hashes the raw bytes so routing
  /// stays deterministic for garbage too).
  using KeyOfFn = std::function<std::optional<std::string>(ByteView op)>;
  /// Builds shard `shard`'s state machine replica (called once per shard).
  using MachineFactory = std::function<std::unique_ptr<StateMachine>(ShardId)>;
  /// Fires on THIS process for every command applied to any local shard.
  using AppliedFn = std::function<void(ShardId shard, std::uint64_t client,
                                       std::uint64_t seq, const Bytes& result)>;

  struct Config {
    std::uint32_t shards = 1;
    /// Routing-key extractor (e.g. kv_key_of). Null => hash the raw op.
    KeyOfFn key_of;
  };

  /// `factory` must yield a deterministic machine per shard; every process
  /// of the deployment must construct identical factories.
  ShardedService(Config cfg, const MachineFactory& factory);

  ShardedService(const ShardedService&) = delete;
  ShardedService& operator=(const ShardedService&) = delete;

  /// Wires the outbound half; must be called before the first submit.
  void bind_submitter(SubmitFn fn) { submit_ = std::move(fn); }
  void set_on_applied(AppliedFn fn) { on_applied_ = std::move(fn); }

  std::uint32_t shards() const { return cfg_.shards; }

  /// Owning shard of an encoded operation.
  ShardId shard_of(ByteView op) const;

  /// Routes `op` to its owning shard and submits it there. Returns the
  /// shard that ordered the command.
  ShardId submit(std::uint64_t client, std::uint64_t seq, ByteView op);

  /// Same, for a request that arrived addressed to shard `via` (a client
  /// that guessed the partition). A wrong guess is forwarded to the owner
  /// — counted, never dropped.
  ShardId submit_via(ShardId via, std::uint64_t client, std::uint64_t seq,
                     ByteView op);

  /// Feeds one command decided by shard `shard`'s atomic broadcast, in
  /// that shard's total order. Malformed frames, duplicates and misroutes
  /// are counted skips — Byzantine bytes never throw.
  void on_delivered(ShardId shard, ByteView command);

  // --- per-shard state & stats -------------------------------------------
  const StateMachine& machine(ShardId s) const { return *machines_.at(s); }
  Bytes snapshot(ShardId s) const { return machines_.at(s)->snapshot(); }
  std::uint64_t applied_count(ShardId s) const {
    return appliers_.at(s)->applied_count();
  }
  std::uint64_t duplicates_skipped(ShardId s) const {
    return appliers_.at(s)->duplicates_skipped();
  }
  std::uint64_t malformed_skipped(ShardId s) const {
    return appliers_.at(s)->malformed_skipped();
  }

  // --- service-wide stats --------------------------------------------------
  std::uint64_t applied_total() const;
  /// Requests submitted at a non-owner front and rerouted to the owner.
  std::uint64_t forwarded() const {
    return forwarded_.load(std::memory_order_relaxed);
  }
  /// Delivered commands whose routing key belongs to another shard.
  std::uint64_t misrouted_dropped() const {
    return misrouted_dropped_.load(std::memory_order_relaxed);
  }

 private:
  Config cfg_;
  std::vector<std::unique_ptr<StateMachine>> machines_;
  std::vector<std::unique_ptr<ExactlyOnceApplier>> appliers_;
  SubmitFn submit_;
  AppliedFn on_applied_;
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> misrouted_dropped_{0};
};

}  // namespace ritas::smr
