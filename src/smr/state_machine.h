// Deterministic state machine interface for replication.
//
// The paper's opening argument for consensus is its equivalence to state
// machine replication [Schneider '90, cited as 23]. This module is the
// application-facing half of that equivalence: implement a deterministic
// `StateMachine`, hand it to a `Replica`, and the RITAS atomic broadcast
// keeps every correct replica's state identical — even with f Byzantine
// replicas in the group.
#pragma once

#include "common/bytes.h"

namespace ritas::smr {

class StateMachine {
 public:
  virtual ~StateMachine() = default;

  /// Applies one command and returns its result. MUST be deterministic:
  /// equal state + equal command => equal new state + equal result, on
  /// every replica. No clocks, no randomness, no I/O.
  virtual Bytes apply(ByteView command) = 0;

  /// Canonical serialization of the current state; replicas compare these
  /// to audit consistency (tests do; production systems would checkpoint).
  virtual Bytes snapshot() const = 0;
};

}  // namespace ritas::smr
