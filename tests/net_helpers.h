// Helpers for real-socket tests: free-port discovery on localhost.
#pragma once

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "net/tcp_transport.h"

namespace ritas::test {

/// Reserves `count` distinct free TCP ports by binding to port 0. The
/// sockets are closed before returning, so a race with other processes is
/// possible but vanishingly rare in this environment.
inline std::vector<std::uint16_t> free_ports(std::size_t count) {
  std::vector<int> fds;
  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < count; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      throw std::runtime_error("bind() failed");
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    ports.push_back(ntohs(addr.sin_port));
    fds.push_back(fd);
  }
  for (int fd : fds) ::close(fd);
  return ports;
}

inline std::vector<net::PeerAddr> local_peers(const std::vector<std::uint16_t>& ports) {
  std::vector<net::PeerAddr> peers;
  for (auto p : ports) peers.push_back(net::PeerAddr{"127.0.0.1", p});
  return peers;
}

}  // namespace ritas::test
