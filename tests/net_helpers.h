// Helpers for real-socket tests: free-port discovery on localhost and a
// hand-rolled wire peer for adversarial channel tests.
#pragma once

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <vector>

#include "common/serialize.h"
#include "crypto/hmac.h"
#include "net/tcp_transport.h"

namespace ritas::test {

/// Reserves `count` distinct free TCP ports by binding to port 0. The
/// sockets are closed before returning, so a race with other processes is
/// possible but vanishingly rare in this environment.
inline std::vector<std::uint16_t> free_ports(std::size_t count) {
  std::vector<int> fds;
  std::vector<std::uint16_t> ports;
  for (std::size_t i = 0; i < count; ++i) {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) throw std::runtime_error("socket() failed");
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
      ::close(fd);
      throw std::runtime_error("bind() failed");
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    ports.push_back(ntohs(addr.sin_port));
    fds.push_back(fd);
  }
  for (int fd : fds) ::close(fd);
  return ports;
}

inline std::vector<net::PeerAddr> local_peers(const std::vector<std::uint16_t>& ports) {
  std::vector<net::PeerAddr> peers;
  for (auto p : ports) peers.push_back(net::PeerAddr{"127.0.0.1", p});
  return peers;
}

/// A hand-rolled wire peer that speaks the channel protocol of
/// docs/PROTOCOLS.md ("Reliable channel") from scratch — an independent
/// implementation of the handshake and frame formats, used both to
/// cross-check the wire spec and to inject adversarial traffic (tampered
/// MACs, stale counters, replays from old sessions, malformed handshakes)
/// that TcpTransport itself can never be coaxed into producing.
class RawPeer {
 public:
  /// Prepares a dialer impersonating process `self_id` toward the victim
  /// listening on `port`. `key` is the pairwise secret s_{self,victim}
  /// (pass the real one to model an insider, a wrong one for an outsider).
  RawPeer(std::uint16_t port, std::uint32_t self_id, std::uint32_t victim_id,
          Bytes key)
      : port_(port), self_(self_id), victim_(victim_id), key_(std::move(key)) {}

  ~RawPeer() { close(); }

  /// TCP-connects to the victim, retrying while its listener comes up
  /// (the victim binds inside start(), which runs on its own thread).
  /// Throws on persistent failure.
  void connect(int timeout_ms = 5000) {
    close();
    for (int waited = 0;; waited += 10) {
      fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd_ < 0) throw std::runtime_error("RawPeer: socket() failed");
      int one = 1;
      ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      sockaddr_in addr{};
      addr.sin_family = AF_INET;
      addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
      addr.sin_port = htons(port_);
      if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
        return;
      }
      ::close(fd_);
      fd_ = -1;
      if (waited >= timeout_ms) throw std::runtime_error("RawPeer: connect() failed");
      ::usleep(10'000);
    }
  }

  /// Runs the full dialer handshake (HELLO -> REPLY -> CONFIRM) with
  /// `nonce_d`, deriving the session id and learning the victim's receive
  /// floor. Returns false if the victim hung up or the REPLY is malformed.
  bool handshake(std::uint64_t nonce_d, std::uint64_t my_rx_expected = 0) {
    nonce_d_ = nonce_d;
    Writer hello(18);
    hello.u32(kMagic);
    hello.u8(kVersion);
    hello.u8(1);  // authenticate
    hello.u32(self_);
    hello.u64(nonce_d);
    send_raw(hello.data());
    Bytes reply(26 + 32);
    if (!recv_exact(reply.data(), reply.size())) return false;
    Reader r(ByteView(reply.data(), 26));
    if (r.u32() != kMagic || r.u8() != kVersion || r.u8() != 1) return false;
    if (r.u32() != victim_) return false;
    nonce_a_ = r.u64();
    acked_ = r.u64();
    sid_ = derive_sid();
    Writer confirm(8 + 32);
    confirm.u64(my_rx_expected);
    const auto mac = hs_mac('d', my_rx_expected);
    confirm.raw(ByteView(mac.data(), mac.size()));
    send_raw(confirm.data());
    return true;
  }

  /// Encodes one well-formed data frame (header, body, MAC) for the given
  /// session/counter. Tests mutate the result to forge variants.
  Bytes make_frame(std::uint64_t sid, std::uint64_t counter, ByteView body) const {
    Writer w(20 + body.size() + 32);
    w.u32(static_cast<std::uint32_t>(body.size()));
    w.u64(sid);
    w.u64(counter);
    w.raw(body);
    Writer macin(24);
    macin.u32(self_);
    macin.u32(victim_);
    macin.u64(sid);
    macin.u64(counter);
    const auto mac = hmac_sha256_2(key_, macin.data(), body);
    w.raw(ByteView(mac.data(), mac.size()));
    return std::move(w).take();
  }

  /// Sends a well-formed frame under the current session.
  void send_frame(std::uint64_t counter, ByteView body) {
    send_raw(make_frame(sid_, counter, body));
  }

  void send_raw(ByteView data) {
    std::size_t off = 0;
    while (off < data.size()) {
      const ssize_t k =
          ::send(fd_, data.data() + off, data.size() - off, MSG_NOSIGNAL);
      if (k <= 0) throw std::runtime_error("RawPeer: send() failed");
      off += static_cast<std::size_t>(k);
    }
  }

  void close() {
    if (fd_ >= 0) {
      ::close(fd_);
      fd_ = -1;
    }
  }

  std::uint64_t sid() const { return sid_; }
  /// The victim's receive floor from the last REPLY (counters below this
  /// were already delivered to it).
  std::uint64_t acked() const { return acked_; }

 private:
  static constexpr std::uint32_t kMagic = 0x52495441;
  static constexpr std::uint8_t kVersion = 2;

  Sha256::Digest hs_mac(char label, std::uint64_t counter_field) const {
    Writer w(40);
    w.raw(to_bytes("RITAS-hs-"));
    w.u8(static_cast<std::uint8_t>(label));
    w.u32(self_);     // dialer
    w.u32(victim_);   // acceptor
    w.u64(nonce_d_);
    w.u64(nonce_a_);
    w.u64(counter_field);
    return hmac_sha256(key_, w.data());
  }

  std::uint64_t derive_sid() const {
    const auto mac = hs_mac('s', 0);
    Reader r(ByteView(mac.data(), 8));
    const std::uint64_t sid = r.u64();
    return sid == 0 ? 1 : sid;
  }

  bool recv_exact(std::uint8_t* buf, std::size_t len) {
    std::size_t off = 0;
    while (off < len) {
      const ssize_t k = ::recv(fd_, buf + off, len - off, 0);
      if (k <= 0) return false;
      off += static_cast<std::size_t>(k);
    }
    return true;
  }

  std::uint16_t port_;
  std::uint32_t self_, victim_;
  Bytes key_;
  int fd_ = -1;
  std::uint64_t nonce_d_ = 0, nonce_a_ = 0, sid_ = 0, acked_ = 0;
};

}  // namespace ritas::test
