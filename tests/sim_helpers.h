// Shared helpers for protocol tests driven through the simulated cluster.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "core/atomic_broadcast.h"
#include "core/binary_consensus.h"
#include "core/echo_broadcast.h"
#include "core/multivalued_consensus.h"
#include "core/reliable_broadcast.h"
#include "core/vector_consensus.h"
#include "sim/cluster.h"

namespace ritas::test {

using sim::Cluster;
using sim::ClusterOptions;
using sim::Time;

constexpr Time kDeadline = 120 * sim::kSecond;

/// Per-process capture of one value (decision or delivery).
template <typename T>
struct Capture {
  std::vector<std::optional<T>> got;
  explicit Capture(std::uint32_t n) : got(n) {}

  auto sink(ProcessId p) {
    return [this, p](T v) { got[p] = std::move(v); };
  }
  bool all_set(const std::vector<ProcessId>& who) const {
    for (ProcessId p : who) {
      if (!got[p].has_value()) return false;
    }
    return true;
  }
  bool agree(const std::vector<ProcessId>& who) const {
    if (who.empty()) return true;
    const auto& first = got[who.front()];
    for (ProcessId p : who) {
      if (!(got[p] == first)) return false;
    }
    return true;
  }
};

/// Runs one binary consensus across all live processes; proposals[p] is
/// p's input. Returns per-process decisions via the capture.
inline Capture<bool> run_binary_consensus(Cluster& c,
                                          const std::vector<bool>& proposals,
                                          std::uint64_t root_seq = 1) {
  Capture<bool> cap(c.n());
  std::vector<BcAlgorithm*> insts(c.n(), nullptr);
  const InstanceId id = InstanceId::root(ProtocolType::kBinaryConsensus, root_seq);
  for (ProcessId p : c.live()) {
    insts[p] = &c.create_bc(p, id, Attribution::kAgreement,
                                               cap.sink(p));
  }
  for (ProcessId p : c.live()) {
    c.call(p, [&, p] { insts[p]->propose(proposals[p]); });
  }
  c.run_until([&] { return cap.all_set(c.correct_set()); }, kDeadline);
  return cap;
}

inline Capture<std::optional<Bytes>> run_mvc(
    Cluster& c, const std::vector<Bytes>& proposals, std::uint64_t root_seq = 1) {
  Capture<std::optional<Bytes>> cap(c.n());
  std::vector<MultiValuedConsensus*> insts(c.n(), nullptr);
  const InstanceId id =
      InstanceId::root(ProtocolType::kMultiValuedConsensus, root_seq);
  for (ProcessId p : c.live()) {
    insts[p] = &c.create_root<MultiValuedConsensus>(p, id, Attribution::kAgreement,
                                                    cap.sink(p));
  }
  for (ProcessId p : c.live()) {
    c.call(p, [&, p] { insts[p]->propose(proposals[p]); });
  }
  c.run_until([&] { return cap.all_set(c.correct_set()); }, kDeadline);
  return cap;
}

inline Capture<VectorConsensus::Vector> run_vc(
    Cluster& c, const std::vector<Bytes>& proposals, std::uint64_t root_seq = 1) {
  Capture<VectorConsensus::Vector> cap(c.n());
  std::vector<VectorConsensus*> insts(c.n(), nullptr);
  const InstanceId id = InstanceId::root(ProtocolType::kVectorConsensus, root_seq);
  for (ProcessId p : c.live()) {
    insts[p] = &c.create_root<VectorConsensus>(p, id, Attribution::kAgreement,
                                               cap.sink(p));
  }
  for (ProcessId p : c.live()) {
    c.call(p, [&, p] { insts[p]->propose(proposals[p]); });
  }
  c.run_until([&] { return cap.all_set(c.correct_set()); }, kDeadline);
  return cap;
}

/// Ordered per-process delivery log for broadcast protocols.
struct DeliveryLog {
  std::vector<std::vector<Bytes>> by_process;
  explicit DeliveryLog(std::uint32_t n) : by_process(n) {}
  auto sink(ProcessId p) {
    return [this, p](Slice b) { by_process[p].push_back(b.to_bytes()); };
  }
  bool everyone_has(const std::vector<ProcessId>& who, std::size_t count) const {
    for (ProcessId p : who) {
      if (by_process[p].size() < count) return false;
    }
    return true;
  }
};

inline ClusterOptions fast_lan(std::uint32_t n, std::uint64_t seed) {
  ClusterOptions o;
  o.n = n;
  o.seed = seed;
  // Tests don't need calibrated timing; shrink constants so big sweeps run
  // quickly, keep jitter for schedule diversity.
  o.lan.cpu_send_ns = 5'000;
  o.lan.cpu_recv_ns = 5'000;
  o.lan.switch_latency_ns = 10'000;
  o.lan.jitter_ns = 40'000;
  return o;
}

}  // namespace ritas::test
