// Adversarial behaviours beyond the paper's faultload: network-scheduling
// adversaries (slow links, skewed cliques), omission attackers, message
// floods against the out-of-context table, and malformed bytes aimed at
// every protocol layer. Safety (agreement/total order) must survive all of
// it; liveness must survive everything but the impossible.
#include <gtest/gtest.h>

#include "sim/oracles.h"
#include "sim_helpers.h"

namespace ritas {
namespace {

using test::Cluster;
using test::fast_lan;
using test::kDeadline;
using test::run_binary_consensus;
using test::run_mvc;

TEST(Adversarial, SlowVictimStillDecides) {
  // The network delays every frame to/from process 2 by 5 ms: the others
  // must not wait for it (n-f quorums), and it must still decide late.
  test::ClusterOptions o = fast_lan(4, 1);
  Cluster c(o);
  c.network().set_delay_policy([](ProcessId from, ProcessId to, sim::Time) {
    return (from == 2 || to == 2) ? 5 * sim::kMillisecond : 0;
  });
  const std::vector<bool> proposals{true, true, true, true};
  auto cap = run_binary_consensus(c, proposals);
  sim::oracle::Report rep;
  sim::oracle::check_bc(rep, c.correct_set(), proposals, cap.got);
  EXPECT_TRUE(rep.ok()) << rep.text();
}

TEST(Adversarial, SkewedCliquesAgree) {
  // {0,1} talk fast among themselves, {2,3} too, but cross-clique traffic
  // is slow — a classic scheduler attack against split proposals.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    test::ClusterOptions o = fast_lan(4, 40 + seed);
    Cluster c(o);
    c.network().set_delay_policy([](ProcessId from, ProcessId to, sim::Time) {
      const bool cross = (from < 2) != (to < 2);
      return cross ? 3 * sim::kMillisecond : 0;
    });
    const std::vector<bool> proposals{true, true, false, false};
    auto cap = run_binary_consensus(c, proposals);
    sim::oracle::Report rep;
    sim::oracle::check_bc(rep, c.correct_set(), proposals, cap.got);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << ": " << rep.text();
  }
}

TEST(Adversarial, MultiRoundExecutionsHappenAndStayCorrect) {
  // Under clique skew + split proposals some executions must need > 1
  // round — the multi-round machinery (validation across rounds, coin,
  // halt-after-decide) is actually exercised.
  std::uint64_t total_rounds = 0, total_decided = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    test::ClusterOptions o = fast_lan(4, 60 + seed);
    o.lan.jitter_ns = 600'000;
    Cluster c(o);
    c.network().set_delay_policy([](ProcessId from, ProcessId to, sim::Time) {
      const bool cross = (from < 2) != (to < 2);
      return cross ? 2 * sim::kMillisecond : 0;
    });
    const std::vector<bool> proposals{true, true, false, false};
    auto cap = run_binary_consensus(c, proposals);
    sim::oracle::Report rep;
    sim::oracle::check_bc(rep, c.correct_set(), proposals, cap.got);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << ": " << rep.text();
    total_rounds += c.total_metrics().bc_rounds_total;
    total_decided += c.total_metrics().bc_decided;
  }
  EXPECT_GT(total_rounds, total_decided) << "no execution needed a second round";
}

TEST(Adversarial, OmissionAttackerIsACrash) {
  // A process that silently drops all its outbound traffic must look like
  // a crash to everyone else — and the stack tolerates f = 1 of those.
  class Omitter : public Adversary {
   public:
    bool omit_to(ProcessId) override { return true; }
  };
  test::ClusterOptions o = fast_lan(4, 2);
  o.byzantine = {0};
  o.adversary_factory = [] { return std::make_unique<Omitter>(); };
  Cluster c(o);
  const std::vector<Bytes> proposals(4, to_bytes("v"));
  auto cap = run_mvc(c, proposals);
  sim::oracle::Report rep;
  sim::oracle::check_mvc(rep, c.correct_set(), proposals, cap.got);
  EXPECT_TRUE(rep.ok()) << rep.text();
  // All correct processes proposed "v": the decision must be exactly it,
  // not the default value.
  for (ProcessId p : c.correct_set()) {
    ASSERT_TRUE(cap.got[p].has_value());
    ASSERT_TRUE(cap.got[p]->has_value());
    EXPECT_EQ(to_string(**cap.got[p]), "v");
  }
}

TEST(Adversarial, SelectiveOmissionToOneVictim) {
  // Attacker only omits messages to process 1; quorums route around it.
  class Selective : public Adversary {
   public:
    bool omit_to(ProcessId to) override { return to == 1; }
  };
  test::ClusterOptions o = fast_lan(4, 3);
  o.byzantine = {0};
  o.adversary_factory = [] { return std::make_unique<Selective>(); };
  Cluster c(o);
  const std::vector<bool> proposals{true, true, true, true};
  auto cap = run_binary_consensus(c, proposals);
  sim::oracle::Report rep;
  sim::oracle::check_bc(rep, c.correct_set(), proposals, cap.got);
  EXPECT_TRUE(rep.ok()) << rep.text();
  for (ProcessId p : c.correct_set()) EXPECT_TRUE(*cap.got[p]);
}

TEST(Adversarial, GarbageFramesAtEveryLayerAreDropped) {
  // Hand-craft malformed messages addressed to each protocol layer of a
  // running atomic broadcast; nothing may crash and the burst completes.
  Cluster c(fast_lan(4, 4));
  std::vector<AtomicBroadcast*> ab(4, nullptr);
  std::vector<std::uint64_t> delivered(4, 0);
  const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
  for (ProcessId p : c.live()) {
    ab[p] = &c.create_root<AtomicBroadcast>(
        p, id, [&delivered, p](ProcessId, std::uint64_t, Slice) { ++delivered[p]; });
  }
  c.call(0, [&] { ab[0]->bcast(to_bytes("legit")); });

  // Byzantine bytes "from" process 3, injected straight into p0's stack.
  auto inject = [&](Message m) { c.stack(0).on_packet(3, m.encode()); };
  Message m;
  m.path = id;  // direct hit on the AB instance (it takes no direct messages)
  m.tag = 77;
  inject(m);
  m.path = id.child({ProtocolType::kMultiValuedConsensus, 0});  // MVC layer
  m.tag = 1;
  m.payload = to_bytes("junk");
  inject(m);
  m.path = id.child({ProtocolType::kMultiValuedConsensus, 0})
               .child({ProtocolType::kBinaryConsensus, 0});  // BC layer
  inject(m);
  m.path = id.child({ProtocolType::kReliableBroadcast,
                     AtomicBroadcast::msg_seq(3, 0)});  // RB with bogus body
  m.tag = ReliableBroadcast::kInit;
  m.payload = Bytes(3, 0xff);
  inject(m);
  m.tag = 200;  // unknown tag
  inject(m);
  // Garbage that does not even decode.
  c.stack(0).on_packet(3, to_bytes("\xff\xff\xff total garbage"));

  ASSERT_TRUE(c.run_until(
      [&] {
        for (ProcessId p : c.live()) {
          if (delivered[p] < 1) return false;
        }
        return true;
      },
      kDeadline));
  EXPECT_GT(c.stack(0).metrics().invalid_dropped +
                c.stack(0).metrics().malformed_dropped +
                c.stack(0).metrics().unroutable_dropped,
            0u);
}

TEST(Adversarial, OocFloodCannotStopProgress) {
  // Process 3 floods p0 with far-future-instance messages before the AB
  // root even exists; the per-sender quota bounds memory and the real
  // workload still completes.
  Cluster c(fast_lan(4, 5));
  for (std::uint64_t k = 0; k < 10'000; ++k) {
    Message m;
    m.path = InstanceId::root(ProtocolType::kAtomicBroadcast, 0)
                 .child({ProtocolType::kReliableBroadcast,
                         AtomicBroadcast::msg_seq(3, 1'000'000 + k)});
    m.tag = ReliableBroadcast::kEcho;
    m.payload = to_bytes("flood");
    c.stack(0).on_packet(3, m.encode());
  }
  EXPECT_LE(c.stack(0).ooc_size(), c.stack(0).config().ooc_per_sender);
  EXPECT_GT(c.stack(0).metrics().ooc_evicted, 0u);

  std::vector<AtomicBroadcast*> ab(4, nullptr);
  std::vector<std::uint64_t> delivered(4, 0);
  const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
  for (ProcessId p : c.live()) {
    ab[p] = &c.create_root<AtomicBroadcast>(
        p, id, [&delivered, p](ProcessId, std::uint64_t, Slice) { ++delivered[p]; });
  }
  c.call(1, [&] { ab[1]->bcast(to_bytes("after the flood")); });
  ASSERT_TRUE(c.run_until([&] { return delivered[0] >= 1; }, kDeadline));
}

TEST(Adversarial, CrashPlusByzantineBeyondFBreaksNothingWithinF) {
  // n = 7 tolerates f = 2: one crash + one Byzantine simultaneously.
  test::ClusterOptions o = fast_lan(7, 6);
  o.crashed = {5};
  o.byzantine = {6};
  Cluster c(o);
  const std::vector<Bytes> proposals(7, to_bytes("combined"));
  auto cap = run_mvc(c, proposals);
  sim::oracle::Report rep;
  sim::oracle::check_mvc(rep, c.correct_set(), proposals, cap.got);
  EXPECT_TRUE(rep.ok()) << rep.text();
  for (ProcessId p : c.correct_set()) {
    ASSERT_TRUE(cap.got[p].has_value());
    ASSERT_TRUE(cap.got[p]->has_value());
    EXPECT_EQ(to_string(**cap.got[p]), "combined");
  }
}

TEST(Adversarial, BatchedTotalOrderSurvivesPaperByzantineAdversary) {
  // The paper's §4.2 Byzantine strategy (PaperByzantineAdversary, the
  // default for o.byzantine) against the *batched* wire format: corrupted
  // and equivocated batch frames from p2 must not break total order, and
  // the correct processes' batched workload still delivers completely.
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    test::ClusterOptions o = fast_lan(4, 180 + seed);
    o.byzantine = {2};
    o.stack.ab_batch.enabled = true;
    o.stack.ab_batch.max_batch_msgs = 4;
    Cluster c(o);
    std::vector<AtomicBroadcast*> ab(4, nullptr);
    std::vector<sim::oracle::AbLog> order(4);
    const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
    for (ProcessId p : c.live()) {
      ab[p] = &c.create_root<AtomicBroadcast>(
          p, id, [&order, p](ProcessId origin, std::uint64_t rbid, Slice payload) {
            order[p].push_back({origin, rbid, payload.to_bytes()});
          });
    }
    for (ProcessId p : c.correct_set()) {
      c.call(p, [&, p] {
        for (int i = 0; i < 8; ++i) ab[p]->bcast(to_bytes("b"));
        ab[p]->flush();
      });
    }
    ASSERT_TRUE(c.run_until(
        [&] {
          for (ProcessId p : c.correct_set()) {
            if (order[p].size() < 24) return false;
          }
          return true;
        },
        kDeadline))
        << "seed " << seed;
    c.run_all();
    // Batching shares one rbid per batch, so only the order oracle applies
    // (payload-exact prefix agreement), matching the explorer's AB checks.
    sim::oracle::Report rep;
    sim::oracle::ab_total_order(rep, c.correct_set(), order);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << ": " << rep.text();
    // Any corrupted batch frame that RB-delivered was a counted drop, and
    // batch-malformed drops are a subset of the invalid-drop count.
    EXPECT_GE(c.total_metrics().invalid_dropped,
              c.total_metrics().ab_batch_malformed);
  }
}

TEST(Adversarial, TotalOrderSurvivesSchedulerAttackDuringBursts) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    test::ClusterOptions o = fast_lan(4, 80 + seed);
    o.byzantine = {3};
    Cluster c(o);
    c.network().set_delay_policy([](ProcessId from, ProcessId to, sim::Time now) {
      // Time-varying skew: alternate which half of the group is slow.
      const bool odd_epoch = (now / (20 * sim::kMillisecond)) % 2 == 1;
      const bool target = odd_epoch ? (to < 2) : (to >= 2);
      (void)from;
      return target ? 2 * sim::kMillisecond : 0;
    });
    std::vector<AtomicBroadcast*> ab(4, nullptr);
    std::vector<sim::oracle::AbLog> order(4);
    sim::oracle::AbSent sent;
    const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
    for (ProcessId p : c.live()) {
      ab[p] = &c.create_root<AtomicBroadcast>(
          p, id, [&order, p](ProcessId origin, std::uint64_t rbid, Slice payload) {
            order[p].push_back({origin, rbid, payload.to_bytes()});
          });
    }
    for (int i = 0; i < 5; ++i) {
      for (ProcessId p : c.live()) {
        c.call(p, [&, p] {
          const std::uint64_t rbid = ab[p]->bcast(to_bytes("x"));
          if (c.correct(p)) sent[{p, rbid}] = to_bytes("x");
        });
      }
    }
    ASSERT_TRUE(c.run_until(
        [&] {
          for (ProcessId p : c.correct_set()) {
            if (order[p].size() < 20) return false;
          }
          return true;
        },
        kDeadline))
        << "seed " << seed;
    c.run_all();
    sim::oracle::Report rep;
    sim::oracle::check_ab(rep, c.correct_set(), order, sent);
    EXPECT_TRUE(rep.ok()) << "seed " << seed << ": " << rep.text();
  }
}

}  // namespace
}  // namespace ritas
