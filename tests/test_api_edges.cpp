// Public-API edge cases: Context lifecycle (stop wakes blocked receivers,
// idempotent stop, errors after stop), the delivered-root garbage
// collection behind rb/eb windows, and C-API buffer-size corners.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "net_helpers.h"
#include "ritas/context.h"
#include "ritas/ritas_c.h"

namespace ritas {
namespace {

using test::free_ports;
using test::local_peers;

std::vector<std::unique_ptr<Context>> make_cluster(std::uint32_t n) {
  const auto peers = local_peers(free_ports(n));
  std::vector<std::unique_ptr<Context>> ctxs;
  for (std::uint32_t p = 0; p < n; ++p) {
    Context::Options o;
    o.n = n;
    o.self = p;
    o.peers = peers;
    o.master_secret = to_bytes("edge-master");
    o.rng_seed = 2000 + p;
    ctxs.push_back(std::make_unique<Context>(o));
  }
  std::vector<std::thread> starters;
  for (auto& c : ctxs) starters.emplace_back([&c] { c->start(); });
  for (auto& t : starters) t.join();
  return ctxs;
}

TEST(ContextLifecycle, StopWakesBlockedReceiver) {
  auto cluster = make_cluster(4);
  std::atomic<bool> woke{false};
  std::thread blocked([&] {
    try {
      (void)cluster[0]->ab_recv();  // nothing will ever arrive
      ADD_FAILURE() << "recv returned without a delivery";
    } catch (const std::runtime_error&) {
      woke.store(true);  // the documented stop signal
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(woke.load());
  cluster[0]->stop();
  blocked.join();
  EXPECT_TRUE(woke.load());
  for (auto& c : cluster) c->stop();
}

TEST(ContextLifecycle, StopIsIdempotent) {
  auto cluster = make_cluster(4);
  cluster[1]->stop();
  cluster[1]->stop();  // second stop: no-op, no crash
  for (auto& c : cluster) c->stop();
  SUCCEED();
}

TEST(ContextLifecycle, ServiceCallAfterStopThrows) {
  auto cluster = make_cluster(4);
  cluster[2]->stop();
  EXPECT_THROW(cluster[2]->rb_bcast(to_bytes("late")), std::logic_error);
  for (auto& c : cluster) c->stop();
}

TEST(ContextLifecycle, DeliveredBroadcastRootsAreFreed) {
  // The receive-window roots of delivered broadcasts must be destroyed
  // (deferred GC), keeping the instance count bounded during long streams.
  auto cluster = make_cluster(4);
  const Metrics before = cluster[3]->metrics();
  for (int i = 0; i < 40; ++i) {
    cluster[0]->rb_bcast(to_bytes("gc-probe"));
    (void)cluster[3]->rb_recv();
  }
  // Give the reactor a beat to run its deferred GC.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  const Metrics after = cluster[3]->metrics();
  EXPECT_GE(after.msgs_received, before.msgs_received + 40);
  // Windows are 64 per origin x 2 protocols x 4 origins plus the AB tree;
  // 40 delivered instances must NOT have stacked on top permanently. We
  // can't see instance_count through the facade, so probe indirectly: the
  // stream above still works after far more than one window of traffic.
  for (int i = 0; i < 80; ++i) {
    cluster[1]->rb_bcast(to_bytes("beyond-one-window"));
    (void)cluster[3]->rb_recv();
  }
  for (auto& c : cluster) c->stop();
  SUCCEED();
}

TEST(ContextOptions, InvalidMembershipFailsFast) {
  // Construction validates the membership instead of letting a broken
  // configuration reach the TCP mesh (where it used to surface as a
  // confusing connect failure or an out-of-range peer lookup).
  auto base = [] {
    Context::Options o;
    o.n = 4;
    o.self = 0;
    o.peers = std::vector<net::PeerAddr>(4, net::PeerAddr{"127.0.0.1", 1});
    o.master_secret = to_bytes("v");
    return o;
  };
  {
    auto o = base();
    o.n = 3;
    o.peers.resize(3);  // n < 3f+1 for f = 1
    EXPECT_THROW(Context c(std::move(o)), std::invalid_argument);
  }
  {
    auto o = base();
    o.self = 4;  // self outside the group
    EXPECT_THROW(Context c(std::move(o)), std::invalid_argument);
  }
  {
    auto o = base();
    o.peers.resize(3);  // peer list shorter than n
    EXPECT_THROW(Context c(std::move(o)), std::invalid_argument);
  }
  {
    auto o = base();
    o.peers.push_back(net::PeerAddr{"127.0.0.1", 2});  // longer than n
    EXPECT_THROW(Context c(std::move(o)), std::invalid_argument);
  }
  {
    auto o = base();  // a valid membership constructs fine (no start())
    Context c(std::move(o));
  }
}

TEST(ContextOptions, NonsensicalKnobsFailFast) {
  auto base = [] {
    Context::Options o;
    o.n = 4;
    o.self = 1;
    o.peers = std::vector<net::PeerAddr>(4, net::PeerAddr{"127.0.0.1", 1});
    o.master_secret = to_bytes("v");
    return o;
  };
  {
    auto o = base();
    o.recv_window = 0;
    EXPECT_THROW(Context c(std::move(o)), std::invalid_argument);
  }
  {
    auto o = base();
    o.batch.enabled = true;
    o.batch.max_msgs = 0;
    EXPECT_THROW(Context c(std::move(o)), std::invalid_argument);
  }
  {
    auto o = base();
    o.batch.enabled = true;
    o.batch.max_bytes = 0;
    EXPECT_THROW(Context c(std::move(o)), std::invalid_argument);
  }
  {
    // Zero limits are harmless while batching is off.
    auto o = base();
    o.batch.max_msgs = 0;
    o.batch.max_bytes = 0;
    Context c(std::move(o));
  }
}

TEST(ContextLifecycle, TryRecvAndRecvForTimeout) {
  auto cluster = make_cluster(4);
  // Nothing queued: try_recv polls empty, recv_for times out (and both
  // return, rather than blocking like recv()).
  EXPECT_FALSE(cluster[0]->ab_try_recv().has_value());
  EXPECT_FALSE(cluster[0]->rb_try_recv().has_value());
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_FALSE(cluster[0]->ab_recv_for(std::chrono::milliseconds(30)).has_value());
  EXPECT_GE(std::chrono::steady_clock::now() - t0, std::chrono::milliseconds(25));

  // With a delivery queued, both modes return it.
  cluster[1]->ab_bcast(to_bytes("poll-me"));
  const auto got = cluster[2]->ab_recv_for(std::chrono::seconds(30));
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(to_string(got->payload), "poll-me");
  EXPECT_EQ(got->origin, 1u);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(30);
  std::optional<Context::AbDelivery> polled;
  while (!polled && std::chrono::steady_clock::now() < deadline) {
    polled = cluster[3]->ab_try_recv();
    if (!polled) std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_TRUE(polled.has_value());
  EXPECT_EQ(to_string(polled->payload), "poll-me");
  for (auto& c : cluster) c->stop();
}

TEST(ContextLifecycle, StopThrowsShutdownErrorSpecifically) {
  auto cluster = make_cluster(4);
  std::atomic<bool> typed{false};
  std::thread blocked([&] {
    try {
      (void)cluster[0]->ab_recv();
    } catch (const ShutdownError&) {
      typed.store(true);  // the precise v2 type, not just runtime_error
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  cluster[0]->stop();
  blocked.join();
  EXPECT_TRUE(typed.load());
  // After stop + drain, the non-blocking modes also report shutdown.
  EXPECT_THROW((void)cluster[0]->ab_try_recv(), ShutdownError);
  EXPECT_THROW((void)cluster[0]->ab_recv_for(std::chrono::milliseconds(1)),
               ShutdownError);
  for (auto& c : cluster) c->stop();
}

TEST(CApiEdges, MvcBufferTooSmall) {
  const auto ports = free_ports(4);
  std::array<ritas_t*, 4> r{};
  const std::uint8_t secret[] = "edge";
  for (std::uint32_t p = 0; p < 4; ++p) {
    r[p] = ritas_init(4, p, secret, sizeof(secret));
    for (std::uint32_t q = 0; q < 4; ++q) {
      ritas_proc_add_ipv4(r[p], q, "127.0.0.1", ports[q]);
    }
  }
  std::vector<std::thread> starters;
  for (auto* ctx : r) starters.emplace_back([ctx] { ritas_start(ctx); });
  for (auto& t : starters) t.join();

  const char* big = "a value that certainly does not fit in four bytes";
  std::array<long, 4> rc{};
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < 4; ++p) {
    threads.emplace_back([&, p] {
      std::uint8_t tiny[4];
      int bot = 0;
      rc[p] = ritas_mvc(r[p], reinterpret_cast<const std::uint8_t*>(big),
                        std::strlen(big), tiny, sizeof(tiny), &bot);
    });
  }
  for (auto& t : threads) t.join();
  for (long v : rc) EXPECT_EQ(v, RITAS_ETOOBIG);
  for (auto* ctx : r) ritas_destroy(ctx);
}

TEST(CApiEdges, NullArgumentsRejected) {
  EXPECT_EQ(ritas_rb_bcast(nullptr, nullptr, 0), RITAS_EINVAL);
  EXPECT_EQ(ritas_rb_recv(nullptr, nullptr, nullptr, 0), RITAS_EINVAL);
  EXPECT_EQ(ritas_bc(nullptr, 1), RITAS_EINVAL);
  EXPECT_EQ(ritas_vc(nullptr, nullptr, 0, nullptr, 0, nullptr), RITAS_EINVAL);
}

}  // namespace
}  // namespace ritas
