// Atomic broadcast: validity, agreement, total order, bursts, all three of
// the paper's faultloads, identifier encodings, and garbage collection.
#include "core/atomic_broadcast.h"

#include <gtest/gtest.h>

#include <map>

#include "sim_helpers.h"

namespace ritas {
namespace {

using test::Cluster;
using test::fast_lan;
using test::kDeadline;

struct AbLog {
  struct Entry {
    ProcessId origin;
    std::uint64_t rbid;
    Bytes payload;
    friend bool operator==(const Entry&, const Entry&) = default;
  };
  std::vector<std::vector<Entry>> by_process;
  explicit AbLog(std::uint32_t n) : by_process(n) {}
  auto sink(ProcessId p) {
    return [this, p](ProcessId origin, std::uint64_t rbid, Slice payload) {
      by_process[p].push_back(Entry{origin, rbid, payload.to_bytes()});
    };
  }
  bool everyone_has(const std::vector<ProcessId>& who, std::size_t k) const {
    for (ProcessId p : who) {
      if (by_process[p].size() < k) return false;
    }
    return true;
  }
};

std::vector<AtomicBroadcast*> make_ab(Cluster& c, AbLog& log) {
  std::vector<AtomicBroadcast*> ab(c.n(), nullptr);
  const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
  for (ProcessId p : c.live()) {
    ab[p] = &c.create_root<AtomicBroadcast>(p, id, log.sink(p));
  }
  return ab;
}

void expect_total_order(const Cluster& c, const AbLog& log,
                        const std::vector<ProcessId>& who) {
  (void)c;
  ASSERT_FALSE(who.empty());
  const auto& ref = log.by_process[who.front()];
  for (ProcessId p : who) {
    const auto& mine = log.by_process[p];
    const std::size_t k = std::min(ref.size(), mine.size());
    for (std::size_t i = 0; i < k; ++i) {
      EXPECT_EQ(mine[i], ref[i]) << "p" << p << " diverges at position " << i;
    }
  }
}

TEST(AtomicBroadcast, SingleMessageDeliveredEverywhere) {
  Cluster c(fast_lan(4, 1));
  AbLog log(4);
  auto ab = make_ab(c, log);
  c.call(0, [&] { ab[0]->bcast(to_bytes("solo")); });
  ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.live(), 1); }, kDeadline));
  for (ProcessId p : c.live()) {
    EXPECT_EQ(to_string(log.by_process[p][0].payload), "solo");
    EXPECT_EQ(log.by_process[p][0].origin, 0u);
  }
}

TEST(AtomicBroadcast, TotalOrderWithConcurrentSenders) {
  Cluster c(fast_lan(4, 2));
  AbLog log(4);
  auto ab = make_ab(c, log);
  const std::size_t kPer = 5;
  for (std::size_t i = 0; i < kPer; ++i) {
    for (ProcessId p : c.live()) {
      c.call(p, [&, p, i] {
        ab[p]->bcast(to_bytes("m" + std::to_string(p) + "-" + std::to_string(i)));
      });
    }
  }
  const std::size_t total = kPer * 4;
  ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.live(), total); },
                          kDeadline));
  expect_total_order(c, log, c.live());
  // No duplicates.
  for (ProcessId p : c.live()) {
    std::map<std::pair<ProcessId, std::uint64_t>, int> seen;
    for (const auto& e : log.by_process[p]) ++seen[{e.origin, e.rbid}];
    for (const auto& [id, count] : seen) EXPECT_EQ(count, 1) << id.first;
  }
}

TEST(AtomicBroadcast, FailStopFaultload) {
  test::ClusterOptions o = fast_lan(4, 3);
  o.crashed = {1};
  Cluster c(o);
  AbLog log(4);
  auto ab = make_ab(c, log);
  for (int i = 0; i < 4; ++i) {
    for (ProcessId p : c.live()) {
      c.call(p, [&, p] { ab[p]->bcast(to_bytes("x")); });
    }
  }
  ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.live(), 12); }, kDeadline));
  expect_total_order(c, log, c.live());
}

TEST(AtomicBroadcast, PaperByzantineFaultload) {
  // §4.2: one process attacks the BC and MVC layers while still sending its
  // burst share. Correct processes must deliver everything in total order.
  test::ClusterOptions o = fast_lan(4, 4);
  o.byzantine = {2};
  Cluster c(o);
  AbLog log(4);
  auto ab = make_ab(c, log);
  for (int i = 0; i < 4; ++i) {
    for (ProcessId p : c.live()) {
      c.call(p, [&, p, i] {
        ab[p]->bcast(to_bytes("b" + std::to_string(p) + std::to_string(i)));
      });
    }
  }
  ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.correct_set(), 16); },
                          kDeadline));
  expect_total_order(c, log, c.correct_set());
}

TEST(AtomicBroadcast, BurstFromOneSender) {
  Cluster c(fast_lan(4, 5));
  AbLog log(4);
  auto ab = make_ab(c, log);
  const std::size_t kBurst = 50;
  c.call(0, [&] {
    for (std::size_t i = 0; i < kBurst; ++i) {
      ab[0]->bcast(to_bytes("burst-" + std::to_string(i)));
    }
  });
  ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.live(), kBurst); },
                          kDeadline));
  expect_total_order(c, log, c.live());
  // Per-origin FIFO: rbids from one origin are delivered in order (the
  // deterministic (origin, rbid) per-round order guarantees it here).
  for (ProcessId p : c.live()) {
    std::uint64_t last = 0;
    bool first = true;
    for (const auto& e : log.by_process[p]) {
      if (!first) EXPECT_GT(e.rbid, last);
      last = e.rbid;
      first = false;
    }
  }
}

TEST(AtomicBroadcast, AgreementCostDropsWithBurstSize) {
  // Figure 7's mechanism: bigger bursts amortize the agreement broadcasts.
  auto ratio_for = [](std::size_t burst) {
    Cluster c(fast_lan(4, 77));
    AbLog log(4);
    auto ab = make_ab(c, log);
    c.call(0, [&] {
      for (std::size_t i = 0; i < burst; ++i) ab[0]->bcast(to_bytes("z"));
    });
    c.run_until([&] { return log.everyone_has(c.live(), burst); }, kDeadline);
    const Metrics m = c.total_metrics();
    return static_cast<double>(m.broadcasts_agreement()) /
           static_cast<double>(m.broadcasts_total());
  };
  const double small = ratio_for(2);
  const double large = ratio_for(200);
  EXPECT_GT(small, large);
  EXPECT_GT(small, 0.5);
  EXPECT_LT(large, 0.4);
}

TEST(AtomicBroadcast, JitterManySeeds) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    test::ClusterOptions o = fast_lan(4, 200 + seed);
    o.lan.jitter_ns = 300'000;
    Cluster c(o);
    AbLog log(4);
    auto ab = make_ab(c, log);
    for (int i = 0; i < 3; ++i) {
      for (ProcessId p : c.live()) {
        c.call(p, [&, p] { ab[p]->bcast(to_bytes("j")); });
      }
    }
    ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.live(), 12); }, kDeadline))
        << "seed " << seed;
    expect_total_order(c, log, c.live());
  }
}

TEST(AtomicBroadcast, GarbageCollectionBoundsInstanceCount) {
  Cluster c(fast_lan(4, 6));
  AbLog log(4);
  auto ab = make_ab(c, log);
  const std::size_t kBurst = 40;
  c.call(0, [&] {
    for (std::size_t i = 0; i < kBurst; ++i) ab[0]->bcast(to_bytes("gc"));
  });
  ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.live(), kBurst); },
                          kDeadline));
  c.run_all();
  // Delivered AB_MSG reliable broadcasts must have been freed (agreement
  // rounds within the GC grace window legitimately stay alive).
  const InstanceId ab_id = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
  std::size_t leftover_msg_rbs = 0;
  for (const auto& e : log.by_process[0]) {
    const InstanceId path = ab_id.child(
        {ProtocolType::kReliableBroadcast, AtomicBroadcast::msg_seq(e.origin, e.rbid)});
    if (c.stack(0).has_instance(path)) ++leftover_msg_rbs;
  }
  EXPECT_EQ(leftover_msg_rbs, 0u);
}

TEST(AtomicBroadcast, LargePayloads) {
  Cluster c(fast_lan(4, 7));
  AbLog log(4);
  auto ab = make_ab(c, log);
  const Bytes big(10000, 0x42);  // the paper's 10K experiments
  for (ProcessId p : c.live()) {
    c.call(p, [&, p] { ab[p]->bcast(Bytes(big)); });
  }
  ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.live(), 4); }, kDeadline));
  for (ProcessId p : c.live()) {
    for (const auto& e : log.by_process[p]) EXPECT_EQ(e.payload, big);
  }
}

class AbGroupSize : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(AbGroupSize, TotalOrderAcrossGroupSizes) {
  const std::uint32_t n = GetParam();
  Cluster c(fast_lan(n, 300 + n));
  AbLog log(n);
  auto ab = make_ab(c, log);
  for (ProcessId p : c.live()) {
    c.call(p, [&, p] { ab[p]->bcast(to_bytes("n" + std::to_string(p))); });
  }
  ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.live(), n); }, kDeadline));
  expect_total_order(c, log, c.live());
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, AbGroupSize, ::testing::Values(4u, 7u, 10u));

TEST(AtomicBroadcast, RbSeqEncodingRoundTrips) {
  AtomicBroadcast::RbKey key;
  ASSERT_TRUE(AtomicBroadcast::decode_rb_seq(AtomicBroadcast::msg_seq(3, 12345), key));
  EXPECT_FALSE(key.is_vect);
  EXPECT_EQ(key.origin, 3u);
  EXPECT_EQ(key.rbid, 12345u);
  ASSERT_TRUE(AtomicBroadcast::decode_rb_seq(AtomicBroadcast::vect_seq(7, 2), key));
  EXPECT_TRUE(key.is_vect);
  EXPECT_EQ(key.round, 7u);
  EXPECT_EQ(key.origin, 2u);
  EXPECT_FALSE(AtomicBroadcast::decode_rb_seq(1ULL << 63, key));
}

TEST(AtomicBroadcast, BatchFramingRoundTrips) {
  std::vector<Slice> msgs = {to_bytes("a"), Bytes{}, Bytes(300, 0x5a)};
  auto dec = AtomicBroadcast::decode_batch(AtomicBroadcast::encode_batch(msgs));
  ASSERT_TRUE(dec.has_value());
  ASSERT_EQ(dec->size(), msgs.size());
  for (std::size_t i = 0; i < msgs.size(); ++i) EXPECT_EQ((*dec)[i], msgs[i]);

  // Malformed framings all rejected: empty batch, impossible count,
  // truncated length prefix / body, trailing bytes.
  Writer empty;
  empty.u32(0);
  EXPECT_FALSE(AtomicBroadcast::decode_batch(std::move(empty).take()).has_value());
  Writer huge;
  huge.u32(0xffffffffu);
  EXPECT_FALSE(AtomicBroadcast::decode_batch(std::move(huge).take()).has_value());
  Writer truncated;
  truncated.u32(2);
  truncated.bytes(to_bytes("only-one"));
  EXPECT_FALSE(
      AtomicBroadcast::decode_batch(std::move(truncated).take()).has_value());
  Bytes enc = AtomicBroadcast::encode_batch(msgs);
  enc.pop_back();
  EXPECT_FALSE(AtomicBroadcast::decode_batch(std::move(enc)).has_value());
  Bytes trailing = AtomicBroadcast::encode_batch(msgs);
  trailing.push_back(0);
  EXPECT_FALSE(AtomicBroadcast::decode_batch(std::move(trailing)).has_value());
}

TEST(AtomicBroadcast, BatchUnpackSlicesAliasAndPinTheFrame) {
  // Zero-copy batch unpack: every decoded sub-message points into the
  // sealed frame, and any one of them keeps the frame alive after all
  // other references are gone.
  Slice survivor;
  const std::uint8_t* frame_base = nullptr;
  std::size_t frame_size = 0;
  {
    std::vector<Slice> msgs = {to_bytes("first"), to_bytes("second"),
                               Bytes(1000, 0x11)};
    Buffer frame = Buffer::own(AtomicBroadcast::encode_batch(msgs));
    frame_base = frame.data();
    frame_size = frame.size();
    auto dec = AtomicBroadcast::decode_batch(frame);
    ASSERT_TRUE(dec.has_value());
    ASSERT_EQ(dec->size(), 3u);
    for (const Slice& m : *dec) {
      EXPECT_GE(m.data(), frame_base);
      EXPECT_LE(m.data() + m.size(), frame_base + frame_size);
    }
    survivor = (*dec)[1];
  }  // frame handle and the other slices die here
  EXPECT_EQ(to_string(survivor.view()), "second");
  EXPECT_EQ(survivor.buffer().use_count(), 1);
  EXPECT_EQ(survivor.buffer().data(), frame_base);  // same block, still alive
}

TEST(AtomicBroadcast, BatchingPreservesTotalOrderAndCounts) {
  test::ClusterOptions o = fast_lan(4, 21);
  o.stack.ab_batch.enabled = true;
  o.stack.ab_batch.max_batch_msgs = 8;
  Cluster c(o);
  AbLog log(4);
  auto ab = make_ab(c, log);
  const std::size_t kPer = 25;
  for (ProcessId p : c.live()) {
    c.call(p, [&, p] {
      for (std::size_t i = 0; i < kPer; ++i) {
        ab[p]->bcast(to_bytes("b" + std::to_string(p) + "-" + std::to_string(i)));
      }
    });
  }
  const std::size_t total = kPer * 4;
  ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.live(), total); },
                          kDeadline));
  expect_total_order(c, log, c.live());
  // Per-origin FIFO survives batching: within one origin, payload index
  // order matches submission order.
  for (ProcessId p : c.live()) {
    std::vector<std::size_t> next(4, 0);
    for (const auto& e : log.by_process[p]) {
      const std::string want =
          "b" + std::to_string(e.origin) + "-" + std::to_string(next[e.origin]++);
      EXPECT_EQ(to_string(e.payload), want);
    }
  }
  const Metrics m = c.total_metrics();
  EXPECT_EQ(m.ab_batch_msgs, total);
  EXPECT_EQ(m.ab_delivered, total * 4);
  EXPECT_GT(m.ab_batches_sealed, 0u);
  EXPECT_LT(m.ab_batches_sealed, total);  // actually amortized
  EXPECT_EQ(m.ab_batch_malformed, 0u);
  // Fewer payload RBs than messages — the amortization Figure 4 measures.
  EXPECT_EQ(m.rb_started_payload, m.ab_batches_sealed);
}

TEST(AtomicBroadcast, BatchSealIsEventDriven) {
  // First message seals alone (pipeline idle); messages submitted while it
  // disseminates accumulate and seal on protocol events, never a clock.
  test::ClusterOptions o = fast_lan(4, 22);
  o.stack.ab_batch.enabled = true;
  o.stack.ab_batch.max_batch_msgs = 64;
  Cluster c(o);
  AbLog log(4);
  auto ab = make_ab(c, log);
  c.call(0, [&] {
    for (int i = 0; i < 5; ++i) ab[0]->bcast(to_bytes("e" + std::to_string(i)));
  });
  // Message 0 sealed immediately; 1..4 wait in the open batch.
  EXPECT_EQ(c.stack(0).metrics().ab_batches_sealed, 1u);
  EXPECT_EQ(ab[0]->open_batch_msgs(), 4u);
  c.call(0, [&] { ab[0]->flush(); });
  EXPECT_EQ(c.stack(0).metrics().ab_batches_sealed, 2u);
  EXPECT_EQ(ab[0]->open_batch_msgs(), 0u);
  ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.live(), 5); }, kDeadline));
  expect_total_order(c, log, c.live());
}

TEST(AtomicBroadcast, BatchByteLimitSeals) {
  test::ClusterOptions o = fast_lan(4, 23);
  o.stack.ab_batch.enabled = true;
  o.stack.ab_batch.max_batch_msgs = 1000;
  o.stack.ab_batch.max_batch_bytes = 256;
  Cluster c(o);
  AbLog log(4);
  auto ab = make_ab(c, log);
  const Bytes chunk(100, 0x7e);
  c.call(0, [&] {
    for (int i = 0; i < 7; ++i) ab[0]->bcast(Bytes(chunk));
  });
  // Seal 1: first message (idle pipeline). Then 100+4 byte entries hit the
  // 256-byte cap every third append while the pipeline is busy.
  EXPECT_GE(c.stack(0).metrics().ab_batches_sealed, 3u);
  c.call(0, [&] { ab[0]->flush(); });
  ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.live(), 7); }, kDeadline));
  expect_total_order(c, log, c.live());
}

TEST(AtomicBroadcast, BatchingByzantineFaultload) {
  test::ClusterOptions o = fast_lan(4, 24);
  o.byzantine = {2};
  o.stack.ab_batch.enabled = true;
  o.stack.ab_batch.max_batch_msgs = 4;
  Cluster c(o);
  AbLog log(4);
  auto ab = make_ab(c, log);
  for (int i = 0; i < 4; ++i) {
    for (ProcessId p : c.live()) {
      c.call(p, [&, p, i] {
        ab[p]->bcast(to_bytes("y" + std::to_string(p) + std::to_string(i)));
      });
    }
  }
  for (ProcessId p : c.live()) {
    c.call(p, [&, p] { ab[p]->flush(); });
  }
  ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.correct_set(), 16); },
                          kDeadline));
  expect_total_order(c, log, c.correct_set());
}

TEST(AtomicBroadcast, IdVectorEncodingRoundTrips) {
  std::vector<AtomicBroadcast::MsgId> ids = {{0, 0}, {1, 7}, {3, 1ULL << 39}};
  auto dec = AtomicBroadcast::decode_ids(AtomicBroadcast::encode_ids(ids));
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(*dec, ids);
  // Oversized counts rejected.
  Writer w;
  w.u32(0x7fffffff);
  EXPECT_FALSE(AtomicBroadcast::decode_ids(w.data()).has_value());
}

}  // namespace
}  // namespace ritas
