// Bignum arithmetic and the RSA baseline built on it.
#include "crypto/bignum.h"

#include <gtest/gtest.h>

#include "crypto/rsa.h"

namespace ritas {
namespace {

TEST(BigNum, ConstructionAndHex) {
  EXPECT_EQ(BigNum(0).to_hex(), "0");
  EXPECT_EQ(BigNum(255).to_hex(), "ff");
  EXPECT_EQ(BigNum(0x123456789abcdefULL).to_hex(), "123456789abcdef");
  EXPECT_EQ(BigNum::from_hex("deadbeefcafebabe1234").to_hex(),
            "deadbeefcafebabe1234");
}

TEST(BigNum, BytesRoundTrip) {
  const Bytes b = from_hex("0102030405060708090a0b0c");
  EXPECT_EQ(BigNum::from_bytes(b).to_bytes(), b);
  EXPECT_EQ(BigNum(0).to_bytes(), Bytes{0});
}

TEST(BigNum, Comparison) {
  EXPECT_TRUE(BigNum(1) < BigNum(2));
  EXPECT_TRUE(BigNum::from_hex("ffffffff") < BigNum::from_hex("100000000"));
  EXPECT_EQ(BigNum(7), BigNum(7));
  EXPECT_EQ(BigNum::compare(BigNum(9), BigNum(3)), 1);
}

TEST(BigNum, AddSubCarryChains) {
  const BigNum a = BigNum::from_hex("ffffffffffffffffffffffff");
  const BigNum one(1);
  const BigNum sum = BigNum::add(a, one);
  EXPECT_EQ(sum.to_hex(), "1000000000000000000000000");
  EXPECT_EQ(BigNum::sub(sum, one).to_hex(), a.to_hex());
  EXPECT_EQ(BigNum::sub(a, a).to_hex(), "0");
}

TEST(BigNum, MulKnownValues) {
  EXPECT_EQ(BigNum::mul(BigNum(0xffffffffULL), BigNum(0xffffffffULL)).to_hex(),
            "fffffffe00000001");
  const BigNum a = BigNum::from_hex("123456789abcdef0fedcba9876543210");
  const BigNum b = BigNum::from_hex("1000000000000001");
  EXPECT_EQ(BigNum::mul(a, b).to_hex(),
            "123456789abcdef2222222222222211fedcba9876543210");
  EXPECT_TRUE(BigNum::mul(a, BigNum(0)).is_zero());
}

TEST(BigNum, DivMod) {
  BigNum q, r;
  BigNum::divmod(BigNum(100), BigNum(7), q, r);
  EXPECT_EQ(q, BigNum(14));
  EXPECT_EQ(r, BigNum(2));
  const BigNum a = BigNum::from_hex("deadbeefdeadbeefdeadbeefdeadbeef");
  const BigNum b = BigNum::from_hex("123456789");
  BigNum::divmod(a, b, q, r);
  // Verify via reconstruction: a == q*b + r, r < b.
  EXPECT_EQ(BigNum::add(BigNum::mul(q, b), r), a);
  EXPECT_TRUE(r < b);
  EXPECT_THROW(BigNum::divmod(a, BigNum(0), q, r), std::domain_error);
}

TEST(BigNum, PowMod) {
  // 2^10 mod 1000 = 24
  EXPECT_EQ(BigNum::powmod(BigNum(2), BigNum(10), BigNum(1000)), BigNum(24));
  // Fermat: a^(p-1) mod p = 1 for prime p.
  const BigNum p = BigNum::from_hex("fffffffb");  // 4294967291, prime
  EXPECT_EQ(BigNum::powmod(BigNum(123456), BigNum::sub(p, BigNum(1)), p),
            BigNum(1));
  // Large exponentation cross-checked value: 3^1000 mod 2^127-1.
  const BigNum m = BigNum::from_hex("7fffffffffffffffffffffffffffffff");
  const BigNum r = BigNum::powmod(BigNum(3), BigNum(1000), m);
  EXPECT_EQ(BigNum::powmod(r, BigNum(1), m), r);  // sanity
}

TEST(BigNum, InvMod) {
  BigNum inv;
  ASSERT_TRUE(BigNum::invmod(BigNum(3), BigNum(11), inv));
  EXPECT_EQ(inv, BigNum(4));  // 3*4 = 12 = 1 mod 11
  ASSERT_TRUE(BigNum::invmod(BigNum(65537), BigNum::from_hex("fffffffbfffffff5"), inv));
  EXPECT_EQ(BigNum::mulmod(BigNum(65537), inv, BigNum::from_hex("fffffffbfffffff5")),
            BigNum(1));
  EXPECT_FALSE(BigNum::invmod(BigNum(6), BigNum(9), inv));  // gcd = 3
}

TEST(BigNum, PrimalityKnownAnswers) {
  Rng rng(1);
  for (std::uint64_t p : {2ULL, 3ULL, 5ULL, 61ULL, 2147483647ULL, 4294967291ULL}) {
    EXPECT_TRUE(BigNum::probably_prime(BigNum(p), rng)) << p;
  }
  for (std::uint64_t c : {1ULL, 4ULL, 561ULL /*Carmichael*/, 4294967295ULL}) {
    EXPECT_FALSE(BigNum::probably_prime(BigNum(c), rng)) << c;
  }
  // Mersenne prime 2^127 - 1.
  EXPECT_TRUE(BigNum::probably_prime(
      BigNum::from_hex("7fffffffffffffffffffffffffffffff"), rng));
}

TEST(BigNum, RandomPrimeHasRequestedSize) {
  Rng rng(7);
  const BigNum p = BigNum::random_prime(rng, 96);
  EXPECT_EQ(p.bit_length(), 96u);
  EXPECT_TRUE(BigNum::probably_prime(p, rng));
}

TEST(BigNum, RandomizedMulDivConsistency) {
  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    const BigNum a = BigNum::random_bits(rng, 200);
    const BigNum b = BigNum::random_bits(rng, 90);
    BigNum q, r;
    BigNum::divmod(a, b, q, r);
    EXPECT_EQ(BigNum::add(BigNum::mul(q, b), r), a);
    EXPECT_TRUE(r < b);
  }
}

// --- RSA baseline -----------------------------------------------------------

TEST(Rsa, SignVerifyRoundTrip) {
  Rng rng(42);
  const auto kp = RsaKeyPair::generate(rng, 512);
  const Bytes msg = to_bytes("sign me");
  const Bytes sig = rsa_sign(kp, msg);
  EXPECT_TRUE(rsa_verify(kp.pub, msg, sig));
}

TEST(Rsa, TamperedMessageRejected) {
  Rng rng(43);
  const auto kp = RsaKeyPair::generate(rng, 512);
  const Bytes sig = rsa_sign(kp, to_bytes("original"));
  EXPECT_FALSE(rsa_verify(kp.pub, to_bytes("tampered"), sig));
}

TEST(Rsa, TamperedSignatureRejected) {
  Rng rng(44);
  const auto kp = RsaKeyPair::generate(rng, 512);
  const Bytes msg = to_bytes("msg");
  Bytes sig = rsa_sign(kp, msg);
  sig[sig.size() / 2] ^= 0x01;
  EXPECT_FALSE(rsa_verify(kp.pub, msg, sig));
  EXPECT_FALSE(rsa_verify(kp.pub, msg, Bytes{}));
}

TEST(Rsa, WrongKeyRejected) {
  Rng rng(45);
  const auto kp1 = RsaKeyPair::generate(rng, 512);
  const auto kp2 = RsaKeyPair::generate(rng, 512);
  const Bytes msg = to_bytes("msg");
  EXPECT_FALSE(rsa_verify(kp2.pub, msg, rsa_sign(kp1, msg)));
}

TEST(Rsa, EraSizedKeysWork) {
  // Rampart's 300-bit moduli (the paper's related-work reference point).
  Rng rng(46);
  const auto kp = RsaKeyPair::generate(rng, 300);
  EXPECT_GE(kp.pub.n.bit_length(), 296u);
  const Bytes msg = to_bytes("1994 called");
  EXPECT_TRUE(rsa_verify(kp.pub, msg, rsa_sign(kp, msg)));
}

}  // namespace
}  // namespace ritas
