// Randomized binary consensus: agreement, validity, termination (including
// multi-round runs forced by split proposals and jitter), Byzantine and
// crash faultloads, and the paper's one-round observation for identical
// proposals.
#include "core/binary_consensus.h"

#include <gtest/gtest.h>

#include "sim_helpers.h"

namespace ritas {
namespace {

using test::Cluster;
using test::fast_lan;
using test::run_binary_consensus;

TEST(BinaryConsensus, UnanimousOneDecidesOne) {
  Cluster c(fast_lan(4, 1));
  auto cap = run_binary_consensus(c, {true, true, true, true});
  for (ProcessId p : c.correct_set()) {
    ASSERT_TRUE(cap.got[p].has_value());
    EXPECT_TRUE(*cap.got[p]);
  }
}

TEST(BinaryConsensus, UnanimousZeroDecidesZero) {
  Cluster c(fast_lan(4, 2));
  auto cap = run_binary_consensus(c, {false, false, false, false});
  for (ProcessId p : c.correct_set()) {
    ASSERT_TRUE(cap.got[p].has_value());
    EXPECT_FALSE(*cap.got[p]);
  }
}

TEST(BinaryConsensus, UnanimousDecidesInOneRound) {
  // §4.3: with identical proposals the protocol always terminated in one
  // round in the experiments.
  Cluster c(fast_lan(4, 3));
  auto cap = run_binary_consensus(c, {true, true, true, true});
  ASSERT_TRUE(cap.all_set(c.correct_set()));
  const Metrics m = c.total_metrics();
  EXPECT_EQ(m.bc_rounds_total, m.bc_decided);  // every decision in round 1
  EXPECT_EQ(m.bc_coin_flips, 0u);
}

TEST(BinaryConsensus, MixedProposalsStillAgree) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    test::ClusterOptions o = fast_lan(4, 40 + seed);
    o.lan.jitter_ns = 200'000;  // force asymmetric schedules
    Cluster c(o);
    auto cap = run_binary_consensus(c, {true, false, true, false});
    ASSERT_TRUE(cap.all_set(c.correct_set())) << "seed " << seed;
    EXPECT_TRUE(cap.agree(c.correct_set())) << "seed " << seed;
  }
}

TEST(BinaryConsensus, MixedProposalsMajorityUsuallyWins) {
  // Validity only constrains unanimous inputs, but a 3-1 split on a
  // symmetric LAN overwhelmingly decides the majority; check agreement and
  // record that decisions happen.
  int decided_runs = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Cluster c(fast_lan(4, 60 + seed));
    auto cap = run_binary_consensus(c, {true, true, true, false});
    if (cap.all_set(c.correct_set())) {
      ++decided_runs;
      EXPECT_TRUE(cap.agree(c.correct_set()));
    }
  }
  EXPECT_EQ(decided_runs, 10);
}

TEST(BinaryConsensus, CrashFaultloadStillDecides) {
  test::ClusterOptions o = fast_lan(4, 5);
  o.crashed = {3};
  Cluster c(o);
  auto cap = run_binary_consensus(c, {true, true, true, true});
  ASSERT_TRUE(cap.all_set(c.correct_set()));
  EXPECT_TRUE(*cap.got[0]);
}

TEST(BinaryConsensus, PaperByzantineCannotImposeZero) {
  // The paper's attack: the Byzantine process always proposes 0. With all
  // correct processes proposing 1, validity forces the decision to 1 and
  // the validation rule filters the attacker's step values.
  test::ClusterOptions o = fast_lan(4, 6);
  o.byzantine = {3};
  Cluster c(o);
  auto cap = run_binary_consensus(c, {true, true, true, true});
  ASSERT_TRUE(cap.all_set(c.correct_set()));
  for (ProcessId p : c.correct_set()) EXPECT_TRUE(*cap.got[p]);
  // ... and still within one round, as in the paper's experiments.
  std::uint64_t rounds = 0, decided = 0;
  for (ProcessId p : c.correct_set()) {
    rounds += c.stack(p).metrics().bc_rounds_total;
    decided += c.stack(p).metrics().bc_decided;
  }
  EXPECT_EQ(rounds, decided);
}

TEST(BinaryConsensus, StubbornStepValueAttackerFilteredByValidation) {
  // Stronger than the paper's faultload: the attacker broadcasts 0 at every
  // step of every round regardless of the rules. Validation must ignore
  // those messages once they become illegal.
  class Stubborn : public Adversary {
   public:
    std::optional<bool> bc_proposal(bool) override { return false; }
    std::optional<std::uint8_t> bc_step_value(std::uint32_t, int,
                                              std::uint8_t) override {
      return 0;
    }
  };
  test::ClusterOptions o = fast_lan(4, 7);
  o.byzantine = {1};
  o.adversary_factory = [] { return std::make_unique<Stubborn>(); };
  Cluster c(o);
  auto cap = run_binary_consensus(c, {true, true, true, true});
  ASSERT_TRUE(cap.all_set(c.correct_set()));
  for (ProcessId p : c.correct_set()) EXPECT_TRUE(*cap.got[p]);
  // The attacker's illegal step-2/3 messages were dropped as invalid or
  // left pending; correct processes still decided 1.
}

TEST(BinaryConsensus, SilentByzantineIsJustACrash) {
  class Silent : public Adversary {
   public:
    std::optional<std::uint8_t> bc_step_value(std::uint32_t, int,
                                              std::uint8_t) override {
      return std::nullopt;  // never send anything
    }
  };
  test::ClusterOptions o = fast_lan(4, 8);
  o.byzantine = {2};
  o.adversary_factory = [] { return std::make_unique<Silent>(); };
  Cluster c(o);
  auto cap = run_binary_consensus(c, {false, false, false, false});
  ASSERT_TRUE(cap.all_set(c.correct_set()));
  for (ProcessId p : c.correct_set()) EXPECT_FALSE(*cap.got[p]);
}

class BcGroupSize : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(BcGroupSize, UnanimousAcrossGroupSizes) {
  const std::uint32_t n = GetParam();
  Cluster c(fast_lan(n, 80 + n));
  std::vector<bool> proposals(n, true);
  auto cap = run_binary_consensus(c, proposals);
  ASSERT_TRUE(cap.all_set(c.correct_set()));
  for (ProcessId p : c.correct_set()) EXPECT_TRUE(*cap.got[p]);
}

TEST_P(BcGroupSize, SplitProposalsAgreeAcrossGroupSizes) {
  const std::uint32_t n = GetParam();
  test::ClusterOptions o = fast_lan(n, 90 + n);
  o.lan.jitter_ns = 150'000;
  Cluster c(o);
  std::vector<bool> proposals(n);
  for (std::uint32_t p = 0; p < n; ++p) proposals[p] = (p % 2 == 0);
  auto cap = run_binary_consensus(c, proposals);
  ASSERT_TRUE(cap.all_set(c.correct_set()));
  EXPECT_TRUE(cap.agree(c.correct_set()));
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, BcGroupSize,
                         ::testing::Values(4u, 5u, 6u, 7u, 10u));

TEST(BinaryConsensus, ByzantineWithSplitCorrectProposalsManySeeds) {
  // The adversarial sweet spot: correct processes split 2-2... wait, n=4
  // has 3 correct; split 2-1 with a zero-stubborn Byzantine, many seeds.
  int agreed = 0;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    test::ClusterOptions o = fast_lan(4, 200 + seed);
    o.byzantine = {0};
    o.lan.jitter_ns = 250'000;
    Cluster c(o);
    auto cap = run_binary_consensus(c, {false, true, true, false});
    ASSERT_TRUE(cap.all_set(c.correct_set())) << "seed " << seed;
    if (cap.agree(c.correct_set())) ++agreed;
  }
  EXPECT_EQ(agreed, 15);
}

TEST(BinaryConsensus, DecisionVisibleThroughAccessors) {
  Cluster c(fast_lan(4, 9));
  test::Capture<bool> cap(4);
  std::vector<BcAlgorithm*> insts(4, nullptr);
  const InstanceId id = InstanceId::root(ProtocolType::kBinaryConsensus, 1);
  for (ProcessId p : c.live()) {
    insts[p] = &c.create_bc(p, id, Attribution::kAgreement,
                                               cap.sink(p));
    EXPECT_FALSE(insts[p]->active());
  }
  for (ProcessId p : c.live()) {
    c.call(p, [&, p] { insts[p]->propose(true); });
    EXPECT_TRUE(insts[p]->active());
  }
  ASSERT_TRUE(c.run_until([&] { return cap.all_set(c.correct_set()); },
                          test::kDeadline));
  EXPECT_TRUE(insts[0]->decided());
  EXPECT_TRUE(insts[0]->decision());
  EXPECT_EQ(insts[0]->decided_round(), 1u);
}

TEST(BinaryConsensus, DoubleProposeThrows) {
  Cluster c(fast_lan(4, 10));
  test::Capture<bool> cap(4);
  auto& bc = c.create_bc(
      0, InstanceId::root(ProtocolType::kBinaryConsensus, 1),
      Attribution::kAgreement, cap.sink(0));
  c.call(0, [&] { bc.propose(true); });
  EXPECT_THROW(bc.propose(false), std::logic_error);
}

TEST(BinaryConsensus, ChildSeqRoundTrips) {
  for (std::uint32_t n : {4u, 7u, 10u}) {
    for (std::uint32_t r : {1u, 2u, 77u}) {
      for (int s : {1, 2, 3}) {
        for (ProcessId j = 0; j < n; ++j) {
          const std::uint64_t seq = BinaryConsensus::child_seq(r, s, j, n);
          BinaryConsensus::ChildKey key;
          ASSERT_TRUE(BinaryConsensus::decode_child_seq(seq, n, key));
          EXPECT_EQ(key.round, r);
          EXPECT_EQ(key.step, s);
          EXPECT_EQ(key.origin, j);
        }
      }
    }
  }
  // Round 0 encodings are malformed by construction.
  BinaryConsensus::ChildKey key;
  EXPECT_FALSE(BinaryConsensus::decode_child_seq(0, 4, key));
}

}  // namespace
}  // namespace ritas
