// Buffer/Slice unit tests: refcount semantics, subslice arithmetic and
// clamping, lifetime (a slice pins its parent frame), and the explicit-copy
// boundary (to_bytes / Buffer::copy are the ONLY copies).
#include "common/buffer.h"

#include <gtest/gtest.h>

namespace ritas {
namespace {

TEST(Buffer, DefaultIsEmptyNull) {
  Buffer b;
  EXPECT_EQ(b.data(), nullptr);
  EXPECT_EQ(b.size(), 0u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.use_count(), 0);
}

TEST(Buffer, OwnAdoptsWithoutCopying) {
  Bytes src = to_bytes("adopt me");
  const std::uint8_t* p = src.data();
  Buffer b = Buffer::own(std::move(src));
  EXPECT_EQ(b.data(), p);  // same allocation: zero-copy adoption
  EXPECT_EQ(b.size(), 8u);
  EXPECT_EQ(b.use_count(), 1);
}

TEST(Buffer, CopyIsADistinctBlock) {
  const Bytes src = to_bytes("copy me");
  Buffer b = Buffer::copy(src);
  EXPECT_NE(b.data(), src.data());
  EXPECT_TRUE(equal(b.view(), ByteView(src)));
}

TEST(Buffer, CopyingBumpsRefcountNotBytes) {
  Buffer a = Buffer::own(to_bytes("shared"));
  Buffer b = a;
  Buffer c = b;
  EXPECT_EQ(a.use_count(), 3);
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(b.data(), c.data());
}

TEST(Slice, WholeBufferView) {
  Buffer b = Buffer::own(to_bytes("whole"));
  Slice s(b);
  EXPECT_EQ(s.data(), b.data());
  EXPECT_EQ(s.size(), b.size());
  EXPECT_EQ(b.use_count(), 2);  // buffer + slice
}

TEST(Slice, AdoptsBytesRvalue) {
  Slice s(to_bytes("rvalue"));
  EXPECT_EQ(s.size(), 6u);
  EXPECT_EQ(s.buffer().use_count(), 1);
}

TEST(Slice, SubsliceSharesOwnership) {
  Buffer b = Buffer::own(to_bytes("0123456789"));
  Slice whole(b);
  Slice mid = whole.subslice(2, 5);
  EXPECT_EQ(mid.size(), 5u);
  EXPECT_EQ(mid.data(), b.data() + 2);
  EXPECT_EQ(to_string(mid.view()), "23456");
  EXPECT_EQ(b.use_count(), 3);  // b + whole + mid
  // Nested subslice offsets compose.
  Slice inner = mid.subslice(1, 2);
  EXPECT_EQ(to_string(inner.view()), "34");
}

TEST(Slice, SubsliceClampsOutOfRange) {
  Slice s(to_bytes("abcd"));
  EXPECT_EQ(s.subslice(0, 100).size(), 4u);   // length clamps
  EXPECT_EQ(s.subslice(2, 100).size(), 2u);   // tail clamps
  EXPECT_EQ(s.subslice(100, 1).size(), 0u);   // offset past end -> empty
  EXPECT_EQ(s.subslice(4, 0).size(), 0u);     // at end -> empty
  // A clamped slice still points inside the block (no OOB).
  Slice tail = s.subslice(3, 100);
  EXPECT_EQ(tail.data(), s.data() + 3);
  EXPECT_EQ(tail.size(), 1u);
}

TEST(Slice, PinsParentBufferAlive) {
  // mbuf semantics: the last surviving sub-slice keeps the whole frame
  // allocation alive.
  Slice keeper;
  const std::uint8_t* base = nullptr;
  {
    Buffer frame = Buffer::own(Bytes(4096, 0x3c));
    base = frame.data();
    keeper = Slice(frame).subslice(1000, 16);
  }  // frame handle destroyed
  EXPECT_EQ(keeper.buffer().use_count(), 1);
  EXPECT_EQ(keeper.data(), base + 1000);
  for (std::uint8_t v : keeper) EXPECT_EQ(v, 0x3c);
}

TEST(Slice, ToBytesCopiesOut) {
  Slice s = Slice(to_bytes("boundary")).subslice(0, 5);
  Bytes out = s.to_bytes();
  EXPECT_EQ(to_string(out), "bound");
  EXPECT_NE(out.data(), s.data());  // real copy, independent lifetime
}

TEST(Slice, EqualityIsContentBased) {
  Slice a(to_bytes("same"));
  Slice b(to_bytes("same"));
  Slice c(to_bytes("diff"));
  EXPECT_EQ(a, b);  // different blocks, same content
  EXPECT_FALSE(a == c);
  EXPECT_EQ(Slice(), Slice(Bytes{}));  // empty == empty
}

TEST(Slice, ViewAndImplicitByteView) {
  Slice s(to_bytes("view"));
  ByteView v = s;  // implicit conversion feeds crypto/serialize layers
  EXPECT_EQ(v.data(), s.data());
  EXPECT_EQ(v.size(), s.size());
}

TEST(Slice, IndexingAndIteration) {
  Slice s(to_bytes("abc"));
  EXPECT_EQ(s[0], 'a');
  EXPECT_EQ(s[2], 'c');
  std::string collected;
  for (std::uint8_t ch : s) collected.push_back(static_cast<char>(ch));
  EXPECT_EQ(collected, "abc");
}

}  // namespace
}  // namespace ritas
