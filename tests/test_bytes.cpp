#include "common/bytes.h"

#include <gtest/gtest.h>

namespace ritas {
namespace {

TEST(Bytes, RoundTripString) {
  const Bytes b = to_bytes("hello ritas");
  EXPECT_EQ(to_string(b), "hello ritas");
  EXPECT_EQ(b.size(), 11u);
}

TEST(Bytes, EmptyString) {
  EXPECT_TRUE(to_bytes("").empty());
  EXPECT_EQ(to_string(Bytes{}), "");
}

TEST(Bytes, HexEncode) {
  EXPECT_EQ(to_hex(Bytes{0xde, 0xad, 0xbe, 0xef}), "deadbeef");
  EXPECT_EQ(to_hex(Bytes{0x00, 0x01, 0xff}), "0001ff");
  EXPECT_EQ(to_hex(Bytes{}), "");
}

TEST(Bytes, HexDecode) {
  EXPECT_EQ(from_hex("deadbeef"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
  EXPECT_EQ(from_hex("DEADBEEF"), (Bytes{0xde, 0xad, 0xbe, 0xef}));
  EXPECT_TRUE(from_hex("").empty());
}

TEST(Bytes, HexDecodeRejectsOddLength) {
  EXPECT_THROW(from_hex("abc"), std::invalid_argument);
}

TEST(Bytes, HexDecodeRejectsNonHex) {
  EXPECT_THROW(from_hex("zz"), std::invalid_argument);
  EXPECT_THROW(from_hex("0g"), std::invalid_argument);
}

TEST(Bytes, HexRoundTrip) {
  Bytes all;
  for (int i = 0; i < 256; ++i) all.push_back(static_cast<std::uint8_t>(i));
  EXPECT_EQ(from_hex(to_hex(all)), all);
}

TEST(Bytes, Equal) {
  EXPECT_TRUE(equal(to_bytes("abc"), to_bytes("abc")));
  EXPECT_FALSE(equal(to_bytes("abc"), to_bytes("abd")));
  EXPECT_FALSE(equal(to_bytes("abc"), to_bytes("ab")));
  EXPECT_TRUE(equal(Bytes{}, Bytes{}));
}

TEST(Bytes, Append) {
  Bytes dst = to_bytes("foo");
  append(dst, to_bytes("bar"));
  EXPECT_EQ(to_string(dst), "foobar");
  append(dst, Bytes{});
  EXPECT_EQ(to_string(dst), "foobar");
}

}  // namespace
}  // namespace ritas
