// The paper-faithful C API (ritas_init / ritas_proc_add_ipv4 / service
// calls / ritas_destroy), exercised end-to-end over real sockets plus its
// argument-validation and error paths.
#include "ritas/ritas_c.h"

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <chrono>
#include <cstring>
#include <thread>

#include "net_helpers.h"

namespace {

using ritas::test::free_ports;

constexpr std::uint8_t kSecret[] = "c-api-shared-secret";

struct CCluster {
  std::array<ritas_t*, 4> r{};

  CCluster() {
    const auto ports = free_ports(4);
    for (std::uint32_t p = 0; p < 4; ++p) {
      r[p] = ritas_init(4, p, kSecret, sizeof(kSecret));
      EXPECT_NE(r[p], nullptr);
      for (std::uint32_t q = 0; q < 4; ++q) {
        EXPECT_EQ(ritas_proc_add_ipv4(r[p], q, "127.0.0.1", ports[q]), RITAS_OK);
      }
    }
    std::vector<std::thread> starters;
    for (std::uint32_t p = 0; p < 4; ++p) {
      starters.emplace_back([this, p] { EXPECT_EQ(ritas_start(r[p]), RITAS_OK); });
    }
    for (auto& t : starters) t.join();
  }
  ~CCluster() {
    for (auto* ctx : r) ritas_destroy(ctx);
  }
};

TEST(CApi, InitValidation) {
  EXPECT_EQ(ritas_init(3, 0, kSecret, sizeof(kSecret)), nullptr);  // n < 4
  EXPECT_EQ(ritas_init(4, 4, kSecret, sizeof(kSecret)), nullptr);  // self >= n
  ritas_t* r = ritas_init(4, 0, kSecret, sizeof(kSecret));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(ritas_proc_add_ipv4(r, 7, "127.0.0.1", 1), RITAS_EINVAL);
  EXPECT_EQ(ritas_proc_add_ipv4(r, 0, nullptr, 1), RITAS_EINVAL);
  // Starting before all processes are registered is a state error.
  EXPECT_EQ(ritas_start(r), RITAS_ESTATE);
  // Service calls before start are invalid.
  EXPECT_EQ(ritas_bc(r, 1), RITAS_EINVAL);
  ritas_destroy(r);
  ritas_destroy(nullptr);  // must be safe
}

TEST(CApi, ReliableBroadcastRoundTrip) {
  CCluster c;
  const char* msg = "c api rb";
  ASSERT_EQ(ritas_rb_bcast(c.r[0], reinterpret_cast<const std::uint8_t*>(msg),
                           std::strlen(msg)),
            RITAS_OK);
  for (std::uint32_t p = 0; p < 4; ++p) {
    std::uint8_t buf[64];
    std::uint32_t origin = 99;
    const long n = ritas_rb_recv(c.r[p], &origin, buf, sizeof(buf));
    ASSERT_EQ(n, static_cast<long>(std::strlen(msg)));
    EXPECT_EQ(origin, 0u);
    EXPECT_EQ(std::memcmp(buf, msg, static_cast<std::size_t>(n)), 0);
  }
}

TEST(CApi, RecvTooSmallBufferKeepsMessage) {
  CCluster c;
  const char* msg = "twelve bytes";
  ASSERT_EQ(ritas_rb_bcast(c.r[1], reinterpret_cast<const std::uint8_t*>(msg), 12),
            RITAS_OK);
  std::uint8_t tiny[4];
  EXPECT_EQ(ritas_rb_recv(c.r[2], nullptr, tiny, sizeof(tiny)), RITAS_ETOOBIG);
  // The message was not lost: a big-enough buffer still gets it.
  std::uint8_t big[64];
  std::uint32_t origin = 0;
  const long n = ritas_rb_recv(c.r[2], &origin, big, sizeof(big));
  ASSERT_EQ(n, 12);
  EXPECT_EQ(origin, 1u);
}

TEST(CApi, BinaryConsensus) {
  CCluster c;
  std::array<int, 4> decision{};
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < 4; ++p) {
    threads.emplace_back([&c, &decision, p] { decision[p] = ritas_bc(c.r[p], 1); });
  }
  for (auto& t : threads) t.join();
  for (int d : decision) EXPECT_EQ(d, 1);
}

TEST(CApi, MultiValuedConsensus) {
  CCluster c;
  const char* value = "the-decided-value";
  std::array<long, 4> n{};
  std::array<int, 4> bot{};
  std::array<std::array<std::uint8_t, 64>, 4> buf{};
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < 4; ++p) {
    threads.emplace_back([&, p] {
      n[p] = ritas_mvc(c.r[p], reinterpret_cast<const std::uint8_t*>(value),
                       std::strlen(value), buf[p].data(), buf[p].size(), &bot[p]);
    });
  }
  for (auto& t : threads) t.join();
  for (std::uint32_t p = 0; p < 4; ++p) {
    ASSERT_EQ(n[p], static_cast<long>(std::strlen(value)));
    EXPECT_EQ(bot[p], 0);
    EXPECT_EQ(std::memcmp(buf[p].data(), value, static_cast<std::size_t>(n[p])), 0);
  }
}

TEST(CApi, VectorConsensus) {
  CCluster c;
  constexpr std::size_t kCap = 32;
  std::array<std::array<std::uint8_t, 4 * kCap>, 4> buf{};
  std::array<std::array<long, 4>, 4> lens{};
  std::array<int, 4> rc{};
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < 4; ++p) {
    threads.emplace_back([&, p] {
      const std::string v = "entry-" + std::to_string(p);
      rc[p] = ritas_vc(c.r[p], reinterpret_cast<const std::uint8_t*>(v.data()),
                       v.size(), buf[p].data(), kCap, lens[p].data());
    });
  }
  for (auto& t : threads) t.join();
  for (std::uint32_t p = 0; p < 4; ++p) {
    ASSERT_EQ(rc[p], RITAS_OK);
    EXPECT_EQ(lens[p], lens[0]);  // agreement on the whole vector
  }
  int present = 0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    if (lens[0][i] >= 0) ++present;
  }
  EXPECT_GE(present, 3);  // n - f entries
}

TEST(CApi, SetOptValidation) {
  ritas_t* r = ritas_init(4, 0, kSecret, sizeof(kSecret));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(ritas_set_opt(nullptr, RITAS_OPT_BATCH_ENABLED, 1), RITAS_EINVAL);
  EXPECT_EQ(ritas_set_opt(r, 999, 1), RITAS_EINVAL);             // unknown opt
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_BATCH_ENABLED, 2), RITAS_EINVAL);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_BATCH_ENABLED, -1), RITAS_EINVAL);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_BATCH_MAX_MSGS, 0), RITAS_EINVAL);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_BATCH_MAX_BYTES, -5), RITAS_EINVAL);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_RECV_WINDOW, 0), RITAS_EINVAL);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_BATCH_MAX_BYTES, 0x1'0000'0000L),
            RITAS_EINVAL);  // does not fit u32
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_BATCH_ENABLED, 1), RITAS_OK);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_BATCH_MAX_MSGS, 8), RITAS_OK);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_BATCH_MAX_BYTES, 4096), RITAS_OK);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_RECV_WINDOW, 32), RITAS_OK);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_MIN_START_LINKS, -1), RITAS_EINVAL);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_MIN_START_LINKS, 4), RITAS_EINVAL);  // >= n
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_MIN_START_LINKS, 3), RITAS_OK);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_MIN_START_LINKS, 0), RITAS_OK);  // auto
  ritas_destroy(r);
  // Options are pre-start only: after the mesh is up they are refused.
  CCluster c;
  EXPECT_EQ(ritas_set_opt(c.r[0], RITAS_OPT_BATCH_ENABLED, 1), RITAS_ESTATE);
}

TEST(CApi, VariantOptions) {
  ritas_t* r = ritas_init(4, 0, kSecret, sizeof(kSecret));
  ASSERT_NE(r, nullptr);
  // Known variants are 0 (Bracha) and 1 (Imbs-Raynal / Crain).
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_RB_VARIANT, 2), RITAS_EINVAL);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_RB_VARIANT, -1), RITAS_EINVAL);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_BC_VARIANT, 2), RITAS_EINVAL);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_RB_VARIANT, 1), RITAS_OK);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_RB_VARIANT, 0), RITAS_OK);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_BC_VARIANT, 1), RITAS_OK);
  ritas_destroy(r);
}

TEST(CApi, ImbsRaynalBelowResilienceBoundFailsAtStart) {
  // The 2-step broadcast needs n >= 6 (t < n/5); the incompatibility is
  // reported from ritas_start as RITAS_EINVAL, before any networking.
  const auto ports = free_ports(4);
  ritas_t* r = ritas_init(4, 0, kSecret, sizeof(kSecret));
  ASSERT_NE(r, nullptr);
  for (std::uint32_t q = 0; q < 4; ++q) {
    ASSERT_EQ(ritas_proc_add_ipv4(r, q, "127.0.0.1", ports[q]), RITAS_OK);
  }
  ASSERT_EQ(ritas_set_opt(r, RITAS_OPT_RB_VARIANT, 1), RITAS_OK);
  EXPECT_EQ(ritas_start(r), RITAS_EINVAL);
  ritas_destroy(r);
}

TEST(CApi, CrainBinaryConsensusOverTcp) {
  // RITAS_OPT_BC_VARIANT=1 selects Crain and implies the dealt common coin
  // (derived from the dealt group key, so it works across real processes).
  const auto ports = free_ports(4);
  std::array<ritas_t*, 4> r{};
  for (std::uint32_t p = 0; p < 4; ++p) {
    r[p] = ritas_init(4, p, kSecret, sizeof(kSecret));
    ASSERT_NE(r[p], nullptr);
    ASSERT_EQ(ritas_set_opt(r[p], RITAS_OPT_BC_VARIANT, 1), RITAS_OK);
    for (std::uint32_t q = 0; q < 4; ++q) {
      ASSERT_EQ(ritas_proc_add_ipv4(r[p], q, "127.0.0.1", ports[q]), RITAS_OK);
    }
  }
  std::vector<std::thread> starters;
  for (std::uint32_t p = 0; p < 4; ++p) {
    starters.emplace_back([&r, p] { EXPECT_EQ(ritas_start(r[p]), RITAS_OK); });
  }
  for (auto& t : starters) t.join();

  std::array<int, 4> decision{};
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < 4; ++p) {
    threads.emplace_back(
        [&r, &decision, p] { decision[p] = ritas_bc(r[p], p % 2); });
  }
  for (auto& t : threads) t.join();
  for (std::uint32_t p = 1; p < 4; ++p) EXPECT_EQ(decision[p], decision[0]);
  EXPECT_GE(decision[0], 0);  // a decision, not an error code
  for (auto* ctx : r) ritas_destroy(ctx);
}

TEST(CApi, RecvTimeoutAndStop) {
  CCluster c;
  std::uint8_t buf[16];
  // Nothing in flight: a zero timeout polls, a short one waits then gives up.
  EXPECT_EQ(ritas_ab_recv_timeout(c.r[0], nullptr, buf, sizeof(buf), 0),
            RITAS_EAGAIN);
  EXPECT_EQ(ritas_ab_recv_timeout(c.r[0], nullptr, buf, sizeof(buf), 25),
            RITAS_EAGAIN);
  // A delivery satisfies a bounded wait.
  const char* msg = "timed";
  ASSERT_EQ(ritas_ab_bcast(c.r[1], reinterpret_cast<const std::uint8_t*>(msg),
                           std::strlen(msg)),
            RITAS_OK);
  std::uint32_t origin = 99;
  const long n = ritas_ab_recv_timeout(c.r[2], &origin, buf, sizeof(buf), 30'000);
  ASSERT_EQ(n, static_cast<long>(std::strlen(msg)));
  EXPECT_EQ(origin, 1u);
  // Drain the same delivery at node 3 so the blocked receive below really
  // has nothing to return.
  ASSERT_GT(ritas_ab_recv(c.r[3], nullptr, buf, sizeof(buf)), 0);

  // ritas_stop wakes a blocked receive with RITAS_ESHUTDOWN...
  std::atomic<long> rc{0};
  std::thread blocked([&] {
    std::uint8_t b[16];
    rc.store(ritas_ab_recv(c.r[3], nullptr, b, sizeof(b)));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(ritas_stop(c.r[3]), RITAS_OK);
  blocked.join();
  EXPECT_EQ(rc.load(), RITAS_ESHUTDOWN);
  // ...is idempotent, and leaves the handle valid for ritas_destroy.
  EXPECT_EQ(ritas_stop(c.r[3]), RITAS_OK);
  EXPECT_EQ(ritas_ab_recv_timeout(c.r[3], nullptr, buf, sizeof(buf), 0),
            RITAS_ESHUTDOWN);
}

TEST(CApi, StopBeforeStartIsAStateError) {
  ritas_t* r = ritas_init(4, 0, kSecret, sizeof(kSecret));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(ritas_stop(r), RITAS_ESTATE);
  EXPECT_EQ(ritas_stop(nullptr), RITAS_EINVAL);
  // Service calls before start follow the existing convention: EINVAL.
  EXPECT_EQ(ritas_ab_flush(r), RITAS_EINVAL);
  ritas_destroy(r);
}

TEST(CApi, BatchedAtomicBroadcastTotalOrder) {
  // The full batched path through the C surface: enable batching pre-start
  // at every node (wire-format switch), burst small payloads, flush, and
  // check the unpacked per-message total order.
  const auto ports = free_ports(4);
  std::array<ritas_t*, 4> r{};
  for (std::uint32_t p = 0; p < 4; ++p) {
    r[p] = ritas_init(4, p, kSecret, sizeof(kSecret));
    ASSERT_NE(r[p], nullptr);
    ASSERT_EQ(ritas_set_opt(r[p], RITAS_OPT_BATCH_ENABLED, 1), RITAS_OK);
    ASSERT_EQ(ritas_set_opt(r[p], RITAS_OPT_BATCH_MAX_MSGS, 4), RITAS_OK);
    for (std::uint32_t q = 0; q < 4; ++q) {
      ASSERT_EQ(ritas_proc_add_ipv4(r[p], q, "127.0.0.1", ports[q]), RITAS_OK);
    }
  }
  std::vector<std::thread> starters;
  for (std::uint32_t p = 0; p < 4; ++p) {
    starters.emplace_back([&r, p] { EXPECT_EQ(ritas_start(r[p]), RITAS_OK); });
  }
  for (auto& t : starters) t.join();

  constexpr int kPer = 6;
  for (std::uint32_t p = 0; p < 4; ++p) {
    for (int i = 0; i < kPer; ++i) {
      const std::string m = "b" + std::to_string(p) + "." + std::to_string(i);
      ASSERT_EQ(ritas_ab_bcast(r[p], reinterpret_cast<const std::uint8_t*>(m.data()),
                               m.size()),
                RITAS_OK);
    }
    ASSERT_EQ(ritas_ab_flush(r[p]), RITAS_OK);
  }
  std::array<std::vector<std::string>, 4> order;
  for (std::uint32_t p = 0; p < 4; ++p) {
    for (int i = 0; i < 4 * kPer; ++i) {
      std::uint8_t buf[64];
      const long n = ritas_ab_recv(r[p], nullptr, buf, sizeof(buf));
      ASSERT_GT(n, 0);
      order[p].emplace_back(reinterpret_cast<char*>(buf), static_cast<std::size_t>(n));
    }
  }
  for (std::uint32_t p = 1; p < 4; ++p) EXPECT_EQ(order[p], order[0]);
  for (auto* ctx : r) ritas_destroy(ctx);
}

TEST(CApi, AtomicBroadcastTotalOrder) {
  CCluster c;
  for (std::uint32_t p = 0; p < 4; ++p) {
    const std::string m = "ab-" + std::to_string(p);
    ASSERT_EQ(ritas_ab_bcast(c.r[p], reinterpret_cast<const std::uint8_t*>(m.data()),
                             m.size()),
              RITAS_OK);
  }
  std::array<std::vector<std::string>, 4> order;
  for (std::uint32_t p = 0; p < 4; ++p) {
    for (int i = 0; i < 4; ++i) {
      std::uint8_t buf[64];
      const long n = ritas_ab_recv(c.r[p], nullptr, buf, sizeof(buf));
      ASSERT_GT(n, 0);
      order[p].emplace_back(reinterpret_cast<char*>(buf), static_cast<std::size_t>(n));
    }
  }
  for (std::uint32_t p = 1; p < 4; ++p) EXPECT_EQ(order[p], order[0]);
}

TEST(CApi, LinkProbesAndStats) {
  ritas_t* cold = ritas_init(4, 0, kSecret, sizeof(kSecret));
  ASSERT_NE(cold, nullptr);
  std::uint8_t states[4];
  // Probes are start-gated, and the buffer must hold all n entries.
  EXPECT_EQ(ritas_link_states(cold, states, sizeof(states)), RITAS_ESTATE);
  EXPECT_EQ(ritas_stat(cold, RITAS_STAT_FRAMES_SENT), RITAS_ESTATE);
  ritas_destroy(cold);

  CCluster c;
  EXPECT_EQ(ritas_link_states(c.r[0], states, 3), RITAS_ETOOBIG);
  EXPECT_EQ(ritas_link_states(c.r[0], nullptr, sizeof(states)), RITAS_EINVAL);
  EXPECT_EQ(ritas_stat(c.r[0], 0), RITAS_EINVAL);
  EXPECT_EQ(ritas_stat(c.r[0], 999), RITAS_EINVAL);

  // Run one broadcast so traffic demonstrably flows through the counters.
  const char* msg = "probe";
  ASSERT_EQ(ritas_rb_bcast(c.r[0], reinterpret_cast<const std::uint8_t*>(msg),
                           std::strlen(msg)),
            RITAS_OK);
  for (std::uint32_t p = 0; p < 4; ++p) {
    std::uint8_t buf[16];
    ASSERT_GT(ritas_rb_recv(c.r[p], nullptr, buf, sizeof(buf)), 0);
  }
  for (std::uint32_t p = 0; p < 4; ++p) {
    ASSERT_EQ(ritas_link_states(c.r[p], states, sizeof(states)), 4);
    EXPECT_EQ(states[p], RITAS_LINK_UP) << "self entry reads up";
    for (std::uint32_t q = 0; q < 4; ++q) {
      EXPECT_GE(states[q], RITAS_LINK_DOWN);
      EXPECT_LE(states[q], RITAS_LINK_BACKOFF);
    }
    // Send counters tick when the poll thread flushes the batched queue to
    // the kernel, which can trail delivery by a reactor cycle — poll
    // briefly instead of snapshotting.
    const auto eventually_positive = [&](int stat) {
      for (int spin = 0; spin < 400; ++spin) {
        if (ritas_stat(c.r[p], stat) > 0) return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      return false;
    };
    EXPECT_TRUE(eventually_positive(RITAS_STAT_FRAMES_SENT));
    EXPECT_GT(ritas_stat(c.r[p], RITAS_STAT_FRAMES_RECEIVED), 0);
    EXPECT_TRUE(eventually_positive(RITAS_STAT_BYTES_SENT));
    // Fast-path counters: flushed frames imply sendmsg syscalls and bytes
    // accepted by the kernel.
    EXPECT_TRUE(eventually_positive(RITAS_STAT_SENDMSG_CALLS));
    EXPECT_TRUE(eventually_positive(RITAS_STAT_BYTES_TO_KERNEL));
    EXPECT_EQ(ritas_stat(c.r[p], RITAS_STAT_MAC_FAILURES), 0);
    EXPECT_EQ(ritas_stat(c.r[p], RITAS_STAT_SESSION_REJECTS), 0);
  }
}

TEST(CApi, PipelineOptionsValidation) {
  ritas_t* r = ritas_init(4, 0, kSecret, sizeof(kSecret));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_REACTOR_THREADS, -1), RITAS_EINVAL);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_REACTOR_THREADS, 65), RITAS_EINVAL);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_CRYPTO_THREADS, 65), RITAS_EINVAL);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_REACTOR_THREADS, 2), RITAS_OK);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_CRYPTO_THREADS, 64), RITAS_OK);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_CRYPTO_THREADS, 0), RITAS_OK);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_TRANSPORT_BATCH, 2), RITAS_EINVAL);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_TRANSPORT_BATCH, -1), RITAS_EINVAL);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_TRANSPORT_BATCH, 0), RITAS_OK);
  EXPECT_EQ(ritas_set_opt(r, RITAS_OPT_TRANSPORT_BATCH, 1), RITAS_OK);
  ritas_destroy(r);
}

TEST(CApi, PipelineStatsRoundTrip) {
  // Full round trip of the execution-pipeline knobs and counters through
  // the C surface: configure reactor + crypto threads pre-start (a local
  // knob — the peers stay at the inline defaults and interoperate), run a
  // broadcast, and read the new RITAS_STAT_* counters back.
  const auto ports = free_ports(4);
  std::array<ritas_t*, 4> r{};
  for (std::uint32_t p = 0; p < 4; ++p) {
    r[p] = ritas_init(4, p, kSecret, sizeof(kSecret));
    ASSERT_NE(r[p], nullptr);
    if (p == 0) {
      ASSERT_EQ(ritas_set_opt(r[p], RITAS_OPT_REACTOR_THREADS, 2), RITAS_OK);
      ASSERT_EQ(ritas_set_opt(r[p], RITAS_OPT_CRYPTO_THREADS, 2), RITAS_OK);
    }
    for (std::uint32_t q = 0; q < 4; ++q) {
      ASSERT_EQ(ritas_proc_add_ipv4(r[p], q, "127.0.0.1", ports[q]), RITAS_OK);
    }
  }
  std::vector<std::thread> starters;
  for (std::uint32_t p = 0; p < 4; ++p) {
    starters.emplace_back([&r, p] { EXPECT_EQ(ritas_start(r[p]), RITAS_OK); });
  }
  for (auto& t : starters) t.join();

  const char* msg = "pipelined";
  ASSERT_EQ(ritas_ab_bcast(r[1], reinterpret_cast<const std::uint8_t*>(msg),
                           std::strlen(msg)),
            RITAS_OK);
  for (std::uint32_t p = 0; p < 4; ++p) {
    std::uint8_t buf[32];
    std::uint32_t origin = 99;
    ASSERT_GT(ritas_ab_recv(r[p], &origin, buf, sizeof(buf)), 0);
    EXPECT_EQ(origin, 1u);
  }

  // The pipelined node offloaded its MAC work and moved frames through
  // the handoff ring; its inline peers read zeros from the same counters.
  EXPECT_GT(ritas_stat(r[0], RITAS_STAT_CRYPTO_OFFLOADED), 0);
  EXPECT_GT(ritas_stat(r[0], RITAS_STAT_CRYPTO_MAC_OFFLOADED), 0);
  EXPECT_GT(ritas_stat(r[0], RITAS_STAT_HANDOFF_ENQUEUED), 0);
  EXPECT_EQ(ritas_stat(r[0], RITAS_STAT_HANDOFF_DROPPED), 0);
  EXPECT_GE(ritas_stat(r[0], RITAS_STAT_REACTOR_QUEUE_DEPTH), 0);
  for (std::uint32_t p = 1; p < 4; ++p) {
    EXPECT_EQ(ritas_stat(r[p], RITAS_STAT_CRYPTO_OFFLOADED), 0);
    EXPECT_EQ(ritas_stat(r[p], RITAS_STAT_HANDOFF_ENQUEUED), 0);
  }
  // Pipeline knobs are pre-start only, like every other option.
  EXPECT_EQ(ritas_set_opt(r[0], RITAS_OPT_REACTOR_THREADS, 1), RITAS_ESTATE);
  for (auto* ctx : r) ritas_destroy(ctx);
}

}  // namespace
