// The paper-faithful C API (ritas_init / ritas_proc_add_ipv4 / service
// calls / ritas_destroy), exercised end-to-end over real sockets plus its
// argument-validation and error paths.
#include "ritas/ritas_c.h"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <thread>

#include "net_helpers.h"

namespace {

using ritas::test::free_ports;

constexpr std::uint8_t kSecret[] = "c-api-shared-secret";

struct CCluster {
  std::array<ritas_t*, 4> r{};

  CCluster() {
    const auto ports = free_ports(4);
    for (std::uint32_t p = 0; p < 4; ++p) {
      r[p] = ritas_init(4, p, kSecret, sizeof(kSecret));
      EXPECT_NE(r[p], nullptr);
      for (std::uint32_t q = 0; q < 4; ++q) {
        EXPECT_EQ(ritas_proc_add_ipv4(r[p], q, "127.0.0.1", ports[q]), RITAS_OK);
      }
    }
    std::vector<std::thread> starters;
    for (std::uint32_t p = 0; p < 4; ++p) {
      starters.emplace_back([this, p] { EXPECT_EQ(ritas_start(r[p]), RITAS_OK); });
    }
    for (auto& t : starters) t.join();
  }
  ~CCluster() {
    for (auto* ctx : r) ritas_destroy(ctx);
  }
};

TEST(CApi, InitValidation) {
  EXPECT_EQ(ritas_init(3, 0, kSecret, sizeof(kSecret)), nullptr);  // n < 4
  EXPECT_EQ(ritas_init(4, 4, kSecret, sizeof(kSecret)), nullptr);  // self >= n
  ritas_t* r = ritas_init(4, 0, kSecret, sizeof(kSecret));
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(ritas_proc_add_ipv4(r, 7, "127.0.0.1", 1), RITAS_EINVAL);
  EXPECT_EQ(ritas_proc_add_ipv4(r, 0, nullptr, 1), RITAS_EINVAL);
  // Starting before all processes are registered is a state error.
  EXPECT_EQ(ritas_start(r), RITAS_ESTATE);
  // Service calls before start are invalid.
  EXPECT_EQ(ritas_bc(r, 1), RITAS_EINVAL);
  ritas_destroy(r);
  ritas_destroy(nullptr);  // must be safe
}

TEST(CApi, ReliableBroadcastRoundTrip) {
  CCluster c;
  const char* msg = "c api rb";
  ASSERT_EQ(ritas_rb_bcast(c.r[0], reinterpret_cast<const std::uint8_t*>(msg),
                           std::strlen(msg)),
            RITAS_OK);
  for (std::uint32_t p = 0; p < 4; ++p) {
    std::uint8_t buf[64];
    std::uint32_t origin = 99;
    const long n = ritas_rb_recv(c.r[p], &origin, buf, sizeof(buf));
    ASSERT_EQ(n, static_cast<long>(std::strlen(msg)));
    EXPECT_EQ(origin, 0u);
    EXPECT_EQ(std::memcmp(buf, msg, static_cast<std::size_t>(n)), 0);
  }
}

TEST(CApi, RecvTooSmallBufferKeepsMessage) {
  CCluster c;
  const char* msg = "twelve bytes";
  ASSERT_EQ(ritas_rb_bcast(c.r[1], reinterpret_cast<const std::uint8_t*>(msg), 12),
            RITAS_OK);
  std::uint8_t tiny[4];
  EXPECT_EQ(ritas_rb_recv(c.r[2], nullptr, tiny, sizeof(tiny)), RITAS_ETOOBIG);
  // The message was not lost: a big-enough buffer still gets it.
  std::uint8_t big[64];
  std::uint32_t origin = 0;
  const long n = ritas_rb_recv(c.r[2], &origin, big, sizeof(big));
  ASSERT_EQ(n, 12);
  EXPECT_EQ(origin, 1u);
}

TEST(CApi, BinaryConsensus) {
  CCluster c;
  std::array<int, 4> decision{};
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < 4; ++p) {
    threads.emplace_back([&c, &decision, p] { decision[p] = ritas_bc(c.r[p], 1); });
  }
  for (auto& t : threads) t.join();
  for (int d : decision) EXPECT_EQ(d, 1);
}

TEST(CApi, MultiValuedConsensus) {
  CCluster c;
  const char* value = "the-decided-value";
  std::array<long, 4> n{};
  std::array<int, 4> bot{};
  std::array<std::array<std::uint8_t, 64>, 4> buf{};
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < 4; ++p) {
    threads.emplace_back([&, p] {
      n[p] = ritas_mvc(c.r[p], reinterpret_cast<const std::uint8_t*>(value),
                       std::strlen(value), buf[p].data(), buf[p].size(), &bot[p]);
    });
  }
  for (auto& t : threads) t.join();
  for (std::uint32_t p = 0; p < 4; ++p) {
    ASSERT_EQ(n[p], static_cast<long>(std::strlen(value)));
    EXPECT_EQ(bot[p], 0);
    EXPECT_EQ(std::memcmp(buf[p].data(), value, static_cast<std::size_t>(n[p])), 0);
  }
}

TEST(CApi, VectorConsensus) {
  CCluster c;
  constexpr std::size_t kCap = 32;
  std::array<std::array<std::uint8_t, 4 * kCap>, 4> buf{};
  std::array<std::array<long, 4>, 4> lens{};
  std::array<int, 4> rc{};
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < 4; ++p) {
    threads.emplace_back([&, p] {
      const std::string v = "entry-" + std::to_string(p);
      rc[p] = ritas_vc(c.r[p], reinterpret_cast<const std::uint8_t*>(v.data()),
                       v.size(), buf[p].data(), kCap, lens[p].data());
    });
  }
  for (auto& t : threads) t.join();
  for (std::uint32_t p = 0; p < 4; ++p) {
    ASSERT_EQ(rc[p], RITAS_OK);
    EXPECT_EQ(lens[p], lens[0]);  // agreement on the whole vector
  }
  int present = 0;
  for (std::uint32_t i = 0; i < 4; ++i) {
    if (lens[0][i] >= 0) ++present;
  }
  EXPECT_GE(present, 3);  // n - f entries
}

TEST(CApi, AtomicBroadcastTotalOrder) {
  CCluster c;
  for (std::uint32_t p = 0; p < 4; ++p) {
    const std::string m = "ab-" + std::to_string(p);
    ASSERT_EQ(ritas_ab_bcast(c.r[p], reinterpret_cast<const std::uint8_t*>(m.data()),
                             m.size()),
              RITAS_OK);
  }
  std::array<std::vector<std::string>, 4> order;
  for (std::uint32_t p = 0; p < 4; ++p) {
    for (int i = 0; i < 4; ++i) {
      std::uint8_t buf[64];
      const long n = ritas_ab_recv(c.r[p], nullptr, buf, sizeof(buf));
      ASSERT_GT(n, 0);
      order[p].emplace_back(reinterpret_cast<char*>(buf), static_cast<std::size_t>(n));
    }
  }
  for (std::uint32_t p = 1; p < 4; ++p) EXPECT_EQ(order[p], order[0]);
}

}  // namespace
