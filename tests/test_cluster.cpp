// The simulation harness itself: cluster wiring, faultload bookkeeping,
// root lifecycle, metrics aggregation.
#include "sim/cluster.h"

#include <gtest/gtest.h>

#include "sim_helpers.h"

namespace ritas {
namespace {

using test::Cluster;
using test::fast_lan;

TEST(Cluster, LiveAndCorrectSets) {
  test::ClusterOptions o = fast_lan(7, 1);
  o.crashed = {2};
  o.byzantine = {4};
  Cluster c(o);
  EXPECT_EQ(c.live(), (std::vector<ProcessId>{0, 1, 3, 4, 5, 6}));
  EXPECT_EQ(c.correct_set(), (std::vector<ProcessId>{0, 1, 3, 5, 6}));
  EXPECT_TRUE(c.crashed(2));
  EXPECT_TRUE(c.byzantine(4));
  EXPECT_FALSE(c.correct(4));
  EXPECT_TRUE(c.correct(0));
}

TEST(Cluster, RejectsOutOfRangeFaultConfig) {
  test::ClusterOptions bad = fast_lan(4, 1);
  bad.crashed = {9};
  EXPECT_THROW(Cluster{bad}, std::invalid_argument);
  test::ClusterOptions bad2 = fast_lan(4, 1);
  bad2.byzantine = {4};
  EXPECT_THROW(Cluster{bad2}, std::invalid_argument);
}

TEST(Cluster, PairwiseKeysAgreeAcrossStacks) {
  Cluster c(fast_lan(4, 2));
  for (ProcessId i = 0; i < 4; ++i) {
    for (ProcessId j = 0; j < 4; ++j) {
      EXPECT_TRUE(equal(c.stack(i).keys().key(j), c.stack(j).keys().key(i)));
    }
  }
}

TEST(Cluster, DestroyRootsTearsDownSubtrees) {
  Cluster c(fast_lan(4, 3));
  auto& rb = c.create_rb(
      0, InstanceId::root(ProtocolType::kReliableBroadcast, 1), 0,
      Attribution::kPayload, RbAlgorithm::DeliverFn{});
  (void)rb;
  EXPECT_EQ(c.stack(0).instance_count(), 1u);
  c.destroy_roots(0);
  EXPECT_EQ(c.stack(0).instance_count(), 0u);
}

TEST(Cluster, MetricsAggregateSkipsCrashed) {
  test::ClusterOptions o = fast_lan(4, 4);
  o.crashed = {3};
  Cluster c(o);
  test::DeliveryLog log(4);
  std::vector<RbAlgorithm*> rb(4, nullptr);
  const InstanceId id = InstanceId::root(ProtocolType::kReliableBroadcast, 1);
  for (ProcessId p : c.live()) {
    rb[p] = &c.create_rb(p, id, 0, Attribution::kPayload,
                                              log.sink(p));
  }
  c.call(0, [&] { rb[0]->bcast(to_bytes("m")); });
  c.run_all();
  const Metrics m = c.total_metrics();
  EXPECT_EQ(m.rb_started_payload, 1u);
  EXPECT_GT(m.msgs_sent, 0u);
}

TEST(Cluster, ByzantineGetsAdversaryCorrectDoesNot) {
  test::ClusterOptions o = fast_lan(4, 5);
  o.byzantine = {1};
  Cluster c(o);
  EXPECT_EQ(c.stack(0).adversary(), nullptr);
  EXPECT_NE(c.stack(1).adversary(), nullptr);
}

TEST(Cluster, RunUntilDeadlineExpires) {
  Cluster c(fast_lan(4, 6));
  // Nothing scheduled: run_until must simply return false.
  EXPECT_FALSE(c.run_until([] { return false; }, sim::kSecond));
}

TEST(Cluster, SeedsDeriveDistinctProcessRngs) {
  Cluster c(fast_lan(4, 7));
  // Different processes' stacks must not share coin streams.
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (c.stack(0).rng().coin() == c.stack(1).rng().coin()) ++same;
  }
  EXPECT_GT(same, 10);
  EXPECT_LT(same, 54);
}

}  // namespace
}  // namespace ritas
