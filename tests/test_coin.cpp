// The coin-tossing schemes behind the randomized binary consensus: the
// paper's Ben-Or-style local coin (default) and the Rabin-style dealt
// common coin (every process sees the same coin; expected-constant rounds
// on split proposals).
#include <gtest/gtest.h>

#include "sim_helpers.h"

namespace ritas {
namespace {

using test::Cluster;
using test::fast_lan;
using test::run_binary_consensus;

TEST(DealtCoin, GroupKeyIsSharedAndSecretFromPairs) {
  const Bytes master = to_bytes("coin-master");
  auto a = KeyChain::deal(master, 4, 0);
  auto b = KeyChain::deal(master, 4, 3);
  ASSERT_FALSE(a.group_key().empty());
  EXPECT_TRUE(equal(a.group_key(), b.group_key()));
  // The group key differs from every pairwise key.
  for (std::uint32_t j = 0; j < 4; ++j) {
    EXPECT_FALSE(equal(a.group_key(), a.key(j)));
  }
}

TEST(DealtCoin, ExternallyBuiltChainsHaveNoGroupKey) {
  KeyChain c(0, {to_bytes("a"), to_bytes("b"), to_bytes("c"), to_bytes("d")});
  EXPECT_TRUE(c.group_key().empty());
}

TEST(DealtCoin, SplitProposalsAgreeAcrossManySeeds) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    test::ClusterOptions o = fast_lan(4, 400 + seed);
    o.lan.jitter_ns = 250'000;
    o.stack.coin_mode = CoinMode::kDealt;
    Cluster c(o);
    auto cap = run_binary_consensus(c, {true, false, false, true});
    ASSERT_TRUE(cap.all_set(c.correct_set())) << "seed " << seed;
    EXPECT_TRUE(cap.agree(c.correct_set())) << "seed " << seed;
  }
}

TEST(DealtCoin, UnanimousStillOneRoundNoCoin) {
  test::ClusterOptions o = fast_lan(4, 5);
  o.stack.coin_mode = CoinMode::kDealt;
  Cluster c(o);
  auto cap = run_binary_consensus(c, {true, true, true, true});
  ASSERT_TRUE(cap.all_set(c.correct_set()));
  EXPECT_EQ(c.total_metrics().bc_coin_flips, 0u);
}

TEST(DealtCoin, ByzantineAttackStillFails) {
  test::ClusterOptions o = fast_lan(4, 6);
  o.stack.coin_mode = CoinMode::kDealt;
  o.byzantine = {1};
  Cluster c(o);
  auto cap = run_binary_consensus(c, {true, true, true, true});
  ASSERT_TRUE(cap.all_set(c.correct_set()));
  for (ProcessId p : c.correct_set()) EXPECT_TRUE(*cap.got[p]);
}

TEST(DealtCoin, CoinPathUnreachableAtNEqualsFour) {
  // Structural property worth pinning down: with n = 4 (n-f = 3, odd) a
  // step-2 view of three binary values always has a strict majority, so no
  // correct process ever sends ⊥ at step 3, some value always reaches the
  // adopt quorum, and the coin is never consulted. (This is exactly why
  // the paper observed one-round decisions throughout at n = 4.)
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    test::ClusterOptions o = fast_lan(4, 700 + seed);
    o.lan.jitter_ns = 900'000;
    Cluster c(o);
    c.network().set_delay_policy([](ProcessId from, ProcessId to, sim::Time) {
      const bool cross = (from < 2) != (to < 2);
      return cross ? 2 * sim::kMillisecond : 0;
    });
    auto cap = run_binary_consensus(c, {true, false, true, false});
    ASSERT_TRUE(cap.all_set(c.correct_set())) << "seed " << seed;
    EXPECT_TRUE(cap.agree(c.correct_set())) << "seed " << seed;
    EXPECT_EQ(c.total_metrics().bc_coin_flips, 0u) << "seed " << seed;
  }
}

TEST(DealtCoin, SameCoinAtAllProcessesWhenFlipped) {
  // Ties need an even n-f: n = 5 gives f = 1, n-f = 4, so a 2-2 step-2
  // view produces ⊥ and the coin path is reachable. Force splits and
  // verify agreement plus fast convergence — with a *common* coin,
  // post-flip values match across processes.
  int flipped_runs = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    test::ClusterOptions o = fast_lan(5, 700 + seed);
    o.lan.jitter_ns = 900'000;
    o.stack.coin_mode = CoinMode::kDealt;
    Cluster c(o);
    // Clique skew forces disagreement past step 3 in some schedules.
    c.network().set_delay_policy([](ProcessId from, ProcessId to, sim::Time) {
      const bool cross = (from < 2) != (to < 2);
      return cross ? 2 * sim::kMillisecond : 0;
    });
    auto cap = run_binary_consensus(c, {true, true, false, false, true});
    ASSERT_TRUE(cap.all_set(c.correct_set())) << "seed " << seed;
    EXPECT_TRUE(cap.agree(c.correct_set())) << "seed " << seed;
    if (c.total_metrics().bc_coin_flips > 0) ++flipped_runs;
    const Metrics m = c.total_metrics();
    ASSERT_GT(m.bc_decided, 0u);
    EXPECT_LE(m.bc_rounds_total / m.bc_decided, 6u) << "seed " << seed;
  }
  // The sweep must actually have exercised the coin path somewhere.
  EXPECT_GT(flipped_runs, 0);
}

TEST(LocalCoin, SplitProposalsEventuallyTerminateAcrossSeeds) {
  // The paper's local-coin protocol: termination with probability 1. Over
  // a seed sweep with forced asymmetry every run must decide within the
  // (generous) deadline, and agreement must always hold.
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    test::ClusterOptions o = fast_lan(4, 900 + seed);
    o.lan.jitter_ns = 900'000;
    Cluster c(o);
    auto cap = run_binary_consensus(c, {true, false, true, false});
    ASSERT_TRUE(cap.all_set(c.correct_set())) << "seed " << seed;
    EXPECT_TRUE(cap.agree(c.correct_set())) << "seed " << seed;
  }
}

TEST(LocalCoin, CoinsAreIndependentPerProcess) {
  // Two stacks with different seeds flip different coin sequences (the
  // coin is private); sanity-check through the Rng directly.
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 256; ++i) {
    if (a.coin() == b.coin()) ++same;
  }
  EXPECT_GT(same, 80);
  EXPECT_LT(same, 176);
}

}  // namespace
}  // namespace ritas
