// End-to-end tests of the public ritas::Context API over real TCP sockets:
// four in-process "nodes", each with its own reactor thread, running the
// paper's service calls (rb/eb/ab broadcast + bc/mvc/vc consensus).
#include "ritas/context.h"

#include <gtest/gtest.h>

#include <array>
#include <chrono>
#include <mutex>
#include <thread>

#include "net_helpers.h"

namespace ritas {
namespace {

using test::free_ports;
using test::local_peers;

class ContextCluster {
 public:
  explicit ContextCluster(std::uint32_t n) {
    const auto peers = local_peers(free_ports(n));
    for (std::uint32_t p = 0; p < n; ++p) {
      Context::Options o;
      o.n = n;
      o.self = p;
      o.peers = peers;
      o.master_secret = to_bytes("context-test-master");
      o.rng_seed = 1000 + p;
      ctxs_.push_back(std::make_unique<Context>(o));
    }
    std::vector<std::thread> starters;
    for (auto& c : ctxs_) {
      starters.emplace_back([&c] { c->start(); });
    }
    for (auto& t : starters) t.join();
  }

  Context& operator[](std::uint32_t p) { return *ctxs_[p]; }
  std::uint32_t n() const { return static_cast<std::uint32_t>(ctxs_.size()); }

 private:
  std::vector<std::unique_ptr<Context>> ctxs_;
};

TEST(Context, ReliableBroadcastRoundTrip) {
  ContextCluster cluster(4);
  cluster[0].rb_bcast(to_bytes("hello rb"));
  for (std::uint32_t p = 0; p < 4; ++p) {
    const auto d = cluster[p].rb_recv();
    EXPECT_EQ(d.origin, 0u);
    EXPECT_EQ(to_string(d.payload), "hello rb");
  }
}

TEST(Context, EchoBroadcastRoundTrip) {
  ContextCluster cluster(4);
  cluster[2].eb_bcast(to_bytes("hello eb"));
  for (std::uint32_t p = 0; p < 4; ++p) {
    const auto d = cluster[p].eb_recv();
    EXPECT_EQ(d.origin, 2u);
    EXPECT_EQ(to_string(d.payload), "hello eb");
  }
}

TEST(Context, SequentialReliableBroadcastsStayOrderedPerOrigin) {
  ContextCluster cluster(4);
  for (int i = 0; i < 10; ++i) {
    cluster[1].rb_bcast(to_bytes("msg" + std::to_string(i)));
  }
  // Deliveries from one origin come from independent instances; collect and
  // check the multiset (RB itself does not promise cross-instance order).
  std::set<std::string> got;
  for (int i = 0; i < 10; ++i) got.insert(to_string(cluster[3].rb_recv().payload));
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(got.contains("msg" + std::to_string(i)));
  }
}

TEST(Context, BinaryConsensusUnanimous) {
  ContextCluster cluster(4);
  std::vector<std::thread> threads;
  std::array<bool, 4> decision{};
  for (std::uint32_t p = 0; p < 4; ++p) {
    threads.emplace_back([&cluster, &decision, p] {
      decision[p] = cluster[p].bc(true);
    });
  }
  for (auto& t : threads) t.join();
  for (bool d : decision) EXPECT_TRUE(d);
}

TEST(Context, BinaryConsensusMixedAgrees) {
  ContextCluster cluster(4);
  std::vector<std::thread> threads;
  std::array<bool, 4> decision{};
  for (std::uint32_t p = 0; p < 4; ++p) {
    threads.emplace_back([&cluster, &decision, p] {
      decision[p] = cluster[p].bc(p % 2 == 0);
    });
  }
  for (auto& t : threads) t.join();
  for (std::uint32_t p = 1; p < 4; ++p) EXPECT_EQ(decision[p], decision[0]);
}

TEST(Context, MultiValuedConsensusUnanimous) {
  ContextCluster cluster(4);
  std::vector<std::thread> threads;
  std::array<std::optional<Bytes>, 4> decision;
  for (std::uint32_t p = 0; p < 4; ++p) {
    threads.emplace_back([&cluster, &decision, p] {
      decision[p] = cluster[p].mvc(to_bytes("the value"));
    });
  }
  for (auto& t : threads) t.join();
  for (std::uint32_t p = 0; p < 4; ++p) {
    ASSERT_TRUE(decision[p].has_value());
    EXPECT_EQ(to_string(*decision[p]), "the value");
  }
}

TEST(Context, VectorConsensusAgrees) {
  ContextCluster cluster(4);
  std::vector<std::thread> threads;
  std::array<std::vector<std::optional<Bytes>>, 4> decision;
  for (std::uint32_t p = 0; p < 4; ++p) {
    threads.emplace_back([&cluster, &decision, p] {
      decision[p] = cluster[p].vc(to_bytes("prop" + std::to_string(p)));
    });
  }
  for (auto& t : threads) t.join();
  for (std::uint32_t p = 1; p < 4; ++p) EXPECT_EQ(decision[p], decision[0]);
  std::uint32_t filled = 0;
  for (const auto& e : decision[0]) {
    if (e.has_value()) ++filled;
  }
  EXPECT_GE(filled, 3u);  // n - f
}

TEST(Context, AtomicBroadcastTotalOrder) {
  ContextCluster cluster(4);
  constexpr int kPer = 5;
  std::vector<std::thread> threads;
  for (std::uint32_t p = 0; p < 4; ++p) {
    threads.emplace_back([&cluster, p] {
      for (int i = 0; i < kPer; ++i) {
        cluster[p].ab_bcast(to_bytes("ab" + std::to_string(p) + "-" + std::to_string(i)));
      }
    });
  }
  for (auto& t : threads) t.join();

  std::array<std::vector<std::string>, 4> order;
  for (std::uint32_t p = 0; p < 4; ++p) {
    for (int i = 0; i < 4 * kPer; ++i) {
      order[p].push_back(to_string(cluster[p].ab_recv().payload));
    }
  }
  for (std::uint32_t p = 1; p < 4; ++p) {
    EXPECT_EQ(order[p], order[0]) << "total order violated at node " << p;
  }
}

TEST(Context, ConsensusSequence) {
  // Repeated consensus calls use fresh numbered instances; results must be
  // independent and consistent.
  ContextCluster cluster(4);
  for (int round = 0; round < 3; ++round) {
    std::vector<std::thread> threads;
    std::array<std::optional<Bytes>, 4> decision;
    const std::string v = "round-" + std::to_string(round);
    for (std::uint32_t p = 0; p < 4; ++p) {
      threads.emplace_back([&cluster, &decision, &v, p] {
        decision[p] = cluster[p].mvc(to_bytes(v));
      });
    }
    for (auto& t : threads) t.join();
    for (std::uint32_t p = 0; p < 4; ++p) {
      ASSERT_TRUE(decision[p].has_value());
      EXPECT_EQ(to_string(*decision[p]), v);
    }
  }
}

TEST(Context, SubscribeModeDeliversInOrder) {
  // ab_subscribe switches node 3 to push delivery: the callback runs on
  // the reactor thread in total order, and the queue-based receivers on
  // the other nodes see the same order.
  ContextCluster cluster(4);
  std::vector<std::string> pushed;
  std::mutex mu;
  cluster[3].ab_subscribe([&](Context::AbDelivery d) {
    std::lock_guard<std::mutex> lock(mu);
    pushed.push_back(to_string(d.payload));
  });
  for (std::uint32_t p = 0; p < 4; ++p) {
    cluster[p].ab_bcast(to_bytes("sub" + std::to_string(p)));
  }
  std::vector<std::string> polled;
  for (int i = 0; i < 4; ++i) polled.push_back(to_string(cluster[0].ab_recv().payload));
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::minutes(1);
  while (std::chrono::steady_clock::now() < deadline) {
    {
      std::lock_guard<std::mutex> lock(mu);
      if (pushed.size() >= 4) break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_EQ(pushed, polled);
  // The subscriber bypasses the queue entirely.
  EXPECT_FALSE(cluster[3].ab_try_recv().has_value());
}

TEST(Context, BatchedAtomicBroadcastTotalOrder) {
  // Same burst as AtomicBroadcastTotalOrder, but with payload batching
  // enabled at every node: messages are packed into shared dissemination
  // broadcasts on the wire yet still deliver one-by-one in total order.
  const auto peers = local_peers(free_ports(4));
  std::vector<std::unique_ptr<Context>> nodes;
  for (std::uint32_t p = 0; p < 4; ++p) {
    Context::Options o;
    o.n = 4;
    o.self = p;
    o.peers = peers;
    o.master_secret = to_bytes("context-test-master");
    o.rng_seed = 1500 + p;
    o.batch.enabled = true;
    o.batch.max_msgs = 4;
    nodes.push_back(std::make_unique<Context>(o));
  }
  {
    std::vector<std::thread> starters;
    for (auto& c : nodes) starters.emplace_back([&c] { c->start(); });
    for (auto& t : starters) t.join();
  }
  constexpr int kPer = 6;
  for (std::uint32_t p = 0; p < 4; ++p) {
    for (int i = 0; i < kPer; ++i) {
      nodes[p]->ab_bcast(to_bytes("bt" + std::to_string(p) + "-" + std::to_string(i)));
    }
    nodes[p]->ab_flush();
  }
  std::array<std::vector<std::string>, 4> order;
  for (std::uint32_t p = 0; p < 4; ++p) {
    for (int i = 0; i < 4 * kPer; ++i) {
      order[p].push_back(to_string(nodes[p]->ab_recv().payload));
    }
  }
  for (std::uint32_t p = 1; p < 4; ++p) {
    EXPECT_EQ(order[p], order[0]) << "batched total order violated at node " << p;
  }
  // Batching actually engaged: fewer dissemination broadcasts than
  // messages, and the seal/unpack accounting matches the burst. Each
  // ab_bcast round-trips to the reactor, so any single node can lose every
  // "next message posted before the open batch's RB completes" race under
  // unlucky scheduling; aggregating over all four nodes keeps the assertion
  // meaningful (somewhere, batching packed messages) without that race.
  std::uint64_t sealed = 0;
  std::uint64_t batch_msgs = 0;
  for (std::uint32_t p = 0; p < 4; ++p) {
    const Metrics m = nodes[p]->metrics();
    sealed += m.ab_batches_sealed;
    batch_msgs += m.ab_batch_msgs;
  }
  EXPECT_EQ(batch_msgs, static_cast<std::uint64_t>(4 * kPer));
  EXPECT_GT(sealed, 0u);
  EXPECT_LT(sealed, static_cast<std::uint64_t>(4 * kPer));
}

TEST(Context, MetricsVisible) {
  ContextCluster cluster(4);
  cluster[0].rb_bcast(to_bytes("m"));
  for (std::uint32_t p = 0; p < 4; ++p) (void)cluster[p].rb_recv();
  const Metrics m = cluster[0].metrics();
  EXPECT_GE(m.rb_started_payload, 1u);
  EXPECT_GT(m.msgs_sent, 0u);
}

}  // namespace
}  // namespace ritas
