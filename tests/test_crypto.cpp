#include <gtest/gtest.h>

#include <string>

#include "common/bytes.h"
#include "crypto/ct.h"
#include "crypto/hmac.h"
#include "crypto/sha1.h"
#include "crypto/sha256.h"

namespace ritas {
namespace {

template <std::size_t N>
std::string hex(const std::array<std::uint8_t, N>& d) {
  return to_hex(ByteView(d.data(), d.size()));
}

// --- SHA-1 known-answer tests (FIPS 180-4 / RFC 3174) ----------------------

TEST(Sha1, EmptyInput) {
  EXPECT_EQ(hex(Sha1::hash(Bytes{})), "da39a3ee5e6b4b0d3255bfef95601890afd80709");
}

TEST(Sha1, Abc) {
  EXPECT_EQ(hex(Sha1::hash(to_bytes("abc"))),
            "a9993e364706816aba3e25717850c26c9cd0d89d");
}

TEST(Sha1, TwoBlockMessage) {
  EXPECT_EQ(hex(Sha1::hash(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "84983e441c3bd26ebaae4aa1f95129e5e54670f1");
}

TEST(Sha1, MillionAs) {
  Sha1 ctx;
  const Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) ctx.update(chunk);
  EXPECT_EQ(hex(ctx.finish()), "34aa973cd4c4daa4f61eeb2bdbad27316534016f");
}

TEST(Sha1, IncrementalMatchesOneShot) {
  const Bytes msg = to_bytes("the quick brown fox jumps over the lazy dog!!");
  for (std::size_t split = 0; split <= msg.size(); ++split) {
    Sha1 ctx;
    ctx.update(ByteView(msg.data(), split));
    ctx.update(ByteView(msg.data() + split, msg.size() - split));
    EXPECT_EQ(ctx.finish(), Sha1::hash(msg)) << "split=" << split;
  }
}

TEST(Sha1, ExactBlockBoundaries) {
  // 55/56/63/64/65 bytes straddle the padding edge cases.
  for (std::size_t len : {55u, 56u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    const Bytes msg(len, 0x5a);
    Sha1 a;
    a.update(msg);
    const auto one = a.finish();
    Sha1 b;
    for (std::size_t i = 0; i < len; ++i) b.update(ByteView(&msg[i], 1));
    EXPECT_EQ(one, b.finish()) << "len=" << len;
  }
}

TEST(Sha1, ResetReusesObject) {
  Sha1 ctx;
  ctx.update(to_bytes("garbage"));
  (void)ctx.finish();
  ctx.reset();
  ctx.update(to_bytes("abc"));
  EXPECT_EQ(hex(ctx.finish()), "a9993e364706816aba3e25717850c26c9cd0d89d");
}

// --- SHA-256 known-answer tests (FIPS 180-4) --------------------------------

TEST(Sha256, EmptyInput) {
  EXPECT_EQ(hex(Sha256::hash(Bytes{})),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(hex(Sha256::hash(to_bytes("abc"))),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(hex(Sha256::hash(to_bytes(
                "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"))),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionAs) {
  Sha256 ctx;
  const Bytes chunk(10000, 'a');
  for (int i = 0; i < 100; ++i) ctx.update(chunk);
  EXPECT_EQ(hex(ctx.finish()),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  const Bytes msg = to_bytes(std::string(200, 'x') + "suffix");
  for (std::size_t split : {0u, 1u, 63u, 64u, 65u, 100u, 206u}) {
    Sha256 ctx;
    ctx.update(ByteView(msg.data(), split));
    ctx.update(ByteView(msg.data() + split, msg.size() - split));
    EXPECT_EQ(ctx.finish(), Sha256::hash(msg)) << "split=" << split;
  }
}

// --- HMAC known-answer tests (RFC 2202 for SHA-1, RFC 4231 for SHA-256) ----

TEST(HmacSha1, Rfc2202Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hex(hmac_sha1(key, to_bytes("Hi There"))),
            "b617318655057264e28bc0b6fb378c8ef146be00");
}

TEST(HmacSha1, Rfc2202Case2) {
  EXPECT_EQ(hex(hmac_sha1(to_bytes("Jefe"), to_bytes("what do ya want for nothing?"))),
            "effcdf6ae5eb2fa2d27416d5f184df9c259a7c79");
}

TEST(HmacSha1, Rfc2202Case3) {
  const Bytes key(20, 0xaa);
  const Bytes msg(50, 0xdd);
  EXPECT_EQ(hex(hmac_sha1(key, msg)), "125d7342b9ac11cd91a39af48aa17b4f63f175d3");
}

TEST(HmacSha1, Rfc2202LongKey) {
  const Bytes key(80, 0xaa);  // longer than the block size -> key is hashed
  EXPECT_EQ(hex(hmac_sha1(key, to_bytes("Test Using Larger Than Block-Size Key - Hash Key First"))),
            "aa4ae5e15272d00e95705637ce8a3b55ed402112");
}

TEST(HmacSha256, Rfc4231Case1) {
  const Bytes key(20, 0x0b);
  EXPECT_EQ(hex(hmac_sha256(key, to_bytes("Hi There"))),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

TEST(HmacSha256, Rfc4231Case2) {
  EXPECT_EQ(hex(hmac_sha256(to_bytes("Jefe"), to_bytes("what do ya want for nothing?"))),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(HmacSha256, Rfc4231LongKeyLongData) {
  const Bytes key(131, 0xaa);
  EXPECT_EQ(hex(hmac_sha256(key, to_bytes(
                "This is a test using a larger than block-size key and a "
                "larger than block-size data. The key needs to be hashed "
                "before being used by the HMAC algorithm."))),
            "9b09ffa71b942fcb27635fbcd5b0e944bfdc63644f0713938a7f51535c3a35e2");
}

TEST(Hmac, EmptyKeyAndMessage) {
  // Must not crash; spot-check against a stable value computed once.
  const auto d = hmac_sha256(Bytes{}, Bytes{});
  EXPECT_EQ(hex(d), "b613679a0814d9ec772f95d778c35fc5ff1697c493715653c6c712144292c5ad");
}

// --- constant-time compare ---------------------------------------------------

TEST(CtEqual, EqualAndUnequal) {
  EXPECT_TRUE(ct_equal(to_bytes("secret"), to_bytes("secret")));
  EXPECT_FALSE(ct_equal(to_bytes("secret"), to_bytes("secreT")));
  EXPECT_FALSE(ct_equal(to_bytes("secret"), to_bytes("secre")));
  EXPECT_TRUE(ct_equal(Bytes{}, Bytes{}));
}

TEST(CtEqual, DetectsSingleBitFlip) {
  Bytes a(64, 0x41);
  for (std::size_t i = 0; i < a.size(); ++i) {
    Bytes b = a;
    b[i] ^= 0x01;
    EXPECT_FALSE(ct_equal(a, b)) << "byte " << i;
  }
}

}  // namespace
}  // namespace ritas
