// Reproducibility guarantees of the simulation harness: identical seeds
// replay identical executions — including runs of the *randomized*
// consensus — and different seeds explore different schedules. This is
// what makes every experiment in EXPERIMENTS.md exactly re-runnable.
#include <gtest/gtest.h>

#include "sim_helpers.h"

namespace ritas {
namespace {

using test::Cluster;
using test::fast_lan;
using test::kDeadline;

struct Fingerprint {
  std::uint64_t msgs_sent = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t coin_flips = 0;
  std::uint64_t rounds = 0;
  sim::Time finish = 0;
  bool decision = false;
  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;
};

Fingerprint run_fingerprint(std::uint64_t seed, bool byzantine) {
  test::ClusterOptions o = fast_lan(4, seed);
  o.lan.jitter_ns = 500'000;
  if (byzantine) o.byzantine = {2};
  Cluster c(o);
  auto cap = test::run_binary_consensus(c, {true, false, true, false});
  Fingerprint f;
  const Metrics m = c.total_metrics();
  f.msgs_sent = m.msgs_sent;
  f.bytes_sent = m.bytes_sent;
  f.coin_flips = m.bc_coin_flips;
  f.rounds = m.bc_rounds_total;
  f.finish = c.now();
  f.decision = cap.got[0].has_value() && *cap.got[0];
  return f;
}

TEST(Determinism, SameSeedSameExecution) {
  for (std::uint64_t seed : {1ULL, 7ULL, 99ULL}) {
    EXPECT_EQ(run_fingerprint(seed, false), run_fingerprint(seed, false))
        << "seed " << seed;
  }
}

TEST(Determinism, SameSeedSameExecutionWithByzantine) {
  EXPECT_EQ(run_fingerprint(5, true), run_fingerprint(5, true));
}

TEST(Determinism, DifferentSeedsDiverge) {
  // At least the traffic timing fingerprint must differ across seeds
  // (jitter is seeded); over several seeds the finish times cannot all
  // collide.
  std::set<sim::Time> finishes;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    finishes.insert(run_fingerprint(seed, false).finish);
  }
  EXPECT_GT(finishes.size(), 1u);
}

TEST(Determinism, AtomicBroadcastBurstReplays) {
  auto run = [](std::uint64_t seed) {
    test::ClusterOptions o = fast_lan(4, seed);
    o.lan.jitter_ns = 300'000;
    Cluster c(o);
    std::vector<AtomicBroadcast*> ab(4, nullptr);
    std::vector<std::pair<ProcessId, std::uint64_t>> order;
    std::uint64_t count = 0;
    const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
    for (ProcessId p : c.live()) {
      AtomicBroadcast::DeliverFn cb;
      if (p == 0) {
        cb = [&order](ProcessId origin, std::uint64_t rbid, Slice) {
          order.emplace_back(origin, rbid);
        };
      } else {
        cb = [&count](ProcessId, std::uint64_t, Slice) { ++count; };
      }
      ab[p] = &c.create_root<AtomicBroadcast>(p, id, std::move(cb));
    }
    for (int i = 0; i < 6; ++i) {
      for (ProcessId p : c.live()) {
        c.call(p, [&, p] { ab[p]->bcast(to_bytes("d")); });
      }
    }
    c.run_until([&] { return order.size() >= 24; }, kDeadline);
    return std::make_pair(order, c.now());
  };
  EXPECT_EQ(run(11), run(11));
  // Not a requirement, but overwhelmingly likely: a different seed gives a
  // different finish time.
  EXPECT_NE(run(11).second, run(12).second);
}

TEST(Determinism, TraceBytesAreBitIdentical) {
  // The observability layer inherits the determinism guarantee: a traced
  // run serializes to the exact same bytes every time for a given seed.
  auto traced = [](std::uint64_t seed) {
    test::ClusterOptions o = fast_lan(4, seed);
    o.lan.jitter_ns = 500'000;
    o.trace = true;
    Cluster c(o);
    test::run_binary_consensus(c, {true, false, true, false});
    c.run_all();
    return c.trace_bytes();
  };
  const Bytes a = traced(21);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, traced(21));
  EXPECT_NE(a, traced(22));
}

TEST(Determinism, BatchedTraceBytesAreBitIdentical) {
  // Payload batching is sealed by protocol events only (no clocks), so a
  // batched run inherits the bit-identical trace guarantee — including the
  // new ab.batch_seal / ab.batch_unpack events.
  auto traced = [](std::uint64_t seed) {
    test::ClusterOptions o = fast_lan(4, seed);
    o.lan.jitter_ns = 500'000;
    o.trace = true;
    o.stack.ab_batch.enabled = true;
    o.stack.ab_batch.max_batch_msgs = 4;
    Cluster c(o);
    const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
    std::vector<AtomicBroadcast*> ab(4, nullptr);
    std::vector<std::uint64_t> delivered(4, 0);
    for (ProcessId p : c.live()) {
      ab[p] = &c.create_root<AtomicBroadcast>(
          p, id, [&delivered, p](ProcessId, std::uint64_t, Slice) { ++delivered[p]; });
    }
    for (ProcessId p : c.live()) {
      c.call(p, [&, p] {
        for (int i = 0; i < 10; ++i) {
          ab[p]->bcast(to_bytes("d" + std::to_string(p) + std::to_string(i)));
        }
        ab[p]->flush();
      });
    }
    c.run_until([&] { return delivered[0] >= 40; }, kDeadline);
    c.run_all();
    return c.trace_bytes();
  };
  const Bytes a = traced(31);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, traced(31));
  EXPECT_NE(a, traced(32));
}

TEST(Determinism, TracingDoesNotPerturbExecution) {
  // Attaching tracers must not change the schedule, the traffic or the
  // decisions — it is a pure observer.
  auto fingerprint = [](bool trace) {
    test::ClusterOptions o = fast_lan(4, 13);
    o.lan.jitter_ns = 500'000;
    o.trace = trace;
    Cluster c(o);
    auto cap = test::run_binary_consensus(c, {true, false, false, true});
    c.run_all();
    const Metrics m = c.total_metrics();
    return std::tuple(m.msgs_sent, m.bytes_sent, m.bc_coin_flips,
                      m.bc_rounds_total, c.now(), cap.got[0]);
  };
  EXPECT_EQ(fingerprint(false), fingerprint(true));
}

// --- variant-API golden traces ---------------------------------------------
// The pluggable-variant refactor (core/variants.h) must leave the default
// Bracha path bit-identical: same seed => the exact trace bytes the
// pre-variant stack produced. The constants below were captured from the
// last pre-refactor build (direct ReliableBroadcast/BinaryConsensus
// construction); the workloads replicate that capture verbatim.

std::uint64_t fnv1a(const Bytes& b) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::uint8_t c : b) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Bytes golden_bc_trace(const VariantConfig& variants) {
  test::ClusterOptions o = fast_lan(4, 21);
  o.lan.jitter_ns = 500'000;
  o.trace = true;
  o.stack.variants = variants;
  Cluster c(o);
  std::vector<std::optional<bool>> got(4);
  const InstanceId id = InstanceId::root(ProtocolType::kBinaryConsensus, 0);
  const std::vector<bool> proposals = {true, false, true, false};
  std::vector<BcAlgorithm*> bc(4, nullptr);
  for (ProcessId p : c.live()) {
    bc[p] = &c.create_bc(p, id, Attribution::kAgreement,
                         [&got, p](bool v) { got[p] = v; });
  }
  for (ProcessId p : c.live()) {
    c.call(p, [&, p] { bc[p]->propose(proposals[p]); });
  }
  c.run_until(
      [&] {
        for (ProcessId p : c.live()) {
          if (!got[p].has_value()) return false;
        }
        return true;
      },
      kDeadline);
  c.run_all();
  return c.trace_bytes();
}

TEST(Determinism, DefaultVariantTraceMatchesPreRefactorGolden) {
  const Bytes t = golden_bc_trace(VariantConfig{});
  EXPECT_EQ(t.size(), 92808u);
  EXPECT_EQ(fnv1a(t), 0x1b098e5b449cce0dULL);
  // Selecting Bracha explicitly is the same configuration as the default.
  VariantConfig explicit_bracha;
  explicit_bracha.rb = RbVariant::kBracha;
  explicit_bracha.bc = BcVariant::kBracha;
  EXPECT_EQ(t, golden_bc_trace(explicit_bracha));
}

TEST(Determinism, DefaultVariantMvcTraceMatchesPreRefactorGolden) {
  // The MVC composite exercises RB + EB + BC children through the factory
  // seam in one run.
  test::ClusterOptions o = fast_lan(4, 3);
  o.trace = true;
  Cluster c(o);
  std::vector<std::optional<std::optional<Bytes>>> got(4);
  const InstanceId id =
      InstanceId::root(ProtocolType::kMultiValuedConsensus, 0);
  std::vector<MultiValuedConsensus*> mvc(4, nullptr);
  for (ProcessId p : c.live()) {
    mvc[p] = &c.create_root<MultiValuedConsensus>(
        p, id, Attribution::kAgreement,
        [&got, p](std::optional<Bytes> v) { got[p] = std::move(v); });
  }
  for (ProcessId p : c.live()) {
    c.call(p, [&, p] { mvc[p]->propose(to_bytes("m")); });
  }
  c.run_until(
      [&] {
        for (ProcessId p : c.live()) {
          if (!got[p].has_value()) return false;
        }
        return true;
      },
      kDeadline);
  c.run_all();
  const Bytes t = c.trace_bytes();
  EXPECT_EQ(t.size(), 132336u);
  EXPECT_EQ(fnv1a(t), 0x9bbd4d6f1d98da24ULL);
}

TEST(Determinism, NonDefaultVariantTracesAreDeterministicAndDistinct) {
  // Same seed => bit-identical run holds for every variant, and a variant
  // switch actually changes the wire activity.
  VariantConfig crain;
  crain.bc = BcVariant::kCrain;
  // The Crain variant requires the dealt common coin (validate_variants).
  auto crain_trace = [&] {
    test::ClusterOptions o = fast_lan(4, 21);
    o.lan.jitter_ns = 500'000;
    o.trace = true;
    o.stack.coin_mode = CoinMode::kDealt;
    o.stack.variants = crain;
    Cluster c(o);
    std::vector<std::optional<bool>> got(4);
    const InstanceId id = InstanceId::root(ProtocolType::kBinaryConsensus, 0);
    const std::vector<bool> proposals = {true, false, true, false};
    std::vector<BcAlgorithm*> bc(4, nullptr);
    for (ProcessId p : c.live()) {
      bc[p] = &c.create_bc(p, id, Attribution::kAgreement,
                           [&got, p](bool v) { got[p] = v; });
    }
    for (ProcessId p : c.live()) {
      c.call(p, [&, p] { bc[p]->propose(proposals[p]); });
    }
    c.run_until(
        [&] {
          for (ProcessId p : c.live()) {
            if (!got[p].has_value()) return false;
          }
          return true;
        },
        kDeadline);
    c.run_all();
    return c.trace_bytes();
  };
  const Bytes a = crain_trace();
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a, crain_trace());
  EXPECT_NE(a, golden_bc_trace(VariantConfig{}));
}

TEST(Determinism, ClusterMetricsAreStableAcrossRuns) {
  auto metrics_of = [](std::uint64_t seed) {
    test::ClusterOptions o = fast_lan(4, seed);
    Cluster c(o);
    auto cap = test::run_mvc(
        c, {to_bytes("m"), to_bytes("m"), to_bytes("m"), to_bytes("m")});
    const Metrics m = c.total_metrics();
    return std::tuple(m.msgs_sent, m.bytes_sent, m.rb_started_agreement,
                      m.eb_started_agreement, c.now());
  };
  EXPECT_EQ(metrics_of(3), metrics_of(3));
}

}  // namespace
}  // namespace ritas
