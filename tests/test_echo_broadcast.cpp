// Matrix echo broadcast: delivery, hash-vector verification, corrupt-origin
// behaviour (weaker guarantees than reliable broadcast, but consistency
// among the correct processes that do deliver).
#include "core/echo_broadcast.h"

#include <gtest/gtest.h>

#include "sim_helpers.h"

namespace ritas {
namespace {

using test::Cluster;
using test::DeliveryLog;
using test::fast_lan;
using test::kDeadline;

InstanceId eb_root(std::uint64_t seq = 1) {
  return InstanceId::root(ProtocolType::kEchoBroadcast, seq);
}

std::vector<EchoBroadcast*> make_eb(Cluster& c, DeliveryLog& log,
                                    ProcessId origin, std::uint64_t seq = 1) {
  std::vector<EchoBroadcast*> eb(c.n(), nullptr);
  for (ProcessId p : c.live()) {
    eb[p] = &c.create_root<EchoBroadcast>(p, eb_root(seq), origin,
                                          Attribution::kPayload, log.sink(p));
  }
  return eb;
}

TEST(EchoBroadcast, DeliversToAllCorrectProcesses) {
  Cluster c(fast_lan(4, 1));
  DeliveryLog log(4);
  auto eb = make_eb(c, log, 0);
  c.call(0, [&] { eb[0]->bcast(to_bytes("echo!")); });
  ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.live(), 1); }, kDeadline));
  for (ProcessId p : c.live()) {
    EXPECT_EQ(to_string(log.by_process[p][0]), "echo!");
  }
}

TEST(EchoBroadcast, OriginDeliversItsOwnMessage) {
  Cluster c(fast_lan(4, 2));
  DeliveryLog log(4);
  auto eb = make_eb(c, log, 1);
  c.call(1, [&] { eb[1]->bcast(to_bytes("mine")); });
  ASSERT_TRUE(c.run_until([&] { return !log.by_process[1].empty(); }, kDeadline));
  EXPECT_TRUE(eb[1]->delivered());
}

TEST(EchoBroadcast, UsesFewerMessagesThanReliableBroadcast) {
  // The whole point of echo broadcast: 3n-ish unicasts instead of n + 2n^2.
  Cluster c(fast_lan(4, 3));
  DeliveryLog log(4);
  auto eb = make_eb(c, log, 0);
  c.call(0, [&] { eb[0]->bcast(to_bytes("cheap")); });
  c.run_all();
  const std::uint64_t eb_msgs = c.total_metrics().msgs_sent;

  Cluster c2(fast_lan(4, 3));
  DeliveryLog log2(4);
  std::vector<RbAlgorithm*> rb(4, nullptr);
  for (ProcessId p : c2.live()) {
    rb[p] = &c2.create_rb(
        p, InstanceId::root(ProtocolType::kReliableBroadcast, 1), 0,
        Attribution::kPayload, log2.sink(p));
  }
  c2.call(0, [&] { rb[0]->bcast(to_bytes("cheap")); });
  c2.run_all();
  EXPECT_LT(eb_msgs, c2.total_metrics().msgs_sent);
}

TEST(EchoBroadcast, ToleratesCrashedReceiver) {
  test::ClusterOptions o = fast_lan(4, 4);
  o.crashed = {2};
  Cluster c(o);
  DeliveryLog log(4);
  auto eb = make_eb(c, log, 0);
  c.call(0, [&] { eb[0]->bcast(to_bytes("m")); });
  ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.live(), 1); }, kDeadline));
}

TEST(EchoBroadcast, CorruptMatrixDeliversNowhere) {
  // Origin sends garbage hash columns: fewer than f+1 valid cells per
  // receiver, so no correct process may deliver.
  class MatrixCorruptor : public Adversary {
   public:
    bool eb_corrupt_matrix() override { return true; }
  };
  test::ClusterOptions o = fast_lan(4, 5);
  o.byzantine = {0};
  o.adversary_factory = [] { return std::make_unique<MatrixCorruptor>(); };
  Cluster c(o);
  DeliveryLog log(4);
  auto eb = make_eb(c, log, 0);
  c.call(0, [&] { eb[0]->bcast(to_bytes("poisoned")); });
  c.run_all();
  for (ProcessId p : c.correct_set()) {
    EXPECT_TRUE(log.by_process[p].empty()) << "p" << p;
  }
  // The verification failures were counted.
  EXPECT_GT(c.total_metrics().invalid_dropped, 0u);
}

TEST(EchoBroadcast, EmptyAndLargePayloads) {
  Cluster c(fast_lan(4, 6));
  DeliveryLog log_a(4), log_b(4);
  auto a = make_eb(c, log_a, 0, 1);
  auto b = make_eb(c, log_b, 0, 2);
  const Bytes big(32 * 1024, 0xcd);
  c.call(0, [&] { a[0]->bcast(Bytes{}); });
  c.call(0, [&] { b[0]->bcast(Bytes(big)); });
  ASSERT_TRUE(c.run_until(
      [&] {
        return log_a.everyone_has(c.live(), 1) && log_b.everyone_has(c.live(), 1);
      },
      kDeadline));
  EXPECT_TRUE(log_a.by_process[3][0].empty());
  EXPECT_EQ(log_b.by_process[3][0], big);
}

class EbGroupSize : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(EbGroupSize, DeliversAcrossGroupSizes) {
  const std::uint32_t n = GetParam();
  Cluster c(fast_lan(n, 20 + n));
  DeliveryLog log(n);
  auto eb = make_eb(c, log, 0);
  c.call(0, [&] { eb[0]->bcast(to_bytes("sweep")); });
  ASSERT_TRUE(c.run_until([&] { return log.everyone_has(c.live(), 1); }, kDeadline));
}

INSTANTIATE_TEST_SUITE_P(GroupSizes, EbGroupSize,
                         ::testing::Values(4u, 5u, 7u, 10u, 13u));

TEST(EchoBroadcast, VectorsFromWrongSizeRejected) {
  // A direct (non-child) message with a malformed body must be dropped and
  // counted, not crash. We hand-deliver a bogus VECT to the origin.
  Cluster c(fast_lan(4, 7));
  DeliveryLog log(4);
  auto eb = make_eb(c, log, 0);
  c.call(0, [&] { eb[0]->bcast(to_bytes("x")); });
  // Forge a VECT with the wrong length from peer 1 to origin 0.
  Message m;
  m.path = eb_root(1);
  m.tag = EchoBroadcast::kVect;
  m.payload = Bytes(7, 0xee);  // not n * 20 bytes
  c.stack(0).on_packet(1, m.encode());
  c.run_all();
  // Delivery still succeeds: the origin gathers n-f valid vectors from the
  // correct processes (its own included).
  EXPECT_TRUE(log.everyone_has(c.live(), 1));
}

}  // namespace
}  // namespace ritas
