// Schedule-exploration harness: determinism of trials, JSON round-trips,
// the injected weak-quorum bug being found and shrunk, bit-identical
// replay of minimized schedules, and stall (liveness-budget) detection.
#include <gtest/gtest.h>

#include "sim/explore.h"

namespace ritas::sim {
namespace {

TEST(Explore, ScheduleJsonRoundTrip) {
  Explorer::Config cfg;
  cfg.workload = Workload::kAtomicBroadcast;
  Explorer ex(cfg);
  for (std::uint64_t seed : {1ull, 42ull, 987654321ull}) {
    const Schedule s = ex.make_schedule(seed);
    const std::string json = s.to_json();
    const auto back = Schedule::from_json(json);
    ASSERT_TRUE(back.has_value()) << json;
    EXPECT_EQ(back->to_json(), json);
  }
}

TEST(Explore, ScheduleJsonRejectsMalformedInput) {
  EXPECT_FALSE(Schedule::from_json("").has_value());
  EXPECT_FALSE(Schedule::from_json("not json").has_value());
  EXPECT_FALSE(Schedule::from_json("{}").has_value());
  EXPECT_FALSE(Schedule::from_json("[1,2,3]").has_value());
  // Wrong version.
  Schedule s;
  std::string json = s.to_json();
  const auto pos = json.find("\"version\":1");
  ASSERT_NE(pos, std::string::npos);
  std::string bad = json;
  bad.replace(pos, 11, "\"version\":2");
  EXPECT_FALSE(Schedule::from_json(bad).has_value());
  // Unknown workload.
  bad = json;
  const auto wpos = bad.find("\"workload\":\"bc\"");
  ASSERT_NE(wpos, std::string::npos);
  bad.replace(wpos, 15, "\"workload\":\"zz\"");
  EXPECT_FALSE(Schedule::from_json(bad).has_value());
}

TEST(Explore, ScheduleJsonAcceptsArtifactWrapper) {
  // The CLI wraps the schedule in a report object; from_json must descend.
  Explorer ex(Explorer::Config{});
  const Schedule s = ex.make_schedule(7);
  const std::string wrapped =
      "{\"version\":1,\"tool\":\"ritas_explore\",\"fingerprint\":123,"
      "\"schedule\":" + s.to_json() + "}";
  const auto back = Schedule::from_json(wrapped);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->to_json(), s.to_json());
}

TEST(Explore, MakeScheduleIsDeterministic) {
  Explorer a{Explorer::Config{}};
  Explorer b{Explorer::Config{}};
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    EXPECT_EQ(a.make_schedule(seed).to_json(), b.make_schedule(seed).to_json())
        << "seed " << seed;
  }
}

TEST(Explore, SameScheduleSameTrialTrace) {
  // Same seed => bit-identical run: the observation-stream fingerprint,
  // event count and end time must all match across re-executions.
  Explorer ex(Explorer::Config{});
  for (std::uint64_t seed : {3ull, 11ull, 29ull}) {
    const Schedule s = ex.make_schedule(seed);
    const TrialResult r1 = Explorer::run_trial(s);
    const TrialResult r2 = Explorer::run_trial(s);
    EXPECT_EQ(r1.fingerprint, r2.fingerprint) << "seed " << seed;
    EXPECT_EQ(r1.events, r2.events) << "seed " << seed;
    EXPECT_EQ(r1.end_time, r2.end_time) << "seed " << seed;
    EXPECT_EQ(r1.violations, r2.violations) << "seed " << seed;
    EXPECT_EQ(r1.completed, r2.completed) << "seed " << seed;
  }
  // Different seeds perturb the trace: fingerprints must differ.
  EXPECT_NE(Explorer::run_trial(ex.make_schedule(3)).fingerprint,
            Explorer::run_trial(ex.make_schedule(4)).fingerprint);
}

TEST(Explore, CleanSweepFindsNothing) {
  Explorer::Config cfg;
  cfg.messages = 1;
  Explorer ex(cfg);
  const auto finding = ex.explore(1, 30);
  EXPECT_FALSE(finding.has_value());
  EXPECT_EQ(ex.metrics().explore_trials, 30u);
  EXPECT_EQ(ex.metrics().explore_violations, 0u);
  EXPECT_EQ(ex.metrics().explore_stalls, 0u);
}

TEST(Explore, VariantSweepsFindNothing) {
  // Per-variant explorer smoke: every non-default algorithm must survive
  // the same randomized-schedule battery (faultloads, perturbations,
  // adversary hooks) the default stack does — 40+ seeds per variant.
  struct Case {
    Workload workload;
    std::uint32_t n;
    VariantConfig variants;
  };
  const Case cases[] = {
      {Workload::kReliableBroadcast, 6,
       {RbVariant::kImbsRaynal, BcVariant::kBracha}},
      {Workload::kBinaryConsensus, 4, {RbVariant::kBracha, BcVariant::kCrain}},
      {Workload::kMultiValuedConsensus, 6,
       {RbVariant::kImbsRaynal, BcVariant::kCrain}},
  };
  for (const Case& cs : cases) {
    Explorer::Config cfg;
    cfg.workload = cs.workload;
    cfg.n = cs.n;
    cfg.variants = cs.variants;
    cfg.messages = 1;
    Explorer ex(cfg);
    const auto finding = ex.explore(1, 45);
    EXPECT_FALSE(finding.has_value())
        << rb_variant_name(cs.variants.rb) << "/"
        << bc_variant_name(cs.variants.bc) << " seed "
        << (finding ? finding->trial_seed : 0) << ": "
        << (finding ? finding->result.violations.size() : 0) << " violations";
    EXPECT_EQ(ex.metrics().explore_trials, 45u);
    EXPECT_EQ(ex.metrics().explore_violations, 0u);
  }
}

TEST(Explore, VariantScheduleJsonRoundTripAndValidation) {
  Explorer::Config cfg;
  cfg.workload = Workload::kReliableBroadcast;
  cfg.n = 6;
  cfg.variants = {RbVariant::kImbsRaynal, BcVariant::kCrain};
  Explorer ex(cfg);
  const Schedule s = ex.make_schedule(11);
  EXPECT_EQ(s.variants, cfg.variants);
  EXPECT_EQ(s.coin_mode, CoinMode::kDealt);  // implied by crain
  const std::string json = s.to_json();
  EXPECT_NE(json.find("\"rb_variant\":\"imbs-raynal\""), std::string::npos);
  EXPECT_NE(json.find("\"bc_variant\":\"crain\""), std::string::npos);
  const auto back = Schedule::from_json(json);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, s);
  // Unknown variant names are rejected, as are combos a stack would refuse
  // to construct (imbs-raynal below n = 6).
  std::string bad = json;
  const auto pos = bad.find("\"rb_variant\":\"imbs-raynal\"");
  ASSERT_NE(pos, std::string::npos);
  bad.replace(pos, 26, "\"rb_variant\":\"nonesuch12\"");
  EXPECT_FALSE(Schedule::from_json(bad).has_value());
  bad = json;
  const auto npos_ = bad.find("\"n\":6");
  ASSERT_NE(npos_, std::string::npos);
  bad.replace(npos_, 5, "\"n\":4");
  EXPECT_FALSE(Schedule::from_json(bad).has_value());
  // Absent variant fields mean the default (Bracha) stack.
  const auto legacy = Schedule::from_json(Schedule{}.to_json());
  ASSERT_TRUE(legacy.has_value());
  EXPECT_EQ(legacy->variants, VariantConfig{});
}

TEST(Explore, ImbsRaynalFaultBudgetRespectsItsBound) {
  // At n = 6 the stack-wide budget is f = 1 but so is (n-1)/5; at n = 7
  // the stack allows 2 while Imbs–Raynal still only tolerates 1. No
  // generated schedule may exceed the weaker bound.
  Explorer::Config cfg;
  cfg.workload = Workload::kReliableBroadcast;
  cfg.n = 7;
  cfg.variants.rb = RbVariant::kImbsRaynal;
  Explorer ex(cfg);
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    const Schedule s = ex.make_schedule(seed);
    std::size_t crashes = 0;
    for (const Perturbation& p : s.perturbations) {
      if (p.kind == Perturbation::Kind::kCrash) ++crashes;
    }
    EXPECT_LE(s.byzantine.size() + crashes, 1u) << "seed " << seed;
  }
}

TEST(Explore, WeakQuorumBugIsFoundShrunkAndReplaysBitIdentically) {
  // The acceptance gate for the whole harness: with the deliberately
  // weakened BC decide rule the explorer must find an agreement violation
  // within 200 seeded trials, shrink it to a small schedule, and the
  // serialized artifact must re-execute bit-identically.
  Explorer::Config cfg;
  cfg.weak_bc_quorum = true;
  Explorer ex(cfg);
  const auto finding = ex.explore(1, 200);
  ASSERT_TRUE(finding.has_value()) << "no violation within 200 trials";
  EXPECT_GE(ex.metrics().explore_violations, 1u);
  EXPECT_FALSE(finding->from_stall);
  EXPECT_FALSE(finding->result.violations.empty());

  // Shrinking reached a small schedule and never lost the violation.
  EXPECT_LE(finding->minimized.size(), 6u)
      << finding->minimized.to_json();
  EXPECT_LE(finding->minimized.size(), finding->schedule.size());

  // The violation is a BC agreement split, not some side effect.
  bool agreement = false;
  for (const std::string& v : finding->result.violations) {
    agreement = agreement || v.find("bc.agreement") != std::string::npos;
  }
  EXPECT_TRUE(agreement) << finding->result.violations.front();

  // Round-trip through the serialized artifact, then re-execute: the
  // replay must reproduce the violation with the same fingerprint.
  const auto replayed = Schedule::from_json(finding->minimized.to_json());
  ASSERT_TRUE(replayed.has_value());
  const TrialResult again = Explorer::run_trial(*replayed);
  EXPECT_EQ(again.fingerprint, finding->result.fingerprint);
  EXPECT_EQ(again.events, finding->result.events);
  EXPECT_EQ(again.end_time, finding->result.end_time);
  EXPECT_EQ(again.violations, finding->result.violations);
}

TEST(Explore, CorrectQuorumSurvivesTheSameSchedules) {
  // The exact schedules that break the weakened variant must be harmless
  // against the real decide rule.
  Explorer::Config weak;
  weak.weak_bc_quorum = true;
  Explorer ex(weak);
  const auto finding = ex.explore(1, 200);
  ASSERT_TRUE(finding.has_value());
  Schedule fixed = finding->minimized;
  fixed.weak_bc_quorum = false;
  const TrialResult r = Explorer::run_trial(fixed);
  EXPECT_TRUE(r.violations.empty())
      << "real quorum violated: " << r.violations.front();
  EXPECT_TRUE(r.completed);
}

TEST(Explore, LivenessBudgetFlagsAStalledRun) {
  // Crashing f+1 processes at t=0 leaves n-f-1 < n-f live: binary
  // consensus can never assemble a step quorum and the liveness budget
  // must flag the run as stalled instead of spinning forever.
  Schedule s;
  s.seed = 1;
  s.n = 4;
  s.workload = Workload::kBinaryConsensus;
  s.messages = 1;
  s.max_events = 50'000;
  s.perturbations.push_back(
      {Perturbation::Kind::kCrash, 2, 0, 0, 0, 0, 0});
  s.perturbations.push_back(
      {Perturbation::Kind::kCrash, 3, 0, 0, 0, 0, 0});
  const TrialResult r = Explorer::run_trial(s);
  EXPECT_TRUE(r.stalled);
  EXPECT_FALSE(r.completed);

  // Stalled runs are deterministic too: same schedule, same fingerprint.
  const TrialResult again = Explorer::run_trial(s);
  EXPECT_TRUE(again.stalled);
  EXPECT_EQ(again.fingerprint, r.fingerprint);
}

}  // namespace
}  // namespace ritas::sim
