// Fault scenarios beyond the paper's static faultloads: crashes injected
// mid-run, Byzantine AB_VECT vectors carrying fabricated identifiers, and
// recovery-shaped checks (late joiners catching up through reliable
// broadcast totality and the out-of-context machinery).
#include <gtest/gtest.h>

#include "sim_helpers.h"

namespace ritas {
namespace {

using test::Cluster;
using test::fast_lan;
using test::kDeadline;

struct AbFixture {
  std::vector<AtomicBroadcast*> ab;
  std::vector<std::vector<std::pair<ProcessId, std::uint64_t>>> order;

  AbFixture(Cluster& c) : ab(c.n(), nullptr), order(c.n()) {
    const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
    for (ProcessId p : c.live()) {
      ab[p] = &c.create_root<AtomicBroadcast>(
          p, id, [this, p](ProcessId origin, std::uint64_t rbid, Slice) {
            order[p].emplace_back(origin, rbid);
          });
    }
  }
};

TEST(FaultInjection, CrashDuringBurstPreservesTotalOrder) {
  // Process 3 participates for 30 ms of the burst, then dies. Survivors
  // must finish the burst and keep identical orders.
  test::ClusterOptions o = fast_lan(4, 1);
  o.timed_crashes = {{3, 30 * sim::kMillisecond}};
  Cluster c(o);
  AbFixture f(c);

  const std::uint32_t kPer = 15;
  for (std::uint32_t i = 0; i < kPer; ++i) {
    for (ProcessId p = 0; p < 3; ++p) {  // survivors' share
      c.call(p, [&, p] { f.ab[p]->bcast(to_bytes("s")); });
    }
  }
  // The doomed process also broadcasts; whatever completed dissemination
  // before the crash gets ordered, the rest must not wedge anyone.
  c.call(3, [&] {
    for (int i = 0; i < 5; ++i) f.ab[3]->bcast(to_bytes("doomed"));
  });

  const std::size_t survivors_min = 3 * kPer;
  ASSERT_TRUE(c.run_until(
      [&] {
        for (ProcessId p = 0; p < 3; ++p) {
          if (f.order[p].size() < survivors_min) return false;
        }
        return true;
      },
      kDeadline));
  c.run_all();
  for (ProcessId p = 1; p < 3; ++p) {
    EXPECT_EQ(f.order[p], f.order[0]) << "survivor " << p << " diverged";
  }
}

TEST(FaultInjection, StaggeredCrashesWithinF) {
  // n = 7 tolerates f = 2; two processes die at different times mid-run.
  test::ClusterOptions o = fast_lan(7, 2);
  o.timed_crashes = {{5, 20 * sim::kMillisecond}, {6, 60 * sim::kMillisecond}};
  Cluster c(o);
  AbFixture f(c);
  for (int i = 0; i < 8; ++i) {
    for (ProcessId p = 0; p < 5; ++p) {
      c.call(p, [&, p] { f.ab[p]->bcast(to_bytes("x")); });
    }
  }
  ASSERT_TRUE(c.run_until(
      [&] {
        for (ProcessId p = 0; p < 5; ++p) {
          if (f.order[p].size() < 40) return false;
        }
        return true;
      },
      kDeadline));
  for (ProcessId p = 1; p < 5; ++p) {
    const std::size_t k = std::min(f.order[p].size(), f.order[0].size());
    for (std::size_t i = 0; i < k; ++i) {
      ASSERT_EQ(f.order[p][i], f.order[0][i]);
    }
  }
}

TEST(FaultInjection, FabricatedIdentifiersInAbVectAreFiltered) {
  // A Byzantine process reliably broadcasts an AB_VECT full of identifiers
  // that were never disseminated. They cannot reach f+1 multiplicity, so W
  // never contains them, nothing blocks, and nothing bogus is delivered.
  Cluster c(fast_lan(4, 3));
  AbFixture f(c);

  // Craft the attacker's (p3) AB_VECT INIT for round 0 and inject it into
  // every correct stack; their own ECHO/READY amplification completes the
  // reliable broadcast of the junk vector.
  std::vector<AtomicBroadcast::MsgId> junk;
  for (std::uint64_t k = 0; k < 50; ++k) junk.push_back({2, 400 + k});
  Message m;
  m.path = InstanceId::root(ProtocolType::kAtomicBroadcast, 0)
               .child({ProtocolType::kReliableBroadcast,
                       AtomicBroadcast::vect_seq(0, 3)});
  m.tag = ReliableBroadcast::kInit;
  m.payload = AtomicBroadcast::encode_ids(junk);
  for (ProcessId p = 0; p < 3; ++p) {
    c.stack(p).on_packet(3, m.encode());
  }

  // Legitimate traffic from a correct process.
  c.call(0, [&] { f.ab[0]->bcast(to_bytes("real")); });
  ASSERT_TRUE(c.run_until(
      [&] {
        for (ProcessId p = 0; p < 3; ++p) {
          if (f.order[p].empty()) return false;
        }
        return true;
      },
      kDeadline));
  c.run_all();
  for (ProcessId p = 0; p < 3; ++p) {
    for (const auto& [origin, rbid] : f.order[p]) {
      EXPECT_FALSE(origin == 2 && rbid >= 400) << "fabricated id delivered";
    }
  }
}

TEST(FaultInjection, LateRootCreationCatchesUpThroughOoc) {
  // Process 2 creates its atomic broadcast instance only after the others
  // already ran a full agreement round; the parked traffic plus reliable
  // broadcast totality must bring it to the same order.
  Cluster c(fast_lan(4, 4));
  const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
  std::vector<AtomicBroadcast*> ab(4, nullptr);
  std::vector<std::vector<std::pair<ProcessId, std::uint64_t>>> order(4);
  for (ProcessId p : {0u, 1u, 3u}) {
    ab[p] = &c.create_root<AtomicBroadcast>(
        p, id, [&order, p](ProcessId origin, std::uint64_t rbid, Slice) {
          order[p].emplace_back(origin, rbid);
        });
  }
  c.call(0, [&] {
    for (int i = 0; i < 3; ++i) ab[0]->bcast(to_bytes("early"));
  });
  // Let the early three make progress (they can: n-f = 3).
  ASSERT_TRUE(c.run_until([&] { return order[0].size() >= 3; }, kDeadline));

  // Now the latecomer joins.
  ab[2] = &c.create_root<AtomicBroadcast>(
      2, id, [&order](ProcessId origin, std::uint64_t rbid, Slice) {
        order[2].emplace_back(origin, rbid);
      });
  c.call(0, [&] { ab[0]->bcast(to_bytes("late")); });
  ASSERT_TRUE(c.run_until([&] { return order[2].size() >= 4; }, kDeadline));
  c.run_all();
  const std::size_t k = std::min(order[2].size(), order[0].size());
  ASSERT_GE(k, 4u);
  for (std::size_t i = 0; i < k; ++i) {
    EXPECT_EQ(order[2][i], order[0][i]) << "latecomer diverged at " << i;
  }
}

TEST(FaultInjection, CrashOfSignalSenderBeforeAnyTraffic) {
  // Degenerate: the only would-be sender crashes at t=0. Nothing is ever
  // delivered, nothing wedges, the simulation drains.
  test::ClusterOptions o = fast_lan(4, 5);
  o.crashed = {0};
  Cluster c(o);
  AbFixture f(c);
  c.run_all();
  for (ProcessId p : c.live()) EXPECT_TRUE(f.order[p].empty());
}

}  // namespace
}  // namespace ritas
