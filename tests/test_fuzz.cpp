// Protocol-level fuzzing: storms of random and semi-valid frames injected
// into live stacks mid-workload. Nothing may crash, and the legitimate
// workload must still complete with total order intact — the "Byzantine
// bytes cannot take a correct process down" guarantee, stress-tested.
#include <gtest/gtest.h>

#include <cctype>
#include <filesystem>
#include <fstream>

#include "sim_helpers.h"

namespace ritas {
namespace {

using test::Cluster;
using test::fast_lan;
using test::kDeadline;

struct AbHarness {
  std::vector<AtomicBroadcast*> ab;
  std::vector<std::vector<std::pair<ProcessId, std::uint64_t>>> order;

  explicit AbHarness(Cluster& c) : ab(c.n(), nullptr), order(c.n()) {
    const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
    for (ProcessId p : c.live()) {
      ab[p] = &c.create_root<AtomicBroadcast>(
          p, id, [this, p](ProcessId origin, std::uint64_t rbid, Slice) {
            order[p].emplace_back(origin, rbid);
          });
    }
  }
};

/// Builds a structurally valid Message with randomized path/tag/payload.
Message random_message(Rng& rng) {
  Message m;
  const InstanceId ab = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
  switch (rng.below(6)) {
    case 0:
      m.path = ab;
      break;
    case 1:
      m.path = ab.child({ProtocolType::kReliableBroadcast,
                         AtomicBroadcast::msg_seq(
                             static_cast<ProcessId>(rng.below(6)), rng.below(64))});
      break;
    case 2:
      m.path = ab.child({ProtocolType::kReliableBroadcast,
                         AtomicBroadcast::vect_seq(
                             static_cast<std::uint32_t>(rng.below(8)),
                             static_cast<ProcessId>(rng.below(6)))});
      break;
    case 3:
      m.path = ab.child({ProtocolType::kMultiValuedConsensus, rng.below(8)});
      break;
    case 4:
      m.path = ab.child({ProtocolType::kMultiValuedConsensus, rng.below(4)})
                   .child({ProtocolType::kBinaryConsensus, 0})
                   .child({ProtocolType::kReliableBroadcast, rng.below(256)});
      break;
    default:
      m.path = InstanceId::root(
          static_cast<ProtocolType>(1 + rng.below(6)), rng.below(1024));
      break;
  }
  m.tag = static_cast<std::uint8_t>(rng.below(8));
  Bytes payload(rng.below(40));
  for (auto& b : payload) b = static_cast<std::uint8_t>(rng.next());
  m.payload = std::move(payload);
  return m;
}

TEST(Fuzz, RandomBytesDuringBurst) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Cluster c(fast_lan(4, 900 + seed));
    AbHarness h(c);
    Rng fuzz(seed * 7 + 1);
    for (ProcessId p : c.live()) {
      c.call(p, [&, p] {
        for (int i = 0; i < 4; ++i) h.ab[p]->bcast(to_bytes("w"));
      });
    }
    // Storm of pure garbage from "peer 3" into every stack.
    for (int i = 0; i < 500; ++i) {
      Bytes junk(fuzz.below(100));
      for (auto& b : junk) b = static_cast<std::uint8_t>(fuzz.next());
      const ProcessId victim = static_cast<ProcessId>(fuzz.below(4));
      const ProcessId claimed = static_cast<ProcessId>(fuzz.below(4));
      if (victim == claimed) continue;
      c.stack(victim).on_packet(claimed, std::move(junk));
    }
    ASSERT_TRUE(c.run_until(
        [&] {
          for (ProcessId p : c.live()) {
            if (h.order[p].size() < 16) return false;
          }
          return true;
        },
        kDeadline))
        << "seed " << seed;
    for (ProcessId p : c.live()) {
      EXPECT_EQ(h.order[p], h.order[0]) << "seed " << seed;
    }
  }
}

TEST(Fuzz, StructurallyValidGarbageFrames) {
  // Decodable messages with random paths/tags/payloads — these exercise
  // the demux, spawn-on-demand, windows, tombstones and every protocol's
  // input validation, not just the frame parser.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Cluster c(fast_lan(4, 950 + seed));
    AbHarness h(c);
    Rng fuzz(seed * 13 + 5);
    for (ProcessId p : c.live()) {
      c.call(p, [&, p] {
        for (int i = 0; i < 4; ++i) h.ab[p]->bcast(to_bytes("x"));
      });
    }
    for (int i = 0; i < 800; ++i) {
      const Message m = random_message(fuzz);
      const ProcessId victim = static_cast<ProcessId>(fuzz.below(4));
      const ProcessId claimed = static_cast<ProcessId>(fuzz.below(4));
      if (victim == claimed) continue;
      c.stack(victim).on_packet(claimed, m.encode());
    }
    ASSERT_TRUE(c.run_until(
        [&] {
          for (ProcessId p : c.live()) {
            if (h.order[p].size() < 16) return false;
          }
          return true;
        },
        kDeadline))
        << "seed " << seed;
    for (ProcessId p : c.live()) {
      ASSERT_GE(h.order[p].size(), 16u);
      for (std::size_t i = 0; i < 16; ++i) {
        EXPECT_EQ(h.order[p][i], h.order[0][i]) << "seed " << seed;
      }
    }
    // The storm was noticed and counted, not absorbed silently.
    Metrics m = c.total_metrics();
    EXPECT_GT(m.invalid_dropped + m.malformed_dropped + m.unroutable_dropped +
                  m.ooc_stored,
              0u);
  }
}

TEST(Fuzz, MutatedRealFrames) {
  // Take a real frame (a valid AB_MSG INIT for p3's first broadcast), flip
  // random bits, and inject the variants as if p3 sent them. Racing its
  // own real INIT with corrupted twins makes p3 an *equivocating origin*,
  // so its broadcast may legitimately never deliver — but no process may
  // crash, the three correct senders' messages must still deliver, and
  // whatever does deliver must stay totally ordered.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    Cluster c(fast_lan(4, 980 + seed));
    AbHarness h(c);
    Rng fuzz(seed + 31);
    for (ProcessId p : c.live()) {
      c.call(p, [&, p] { h.ab[p]->bcast(to_bytes("payload-" + std::to_string(p))); });
    }
    Message real;
    real.path = InstanceId::root(ProtocolType::kAtomicBroadcast, 0)
                    .child({ProtocolType::kReliableBroadcast,
                            AtomicBroadcast::msg_seq(3, 0)});
    real.tag = ReliableBroadcast::kInit;
    real.payload = to_bytes("genuine byzantine payload");
    const Bytes frame = Slice(real.encode()).to_bytes();
    for (int i = 0; i < 300; ++i) {
      Bytes mutated = frame;
      const std::size_t flips = 1 + fuzz.below(4);
      for (std::size_t f = 0; f < flips; ++f) {
        mutated[fuzz.below(mutated.size())] ^= static_cast<std::uint8_t>(
            1u << fuzz.below(8));
      }
      c.stack(static_cast<ProcessId>(fuzz.below(4))).on_packet(3, std::move(mutated));
    }
    auto delivered_from_correct = [&](ProcessId p) {
      std::size_t k = 0;
      for (const auto& [origin, rbid] : h.order[p]) {
        if (origin != 3) ++k;
      }
      return k;
    };
    ASSERT_TRUE(c.run_until(
        [&] {
          for (ProcessId p : c.live()) {
            if (delivered_from_correct(p) < 3) return false;
          }
          return true;
        },
        kDeadline))
        << "seed " << seed;
    c.run_all();
    for (ProcessId p : c.live()) {
      const std::size_t k = std::min(h.order[p].size(), h.order[0].size());
      for (std::size_t i = 0; i < k; ++i) {
        EXPECT_EQ(h.order[p][i], h.order[0][i]) << "seed " << seed;
      }
    }
  }
}

TEST(Fuzz, MalformedBatchFramesAreCountedDrops) {
  // Batching on: a Byzantine origin reliably broadcasts AB_MSG payloads
  // whose batch framing is garbage — truncated length prefix, impossible
  // count, empty batch. RB agreement makes every correct process see the
  // same bytes, so every one of them drops the identifier alike (counted
  // in ab_batch_malformed + invalid_dropped), nobody throws, and the
  // legitimate batched workload still delivers in total order.
  test::ClusterOptions o = fast_lan(4, 990);
  o.stack.ab_batch.enabled = true;
  o.stack.ab_batch.max_batch_msgs = 4;
  Cluster c(o);
  AbHarness h(c);

  // Processes 0-2 run a real workload; "p3" only exists as the claimed
  // sender of the injected frames.
  for (ProcessId p = 0; p < 3; ++p) {
    c.call(p, [&, p] {
      for (int i = 0; i < 4; ++i) {
        h.ab[p]->bcast(to_bytes("ok" + std::to_string(p) + std::to_string(i)));
      }
      h.ab[p]->flush();
    });
  }

  Writer truncated;  // count says 2, body holds 1 message
  truncated.u32(2);
  truncated.bytes(to_bytes("one"));
  Writer overlong;  // count the payload cannot physically hold
  overlong.u32(0xffffffffu);
  Writer empty;  // zero-message batch
  empty.u32(0);
  const Bytes payloads[3] = {std::move(truncated).take(),
                             std::move(overlong).take(), std::move(empty).take()};
  for (std::uint64_t rbid = 0; rbid < 3; ++rbid) {
    Message m;
    m.path = InstanceId::root(ProtocolType::kAtomicBroadcast, 0)
                 .child({ProtocolType::kReliableBroadcast,
                         AtomicBroadcast::msg_seq(3, rbid)});
    m.tag = ReliableBroadcast::kInit;
    m.payload = Bytes(payloads[rbid]);
    const Buffer frame = m.encode();
    for (ProcessId victim = 0; victim < 3; ++victim) {
      c.stack(victim).on_packet(3, frame);
    }
  }

  ASSERT_TRUE(c.run_until(
      [&] {
        for (ProcessId p = 0; p < 3; ++p) {
          if (h.order[p].size() < 12) return false;
        }
        return true;
      },
      kDeadline));
  c.run_all();
  for (ProcessId p = 0; p < 3; ++p) {
    const std::size_t k = std::min(h.order[p].size(), h.order[0].size());
    for (std::size_t i = 0; i < k; ++i) EXPECT_EQ(h.order[p][i], h.order[0][i]);
  }
  const Metrics m = c.total_metrics();
  // Each of the 3 injected identifiers RB-delivers at the 3 correct
  // processes (totality), and each delivery is a counted drop.
  EXPECT_GE(m.ab_batch_malformed, 9u);
  EXPECT_GE(m.invalid_dropped, m.ab_batch_malformed);
}

TEST(Fuzz, CrossVariantFramesAreCountedDrops) {
  // The variant seam's wire guarantee, in the direction the corpus files
  // can't exercise: Bracha-coded frames injected into live stacks running
  // the non-default variants. Tag spaces are disjoint by construction
  // (docs/PROTOCOLS.md "Variant negotiation & tag encodings"), so none of
  // these may enter a quorum — every frame is a counted drop or an
  // out-of-context park, and the variant workloads still complete.

  // Bracha INIT/ECHO/READY into a live Imbs–Raynal broadcast (n = 6).
  {
    test::ClusterOptions o = fast_lan(6, 1234);
    o.stack.variants.rb = RbVariant::kImbsRaynal;
    Cluster c(o);
    test::DeliveryLog log(c.n());
    const InstanceId id = InstanceId::root(ProtocolType::kReliableBroadcast, 1);
    std::vector<RbAlgorithm*> rb(c.n(), nullptr);
    for (ProcessId p : c.live()) {
      rb[p] = &c.create_rb(p, id, 0, Attribution::kPayload, log.sink(p));
    }
    c.call(0, [&] { rb[0]->bcast(to_bytes("genuine")); });
    Message m;
    m.path = id;
    m.payload = to_bytes("forged");
    std::size_t injected = 0;
    for (std::uint8_t tag : {ReliableBroadcast::kInit, ReliableBroadcast::kEcho,
                             ReliableBroadcast::kReady}) {
      m.tag = tag;
      for (ProcessId victim : c.live()) {
        c.stack(victim).on_packet(victim == 3 ? 2 : 3, m.encode());
        ++injected;
      }
    }
    ASSERT_TRUE(c.run_until(
        [&] { return log.everyone_has(c.correct_set(), 1); }, kDeadline));
    c.run_all();
    for (ProcessId p : c.correct_set()) {
      ASSERT_EQ(log.by_process[p].size(), 1u);
      EXPECT_EQ(log.by_process[p][0], to_bytes("genuine"));
    }
    EXPECT_GE(c.total_metrics().invalid_dropped, injected);
  }

  // Bracha-era frames into a live Crain consensus (n = 4): RB tags at the
  // BC path itself, plus a Bracha step-RB child path — under Crain the BC
  // instance has no RB children at all, so the child frame must park or
  // drop rather than spawn anything.
  {
    test::ClusterOptions o = fast_lan(4, 4321);
    o.stack.variants.bc = BcVariant::kCrain;
    o.stack.coin_mode = CoinMode::kDealt;
    Cluster c(o);
    test::Capture<bool> cap(c.n());
    const InstanceId id = InstanceId::root(ProtocolType::kBinaryConsensus, 1);
    std::vector<BcAlgorithm*> bc(c.n(), nullptr);
    for (ProcessId p : c.live()) {
      bc[p] = &c.create_bc(p, id, Attribution::kAgreement, cap.sink(p));
    }
    for (ProcessId p : c.live()) {
      c.call(p, [&, p] { bc[p]->propose(p % 2 == 0); });
    }
    std::size_t injected = 0;
    Message m;
    m.path = id;
    m.payload = to_bytes("x");
    for (std::uint8_t tag : {ReliableBroadcast::kInit, ReliableBroadcast::kEcho,
                             ReliableBroadcast::kReady}) {
      m.tag = tag;
      for (ProcessId victim : c.live()) {
        c.stack(victim).on_packet(victim == 3 ? 2 : 3, m.encode());
        ++injected;
      }
    }
    Message child;
    child.path = id.child({ProtocolType::kReliableBroadcast,
                           BinaryConsensus::child_seq(1, 1, 0, 4)});
    child.tag = ReliableBroadcast::kInit;
    child.payload = to_bytes("y");
    for (ProcessId victim : c.live()) {
      c.stack(victim).on_packet(victim == 3 ? 2 : 3, child.encode());
      ++injected;
    }
    ASSERT_TRUE(
        c.run_until([&] { return cap.all_set(c.correct_set()); }, kDeadline));
    c.run_all();
    EXPECT_TRUE(cap.agree(c.correct_set()));
    const Metrics met = c.total_metrics();
    EXPECT_GE(met.invalid_dropped + met.unroutable_dropped + met.ooc_stored,
              injected);
  }
}

/// Loads one corpus file: hex bytes, whitespace ignored, '#' to EOL is a
/// comment. Returns nullopt on a file that is not well-formed hex (a test
/// bug, not a Byzantine input — the corpus itself must stay clean).
std::optional<Bytes> load_corpus_frame(const std::filesystem::path& file) {
  std::ifstream in(file);
  if (!in) return std::nullopt;
  Bytes out;
  int hi = -1;
  for (std::string line; std::getline(in, line);) {
    for (char ch : line) {
      if (ch == '#') break;
      if (std::isspace(static_cast<unsigned char>(ch))) continue;
      const int v = std::isdigit(static_cast<unsigned char>(ch)) ? ch - '0'
                    : ch >= 'a' && ch <= 'f'                     ? ch - 'a' + 10
                    : ch >= 'A' && ch <= 'F'                     ? ch - 'A' + 10
                                                                 : -1;
      if (v < 0) return std::nullopt;
      if (hi < 0) {
        hi = v;
      } else {
        out.push_back(static_cast<std::uint8_t>(hi << 4 | v));
        hi = -1;
      }
    }
  }
  if (hi >= 0) return std::nullopt;  // odd nibble count
  return out;
}

TEST(Fuzz, CorpusRegression) {
  // Every malformed frame that ever mattered, persisted under
  // tests/corpus/ and replayed into every live stack on every run: frames
  // must be counted drops (or parked out-of-context), never throws, and
  // the real workload must still totally order afterwards. Batching is on
  // so the batch-framing entries exercise the AB decode path too.
  const std::filesystem::path dir = RITAS_TEST_CORPUS_DIR;
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  std::vector<std::filesystem::path> files;
  for (const auto& e : std::filesystem::directory_iterator(dir)) {
    if (e.path().extension() == ".hex") files.push_back(e.path());
  }
  std::sort(files.begin(), files.end());
  ASSERT_GE(files.size(), 10u) << "corpus went missing from " << dir;

  test::ClusterOptions o = fast_lan(4, 995);
  o.stack.ab_batch.enabled = true;
  o.stack.ab_batch.max_batch_msgs = 4;
  Cluster c(o);
  AbHarness h(c);
  for (ProcessId p : c.live()) {
    c.call(p, [&, p] {
      for (int i = 0; i < 4; ++i) h.ab[p]->bcast(to_bytes("live"));
      h.ab[p]->flush();
    });
  }
  for (const auto& file : files) {
    const auto frame = load_corpus_frame(file);
    ASSERT_TRUE(frame.has_value()) << "bad hex in " << file;
    for (ProcessId victim : c.live()) {
      // Claimed sender 3 (2 when 3 is the victim): always a real peer id,
      // never the victim itself.
      const ProcessId claimed = victim == 3 ? 2 : 3;
      c.stack(victim).on_packet(claimed, Bytes(*frame));
    }
  }
  // Corpus entries that forge AB(0)/RB(msg_seq(3,0)) race p3's own first
  // batch, making p3 an equivocating origin whose batch may legitimately
  // never deliver — so the progress goal counts the other origins only.
  auto delivered_from_unforged = [&](ProcessId p) {
    std::size_t k = 0;
    for (const auto& [origin, rbid] : h.order[p]) {
      if (origin != 3) ++k;
    }
    return k;
  };
  ASSERT_TRUE(c.run_until(
      [&] {
        for (ProcessId p : c.live()) {
          if (delivered_from_unforged(p) < 12) return false;
        }
        return true;
      },
      kDeadline));
  c.run_all();
  for (ProcessId p : c.live()) {
    const std::size_t k = std::min(h.order[p].size(), h.order[0].size());
    for (std::size_t i = 0; i < k; ++i) EXPECT_EQ(h.order[p][i], h.order[0][i]);
  }
  // Every injected frame was noticed somewhere: parse rejects, protocol
  // rejects, foreign-group rejects, unroutable paths and out-of-context
  // parks all count.
  const Metrics m = c.total_metrics();
  EXPECT_GE(m.malformed_dropped + m.invalid_dropped + m.unroutable_dropped +
                m.foreign_group_dropped + m.ooc_stored,
            files.size())
      << "corpus frames absorbed silently";
}

TEST(Fuzz, SerializeReaderNeverCrashesOnRandomInput) {
  Rng fuzz(77);
  for (int i = 0; i < 5000; ++i) {
    Bytes junk(fuzz.below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(fuzz.next());
    Reader r(junk);
    // Exercise every accessor in random order; sticky failure keeps all of
    // this well-defined.
    switch (fuzz.below(5)) {
      case 0: (void)r.u8(); (void)r.u64(); (void)r.bytes(); break;
      case 1: (void)r.bytes(); (void)r.bytes(); break;
      case 2: (void)r.str(); (void)r.u32(); break;
      case 3: (void)r.raw(fuzz.below(128)); break;
      default: (void)InstanceId::decode(r); break;
    }
    (void)r.done();
  }
  SUCCEED();
}

}  // namespace
}  // namespace ritas
