// Safety of the generalized binary-consensus quorums for group sizes with
// slack (n > 3f+1, i.e. n = 5 and 6 with f = 1): the paper's literal
// 2f+1 / f+1 thresholds could let two (n-f)-snapshots adopt different
// values there, so the implementation uses ⌊(n+f)/2⌋+1 / max(f+1, n-Qd+1)
// (see binary_consensus.cpp). These sweeps hammer exactly those group
// sizes with the schedules most likely to split snapshots apart.
#include <gtest/gtest.h>

#include "sim_helpers.h"

namespace ritas {
namespace {

using test::Cluster;
using test::fast_lan;
using test::run_binary_consensus;

struct SlackParams {
  std::uint32_t n;      // 5 or 6: f = 1 with slack
  std::uint64_t seed;
  bool byzantine;
};

std::string slack_name(const ::testing::TestParamInfo<SlackParams>& info) {
  return "n" + std::to_string(info.param.n) +
         (info.param.byzantine ? "_byz" : "_ok") + "_s" +
         std::to_string(info.param.seed);
}

class SlackQuorums : public ::testing::TestWithParam<SlackParams> {};

TEST_P(SlackQuorums, SplitProposalsNeverDisagree) {
  const auto& prm = GetParam();
  test::ClusterOptions o = fast_lan(prm.n, 7000 + prm.seed * 17 + prm.n);
  o.lan.jitter_ns = 800'000;
  if (prm.byzantine) o.byzantine = {prm.n - 1};
  Cluster c(o);
  // Clique skew: the adversarial schedule for snapshot divergence.
  const ProcessId half = prm.n / 2;
  c.network().set_delay_policy([half](ProcessId from, ProcessId to, sim::Time) {
    const bool cross = (from < half) != (to < half);
    return cross ? 2 * sim::kMillisecond : 0;
  });
  std::vector<bool> proposals(prm.n);
  for (ProcessId p = 0; p < prm.n; ++p) proposals[p] = (p % 2 == 0);
  auto cap = run_binary_consensus(c, proposals);
  ASSERT_TRUE(cap.all_set(c.correct_set())) << "termination";
  EXPECT_TRUE(cap.agree(c.correct_set())) << "AGREEMENT VIOLATION at n=" << prm.n;
}

std::vector<SlackParams> slack_matrix() {
  std::vector<SlackParams> out;
  for (std::uint32_t n : {5u, 6u}) {
    for (std::uint64_t seed = 0; seed < 10; ++seed) {
      out.push_back({n, seed, false});
      out.push_back({n, seed, true});
    }
  }
  return out;
}

INSTANTIATE_TEST_SUITE_P(Slack, SlackQuorums, ::testing::ValuesIn(slack_matrix()),
                         slack_name);

TEST(GeneralizedQuorums, ReduceToPaperConstantsAtThreeFPlusOne) {
  // At n = 3f+1 the generalized thresholds must equal the paper's 2f+1 and
  // f+1 — checked through the Quorums helpers the protocol uses.
  for (std::uint32_t f = 1; f <= 5; ++f) {
    const std::uint32_t n = 3 * f + 1;
    const Quorums q(n);
    EXPECT_EQ((n + q.f) / 2 + 1, 2 * f + 1) << "decide quorum at n=" << n;
    const std::uint32_t qd = (n + q.f) / 2 + 1;
    EXPECT_EQ(std::max(q.f + 1, n - qd + 1), f + 1) << "adopt quorum at n=" << n;
  }
}

TEST(GeneralizedQuorums, DecideForcesUniformAdoption) {
  // The safety inequalities behind the generalized thresholds, for every
  // supported group size:
  //   (1) qd - f >= qa: a decide on w in one snapshot forces at least qa
  //       copies of w into EVERY (n-f)-snapshot, so everyone adopts w;
  //   (2) n - qd < qa: after a decide on w, the opposite value cannot
  //       reach the adopt quorum anywhere;
  //   (3) qd <= n - f: deciding stays reachable with f silent processes.
  // Note that 2*qa > n-f (strict adopt uniqueness) is NOT required and in
  // fact fails for n ≡ 2 mod 3 — both values reaching qa is possible only
  // in rounds where nobody decided, where either adoption is safe.
  for (std::uint32_t n = 4; n <= 40; ++n) {
    const Quorums q(n);
    const std::uint32_t qd = (n + q.f) / 2 + 1;
    const std::uint32_t qa = std::max(q.f + 1, n - qd + 1);
    EXPECT_GE(qd - q.f, qa) << "n=" << n;
    EXPECT_LT(n - qd, qa) << "n=" << n;
    EXPECT_LE(qd, q.n_minus_f()) << "n=" << n;
  }
}

}  // namespace
}  // namespace ritas
