#include "core/instance_id.h"

#include <gtest/gtest.h>

#include <set>

namespace ritas {
namespace {

Component rb(std::uint64_t seq) { return {ProtocolType::kReliableBroadcast, seq}; }
Component bc(std::uint64_t seq) { return {ProtocolType::kBinaryConsensus, seq}; }
Component ab(std::uint64_t seq) { return {ProtocolType::kAtomicBroadcast, seq}; }

TEST(InstanceId, RootAndChild) {
  const InstanceId root = InstanceId::root(ProtocolType::kAtomicBroadcast, 5);
  EXPECT_EQ(root.depth(), 1u);
  EXPECT_EQ(root.leaf().seq, 5u);
  const InstanceId child = root.child(bc(2));
  EXPECT_EQ(child.depth(), 2u);
  EXPECT_EQ(child.leaf().type, ProtocolType::kBinaryConsensus);
  EXPECT_EQ(child.parent(), root);
}

TEST(InstanceId, PrefixRelation) {
  const InstanceId a = InstanceId::root(ProtocolType::kAtomicBroadcast, 1);
  const InstanceId b = a.child(bc(0));
  const InstanceId c = b.child(rb(3));
  EXPECT_TRUE(a.is_prefix_of(a));
  EXPECT_TRUE(a.is_prefix_of(b));
  EXPECT_TRUE(a.is_prefix_of(c));
  EXPECT_TRUE(b.is_prefix_of(c));
  EXPECT_FALSE(c.is_prefix_of(a));
  EXPECT_FALSE(b.is_prefix_of(a.child(bc(1))));
}

TEST(InstanceId, PrefixAccessor) {
  const InstanceId c =
      InstanceId::root(ProtocolType::kAtomicBroadcast, 1).child(bc(0)).child(rb(3));
  EXPECT_EQ(c.prefix(1), InstanceId::root(ProtocolType::kAtomicBroadcast, 1));
  EXPECT_EQ(c.prefix(3), c);
  EXPECT_EQ(c.prefix(2).depth(), 2u);
}

TEST(InstanceId, EncodeDecodeRoundTrip) {
  const InstanceId id = InstanceId::root(ProtocolType::kVectorConsensus, 7)
                            .child({ProtocolType::kMultiValuedConsensus, 2})
                            .child(bc(0))
                            .child(rb(0xdeadbeefcafeULL));
  Writer w;
  id.encode(w);
  Reader r(w.data());
  auto decoded = InstanceId::decode(r);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, id);
  EXPECT_TRUE(r.done());
}

TEST(InstanceId, DecodeRejectsZeroDepth) {
  Writer w;
  w.u8(0);
  Reader r(w.data());
  EXPECT_FALSE(InstanceId::decode(r).has_value());
}

TEST(InstanceId, DecodeRejectsExcessiveDepth) {
  Writer w;
  w.u8(InstanceId::kMaxDepth + 1);
  for (std::size_t i = 0; i <= InstanceId::kMaxDepth; ++i) {
    w.u8(1);
    w.u64(0);
  }
  Reader r(w.data());
  EXPECT_FALSE(InstanceId::decode(r).has_value());
}

TEST(InstanceId, DecodeRejectsBadProtocolType) {
  Writer w;
  w.u8(1);
  w.u8(0);  // type 0 is invalid
  w.u64(0);
  Reader r(w.data());
  EXPECT_FALSE(InstanceId::decode(r).has_value());

  Writer w2;
  w2.u8(1);
  w2.u8(200);  // out of range
  w2.u64(0);
  Reader r2(w2.data());
  EXPECT_FALSE(InstanceId::decode(r2).has_value());
}

TEST(InstanceId, DecodeRejectsTruncation) {
  Writer w;
  w.u8(2);
  w.u8(1);
  w.u64(0);  // second component missing
  Reader r(w.data());
  EXPECT_FALSE(InstanceId::decode(r).has_value());
}

TEST(InstanceId, OrderingAndEquality) {
  const InstanceId a = InstanceId::root(ProtocolType::kReliableBroadcast, 1);
  const InstanceId b = InstanceId::root(ProtocolType::kReliableBroadcast, 2);
  const InstanceId c = a.child(rb(0));
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);  // prefix sorts first
  EXPECT_EQ(a, InstanceId::root(ProtocolType::kReliableBroadcast, 1));
  EXPECT_NE(a, b);
}

TEST(InstanceId, HashDistribution) {
  std::set<std::uint64_t> hashes;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    hashes.insert(InstanceId::root(ProtocolType::kReliableBroadcast, i).hash());
    hashes.insert(ab(0).type == ProtocolType::kAtomicBroadcast
                      ? InstanceId::root(ProtocolType::kAtomicBroadcast, 0)
                            .child(rb(i))
                            .hash()
                      : 0);
  }
  EXPECT_GT(hashes.size(), 1990u);  // essentially no collisions
}

TEST(InstanceId, ToStringIsReadable) {
  const InstanceId id =
      InstanceId::root(ProtocolType::kAtomicBroadcast, 0).child(bc(3));
  EXPECT_EQ(id.to_string(), "ab#0/bc#3");
}

}  // namespace
}  // namespace ritas
