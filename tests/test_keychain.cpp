#include "crypto/keychain.h"

#include <gtest/gtest.h>

#include <set>

namespace ritas {
namespace {

TEST(KeyChain, PairwiseSymmetry) {
  const Bytes master = to_bytes("master-secret");
  const std::uint32_t n = 7;
  std::vector<KeyChain> chains;
  for (std::uint32_t p = 0; p < n; ++p) chains.push_back(KeyChain::deal(master, n, p));
  for (std::uint32_t i = 0; i < n; ++i) {
    for (std::uint32_t j = 0; j < n; ++j) {
      // s_ij as seen by p_i must equal s_ji as seen by p_j.
      EXPECT_TRUE(equal(chains[i].key(j), chains[j].key(i)))
          << "pair (" << i << "," << j << ")";
    }
  }
}

TEST(KeyChain, DistinctPairsGetDistinctKeys) {
  const Bytes master = to_bytes("master");
  const std::uint32_t n = 10;
  auto chain0 = KeyChain::deal(master, n, 0);
  std::set<Bytes> keys;
  for (std::uint32_t j = 0; j < n; ++j) {
    keys.insert(Bytes(chain0.key(j).begin(), chain0.key(j).end()));
  }
  EXPECT_EQ(keys.size(), n);  // including the self key, all distinct
}

TEST(KeyChain, DifferentMastersDiffer) {
  auto a = KeyChain::deal(to_bytes("m1"), 4, 0);
  auto b = KeyChain::deal(to_bytes("m2"), 4, 0);
  for (std::uint32_t j = 0; j < 4; ++j) {
    EXPECT_FALSE(equal(a.key(j), b.key(j)));
  }
}

TEST(KeyChain, Deterministic) {
  auto a = KeyChain::deal(to_bytes("m"), 4, 2);
  auto b = KeyChain::deal(to_bytes("m"), 4, 2);
  for (std::uint32_t j = 0; j < 4; ++j) {
    EXPECT_TRUE(equal(a.key(j), b.key(j)));
  }
}

TEST(KeyChain, KeySize) {
  auto c = KeyChain::deal(to_bytes("m"), 4, 0);
  EXPECT_EQ(c.key(1).size(), KeyChain::kKeySize);
}

TEST(KeyChain, SelfOutOfRangeThrows) {
  EXPECT_THROW(KeyChain::deal(to_bytes("m"), 4, 4), std::invalid_argument);
}

TEST(KeyChain, BadIndexThrows) {
  auto c = KeyChain::deal(to_bytes("m"), 4, 0);
  EXPECT_THROW(c.key(4), std::out_of_range);
}

TEST(KeyChain, ExternallySuppliedKeys) {
  std::vector<Bytes> keys = {to_bytes("k0"), to_bytes("k1"), to_bytes("k2"),
                             to_bytes("k3")};
  KeyChain c(1, keys);
  EXPECT_EQ(c.self(), 1u);
  EXPECT_EQ(c.size(), 4u);
  EXPECT_TRUE(equal(c.key(3), to_bytes("k3")));
  EXPECT_THROW(KeyChain(4, keys), std::invalid_argument);
}

}  // namespace
}  // namespace ritas
