#include "sim/lan_model.h"

#include <gtest/gtest.h>

#include <vector>

#include "sim/network.h"

namespace ritas::sim {
namespace {

struct Rx {
  ProcessId from;
  ProcessId to;
  Bytes frame;
  Time at;
};

struct Net {
  Scheduler sched;
  SimNetwork net;
  std::vector<Rx> rx;

  explicit Net(LanModelConfig lan, std::uint32_t n = 4)
      : net(sched, lan, n, 99) {
    net.set_deliver([this](ProcessId f, ProcessId t, Slice b) {
      rx.push_back(Rx{f, t, b.to_bytes(), sched.now()});
    });
  }
};

TEST(LanModel, WireBytesIncludeOverheads) {
  LanModelConfig lan;
  lan.frame_overhead_bytes = 70;
  lan.ah_overhead_bytes = 24;
  lan.ipsec = true;
  EXPECT_EQ(lan.wire_bytes(10), 104u);
  lan.ipsec = false;
  EXPECT_EQ(lan.wire_bytes(10), 80u);  // the paper's 80-byte RB frame
}

TEST(LanModel, TxTimeMatchesBandwidth) {
  LanModelConfig lan;
  lan.bytes_per_sec = 1e6;  // 1 MB/s => 1000 bytes = 1 ms
  EXPECT_EQ(lan.tx_time(1000), kMillisecond);
}

TEST(LanModel, IpsecAddsCpuCost) {
  LanModelConfig with = {};
  LanModelConfig without = {};
  without.ipsec = false;
  EXPECT_GT(with.send_cpu(100, with.wire_bytes(100)),
            without.send_cpu(100, without.wire_bytes(100)));
}

TEST(SimNetwork, DeliversFrames) {
  Net n({});
  n.net.submit(0, 1, to_bytes("hello"));
  n.sched.run();
  ASSERT_EQ(n.rx.size(), 1u);
  EXPECT_EQ(n.rx[0].from, 0u);
  EXPECT_EQ(n.rx[0].to, 1u);
  EXPECT_EQ(to_string(n.rx[0].frame), "hello");
  EXPECT_GT(n.rx[0].at, 0u);
}

TEST(SimNetwork, FifoPerPair) {
  LanModelConfig lan;
  lan.jitter_ns = 500'000;  // heavy jitter must not break per-pair FIFO
  Net n(lan);
  for (int i = 0; i < 50; ++i) {
    n.net.submit(0, 1, Bytes{static_cast<std::uint8_t>(i)});
  }
  n.sched.run();
  ASSERT_EQ(n.rx.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(n.rx[static_cast<std::size_t>(i)].frame[0], i);
  }
}

TEST(SimNetwork, EgressSerializes) {
  // Two big frames from the same host must take twice the wire time.
  LanModelConfig lan;
  lan.jitter_ns = 0;
  Net n(lan);
  const Bytes big(100000, 0xaa);
  n.net.submit(0, 1, Bytes(big));
  n.net.submit(0, 2, Bytes(big));
  n.sched.run();
  ASSERT_EQ(n.rx.size(), 2u);
  const Time gap = n.rx[1].at - n.rx[0].at;
  const Time tx = lan.tx_time(lan.wire_bytes(big.size()));
  EXPECT_GE(gap, tx / 2);  // second frame waited for the first's egress
}

TEST(SimNetwork, IngressSerializes) {
  // Two senders to the same receiver: deliveries cannot overlap on the
  // receiving NIC.
  LanModelConfig lan;
  lan.jitter_ns = 0;
  lan.cpu_send_ns = 0;
  lan.cpu_recv_ns = 0;
  lan.cpu_per_byte_ns = 0;
  lan.ah_per_byte_ns = 0;
  Net n(lan);
  const Bytes big(50000, 0xbb);
  n.net.submit(0, 2, Bytes(big));
  n.net.submit(1, 2, Bytes(big));
  n.sched.run();
  ASSERT_EQ(n.rx.size(), 2u);
  const Time tx = lan.tx_time(lan.wire_bytes(big.size()));
  EXPECT_GE(n.rx[1].at - n.rx[0].at, tx);
}

TEST(SimNetwork, CrashedHostSendsAndReceivesNothing) {
  Net n({});
  n.net.crash(1);
  n.net.submit(0, 1, to_bytes("to crashed"));
  n.net.submit(1, 0, to_bytes("from crashed"));
  n.net.submit(0, 2, to_bytes("ok"));
  n.sched.run();
  ASSERT_EQ(n.rx.size(), 1u);
  EXPECT_EQ(to_string(n.rx[0].frame), "ok");
}

TEST(SimNetwork, IpsecSlowerThanPlain) {
  LanModelConfig plain;
  plain.ipsec = false;
  LanModelConfig ipsec;
  ipsec.ipsec = true;
  Net a(plain), b(ipsec);
  a.net.submit(0, 1, Bytes(1000, 1));
  b.net.submit(0, 1, Bytes(1000, 1));
  a.sched.run();
  b.sched.run();
  EXPECT_LT(a.rx[0].at, b.rx[0].at);
}

TEST(SimNetwork, JitterIsDeterministicPerSeed) {
  LanModelConfig lan;
  lan.jitter_ns = 200'000;
  auto run = [&](std::uint64_t seed) {
    Scheduler sched;
    SimNetwork net(sched, lan, 4, seed);
    std::vector<Time> times;
    net.set_deliver([&](ProcessId, ProcessId, Slice) { times.push_back(sched.now()); });
    for (int i = 0; i < 20; ++i) net.submit(0, 1, Bytes{1});
    sched.run();
    return times;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(SimNetwork, CountsTraffic) {
  Net n({});
  n.net.submit(0, 1, Bytes(10, 0));
  n.net.submit(0, 2, Bytes(10, 0));
  n.sched.run();
  EXPECT_EQ(n.net.frames_delivered(), 2u);
  EXPECT_EQ(n.net.wire_bytes_total(), 2 * n.net.lan().wire_bytes(10));
}

}  // namespace
}  // namespace ritas::sim
