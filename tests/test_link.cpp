// Deterministic tests for the link backoff/retry state machine: pure,
// clock-free, seeded — the same seed must yield the same reconnect
// timeline bit-for-bit, and delays must respect the cap and jitter bounds.
#include "net/link.h"

#include <gtest/gtest.h>

#include <vector>

namespace ritas::net {
namespace {

TEST(LinkBackoff, SameSeedSameSchedule) {
  const BackoffOptions opts;
  LinkBackoff a(opts, 42), b(opts, 42);
  for (int i = 0; i < 32; ++i) {
    EXPECT_EQ(a.next_delay_ms(), b.next_delay_ms()) << "attempt " << i;
  }
}

TEST(LinkBackoff, DifferentSeedsDecorrelate) {
  const BackoffOptions opts;
  LinkBackoff a(opts, 1), b(opts, 2);
  int diffs = 0;
  for (int i = 0; i < 32; ++i) {
    if (a.next_delay_ms() != b.next_delay_ms()) ++diffs;
  }
  // Jitter spans half of each delay; 32 identical draws would mean the
  // seed does not reach the jitter stream at all.
  EXPECT_GT(diffs, 0);
}

TEST(LinkBackoff, DelaysRespectCapAndJitterBounds) {
  BackoffOptions opts;
  opts.base_ms = 10;
  opts.cap_ms = 500;
  opts.jitter_pct = 50;
  LinkBackoff bo(opts, 7);
  for (std::uint32_t k = 0; k < 40; ++k) {
    const std::uint64_t full =
        k < 63 ? std::min<std::uint64_t>(opts.base_ms << k, opts.cap_ms)
               : opts.cap_ms;
    const std::uint64_t d = bo.next_delay_ms();
    EXPECT_LE(d, full) << "attempt " << k;
    EXPECT_GE(d, full - full * opts.jitter_pct / 100) << "attempt " << k;
  }
}

TEST(LinkBackoff, GrowsExponentiallyWithoutJitter) {
  BackoffOptions opts;
  opts.base_ms = 20;
  opts.cap_ms = 2000;
  opts.jitter_pct = 0;
  LinkBackoff bo(opts, 1);
  EXPECT_EQ(bo.next_delay_ms(), 20u);
  EXPECT_EQ(bo.next_delay_ms(), 40u);
  EXPECT_EQ(bo.next_delay_ms(), 80u);
  EXPECT_EQ(bo.next_delay_ms(), 160u);
  for (int i = 0; i < 20; ++i) bo.next_delay_ms();
  EXPECT_EQ(bo.next_delay_ms(), 2000u) << "must saturate at the cap";
}

TEST(LinkBackoff, ResetRestartsFromBase) {
  BackoffOptions opts;
  opts.jitter_pct = 0;
  LinkBackoff bo(opts, 1);
  for (int i = 0; i < 6; ++i) bo.next_delay_ms();
  bo.reset();
  EXPECT_EQ(bo.attempts(), 0u);
  EXPECT_EQ(bo.next_delay_ms(), opts.base_ms);
}

TEST(LinkBackoff, HugeAttemptCountsDoNotOverflow) {
  BackoffOptions opts;
  opts.base_ms = 20;
  opts.cap_ms = 2000;
  opts.jitter_pct = 0;
  LinkBackoff bo(opts, 1);
  for (int i = 0; i < 200; ++i) {
    EXPECT_LE(bo.next_delay_ms(), opts.cap_ms);
  }
}

/// Replays a fixed fail/connect script against LinkRetry with injected
/// time, recording every transition instant.
std::vector<std::uint64_t> run_timeline(std::uint64_t seed) {
  BackoffOptions opts;
  opts.base_ms = 10;
  opts.cap_ms = 400;
  LinkRetry retry(opts, seed);
  std::vector<std::uint64_t> timeline;
  std::uint64_t now = 0;
  // Six failed attempts, then success, then a drop and one more attempt.
  for (int i = 0; i < 6; ++i) {
    while (!retry.should_dial(now)) ++now;  // advance injected time
    timeline.push_back(now);
    retry.on_dialing();
    retry.on_down(now);  // connect refused
  }
  while (!retry.should_dial(now)) ++now;
  timeline.push_back(now);
  retry.on_dialing();
  retry.on_up();
  timeline.push_back(now);
  now += 1000;
  retry.on_down(now);  // established link dropped
  while (!retry.should_dial(now)) ++now;
  timeline.push_back(now);
  return timeline;
}

TEST(LinkRetry, SameSeedSameReconnectTimeline) {
  EXPECT_EQ(run_timeline(99), run_timeline(99));
  EXPECT_EQ(run_timeline(1234), run_timeline(1234));
}

TEST(LinkRetry, StateTransitions) {
  BackoffOptions opts;
  opts.base_ms = 10;
  opts.jitter_pct = 0;
  LinkRetry retry(opts, 1);
  EXPECT_EQ(retry.state(), LinkState::kDown);
  EXPECT_TRUE(retry.should_dial(0)) << "down dials immediately";

  retry.on_dialing();
  EXPECT_EQ(retry.state(), LinkState::kConnecting);
  EXPECT_FALSE(retry.should_dial(0)) << "no concurrent dials";

  retry.on_down(100);
  EXPECT_EQ(retry.state(), LinkState::kBackoff);
  EXPECT_EQ(retry.retry_at_ms(), 110u);
  EXPECT_FALSE(retry.should_dial(109));
  EXPECT_TRUE(retry.should_dial(110));

  retry.on_dialing();
  retry.on_up();
  EXPECT_EQ(retry.state(), LinkState::kUp);
  EXPECT_EQ(retry.reconnects(), 0u) << "first connect is not a reconnect";
  EXPECT_FALSE(retry.should_dial(1'000'000));

  retry.on_down(200);
  retry.on_dialing();
  retry.on_up();
  EXPECT_EQ(retry.reconnects(), 1u);
}

TEST(LinkRetry, SuccessResetsTheBackoffSchedule) {
  BackoffOptions opts;
  opts.base_ms = 10;
  opts.cap_ms = 10'000;
  opts.jitter_pct = 0;
  LinkRetry retry(opts, 1);
  // Drive the schedule up.
  std::uint64_t prev = 0, now = 0;
  for (int i = 0; i < 8; ++i) {
    retry.on_dialing();
    retry.on_down(now);
    prev = now;
    now = retry.retry_at_ms();
  }
  EXPECT_EQ(now - prev, 10u << 7) << "8th delay should be base << 7";
  retry.on_dialing();
  retry.on_up();
  // After a success the next failure must wait only the base delay again.
  retry.on_down(5000);
  EXPECT_EQ(retry.retry_at_ms(), 5010u);
}

}  // namespace
}  // namespace ritas::net
