#include "sim/load_gen.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/scheduler.h"

namespace ritas::sim {
namespace {

struct Submitted {
  ProcessId origin;
  Time at;
  Bytes payload;
};

TEST(LoadGen, PoissonInterArrivalsMatchRate) {
  // 2000 arrivals at 1000 ops/s: the mean gap must land near 1 ms (the
  // exponential's std dev equals its mean, so a 10% band over 2000 samples
  // is generous), and the gaps must actually vary.
  Scheduler sched;
  std::vector<Time> arrivals;
  LoadGen::Options o;
  o.ops_per_sec = 1000.0;
  o.max_ops = 2000;
  o.seed = 5;
  LoadGen gen(sched, o, [&](ProcessId, Bytes) { arrivals.push_back(sched.now()); });
  gen.start();
  sched.run();
  ASSERT_EQ(arrivals.size(), 2000u);

  double sum_gap = 0;
  std::uint64_t distinct = 0;
  for (std::size_t i = 1; i < arrivals.size(); ++i) {
    ASSERT_GE(arrivals[i], arrivals[i - 1]);  // time moves forward
    const double gap = static_cast<double>(arrivals[i] - arrivals[i - 1]);
    sum_gap += gap;
    if (arrivals[i] != arrivals[i - 1]) ++distinct;
  }
  const double mean_gap_ns = sum_gap / static_cast<double>(arrivals.size() - 1);
  EXPECT_NEAR(mean_gap_ns, 1e6, 1e5);  // 1 ms +- 10%
  EXPECT_GT(distinct, 1900u);          // genuinely spread, not a fixed tick
}

TEST(LoadGen, SameSeedSameSchedule) {
  auto run = [](std::uint64_t seed) {
    Scheduler sched;
    std::vector<Submitted> log;
    LoadGen::Options o;
    o.ops_per_sec = 500.0;
    o.max_ops = 200;
    o.seed = seed;
    o.origins = {0, 1, 2};
    LoadGen gen(sched, o, [&](ProcessId p, Bytes b) {
      log.push_back({p, sched.now(), std::move(b)});
    });
    gen.start();
    sched.run();
    return log;
  };
  const auto a = run(9);
  const auto b = run(9);
  const auto c = run(10);
  ASSERT_EQ(a.size(), b.size());
  bool identical = true;
  for (std::size_t i = 0; i < a.size(); ++i) {
    identical = identical && a[i].origin == b[i].origin &&
                a[i].at == b[i].at && a[i].payload == b[i].payload;
  }
  EXPECT_TRUE(identical);
  // A different seed must not reproduce the same arrival times.
  bool same_as_c = a.size() == c.size();
  for (std::size_t i = 0; same_as_c && i < a.size(); ++i) {
    same_as_c = a[i].at == c[i].at;
  }
  EXPECT_FALSE(same_as_c);
}

TEST(LoadGen, OpenLoopBacklogGrowsWhenServiceLags) {
  // The service never completes anything: an open-loop generator keeps
  // offering anyway, and the backlog accounts for every op.
  Scheduler sched;
  LoadGen::Options o;
  o.ops_per_sec = 1000.0;
  o.max_ops = 50;
  o.seed = 3;
  LoadGen gen(sched, o, [](ProcessId, Bytes) {});
  gen.start();
  sched.run();
  EXPECT_EQ(gen.offered(), 50u);
  EXPECT_EQ(gen.completed(), 0u);
  EXPECT_EQ(gen.backlog(), 50u);
  EXPECT_EQ(gen.backlog_peak(), 50u);
  EXPECT_FALSE(gen.drained());
  EXPECT_EQ(gen.latency().count(), 0u);
}

TEST(LoadGen, CleanDrainLosesNoInFlightOps) {
  // Service lags 5 ms behind each submit; after the offered stream ends,
  // every in-flight op still completes and is measured.
  Scheduler sched;
  LoadGen::Options o;
  o.ops_per_sec = 2000.0;
  o.max_ops = 100;
  o.seed = 4;
  o.origins = {0, 1};
  bool drained_fired = false;
  LoadGen* gp = nullptr;
  LoadGen gen(sched, o, [&](ProcessId p, Bytes) {
    sched.after(5 * kMillisecond, [&, p] { gp->on_completed(p); });
  });
  gp = &gen;
  gen.set_on_drained([&] { drained_fired = true; });
  gen.start();
  sched.run();
  EXPECT_TRUE(drained_fired);
  EXPECT_EQ(gen.offered(), 100u);
  EXPECT_EQ(gen.completed(), 100u);
  EXPECT_EQ(gen.backlog(), 0u);
  EXPECT_TRUE(gen.drained());
  EXPECT_EQ(gen.latency().count(), 100u);
  // Every op took exactly the 5 ms service time.
  EXPECT_EQ(gen.latency().min(), 5 * kMillisecond);
  EXPECT_EQ(gen.latency().max(), 5 * kMillisecond);
  EXPECT_EQ(gen.latency().p999(), 5 * kMillisecond);
}

TEST(LoadGen, StopHaltsOfferingButKeepsAccounting) {
  Scheduler sched;
  LoadGen::Options o;
  o.ops_per_sec = 1000.0;
  o.max_ops = 0;  // unbounded: only stop() ends the stream
  o.seed = 8;
  std::uint64_t submitted = 0;
  LoadGen* gp = nullptr;
  LoadGen gen(sched, o, [&](ProcessId p, Bytes) {
    ++submitted;
    sched.after(kMillisecond, [&, p] { gp->on_completed(p); });
  });
  gp = &gen;
  gen.start();
  // Stop the stream after 20 ms of simulated offering.
  sched.after(20 * kMillisecond, [&] { gen.stop(); });
  sched.run();
  EXPECT_GT(gen.offered(), 0u);
  EXPECT_EQ(gen.offered(), submitted);
  EXPECT_EQ(gen.completed(), gen.offered());  // drain completed everything
  EXPECT_TRUE(gen.drained());
}

TEST(LoadGen, PayloadsCarryDistinctTags) {
  Scheduler sched;
  LoadGen::Options o;
  o.ops_per_sec = 1000.0;
  o.max_ops = 64;
  o.payload_bytes = 100;
  o.seed = 12;
  std::vector<Bytes> payloads;
  LoadGen gen(sched, o, [&](ProcessId, Bytes b) { payloads.push_back(std::move(b)); });
  gen.start();
  sched.run();
  ASSERT_EQ(payloads.size(), 64u);
  for (std::size_t i = 0; i < payloads.size(); ++i) {
    EXPECT_EQ(payloads[i].size(), 100u);
    for (std::size_t j = i + 1; j < payloads.size(); ++j) {
      EXPECT_NE(payloads[i], payloads[j]);
    }
  }
}

}  // namespace
}  // namespace ritas::sim
