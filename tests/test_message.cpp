#include "core/message.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ritas {
namespace {

InstanceId sample_path() {
  return InstanceId::root(ProtocolType::kAtomicBroadcast, 1)
      .child({ProtocolType::kMultiValuedConsensus, 0})
      .child({ProtocolType::kReliableBroadcast, 42});
}

/// Mutable copy of an encoded frame, for corruption tests.
Bytes frame_bytes(const Message& m) { return Slice(m.encode()).to_bytes(); }

TEST(Message, EncodeDecodeRoundTrip) {
  Message m;
  m.path = sample_path();
  m.tag = 2;
  m.payload = to_bytes("hello");
  const Buffer frame = m.encode();
  auto d = Message::decode(frame);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->path, m.path);
  EXPECT_EQ(d->tag, m.tag);
  EXPECT_EQ(d->payload, m.payload);
}

TEST(Message, EmptyPayload) {
  Message m;
  m.path = sample_path();
  m.tag = 0;
  auto d = Message::decode(m.encode());
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->payload.empty());
}

TEST(Message, LargePayload) {
  Message m;
  m.path = sample_path();
  m.tag = 1;
  m.payload = Bytes(100000, 0xab);
  auto d = Message::decode(m.encode());
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->payload.size(), 100000u);
}

TEST(Message, DecodedPayloadAliasesFrame) {
  // Zero-copy decode: the payload Slice points into the frame's block and
  // shares ownership of it (refcount visibly bumped).
  Message m;
  m.path = sample_path();
  m.payload = to_bytes("alias me");
  const Buffer frame = m.encode();
  const long before = frame.use_count();
  auto d = Message::decode(frame);
  ASSERT_TRUE(d.has_value());
  EXPECT_GE(d->payload.data(), frame.data());
  EXPECT_LE(d->payload.data() + d->payload.size(), frame.data() + frame.size());
  EXPECT_GT(frame.use_count(), before);
}

TEST(Message, DecodedPayloadOutlivesFrameHandle) {
  // Slice lifetime: the delivered payload stays valid after every other
  // reference to the transport frame is gone.
  Slice payload;
  {
    Message m;
    m.path = sample_path();
    m.payload = to_bytes("survivor");
    Buffer frame = m.encode();
    auto d = Message::decode(frame);
    ASSERT_TRUE(d.has_value());
    payload = d->payload;
  }  // frame (and the decoded Message) destroyed here
  EXPECT_EQ(to_string(payload.view()), "survivor");
  EXPECT_EQ(payload.buffer().use_count(), 1);  // sole owner now
}

TEST(Message, RejectsBadVersion) {
  Message m;
  m.path = sample_path();
  Bytes frame = frame_bytes(m);
  frame[0] = 99;
  EXPECT_FALSE(Message::decode(std::move(frame)).has_value());
}

TEST(Message, RejectsTruncatedFrame) {
  Message m;
  m.path = sample_path();
  m.payload = to_bytes("data");
  const Buffer frame = m.encode();
  const Slice whole(frame);
  for (std::size_t cut = 1; cut < frame.size(); cut += 3) {
    EXPECT_FALSE(Message::decode(whole.subslice(0, frame.size() - cut)).has_value())
        << "cut=" << cut;
  }
}

TEST(Message, RejectsPayloadLengthOverrunningFrame) {
  // A declared payload length that runs past the end of the frame must be
  // rejected, not clamp-decoded into a short payload.
  Message m;
  m.path = sample_path();
  m.payload = to_bytes("abcdef");
  const Bytes good = frame_bytes(m);
  // Chop payload bytes off the end while the header still promises 6.
  for (std::size_t keep = 0; keep < 6; ++keep) {
    Bytes cut(good.begin(), good.end() - (6 - keep));
    EXPECT_FALSE(Message::decode(std::move(cut)).has_value()) << "keep=" << keep;
  }
}

TEST(Message, RejectsTrailingGarbage) {
  Message m;
  m.path = sample_path();
  Bytes frame = frame_bytes(m);
  frame.push_back(0x00);
  EXPECT_FALSE(Message::decode(std::move(frame)).has_value());
}

TEST(Message, RejectsEmptyFrame) {
  EXPECT_FALSE(Message::decode(Bytes{}).has_value());
}

TEST(Message, RejectsRandomGarbage) {
  // Fuzz-lite: no random input may crash the decoder.
  std::uint64_t state = 12345;
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes junk(static_cast<std::size_t>(splitmix64(state) % 64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(splitmix64(state));
    (void)Message::decode(std::move(junk));  // must not crash
  }
  SUCCEED();
}

TEST(Message, HeaderSizeMatchesEncoding) {
  Message m;
  m.path = sample_path();
  m.payload = to_bytes("xyz");
  EXPECT_EQ(m.encode().size(), m.header_size() + m.payload.size());
}

// --- group multiplexing (docs/PROTOCOLS.md "Group multiplexing") ----------

TEST(MessageGroup, GroupZeroKeepsLegacyWireFormat) {
  // The single-group deployment must stay bit-identical to the pre-group
  // format: version byte 1, no group field.
  Message m;
  m.path = sample_path();
  m.tag = 3;
  m.payload = to_bytes("legacy");
  const Bytes frame = frame_bytes(m);
  EXPECT_EQ(frame[0], 1);
  Message grouped = m;
  grouped.group = 7;
  EXPECT_EQ(frame_bytes(grouped).size(), frame.size() + 4);
}

TEST(MessageGroup, GroupedRoundTrip) {
  Message m;
  m.group = 0xdeadbeef;
  m.path = sample_path();
  m.tag = 2;
  m.payload = to_bytes("sharded");
  const Buffer frame = m.encode();
  EXPECT_EQ(Slice(frame).view()[0], 2);  // version 2 marks a grouped frame
  auto d = Message::decode(frame);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->group, 0xdeadbeefu);
  EXPECT_EQ(d->path, m.path);
  EXPECT_EQ(d->tag, m.tag);
  EXPECT_EQ(d->payload, m.payload);
  EXPECT_EQ(frame.size(), m.header_size() + m.payload.size());
}

TEST(MessageGroup, RejectsGroupedFrameClaimingGroupZero) {
  // Canonical encoding: group 0 must use version 1. A version-2 frame
  // claiming group 0 is malformed (two encodings of the same message
  // would otherwise hash/compare differently).
  Message m;
  m.group = 5;
  m.path = sample_path();
  Bytes frame = frame_bytes(m);
  frame[1] = frame[2] = frame[3] = frame[4] = 0;  // u32 group := 0
  EXPECT_FALSE(Message::decode(std::move(frame)).has_value());
}

TEST(MessageGroup, RejectsTruncatedGroupedHeader) {
  Message m;
  m.group = 9;
  m.path = sample_path();
  m.payload = to_bytes("data");
  const Buffer frame = m.encode();
  const Slice whole(frame);
  for (std::size_t cut = 1; cut < frame.size(); ++cut) {
    EXPECT_FALSE(
        Message::decode(whole.subslice(0, frame.size() - cut)).has_value())
        << "cut=" << cut;
  }
}

TEST(MessageGroup, PeekGroupReadsOnlyThePrefix) {
  Message legacy;
  legacy.path = sample_path();
  const auto g0 = Message::peek_group(Slice(legacy.encode()));
  ASSERT_TRUE(g0.has_value());
  EXPECT_EQ(*g0, 0u);

  Message grouped;
  grouped.group = 42;
  grouped.path = sample_path();
  const auto g42 = Message::peek_group(Slice(grouped.encode()));
  ASSERT_TRUE(g42.has_value());
  EXPECT_EQ(*g42, 42u);

  // Truncated or garbage prefixes peek to nullopt, never throw.
  EXPECT_FALSE(Message::peek_group(Slice(Bytes{})).has_value());
  EXPECT_FALSE(Message::peek_group(Slice(Bytes{2, 1, 0})).has_value());
  EXPECT_FALSE(Message::peek_group(Slice(Bytes{99})).has_value());
  // Version 2 claiming group 0: rejected at the peek already.
  EXPECT_FALSE(Message::peek_group(Slice(Bytes{2, 0, 0, 0, 0})).has_value());
}

}  // namespace
}  // namespace ritas
