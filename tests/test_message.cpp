#include "core/message.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace ritas {
namespace {

InstanceId sample_path() {
  return InstanceId::root(ProtocolType::kAtomicBroadcast, 1)
      .child({ProtocolType::kMultiValuedConsensus, 0})
      .child({ProtocolType::kReliableBroadcast, 42});
}

TEST(Message, EncodeDecodeRoundTrip) {
  Message m;
  m.path = sample_path();
  m.tag = 2;
  m.payload = to_bytes("hello");
  const Bytes frame = m.encode();
  auto d = Message::decode(frame);
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->path, m.path);
  EXPECT_EQ(d->tag, m.tag);
  EXPECT_EQ(d->payload, m.payload);
}

TEST(Message, EmptyPayload) {
  Message m;
  m.path = sample_path();
  m.tag = 0;
  auto d = Message::decode(m.encode());
  ASSERT_TRUE(d.has_value());
  EXPECT_TRUE(d->payload.empty());
}

TEST(Message, LargePayload) {
  Message m;
  m.path = sample_path();
  m.tag = 1;
  m.payload.assign(100000, 0xab);
  auto d = Message::decode(m.encode());
  ASSERT_TRUE(d.has_value());
  EXPECT_EQ(d->payload.size(), 100000u);
}

TEST(Message, RejectsBadVersion) {
  Message m;
  m.path = sample_path();
  Bytes frame = m.encode();
  frame[0] = 99;
  EXPECT_FALSE(Message::decode(frame).has_value());
}

TEST(Message, RejectsTruncatedFrame) {
  Message m;
  m.path = sample_path();
  m.payload = to_bytes("data");
  Bytes frame = m.encode();
  for (std::size_t cut = 1; cut < frame.size(); cut += 3) {
    const ByteView view(frame.data(), frame.size() - cut);
    EXPECT_FALSE(Message::decode(view).has_value()) << "cut=" << cut;
  }
}

TEST(Message, RejectsTrailingGarbage) {
  Message m;
  m.path = sample_path();
  Bytes frame = m.encode();
  frame.push_back(0x00);
  EXPECT_FALSE(Message::decode(frame).has_value());
}

TEST(Message, RejectsEmptyFrame) {
  EXPECT_FALSE(Message::decode(Bytes{}).has_value());
}

TEST(Message, RejectsRandomGarbage) {
  // Fuzz-lite: no random input may crash the decoder.
  std::uint64_t state = 12345;
  for (int trial = 0; trial < 2000; ++trial) {
    Bytes junk(static_cast<std::size_t>(splitmix64(state) % 64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(splitmix64(state));
    (void)Message::decode(junk);  // must not crash; result may be anything
  }
  SUCCEED();
}

TEST(Message, HeaderSizeMatchesEncoding) {
  Message m;
  m.path = sample_path();
  m.payload = to_bytes("xyz");
  EXPECT_EQ(m.encode().size(), m.header_size() + m.payload.size());
}

}  // namespace
}  // namespace ritas
