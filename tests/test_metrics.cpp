// The counters behind Figure 7 and §4.3: broadcast attribution (payload vs
// agreement), consensus round accounting, aggregation.
#include "core/metrics.h"

#include <gtest/gtest.h>

#include "sim_helpers.h"

namespace ritas {
namespace {

using test::Cluster;
using test::fast_lan;
using test::kDeadline;

TEST(Metrics, BroadcastAttributionCounters) {
  Metrics m;
  m.count_broadcast_start(ProtocolType::kReliableBroadcast, Attribution::kPayload);
  m.count_broadcast_start(ProtocolType::kReliableBroadcast, Attribution::kAgreement);
  m.count_broadcast_start(ProtocolType::kEchoBroadcast, Attribution::kAgreement);
  EXPECT_EQ(m.rb_started_payload, 1u);
  EXPECT_EQ(m.rb_started_agreement, 1u);
  EXPECT_EQ(m.eb_started_agreement, 1u);
  EXPECT_EQ(m.broadcasts_total(), 3u);
  EXPECT_EQ(m.broadcasts_agreement(), 2u);
}

TEST(Metrics, Aggregation) {
  Metrics a, b;
  a.msgs_sent = 10;
  a.bc_decided = 1;
  b.msgs_sent = 5;
  b.bc_rounds_total = 3;
  a += b;
  EXPECT_EQ(a.msgs_sent, 15u);
  EXPECT_EQ(a.bc_decided, 1u);
  EXPECT_EQ(a.bc_rounds_total, 3u);
}

TEST(Metrics, SingleReliableBroadcastCountsOnce) {
  Cluster c(fast_lan(4, 1));
  test::DeliveryLog log(4);
  std::vector<RbAlgorithm*> rb(4, nullptr);
  const InstanceId id = InstanceId::root(ProtocolType::kReliableBroadcast, 1);
  for (ProcessId p : c.live()) {
    rb[p] = &c.create_rb(p, id, 0, Attribution::kPayload,
                                              log.sink(p));
  }
  c.call(0, [&] { rb[0]->bcast(to_bytes("m")); });
  c.run_all();
  const Metrics m = c.total_metrics();
  // Exactly one broadcast instance was *started* system-wide (by p0).
  EXPECT_EQ(m.broadcasts_total(), 1u);
  EXPECT_EQ(m.rb_started_payload, 1u);
  // Bracha with n=4: 3 INIT + 12 ECHO + 12 READY minus self-loops = wire
  // messages; every host echoes and readies. 3 + 4*3 + 4*3 = 27.
  EXPECT_EQ(m.msgs_sent, 27u);
}

TEST(Metrics, MvcAttributesEverythingToAgreement) {
  Cluster c(fast_lan(4, 2));
  auto cap = test::run_mvc(
      c, {to_bytes("v"), to_bytes("v"), to_bytes("v"), to_bytes("v")});
  ASSERT_TRUE(cap.all_set(c.correct_set()));
  c.run_all();  // let the binary consensus finish its courtesy round
  const Metrics m = c.total_metrics();
  EXPECT_EQ(m.broadcasts_total(), m.broadcasts_agreement());
  // Per process: 1 INIT RB + 1 VECT EB + 3 BC-step RBs for the deciding
  // round + 3 more for the courtesy round that lets laggards finish = 8.
  EXPECT_EQ(m.broadcasts_total(), 32u);
}

TEST(Metrics, AtomicBroadcastSplitsPayloadFromAgreement) {
  Cluster c(fast_lan(4, 3));
  std::vector<AtomicBroadcast*> ab(4, nullptr);
  std::vector<std::uint64_t> delivered(4, 0);
  const InstanceId id = InstanceId::root(ProtocolType::kAtomicBroadcast, 0);
  for (ProcessId p : c.live()) {
    ab[p] = &c.create_root<AtomicBroadcast>(
        p, id, [&delivered, p](ProcessId, std::uint64_t, Slice) { ++delivered[p]; });
  }
  const std::uint32_t kMsgs = 10;
  c.call(0, [&] {
    for (std::uint32_t i = 0; i < kMsgs; ++i) ab[0]->bcast(to_bytes("x"));
  });
  ASSERT_TRUE(c.run_until([&] { return delivered[0] >= kMsgs; }, kDeadline));
  c.run_all();  // drain the other processes' deliveries too
  const Metrics m = c.total_metrics();
  EXPECT_EQ(m.rb_started_payload, kMsgs);  // AB_MSG dissemination
  EXPECT_GT(m.broadcasts_agreement(), 0u); // AB_VECT + MVC machinery
  EXPECT_EQ(m.ab_delivered, 4 * kMsgs);    // every process delivered all
}

TEST(Metrics, RoundAccountingMatchesDecisions) {
  Cluster c(fast_lan(4, 4));
  auto cap = test::run_binary_consensus(c, {true, true, true, true});
  ASSERT_TRUE(cap.all_set(c.correct_set()));
  const Metrics m = c.total_metrics();
  EXPECT_EQ(m.bc_decided, 4u);
  EXPECT_EQ(m.bc_rounds_total, 4u);  // one round each
  EXPECT_EQ(m.bc_coin_flips, 0u);
}

TEST(Metrics, TraceDerivedAttributionMatchesCounters) {
  // Figure 7's numbers can be computed two ways: from the stack's counters
  // or by folding the trace. They must agree exactly.
  test::ClusterOptions o = fast_lan(4, 8);
  o.trace = true;
  Cluster c(o);
  auto cap = test::run_vc(
      c, {to_bytes("a"), to_bytes("b"), to_bytes("c"), to_bytes("d")});
  ASSERT_TRUE(cap.all_set(c.correct_set()));
  c.run_all();
  const Metrics m = c.total_metrics();
  const TraceSummary s = summarize(c.tracers());
  EXPECT_EQ(s.rb_started_payload, m.rb_started_payload);
  EXPECT_EQ(s.rb_started_agreement, m.rb_started_agreement);
  EXPECT_EQ(s.eb_started_payload, m.eb_started_payload);
  EXPECT_EQ(s.eb_started_agreement, m.eb_started_agreement);
  EXPECT_EQ(s.broadcasts_total(), m.broadcasts_total());
  EXPECT_EQ(s.broadcasts_agreement(), m.broadcasts_agreement());
  EXPECT_EQ(s.sends, m.msgs_sent);
  EXPECT_EQ(s.bytes_sent, m.bytes_sent);
}

TEST(Metrics, LatencyHistogramsCountCompletions) {
  test::ClusterOptions o = fast_lan(4, 10);
  Cluster c(o);
  auto cap = test::run_mvc(
      c, {to_bytes("v"), to_bytes("v"), to_bytes("v"), to_bytes("v")});
  ASSERT_TRUE(cap.all_set(c.correct_set()));
  c.run_all();
  const Metrics m = c.total_metrics();
  // Every decided consensus recorded one latency observation; the inner BC
  // round histogram saw one entry per decision.
  const auto& bc_lat =
      m.proto_latency_ns[static_cast<std::size_t>(ProtocolType::kBinaryConsensus)];
  const auto& mvc_lat = m.proto_latency_ns[static_cast<std::size_t>(
      ProtocolType::kMultiValuedConsensus)];
  EXPECT_EQ(bc_lat.count(), m.bc_decided);
  EXPECT_EQ(mvc_lat.count(), 4u);
  EXPECT_GT(mvc_lat.mean(), 0.0);
  EXPECT_EQ(m.bc_round_hist.count(), m.bc_decided);
  // Latencies are virtual-time and nonzero (the LAN model delays frames).
  EXPECT_GT(bc_lat.min(), 0u);
}

TEST(Metrics, DefensiveDropCountersStartAtZero) {
  Cluster c(fast_lan(4, 5));
  const Metrics m = c.total_metrics();
  EXPECT_EQ(m.malformed_dropped, 0u);
  EXPECT_EQ(m.invalid_dropped, 0u);
  EXPECT_EQ(m.unroutable_dropped, 0u);
  EXPECT_EQ(m.ooc_stored, 0u);
}

}  // namespace
}  // namespace ritas
